package hybrids_test

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates its artifact through the experiment harness
// (internal/exp), logs the full table, and reports the headline series as
// benchmark metrics. The same experiments run standalone (with full
// operation counts and grids) via:
//
//	go run ./cmd/hybrids -exp <id> [-scale small|paper]
//
// Benchmarks default to reduced operation counts so `go test -bench=.`
// completes in minutes; set HYBRIDS_BENCH_FULL=1 for the full counts.

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"hybrids/internal/exp"
)

// benchScale returns the benchmark scale. Benchmarks must fit go test's
// default 10-minute per-package budget, so by default they trim operation
// counts, the thread grid, and the B+ tree's load size (2^21 records
// instead of the paper's 30M — the 30M load phase alone costs tens of
// seconds per grid cell). The authoritative paper-sized numbers come from
// `cmd/hybrids` and are recorded in EXPERIMENTS.md; set
// HYBRIDS_BENCH_FULL=1 (and -timeout=0) to run benchmarks at that scale
// too.
func benchScale() exp.Scale {
	sc := exp.SmallScale()
	if os.Getenv("HYBRIDS_BENCH_FULL") == "" {
		sc.OpsPerThread = 500
		sc.WarmupPerThread = 250
		sc.ThreadCounts = []int{1, 8}
		sc.SkiplistRecords = 1 << 20
		sc.SkiplistLevels = 20
		sc.SkiplistNMPLevels = 8
		sc.BTreeRecords = 1 << 21
	}
	// Grid cells are independent simulations; measure them concurrently.
	// Results are bit-identical at any Parallel setting (see exp.Scale), so
	// this changes only the wall clock, never the reported metrics.
	sc.Parallel = runtime.GOMAXPROCS(0)
	return sc
}

// metric parses a numeric cell from a result row.
func metric(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

// runExperiment executes experiment id once per benchmark run and reports
// per-row metrics named after the row labels.
func runExperiment(b *testing.B, id string, metricCol int, unit string) {
	b.Helper()
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := benchScale()
	var res exp.Result
	for i := 0; i < b.N; i++ {
		res = e.Run(sc, nil)
	}
	b.Log("\n" + res.Format())
	for _, row := range res.Rows {
		if metricCol >= len(row) {
			continue
		}
		name := row[0]
		if len(row) > 2 && metricCol >= 2 {
			name = row[0] + "/" + row[1]
		}
		b.ReportMetric(metric(row[metricCol]), sanitizeUnit(name+"_"+unit))
	}
}

// sanitizeUnit makes a row label usable as a benchmark metric unit
// (ReportMetric forbids whitespace).
func sanitizeUnit(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t':
			out = append(out, '-')
		case r == '(' || r == ')':
			// drop
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkTable1Config(b *testing.B) {
	e, _ := exp.Find("table1")
	var res exp.Result
	for i := 0; i < b.N; i++ {
		res = e.Run(benchScale(), nil)
	}
	b.Log("\n" + res.Format())
}

func BenchmarkFig5aSkiplistYCSBC(b *testing.B) {
	runExperiment(b, "fig5a", 2, "Mops")
}

func BenchmarkFig5bSkiplistDRAMReads(b *testing.B) {
	runExperiment(b, "fig5b", 1, "reads/op")
}

func BenchmarkFig6aBTreeYCSBC(b *testing.B) {
	runExperiment(b, "fig6a", 2, "Mops")
}

func BenchmarkFig6bBTreeDRAMReads(b *testing.B) {
	runExperiment(b, "fig6b", 1, "reads/op")
}

func BenchmarkTable2OffloadDelays(b *testing.B) {
	runExperiment(b, "table2", 1, "cycles")
}

func BenchmarkFig7SkiplistSensitivity(b *testing.B) {
	runExperiment(b, "fig7", 2, "Mops")
}

func BenchmarkFig8BTreeSensitivity(b *testing.B) {
	runExperiment(b, "fig8", 2, "Mops")
}

func BenchmarkFig9BTreeSensitivityReads(b *testing.B) {
	runExperiment(b, "fig9", 2, "reads/op")
}

func BenchmarkAblateWindow(b *testing.B) {
	runExperiment(b, "ablate-window", 2, "Mops")
}

func BenchmarkAblateSplit(b *testing.B) {
	runExperiment(b, "ablate-split", 2, "Mops")
}

func BenchmarkAblateMMIO(b *testing.B) {
	runExperiment(b, "ablate-mmio", 1, "Mops")
}

func BenchmarkAblatePartitions(b *testing.B) {
	runExperiment(b, "ablate-partitions", 1, "Mops")
}

package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hybrids/internal/core"
)

// pipeAddr is the dummy address of an in-memory pipe listener.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// oneConnListener adapts a pre-established net.Conn (typically one end
// of net.Pipe) to the net.Listener contract Serve expects: the first
// Accept returns the connection, later ones block until Close.
type oneConnListener struct {
	ch        chan net.Conn
	closed    chan struct{}
	closeOnce sync.Once
}

func newOneConnListener(c net.Conn) *oneConnListener {
	l := &oneConnListener{ch: make(chan net.Conn, 1), closed: make(chan struct{})}
	l.ch <- c
	return l
}

func (l *oneConnListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *oneConnListener) Close() error {
	l.closeOnce.Do(func() { close(l.closed) })
	return nil
}

func (l *oneConnListener) Addr() net.Addr { return pipeAddr{} }

// benchServer starts a server for benchmarking and returns a connected
// client. transport is "tcp" (real loopback socket) or "pipe"
// (net.Pipe; write deadlines are disabled there because pipe deadline
// timers allocate per call, which would pollute the measurement).
func benchServer(b *testing.B, transport string, window int) (*Server, *Client) {
	b.Helper()
	h := core.New(core.Config{Partitions: 4, KeyMax: 1 << 20})
	cfg := Config{Window: window}
	if transport == "pipe" {
		cfg.WriteTimeout = -1
	}
	s := New(h, cfg)
	var cl *Client
	switch transport {
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("listen: %v", err)
		}
		go s.Serve(ln)
		cl, err = Dial(ln.Addr().String())
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
	case "pipe":
		sc, cc := net.Pipe()
		go s.Serve(newOneConnListener(sc))
		cl = NewClient(cc)
	default:
		b.Fatalf("unknown transport %q", transport)
	}
	b.Cleanup(func() {
		cl.Close()
		s.Shutdown()
		h.Close()
	})
	return s, cl
}

// benchPreload inserts keys 1..n (value = key) through the client.
func benchPreload(b *testing.B, cl *Client, n int) {
	b.Helper()
	reqs := make([]Request, 0, 64)
	for lo := 1; lo <= n; lo += 64 {
		reqs = reqs[:0]
		for k := lo; k <= n && k < lo+64; k++ {
			reqs = append(reqs, Request{Op: OpPut, Key: uint64(k), Value: uint64(k)})
		}
		if _, err := cl.Pipeline(reqs); err != nil {
			b.Fatalf("preload: %v", err)
		}
	}
}

// BenchmarkServeLoopback measures the end-to-end serving path — client
// encode, socket, reader coalescing, batcher window, arena encode,
// writer drain, client decode — over a real TCP loopback socket and an
// in-memory pipe, with a blocking client (depth 1) and a pipelined one
// (depth = window). b.N counts operations (GET over 4096 resident
// keys).
func BenchmarkServeLoopback(b *testing.B) {
	const records = 4096
	for _, transport := range []string{"tcp", "pipe"} {
		for _, depth := range []int{1, 16} {
			mode := "blocking"
			if depth > 1 {
				mode = fmt.Sprintf("pipelined%d", depth)
			}
			b.Run(fmt.Sprintf("%s/%s", transport, mode), func(b *testing.B) {
				_, cl := benchServer(b, transport, 16)
				benchPreload(b, cl, records)
				reqs := make([]Request, depth)
				for i := range reqs {
					reqs[i] = Request{Op: OpGet, Key: uint64(i*977%records) + 1}
				}
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for n := 0; n < b.N; n += depth {
					if err := cl.Send(reqs...); err != nil {
						b.Fatalf("send: %v", err)
					}
					for range reqs {
						if _, err := cl.Recv(); err != nil {
							b.Fatalf("recv: %v", err)
						}
					}
				}
				elapsed := time.Since(start)
				if elapsed > 0 {
					b.ReportMetric(float64(b.N)/elapsed.Seconds()/1e6, "Mops/s")
				}
			})
		}
	}
}

package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hybrids/internal/core"
)

// newTestServer starts a server over a fresh hybrid map on an ephemeral
// loopback port. Cleanup shuts the server down and closes the map
// (Shutdown is idempotent, so tests may also drain explicitly).
func newTestServer(t *testing.T, cfg Config, hcfg core.Config) (*Server, *core.Hybrid, string) {
	t.Helper()
	h := core.New(hcfg)
	s := New(h, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		h.Close()
	})
	return s, h, ln.Addr().String()
}

// statValue extracts one counter from a STATS payload.
func statValue(t *testing.T, text []byte, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(string(text), "\n") {
		var n string
		var v uint64
		if _, err := fmt.Sscanf(line, "%s %d", &n, &v); err == nil && n == name {
			return v
		}
	}
	t.Fatalf("counter %q not in stats:\n%s", name, text)
	return 0
}

// TestServerBasicOps exercises every protocol operation and status
// through the convenience client: hits, misses, scans, stats, and the
// BadRequest paths (reserved key 0, out-of-range key, unknown op).
func TestServerBasicOps(t *testing.T) {
	_, _, addr := newTestServer(t, Config{Window: 4}, core.Config{Partitions: 4, KeyMax: 1 << 16})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if ok, err := c.Put(10, 100); err != nil || !ok {
		t.Fatalf("Put(10) = %v, %v", ok, err)
	}
	if ok, err := c.Put(10, 200); err != nil || ok {
		t.Fatalf("duplicate Put(10) = %v, %v, want miss", ok, err)
	}
	if v, ok, err := c.Get(10); err != nil || !ok || v != 100 {
		t.Fatalf("Get(10) = %d, %v, %v", v, ok, err)
	}
	if _, ok, err := c.Get(11); err != nil || ok {
		t.Fatalf("Get(11) should miss, got ok=%v err=%v", ok, err)
	}
	if ok, err := c.Update(10, 111); err != nil || !ok {
		t.Fatalf("Update(10) = %v, %v", ok, err)
	}
	if ok, err := c.Update(12, 1); err != nil || ok {
		t.Fatalf("Update(12) should miss, got %v, %v", ok, err)
	}
	if ok, err := c.Delete(10); err != nil || !ok {
		t.Fatalf("Delete(10) = %v, %v", ok, err)
	}
	if ok, err := c.Delete(10); err != nil || ok {
		t.Fatalf("second Delete(10) should miss, got %v, %v", ok, err)
	}

	for i := uint64(1); i <= 8; i++ {
		if ok, err := c.Put(i*100, i); err != nil || !ok {
			t.Fatalf("Put(%d) = %v, %v", i*100, ok, err)
		}
	}
	pairs, err := c.Scan(0, 100)
	if err != nil || len(pairs) != 8 {
		t.Fatalf("Scan = %d pairs, %v, want 8", len(pairs), err)
	}
	for i, p := range pairs {
		if want := uint64(i+1) * 100; p.Key != want || p.Value != uint64(i+1) {
			t.Fatalf("scan pair %d = %+v", i, p)
		}
	}
	if pairs, err = c.Scan(250, 2); err != nil || len(pairs) != 2 || pairs[0].Key != 300 {
		t.Fatalf("bounded Scan = %+v, %v", pairs, err)
	}

	// BadRequest paths: the reserved key 0, a key at/above KeyMax, and an
	// unknown op code. The connection survives all three.
	for _, r := range []Request{
		{Op: OpGet, Key: 0},
		{Op: OpPut, Key: 1 << 16, Value: 1},
		{Op: 99, Key: 5},
	} {
		if err := c.Send(r); err != nil {
			t.Fatalf("send %+v: %v", r, err)
		}
		resp, err := c.Recv()
		if err != nil || resp.Status != StatusBadRequest {
			t.Fatalf("%+v -> %+v, %v, want BadRequest", r, resp, err)
		}
	}

	text, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if got := statValue(t, text, "server/bad_requests"); got != 3 {
		t.Errorf("server/bad_requests = %d, want 3", got)
	}
	if got := statValue(t, text, "server/conns_accepted"); got != 1 {
		t.Errorf("server/conns_accepted = %d, want 1", got)
	}
	if statValue(t, text, "server/requests") == 0 {
		t.Error("server/requests = 0")
	}
}

// TestServerPipelinedBatch sends a large pipelined burst in one flush
// and checks every in-order response, then that the batch accounting is
// conserved: coalesced batch sizes must sum to the scalar request count.
func TestServerPipelinedBatch(t *testing.T) {
	_, _, addr := newTestServer(t, Config{Window: 8}, core.Config{Partitions: 4, KeyMax: 1 << 16})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const n = 400
	reqs := make([]Request, 0, 2*n)
	for i := uint64(1); i <= n; i++ {
		reqs = append(reqs, Request{Op: OpPut, Key: i, Value: i * 2})
	}
	for i := uint64(1); i <= n; i++ {
		reqs = append(reqs, Request{Op: OpGet, Key: i})
	}
	resps, err := c.Pipeline(reqs)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	for i, resp := range resps {
		if resp.Status != StatusOK {
			t.Fatalf("response %d status %d", i, resp.Status)
		}
		if i >= n && resp.Value != uint64(i-n+1)*2 {
			t.Fatalf("get %d value %d", i-n+1, resp.Value)
		}
	}
	text, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if sum := statValue(t, text, "server/batch/sum"); sum != 2*n {
		t.Errorf("server/batch/sum = %d, want %d", sum, 2*n)
	}
	if count := statValue(t, text, "server/batch/count"); count == 0 || count > 2*n {
		t.Errorf("server/batch/count = %d out of range", count)
	}
}

// TestServerConcurrentClientEquivalence runs several pipelining clients
// over disjoint key ranges, each checking every response against a
// sequential model map (read-your-writes holds per key range), then
// compares the final server state against the union of the models via
// the direct core API.
func TestServerConcurrentClientEquivalence(t *testing.T) {
	s, h, addr := newTestServer(t, Config{Window: 8},
		core.Config{Partitions: 4, KeyMax: 1 << 16, MailboxDepth: 64})
	const clients = 4
	const span = 8192
	const rounds = 60
	const perRound = 32

	models := make([]map[uint64]uint64, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl) + 1))
			base := uint64(cl*span) + 1
			model := map[uint64]uint64{}
			models[cl] = model
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for round := 0; round < rounds; round++ {
				reqs := make([]Request, perRound)
				type expect struct {
					ok    bool
					value uint64
				}
				want := make([]expect, perRound)
				for i := range reqs {
					key := base + uint64(rng.Intn(span))
					old, present := model[key]
					switch rng.Intn(4) {
					case 0:
						reqs[i] = Request{Op: OpGet, Key: key}
						want[i] = expect{ok: present, value: old}
					case 1:
						v := rng.Uint64()%1000 + 1
						reqs[i] = Request{Op: OpPut, Key: key, Value: v}
						want[i] = expect{ok: !present}
						if !present {
							model[key] = v
						}
					case 2:
						v := rng.Uint64()%1000 + 1
						reqs[i] = Request{Op: OpUpdate, Key: key, Value: v}
						want[i] = expect{ok: present}
						if present {
							model[key] = v
						}
					default:
						reqs[i] = Request{Op: OpDelete, Key: key}
						want[i] = expect{ok: present}
						delete(model, key)
					}
				}
				resps, err := c.Pipeline(reqs)
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", cl, round, err)
					return
				}
				for i, resp := range resps {
					wantStatus := StatusOK
					if !want[i].ok {
						wantStatus = StatusMiss
					}
					if resp.Status != wantStatus {
						errs <- fmt.Errorf("client %d round %d op %d (%+v): status %d, want %d",
							cl, round, i, reqs[i], resp.Status, wantStatus)
						return
					}
					if reqs[i].Op == OpGet && want[i].ok && resp.Value != want[i].value {
						errs <- fmt.Errorf("client %d round %d get %d: value %d, want %d",
							cl, round, reqs[i].Key, resp.Value, want[i].value)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drain the server, then audit the final state directly.
	s.Shutdown()
	total := 0
	for cl := 0; cl < clients; cl++ {
		total += len(models[cl])
		for key, want := range models[cl] {
			if v, ok := h.Get(key); !ok || v != want {
				t.Fatalf("final state key %d = (%d,%v), want %d", key, v, ok, want)
			}
		}
	}
	if got := h.Len(); got != total {
		t.Fatalf("final Len = %d, want %d", got, total)
	}
}

// TestServerGracefulShutdownDrain pins the drain guarantee: every
// request the server has read before Shutdown gets a response. The
// client pipelines a burst, the test waits (via the mutex-guarded
// server-side stats) until all of it has been read, shuts down while
// the responses are still streaming, and requires exactly one response
// per request followed by a clean connection close.
func TestServerGracefulShutdownDrain(t *testing.T) {
	s, h, addr := newTestServer(t, Config{Window: 8, Inflight: 16},
		core.Config{Partitions: 4, KeyMax: 1 << 16})
	// The Client type is single-goroutine by contract, and this test must
	// send and receive concurrently — so it speaks the wire format
	// directly over a raw connection.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	const n = 2000
	var reqBuf []byte
	for i := 0; i < n; i++ {
		reqBuf = AppendRequest(reqBuf, Request{Op: OpPut, Key: uint64(i) + 1, Value: uint64(i)})
	}

	got := make(chan int, 1)
	go func() {
		count := 0
		for count < n {
			if _, err := ReadResponse(br, OpPut); err != nil {
				break
			}
			count++
		}
		got <- count
	}()
	if _, err := nc.Write(reqBuf); err != nil {
		t.Fatalf("send: %v", err)
	}

	// Wait until the server has read the whole burst (responses may still
	// be in flight), then drain. Only this connection exists, so
	// server/requests counts exactly our requests.
	deadline := time.Now().Add(10 * time.Second)
	for statValue(t, s.StatsText(), "server/requests") < n {
		if time.Now().After(deadline) {
			t.Fatalf("server read %d/%d requests", statValue(t, s.StatsText(), "server/requests"), n)
		}
		time.Sleep(time.Millisecond)
	}
	s.Shutdown()

	if count := <-got; count != n {
		t.Fatalf("received %d responses, want %d (drain lost %d)", count, n, n-count)
	}
	// The drain reached the map: all n inserts applied.
	if gotLen := h.Len(); gotLen != n {
		t.Fatalf("Len = %d after drain, want %d", gotLen, n)
	}
	// And the connection is now cleanly closed: further reads fail.
	if _, err := ReadResponse(br, OpPut); err == nil {
		t.Fatal("read after drain succeeded")
	}
}

// TestServerRejectedAfterMapClose covers the Rejected status: if the
// hybrid map is closed out from under a running server (the documented
// order is Shutdown first, but the server must stay crash-free either
// way), data operations come back StatusRejected, and the convenience
// client folds that into an error.
func TestServerRejectedAfterMapClose(t *testing.T) {
	_, h, addr := newTestServer(t, Config{Window: 4}, core.Config{Partitions: 2, KeyMax: 1 << 12})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if ok, err := c.Put(5, 50); err != nil || !ok {
		t.Fatalf("Put = %v, %v", ok, err)
	}
	h.Close()
	if err := c.Send(Request{Op: OpGet, Key: 5}); err != nil {
		t.Fatalf("send: %v", err)
	}
	resp, err := c.Recv()
	if err != nil || resp.Status != StatusRejected {
		t.Fatalf("post-Close Get -> %+v, %v, want StatusRejected", resp, err)
	}
	if _, _, err := c.Get(5); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("client Get error = %v, want rejection", err)
	}
	// Scans read the quiescent stores directly and still work.
	if pairs, err := c.Scan(0, 10); err != nil || len(pairs) != 1 {
		t.Fatalf("post-Close Scan = %+v, %v", pairs, err)
	}
}

// TestServerSlowClientDeadline checks the slow-client eviction: a client
// that requests a flood of large SCAN responses and never reads its
// socket must be disconnected by the write deadline, counted in
// server/write_timeouts, without wedging the server (a healthy client
// keeps working throughout).
func TestServerSlowClientDeadline(t *testing.T) {
	s, h, addr := newTestServer(t,
		Config{Window: 4, Inflight: 8, WriteTimeout: 200 * time.Millisecond, ScanLimit: 1024},
		core.Config{Partitions: 4, KeyMax: 1 << 20})
	pairs := make([]core.KV, 1<<14)
	for i := range pairs {
		pairs[i] = core.KV{Key: uint64(i) + 1, Value: uint64(i)}
	}
	h.Build(pairs)

	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer slow.Close()
	// Each SCAN response is ~16 KiB; thousands of them overflow both
	// sockets' buffers long before the client reads a byte.
	go func() {
		var buf []byte
		for i := 0; i < 8192; i++ {
			buf = AppendRequest(buf[:0], Request{Op: OpScan, Key: 1, Value: 1024})
			if _, err := slow.Write(buf); err != nil {
				return // server hung up: expected
			}
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	for statValue(t, s.StatsText(), "server/write_timeouts") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("write deadline never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server is still healthy for well-behaved clients.
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if v, ok, err := c.Get(7); err != nil || !ok || v != 6 {
		t.Fatalf("healthy Get = %d, %v, %v", v, ok, err)
	}
}

// TestServerMaxConns checks the accept cap: the connection beyond the
// cap is closed immediately and counted, while the admitted one keeps
// working; a slot freed by a disconnect is reusable.
func TestServerMaxConns(t *testing.T) {
	s, _, addr := newTestServer(t, Config{Window: 4, MaxConns: 1},
		core.Config{Partitions: 2, KeyMax: 1 << 12})
	c1, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer c1.Close()
	if ok, err := c1.Put(1, 1); err != nil || !ok {
		t.Fatalf("c1 Put = %v, %v", ok, err)
	}

	c2, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial 2: %v", err) // kernel accepts; the server refuses after
	}
	c2.Send(Request{Op: OpGet, Key: 1})
	if _, err := c2.Recv(); err == nil {
		t.Fatal("over-cap connection was served")
	}
	c2.Close()

	deadline := time.Now().Add(10 * time.Second)
	for statValue(t, s.StatsText(), "server/conns_refused") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refusal never counted")
		}
		time.Sleep(time.Millisecond)
	}

	// c1 is unaffected.
	if v, ok, err := c1.Get(1); err != nil || !ok || v != 1 {
		t.Fatalf("c1 Get after refusal = %d, %v, %v", v, ok, err)
	}

	// Freeing the slot readmits new clients.
	c1.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		c3, err := Dial(addr)
		if err == nil {
			if ok, err := c3.Put(2, 2); err == nil && ok {
				c3.Close()
				break
			}
			c3.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("freed slot never readmitted a client")
		}
		time.Sleep(time.Millisecond)
	}
}

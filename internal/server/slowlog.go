package server

import (
	"fmt"
	"time"

	"hybrids/internal/sim/trace"
)

// logSlowOp emits one structured slow-op log line for a served batch
// whose wall-clock time crossed the connection's SlowOp threshold. The
// line is a single JSON object carrying the same six attribution bucket
// names the simulator's attr/* machinery uses (trace.Bucket), so a
// production slow-op record and a simulated per-op attribution sample
// decompose latency in the same vocabulary:
//
//	{"t":"slow_op","ts":"<RFC3339Nano>","conn":"<remote>","ops":N,
//	 "total_ns":T,"attr":{"host_cache":0,"coherence":0,"dram":0,
//	 "offload_wait":W,"nmp_serial":0,"host_compute":H}}
//
// Natively only the offload boundary is observable: offload_wait is the
// time spent blocked on the core runtime (batcher windows and scan
// barriers), host_compute is the residual (decode, encode, arena
// staging), and the cache/coherence/DRAM/serialization buckets — which
// need the simulator's cycle-level instrumentation — report 0. This runs
// on the reader goroutine but only for batches that already blew the
// threshold, so its allocations and the log mutex are off the
// steady-state path.
func (s *Server) logSlowOp(c *conn, ops int, t *serveTallies, total time.Duration) {
	w := s.cfg.SlowOpLog
	if w == nil {
		return
	}
	offload := t.offloadNanos
	if offload > total {
		offload = total
	}
	buckets := [trace.NumBuckets]uint64{
		trace.BucketOffloadWait: uint64(offload.Nanoseconds()),
		trace.BucketHostCompute: uint64((total - offload).Nanoseconds()),
	}
	line := make([]byte, 0, 256)
	line = fmt.Appendf(line, `{"t":"slow_op","ts":%q,"conn":%q,"ops":%d,"total_ns":%d,"attr":{`,
		time.Now().Format(time.RFC3339Nano), c.remote, ops, total.Nanoseconds())
	for b := trace.Bucket(0); b < trace.NumBuckets; b++ {
		if b > 0 {
			line = append(line, ',')
		}
		line = fmt.Appendf(line, "%q:%d", b.String(), buckets[b])
	}
	line = append(line, "}}\n"...)
	s.logMu.Lock()
	w.Write(line)
	s.logMu.Unlock()
}

package server

import (
	"bufio"
	"fmt"
	"net"
)

// Client is a protocol client for one connection. It supports both
// one-at-a-time calls (Get, Put, ...) and explicit pipelining
// (Send/Recv, Pipeline), tracking sent operations FIFO so responses —
// which the server returns strictly in request order — are decoded with
// the right payload shape. A Client is not safe for concurrent use;
// open one per goroutine.
type Client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// sent[sentHead:] holds the op codes of requests written but not yet
	// answered, consumed FIFO by Recv. The head index (rather than
	// re-slicing) lets the backing array reset and be reused once the
	// pipeline drains, so a steady request/response rhythm never
	// reallocates it.
	sent     []uint8
	sentHead int
	buf      []byte
	// body is ReadResponseBuf's frame scratch, reused across responses.
	body []byte
}

// Dial connects to a server at the TCP address addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (the test suite uses
// net.Pipe-like setups; production callers use Dial).
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 32<<10),
		bw: bufio.NewWriterSize(nc, 32<<10),
	}
}

// Close closes the connection. Responses still in flight are lost.
func (c *Client) Close() error { return c.nc.Close() }

// Send encodes reqs onto the connection without waiting for responses
// (pipelining) and flushes. Each sent request owes exactly one Recv.
func (c *Client) Send(reqs ...Request) error {
	c.buf = c.buf[:0]
	for _, r := range reqs {
		c.buf = AppendRequest(c.buf, r)
	}
	if _, err := c.bw.Write(c.buf); err != nil {
		return err
	}
	for _, r := range reqs {
		c.sent = append(c.sent, r.Op)
	}
	return c.bw.Flush()
}

// Recv reads the response to the oldest unanswered request. A SCAN
// response's Pairs slice is pooled; the caller owns it and may release
// it with PutPairs.
func (c *Client) Recv() (Response, error) {
	if c.sentHead == len(c.sent) {
		return Response{}, fmt.Errorf("server: Recv with no request in flight")
	}
	op := c.sent[c.sentHead]
	c.sentHead++
	if c.sentHead == len(c.sent) {
		c.sent = c.sent[:0]
		c.sentHead = 0
	}
	resp, body, err := ReadResponseBuf(c.br, op, c.body)
	c.body = body
	return resp, err
}

// Pending returns the number of requests awaiting a Recv.
func (c *Client) Pending() int { return len(c.sent) - c.sentHead }

// Pipeline sends all reqs, then collects all their responses in request
// order. On error the returned slice holds the responses received
// before it.
func (c *Client) Pipeline(reqs []Request) ([]Response, error) {
	if err := c.Send(reqs...); err != nil {
		return nil, err
	}
	out := make([]Response, 0, len(reqs))
	for range reqs {
		resp, err := c.Recv()
		if err != nil {
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// call issues one request and waits for its response.
func (c *Client) call(r Request) (Response, error) {
	if err := c.Send(r); err != nil {
		return Response{}, err
	}
	return c.Recv()
}

// Get looks key up. ok is false on a miss; err covers transport and
// protocol failures (including StatusRejected and StatusBadRequest).
func (c *Client) Get(key uint64) (value uint64, ok bool, err error) {
	return c.scalar(Request{Op: OpGet, Key: key})
}

// Put inserts key -> value; ok is false if the key already exists.
func (c *Client) Put(key, value uint64) (bool, error) {
	_, ok, err := c.scalar(Request{Op: OpPut, Key: key, Value: value})
	return ok, err
}

// Update overwrites an existing key's value; ok is false if absent.
func (c *Client) Update(key, value uint64) (bool, error) {
	_, ok, err := c.scalar(Request{Op: OpUpdate, Key: key, Value: value})
	return ok, err
}

// Delete removes key; ok is false if absent.
func (c *Client) Delete(key uint64) (bool, error) {
	_, ok, err := c.scalar(Request{Op: OpDelete, Key: key})
	return ok, err
}

// scalar issues one scalar request, folding the two failure statuses
// that are not legitimate data outcomes into the error.
func (c *Client) scalar(r Request) (uint64, bool, error) {
	resp, err := c.call(r)
	if err != nil {
		return 0, false, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Value, true, nil
	case StatusMiss:
		return resp.Value, false, nil
	}
	return 0, false, statusError(resp.Status)
}

// Scan returns up to limit pairs with keys >= from in ascending key
// order (the server may clamp limit to its configured cap). The returned
// slice is pooled: the caller owns it and may release it with PutPairs
// when done.
func (c *Client) Scan(from uint64, limit uint64) ([]Pair, error) {
	resp, err := c.call(Request{Op: OpScan, Key: from, Value: limit})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, statusError(resp.Status)
	}
	return resp.Pairs, nil
}

// Stats returns the server's metrics snapshot text.
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.call(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, statusError(resp.Status)
	}
	return resp.Stats, nil
}

// statusError converts a non-data response status into an error.
func statusError(status uint8) error {
	switch status {
	case StatusRejected:
		return fmt.Errorf("server: request rejected (server draining)")
	case StatusBadRequest:
		return fmt.Errorf("server: bad request")
	}
	return fmt.Errorf("server: unknown response status %d", status)
}

package server

import (
	"fmt"
	"time"
)

// Tunables is the live-reconfigurable subset of Config: the knobs an
// operator may change on a running server through the management plane
// (POST /config on the admin listener) without a restart. A connection
// captures the tunables current at accept time and keeps them for its
// lifetime, so reconfiguration is race-free by construction: existing
// connections finish under the values they started with, new connections
// pick up the new values, and the swap itself is one atomic pointer
// store. Every successful swap increments the server/config_epoch
// counter.
type Tunables struct {
	// Window is the per-connection request coalescing window (see
	// Config.Window). Normalized to 16 when <= 0.
	Window int
	// Inflight is the per-connection in-flight response budget (see
	// Config.Inflight). Normalized to 4x Window when <= 0; the span ring
	// capacity is the next power of two.
	Inflight int
	// MaxConns caps concurrently served connections (see
	// Config.MaxConns); 0 means unlimited. Applied at accept time, so
	// lowering it never disconnects existing clients.
	MaxConns int
	// WriteTimeout is the slow-client write deadline (see
	// Config.WriteTimeout). Normalized to 10s when 0; negative disables
	// write deadlines.
	WriteTimeout time.Duration
	// SlowOp is the slow-operation logging threshold: a served batch
	// whose wall-clock time reaches it emits one structured JSON line to
	// the server's slow-op log (see Config.SlowOpLog). 0 disables
	// sampling and its timing overhead entirely.
	SlowOp time.Duration
}

// normalize applies the documented defaults and bounds-checks the
// result.
func (t Tunables) normalize() (Tunables, error) {
	if t.Window <= 0 {
		t.Window = 16
	}
	if t.Inflight <= 0 {
		t.Inflight = 4 * t.Window
	}
	if t.WriteTimeout == 0 {
		t.WriteTimeout = 10 * time.Second
	}
	if t.Window > maxWindow {
		return t, fmt.Errorf("server: window %d exceeds maximum %d", t.Window, maxWindow)
	}
	if t.Inflight > maxInflight {
		return t, fmt.Errorf("server: inflight %d exceeds maximum %d", t.Inflight, maxInflight)
	}
	if t.MaxConns < 0 {
		return t, fmt.Errorf("server: maxconns %d is negative", t.MaxConns)
	}
	if t.SlowOp < 0 {
		return t, fmt.Errorf("server: slow-op threshold %v is negative", t.SlowOp)
	}
	return t, nil
}

// Sanity bounds on reconfigurable sizes: large enough for any sane
// deployment, small enough that a fat-fingered POST /config cannot make
// every new connection allocate a gigantic ring.
const (
	maxWindow   = 1 << 16
	maxInflight = 1 << 20
)

// Tunables returns the server's current live configuration.
func (s *Server) Tunables() Tunables {
	return *s.tun.Load()
}

// SetTunables validates, normalizes and atomically publishes a new live
// configuration, returning the normalized result. New connections pick
// the values up immediately; existing connections keep the tunables they
// captured at accept. On success the server/config_epoch counter
// increments (under the server mutex, like every registry fold), so
// scrapers can tell republishes apart.
func (s *Server) SetTunables(t Tunables) (Tunables, error) {
	t, err := t.normalize()
	if err != nil {
		return t, err
	}
	s.mu.Lock()
	s.tun.Store(&t)
	s.cEpoch.Inc()
	s.mu.Unlock()
	return t, nil
}

package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/metrics"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a default.
type Config struct {
	// Store names the engine behind the served map (a registry name like
	// "btree"); STATS reports it as server/store so clients can tell what
	// structure they are measuring. Empty omits the line.
	Store string
	// Window is the maximum number of pipelined scalar requests one
	// connection coalesces into a single core.ApplyBatchResults call (the
	// §3.5 non-blocking window). Defaults to 16.
	Window int
	// Inflight is the per-connection in-flight budget: the number of
	// completed responses that may await the writer goroutine before the
	// reader stops reading the socket (backpressure propagates to the
	// client through TCP flow control). It is the capacity of the
	// connection's response span ring and is rounded up to a power of
	// two. Defaults to 4x Window.
	Inflight int
	// MaxConns caps concurrently served connections; connections accepted
	// beyond the cap are closed immediately and counted in
	// server/conns_refused. 0 means unlimited.
	MaxConns int
	// WriteTimeout is the deadline armed once per writer drain batch. A
	// client that does not drain its responses within it is disconnected
	// and counted in server/write_timeouts. 0 defaults to 10s; a negative
	// value disables write deadlines entirely (useful over in-memory
	// pipes, whose deadline timers allocate).
	WriteTimeout time.Duration
	// ScanLimit caps the pairs returned by one SCAN request (the client's
	// requested count is clamped to it), bounding response frames and the
	// time a scan barrier occupies combiners. It also sizes the
	// per-connection response arena so a maximal scan frame stages there
	// without falling back to the heap. Defaults to 1024.
	ScanLimit int
	// Metrics receives the server's instruments (server/...); nil creates
	// a private registry. Connections accumulate per-op counts in their
	// own cacheline-padded atomic cells and fold them into these
	// instruments under the server's mutex when they close; a STATS
	// snapshot sums the folded base with the live connections' cells, so
	// the data path itself never takes the mutex.
	Metrics *metrics.Registry
}

// Server serves the binary protocol over TCP on behalf of one
// core.Hybrid. Construct with New, start with Serve or ListenAndServe,
// stop with Shutdown. The server never closes the hybrid map: callers
// Shutdown the server first, then Close the map, so every request read
// before the drain began reaches a combiner.
type Server struct {
	h   *core.Hybrid
	cfg Config

	// Derived data-plane geometry, fixed at construction.
	ringCap       int // span ring capacity: Inflight rounded up to 2^k
	arenaCap      int // response arena bytes (power of two)
	maxArenaFrame int // largest frame staged in the arena: arenaCap/2
	chunkFrames   int // scalar frames encoded per arena alloc

	// arenaPool recycles connection arenas (all sized arenaCap).
	arenaPool sync.Pool

	// mu guards the connection set, the lifecycle state and the folded
	// base values of the server/ instruments (the registry itself is
	// unsynchronized). The per-operation data path never takes it:
	// connections accumulate into their own connStats cells and fold
	// under mu only when they close.
	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	wg       sync.WaitGroup // one per live connection

	cAccepted   *metrics.Counter
	cRefused    *metrics.Counter
	cClosed     *metrics.Counter
	cRequests   *metrics.Counter
	cResponse   *metrics.Counter
	cRejected   *metrics.Counter
	cBadReq     *metrics.Counter
	cTimeouts   *metrics.Counter
	cScanned    *metrics.Counter
	hBatch      *metrics.Histogram
	cBatchSum   *metrics.Counter
	cBatchCount *metrics.Counter
	cOps        [OpStats + 1]*metrics.Counter
}

// New returns a server over h. The hybrid map must outlive the server
// (Shutdown before h.Close for a loss-free drain).
func New(h *core.Hybrid, cfg Config) *Server {
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = 4 * cfg.Window
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.ScanLimit <= 0 {
		cfg.ScanLimit = 1024
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		h:         h,
		cfg:       cfg,
		conns:     make(map[*conn]struct{}),
		cAccepted: reg.Counter("server/conns_accepted"),
		cRefused:  reg.Counter("server/conns_refused"),
		cClosed:   reg.Counter("server/conns_closed"),
		cRequests: reg.Counter("server/requests"),
		cResponse: reg.Counter("server/responses"),
		cRejected: reg.Counter("server/rejected"),
		cBadReq:   reg.Counter("server/bad_requests"),
		cTimeouts: reg.Counter("server/write_timeouts"),
		cScanned:  reg.Counter("server/scan_pairs"),
		hBatch:    reg.Histogram("server/batch"),
	}
	// Histogram registers its backing counters in the registry; fetching
	// them by name here (registration is idempotent) lets STATS read
	// sum/count without reaching back into the registry per request.
	s.cBatchSum = reg.Counter("server/batch/sum")
	s.cBatchCount = reg.Counter("server/batch/count")
	for op, name := range map[uint8]string{
		OpGet: "get", OpPut: "put", OpUpdate: "update",
		OpDelete: "delete", OpScan: "scan", OpStats: "stats",
	} {
		s.cOps[op] = reg.Counter("server/ops/" + name)
	}
	// Data-plane geometry: the span ring holds the in-flight budget, the
	// arena is sized so a maximal SCAN frame (and, for headroom, two of
	// them) stages in place, and no staged frame may exceed half the
	// arena — that caps any wrap skip below the frame size, so an
	// allocation always fits once earlier frames are drained.
	s.ringCap = nextPow2(cfg.Inflight)
	scanFrame := lenBytes + 1 + 4 + 16*cfg.ScanLimit
	s.arenaCap = nextPow2(max(64<<10, 2*scanFrame))
	if s.arenaCap > 1<<20 {
		s.arenaCap = 1 << 20
	}
	s.maxArenaFrame = s.arenaCap / 2
	s.chunkFrames = s.maxArenaFrame / scalarRespFrame
	return s
}

// nextPow2 returns the smallest power of two >= n (and at least 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ListenAndServe listens on the TCP address addr and serves until
// Shutdown. It returns after the listener is closed and reports any
// accept error other than the shutdown itself.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. Connections
// beyond MaxConns are refused (closed on accept). Serve returns nil on
// shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining || (s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns) {
			s.cRefused.Inc()
			s.mu.Unlock()
			nc.Close()
			continue
		}
		c := &conn{
			srv:     s,
			nc:      nc,
			ring:    newRespRing(s.ringCap),
			arena:   s.getArena(),
			batcher: s.h.NewBatcher(s.cfg.Window),
			stop:    make(chan struct{}),
		}
		s.conns[c] = struct{}{}
		s.cAccepted.Inc()
		s.wg.Add(1)
		s.mu.Unlock()
		go c.run()
	}
}

// Addr returns the listener's address (nil before Serve), letting tests
// bind port 0 and dial back.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server gracefully: it stops accepting, tells every
// connection to stop reading new requests, and waits until each has
// answered everything it had already read — no response in flight is
// lost. It does not touch the hybrid map; close that after Shutdown
// returns. Shutdown is idempotent and safe to call before Serve.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	live := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		live = append(live, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range live {
		c.beginDrain()
	}
	s.wg.Wait()
}

// getArena returns a pooled (reset) or freshly built connection arena.
func (s *Server) getArena() *byteArena {
	if v := s.arenaPool.Get(); v != nil {
		a := v.(*byteArena)
		a.reset()
		return a
	}
	return newByteArena(s.arenaCap)
}

// connClosed deregisters a finished connection: its locally accumulated
// metrics fold into the registry base under the server mutex (the only
// place the mutex and per-op counts ever meet) and its arena returns to
// the pool. Called by the connection's own reader goroutine after the
// writer has exited, so every cell is final.
func (s *Server) connClosed(c *conn) {
	st := &c.stats
	s.mu.Lock()
	delete(s.conns, c)
	s.cClosed.Inc()
	s.cRequests.Add(st.requests.Load())
	s.cResponse.Add(st.responses.Load())
	s.cRejected.Add(st.rejected.Load())
	s.cBadReq.Add(st.badReq.Load())
	s.cTimeouts.Add(st.timeouts.Load())
	s.cScanned.Add(st.scanned.Load())
	s.hBatch.Fold(st.batchSum.Load(), st.batchCount.Load(), &st.batchBuckets)
	for op := 1; op <= int(OpStats); op++ {
		s.cOps[op].Add(st.ops[op].Load())
	}
	s.mu.Unlock()
	s.arenaPool.Put(c.arena)
	s.wg.Done()
}

// StatsText renders the server's instruments as sorted "name value"
// lines — the STATS response payload. Safe to call while serving.
func (s *Server) StatsText() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statsLocked builds the STATS payload; callers hold s.mu. Each counter
// is the folded registry base plus the live connections' local cells
// (single-writer atomics, safe to Load concurrently) — so the snapshot
// reflects in-flight traffic without the data path ever taking the
// mutex. The core runtime's combiner-owned counters are consistent only
// at quiescence and are deliberately excluded.
func (s *Server) statsLocked() []byte {
	var out []byte
	if s.cfg.Store != "" {
		out = fmt.Appendf(out, "server/store %s\n", s.cfg.Store)
	}
	rows := []struct {
		c    *metrics.Counter
		live func(*connStats) *metrics.Local
	}{
		{s.cBadReq, func(st *connStats) *metrics.Local { return &st.badReq }},
		{s.cBatchCount, func(st *connStats) *metrics.Local { return &st.batchCount }},
		{s.cBatchSum, func(st *connStats) *metrics.Local { return &st.batchSum }},
		{s.cAccepted, nil},
		{s.cClosed, nil},
		{s.cRefused, nil},
		{s.cOps[OpDelete], func(st *connStats) *metrics.Local { return &st.ops[OpDelete] }},
		{s.cOps[OpGet], func(st *connStats) *metrics.Local { return &st.ops[OpGet] }},
		{s.cOps[OpPut], func(st *connStats) *metrics.Local { return &st.ops[OpPut] }},
		{s.cOps[OpScan], func(st *connStats) *metrics.Local { return &st.ops[OpScan] }},
		{s.cOps[OpStats], func(st *connStats) *metrics.Local { return &st.ops[OpStats] }},
		{s.cOps[OpUpdate], func(st *connStats) *metrics.Local { return &st.ops[OpUpdate] }},
		{s.cRejected, func(st *connStats) *metrics.Local { return &st.rejected }},
		{s.cRequests, func(st *connStats) *metrics.Local { return &st.requests }},
		{s.cResponse, func(st *connStats) *metrics.Local { return &st.responses }},
		{s.cScanned, func(st *connStats) *metrics.Local { return &st.scanned }},
		{s.cTimeouts, func(st *connStats) *metrics.Local { return &st.timeouts }},
	}
	for _, r := range rows {
		v := r.c.Value()
		if r.live != nil {
			for c := range s.conns {
				v += r.live(&c.stats).Load()
			}
		}
		out = fmt.Appendf(out, "%s %d\n", r.c.Name(), v)
	}
	return out
}

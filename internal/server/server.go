package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/metrics"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a default.
type Config struct {
	// Store names the engine behind the served map (a registry name like
	// "btree"); STATS reports it as server/store so clients can tell what
	// structure they are measuring. Empty omits the line.
	Store string
	// Window is the maximum number of pipelined scalar requests one
	// connection coalesces into a single core.ApplyBatchResults call (the
	// §3.5 non-blocking window). Defaults to 16.
	Window int
	// Inflight is the per-connection in-flight budget: the number of
	// completed responses that may await the writer goroutine before the
	// reader stops reading the socket (backpressure propagates to the
	// client through TCP flow control). It is the capacity of the
	// connection's response span ring and is rounded up to a power of
	// two. Defaults to 4x Window.
	Inflight int
	// MaxConns caps concurrently served connections; connections accepted
	// beyond the cap are closed immediately and counted in
	// server/conns_refused. 0 means unlimited.
	MaxConns int
	// WriteTimeout is the deadline armed once per writer drain batch. A
	// client that does not drain its responses within it is disconnected
	// and counted in server/write_timeouts. 0 defaults to 10s; a negative
	// value disables write deadlines entirely (useful over in-memory
	// pipes, whose deadline timers allocate).
	WriteTimeout time.Duration
	// ScanLimit caps the pairs returned by one SCAN request (the client's
	// requested count is clamped to it), bounding response frames and the
	// time a scan barrier occupies combiners. It also sizes the
	// per-connection response arena so a maximal scan frame stages there
	// without falling back to the heap. Defaults to 1024.
	ScanLimit int
	// Metrics receives the server's instruments (server/...); nil creates
	// a private registry. Connections accumulate per-op counts in their
	// own cacheline-padded atomic cells and fold them into these
	// instruments under the server's mutex when they close; a STATS
	// snapshot sums the folded base with the live connections' cells, so
	// the data path itself never takes the mutex.
	Metrics *metrics.Registry
	// SlowOp is the initial slow-operation logging threshold: a served
	// batch whose wall-clock time reaches it emits one structured JSON
	// line to SlowOpLog (schema: docs/ADMIN.md). 0 disables sampling —
	// and with it every timing call on the serve path. Reconfigurable
	// live through SetTunables.
	SlowOp time.Duration
	// SlowOpLog receives slow-op JSON lines (one Write per line); nil
	// discards them. The writer is called outside the server mutex under
	// a dedicated log mutex, so a slow log sink stalls only other slow-op
	// emissions, never the data path or STATS.
	SlowOpLog io.Writer
}

// Server serves the binary protocol over TCP on behalf of one
// core.Hybrid. Construct with New, start with Serve or ListenAndServe,
// stop with Shutdown. The server never closes the hybrid map: callers
// Shutdown the server first, then Close the map, so every request read
// before the drain began reaches a combiner.
type Server struct {
	h   *core.Hybrid
	cfg Config

	// tun is the live-reconfigurable configuration (see Tunables): one
	// atomic pointer, swapped whole by SetTunables, captured whole by
	// each connection at accept.
	tun atomic.Pointer[Tunables]

	// Derived data-plane geometry, fixed at construction (the arena is
	// pooled server-wide, so its size cannot follow live reconfiguration;
	// ScanLimit is therefore not a Tunable).
	arenaCap      int // response arena bytes (power of two)
	maxArenaFrame int // largest frame staged in the arena: arenaCap/2
	chunkFrames   int // scalar frames encoded per arena alloc

	// arenaPool recycles connection arenas (all sized arenaCap).
	arenaPool sync.Pool

	// logMu serializes slow-op log line writes (never held together with
	// mu).
	logMu sync.Mutex

	// mu guards the connection set, the lifecycle state and the folded
	// base values of the server/ instruments (the registry itself is
	// unsynchronized). The per-operation data path never takes it:
	// connections accumulate into their own connStats cells and fold
	// under mu only when they close.
	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	wg       sync.WaitGroup // one per live connection

	cAccepted   *metrics.Counter
	cRefused    *metrics.Counter
	cClosed     *metrics.Counter
	cRequests   *metrics.Counter
	cResponse   *metrics.Counter
	cRejected   *metrics.Counter
	cBadReq     *metrics.Counter
	cTimeouts   *metrics.Counter
	cScanned    *metrics.Counter
	cSlowOps    *metrics.Counter
	cEpoch      *metrics.Counter
	hBatch      *metrics.Histogram
	cBatchSum   *metrics.Counter
	cBatchCount *metrics.Counter
	cOps        [OpStats + 1]*metrics.Counter
}

// New returns a server over h. The hybrid map must outlive the server
// (Shutdown before h.Close for a loss-free drain). Reconfigurable fields
// outside their bounds are clamped to the defaults rather than rejected,
// matching the zero-value-usable Config contract.
func New(h *core.Hybrid, cfg Config) *Server {
	tun, err := Tunables{
		Window:       cfg.Window,
		Inflight:     cfg.Inflight,
		MaxConns:     cfg.MaxConns,
		WriteTimeout: cfg.WriteTimeout,
		SlowOp:       cfg.SlowOp,
	}.normalize()
	if err != nil {
		tun, _ = Tunables{}.normalize()
	}
	cfg.Window, cfg.Inflight = tun.Window, tun.Inflight
	cfg.MaxConns, cfg.WriteTimeout, cfg.SlowOp = tun.MaxConns, tun.WriteTimeout, tun.SlowOp
	if cfg.ScanLimit <= 0 {
		cfg.ScanLimit = 1024
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		h:         h,
		cfg:       cfg,
		conns:     make(map[*conn]struct{}),
		cAccepted: reg.Counter("server/conns_accepted"),
		cRefused:  reg.Counter("server/conns_refused"),
		cClosed:   reg.Counter("server/conns_closed"),
		cRequests: reg.Counter("server/requests"),
		cResponse: reg.Counter("server/responses"),
		cRejected: reg.Counter("server/rejected"),
		cBadReq:   reg.Counter("server/bad_requests"),
		cTimeouts: reg.Counter("server/write_timeouts"),
		cScanned:  reg.Counter("server/scan_pairs"),
		cSlowOps:  reg.Counter("server/slow_ops"),
		cEpoch:    reg.Counter("server/config_epoch"),
		hBatch:    reg.Histogram("server/batch"),
	}
	s.tun.Store(&tun)
	// Histogram registers its backing counters in the registry; fetching
	// them by name here (registration is idempotent) lets STATS read
	// sum/count without reaching back into the registry per request.
	s.cBatchSum = reg.Counter("server/batch/sum")
	s.cBatchCount = reg.Counter("server/batch/count")
	for op, name := range opNames {
		s.cOps[op] = reg.Counter("server/ops/" + name)
	}
	// Data-plane geometry: the arena is sized so a maximal SCAN frame
	// (and, for headroom, two of them) stages in place, and no staged
	// frame may exceed half the arena — that caps any wrap skip below the
	// frame size, so an allocation always fits once earlier frames are
	// drained. (Each connection's span ring is sized at accept from the
	// live Inflight tunable.)
	scanFrame := lenBytes + 1 + 4 + 16*cfg.ScanLimit
	s.arenaCap = nextPow2(max(64<<10, 2*scanFrame))
	if s.arenaCap > 1<<20 {
		s.arenaCap = 1 << 20
	}
	s.maxArenaFrame = s.arenaCap / 2
	s.chunkFrames = s.maxArenaFrame / scalarRespFrame
	return s
}

// nextPow2 returns the smallest power of two >= n (and at least 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ListenAndServe listens on the TCP address addr and serves until
// Shutdown. It returns after the listener is closed and reports any
// accept error other than the shutdown itself.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. Connections
// beyond MaxConns are refused (closed on accept). Serve returns nil on
// shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		tun := s.tun.Load()
		s.mu.Lock()
		if s.draining || (tun.MaxConns > 0 && len(s.conns) >= tun.MaxConns) {
			s.cRefused.Inc()
			s.mu.Unlock()
			nc.Close()
			continue
		}
		c := &conn{
			srv:     s,
			nc:      nc,
			tun:     tun,
			remote:  nc.RemoteAddr().String(),
			opened:  time.Now(),
			ring:    newRespRing(nextPow2(tun.Inflight)),
			arena:   s.getArena(),
			batcher: s.h.NewBatcher(tun.Window),
			stop:    make(chan struct{}),
		}
		s.conns[c] = struct{}{}
		s.cAccepted.Inc()
		s.wg.Add(1)
		s.mu.Unlock()
		go c.run()
	}
}

// Addr returns the listener's address (nil before Serve), letting tests
// bind port 0 and dial back.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server gracefully: it stops accepting, tells every
// connection to stop reading new requests, and waits until each has
// answered everything it had already read — no response in flight is
// lost. It does not touch the hybrid map; close that after Shutdown
// returns. Shutdown is idempotent and safe to call before Serve.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	live := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		live = append(live, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range live {
		c.beginDrain()
	}
	s.wg.Wait()
}

// getArena returns a pooled (reset) or freshly built connection arena.
func (s *Server) getArena() *byteArena {
	if v := s.arenaPool.Get(); v != nil {
		a := v.(*byteArena)
		a.reset()
		return a
	}
	return newByteArena(s.arenaCap)
}

// connClosed deregisters a finished connection: its locally accumulated
// metrics fold into the registry base under the server mutex (the only
// place the mutex and per-op counts ever meet) and its arena returns to
// the pool. Called by the connection's own reader goroutine after the
// writer has exited, so every cell is final.
func (s *Server) connClosed(c *conn) {
	st := &c.stats
	s.mu.Lock()
	delete(s.conns, c)
	s.cClosed.Inc()
	s.cRequests.Add(st.requests.Load())
	s.cResponse.Add(st.responses.Load())
	s.cRejected.Add(st.rejected.Load())
	s.cBadReq.Add(st.badReq.Load())
	s.cTimeouts.Add(st.timeouts.Load())
	s.cScanned.Add(st.scanned.Load())
	s.cSlowOps.Add(st.slowOps.Load())
	var buckets [metrics.NumBuckets]uint64
	for i := range st.batchBuckets {
		buckets[i] = st.batchBuckets[i].Load()
	}
	s.hBatch.Fold(st.batchSum.Load(), st.batchCount.Load(), &buckets)
	for op := 1; op <= int(OpStats); op++ {
		s.cOps[op].Add(st.ops[op].Load())
	}
	s.mu.Unlock()
	s.arenaPool.Put(c.arena)
	s.wg.Done()
}

// StatsText renders the server's instruments as sorted "name value"
// lines — the STATS response payload. Safe to call while serving.
func (s *Server) StatsText() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statRow pairs a registry counter with the accessor for its live
// per-connection cell (nil for counters maintained centrally).
type statRow struct {
	c    *metrics.Counter
	live func(*connStats) *metrics.Local
}

// statRows returns the server's counter rows in sorted-name order. The
// table is rebuilt per snapshot (snapshots are rare); the data path
// never touches it.
func (s *Server) statRows() []statRow {
	return []statRow{
		{s.cBadReq, func(st *connStats) *metrics.Local { return &st.badReq }},
		{s.cBatchCount, func(st *connStats) *metrics.Local { return &st.batchCount }},
		{s.cBatchSum, func(st *connStats) *metrics.Local { return &st.batchSum }},
		{s.cEpoch, nil},
		{s.cAccepted, nil},
		{s.cClosed, nil},
		{s.cRefused, nil},
		{s.cOps[OpDelete], func(st *connStats) *metrics.Local { return &st.ops[OpDelete] }},
		{s.cOps[OpGet], func(st *connStats) *metrics.Local { return &st.ops[OpGet] }},
		{s.cOps[OpPut], func(st *connStats) *metrics.Local { return &st.ops[OpPut] }},
		{s.cOps[OpScan], func(st *connStats) *metrics.Local { return &st.ops[OpScan] }},
		{s.cOps[OpStats], func(st *connStats) *metrics.Local { return &st.ops[OpStats] }},
		{s.cOps[OpUpdate], func(st *connStats) *metrics.Local { return &st.ops[OpUpdate] }},
		{s.cRejected, func(st *connStats) *metrics.Local { return &st.rejected }},
		{s.cRequests, func(st *connStats) *metrics.Local { return &st.requests }},
		{s.cResponse, func(st *connStats) *metrics.Local { return &st.responses }},
		{s.cScanned, func(st *connStats) *metrics.Local { return &st.scanned }},
		{s.cSlowOps, func(st *connStats) *metrics.Local { return &st.slowOps }},
		{s.cTimeouts, func(st *connStats) *metrics.Local { return &st.timeouts }},
	}
}

// liveValueLocked sums one row's registry base with every open
// connection's local cell; callers hold s.mu.
func (s *Server) liveValueLocked(r statRow) uint64 {
	v := r.c.Value()
	if r.live != nil {
		for c := range s.conns {
			v += r.live(&c.stats).Load()
		}
	}
	return v
}

// statsLocked builds the STATS payload; callers hold s.mu. Each counter
// is the folded registry base plus the live connections' local cells
// (single-writer atomics, safe to Load concurrently) — so the snapshot
// reflects in-flight traffic without the data path ever taking the
// mutex. The core runtime's combiner-owned counters are consistent only
// at quiescence and are deliberately excluded.
func (s *Server) statsLocked() []byte {
	var out []byte
	if s.cfg.Store != "" {
		out = fmt.Appendf(out, "server/store %s\n", s.cfg.Store)
	}
	for _, r := range s.statRows() {
		out = fmt.Appendf(out, "%s %d\n", r.c.Name(), s.liveValueLocked(r))
	}
	return out
}

// Store returns the configured engine name ("" when not set).
func (s *Server) Store() string { return s.cfg.Store }

// ExportMetrics captures every server/ instrument live: the counter map
// (histogram sum/count components excluded) and the server/batch
// histogram, each the folded registry base plus a sum over the open
// connections' cells. It is the management plane's scrape hook — safe to
// call at any time, including while serving and after Shutdown.
func (s *Server) ExportMetrics() (metrics.Snapshot, []metrics.HistSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	counters := make(metrics.Snapshot)
	var batch metrics.HistSnapshot
	for _, r := range s.statRows() {
		v := s.liveValueLocked(r)
		switch r.c {
		case s.cBatchSum:
			batch.Sum = v
		case s.cBatchCount:
			batch.Count = v
		default:
			counters[r.c.Name()] = v
		}
	}
	// Histogram shape: registry base (folds happen under s.mu, so the
	// read is consistent) plus the live connections' atomic bucket cells.
	batch.Name = s.hBatch.Name()
	for i := range batch.Buckets {
		batch.Buckets[i] = s.hBatch.Bucket(i)
		for c := range s.conns {
			batch.Buckets[i] += c.stats.batchBuckets[i].Load()
		}
	}
	return counters, []metrics.HistSnapshot{batch}
}

// ConnInfo is one live connection's management-plane snapshot: identity,
// the tunables it captured at accept, and its per-connection counters
// (loaded from the same padded cells the data path accumulates into).
type ConnInfo struct {
	// Remote is the connection's remote address.
	Remote string `json:"remote"`
	// AgeSeconds is the time since accept.
	AgeSeconds float64 `json:"age_seconds"`
	// Window is the coalescing window captured at accept.
	Window int `json:"window"`
	// Inflight is the in-flight response budget captured at accept.
	Inflight int `json:"inflight"`
	// Requests counts requests fully read from the socket.
	Requests uint64 `json:"requests"`
	// Responses counts response frames written.
	Responses uint64 `json:"responses"`
	// Rejected counts operations answered Rejected.
	Rejected uint64 `json:"rejected"`
	// BadRequests counts operations answered BadRequest.
	BadRequests uint64 `json:"bad_requests"`
	// ScanPairs counts pairs returned across the connection's SCANs.
	ScanPairs uint64 `json:"scan_pairs"`
	// SlowOps counts batches that crossed the slow-op threshold.
	SlowOps uint64 `json:"slow_ops"`
	// WriteTimeouts counts write-deadline expiries (0 or 1).
	WriteTimeouts uint64 `json:"write_timeouts"`
	// Batches counts coalesced serve batches; BatchOps sums their sizes
	// (mean batch size = BatchOps/Batches).
	Batches uint64 `json:"batches"`
	// BatchOps sums the sizes of the connection's serve batches.
	BatchOps uint64 `json:"batch_ops"`
	// Ops maps protocol op name (get, put, update, delete, scan, stats)
	// to the connection's request count for it.
	Ops map[string]uint64 `json:"ops"`
}

// opNames maps protocol op codes to their lowercase wire names.
var opNames = map[uint8]string{
	OpGet: "get", OpPut: "put", OpUpdate: "update",
	OpDelete: "delete", OpScan: "scan", OpStats: "stats",
}

// ConnsInfo snapshots every live connection for the management plane,
// sorted by age (oldest first) then remote address.
func (s *Server) ConnsInfo() []ConnInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	out := make([]ConnInfo, 0, len(s.conns))
	for c := range s.conns {
		st := &c.stats
		info := ConnInfo{
			Remote:        c.remote,
			AgeSeconds:    now.Sub(c.opened).Seconds(),
			Window:        c.tun.Window,
			Inflight:      c.tun.Inflight,
			Requests:      st.requests.Load(),
			Responses:     st.responses.Load(),
			Rejected:      st.rejected.Load(),
			BadRequests:   st.badReq.Load(),
			ScanPairs:     st.scanned.Load(),
			SlowOps:       st.slowOps.Load(),
			WriteTimeouts: st.timeouts.Load(),
			Batches:       st.batchCount.Load(),
			BatchOps:      st.batchSum.Load(),
			Ops:           make(map[string]uint64, len(opNames)),
		}
		for op, name := range opNames {
			info.Ops[name] = st.ops[op].Load()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AgeSeconds != out[j].AgeSeconds {
			return out[i].AgeSeconds > out[j].AgeSeconds
		}
		return out[i].Remote < out[j].Remote
	})
	return out
}

package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/metrics"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a default.
type Config struct {
	// Store names the engine behind the served map (a registry name like
	// "btree"); STATS reports it as server/store so clients can tell what
	// structure they are measuring. Empty omits the line.
	Store string
	// Window is the maximum number of pipelined scalar requests one
	// connection coalesces into a single core.ApplyBatchResults call (the
	// §3.5 non-blocking window). Defaults to 16.
	Window int
	// Inflight is the per-connection in-flight budget: the number of
	// completed responses that may await the writer goroutine before the
	// reader stops reading the socket (backpressure propagates to the
	// client through TCP flow control). Defaults to 4x Window.
	Inflight int
	// MaxConns caps concurrently served connections; connections accepted
	// beyond the cap are closed immediately and counted in
	// server/conns_refused. 0 means unlimited.
	MaxConns int
	// WriteTimeout is the per-flush deadline on response writes. A client
	// that does not drain its responses within it is disconnected and
	// counted in server/write_timeouts. Defaults to 10s.
	WriteTimeout time.Duration
	// ScanLimit caps the pairs returned by one SCAN request (the client's
	// requested count is clamped to it), bounding response frames and the
	// time a scan barrier occupies combiners. Defaults to 1024.
	ScanLimit int
	// Metrics receives the server's instruments (server/...); nil creates
	// a private registry. Unlike the core runtime's per-combiner
	// instruments, every server/ instrument is guarded by the server's
	// mutex, so the STATS request can read them while serving traffic.
	Metrics *metrics.Registry
}

// Server serves the binary protocol over TCP on behalf of one
// core.Hybrid. Construct with New, start with Serve or ListenAndServe,
// stop with Shutdown. The server never closes the hybrid map: callers
// Shutdown the server first, then Close the map, so every request read
// before the drain began reaches a combiner.
type Server struct {
	h   *core.Hybrid
	cfg Config

	// mu guards the connection set, the lifecycle state and every
	// server/ instrument (the metrics registry itself is unsynchronized).
	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	wg       sync.WaitGroup // one per live connection

	cAccepted   *metrics.Counter
	cRefused    *metrics.Counter
	cClosed     *metrics.Counter
	cRequests   *metrics.Counter
	cResponse   *metrics.Counter
	cRejected   *metrics.Counter
	cBadReq     *metrics.Counter
	cTimeouts   *metrics.Counter
	cScanned    *metrics.Counter
	hBatch      *metrics.Histogram
	cBatchSum   *metrics.Counter
	cBatchCount *metrics.Counter
	cOps        [OpStats + 1]*metrics.Counter
}

// New returns a server over h. The hybrid map must outlive the server
// (Shutdown before h.Close for a loss-free drain).
func New(h *core.Hybrid, cfg Config) *Server {
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = 4 * cfg.Window
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.ScanLimit <= 0 {
		cfg.ScanLimit = 1024
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		h:         h,
		cfg:       cfg,
		conns:     make(map[*conn]struct{}),
		cAccepted: reg.Counter("server/conns_accepted"),
		cRefused:  reg.Counter("server/conns_refused"),
		cClosed:   reg.Counter("server/conns_closed"),
		cRequests: reg.Counter("server/requests"),
		cResponse: reg.Counter("server/responses"),
		cRejected: reg.Counter("server/rejected"),
		cBadReq:   reg.Counter("server/bad_requests"),
		cTimeouts: reg.Counter("server/write_timeouts"),
		cScanned:  reg.Counter("server/scan_pairs"),
		hBatch:    reg.Histogram("server/batch"),
	}
	// Histogram registers its backing counters in the registry; fetching
	// them by name here (registration is idempotent) lets STATS read
	// sum/count without reaching back into the registry per request.
	s.cBatchSum = reg.Counter("server/batch/sum")
	s.cBatchCount = reg.Counter("server/batch/count")
	for op, name := range map[uint8]string{
		OpGet: "get", OpPut: "put", OpUpdate: "update",
		OpDelete: "delete", OpScan: "scan", OpStats: "stats",
	} {
		s.cOps[op] = reg.Counter("server/ops/" + name)
	}
	return s
}

// ListenAndServe listens on the TCP address addr and serves until
// Shutdown. It returns after the listener is closed and reports any
// accept error other than the shutdown itself.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. Connections
// beyond MaxConns are refused (closed on accept). Serve returns nil on
// shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining || (s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns) {
			s.cRefused.Inc()
			s.mu.Unlock()
			nc.Close()
			continue
		}
		c := &conn{
			srv:  s,
			nc:   nc,
			out:  make(chan pending, s.cfg.Inflight),
			stop: make(chan struct{}),
		}
		s.conns[c] = struct{}{}
		s.cAccepted.Inc()
		s.wg.Add(1)
		s.mu.Unlock()
		go c.run()
	}
}

// Addr returns the listener's address (nil before Serve), letting tests
// bind port 0 and dial back.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server gracefully: it stops accepting, tells every
// connection to stop reading new requests, and waits until each has
// answered everything it had already read — no response in flight is
// lost. It does not touch the hybrid map; close that after Shutdown
// returns. Shutdown is idempotent and safe to call before Serve.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	live := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		live = append(live, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range live {
		c.beginDrain()
	}
	s.wg.Wait()
}

// StatsText renders the server's instruments as sorted "name value"
// lines — the STATS response payload. Safe to call while serving.
func (s *Server) StatsText() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statsLocked builds the STATS payload; callers hold s.mu. Only the
// mutex-guarded server/ instruments are read — the core runtime's
// combiner-owned counters are consistent only at quiescence and are
// deliberately excluded from live snapshots.
func (s *Server) statsLocked() []byte {
	var out []byte
	if s.cfg.Store != "" {
		out = fmt.Appendf(out, "server/store %s\n", s.cfg.Store)
	}
	counters := []*metrics.Counter{
		s.cBadReq, s.cBatchCount, s.cBatchSum, s.cAccepted, s.cClosed,
		s.cRefused,
		s.cOps[OpDelete], s.cOps[OpGet], s.cOps[OpPut], s.cOps[OpScan],
		s.cOps[OpStats], s.cOps[OpUpdate],
		s.cRejected, s.cRequests, s.cResponse, s.cScanned, s.cTimeouts,
	}
	for _, c := range counters {
		out = fmt.Appendf(out, "%s %d\n", c.Name(), c.Value())
	}
	return out
}

package server

import (
	"bufio"
	"net"
	"sync"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/hds"
)

// pending is one completed response queued for the writer goroutine. op
// is the request's operation code, which selects the payload encoding.
type pending struct {
	op   uint8
	resp Response
}

// conn is one served connection: a reader goroutine (run) that decodes,
// coalesces and executes requests, and a writer goroutine that encodes
// and flushes responses in request order. The out channel's capacity is
// the connection's in-flight budget — when the writer falls behind, the
// reader blocks on the send and stops reading the socket.
type conn struct {
	srv  *Server
	nc   net.Conn
	out  chan pending
	stop chan struct{}
	// drainOnce makes beginDrain idempotent (Shutdown may race the
	// connection's own exit).
	drainOnce sync.Once

	// Reader-goroutine scratch, reused across batches.
	reqs     []Request
	ops      []hds.Request
	outcomes []core.Outcome
}

// beginDrain tells the connection to stop reading new requests. The
// read deadline kick makes any blocked or future socket read fail
// immediately; the closed stop channel tells the reader that the failure
// is a drain, not a client error. Requests already read are still served
// and their responses flushed.
func (c *conn) beginDrain() {
	c.drainOnce.Do(func() {
		close(c.stop)
		c.nc.SetReadDeadline(time.Now())
	})
}

// run is the connection's reader loop and lifecycle owner: it spawns the
// writer, reads and serves request batches until the client disconnects
// or a drain begins, then closes the out channel, waits for the writer
// to flush, and deregisters the connection.
func (c *conn) run() {
	s := c.srv
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()
	c.readLoop()
	close(c.out)
	<-writerDone
	c.nc.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.cClosed.Inc()
	s.mu.Unlock()
	s.wg.Done()
}

// readLoop reads and serves batches until the client disconnects, a
// framing error poisons the stream, or a drain begins.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 32<<10)
	window := c.srv.cfg.Window
	for {
		// A drain may have been signalled while serving the previous
		// batch; the deadline kick only fails *reads*, so check before
		// blocking on the next one.
		select {
		case <-c.stop:
			return
		default:
		}
		req, err := ReadRequest(br)
		if err != nil {
			return
		}
		c.reqs = append(c.reqs[:0], req)
		// Coalesce whatever the client has already pipelined, up to the
		// window — without ever blocking on the socket for more. Reads
		// of buffered bytes cannot fail with an I/O error, so err here
		// can only be a framing error.
		for len(c.reqs) < window && br.Buffered() >= reqFrame {
			req, err = ReadRequest(br)
			if err != nil {
				break
			}
			c.reqs = append(c.reqs, req)
		}
		c.serve(c.reqs)
		if err != nil {
			return // framing error, after serving the intact prefix
		}
	}
}

// serve executes one coalesced batch and queues its responses in request
// order. Runs of scalar operations go through a single
// core.ApplyBatchResults window; SCAN and STATS act as batch boundaries
// (a scan is a combiner barrier, a stats snapshot is server-local).
func (c *conn) serve(reqs []Request) {
	s := c.srv
	var nBad, nRejected, nScanned uint64
	var batchSizes []uint64

	c.ops = c.ops[:0]
	flush := func() {
		if len(c.ops) == 0 {
			return
		}
		if cap(c.outcomes) < len(c.ops) {
			c.outcomes = make([]core.Outcome, len(c.ops))
		}
		out := c.outcomes[:len(c.ops)]
		s.h.ApplyBatchResults(c.ops, s.cfg.Window, out)
		for _, o := range out {
			status := StatusOK
			switch {
			case o.Rejected:
				status = StatusRejected
				nRejected++
			case !o.Result.OK:
				status = StatusMiss
			}
			c.out <- pending{resp: Response{Status: status, Value: o.Result.Value}}
		}
		batchSizes = append(batchSizes, uint64(len(c.ops)))
		c.ops = c.ops[:0]
	}

	for _, r := range reqs {
		kind, known := kindOf(r.Op)
		if known && r.Op != OpScan {
			if r.Key == 0 || r.Key >= s.h.KeyMax() {
				flush()
				nBad++
				c.out <- pending{resp: Response{Status: StatusBadRequest}}
				continue
			}
			c.ops = append(c.ops, hds.Request{Kind: kind, Key: r.Key, Value: r.Value})
			continue
		}
		flush()
		switch r.Op {
		case OpScan:
			limit := uint64(s.cfg.ScanLimit)
			if r.Value < limit {
				limit = r.Value
			}
			kvs := s.h.Scan(r.Key, int(limit))
			pairs := make([]Pair, len(kvs))
			for i, kv := range kvs {
				pairs[i] = Pair{Key: kv.Key, Value: kv.Value}
			}
			nScanned += uint64(len(pairs))
			c.out <- pending{op: OpScan, resp: Response{Status: StatusOK, Pairs: pairs}}
		case OpStats:
			c.out <- pending{op: OpStats, resp: Response{Status: StatusOK, Stats: s.StatsText()}}
		default:
			nBad++
			c.out <- pending{resp: Response{Status: StatusBadRequest}}
		}
	}
	flush()

	s.mu.Lock()
	s.cRequests.Add(uint64(len(reqs)))
	for _, r := range reqs {
		if r.Op >= 1 && r.Op <= OpStats {
			s.cOps[r.Op].Inc()
		}
	}
	for _, b := range batchSizes {
		s.hBatch.Observe(b)
	}
	s.cBadReq.Add(nBad)
	s.cRejected.Add(nRejected)
	s.cScanned.Add(nScanned)
	s.mu.Unlock()
}

// writeLoop encodes and flushes queued responses. It flushes only when
// the queue momentarily empties (so pipelined responses share flushes)
// and puts the configured write deadline on every flush: a client that
// stops draining its socket is disconnected rather than allowed to pin
// the connection's buffers forever. After a write failure the loop keeps
// draining the queue without writing, so the reader never blocks on a
// dead writer.
func (c *conn) writeLoop() {
	s := c.srv
	bw := bufio.NewWriterSize(c.nc, 32<<10)
	var buf []byte
	var written uint64
	failed := false
	for p := range c.out {
		if failed {
			continue
		}
		switch p.op {
		case OpScan:
			buf = AppendScanResponse(buf[:0], p.resp.Status, p.resp.Pairs)
		case OpStats:
			buf = AppendStatsResponse(buf[:0], p.resp.Status, p.resp.Stats)
		default:
			buf = AppendScalarResponse(buf[:0], p.resp.Status, p.resp.Value)
		}
		c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := bw.Write(buf); err != nil {
			failed = c.writeFailed(err)
			continue
		}
		written++
		if len(c.out) == 0 {
			c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err := bw.Flush(); err != nil {
				failed = c.writeFailed(err)
			}
		}
	}
	if !failed {
		c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := bw.Flush(); err != nil {
			c.writeFailed(err)
		}
	}
	s.mu.Lock()
	s.cResponse.Add(written)
	s.mu.Unlock()
}

// writeFailed records a write error, counts deadline expiries as
// slow-client timeouts, and closes the socket so the reader's next read
// fails too. Always returns true (the writer's failed state).
func (c *conn) writeFailed(err error) bool {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		c.srv.mu.Lock()
		c.srv.cTimeouts.Inc()
		c.srv.mu.Unlock()
	}
	c.nc.Close()
	return true
}

package server

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/hds"
	"hybrids/internal/metrics"
)

// connStats is a connection's metric accumulators: single-writer atomic
// cells the hot path bumps instead of taking the server mutex. The
// reader-owned and writer-owned groups are separated by cacheline
// padding so the two goroutines never false-share. Totals are folded
// into the server's registry when the connection closes; a live STATS
// snapshot sums the registry base with Load over every open connection.
type connStats struct {
	_ metrics.Pad

	// Reader-owned.
	requests   metrics.Local
	rejected   metrics.Local
	badReq     metrics.Local
	scanned    metrics.Local
	slowOps    metrics.Local
	batchSum   metrics.Local
	batchCount metrics.Local
	ops        [OpStats + 1]metrics.Local
	// batchBuckets shapes the batch-size histogram: Local cells written
	// only by the reader (one Inc per coalesced batch, on reader-owned
	// lines) so the management plane can fold a live histogram across
	// open connections without racing the data path.
	batchBuckets [metrics.NumBuckets]metrics.Local

	_ metrics.Pad

	// Writer-owned.
	responses metrics.Local
	timeouts  metrics.Local

	_ metrics.Pad
}

// serveTallies accumulates one serve call's counter deltas in plain
// locals; they land in the connection's atomic cells in a single burst
// at the end of the batch, so a STATS request coalesced into the batch
// snapshots the state as of the batch's start (the pre-ring behaviour).
type serveTallies struct {
	bad        uint64
	rejected   uint64
	scanned    uint64
	batchSum   uint64
	batchCount uint64
	ops        [OpStats + 1]uint64
	// timed is set when slow-op sampling is armed for this serve call;
	// offloadNanos then accumulates the time spent waiting on the core
	// runtime (batcher windows and scan barriers) — the native analogue
	// of the simulator's offload-wait attribution bucket.
	timed        bool
	offloadNanos time.Duration
}

// conn is one served connection: a reader goroutine (run) that decodes,
// coalesces and executes requests, encoding responses straight into the
// connection's byte arena, and a writer goroutine that drains the span
// ring with batched socket writes. The ring's capacity is the in-flight
// budget — when the writer falls behind, the reader blocks pushing a
// span and stops reading the socket. A steady-state scalar operation
// touches no shared mutex and performs no heap allocation anywhere on
// this path.
type conn struct {
	srv *Server
	nc  net.Conn
	// tun is the live configuration captured at accept: the connection
	// serves its whole life under these values, so a concurrent
	// SetTunables never races the data path (new connections pick up the
	// new tunables).
	tun     *Tunables
	remote  string
	opened  time.Time
	ring    *respRing
	arena   *byteArena
	batcher *core.Batcher
	stop    chan struct{}
	// drainOnce makes beginDrain idempotent (Shutdown may race the
	// connection's own exit).
	drainOnce sync.Once

	// Reader-goroutine scratch, reused across batches.
	hdr      [reqFrame]byte
	reqs     []Request
	ops      []hds.Request
	outcomes []core.Outcome

	stats connStats
}

// beginDrain tells the connection to stop reading new requests. The
// read deadline kick makes any blocked or future socket read fail
// immediately; the closed stop channel tells the reader that the failure
// is a drain, not a client error. Requests already read are still served
// and their responses flushed.
func (c *conn) beginDrain() {
	c.drainOnce.Do(func() {
		close(c.stop)
		c.nc.SetReadDeadline(time.Now())
	})
}

// run is the connection's reader loop and lifecycle owner: it spawns the
// writer, reads and serves request batches until the client disconnects
// or a drain begins, then closes the span ring, waits for the writer to
// drain it, and deregisters the connection.
func (c *conn) run() {
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()
	c.readLoop()
	c.ring.close()
	<-writerDone
	c.nc.Close()
	c.srv.connClosed(c)
}

// readLoop reads and serves batches until the client disconnects, a
// framing error poisons the stream, or a drain begins.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 32<<10)
	window := c.tun.Window
	for {
		// A drain may have been signalled while serving the previous
		// batch; the deadline kick only fails *reads*, so check before
		// blocking on the next one.
		select {
		case <-c.stop:
			return
		default:
		}
		req, err := c.readRequest(br)
		if err != nil {
			return
		}
		c.reqs = append(c.reqs[:0], req)
		// Coalesce whatever the client has already pipelined, up to the
		// window — without ever blocking on the socket for more. Reads
		// of buffered bytes cannot fail with an I/O error, so err here
		// can only be a framing error.
		for len(c.reqs) < window && br.Buffered() >= reqFrame {
			req, err = c.readRequest(br)
			if err != nil {
				break
			}
			c.reqs = append(c.reqs, req)
		}
		c.serve(c.reqs)
		if err != nil {
			return // framing error, after serving the intact prefix
		}
	}
}

// readRequest decodes one request frame through the connection's header
// scratch (a stack array would escape through the io.Reader and allocate
// per call).
func (c *conn) readRequest(br *bufio.Reader) (Request, error) {
	return readRequestInto(br, &c.hdr)
}

// serve executes one coalesced batch and queues its responses in request
// order. Runs of scalar operations go through a single window of the
// connection's core.Batcher; SCAN and STATS act as batch boundaries (a
// scan is a combiner barrier, a stats snapshot is server-local).
func (c *conn) serve(reqs []Request) {
	s := c.srv
	var t serveTallies

	// Slow-op sampling: one time.Now per batch when armed, zero timing
	// calls when the threshold is 0 (the default), so the zero-allocation
	// zero-overhead contract is untouched unless an operator opts in.
	slow := c.tun.SlowOp
	var start time.Time
	if slow > 0 {
		t.timed = true
		start = time.Now()
	}

	c.ops = c.ops[:0]
	for _, r := range reqs {
		kind, known := kindOf(r.Op)
		if known && r.Op != OpScan {
			if r.Key == 0 || r.Key >= s.h.KeyMax() {
				c.flushOps(&t)
				t.bad++
				c.pushScalar(StatusBadRequest, 0)
				continue
			}
			c.ops = append(c.ops, hds.Request{Kind: kind, Key: r.Key, Value: r.Value})
			continue
		}
		c.flushOps(&t)
		switch r.Op {
		case OpScan:
			c.serveScan(r, &t)
		case OpStats:
			c.pushExt(AppendStatsResponse(nil, StatusOK, s.StatsText()))
		default:
			t.bad++
			c.pushScalar(StatusBadRequest, 0)
		}
	}
	c.flushOps(&t)

	for _, r := range reqs {
		if r.Op >= 1 && r.Op <= OpStats {
			t.ops[r.Op]++
		}
	}
	st := &c.stats
	st.requests.Add(uint64(len(reqs)))
	for op := 1; op <= int(OpStats); op++ {
		if t.ops[op] != 0 {
			st.ops[op].Add(t.ops[op])
		}
	}
	if t.batchCount != 0 {
		st.batchSum.Add(t.batchSum)
		st.batchCount.Add(t.batchCount)
	}
	if t.bad != 0 {
		st.badReq.Add(t.bad)
	}
	if t.rejected != 0 {
		st.rejected.Add(t.rejected)
	}
	if t.scanned != 0 {
		st.scanned.Add(t.scanned)
	}
	if t.timed {
		if total := time.Since(start); total >= slow {
			st.slowOps.Inc()
			s.logSlowOp(c, len(reqs), &t, total)
		}
	}
}

// flushOps runs the pending scalar operations through the batcher's
// window, then encodes the whole run of fixed-size response frames into
// the arena in chunked passes — one alloc per chunk, one span per
// response so the in-flight budget still counts responses.
func (c *conn) flushOps(t *serveTallies) {
	n := len(c.ops)
	if n == 0 {
		return
	}
	if cap(c.outcomes) < n {
		c.outcomes = make([]core.Outcome, n)
	}
	out := c.outcomes[:n]
	if t.timed {
		applyStart := time.Now()
		c.batcher.Apply(c.ops, out)
		t.offloadNanos += time.Since(applyStart)
	} else {
		c.batcher.Apply(c.ops, out)
	}
	for i := 0; i < n; {
		chunk := n - i
		if chunk > c.srv.chunkFrames {
			chunk = c.srv.chunkFrames
		}
		buf, end := c.arena.alloc(chunk * scalarRespFrame)
		base := end - uint64(chunk*scalarRespFrame)
		for j := 0; j < chunk; j++ {
			o := out[i+j]
			status := StatusOK
			switch {
			case o.Rejected:
				status = StatusRejected
				t.rejected++
			case !o.Result.OK:
				status = StatusMiss
			}
			putScalarResponse(buf[j*scalarRespFrame:(j+1)*scalarRespFrame], status, o.Result.Value)
		}
		for j := 0; j < chunk; j++ {
			c.ring.push(span{
				off: uint32((base + uint64(j*scalarRespFrame)) & c.arena.mask),
				n:   scalarRespFrame,
				end: base + uint64((j+1)*scalarRespFrame),
			})
		}
		i += chunk
	}
	t.batchSum += uint64(n)
	t.batchCount++
	c.stats.batchBuckets[metrics.BucketIndex(uint64(n))].Inc()
	c.ops = c.ops[:0]
}

// pushScalar encodes one scalar response frame into the arena and queues
// its span.
func (c *conn) pushScalar(status uint8, value uint64) {
	buf, end := c.arena.alloc(scalarRespFrame)
	putScalarResponse(buf, status, value)
	c.ring.push(span{off: uint32((end - scalarRespFrame) & c.arena.mask), n: scalarRespFrame, end: end})
}

// pushExt queues an out-of-arena frame (STATS, oversized SCAN). The span
// carries the current arena mark so the writer's release position stays
// monotonic.
func (c *conn) pushExt(frame []byte) {
	c.ring.push(span{ext: frame, end: c.arena.mark()})
}

// serveScan answers one SCAN request: the result is staged in a pooled
// KV buffer, encoded into the arena when the frame fits (anything up to
// half the arena), and into a heap frame otherwise.
func (c *conn) serveScan(r Request, t *serveTallies) {
	s := c.srv
	limit := uint64(s.cfg.ScanLimit)
	if r.Value < limit {
		limit = r.Value
	}
	var kvs []core.KV
	if t.timed {
		scanStart := time.Now()
		kvs = s.h.ScanAppend(kvPool.get(int(limit)), r.Key, int(limit))
		t.offloadNanos += time.Since(scanStart)
	} else {
		kvs = s.h.ScanAppend(kvPool.get(int(limit)), r.Key, int(limit))
	}
	t.scanned += uint64(len(kvs))
	frame := lenBytes + 1 + 4 + 16*len(kvs)
	if frame <= s.maxArenaFrame {
		buf, end := c.arena.alloc(frame)
		encodeScanKVs(buf, StatusOK, kvs)
		c.ring.push(span{off: uint32((end - uint64(frame)) & c.arena.mask), n: uint32(frame), end: end})
	} else {
		ext := make([]byte, frame)
		encodeScanKVs(ext, StatusOK, kvs)
		c.pushExt(ext)
	}
	kvPool.put(kvs)
}

// encodeScanKVs encodes a SCAN response frame into dst, which must be
// exactly lenBytes+1+4+16*len(kvs) long.
func encodeScanKVs(dst []byte, status uint8, kvs []core.KV) {
	binary.BigEndian.PutUint32(dst, uint32(1+4+16*len(kvs)))
	dst[lenBytes] = status
	binary.BigEndian.PutUint32(dst[lenBytes+1:], uint32(len(kvs)))
	p := dst[lenBytes+5:]
	for i, kv := range kvs {
		binary.BigEndian.PutUint64(p[16*i:], kv.Key)
		binary.BigEndian.PutUint64(p[16*i+8:], kv.Value)
	}
}

// writeLoop drains the span ring: contiguous arena spans merge into
// single socket writes, the write deadline is armed once per drained
// batch (not per frame), and a failed connection keeps consuming and
// releasing spans without writing so the reader never blocks on a dead
// peer.
func (c *conn) writeLoop() {
	r := c.ring
	a := c.arena
	failed := false
	for {
		lo, hi, ok := r.wait()
		if !ok {
			return
		}
		if !failed && c.tun.WriteTimeout > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(c.tun.WriteTimeout))
		}
		var written uint64
		for i := lo; i < hi; {
			sp := r.at(i)
			if failed {
				sp.ext = nil
				i++
				continue
			}
			if sp.ext != nil {
				if _, err := c.nc.Write(sp.ext); err != nil {
					failed = true
					c.writeFailed(err)
				} else {
					written++
				}
				sp.ext = nil
				i++
				continue
			}
			// Merge the run of physically adjacent arena spans into one
			// write (a wrap skip or an ext span breaks the run).
			off, n := sp.off, sp.n
			cnt := uint64(1)
			for j := i + 1; j < hi; j++ {
				nx := r.at(j)
				if nx.ext != nil || nx.off != off+n {
					break
				}
				n += nx.n
				cnt++
			}
			if _, err := c.nc.Write(a.buf[off : off+n]); err != nil {
				failed = true
				c.writeFailed(err)
			} else {
				written += cnt
			}
			i += cnt
		}
		a.release(r.at(hi-1).end)
		r.release(hi)
		if written != 0 {
			c.stats.responses.Add(written)
		}
	}
}

// writeFailed records a write error, counts deadline expiries as
// slow-client timeouts, and closes the socket so the reader's next read
// fails too.
func (c *conn) writeFailed(err error) {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		c.stats.timeouts.Inc()
	}
	c.nc.Close()
}

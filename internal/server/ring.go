package server

import (
	"sync/atomic"

	"hybrids/internal/metrics"
)

// span is one queued response frame: either a contiguous region of the
// connection's byte arena (ext nil) or an out-of-arena payload for frames
// too large to stage there (STATS, oversized SCANs). end is the arena's
// logical position that becomes free once this span has been written;
// ends are non-decreasing in push order (ext spans carry the arena mark
// at push time), so the writer releases the arena with a single store of
// the last span's end.
type span struct {
	off uint32 // arena byte offset (ext == nil)
	n   uint32 // frame length in bytes (ext == nil)
	end uint64 // arena logical position freed once written
	ext []byte // out-of-arena frame; nil for arena spans
}

// respRing is the connection's response queue: a fixed-capacity
// single-producer (reader goroutine) single-consumer (writer goroutine)
// ring of spans replacing the old per-response channel. The cursors are
// lock-free — a push and a drain never contend on anything wider than
// their own cacheline — and the ring's capacity is the connection's
// in-flight budget: a full ring blocks the reader, which stops reading
// the socket, which pushes back on the client through TCP flow control,
// exactly like the old channel's capacity did.
//
// Parking uses an eventcount-style protocol: a side about to block
// publishes its parked flag, rechecks the cursors, and only then waits
// on its one-permit wake channel; the other side checks the flag after
// every cursor move. Go's atomics are sequentially consistent, so the
// store-flag/recheck vs. move-cursor/check-flag pair can never both miss
// (Dekker), and a stale permit left in a channel merely causes one extra
// recheck.
type respRing struct {
	spans []span
	mask  uint64

	_    metrics.Pad
	head atomic.Uint64 // consumer cursor: next span to drain
	_    metrics.Pad
	tail atomic.Uint64 // producer cursor: next slot to fill
	_    metrics.Pad

	closed     atomic.Bool
	consParked atomic.Bool
	prodParked atomic.Bool
	wakeCons   chan struct{}
	wakeProd   chan struct{}
}

// newRespRing returns a ring with the given capacity (must be a power of
// two).
func newRespRing(capacity int) *respRing {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("server: ring capacity must be a positive power of two")
	}
	return &respRing{
		spans:    make([]span, capacity),
		mask:     uint64(capacity - 1),
		wakeCons: make(chan struct{}, 1),
		wakeProd: make(chan struct{}, 1),
	}
}

// push appends one span, blocking while the ring is full (the in-flight
// budget backpressure). Producer-side only.
func (r *respRing) push(sp span) {
	tail := r.tail.Load()
	for tail-r.head.Load() == uint64(len(r.spans)) {
		r.prodParked.Store(true)
		if tail-r.head.Load() != uint64(len(r.spans)) {
			r.prodParked.Store(false)
			break
		}
		<-r.wakeProd
		r.prodParked.Store(false)
	}
	r.spans[tail&r.mask] = sp
	r.tail.Store(tail + 1)
	if r.consParked.Load() {
		select {
		case r.wakeCons <- struct{}{}:
		default:
		}
	}
}

// wait blocks until at least one span is queued and returns the
// drainable cursor range [lo, hi). ok is false once the ring is closed
// and fully drained. Consumer-side only.
func (r *respRing) wait() (lo, hi uint64, ok bool) {
	lo = r.head.Load()
	for {
		if hi = r.tail.Load(); hi != lo {
			return lo, hi, true
		}
		if r.closed.Load() {
			// close happens after the producer's last push, so one more
			// tail recheck decides between a final batch and done.
			if r.tail.Load() == lo {
				return 0, 0, false
			}
			continue
		}
		r.consParked.Store(true)
		if r.tail.Load() != lo || r.closed.Load() {
			r.consParked.Store(false)
			continue
		}
		<-r.wakeCons
		r.consParked.Store(false)
	}
}

// at returns the span at cursor i (valid between wait and release).
func (r *respRing) at(i uint64) *span { return &r.spans[i&r.mask] }

// release hands cursors [head, hi) back to the producer. Consumer-side
// only.
func (r *respRing) release(hi uint64) {
	r.head.Store(hi)
	if r.prodParked.Load() {
		select {
		case r.wakeProd <- struct{}{}:
		default:
		}
	}
}

// close marks the ring closed (no further pushes); the consumer drains
// what remains and then wait reports done. Producer-side only.
func (r *respRing) close() {
	r.closed.Store(true)
	if r.consParked.Load() {
		select {
		case r.wakeCons <- struct{}{}:
		default:
		}
	}
}

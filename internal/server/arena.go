package server

import "sync/atomic"

// byteArena is the connection's response staging buffer: a power-of-two
// byte ring the reader encodes frames into and the writer drains with
// single batched net.Conn writes. Positions are logical (monotonically
// increasing); pos & mask is the physical offset. Frames never wrap: an
// allocation that would straddle the physical end skips the dead tail
// region instead, so every frame — and every run of adjacent frames — is
// one contiguous slice of buf.
//
// The producer (reader goroutine) owns pos; the consumer (writer
// goroutine) advances head as spans are written. Capacity discipline: no
// frame may exceed half the arena (see Server.maxArenaFrame), which
// bounds any skip below the frame size and guarantees an allocation
// always fits once everything before it is consumed — the producer can
// park on space but never deadlock. The parking protocol is the same
// eventcount scheme respRing uses.
type byteArena struct {
	buf  []byte
	mask uint64

	head atomic.Uint64 // consumed logical position (writer-advanced)
	pos  uint64        // allocated logical position (producer-owned)

	prodParked atomic.Bool
	wakeProd   chan struct{}
}

// newByteArena returns an arena of the given capacity (must be a power
// of two).
func newByteArena(capacity int) *byteArena {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("server: arena capacity must be a positive power of two")
	}
	return &byteArena{
		buf:      make([]byte, capacity),
		mask:     uint64(capacity - 1),
		wakeProd: make(chan struct{}, 1),
	}
}

// alloc reserves n contiguous bytes, blocking while the ring lacks space
// (backpressure: space frees as the writer drains). It returns the
// region to encode into and the logical end position a span must carry
// so the writer's release frees it. Producer-side only; n must not
// exceed half the capacity.
func (a *byteArena) alloc(n int) ([]byte, uint64) {
	pos := a.pos
	size := uint64(len(a.buf))
	if off := pos & a.mask; off+uint64(n) > size {
		pos += size - off // skip the dead tail region: frames never wrap
	}
	end := pos + uint64(n)
	for end-a.head.Load() > size {
		a.prodParked.Store(true)
		if end-a.head.Load() <= size {
			a.prodParked.Store(false)
			break
		}
		<-a.wakeProd
		a.prodParked.Store(false)
	}
	a.pos = end
	off := pos & a.mask
	return a.buf[off : off+uint64(n) : off+uint64(n)], end
}

// mark returns the current logical allocation position — the end an
// out-of-arena (ext) span carries so the writer's release store stays
// monotonic. Producer-side only.
func (a *byteArena) mark() uint64 { return a.pos }

// release marks everything below end consumed. Consumer-side only; ends
// are non-decreasing in span push order, so releasing the last written
// span's end frees all of them.
func (a *byteArena) release(end uint64) {
	if end > a.head.Load() {
		a.head.Store(end)
	}
	if a.prodParked.Load() {
		select {
		case a.wakeProd <- struct{}{}:
		default:
		}
	}
}

// reset returns the arena to its freshly constructed state so a pooled
// arena can be handed to a new connection. Both goroutines of the
// previous owner must have exited.
func (a *byteArena) reset() {
	a.head.Store(0)
	a.pos = 0
	a.prodParked.Store(false)
	select {
	case <-a.wakeProd: // drop a stale wake permit
	default:
	}
}

package server

import (
	"net"
	"testing"

	"hybrids/internal/core"
)

// TestServePathAllocs pins the data plane's zero-allocation contract: a
// steady-state pipelined scalar operation performs no heap allocation
// anywhere on the path — client encode, server reader (frame decode,
// coalescing, batcher window, combiner, arena encode), server writer
// (span drain, socket write) and client decode. testing.AllocsPerRun
// counts mallocs process-wide, so the server's goroutines are inside the
// measurement, not just the client's.
func TestServePathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	h := core.New(core.Config{Partitions: 4, KeyMax: 1 << 16})
	defer h.Close()
	s := New(h, Config{Window: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.Serve(ln)
	defer s.Shutdown()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const resident = 128
	for k := uint64(1); k <= resident; k++ {
		if ok, err := cl.Put(k, k*3); err != nil || !ok {
			t.Fatalf("preload Put(%d) = %v, %v", k, ok, err)
		}
	}

	const depth = 16
	reqs := make([]Request, depth)
	for i := range reqs {
		reqs[i] = Request{Op: OpGet, Key: uint64(i%resident) + 1}
	}
	round := func() {
		if err := cl.Send(reqs...); err != nil {
			t.Fatalf("send: %v", err)
		}
		for i := range reqs {
			resp, err := cl.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if resp.Status != StatusOK || resp.Value != reqs[i].Key*3 {
				t.Fatalf("get %d -> %+v", reqs[i].Key, resp)
			}
		}
	}
	// Warm every pool and scratch buffer on both sides (future pools,
	// batcher tags, coalescing slices, arena, client scratch).
	for i := 0; i < 64; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Errorf("pipelined scalar round allocated %v times, want 0", avg)
	}
}

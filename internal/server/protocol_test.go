package server

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestRequestRoundTrip encodes and re-decodes request frames, including
// the extremes of the key and value domains.
func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: 1},
		{Op: OpPut, Key: 42, Value: 99},
		{Op: OpUpdate, Key: 1<<64 - 1, Value: 1<<64 - 1},
		{Op: OpDelete, Key: 7},
		{Op: OpScan, Key: 0, Value: 1024},
		{Op: OpStats},
		{Op: 200, Key: 3, Value: 4}, // unknown ops still travel intact
	}
	var buf []byte
	for _, want := range cases {
		buf = AppendRequest(buf[:0], want)
		if len(buf) != reqFrame {
			t.Fatalf("frame size %d, want %d", len(buf), reqFrame)
		}
		got, err := ReadRequest(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("ReadRequest(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
}

// TestRequestPipelinedDecode decodes several frames back to back from
// one stream, as the server's reader does.
func TestRequestPipelinedDecode(t *testing.T) {
	var buf []byte
	var want []Request
	for i := uint64(1); i <= 20; i++ {
		r := Request{Op: uint8(i%5) + 1, Key: i, Value: i * 3}
		want = append(want, r)
		buf = AppendRequest(buf, r)
	}
	rd := bytes.NewReader(buf)
	for i, w := range want {
		got, err := ReadRequest(rd)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("frame %d: %+v, want %+v", i, got, w)
		}
	}
	if rd.Len() != 0 {
		t.Fatalf("%d trailing bytes", rd.Len())
	}
}

// TestReadRequestRejectsBadFraming checks that a length field other than
// the fixed request body size is an error, not a desynchronized read.
func TestReadRequestRejectsBadFraming(t *testing.T) {
	for _, n := range []uint32{0, 16, 18, 1 << 30} {
		buf := binary.BigEndian.AppendUint32(nil, n)
		buf = append(buf, make([]byte, reqBody)...)
		if _, err := ReadRequest(bytes.NewReader(buf)); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

// TestResponseRoundTrip covers all three payload shapes.
func TestResponseRoundTrip(t *testing.T) {
	var buf []byte

	buf = AppendScalarResponse(buf[:0], StatusMiss, 123)
	resp, err := ReadResponse(bytes.NewReader(buf), OpGet)
	if err != nil || resp.Status != StatusMiss || resp.Value != 123 {
		t.Fatalf("scalar round trip = %+v, %v", resp, err)
	}

	pairs := []Pair{{1, 10}, {2, 20}, {300, 3000}}
	buf = AppendScanResponse(buf[:0], StatusOK, pairs)
	resp, err = ReadResponse(bytes.NewReader(buf), OpScan)
	if err != nil || resp.Status != StatusOK || len(resp.Pairs) != 3 {
		t.Fatalf("scan round trip = %+v, %v", resp, err)
	}
	for i, p := range pairs {
		if resp.Pairs[i] != p {
			t.Fatalf("scan pair %d = %+v, want %+v", i, resp.Pairs[i], p)
		}
	}
	buf = AppendScanResponse(buf[:0], StatusOK, nil)
	if resp, err = ReadResponse(bytes.NewReader(buf), OpScan); err != nil || len(resp.Pairs) != 0 {
		t.Fatalf("empty scan round trip = %+v, %v", resp, err)
	}

	text := []byte("server/requests 7\nserver/responses 7\n")
	buf = AppendStatsResponse(buf[:0], StatusOK, text)
	resp, err = ReadResponse(bytes.NewReader(buf), OpStats)
	if err != nil || !bytes.Equal(resp.Stats, text) {
		t.Fatalf("stats round trip = %+v, %v", resp, err)
	}
}

// TestReadResponseRejectsMalformed checks the decoder's shape guards: a
// scalar body of the wrong size, a scan whose pair count disagrees with
// its payload, and an out-of-range frame length.
func TestReadResponseRejectsMalformed(t *testing.T) {
	scalar := binary.BigEndian.AppendUint32(nil, 5) // status + 4 bytes: too short
	scalar = append(scalar, StatusOK, 1, 2, 3, 4)
	if _, err := ReadResponse(bytes.NewReader(scalar), OpGet); err == nil {
		t.Error("short scalar body accepted")
	}

	scan := binary.BigEndian.AppendUint32(nil, 1+4+8) // claims 2 pairs, carries half of one
	scan = append(scan, StatusOK)
	scan = binary.BigEndian.AppendUint32(scan, 2)
	scan = append(scan, make([]byte, 8)...)
	if _, err := ReadResponse(bytes.NewReader(scan), OpScan); err == nil {
		t.Error("scan count/payload mismatch accepted")
	}

	huge := binary.BigEndian.AppendUint32(nil, maxRespFrame+1)
	if _, err := ReadResponse(bytes.NewReader(huge), OpGet); err == nil {
		t.Error("oversized frame length accepted")
	}
	empty := binary.BigEndian.AppendUint32(nil, 0)
	if _, err := ReadResponse(bytes.NewReader(empty), OpGet); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// FuzzReadRequest feeds arbitrary bytes to the request decoder: it must
// never panic, and whenever it accepts a frame, re-encoding must
// reproduce the consumed bytes exactly (the wire format is canonical).
func FuzzReadRequest(f *testing.F) {
	f.Add(AppendRequest(nil, Request{Op: OpGet, Key: 1}))
	f.Add(AppendRequest(nil, Request{Op: OpPut, Key: 77, Value: 1 << 40}))
	f.Add(AppendRequest(nil, Request{Op: OpScan, Key: 0, Value: 9}))
	f.Add(AppendRequest(AppendRequest(nil, Request{Op: OpStats}), Request{Op: OpDelete, Key: 3}))
	f.Add([]byte{0, 0, 0, 17})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got := AppendRequest(nil, r); !bytes.Equal(got, data[:reqFrame]) {
			t.Fatalf("re-encode of %+v = %x, want %x", r, got, data[:reqFrame])
		}
	})
}

// FuzzReadResponse feeds arbitrary bytes to the response decoder under
// every op's payload shape: it must error or decode, never panic, and an
// accepted decode must re-encode to the consumed frame.
func FuzzReadResponse(f *testing.F) {
	f.Add(uint8(OpGet), AppendScalarResponse(nil, StatusOK, 7))
	f.Add(uint8(OpScan), AppendScanResponse(nil, StatusOK, []Pair{{1, 2}, {3, 4}}))
	f.Add(uint8(OpScan), AppendScanResponse(nil, StatusOK, nil))
	f.Add(uint8(OpStats), AppendStatsResponse(nil, StatusOK, []byte("a 1\n")))
	f.Add(uint8(OpGet), []byte{0, 0, 0, 2, 1})
	f.Fuzz(func(t *testing.T, op uint8, data []byte) {
		resp, err := ReadResponse(bytes.NewReader(data), op)
		if err != nil {
			return
		}
		var again []byte
		switch op {
		case OpScan:
			again = AppendScanResponse(nil, resp.Status, resp.Pairs)
		case OpStats:
			again = AppendStatsResponse(nil, resp.Status, resp.Stats)
		default:
			again = AppendScalarResponse(nil, resp.Status, resp.Value)
		}
		if !bytes.Equal(again, data[:len(again)]) {
			t.Fatalf("re-encode mismatch for op %d", op)
		}
	})
}

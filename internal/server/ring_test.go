package server

import (
	"testing"
	"time"
)

// TestRespRingOrderAndBackpressure pushes more spans than the ring
// holds from one goroutine while the consumer drains in order, checking
// FIFO delivery, the full-ring producer block, and close-then-drain.
func TestRespRingOrderAndBackpressure(t *testing.T) {
	r := newRespRing(4)
	const total = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			r.push(span{end: uint64(i)})
		}
		r.close()
	}()
	next := uint64(0)
	for {
		lo, hi, ok := r.wait()
		if !ok {
			break
		}
		if hi-lo > 4 {
			t.Errorf("drain window %d spans, ring holds 4", hi-lo)
		}
		for i := lo; i < hi; i++ {
			if got := r.at(i).end; got != next {
				t.Fatalf("span %d out of order: end %d, want %d", i, got, next)
			}
			next++
		}
		r.release(hi)
	}
	if next != total {
		t.Fatalf("drained %d spans, want %d", next, total)
	}
	<-done
}

// TestRespRingProducerBlocks checks that a push into a full ring blocks
// until the consumer releases, rather than overwriting or dropping.
func TestRespRingProducerBlocks(t *testing.T) {
	r := newRespRing(2)
	r.push(span{end: 1})
	r.push(span{end: 2})
	pushed := make(chan struct{})
	go func() {
		r.push(span{end: 3}) // must block: ring full
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push into a full ring did not block")
	case <-time.After(20 * time.Millisecond):
	}
	lo, hi, ok := r.wait()
	if !ok || hi-lo != 2 {
		t.Fatalf("wait = [%d,%d) ok=%v", lo, hi, ok)
	}
	r.release(hi)
	select {
	case <-pushed:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked push never resumed after release")
	}
}

// TestByteArenaWrapSkip checks the no-wrap discipline: an allocation
// that would straddle the physical end skips the dead tail, stays
// contiguous, and the skipped region is reclaimed by the same release
// that frees the frame.
func TestByteArenaWrapSkip(t *testing.T) {
	a := newByteArena(64)
	buf1, end1 := a.alloc(24)
	if len(buf1) != 24 || end1 != 24 {
		t.Fatalf("alloc1 len %d end %d", len(buf1), end1)
	}
	if _, end2 := a.alloc(24); end2 != 48 {
		t.Fatalf("alloc2 end %d, want 48", end2)
	}
	a.release(48) // consume both frames
	// 16 bytes remain before the physical end; a 24-byte frame must skip
	// them and land at physical offset 0 with a logically advanced end.
	buf3, end3 := a.alloc(24)
	if end3 != 64+24 {
		t.Fatalf("alloc3 end %d, want %d (skip + frame)", end3, 64+24)
	}
	if &buf3[0] != &a.buf[0] {
		t.Fatal("alloc3 did not wrap to physical offset 0")
	}
}

// TestByteArenaBlocksUntilRelease checks producer parking on space: an
// allocation that does not fit the unconsumed window blocks until the
// consumer releases enough bytes.
func TestByteArenaBlocksUntilRelease(t *testing.T) {
	a := newByteArena(64)
	if _, end := a.alloc(32); end != 32 {
		t.Fatal("setup alloc")
	}
	a.alloc(32) // arena now full
	got := make(chan uint64, 1)
	go func() {
		_, end := a.alloc(32) // must block until 32 bytes free
		got <- end
	}()
	select {
	case end := <-got:
		t.Fatalf("alloc into a full arena returned end %d without blocking", end)
	case <-time.After(20 * time.Millisecond):
	}
	a.release(32)
	select {
	case end := <-got:
		if end != 96 {
			t.Fatalf("blocked alloc end %d, want 96", end)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked alloc never resumed after release")
	}
}

// Package server is the network front door of the native HybriDS
// runtime: a TCP serving layer over core.Hybrid speaking a compact
// length-prefixed binary protocol whose operations map 1:1 onto hds.Kind
// (GET/PUT/UPDATE/DELETE/SCAN), plus a STATS introspection request.
//
// Each connection is served by a reader goroutine — which coalesces
// pipelined client requests into core.ApplyBatch windows, the paper's
// §3.5 non-blocking admission primitive — and a writer goroutine that
// streams responses back in request order under a slow-client write
// deadline. Backpressure is explicit at every level: the per-connection
// in-flight budget bounds responses awaiting the writer (a full budget
// stops the reader, which stops reading the socket, which pushes back on
// the client through TCP flow control), and the accept cap bounds
// concurrent connections. Graceful shutdown stops reading new requests
// but answers every request fully read before it, so a draining server
// never loses an in-flight response. See docs/SERVING.md for the
// protocol specification and the backpressure model.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"hybrids/internal/hds"
)

// Protocol operation codes (the request frame's op byte). The five data
// operations map 1:1 onto hds.Kind; OpStats is served by the server
// itself from its metrics registry.
const (
	OpGet    uint8 = 1 // hds.Read: value lookup
	OpPut    uint8 = 2 // hds.Insert: insert if absent
	OpUpdate uint8 = 3 // hds.Update: overwrite if present
	OpDelete uint8 = 4 // hds.Remove: delete if present
	OpScan   uint8 = 5 // hds.Scan: up to Value pairs from Key upward
	OpStats  uint8 = 6 // server-side metrics snapshot (text payload)
)

// Response status codes (the response frame's status byte).
const (
	// StatusOK: the operation was applied and reported success.
	StatusOK uint8 = 0
	// StatusMiss: the operation was applied but reported failure — a GET
	// or DELETE of an absent key, a PUT of a present one. The store was
	// consulted; this is a legitimate outcome, not an error.
	StatusMiss uint8 = 1
	// StatusRejected: the server is shutting down and the operation never
	// reached a store. Clients may retry elsewhere.
	StatusRejected uint8 = 2
	// StatusBadRequest: the frame was well-formed but the request is not
	// servable (unknown op, key outside the map's key space).
	StatusBadRequest uint8 = 3
)

// Request is one decoded client request frame.
type Request struct {
	// Op is the protocol operation code.
	Op uint8
	// Key is the operation's key (SCAN: inclusive start, 0 allowed).
	Key uint64
	// Value is PUT/UPDATE's payload and SCAN's maximum pair count.
	Value uint64
}

// Pair is one key-value pair of a SCAN response.
type Pair struct {
	// Key is the pair's key.
	Key uint64
	// Value is the pair's value.
	Value uint64
}

// Response is one decoded server response frame. Which payload fields are
// meaningful depends on the request's op: scalar operations carry Value,
// SCAN carries Pairs, STATS carries Stats.
type Response struct {
	// Status is the response status code.
	Status uint8
	// Value is the read value (GET) or visited-pair count (mailbox
	// scans); zero otherwise.
	Value uint64
	// Pairs is the SCAN result in ascending key order.
	Pairs []Pair
	// Stats is the STATS text payload ("name value" lines, sorted).
	Stats []byte
}

// Wire geometry. Every frame is a big-endian uint32 byte length followed
// by that many payload bytes; request payloads are exactly reqBody bytes
// and scalar response frames are exactly scalarRespFrame bytes.
const (
	lenBytes        = 4
	reqBody         = 1 + 8 + 8 // op, key, value
	reqFrame        = lenBytes + reqBody
	scalarRespFrame = lenBytes + 1 + 8 // length, status, value
	maxRespFrame    = 1 << 26 // decoder sanity bound, far above any real response
)

// kindOf maps a data operation code to its hds.Kind. ok is false for
// OpStats and unknown codes, which have no hds equivalent.
func kindOf(op uint8) (hds.Kind, bool) {
	switch op {
	case OpGet:
		return hds.Read, true
	case OpPut:
		return hds.Insert, true
	case OpUpdate:
		return hds.Update, true
	case OpDelete:
		return hds.Remove, true
	case OpScan:
		return hds.Scan, true
	}
	return 0, false
}

// AppendRequest appends r's wire frame to buf and returns the extended
// slice.
func AppendRequest(buf []byte, r Request) []byte {
	buf = binary.BigEndian.AppendUint32(buf, reqBody)
	buf = append(buf, r.Op)
	buf = binary.BigEndian.AppendUint64(buf, r.Key)
	buf = binary.BigEndian.AppendUint64(buf, r.Value)
	return buf
}

// ReadRequest reads one request frame. A frame whose length field is not
// exactly the request body size is a framing error (the stream cannot be
// resynchronized) and closes the connection.
func ReadRequest(r io.Reader) (Request, error) {
	var hdr [reqFrame]byte
	return readRequestInto(r, &hdr)
}

// readRequestInto is ReadRequest through caller-owned header scratch, so
// the serving hot path reads frames without the stack array escaping
// through the io.Reader interface (which would allocate per call).
func readRequestInto(r io.Reader, hdr *[reqFrame]byte) (Request, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Request{}, err
	}
	if n := binary.BigEndian.Uint32(hdr[:lenBytes]); n != reqBody {
		return Request{}, fmt.Errorf("server: request frame length %d, want %d", n, reqBody)
	}
	return Request{
		Op:    hdr[lenBytes],
		Key:   binary.BigEndian.Uint64(hdr[lenBytes+1:]),
		Value: binary.BigEndian.Uint64(hdr[lenBytes+9:]),
	}, nil
}

// AppendScalarResponse appends a scalar (GET/PUT/UPDATE/DELETE) response
// frame: status byte plus a uint64 value.
func AppendScalarResponse(buf []byte, status uint8, value uint64) []byte {
	buf = binary.BigEndian.AppendUint32(buf, 1+8)
	buf = append(buf, status)
	return binary.BigEndian.AppendUint64(buf, value)
}

// putScalarResponse encodes a scalar response frame into dst, which must
// be exactly scalarRespFrame bytes (the serving path pre-allocates whole
// runs of them in the arena).
func putScalarResponse(dst []byte, status uint8, value uint64) {
	binary.BigEndian.PutUint32(dst, 1+8)
	dst[lenBytes] = status
	binary.BigEndian.PutUint64(dst[lenBytes+1:], value)
}

// AppendScanResponse appends a SCAN response frame: status byte, a uint32
// pair count, then count (key, value) pairs.
func AppendScanResponse(buf []byte, status uint8, pairs []Pair) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+4+16*len(pairs)))
	buf = append(buf, status)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pairs)))
	for _, p := range pairs {
		buf = binary.BigEndian.AppendUint64(buf, p.Key)
		buf = binary.BigEndian.AppendUint64(buf, p.Value)
	}
	return buf
}

// AppendStatsResponse appends a STATS response frame: status byte plus
// the snapshot text.
func AppendStatsResponse(buf []byte, status uint8, text []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(text)))
	buf = append(buf, status)
	return append(buf, text...)
}

// ReadResponse reads one response frame, decoding the payload by the op
// of the request it answers (responses arrive strictly in request order,
// so pipelining clients replay their sent ops FIFO). A SCAN response's
// Pairs slice comes from the decode pool; the caller owns it and may
// release it with PutPairs.
func ReadResponse(r io.Reader, op uint8) (Response, error) {
	resp, _, err := ReadResponseBuf(r, op, nil)
	return resp, err
}

// ReadResponseBuf is ReadResponse with frame scratch reuse: scratch (may
// be nil) holds the frame payload during decoding and is returned, grown
// as needed, for the next call — so scalar responses are decoded with no
// allocation at all. Payloads that outlive the call are still copied out
// of the scratch: SCAN pairs into a pooled slice the caller owns (see
// PutPairs) and STATS text into a fresh slice.
func ReadResponseBuf(r io.Reader, op uint8, scratch []byte) (Response, []byte, error) {
	resp, scratch, _, err := ReadResponseReuse(r, op, scratch, nil)
	return resp, scratch, err
}

// ReadResponseReuse is ReadResponseBuf with caller-owned SCAN pair reuse:
// when pairs is non-nil it backs the decoded Response.Pairs (grown as
// needed and returned for the next call), bypassing the decode pool — a
// load generator replaying a scan-heavy stream through one buffer decodes
// every response with zero steady-state allocations. With pairs nil, SCAN
// results come from the pool exactly as in ReadResponseBuf.
func ReadResponseReuse(r io.Reader, op uint8, scratch []byte, pairs []Pair) (Response, []byte, []Pair, error) {
	if cap(scratch) < lenBytes {
		scratch = make([]byte, 0, 512)
	}
	hdr := scratch[:lenBytes]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Response{}, scratch, pairs, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n < 1 || n > maxRespFrame {
		return Response{}, scratch, pairs, fmt.Errorf("server: response frame length %d out of range", n)
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, 0, n)
	}
	body := scratch[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return Response{}, scratch, pairs, err
	}
	resp := Response{Status: body[0]}
	body = body[1:]
	switch op {
	case OpScan:
		if len(body) < 4 {
			return Response{}, scratch, pairs, fmt.Errorf("server: scan response truncated (%d bytes)", len(body))
		}
		count := binary.BigEndian.Uint32(body)
		body = body[4:]
		if uint64(len(body)) != uint64(count)*16 {
			return Response{}, scratch, pairs, fmt.Errorf("server: scan response %d pairs but %d payload bytes", count, len(body))
		}
		var out []Pair
		switch {
		case pairs != nil && cap(pairs) >= int(count):
			out = pairs[:count]
		case pairs != nil:
			pairs = make([]Pair, count)
			out = pairs
		default:
			out = pairPool.get(int(count))[:count]
		}
		for i := range out {
			out[i].Key = binary.BigEndian.Uint64(body[16*i:])
			out[i].Value = binary.BigEndian.Uint64(body[16*i+8:])
		}
		resp.Pairs = out
	case OpStats:
		resp.Stats = append([]byte(nil), body...)
	default:
		if len(body) != 8 {
			return Response{}, scratch, pairs, fmt.Errorf("server: scalar response body %d bytes, want 8", len(body))
		}
		resp.Value = binary.BigEndian.Uint64(body)
	}
	return resp, scratch, pairs, nil
}

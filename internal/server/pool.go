package server

import (
	"math/bits"
	"sync"

	"hybrids/internal/core"
)

// Size-classed slice pools for SCAN buffers: the server stages scan
// results in pooled []core.KV buffers and the client decodes pairs into
// pooled []Pair buffers, so repeated scans recycle their backing arrays
// instead of allocating fresh ones per response. Classes are power-of-two
// capacities from poolMinShift up; a request beyond the largest class
// falls through to a plain allocation.
const (
	poolMinShift = 5  // smallest class: 32 elements
	poolClasses  = 16 // largest class: 32 << 15 = 1M elements
)

// slicePool is a size-classed free list of slices of T. get returns a
// zero-length slice with at least the requested capacity; put files a
// slice back under its capacity's class (non-class capacities are
// dropped, so only slices that came from get recycle).
type slicePool[T any] struct {
	classes [poolClasses]sync.Pool
}

// classFor returns the class index whose capacity (poolMinShift+i bits)
// is the smallest holding n elements, or -1 when n exceeds every class.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n-1)) - poolMinShift
	if c < 0 {
		c = 0
	}
	if c >= poolClasses {
		return -1
	}
	return c
}

// get returns a zero-length slice with capacity >= n.
func (p *slicePool[T]) get(n int) []T {
	c := classFor(n)
	if c < 0 {
		return make([]T, 0, n)
	}
	if v := p.classes[c].Get(); v != nil {
		return (*(v.(*[]T)))[:0]
	}
	return make([]T, 0, 1<<(poolMinShift+c))
}

// put recycles s for a future get. Slices whose capacity is not an exact
// class size are dropped.
func (p *slicePool[T]) put(s []T) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	i := bits.Len(uint(c)) - 1 - poolMinShift
	if i < 0 || i >= poolClasses {
		return
	}
	s = s[:0]
	p.classes[i].Put(&s)
}

var (
	// kvPool recycles the server-side scan staging buffers.
	kvPool slicePool[core.KV]
	// pairPool recycles client-side decoded SCAN pair slices.
	pairPool slicePool[Pair]
)

// PutPairs returns a SCAN result slice to the decode pool. Responses
// decoded by ReadResponse, ReadResponseBuf and Client.Scan carry pooled
// Pairs slices the caller owns; callers done with one may hand it back
// here so the next scan decode reuses the array. Releasing is optional —
// a slice that is never returned is simply collected — but a released
// slice must not be used afterwards.
func PutPairs(p []Pair) { pairPool.put(p) }

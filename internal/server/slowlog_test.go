package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/sim/trace"
)

// syncBuffer lets the test read the slow-op stream while the reader
// goroutines write it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// slowOpLine mirrors the documented slow-op record schema.
type slowOpLine struct {
	T       string            `json:"t"`
	TS      time.Time         `json:"ts"`
	Conn    string            `json:"conn"`
	Ops     int               `json:"ops"`
	TotalNS int64             `json:"total_ns"`
	Attr    map[string]uint64 `json:"attr"`
}

// TestSlowOpLog drives traffic with a 1ns threshold (every batch is
// slow) and checks each emitted line parses as the documented JSON
// schema: type tag, RFC3339 timestamp, remote address, op count, total,
// and an attribution map carrying exactly the simulator's six bucket
// names whose observable components sum to the total.
func TestSlowOpLog(t *testing.T) {
	var log syncBuffer
	s, _, addr := newTestServer(t,
		Config{Window: 4, SlowOp: time.Nanosecond, SlowOpLog: &log},
		core.Config{Partitions: 2, KeyMax: 1 << 12})

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for i := uint64(1); i <= 64; i++ {
		if _, err := c.Put(i, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	c.Close()
	s.Shutdown()

	names := make(map[string]bool, trace.NumBuckets)
	for b := trace.Bucket(0); b < trace.NumBuckets; b++ {
		names[b.String()] = true
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(log.Bytes()))
	for sc.Scan() {
		lines++
		var rec slowOpLine
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v\n%s", lines, err, sc.Bytes())
		}
		if rec.T != "slow_op" || rec.Conn == "" || rec.Ops <= 0 || rec.TotalNS <= 0 || rec.TS.IsZero() {
			t.Fatalf("line %d: bad record %+v", lines, rec)
		}
		if len(rec.Attr) != int(trace.NumBuckets) {
			t.Fatalf("line %d: %d attr buckets, want %d", lines, len(rec.Attr), trace.NumBuckets)
		}
		var sum uint64
		for name, v := range rec.Attr {
			if !names[name] {
				t.Fatalf("line %d: unknown attr bucket %q", lines, name)
			}
			sum += v
		}
		if sum != uint64(rec.TotalNS) {
			t.Fatalf("line %d: attr sum %d != total_ns %d", lines, sum, rec.TotalNS)
		}
	}
	if lines == 0 {
		t.Fatalf("no slow-op lines emitted at a 1ns threshold")
	}
	if got := statValue(t, s.StatsText(), "server/slow_ops"); got != uint64(lines) {
		t.Fatalf("server/slow_ops = %d, %d lines logged", got, lines)
	}
}

package server

import (
	"net"
	"testing"

	"hybrids/internal/core"
	"hybrids/internal/metrics"
)

// TestServerMixedPipelineBatches drives a pipelined burst whose SCAN and
// STATS requests split the coalescing windows mid-pipeline, and checks
// every response in order plus the exact batch-size histogram the splits
// must produce. net.Pipe makes the coalescing deterministic: the whole
// burst crosses in one write, so the server's reader sees it buffered
// and slices it purely by window size and batch boundaries.
func TestServerMixedPipelineBatches(t *testing.T) {
	reg := metrics.NewRegistry()
	h := core.New(core.Config{Partitions: 4, KeyMax: 1 << 16})
	defer h.Close()
	s := New(h, Config{Window: 8, Metrics: reg})
	sc, cc := net.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(newOneConnListener(sc)) }()
	cl := NewClient(cc)
	defer cl.Close()

	// 24 requests, window 8. The reader coalesces three windows of 8;
	// the SCAN (request 7) and STATS (request 12) are batch boundaries:
	//   window 1: PUT x6 | SCAN | GET      -> scalar batches 6, 1
	//   window 2: GET x3 | STATS | GET x4  -> scalar batches 3, 4
	//   window 3: GET x8                   -> scalar batch  8
	reqs := make([]Request, 0, 24)
	for k := uint64(1); k <= 6; k++ {
		reqs = append(reqs, Request{Op: OpPut, Key: k, Value: k * 10})
	}
	reqs = append(reqs, Request{Op: OpScan, Key: 1, Value: 3})
	for k := uint64(1); k <= 4; k++ {
		reqs = append(reqs, Request{Op: OpGet, Key: k})
	}
	reqs = append(reqs, Request{Op: OpStats})
	for k := uint64(1); k <= 12; k++ {
		reqs = append(reqs, Request{Op: OpGet, Key: k})
	}

	resps, err := cl.Pipeline(reqs)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	for i := 0; i < 6; i++ {
		if resps[i].Status != StatusOK {
			t.Fatalf("PUT %d status %d", i+1, resps[i].Status)
		}
	}
	scan := resps[6]
	if scan.Status != StatusOK || len(scan.Pairs) != 3 {
		t.Fatalf("SCAN -> status %d, %d pairs, want OK/3", scan.Status, len(scan.Pairs))
	}
	for i, p := range scan.Pairs {
		if want := uint64(i + 1); p.Key != want || p.Value != want*10 {
			t.Fatalf("scan pair %d = %+v", i, p)
		}
	}
	PutPairs(scan.Pairs)
	for i := 7; i < 11; i++ {
		key := uint64(i - 6)
		if resps[i].Status != StatusOK || resps[i].Value != key*10 {
			t.Fatalf("GET %d -> %+v", key, resps[i])
		}
	}
	stats := resps[11]
	if stats.Status != StatusOK || len(stats.Stats) == 0 {
		t.Fatalf("STATS -> status %d, %d bytes", stats.Status, len(stats.Stats))
	}
	// The STATS snapshot is live: it must already include the first
	// fully served window (its own batch is counted only afterwards).
	if got := statValue(t, stats.Stats, "server/requests"); got < 8 {
		t.Errorf("mid-pipeline server/requests = %d, want >= 8", got)
	}
	for i := 12; i < 24; i++ {
		key := uint64(i - 11)
		want := StatusOK
		if key > 6 {
			want = StatusMiss
		}
		if resps[i].Status != want {
			t.Fatalf("trailing GET %d status %d, want %d", key, resps[i].Status, want)
		}
		if want == StatusOK && resps[i].Value != key*10 {
			t.Fatalf("trailing GET %d value %d", key, resps[i].Value)
		}
	}

	// Drain so the connection folds its histogram into the registry,
	// then check the exact batch decomposition.
	s.Shutdown()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	hb := reg.Histogram("server/batch")
	if hb.Sum() != 22 || hb.Count() != 5 {
		t.Fatalf("batch histogram sum/count = %d/%d, want 22/5", hb.Sum(), hb.Count())
	}
	// Batch sizes 6,1,3,4,8 land in bit-length buckets 3,1,2,3,4.
	wantBuckets := map[int]uint64{1: 1, 2: 1, 3: 2, 4: 1}
	for i := 0; i < metrics.NumBuckets; i++ {
		if got := hb.Bucket(i); got != wantBuckets[i] {
			t.Errorf("batch bucket %d = %d, want %d", i, got, wantBuckets[i])
		}
	}
}

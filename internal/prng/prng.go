// Package prng provides small, deterministic, allocation-free pseudo-random
// generators used by workload generation and simulated data structures.
// Determinism matters: experiment results must be bit-identical across
// runs, so all randomness flows from explicit seeds through these
// generators rather than math/rand's global state.
package prng

// Source is a splitmix64 generator: tiny state, excellent distribution for
// non-cryptographic use, and stable across Go releases (unlike math/rand's
// unexported algorithms).
type Source struct {
	state uint64
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Next returns the next 64 uniformly distributed bits.
func (s *Source) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 uniform bits.
func (s *Source) Uint32() uint32 { return uint32(s.Next() >> 32) }

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive bound")
	}
	return int(s.Next() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// GeometricHeight returns 1 + Geometric(1/2) capped at max: the skiplist
// node height distribution (each node at level i appears at level i+1 with
// probability 1/2).
func (s *Source) GeometricHeight(max int) int {
	h := 1
	for h < max && s.Next()&1 == 1 {
		h++
	}
	return h
}

// Mix64 is a stateless splitmix64 finalizer, usable as a hash for key
// scrambling.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterministicStreams(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds agreed %d times", same)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		if v := s.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestGeometricHeightDistribution(t *testing.T) {
	s := New(11)
	counts := make([]int, 33)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		h := s.GeometricHeight(32)
		if h < 1 || h > 32 {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	// P(h=1) ~ 1/2, P(h=2) ~ 1/4, each level ~half the previous.
	if f := float64(counts[1]) / n; f < 0.48 || f > 0.52 {
		t.Fatalf("P(h=1) = %v", f)
	}
	for h := 2; h <= 8; h++ {
		ratio := float64(counts[h]) / float64(counts[h-1])
		if ratio < 0.44 || ratio > 0.56 {
			t.Fatalf("P(h=%d)/P(h=%d) = %v, want ~0.5", h, h-1, ratio)
		}
	}
}

func TestGeometricHeightCap(t *testing.T) {
	s := New(13)
	for i := 0; i < 100000; i++ {
		if h := s.GeometricHeight(4); h > 4 {
			t.Fatalf("height %d above cap", h)
		}
	}
}

func TestMix64IsInjectiveOnSample(t *testing.T) {
	f := func(a, b uint64) bool {
		return a == b || Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint32CoversHighBits(t *testing.T) {
	s := New(3)
	var or uint32
	for i := 0; i < 1000; i++ {
		or |= s.Uint32()
	}
	if or != ^uint32(0) {
		t.Fatalf("bits never set: %#x", ^or)
	}
}

package trace

import "testing"

func sum(s [NumBuckets]uint64) uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

func TestFlushAttributesEveryElapsedCycle(t *testing.T) {
	var a CoreAttr
	a.Add(BucketHostCache, 10)
	a.Add(BucketDRAM, 25)
	sample, total := a.Flush(100)
	if total != 100 {
		t.Fatalf("total = %d, want 100 (elapsed from mark 0)", total)
	}
	if sample[BucketHostCache] != 10 || sample[BucketDRAM] != 25 {
		t.Fatalf("sample = %v, charged buckets lost", sample)
	}
	if sample[BucketHostCompute] != 65 {
		t.Fatalf("residual = %d, want 65 in host_compute", sample[BucketHostCompute])
	}
	if sum(sample) != total {
		t.Fatalf("buckets sum to %d, want total %d", sum(sample), total)
	}
	if a.Mark() != 100 {
		t.Fatalf("mark = %d, want 100 after flush", a.Mark())
	}

	// Next interval starts empty at the new mark: an uninstrumented stretch
	// flushes entirely as host compute.
	sample, total = a.Flush(150)
	if total != 50 || sample[BucketHostCompute] != 50 || sum(sample) != 50 {
		t.Fatalf("second interval sample=%v total=%d, want pure 50-cycle residual", sample, total)
	}
}

func TestMoveClampsToSourceBucket(t *testing.T) {
	var a CoreAttr
	a.Add(BucketOffloadWait, 10)
	a.Move(BucketOffloadWait, BucketNMPSerial, 25) // more than charged
	sample, _ := a.Flush(10)
	if sample[BucketOffloadWait] != 0 || sample[BucketNMPSerial] != 10 {
		t.Fatalf("sample = %v, want all 10 cycles moved and none underflowed", sample)
	}
}

func TestFlushClampsOverAttribution(t *testing.T) {
	var a CoreAttr
	a.Add(BucketDRAM, 50)
	sample, total := a.Flush(30) // attributed exceeds elapsed
	if total != 50 {
		t.Fatalf("total = %d, want clamped to attributed 50", total)
	}
	if sample[BucketHostCompute] != 0 {
		t.Fatalf("residual = %d, want 0 when over-attributed", sample[BucketHostCompute])
	}
	if sum(sample) != total {
		t.Fatalf("buckets sum to %d, want %d", sum(sample), total)
	}
}

func TestNilCoreAttrIsSafe(t *testing.T) {
	var a *CoreAttr
	a.Add(BucketDRAM, 5)                     // must not panic
	a.Move(BucketDRAM, BucketHostCompute, 5) // must not panic
}

func TestBucketMetricNames(t *testing.T) {
	seen := map[string]bool{}
	for b := Bucket(0); b < NumBuckets; b++ {
		name := b.MetricName()
		if seen[name] {
			t.Fatalf("duplicate metric name %q", name)
		}
		seen[name] = true
		if name == "attr/unknown" {
			t.Fatalf("bucket %d has no name", b)
		}
	}
	if seen[AttrTotalMetric] {
		t.Fatalf("AttrTotalMetric %q collides with a bucket metric", AttrTotalMetric)
	}
}

// Package trace is the simulator's opt-in, zero-cost-when-off observability
// layer: a cycle-level event tracer plus a per-operation latency-attribution
// accumulator, both recording in virtual time.
//
// A Tracer owns one bounded ring buffer per track (a track is one timeline
// in the exported view: a host core, an NMP core, or an engine actor).
// Subsystems emit typed spans and instants through nil-safe methods, so a
// disabled tracer — the nil *Tracer — costs exactly one pointer comparison
// at every emission site and allocates nothing. Recording never advances
// virtual time and never mutates simulated state, so enabling tracing is
// observationally transparent: a traced run produces bit-identical
// simulation results to an untraced one (enforced by a regression test at
// the repository root).
//
// The recorded events export as Chrome trace_event JSON (WriteChromeJSON),
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing; see
// docs/OBSERVABILITY.md for the event taxonomy and how to read a capture.
package trace

// Kind is the type of a recorded event. Every kind belongs to one layer of
// the simulator (engine, memsys, offload fabric); the layer determines the
// category string in the Chrome export.
type Kind uint8

// Event kinds, grouped by emitting layer.
const (
	// KindRun is an engine dispatch span: one actor's continuous run
	// between receiving the resume permit and parking (Arg: actor ID).
	KindRun Kind = iota
	// KindL1Hit is a host access served by the core's private L1 (span).
	KindL1Hit
	// KindL2Hit is a host access that missed L1 and hit the shared LLC
	// (span).
	KindL2Hit
	// KindDRAMRead is a host LLC-miss block fetch from its home vault
	// (span; Arg: RowOutcome of the bank access).
	KindDRAMRead
	// KindInvalidate is a MESI-style invalidation of remote L1 copies
	// performed by a store (instant; Arg: number of sharers invalidated).
	KindInvalidate
	// KindTLBMiss is a host TLB miss triggering a page-table walk
	// (instant).
	KindTLBMiss
	// KindMMIOWrite is an uncached host burst into an NMP scratchpad
	// (span).
	KindMMIOWrite
	// KindMMIORead is an uncached host read burst from an NMP scratchpad
	// (span).
	KindMMIORead
	// KindNMPBufHit is an NMP access served by the core's node-size
	// buffer register (span).
	KindNMPBufHit
	// KindNMPDRAMRead is an NMP block read from the core's own vault
	// (span; Arg: RowOutcome).
	KindNMPDRAMRead
	// KindDRAMWrite is a write-through or writeback block access that
	// occupies a DRAM bank (span).
	KindDRAMWrite
	// KindScratchOp is an NMP core access to its own scratchpad (span).
	KindScratchOp
	// KindOffloadPost is a host thread publishing a request into a
	// publication slot (instant; Arg: slot).
	KindOffloadPost
	// KindOffloadCall is the host-side offload round trip: request posted
	// to completion observed (span; Arg: slot).
	KindOffloadCall
	// KindOffloadServe is the NMP-side service of one request: combiner
	// pickup to response written (span; Arg: slot).
	KindOffloadServe
	// KindCombine is one flat-combining window: the combiner serving every
	// doorbell-pending slot of a scan back to back (span; Arg: number of
	// requests served).
	KindCombine
	// KindOpDone marks one completed data-structure operation on the
	// calling host core's track (instant).
	KindOpDone

	numKinds
)

// kindNames are the event names in the Chrome export.
var kindNames = [numKinds]string{
	KindRun:          "run",
	KindL1Hit:        "l1-hit",
	KindL2Hit:        "l2-hit",
	KindDRAMRead:     "dram-read",
	KindInvalidate:   "invalidate",
	KindTLBMiss:      "tlb-miss",
	KindMMIOWrite:    "mmio-write",
	KindMMIORead:     "mmio-read",
	KindNMPBufHit:    "nmp-buf-hit",
	KindNMPDRAMRead:  "nmp-dram-read",
	KindDRAMWrite:    "dram-write",
	KindScratchOp:    "scratch-op",
	KindOffloadPost:  "offload-post",
	KindOffloadCall:  "offload-call",
	KindOffloadServe: "offload-serve",
	KindCombine:      "combine",
	KindOpDone:       "op-done",
}

// kindCats are the category strings in the Chrome export, one per layer.
var kindCats = [numKinds]string{
	KindRun:          "engine",
	KindL1Hit:        "mem",
	KindL2Hit:        "mem",
	KindDRAMRead:     "mem",
	KindInvalidate:   "coherence",
	KindTLBMiss:      "mem",
	KindMMIOWrite:    "offload",
	KindMMIORead:     "offload",
	KindNMPBufHit:    "mem",
	KindNMPDRAMRead:  "mem",
	KindDRAMWrite:    "mem",
	KindScratchOp:    "mem",
	KindOffloadPost:  "offload",
	KindOffloadCall:  "offload",
	KindOffloadServe: "offload",
	KindCombine:      "offload",
	KindOpDone:       "op",
}

// String returns the kind's name as used in the Chrome export.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded trace event. Dur == 0 marks an instant; Dur > 0 a
// span covering [TS, TS+Dur) in virtual cycles.
type Event struct {
	// TS is the event's start time in virtual cycles.
	TS uint64
	// Dur is the span length in virtual cycles (0 for instants).
	Dur uint64
	// Kind is the event type.
	Kind Kind
	// Arg carries kind-specific detail (slot index, sharer count,
	// RowOutcome, ...).
	Arg uint32
}

// track is one timeline's bounded ring buffer. Appends past the capacity
// overwrite the oldest events, so a long run keeps its most recent window.
type track struct {
	name string
	buf  []Event
	n    uint64 // total events ever appended; buf[(n-1)%cap] is newest
}

// Tracer records typed events into per-track ring buffers. The nil *Tracer
// is the disabled tracer: every method is nil-safe and free of side
// effects, so call sites need no conditional beyond the receiver itself.
type Tracer struct {
	cap    int
	tracks []*track
}

// New returns an enabled tracer whose tracks each retain the most recent
// capPerTrack events (minimum 1).
func New(capPerTrack int) *Tracer {
	if capPerTrack < 1 {
		capPerTrack = 1
	}
	return &Tracer{cap: capPerTrack}
}

// NewTrack registers a new timeline and returns its track ID, or -1 on the
// nil tracer. Track IDs are dense and become the tid of the Chrome export.
func (t *Tracer) NewTrack(name string) int {
	if t == nil {
		return -1
	}
	t.tracks = append(t.tracks, &track{name: name, buf: make([]Event, 0, t.cap)})
	return len(t.tracks) - 1
}

// Span records a [start, start+dur) event on tr. No-op on the nil tracer
// or a negative track ID.
func (t *Tracer) Span(tr int, k Kind, start, dur uint64, arg uint32) {
	if t == nil || tr < 0 {
		return
	}
	t.tracks[tr].append(Event{TS: start, Dur: dur, Kind: k, Arg: arg})
}

// Instant records a point event at ts on tr. No-op on the nil tracer or a
// negative track ID.
func (t *Tracer) Instant(tr int, k Kind, ts uint64, arg uint32) {
	if t == nil || tr < 0 {
		return
	}
	t.tracks[tr].append(Event{TS: ts, Kind: k, Arg: arg})
}

func (tk *track) append(ev Event) {
	if len(tk.buf) < cap(tk.buf) {
		tk.buf = append(tk.buf, ev)
	} else {
		tk.buf[tk.n%uint64(cap(tk.buf))] = ev
	}
	tk.n++
}

// Tracks returns the number of registered tracks (0 on the nil tracer).
func (t *Tracer) Tracks() int {
	if t == nil {
		return 0
	}
	return len(t.tracks)
}

// TrackName returns the name tr was registered with.
func (t *Tracer) TrackName(tr int) string { return t.tracks[tr].name }

// Dropped returns how many events tr's ring has overwritten.
func (t *Tracer) Dropped(tr int) uint64 {
	tk := t.tracks[tr]
	if tk.n <= uint64(cap(tk.buf)) {
		return 0
	}
	return tk.n - uint64(cap(tk.buf))
}

// Events returns tr's retained events oldest-first (a copy).
func (t *Tracer) Events(tr int) []Event {
	if t == nil || tr < 0 {
		return nil
	}
	tk := t.tracks[tr]
	out := make([]Event, 0, len(tk.buf))
	if tk.n > uint64(len(tk.buf)) {
		// Ring has wrapped: oldest retained event sits at the write
		// cursor.
		start := int(tk.n % uint64(len(tk.buf)))
		out = append(out, tk.buf[start:]...)
		out = append(out, tk.buf[:start]...)
		return out
	}
	return append(out, tk.buf...)
}

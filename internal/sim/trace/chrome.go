package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChromeJSON exports every track's retained events as Chrome
// trace_event JSON (the "JSON Array Format" with a traceEvents wrapper),
// loadable in Perfetto or chrome://tracing.
//
// Each track becomes one thread (tid = track ID) of a single process, with
// a thread_name metadata record carrying the track's registered name.
// Spans export as complete events (ph "X"), instants as thread-scoped
// instant events (ph "i"). Timestamps are virtual cycles written into the
// microsecond field — the viewer's time axis therefore reads in cycles,
// not wall time (1 "µs" = 1 simulated cycle).
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}
	for tid, tk := range t.tracks {
		emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tid, strconv.Quote(tk.name)))
		if d := t.Dropped(tid); d > 0 {
			emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"dropped_events","args":{"count":%d}}`, tid, d))
		}
	}
	for tid := range t.tracks {
		for _, ev := range t.Events(tid) {
			name := strconv.Quote(ev.Kind.String())
			cat := strconv.Quote(kindCats[ev.Kind])
			if ev.Dur > 0 {
				emit(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":%s,"cat":%s,"args":{"arg":%d}}`,
					tid, ev.TS, ev.Dur, name, cat, ev.Arg))
			} else {
				emit(fmt.Sprintf(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%s,"cat":%s,"args":{"arg":%d}}`,
					tid, ev.TS, name, cat, ev.Arg))
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

package trace

// Bucket classifies where a measured operation's cycles went. The
// attribution layer accumulates charged latencies into buckets between
// operation completions; at each completion the interval's buckets flush
// as one per-operation sample whose parts sum exactly to the interval's
// elapsed virtual cycles (the unattributed remainder lands in
// BucketHostCompute).
type Bucket uint8

// Attribution buckets, in report order.
const (
	// BucketHostCache: host cycles served on chip — L1/L2 hit latencies,
	// atomic RMW extras and TLB-walk overhead.
	BucketHostCache Bucket = iota
	// BucketCoherence: stalls invalidating remote L1 copies on stores.
	BucketCoherence
	// BucketDRAM: host LLC-miss fetches — off-chip link plus vault bank
	// service.
	BucketDRAM
	// BucketOffloadWait: the NMP offload round trip as seen by the host —
	// MMIO posts, completion polls, and time parked waiting for a
	// response — minus the serialization share below.
	BucketOffloadWait
	// BucketNMPSerial: the share of the offload wait the request spent
	// queued in the publication list before the combiner picked it up
	// (flat-combining serialization at the NMP core).
	BucketNMPSerial
	// BucketHostCompute: the interval's residual — simple-instruction
	// compute charges and any cycles not captured above.
	BucketHostCompute

	// NumBuckets is the bucket count.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	BucketHostCache:   "host_cache",
	BucketCoherence:   "coherence",
	BucketDRAM:        "dram",
	BucketOffloadWait: "offload_wait",
	BucketNMPSerial:   "nmp_serial",
	BucketHostCompute: "host_compute",
}

// String returns the bucket's short name.
func (b Bucket) String() string {
	if b < NumBuckets {
		return bucketNames[b]
	}
	return "unknown"
}

// MetricName returns the registry histogram name per-operation samples of
// this bucket are observed under ("attr/<name>").
func (b Bucket) MetricName() string { return "attr/" + b.String() }

// AttrTotalMetric is the registry histogram observing each operation's
// total interval cycles (the sum of all its bucket samples).
const AttrTotalMetric = "attr/op_total"

// CoreAttr accumulates one host core's bucket cycles for the operation
// interval in progress. Like the Tracer, the nil *CoreAttr is the disabled
// accumulator: Add and Move are nil-safe, so instrumented code needs only
// the receiver check. Attribution is pure Go-side bookkeeping and never
// advances virtual time.
type CoreAttr struct {
	buckets [NumBuckets]uint64
	mark    uint64 // virtual time of the last Flush
}

// Add charges n cycles to bucket b for the current interval.
func (a *CoreAttr) Add(b Bucket, n uint64) {
	if a == nil {
		return
	}
	a.buckets[b] += n
}

// Move reclassifies up to n cycles already charged to from into to (used
// to carve the flat-combining serialization share out of the offload
// wait). Moves are clamped to what from holds, so buckets never underflow.
func (a *CoreAttr) Move(from, to Bucket, n uint64) {
	if a == nil {
		return
	}
	if n > a.buckets[from] {
		n = a.buckets[from]
	}
	a.buckets[from] -= n
	a.buckets[to] += n
}

// Flush closes the interval at virtual time now: the residual between the
// interval's elapsed cycles and the attributed cycles lands in
// BucketHostCompute, the per-operation sample and its total are returned,
// and the accumulator resets with its mark at now. If attributed cycles
// exceed the interval (impossible under correct instrumentation, clamped
// defensively), the residual is zero.
func (a *CoreAttr) Flush(now uint64) (sample [NumBuckets]uint64, total uint64) {
	total = now - a.mark
	var attributed uint64
	for _, v := range a.buckets {
		attributed += v
	}
	sample = a.buckets
	if attributed <= total {
		sample[BucketHostCompute] += total - attributed
	} else {
		total = attributed
	}
	a.buckets = [NumBuckets]uint64{}
	a.mark = now
	return sample, total
}

// Mark returns the virtual time the current interval started.
func (a *CoreAttr) Mark() uint64 { return a.mark }

package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingBelowCapacityKeepsAllInOrder(t *testing.T) {
	tr := New(8)
	tk := tr.NewTrack("a")
	for i := 0; i < 5; i++ {
		tr.Instant(tk, KindOpDone, uint64(i*10), uint32(i))
	}
	if d := tr.Dropped(tk); d != 0 {
		t.Fatalf("Dropped = %d, want 0", d)
	}
	evs := tr.Events(tk)
	if len(evs) != 5 {
		t.Fatalf("len(Events) = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.TS != uint64(i*10) || ev.Arg != uint32(i) {
			t.Fatalf("event %d = %+v, want TS=%d Arg=%d", i, ev, i*10, i)
		}
	}
}

func TestRingWraparoundKeepsMostRecent(t *testing.T) {
	tr := New(4)
	tk := tr.NewTrack("a")
	for i := 0; i < 10; i++ {
		tr.Span(tk, KindL1Hit, uint64(i), 1, uint32(i))
	}
	if d := tr.Dropped(tk); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
	evs := tr.Events(tk)
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4 (ring capacity)", len(evs))
	}
	// Oldest-first: events 6, 7, 8, 9 survive.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.TS != want {
			t.Fatalf("event %d TS = %d, want %d (oldest-first after wrap)", i, ev.TS, want)
		}
	}
}

func TestRingCapacityClampsToOne(t *testing.T) {
	tr := New(0)
	tk := tr.NewTrack("a")
	tr.Instant(tk, KindOpDone, 1, 0)
	tr.Instant(tk, KindOpDone, 2, 0)
	evs := tr.Events(tk)
	if len(evs) != 1 || evs[0].TS != 2 {
		t.Fatalf("Events = %+v, want single newest event at TS 2", evs)
	}
	if d := tr.Dropped(tk); d != 1 {
		t.Fatalf("Dropped = %d, want 1", d)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tk := tr.NewTrack("a"); tk != -1 {
		t.Fatalf("nil NewTrack = %d, want -1", tk)
	}
	tr.Span(-1, KindRun, 0, 5, 0) // must not panic
	tr.Instant(-1, KindOpDone, 0, 0)
	if n := tr.Tracks(); n != 0 {
		t.Fatalf("nil Tracks = %d, want 0", n)
	}
	if evs := tr.Events(-1); evs != nil {
		t.Fatalf("nil Events = %v, want nil", evs)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("nil WriteChromeJSON: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("nil tracer output is not JSON: %v\n%s", err, buf.String())
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("nil tracer exported %d events, want 0", len(ct.TraceEvents))
	}
}

// chromeTrace / chromeEvent mirror the minimal subset of the Chrome
// trace_event JSON format that Perfetto requires to load a capture.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func TestWriteChromeJSONWellFormed(t *testing.T) {
	tr := New(2)
	host := tr.NewTrack("host/0")
	nmp := tr.NewTrack("nmp/0")
	tr.Span(host, KindL1Hit, 10, 4, 0)
	tr.Instant(host, KindOpDone, 14, 0)
	// Wrap the NMP track so a dropped_events record is emitted.
	for i := 0; i < 5; i++ {
		tr.Span(nmp, KindNMPDRAMRead, uint64(100+i), 20, 1)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}

	var names, dropped int
	var spans, instants int
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "thread_name":
				names++
				want := tr.TrackName(ev.Tid)
				if got := ev.Args["name"]; got != want {
					t.Errorf("thread_name for tid %d = %v, want %q", ev.Tid, got, want)
				}
			case "dropped_events":
				dropped++
				if ev.Tid != nmp {
					t.Errorf("dropped_events on tid %d, want %d", ev.Tid, nmp)
				}
				if got := ev.Args["count"]; got != float64(3) {
					t.Errorf("dropped_events count = %v, want 3", got)
				}
			default:
				t.Errorf("unexpected metadata record %q", ev.Name)
			}
		case "X":
			spans++
			if ev.Dur == 0 {
				t.Errorf("complete event %q has zero dur", ev.Name)
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Errorf("instant %q scope = %q, want thread scope \"t\"", ev.Name, ev.S)
			}
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
		if ev.Tid < 0 || ev.Tid >= tr.Tracks() {
			t.Errorf("event tid %d out of range", ev.Tid)
		}
	}
	if names != 2 {
		t.Errorf("thread_name records = %d, want 2", names)
	}
	if dropped != 1 {
		t.Errorf("dropped_events records = %d, want 1", dropped)
	}
	// host span + 2 retained NMP spans; host instant.
	if spans != 3 || instants != 1 {
		t.Errorf("spans=%d instants=%d, want 3 and 1", spans, instants)
	}
}

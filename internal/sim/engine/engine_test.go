package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleActorAdvances(t *testing.T) {
	e := New()
	var trace []uint64
	e.Spawn("a", false, func(a *Actor) {
		for i := 0; i < 5; i++ {
			a.Advance(10)
			trace = append(trace, a.Now())
		}
	})
	e.Run()
	want := []uint64{10, 20, 30, 40, 50}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 50 {
		t.Fatalf("engine Now = %d, want 50", e.Now())
	}
}

func TestActorsInterleaveInVirtualTimeOrder(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("slow", false, func(a *Actor) {
		for i := 0; i < 3; i++ {
			a.Advance(100)
			order = append(order, "slow")
		}
	})
	e.Spawn("fast", false, func(a *Actor) {
		for i := 0; i < 3; i++ {
			a.Advance(30)
			order = append(order, "fast")
		}
	})
	e.Run()
	want := []string{"fast", "fast", "fast", "slow", "slow", "slow"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameCycleFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn("a", false, func(a *Actor) {
			a.Advance(7)
			order = append(order, i)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-cycle order = %v, want spawn order", order)
		}
	}
}

func TestYieldRotatesSameCycleActors(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("x", false, func(a *Actor) {
		order = append(order, "x1")
		a.Yield()
		order = append(order, "x2")
	})
	e.Spawn("y", false, func(a *Actor) {
		order = append(order, "y1")
		a.Yield()
		order = append(order, "y2")
	})
	e.Run()
	want := []string{"x1", "y1", "x2", "y2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDaemonStopsAfterNonDaemons(t *testing.T) {
	e := New()
	daemonTicks := 0
	e.Spawn("daemon", true, func(a *Actor) {
		for !a.Stopping() {
			daemonTicks++
			a.Advance(1)
		}
	})
	e.Spawn("worker", false, func(a *Actor) {
		a.Advance(25)
	})
	e.Run()
	if daemonTicks < 25 {
		t.Fatalf("daemon ran %d ticks, want >= 25", daemonTicks)
	}
	if daemonTicks > 30 {
		t.Fatalf("daemon ran %d ticks after stop, want prompt exit", daemonTicks)
	}
}

func TestAdvanceToAbsoluteTime(t *testing.T) {
	e := New()
	e.Spawn("a", false, func(a *Actor) {
		a.AdvanceTo(42)
		if a.Now() != 42 {
			t.Errorf("Now = %d, want 42", a.Now())
		}
		a.AdvanceTo(42) // no-op is allowed
		if a.Cycles != 42 {
			t.Errorf("Cycles = %d, want 42", a.Cycles)
		}
	})
	e.Run()
}

func TestAdvanceToPastPanics(t *testing.T) {
	e := New()
	e.Spawn("a", false, func(a *Actor) {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceTo into the past did not panic")
			}
		}()
		a.Advance(10)
		a.AdvanceTo(5)
	})
	e.Run()
}

func TestSpawnDuringRunInheritsTime(t *testing.T) {
	e := New()
	var childStart uint64
	e.Spawn("parent", false, func(a *Actor) {
		a.Advance(100)
		e.Spawn("child", false, func(c *Actor) {
			childStart = c.Now()
			c.Advance(1)
		})
		a.Advance(1)
	})
	e.Run()
	if childStart != 100 {
		t.Fatalf("child started at %d, want 100", childStart)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func(seed int64) []int {
		e := New()
		var order []int
		for i := 0; i < 6; i++ {
			i := i
			rng := rand.New(rand.NewSource(seed + int64(i)))
			e.Spawn("a", false, func(a *Actor) {
				for j := 0; j < 50; j++ {
					a.Advance(uint64(rng.Intn(17) + 1))
					order = append(order, i)
				}
			})
		}
		e.Run()
		return order
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving not deterministic at step %d", i)
		}
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := New()
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	e.Run()
}

func TestCyclesAccounting(t *testing.T) {
	e := New()
	var a1, a2 *Actor
	a1 = e.Spawn("a1", false, func(a *Actor) {
		a.Advance(30)
		a.Advance(12)
	})
	a2 = e.Spawn("a2", false, func(a *Actor) {
		a.Advance(5)
	})
	e.Run()
	if a1.Cycles != 42 {
		t.Errorf("a1.Cycles = %d, want 42", a1.Cycles)
	}
	if a2.Cycles != 5 {
		t.Errorf("a2.Cycles = %d, want 5", a2.Cycles)
	}
}

// TestEngineTimeMonotonic property: with arbitrary positive advance
// sequences across several actors, the dispatch order observed by a probe
// is monotone in virtual time.
func TestEngineTimeMonotonic(t *testing.T) {
	f := func(steps [][]uint16) bool {
		if len(steps) == 0 {
			return true
		}
		if len(steps) > 8 {
			steps = steps[:8]
		}
		e := New()
		var stamps []uint64
		for _, seq := range steps {
			seq := seq
			e.Spawn("p", false, func(a *Actor) {
				for _, s := range seq {
					a.Advance(uint64(s%997) + 1)
					stamps = append(stamps, a.Now())
				}
			})
		}
		e.Run()
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOrdering(t *testing.T) {
	var h eventHeap
	rng := rand.New(rand.NewSource(1))
	seq := uint64(0)
	for i := 0; i < 1000; i++ {
		seq++
		h.push(event{at: uint64(rng.Intn(100)), seq: seq})
	}
	prevAt, prevSeq := uint64(0), uint64(0)
	for i := 0; i < 1000; i++ {
		ev := h.pop()
		if ev.at < prevAt || (ev.at == prevAt && ev.seq < prevSeq) {
			t.Fatalf("heap order violated at pop %d: (%d,%d) after (%d,%d)", i, ev.at, ev.seq, prevAt, prevSeq)
		}
		prevAt, prevSeq = ev.at, ev.seq
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

func TestBlockUnblockRoundTrip(t *testing.T) {
	e := New()
	var order []string
	var waiter *Actor
	waiter = e.Spawn("waiter", false, func(a *Actor) {
		order = append(order, "block")
		a.Block()
		order = append(order, fmt.Sprintf("woke@%d", a.Now()))
	})
	e.Spawn("waker", false, func(a *Actor) {
		a.Advance(100)
		a.Unblock(waiter, 5)
		order = append(order, "unblocked")
	})
	e.Run()
	want := []string{"block", "unblocked", "woke@105"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUnblockPermitPreventsLostWakeup(t *testing.T) {
	// The waker signals while the waiter is still running; the waiter's
	// subsequent Block must consume the permit and return immediately.
	e := New()
	var wokeAt uint64
	var waiter *Actor
	waiter = e.Spawn("waiter", false, func(a *Actor) {
		a.Advance(50) // signal arrives during this window
		a.Block()     // must not hang
		wokeAt = a.Now()
	})
	e.Spawn("waker", false, func(a *Actor) {
		a.Advance(10)
		a.Unblock(waiter, 0)
	})
	e.Run()
	if wokeAt != 50 {
		t.Fatalf("woke at %d, want 50 (permit consumed without parking)", wokeAt)
	}
}

func TestBlockedDaemonWakesAtStopping(t *testing.T) {
	e := New()
	served := false
	e.Spawn("daemon", true, func(a *Actor) {
		for !a.Stopping() {
			a.Block()
		}
		served = true
	})
	e.Spawn("worker", false, func(a *Actor) { a.Advance(30) })
	e.Run()
	if !served {
		t.Fatal("blocked daemon never released at stopping")
	}
}

func TestUnblockClampsToTargetClock(t *testing.T) {
	// A waker behind the blocked actor's clock must not move it backwards.
	e := New()
	var wokeAt uint64
	var waiter *Actor
	waiter = e.Spawn("waiter", false, func(a *Actor) {
		a.Advance(1000)
		a.Block()
		wokeAt = a.Now()
	})
	e.Spawn("waker", false, func(a *Actor) {
		a.Advance(10)
		for !waiterBlocked(waiter) {
			a.Advance(10)
		}
		a.Unblock(waiter, 1)
	})
	e.Run()
	if wokeAt < 1000 {
		t.Fatalf("woke at %d: clock moved backwards", wokeAt)
	}
}

func waiterBlocked(a *Actor) bool { return a.blocked }

package engine

import (
	"fmt"
	"testing"
)

// BenchmarkEngineDispatch measures the dispatch loop under contention:
// eight actors with mutually prime step sizes, so nearly every Advance
// re-sorts into the heap and hands off the resume permit. Reports the
// dispatch rate (events/s) and the cost per dispatched event (ns/event).
func BenchmarkEngineDispatch(b *testing.B) {
	const actors = 8
	e := New()
	per := b.N/actors + 1
	for i := 0; i < actors; i++ {
		step := uint64(2*i + 1)
		e.Spawn(fmt.Sprintf("a%d", i), false, func(a *Actor) {
			for j := 0; j < per; j++ {
				a.Advance(step)
			}
		})
	}
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	events := float64(e.stDispatches.Value())
	sec := b.Elapsed().Seconds()
	if events > 0 && sec > 0 {
		b.ReportMetric(events/sec, "events/s")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/events, "ns/event")
	}
}

// BenchmarkEngineAdvanceFastPath measures the uncontended case: a single
// runnable actor advancing with an empty heap, which the inlined Advance
// fast path must keep channel-free.
func BenchmarkEngineAdvanceFastPath(b *testing.B) {
	e := New()
	e.Spawn("solo", false, func(a *Actor) {
		for i := 0; i < b.N; i++ {
			a.Advance(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineBlockUnblock measures the doorbell round trip the
// flat-combining layer leans on: a client that blocks awaiting service and
// a server that wakes it, alternating.
func BenchmarkEngineBlockUnblock(b *testing.B) {
	e := New()
	var client *Actor
	client = e.Spawn("client", false, func(a *Actor) {
		for i := 0; i < b.N; i++ {
			a.Block()
		}
	})
	e.Spawn("server", false, func(a *Actor) {
		for i := 0; i < b.N; i++ {
			a.Advance(1)
			a.Unblock(client, 1)
		}
	})
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	events := float64(e.stDispatches.Value())
	sec := b.Elapsed().Seconds()
	if events > 0 && sec > 0 {
		b.ReportMetric(events/sec, "events/s")
	}
}

package engine

import "testing"

// TestUnblockWhileParkedInAdvance pins the permit semantics for the race
// the fast path introduced: an Unblock aimed at an actor that is parked
// inside Advance (not Block) must be recorded as a pending permit, and the
// target's next Block must consume it and return immediately at the
// target's own time, without parking.
func TestUnblockWhileParkedInAdvance(t *testing.T) {
	e := New()
	var waiter *Actor
	var wokeAt uint64
	waiter = e.Spawn("waiter", false, func(a *Actor) {
		a.Advance(100) // parks: the waker's event at t=0 is earlier
		a.Block()      // must consume the permit posted at t=10
		wokeAt = a.Now()
	})
	e.Spawn("waker", false, func(a *Actor) {
		a.Advance(10)        // fast path: waiter's event (t=100) is later
		a.Unblock(waiter, 0) // waiter not blocked -> permit recorded
	})
	blocksBefore := e.stBlocks.Value()
	e.Run()
	if wokeAt != 100 {
		t.Fatalf("waiter woke at %d, want 100 (own time, not the waker's)", wokeAt)
	}
	if got := e.stBlocks.Value() - blocksBefore; got != 0 {
		t.Fatalf("Block parked %d times, want 0 (permit must short-circuit it)", got)
	}
}

// TestAdvanceFastPathSoloActor: a lone runnable actor must be dispatched
// exactly once (the initial handoff from Run) no matter how many times it
// advances — every Advance takes the heap-top fast path.
func TestAdvanceFastPathSoloActor(t *testing.T) {
	e := New()
	e.Spawn("solo", false, func(a *Actor) {
		for i := 0; i < 1000; i++ {
			a.Advance(3)
		}
	})
	e.Run()
	if got := e.stDispatches.Value(); got != 1 {
		t.Fatalf("dispatches = %d, want 1", got)
	}
	if e.Now() != 3000 {
		t.Fatalf("engine Now = %d, want 3000", e.Now())
	}
}

// TestAdvanceFastPathAfterPeerFinishes: once a competing actor finishes,
// the survivor's remaining advances must all take the fast path. The exact
// dispatch count doubles as a regression check that widening the fast path
// did not change the dispatch sequence.
func TestAdvanceFastPathAfterPeerFinishes(t *testing.T) {
	e := New()
	e.Spawn("short", false, func(a *Actor) {
		a.Advance(5)
	})
	e.Spawn("long", false, func(a *Actor) {
		for i := 0; i < 100; i++ {
			a.Advance(10)
		}
	})
	e.Run()
	// 1: short at t=0; its Advance(5) parks (long's t=0 event is earlier).
	// 2: long at t=0; its Advance(10) parks (short's t=5 event is earlier).
	// 3: short at t=5, finishes. 4: long at t=10; the remaining 99
	// advances see an empty heap and never park again.
	if got := e.stDispatches.Value(); got != 4 {
		t.Fatalf("dispatches = %d, want 4", got)
	}
	if e.Now() != 1000 {
		t.Fatalf("engine Now = %d, want 1000", e.Now())
	}
}

// TestHeapPopClearsSlot: pop must zero the vacated tail slot so the heap's
// backing array does not pin finished actors for the rest of the run.
func TestHeapPopClearsSlot(t *testing.T) {
	h := make(eventHeap, 0, 8)
	actors := make([]*Actor, 8)
	for i := range actors {
		actors[i] = &Actor{ID: i}
		h.push(event{at: uint64(8 - i), seq: uint64(i), a: actors[i]})
	}
	for i := 0; i < 8; i++ {
		if ev := h.pop(); ev.a == nil {
			t.Fatalf("pop %d returned zero event", i)
		}
	}
	backing := h[:cap(h)]
	for i := range backing {
		if backing[i].a != nil {
			t.Fatalf("backing slot %d still pins actor %q after pop", i, backing[i].a.Name)
		}
	}
}

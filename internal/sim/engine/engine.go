// Package engine implements a deterministic virtual-time discrete-event
// engine for architecture simulation.
//
// Simulated hardware agents (host threads, near-memory cores) are Actors:
// goroutines that run ordinary Go code but advance a virtual cycle clock
// through explicit Advance calls. Exactly one actor makes progress at any
// real-time instant and actors are dispatched in virtual-time order with
// deterministic FIFO tie-breaking, so a simulation with fixed inputs always
// produces identical interleavings and identical results — host garbage
// collection or OS scheduling can never perturb simulated time.
//
// Control transfers between actors by a single resume-permit handoff: the
// actor that parks (or finishes) pops the next event itself and posts the
// permit directly to that actor's buffered wake channel. There is no
// scheduler goroutine in the dispatch loop, so a context switch costs one
// goroutine handoff rather than the two (actor -> scheduler -> actor) of a
// centralized design.
package engine

import (
	"fmt"
	"sort"

	"hybrids/internal/metrics"
	"hybrids/internal/sim/trace"
)

// Actor is a simulated execution agent with its own virtual clock.
// All methods must be called only from the actor's own goroutine, while
// that actor is the one dispatched by the engine.
type Actor struct {
	// ID is the engine-assigned index, unique per engine.
	ID int
	// Name labels the actor in diagnostics.
	Name string
	// Daemon actors do not keep the simulation alive: once every
	// non-daemon actor has finished, Stopping reports true and daemons
	// are expected to return from their body promptly.
	Daemon bool

	eng *Engine
	now uint64
	// wake carries this actor's resume permit (capacity 1: a parked actor
	// has at most one pending event, hence at most one outstanding permit).
	wake        chan struct{}
	finished    bool
	blocked     bool
	wakePending bool
	body        func(*Actor)

	// Tracing state (engine tracer only): the trace track carrying this
	// actor's dispatch spans (-1 until first used) and the virtual time
	// the actor last received the resume permit.
	track        int
	dispatchedAt uint64

	// Cycles accumulates the total virtual cycles this actor advanced.
	Cycles uint64
}

// Now returns the actor's current virtual time in cycles.
func (a *Actor) Now() uint64 { return a.now }

// Engine returns the engine that owns this actor.
func (a *Actor) Engine() *Engine { return a.eng }

// Advance moves the actor's virtual clock forward by c cycles, yielding to
// any other actor whose next event is earlier. Advance(0) is a pure yield:
// it lets same-cycle actors queued earlier run first.
//
// Fast path: if this actor would still be dispatched first — strictly
// earlier than every pending event (ties go to the earlier-queued event,
// so equality must park) — the park/handoff round trip is skipped
// entirely. The body below is kept small enough to inline into the
// machine layer's Step and memory-access call sites, so the common
// uncontended case (single runnable actor: build phases, 1-thread cells,
// an unblocker racing ahead of the actor it just woke) costs a heap-top
// comparison and no channel operations. Dispatch order is identical to
// the slow path.
func (a *Actor) Advance(c uint64) {
	a.now += c
	a.Cycles += c
	e := a.eng
	if len(e.pq) == 0 || a.now < e.pq[0].at {
		e.now = a.now
		return
	}
	a.repark()
}

// repark is Advance's slow path: queue the actor's continuation, hand the
// resume permit to the next runnable actor, and wait for the permit to
// come back. Split from Advance so the fast path stays inlinable.
func (a *Actor) repark() {
	e := a.eng
	if e.tr != nil {
		a.noteRun()
	}
	e.push(a)
	e.dispatchNext()
	<-a.wake
}

// noteRun records the dispatch span that ends now: the actor's continuous
// run from its last resume permit to this park/finish. Called only when the
// engine tracer is set, on the actor's own goroutine.
func (a *Actor) noteRun() {
	e := a.eng
	if a.track < 0 {
		a.track = e.tr.NewTrack("actor/" + a.Name)
	}
	e.tr.Span(a.track, trace.KindRun, a.dispatchedAt, a.now-a.dispatchedAt, uint32(a.ID))
}

// AdvanceTo moves the actor's clock to absolute virtual time t. It panics
// if t is in the actor's past.
func (a *Actor) AdvanceTo(t uint64) {
	if t < a.now {
		panic(fmt.Sprintf("engine: actor %q AdvanceTo(%d) before now=%d", a.Name, t, a.now))
	}
	a.Advance(t - a.now)
}

// Yield cedes control without consuming virtual time; actors scheduled for
// the same cycle run in FIFO order.
func (a *Actor) Yield() { a.Advance(0) }

// Stopping reports whether every non-daemon actor has finished. Daemon
// actors must poll it and return once it reports true.
func (a *Actor) Stopping() bool { return a.eng.stopping }

// Block parks the actor with no scheduled wake-up: it resumes only when
// another actor calls Unblock on it (modelling a hardware monitor/mwait on
// a doorbell) or when the engine enters the stopping state. Virtual time
// does not advance while blocked beyond the unblocker's wake time.
// A wake permit posted by Unblock while the target was not blocked —
// still running, or parked inside Advance — is consumed by the target's
// next Block, which then returns immediately without parking, so a wake
// racing with the waiter's final check is never lost and costs no
// dispatch.
func (a *Actor) Block() {
	if a.wakePending {
		a.wakePending = false
		return
	}
	e := a.eng
	if e.stopping {
		return
	}
	e.stBlocks.Inc()
	if e.tr != nil {
		a.noteRun()
	}
	a.blocked = true
	e.dispatchNext()
	<-a.wake
}

// Unblock schedules blocked actor b to resume delay cycles after the
// caller's current time. If b is not blocked (running, or parked inside
// Advance), a wake permit is recorded for b's next Block instead. Must be
// called by the currently running actor.
func (a *Actor) Unblock(b *Actor, delay uint64) {
	a.eng.stUnblocks.Inc()
	if !b.blocked {
		b.wakePending = true
		return
	}
	b.blocked = false
	t := a.now + delay
	if t < b.now {
		t = b.now
	}
	b.now = t
	a.eng.push(b)
}

// Engine schedules actors in virtual-time order.
// The zero value is not usable; call New.
type Engine struct {
	now    uint64
	seq    uint64
	pq     eventHeap
	actors []*Actor
	// done receives one token when the last actor finishes (capacity 1:
	// the final handoff must not block the finishing actor's goroutine).
	done     chan struct{}
	live     int // unfinished non-daemon actors
	liveAll  int // unfinished actors of any kind
	stopping bool
	running  bool

	// tr is the engine's event tracer; nil (the default) disables dispatch
	// tracing at the cost of one pointer comparison per park.
	tr *trace.Tracer

	stDispatches *metrics.Counter
	stSpawns     *metrics.Counter
	stBlocks     *metrics.Counter
	stUnblocks   *metrics.Counter
}

// New returns an empty engine at virtual time zero, instrumented into a
// private registry (replace it with AttachMetrics to share a machine-wide
// one).
func New() *Engine {
	e := &Engine{done: make(chan struct{}, 1)}
	e.AttachMetrics(metrics.NewRegistry())
	return e
}

// AttachMetrics re-registers the engine's scheduler counters
// (engine/dispatches, engine/spawns, engine/blocks, engine/unblocks) in
// reg. Call before Run; counts recorded earlier stay in the old registry.
func (e *Engine) AttachMetrics(reg *metrics.Registry) {
	e.stDispatches = reg.Counter("engine/dispatches")
	e.stSpawns = reg.Counter("engine/spawns")
	e.stBlocks = reg.Counter("engine/blocks")
	e.stUnblocks = reg.Counter("engine/unblocks")
}

// SetTracer attaches t as the engine's event tracer: every actor records a
// dispatch span (trace.KindRun) per continuous run on its own lazily
// created "actor/<name>" track. A nil t (the default) disables dispatch
// tracing. Call before Run.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tr = t }

// Now returns the engine's current virtual time (the dispatch time of the
// most recent event).
func (e *Engine) Now() uint64 { return e.now }

// Actors returns all actors ever spawned on the engine.
func (e *Engine) Actors() []*Actor { return e.actors }

// Spawn registers a new actor whose body runs starting at the spawner's
// current virtual time (or cycle 0 when called before Run). Spawn may be
// called before Run or from a running actor, never from outside while the
// engine runs.
func (e *Engine) Spawn(name string, daemon bool, body func(*Actor)) *Actor {
	a := &Actor{
		ID:     len(e.actors),
		Name:   name,
		Daemon: daemon,
		eng:    e,
		wake:   make(chan struct{}, 1),
		body:   body,
		track:  -1,
	}
	if e.running {
		// Inherit the current virtual time so causality is preserved.
		a.now = e.now
	}
	e.stSpawns.Inc()
	e.actors = append(e.actors, a)
	e.liveAll++
	if !daemon {
		e.live++
	}
	go a.run()
	e.push(a)
	return a
}

func (a *Actor) run() {
	<-a.wake
	a.body(a)
	a.finished = true
	e := a.eng
	if e.tr != nil {
		a.noteRun()
	}
	e.liveAll--
	if !a.Daemon {
		e.live--
		if e.live == 0 {
			e.stopping = true
			// Wake every blocked actor so daemons can observe
			// Stopping and exit.
			for _, b := range e.actors {
				if b.blocked && !b.finished {
					b.blocked = false
					if b.now < e.now {
						b.now = e.now
					}
					e.push(b)
				}
			}
		}
	}
	e.dispatchNext()
}

// dispatchNext pops the next runnable event and hands its actor the
// resume permit, or signals completion when no actors remain. It runs on
// the goroutine of the actor that is parking or finishing (and once in
// Run, to start the simulation), so a deadlock panics on that actor's
// goroutine with its stack in view.
func (e *Engine) dispatchNext() {
	for {
		if e.liveAll == 0 {
			e.done <- struct{}{}
			return
		}
		if len(e.pq) == 0 {
			panic("engine: deadlock: live actors but no pending events: " + e.liveNames())
		}
		ev := e.pop()
		if ev.a.finished {
			continue
		}
		e.now = ev.at
		e.stDispatches.Inc()
		if e.tr != nil {
			ev.a.dispatchedAt = ev.at
		}
		ev.a.wake <- struct{}{}
		return
	}
}

// Run dispatches the first event and waits until every actor (daemons
// included) has finished; thereafter actors hand control to each other
// directly. A deadlock — unfinished actors but no pending events, meaning
// an actor waits on a condition no other actor can ever satisfy — panics
// on the goroutine of the last parking actor.
func (e *Engine) Run() {
	if e.running {
		panic("engine: Run called twice")
	}
	e.running = true
	if e.live == 0 {
		e.stopping = true
	}
	if e.liveAll == 0 {
		return
	}
	e.dispatchNext()
	<-e.done
}

func (e *Engine) liveNames() string {
	var names []string
	for _, a := range e.actors {
		if !a.finished {
			names = append(names, a.Name)
		}
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

type event struct {
	at  uint64
	seq uint64
	a   *Actor
}

func (e *Engine) push(a *Actor) {
	e.seq++
	e.pq.push(event{at: a.now, seq: e.seq, a: a})
}

func (e *Engine) pop() event { return e.pq.pop() }

// eventHeap is a binary min-heap ordered by (at, seq). A hand-rolled heap
// avoids container/heap interface dispatch on the hottest path in the
// simulator.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	// Zero the vacated slot so the heap's backing array does not pin the
	// moved event's *Actor (and its closed-over state) for the rest of
	// the run.
	s[n] = event{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

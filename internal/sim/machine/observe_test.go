package machine

import (
	"testing"

	"hybrids/internal/sim/memsys"
	"hybrids/internal/sim/trace"
)

// TestAttributionBucketsSumToMeasuredCycles runs one known operation — a
// compute burst, a stride of cold reads, a store — and checks the
// attribution invariant end to end: the flushed sample's buckets sum
// exactly to the operation's measured virtual cycles, and the cycles land
// in the buckets the scenario predicts.
func TestAttributionBucketsSumToMeasuredCycles(t *testing.T) {
	m := New(testConfig())
	m.EnableAttribution()
	a := m.Mem.HostAlloc.Alloc(1024, 64)
	var opStart, opEnd uint64
	m.SpawnHost(0, "t", func(c *Ctx) {
		// Prefix outside the measured interval: AttrReset must keep these
		// cycles out of the sample.
		c.Read64(a)
		c.Step(3)
		c.AttrReset()

		opStart = c.Now()
		c.Step(5)
		for i := 1; i < 8; i++ { // cold blocks: LLC misses to DRAM
			c.Read64(a + memsys.Addr(i*64))
		}
		c.Read64(a) // warmed by the prefix: on-chip hit
		c.Write64(a, 1)
		opEnd = c.Now()
		c.OpDone()
	})
	m.Run()

	snap := m.Metrics.Snapshot()
	if n := snap.Get(trace.AttrTotalMetric + "/count"); n != 1 {
		t.Fatalf("attributed samples = %d, want 1", n)
	}
	total := snap.Get(trace.AttrTotalMetric + "/sum")
	if want := opEnd - opStart; total != want {
		t.Fatalf("attributed total = %d, want measured interval %d", total, want)
	}
	var bucketSum uint64
	for b := trace.Bucket(0); b < trace.NumBuckets; b++ {
		bucketSum += snap.Get(b.MetricName() + "/sum")
	}
	if bucketSum != total {
		t.Fatalf("buckets sum to %d, want total %d", bucketSum, total)
	}
	if v := snap.Get(trace.BucketDRAM.MetricName() + "/sum"); v == 0 {
		t.Fatal("cold reads charged no DRAM cycles")
	}
	if v := snap.Get(trace.BucketHostCache.MetricName() + "/sum"); v == 0 {
		t.Fatal("on-chip hits charged no host-cache cycles")
	}
	if v := snap.Get(trace.BucketHostCompute.MetricName() + "/sum"); v < 5 {
		t.Fatalf("host compute = %d, want at least the 5 stepped cycles", v)
	}
}

// TestTracingRecordsHostEvents checks the machine-level trace plumbing: a
// host thread's memory accesses land as spans on its core track, and OpDone
// marks completion at the correct virtual time.
func TestTracingRecordsHostEvents(t *testing.T) {
	m := New(testConfig())
	tr := m.EnableTracing(1 << 10)
	a := m.Mem.HostAlloc.Alloc(64, 64)
	var done uint64
	m.SpawnHost(0, "t", func(c *Ctx) {
		c.Read64(a) // cold: DRAM read span
		c.Read64(a) // warm: L1 hit span
		done = c.Now()
		c.OpDone()
	})
	m.Run()

	host := -1
	for tk := 0; tk < tr.Tracks(); tk++ {
		if tr.TrackName(tk) == "host/0" {
			host = tk
		}
	}
	if host < 0 {
		t.Fatal("no host/0 track registered")
	}
	evs := tr.Events(host)
	counts := map[trace.Kind]int{}
	for _, ev := range evs {
		counts[ev.Kind]++
	}
	if counts[trace.KindDRAMRead] == 0 {
		t.Errorf("no dram-read span for the cold access; events: %+v", evs)
	}
	if counts[trace.KindL1Hit] == 0 {
		t.Errorf("no l1-hit span for the warm access; events: %+v", evs)
	}
	if counts[trace.KindOpDone] != 1 {
		t.Fatalf("op-done instants = %d, want 1", counts[trace.KindOpDone])
	}
	last := evs[len(evs)-1]
	if last.Kind != trace.KindOpDone || last.TS != done {
		t.Errorf("last event = %+v, want op-done at %d", last, done)
	}
}

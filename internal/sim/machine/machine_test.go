package machine

import (
	"testing"

	"hybrids/internal/sim/memsys"
)

func testConfig() Config {
	cfg := Default()
	cfg.Mem.HostMemSize = 16 << 20
	cfg.Mem.NMPMemSize = 16 << 20
	cfg.Mem.L2.Size = 64 << 10
	cfg.Mem.L1.Size = 8 << 10
	cfg.Mem.TLB.Entries = 0 // exact-latency tests assume perfect translation
	return cfg
}

func TestHostReadWriteAdvancesTime(t *testing.T) {
	m := New(testConfig())
	a := m.Mem.HostAlloc.Alloc(64, 64)
	var coldLat, warmLat uint64
	m.SpawnHost(0, "t", func(c *Ctx) {
		t0 := c.Now()
		c.Write32(a, 77)
		coldLat = c.Now() - t0
		t0 = c.Now()
		if got := c.Read32(a); got != 77 {
			t.Errorf("Read32 = %d", got)
		}
		warmLat = c.Now() - t0
	})
	m.Run()
	if coldLat == 0 || warmLat == 0 {
		t.Fatalf("accesses consumed no time: cold=%d warm=%d", coldLat, warmLat)
	}
	if warmLat >= coldLat {
		t.Fatalf("warm (%d) not faster than cold (%d)", warmLat, coldLat)
	}
}

func TestCASRacesLinearizeInVirtualTime(t *testing.T) {
	// Two host threads CAS the same word from 0; exactly one must win,
	// and the loser must observe the winner's value.
	m := New(testConfig())
	a := m.Mem.HostAlloc.Alloc(8, 8)
	wins := 0
	for core := 0; core < 2; core++ {
		core := core
		m.SpawnHost(core, "racer", func(c *Ctx) {
			if c.CAS32(a, 0, uint32(core)+1) {
				wins++
			}
		})
	}
	m.Run()
	if wins != 1 {
		t.Fatalf("CAS winners = %d, want exactly 1", wins)
	}
}

func TestAtomicAdd(t *testing.T) {
	m := New(testConfig())
	a := m.Mem.HostAlloc.Alloc(8, 8)
	const perThread = 50
	for core := 0; core < 4; core++ {
		m.SpawnHost(core, "adder", func(c *Ctx) {
			for i := 0; i < perThread; i++ {
				c.AtomicAdd32(a, 1)
			}
		})
	}
	m.Run()
	if got := m.Mem.RAM.Load32(a); got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
}

func TestNMPCoreServesUntilStopping(t *testing.T) {
	m := New(testConfig())
	flag := m.Mem.ScratchAddr(0) // one word in NMP 0's scratchpad
	served := false
	m.SpawnNMP(0, func(c *Ctx) {
		for !c.Stopping() {
			if c.Read32(flag) == 1 {
				c.Write32(flag, 2)
				served = true
			}
			c.Step(4)
		}
	})
	m.SpawnHost(0, "client", func(c *Ctx) {
		c.Write32(flag, 1) // MMIO publish
		for c.Read32(flag) != 2 {
			c.Step(8)
		}
		c.OpDone()
	})
	cycles := m.Run()
	if !served {
		t.Fatal("NMP core never served the request")
	}
	if m.Ops != 1 {
		t.Fatalf("Ops = %d", m.Ops)
	}
	if cycles == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestNMPAtomicsPanic(t *testing.T) {
	m := New(testConfig())
	a := m.Mem.NMPAlloc[0].Alloc(8, 8)
	var recovered bool
	m.SpawnNMP(0, func(c *Ctx) {
		defer func() { recovered = recover() != nil }()
		c.CAS32(a, 0, 1)
	})
	m.SpawnHost(0, "noop", func(c *Ctx) { c.Step(1) })
	m.Run()
	if !recovered {
		t.Fatal("NMP atomic did not panic")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, memsys.Stats) {
		m := New(testConfig())
		addrs := make([]memsys.Addr, 64)
		for i := range addrs {
			addrs[i] = m.Mem.HostAlloc.Alloc(64, 64)
		}
		for core := 0; core < 4; core++ {
			core := core
			m.SpawnHost(core, "w", func(c *Ctx) {
				for i := 0; i < 200; i++ {
					a := addrs[(i*7+core*13)%len(addrs)]
					if i%3 == 0 {
						c.Write32(a, uint32(i))
					} else {
						c.Read32(a)
					}
				}
			})
		}
		cycles := m.Run()
		return cycles, m.Mem.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: %d/%d %+v %+v", c1, c2, s1, s2)
	}
}

func TestStepCosts(t *testing.T) {
	cfg := testConfig()
	cfg.HostStep = 1
	cfg.NMPStep = 1
	m := New(cfg)
	var hostT, nmpT uint64
	m.SpawnHost(0, "h", func(c *Ctx) {
		t0 := c.Now()
		c.Step(10)
		hostT = c.Now() - t0
	})
	m.SpawnNMP(0, func(c *Ctx) {
		t0 := c.Now()
		c.Step(10)
		nmpT = c.Now() - t0
	})
	m.Run()
	if hostT != 10 || nmpT != 10 {
		t.Fatalf("step costs host=%d nmp=%d", hostT, nmpT)
	}
}

func TestMMIOBurstLatencyAndData(t *testing.T) {
	m := New(testConfig())
	sp := m.Mem.ScratchAddr(0)
	var wLat, rLat uint64
	m.SpawnHost(0, "h", func(c *Ctx) {
		t0 := c.Now()
		c.MMIOWriteBurst(sp, []uint32{1, 2, 3, 4})
		wLat = c.Now() - t0
		t0 = c.Now()
		got := c.MMIOReadBurst(sp, 4)
		rLat = c.Now() - t0
		for i, v := range got {
			if v != uint32(i+1) {
				t.Errorf("burst word %d = %d", i, v)
			}
		}
	})
	m.Run()
	cfg := m.Cfg.Mem
	if wLat != cfg.MMIOWriteLatency+3*cfg.MMIOWordExtra {
		t.Fatalf("write burst latency = %d", wLat)
	}
	if rLat != cfg.MMIOReadLatency+3*cfg.MMIOWordExtra {
		t.Fatalf("read burst latency = %d", rLat)
	}
}

func TestMMIOBurstFromNMPPanics(t *testing.T) {
	m := New(testConfig())
	var recovered bool
	m.SpawnNMP(0, func(c *Ctx) {
		defer func() { recovered = recover() != nil }()
		c.MMIOWriteBurst(m.Mem.ScratchAddr(0), []uint32{1})
	})
	m.SpawnHost(0, "noop", func(c *Ctx) { c.Step(1) })
	m.Run()
	if !recovered {
		t.Fatal("NMP MMIO burst did not panic")
	}
}

func TestBlockUnblockThroughCtx(t *testing.T) {
	m := New(testConfig())
	var wokeAt uint64
	waiter := m.SpawnHost(0, "waiter", func(c *Ctx) {
		c.Block()
		wokeAt = c.Now()
	})
	m.SpawnHost(1, "waker", func(c *Ctx) {
		c.Step(500)
		c.Unblock(waiter, 10)
	})
	m.Run()
	if wokeAt != 510 {
		t.Fatalf("woke at %d, want 510", wokeAt)
	}
}

// Package machine assembles the simulated NMP system of the HybriDS paper:
// a virtual-time engine, the Table 1 memory system, host hardware threads
// and per-partition NMP cores. Simulated programs (the data structure
// algorithms) receive a Ctx through which every load, store and atomic is
// charged simulated cycles.
package machine

import (
	"fmt"

	"hybrids/internal/metrics"
	"hybrids/internal/sim/engine"
	"hybrids/internal/sim/memsys"
	"hybrids/internal/sim/trace"
)

// Config parameterizes a simulated machine.
type Config struct {
	Mem memsys.Config
	// HostStep and NMPStep are the per-simple-instruction compute costs
	// charged by algorithm code between memory operations. Host cores
	// are wide out-of-order machines that hide most non-memory work;
	// NMP cores are in-order single-cycle (§2).
	HostStep uint64
	NMPStep  uint64
}

// Default returns the Table 1 machine configuration.
func Default() Config {
	return Config{Mem: memsys.DefaultConfig(), HostStep: 1, NMPStep: 1}
}

// Machine is an assembled simulated system.
type Machine struct {
	Cfg Config
	Eng *engine.Engine
	Mem *memsys.MemSys

	// Metrics is the machine-wide instrumentation registry. The engine,
	// memory system, offload runtime and data structures all register
	// their counters and histograms here, so one snapshot/delta covers
	// every subsystem.
	Metrics *metrics.Registry

	// Ops counts completed data structure operations, incremented by
	// workload drivers via Ctx.OpDone; the experiment harness divides by
	// elapsed virtual cycles for throughput.
	Ops uint64

	// Attribution state (EnableAttribution): the registry histograms each
	// per-operation bucket sample is observed into at OpDone.
	attrHists [trace.NumBuckets]*metrics.Histogram
	attrTotal *metrics.Histogram
}

// New builds a machine from cfg with a fresh machine-wide metrics registry.
func New(cfg Config) *Machine {
	reg := metrics.NewRegistry()
	eng := engine.New()
	eng.AttachMetrics(reg)
	return &Machine{
		Cfg:     cfg,
		Eng:     eng,
		Mem:     memsys.NewWithMetrics(cfg.Mem, reg),
		Metrics: reg,
	}
}

// EnableTracing attaches a fresh event tracer retaining capPerTrack events
// per track to the engine and memory system, and returns it for export
// (trace.Tracer.WriteChromeJSON). Call before spawning actors so their
// contexts bind to the per-core tracks. Tracing is observationally
// transparent: it never advances virtual time.
func (m *Machine) EnableTracing(capPerTrack int) *trace.Tracer {
	t := trace.New(capPerTrack)
	m.Eng.SetTracer(t)
	m.Mem.SetTracer(t)
	return t
}

// Tracer returns the machine's event tracer (nil when tracing is off).
func (m *Machine) Tracer() *trace.Tracer { return m.Mem.Tracer() }

// EnableAttribution switches on per-operation latency attribution: every
// host core accumulates its charged cycles into trace.Bucket categories,
// and each Ctx.OpDone flushes the interval since the previous completion
// as one sample per bucket into the "attr/<bucket>" registry histograms
// (plus "attr/op_total" for the interval's total). Buckets of one sample
// sum exactly to the interval's elapsed cycles. Call before spawning
// actors.
func (m *Machine) EnableAttribution() {
	m.Mem.EnableAttr()
	for b := trace.Bucket(0); b < trace.NumBuckets; b++ {
		m.attrHists[b] = m.Metrics.Histogram(b.MetricName())
	}
	m.attrTotal = m.Metrics.Histogram(trace.AttrTotalMetric)
}

// coreKind distinguishes the two access paths.
type coreKind int

const (
	hostCore coreKind = iota
	nmpCore
)

// Ctx is a simulated hardware context: the handle algorithm code uses to
// touch simulated memory and consume simulated time. A Ctx is bound to one
// actor and must only be used from that actor's body.
type Ctx struct {
	M    *Machine
	A    *engine.Actor
	kind coreKind
	core int // host core index, or NMP partition index

	// Observability bindings, fixed at spawn: the core's tracer and trace
	// track (nil / -1 when tracing is off) and the core's attribution
	// accumulator (nil unless this is a host core and attribution is on).
	// All three are nil-safe in use, so disabled observability costs one
	// pointer comparison per emission site.
	tr    *trace.Tracer
	track int
	attr  *trace.CoreAttr
}

// SpawnHost starts a host hardware thread pinned to the given core running
// body. The paper's configuration runs one thread per core.
func (m *Machine) SpawnHost(core int, name string, body func(*Ctx)) *engine.Actor {
	if core < 0 || core >= m.Cfg.Mem.HostCores {
		panic(fmt.Sprintf("machine: host core %d out of range", core))
	}
	return m.Eng.Spawn(name, false, func(a *engine.Actor) {
		body(&Ctx{
			M: m, A: a, kind: hostCore, core: core,
			tr:    m.Mem.Tracer(),
			track: m.Mem.HostTrack(core),
			attr:  m.Mem.Attr(core),
		})
	})
}

// SpawnNMP starts the NMP core for partition p running body as a daemon
// actor: it serves offloaded operations until all host threads finish.
func (m *Machine) SpawnNMP(p int, body func(*Ctx)) *engine.Actor {
	if p < 0 || p >= m.Cfg.Mem.NMPVaults {
		panic(fmt.Sprintf("machine: NMP partition %d out of range", p))
	}
	return m.Eng.Spawn(fmt.Sprintf("nmp%d", p), true, func(a *engine.Actor) {
		body(&Ctx{
			M: m, A: a, kind: nmpCore, core: p,
			tr:    m.Mem.Tracer(),
			track: m.Mem.NMPTrack(p),
		})
	})
}

// Run dispatches the simulation to completion and returns total elapsed
// virtual cycles.
func (m *Machine) Run() uint64 {
	m.Eng.Run()
	return m.Eng.Now()
}

// Core returns the context's core (host) or partition (NMP) index.
func (c *Ctx) Core() int { return c.core }

// IsNMP reports whether this context is an NMP core.
func (c *Ctx) IsNMP() bool { return c.kind == nmpCore }

// Now returns the context's current virtual time.
func (c *Ctx) Now() uint64 { return c.A.Now() }

// Step charges n simple-instruction cycles of compute.
func (c *Ctx) Step(n uint64) {
	if c.kind == hostCore {
		c.A.Advance(n * c.M.Cfg.HostStep)
	} else {
		c.A.Advance(n * c.M.Cfg.NMPStep)
	}
}

// OpDone records one completed data structure operation. With attribution
// enabled (EnableAttribution), it also flushes the calling host core's
// interval since its previous completion into the attribution histograms —
// each operation's bucket samples sum exactly to its interval's elapsed
// cycles — and, when tracing, marks the completion on the core's track.
func (c *Ctx) OpDone() {
	c.M.Ops++
	if c.attr != nil {
		sample, total := c.attr.Flush(c.A.Now())
		for b := trace.Bucket(0); b < trace.NumBuckets; b++ {
			c.M.attrHists[b].Observe(sample[b])
		}
		c.M.attrTotal.Observe(total)
	}
	c.tr.Instant(c.track, trace.KindOpDone, c.A.Now(), 0)
}

// AttrReset discards the calling core's partially accumulated attribution
// interval and restarts it at the current time. Workload drivers call it at
// a measured-phase boundary (after a warmup rendezvous) so setup cycles
// cannot leak into the first measured operation. No-op when attribution is
// off.
func (c *Ctx) AttrReset() {
	if c.attr != nil {
		c.attr.Flush(c.A.Now())
	}
}

// AttrAdd charges n cycles to attribution bucket b for the calling host
// core's current operation interval (no-op when attribution is off). The
// offload layers use it to classify time the memory system cannot see,
// such as cycles parked waiting for a combiner response.
func (c *Ctx) AttrAdd(b trace.Bucket, n uint64) { c.attr.Add(b, n) }

// AttrMove reclassifies up to n already-charged cycles from one bucket to
// another, clamped to what from holds (no-op when attribution is off).
func (c *Ctx) AttrMove(from, to trace.Bucket, n uint64) { c.attr.Move(from, to, n) }

// TraceSpan records a [start, start+dur) event of kind k on this core's
// trace track (no-op when tracing is off).
func (c *Ctx) TraceSpan(k trace.Kind, start, dur uint64, arg uint32) {
	c.tr.Span(c.track, k, start, dur, arg)
}

// TraceInstant records a point event of kind k at ts on this core's trace
// track (no-op when tracing is off).
func (c *Ctx) TraceInstant(k trace.Kind, ts uint64, arg uint32) {
	c.tr.Instant(c.track, k, ts, arg)
}

// Block parks this context's actor until another actor unblocks it or the
// simulation is stopping (a hardware monitor/mwait on a doorbell).
func (c *Ctx) Block() { c.A.Block() }

// Unblock resumes a blocked actor delay cycles from now (the doorbell
// signal propagation latency).
func (c *Ctx) Unblock(a *engine.Actor, delay uint64) { c.A.Unblock(a, delay) }

// Stopping reports whether all non-daemon actors have finished (used by
// NMP core loops to shut down).
func (c *Ctx) Stopping() bool { return c.A.Stopping() }

func (c *Ctx) access(a memsys.Addr, write bool) {
	var lat uint64
	if c.kind == hostCore {
		lat = c.M.Mem.HostAccess(c.core, a, write, c.A.Now())
	} else {
		lat = c.M.Mem.NMPAccess(c.core, a, write, c.A.Now())
	}
	c.A.Advance(lat)
}

// Read32 performs a timed 32-bit load.
func (c *Ctx) Read32(a memsys.Addr) uint32 {
	c.access(a, false)
	return c.M.Mem.RAM.Load32(a)
}

// Write32 performs a timed 32-bit store.
func (c *Ctx) Write32(a memsys.Addr, v uint32) {
	c.access(a, true)
	c.M.Mem.RAM.Store32(a, v)
}

// Read64 performs a timed 64-bit load.
func (c *Ctx) Read64(a memsys.Addr) uint64 {
	c.access(a, false)
	return c.M.Mem.RAM.Load64(a)
}

// Write64 performs a timed 64-bit store.
func (c *Ctx) Write64(a memsys.Addr, v uint64) {
	c.access(a, true)
	c.M.Mem.RAM.Store64(a, v)
}

// CAS32 performs a timed compare-and-swap on a 32-bit word. The latency is
// charged first and the data effect applies atomically at arrival time, so
// concurrent CASes linearize in virtual-time order. Only host cores issue
// atomics: the NMP-managed portion is single-threaded by construction.
func (c *Ctx) CAS32(a memsys.Addr, old, new uint32) bool {
	c.atomicAccess(a)
	if c.M.Mem.RAM.Load32(a) != old {
		return false
	}
	c.M.Mem.RAM.Store32(a, new)
	return true
}

// CAS64 is CAS32 for 64-bit words.
func (c *Ctx) CAS64(a memsys.Addr, old, new uint64) bool {
	c.atomicAccess(a)
	if c.M.Mem.RAM.Load64(a) != old {
		return false
	}
	c.M.Mem.RAM.Store64(a, new)
	return true
}

// AtomicAdd32 atomically adds delta to the word at a, returning the new
// value.
func (c *Ctx) AtomicAdd32(a memsys.Addr, delta uint32) uint32 {
	c.atomicAccess(a)
	v := c.M.Mem.RAM.Load32(a) + delta
	c.M.Mem.RAM.Store32(a, v)
	return v
}

// MMIOWriteBurst writes vs to consecutive 32-bit scratchpad words starting
// at a in one write-combined burst (host cores only).
func (c *Ctx) MMIOWriteBurst(a memsys.Addr, vs []uint32) {
	if c.kind != hostCore {
		panic("machine: MMIO bursts are a host-side path")
	}
	lat := c.M.Mem.MMIOBurst(a, len(vs), true)
	c.tr.Span(c.track, trace.KindMMIOWrite, c.A.Now(), lat, uint32(len(vs)))
	c.attr.Add(trace.BucketOffloadWait, lat)
	c.A.Advance(lat)
	for i, v := range vs {
		c.M.Mem.RAM.Store32(a+memsys.Addr(i)*4, v)
	}
}

// MMIOReadBurst reads n consecutive 32-bit scratchpad words starting at a
// in one burst (host cores only).
func (c *Ctx) MMIOReadBurst(a memsys.Addr, n int) []uint32 {
	if c.kind != hostCore {
		panic("machine: MMIO bursts are a host-side path")
	}
	lat := c.M.Mem.MMIOBurst(a, n, false)
	c.tr.Span(c.track, trace.KindMMIORead, c.A.Now(), lat, uint32(n))
	c.attr.Add(trace.BucketOffloadWait, lat)
	c.A.Advance(lat)
	out := make([]uint32, n)
	for i := range out {
		out[i] = c.M.Mem.RAM.Load32(a + memsys.Addr(i)*4)
	}
	return out
}

func (c *Ctx) atomicAccess(a memsys.Addr) {
	if c.kind != hostCore {
		panic("machine: NMP cores have no atomic path (single-threaded partitions)")
	}
	lat := c.M.Mem.HostAtomic(c.core, a, c.A.Now())
	c.A.Advance(lat)
}

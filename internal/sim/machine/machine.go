// Package machine assembles the simulated NMP system of the HybriDS paper:
// a virtual-time engine, the Table 1 memory system, host hardware threads
// and per-partition NMP cores. Simulated programs (the data structure
// algorithms) receive a Ctx through which every load, store and atomic is
// charged simulated cycles.
package machine

import (
	"fmt"

	"hybrids/internal/metrics"
	"hybrids/internal/sim/engine"
	"hybrids/internal/sim/memsys"
)

// Config parameterizes a simulated machine.
type Config struct {
	Mem memsys.Config
	// HostStep and NMPStep are the per-simple-instruction compute costs
	// charged by algorithm code between memory operations. Host cores
	// are wide out-of-order machines that hide most non-memory work;
	// NMP cores are in-order single-cycle (§2).
	HostStep uint64
	NMPStep  uint64
}

// Default returns the Table 1 machine configuration.
func Default() Config {
	return Config{Mem: memsys.DefaultConfig(), HostStep: 1, NMPStep: 1}
}

// Machine is an assembled simulated system.
type Machine struct {
	Cfg Config
	Eng *engine.Engine
	Mem *memsys.MemSys

	// Metrics is the machine-wide instrumentation registry. The engine,
	// memory system, offload runtime and data structures all register
	// their counters and histograms here, so one snapshot/delta covers
	// every subsystem.
	Metrics *metrics.Registry

	// Ops counts completed data structure operations, incremented by
	// workload drivers via Ctx.OpDone; the experiment harness divides by
	// elapsed virtual cycles for throughput.
	Ops uint64
}

// New builds a machine from cfg with a fresh machine-wide metrics registry.
func New(cfg Config) *Machine {
	reg := metrics.NewRegistry()
	eng := engine.New()
	eng.AttachMetrics(reg)
	return &Machine{
		Cfg:     cfg,
		Eng:     eng,
		Mem:     memsys.NewWithMetrics(cfg.Mem, reg),
		Metrics: reg,
	}
}

// coreKind distinguishes the two access paths.
type coreKind int

const (
	hostCore coreKind = iota
	nmpCore
)

// Ctx is a simulated hardware context: the handle algorithm code uses to
// touch simulated memory and consume simulated time. A Ctx is bound to one
// actor and must only be used from that actor's body.
type Ctx struct {
	M    *Machine
	A    *engine.Actor
	kind coreKind
	core int // host core index, or NMP partition index
}

// SpawnHost starts a host hardware thread pinned to the given core running
// body. The paper's configuration runs one thread per core.
func (m *Machine) SpawnHost(core int, name string, body func(*Ctx)) *engine.Actor {
	if core < 0 || core >= m.Cfg.Mem.HostCores {
		panic(fmt.Sprintf("machine: host core %d out of range", core))
	}
	return m.Eng.Spawn(name, false, func(a *engine.Actor) {
		body(&Ctx{M: m, A: a, kind: hostCore, core: core})
	})
}

// SpawnNMP starts the NMP core for partition p running body as a daemon
// actor: it serves offloaded operations until all host threads finish.
func (m *Machine) SpawnNMP(p int, body func(*Ctx)) *engine.Actor {
	if p < 0 || p >= m.Cfg.Mem.NMPVaults {
		panic(fmt.Sprintf("machine: NMP partition %d out of range", p))
	}
	return m.Eng.Spawn(fmt.Sprintf("nmp%d", p), true, func(a *engine.Actor) {
		body(&Ctx{M: m, A: a, kind: nmpCore, core: p})
	})
}

// Run dispatches the simulation to completion and returns total elapsed
// virtual cycles.
func (m *Machine) Run() uint64 {
	m.Eng.Run()
	return m.Eng.Now()
}

// Core returns the context's core (host) or partition (NMP) index.
func (c *Ctx) Core() int { return c.core }

// IsNMP reports whether this context is an NMP core.
func (c *Ctx) IsNMP() bool { return c.kind == nmpCore }

// Now returns the context's current virtual time.
func (c *Ctx) Now() uint64 { return c.A.Now() }

// Step charges n simple-instruction cycles of compute.
func (c *Ctx) Step(n uint64) {
	if c.kind == hostCore {
		c.A.Advance(n * c.M.Cfg.HostStep)
	} else {
		c.A.Advance(n * c.M.Cfg.NMPStep)
	}
}

// OpDone records one completed data structure operation.
func (c *Ctx) OpDone() { c.M.Ops++ }

// Block parks this context's actor until another actor unblocks it or the
// simulation is stopping (a hardware monitor/mwait on a doorbell).
func (c *Ctx) Block() { c.A.Block() }

// Unblock resumes a blocked actor delay cycles from now (the doorbell
// signal propagation latency).
func (c *Ctx) Unblock(a *engine.Actor, delay uint64) { c.A.Unblock(a, delay) }

// Stopping reports whether all non-daemon actors have finished (used by
// NMP core loops to shut down).
func (c *Ctx) Stopping() bool { return c.A.Stopping() }

func (c *Ctx) access(a memsys.Addr, write bool) {
	var lat uint64
	if c.kind == hostCore {
		lat = c.M.Mem.HostAccess(c.core, a, write, c.A.Now())
	} else {
		lat = c.M.Mem.NMPAccess(c.core, a, write, c.A.Now())
	}
	c.A.Advance(lat)
}

// Read32 performs a timed 32-bit load.
func (c *Ctx) Read32(a memsys.Addr) uint32 {
	c.access(a, false)
	return c.M.Mem.RAM.Load32(a)
}

// Write32 performs a timed 32-bit store.
func (c *Ctx) Write32(a memsys.Addr, v uint32) {
	c.access(a, true)
	c.M.Mem.RAM.Store32(a, v)
}

// Read64 performs a timed 64-bit load.
func (c *Ctx) Read64(a memsys.Addr) uint64 {
	c.access(a, false)
	return c.M.Mem.RAM.Load64(a)
}

// Write64 performs a timed 64-bit store.
func (c *Ctx) Write64(a memsys.Addr, v uint64) {
	c.access(a, true)
	c.M.Mem.RAM.Store64(a, v)
}

// CAS32 performs a timed compare-and-swap on a 32-bit word. The latency is
// charged first and the data effect applies atomically at arrival time, so
// concurrent CASes linearize in virtual-time order. Only host cores issue
// atomics: the NMP-managed portion is single-threaded by construction.
func (c *Ctx) CAS32(a memsys.Addr, old, new uint32) bool {
	c.atomicAccess(a)
	if c.M.Mem.RAM.Load32(a) != old {
		return false
	}
	c.M.Mem.RAM.Store32(a, new)
	return true
}

// CAS64 is CAS32 for 64-bit words.
func (c *Ctx) CAS64(a memsys.Addr, old, new uint64) bool {
	c.atomicAccess(a)
	if c.M.Mem.RAM.Load64(a) != old {
		return false
	}
	c.M.Mem.RAM.Store64(a, new)
	return true
}

// AtomicAdd32 atomically adds delta to the word at a, returning the new
// value.
func (c *Ctx) AtomicAdd32(a memsys.Addr, delta uint32) uint32 {
	c.atomicAccess(a)
	v := c.M.Mem.RAM.Load32(a) + delta
	c.M.Mem.RAM.Store32(a, v)
	return v
}

// MMIOWriteBurst writes vs to consecutive 32-bit scratchpad words starting
// at a in one write-combined burst (host cores only).
func (c *Ctx) MMIOWriteBurst(a memsys.Addr, vs []uint32) {
	if c.kind != hostCore {
		panic("machine: MMIO bursts are a host-side path")
	}
	lat := c.M.Mem.MMIOBurst(a, len(vs), true)
	c.A.Advance(lat)
	for i, v := range vs {
		c.M.Mem.RAM.Store32(a+memsys.Addr(i)*4, v)
	}
}

// MMIOReadBurst reads n consecutive 32-bit scratchpad words starting at a
// in one burst (host cores only).
func (c *Ctx) MMIOReadBurst(a memsys.Addr, n int) []uint32 {
	if c.kind != hostCore {
		panic("machine: MMIO bursts are a host-side path")
	}
	lat := c.M.Mem.MMIOBurst(a, n, false)
	c.A.Advance(lat)
	out := make([]uint32, n)
	for i := range out {
		out[i] = c.M.Mem.RAM.Load32(a + memsys.Addr(i)*4)
	}
	return out
}

func (c *Ctx) atomicAccess(a memsys.Addr) {
	if c.kind != hostCore {
		panic("machine: NMP cores have no atomic path (single-threaded partitions)")
	}
	lat := c.M.Mem.HostAtomic(c.core, a, c.A.Now())
	c.A.Advance(lat)
}

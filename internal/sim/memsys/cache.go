package memsys

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Size is the total capacity in bytes.
	Size Addr
	// Ways is the set associativity.
	Ways int
	// BlockSize is the line size in bytes (the paper uses 128 B).
	BlockSize Addr
	// Latency is the hit latency in cycles.
	Latency uint64
}

func (c CacheConfig) validate(name string) {
	if c.BlockSize == 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		panic(fmt.Sprintf("memsys: %s block size %d not a power of two", name, c.BlockSize))
	}
	if c.Ways <= 0 || c.Size == 0 || c.Size%(c.BlockSize*Addr(c.Ways)) != 0 {
		panic(fmt.Sprintf("memsys: %s geometry invalid: size=%d ways=%d block=%d", name, c.Size, c.Ways, c.BlockSize))
	}
}

type line struct {
	tag   uint32 // block number (addr >> blockShift)
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative, write-back, write-allocate tag store with LRU
// replacement. It tracks which blocks are resident (timing plane only —
// data lives in RAM).
type Cache struct {
	cfg     CacheConfig
	sets    [][]line
	setMask uint32
	stamp   uint64
	// mru points at the line of the most recent hit or fill: a one-entry
	// way predictor that short-circuits the set scan when consecutive
	// accesses land in the same block — the common case both for
	// field-by-field node reads and for TLB lookups, where successive
	// accesses stay on one page. The fast path performs exactly the
	// recency/dirty updates of the scanning path, so hit/miss outcomes,
	// eviction choices and therefore simulated timing are identical.
	mru *line
}

// NewCache builds a cache from cfg.
func NewCache(name string, cfg CacheConfig) *Cache {
	cfg.validate(name)
	nsets := uint32(cfg.Size / (cfg.BlockSize * Addr(cfg.Ways)))
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("memsys: %s set count %d not a power of two", name, nsets))
	}
	sets := make([][]line, nsets)
	backing := make([]line, int(nsets)*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, setMask: nsets - 1}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Lookup probes for block, updating recency on a hit and setting the dirty
// bit when write is true. It reports whether the block was resident.
func (c *Cache) Lookup(block uint32, write bool) bool {
	// Same-block fast path via the one-entry way predictor.
	if l := c.mru; l != nil && l.valid && l.tag == block {
		c.stamp++
		l.lru = c.stamp
		if write {
			l.dirty = true
		}
		return true
	}
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			c.stamp++
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			c.mru = &set[i]
			return true
		}
	}
	return false
}

// Contains reports residency without touching recency or dirty state.
func (c *Cache) Contains(block uint32) bool {
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Fill inserts block (which must not be resident) choosing an invalid way
// or evicting the LRU line. It returns the evicted block and whether it was
// dirty; ok is false when no eviction happened.
func (c *Cache) Fill(block uint32, dirty bool) (evicted uint32, evictedDirty, ok bool) {
	set := c.sets[block&c.setMask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		evicted, evictedDirty, ok = v.tag, v.dirty, true
	}
	c.stamp++
	*v = line{tag: block, valid: true, dirty: dirty, lru: c.stamp}
	c.mru = v
	return evicted, evictedDirty, ok
}

// Invalidate drops block if resident, reporting whether it was present and
// whether the dropped line was dirty.
func (c *Cache) Invalidate(block uint32) (present, dirty bool) {
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			present, dirty = true, set[i].dirty
			set[i] = line{}
			return present, dirty
		}
	}
	return false, false
}

// Flush invalidates every line. Used between experiment phases.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.mru = nil
}

// directory tracks, per block, which host cores hold the block in their
// private L1, so stores can invalidate remote copies (MESI-style ownership
// without modelling the full protocol state machine).
//
// The sharer masks live in a dense slice indexed by block number within
// the host-memory range: host cores can only cache host main memory, that
// range is fixed at configuration time, and the map this replaces was the
// hottest allocating lookup in experiment profiles. Untouched entries cost
// only zero pages, so the slice's resident footprint tracks the touched
// working set just as the map's did.
type directory struct {
	sharers []uint32 // block -> bitmask of core IDs
}

// newDirectory sizes the sharer table for the given number of cacheable
// host-memory blocks.
func newDirectory(blocks uint32) directory {
	return directory{sharers: make([]uint32, blocks)}
}

// reset drops all sharer state (a fresh zero-page allocation is cheaper
// than clearing a mostly-untouched table in place).
func (d *directory) reset() { d.sharers = make([]uint32, len(d.sharers)) }

func (d *directory) add(block uint32, core int)  { d.sharers[block] |= 1 << uint(core) }
func (d *directory) drop(block uint32, core int) { d.sharers[block] &^= 1 << uint(core) }

// others returns the sharer bitmask excluding core.
func (d *directory) others(block uint32, core int) uint32 {
	return d.sharers[block] &^ (1 << uint(core))
}

package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := DefaultConfig()
	// Shrink memory so tests stay light; geometry semantics unchanged.
	cfg.HostMemSize = 16 << 20
	cfg.NMPMemSize = 16 << 20
	cfg.L2.Size = 64 << 10
	cfg.L1.Size = 8 << 10
	cfg.TLB.Entries = 0 // exact-latency tests assume perfect translation
	return cfg
}

func TestRAMRoundTrip(t *testing.T) {
	r := NewRAM(1 << 20)
	r.Store32(0x100, 0xdeadbeef)
	if got := r.Load32(0x100); got != 0xdeadbeef {
		t.Fatalf("Load32 = %#x", got)
	}
	r.Store64(0x200, 0x1122334455667788)
	if got := r.Load64(0x200); got != 0x1122334455667788 {
		t.Fatalf("Load64 = %#x", got)
	}
	// Adjacent words do not clobber each other.
	r.Store32(0x104, 7)
	if got := r.Load32(0x100); got != 0xdeadbeef {
		t.Fatalf("adjacent store clobbered: %#x", got)
	}
}

func TestRAMPropertyStoreLoad(t *testing.T) {
	r := NewRAM(1 << 20)
	f := func(addr uint32, v uint32) bool {
		a := Addr(addr%(1<<20)) &^ 3
		r.Store32(a, v)
		return r.Load32(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRAMUnalignedPanics(t *testing.T) {
	r := NewRAM(1 << 16)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	r.Load32(2)
}

func TestRAMOutOfRangePanics(t *testing.T) {
	r := NewRAM(1 << 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	r.Load32(1 << 16)
}

func TestAllocatorAlignmentAndExhaustion(t *testing.T) {
	al := NewAllocator("t", 0x1000, 0x100)
	a := al.Alloc(10, 8)
	if a != 0x1000 {
		t.Fatalf("first alloc = %#x", a)
	}
	b := al.Alloc(8, 64)
	if b%64 != 0 || b < a+10 {
		t.Fatalf("aligned alloc = %#x", b)
	}
	if al.Used() == 0 || al.Remaining() == 0 {
		t.Fatalf("accounting broken: used=%d rem=%d", al.Used(), al.Remaining())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustion did not panic")
		}
	}()
	al.Alloc(0x1000, 8)
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache("t", CacheConfig{Size: 1 << 12, Ways: 2, BlockSize: 128, Latency: 1})
	if c.Lookup(5, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(5, false)
	if !c.Lookup(5, false) {
		t.Fatal("miss after fill")
	}
	if !c.Contains(5) {
		t.Fatal("Contains false after fill")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 4 sets: blocks with equal low 2 bits share a set.
	c := NewCache("t", CacheConfig{Size: 1 << 10, Ways: 2, BlockSize: 128, Latency: 1})
	c.Fill(0, false)
	c.Fill(4, false)
	c.Lookup(0, false) // make block 4 the LRU line
	ev, _, ok := c.Fill(8, false)
	if !ok || ev != 4 {
		t.Fatalf("evicted %d (ok=%v), want 4", ev, ok)
	}
	if !c.Contains(0) || c.Contains(4) || !c.Contains(8) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestCacheDirtyEvictionReported(t *testing.T) {
	c := NewCache("t", CacheConfig{Size: 256, Ways: 1, BlockSize: 128, Latency: 1})
	c.Fill(0, false)
	c.Lookup(0, true) // dirty it
	_, dirty, ok := c.Fill(2, false)
	if !ok || !dirty {
		t.Fatalf("dirty eviction not reported (ok=%v dirty=%v)", ok, dirty)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache("t", CacheConfig{Size: 1 << 10, Ways: 2, BlockSize: 128, Latency: 1})
	c.Fill(3, true)
	present, dirty := c.Invalidate(3)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(3) {
		t.Fatal("block resident after invalidate")
	}
	present, _ = c.Invalidate(3)
	if present {
		t.Fatal("second invalidate reported present")
	}
}

func TestCachePropertyResidencyMatchesModel(t *testing.T) {
	// Model each set as an LRU list and check the cache agrees.
	cfg := CacheConfig{Size: 2048, Ways: 4, BlockSize: 128, Latency: 1}
	c := NewCache("t", cfg)
	nsets := uint32(cfg.Size / (cfg.BlockSize * Addr(cfg.Ways)))
	model := make(map[uint32][]uint32) // set -> blocks MRU-first
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		blk := uint32(rng.Intn(64))
		set := blk % nsets
		lst := model[set]
		pos := -1
		for j, b := range lst {
			if b == blk {
				pos = j
				break
			}
		}
		if c.Lookup(blk, false) != (pos >= 0) {
			t.Fatalf("step %d: residency of block %d disagrees with model", i, blk)
		}
		if pos >= 0 {
			lst = append(lst[:pos], lst[pos+1:]...)
		} else {
			c.Fill(blk, false)
			if len(lst) == cfg.Ways {
				lst = lst[:cfg.Ways-1] // drop LRU
			}
		}
		model[set] = append([]uint32{blk}, lst...)
	}
}

func TestVaultRowBufferTiming(t *testing.T) {
	v := NewVault(VaultConfig{Banks: 8, RowShift: 13, Timing: Table1Timing()})
	tm := Table1Timing()
	// First access to a closed bank: activate + CAS + burst.
	done := v.Access(0, 7, 0)
	if done != tm.TRCD+tm.TCL+tm.TBURST {
		t.Fatalf("closed-bank access = %d", done)
	}
	// Same row (same bank: bank bits are block bits 0..2, so +128B*8 keeps bank 0): row hit.
	start := done
	done = v.Access(1024, 7, start)
	if done-start != tm.TCL+tm.TBURST {
		t.Fatalf("row hit latency = %d, want %d", done-start, tm.TCL+tm.TBURST)
	}
	// Different row, same bank: conflict.
	start = done
	done = v.Access(1<<14, 7, start)
	if done-start != tm.TRP+tm.TRCD+tm.TCL+tm.TBURST {
		t.Fatalf("row conflict latency = %d", done-start)
	}
}

func TestVaultBankBusySerializes(t *testing.T) {
	v := NewVault(VaultConfig{Banks: 8, RowShift: 13, Timing: Table1Timing()})
	d1 := v.Access(0, 7, 0)
	// Second request to the same bank issued at time 0 must wait.
	d2 := v.Access(1024, 7, 0)
	if d2 <= d1 {
		t.Fatalf("overlapping bank accesses: d1=%d d2=%d", d1, d2)
	}
	// Requests to different banks proceed in parallel.
	v2 := NewVault(VaultConfig{Banks: 8, RowShift: 13, Timing: Table1Timing()})
	a := v2.Access(0, 7, 0)
	b := v2.Access(128, 7, 0) // next block -> next bank
	if b != a {
		t.Fatalf("different banks serialized: %d vs %d", a, b)
	}
}

func TestMemSysHostHitMissPath(t *testing.T) {
	m := New(testConfig())
	a := m.HostAlloc.Alloc(64, 64)
	lat1 := m.HostAccess(0, a, false, 0)
	if m.Stats().HostDRAMReads != 1 {
		t.Fatalf("cold read DRAMReads = %d", m.Stats().HostDRAMReads)
	}
	lat2 := m.HostAccess(0, a, false, lat1)
	if lat2 != m.Cfg.L1.Latency {
		t.Fatalf("warm read latency = %d, want L1 %d", lat2, m.Cfg.L1.Latency)
	}
	if m.Stats().L1Hits != 1 {
		t.Fatalf("L1Hits = %d", m.Stats().L1Hits)
	}
	if lat1 <= lat2 {
		t.Fatalf("miss (%d) not slower than hit (%d)", lat1, lat2)
	}
}

func TestMemSysL2SharedAcrossCores(t *testing.T) {
	m := New(testConfig())
	a := m.HostAlloc.Alloc(64, 64)
	m.HostAccess(0, a, false, 0)
	base := m.Stats()
	m.HostAccess(1, a, false, 1000)
	d := m.Stats().Sub(base)
	if d.HostDRAMReads != 0 || d.L2Hits != 1 {
		t.Fatalf("core 1 after core 0: dram=%d l2hits=%d, want 0/1", d.HostDRAMReads, d.L2Hits)
	}
}

func TestMemSysWriteInvalidatesRemoteL1(t *testing.T) {
	m := New(testConfig())
	a := m.HostAlloc.Alloc(64, 64)
	m.HostAccess(0, a, false, 0) // core 0 caches it
	m.HostAccess(1, a, false, 0) // core 1 caches it
	base := m.Stats()
	m.HostAccess(1, a, true, 100) // core 1 writes: must invalidate core 0
	if m.Stats().Sub(base).Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", m.Stats().Sub(base).Invalidations)
	}
	base = m.Stats()
	m.HostAccess(0, a, false, 200) // core 0 re-reads: L1 miss, L2 hit
	d := m.Stats().Sub(base)
	if d.L1Hits != 0 || d.L2Hits != 1 {
		t.Fatalf("after invalidation: l1=%d l2=%d, want 0/1", d.L1Hits, d.L2Hits)
	}
}

func TestMemSysAtomicCountsAndCosts(t *testing.T) {
	m := New(testConfig())
	a := m.HostAlloc.Alloc(64, 64)
	m.HostAccess(0, a, false, 0)
	base := m.Stats()
	lat := m.HostAtomic(0, a, 10)
	if m.Stats().Sub(base).Atomics != 1 {
		t.Fatal("atomic not counted")
	}
	if lat < m.Cfg.L1.Latency+m.Cfg.AtomicExtra {
		t.Fatalf("atomic latency %d below floor", lat)
	}
}

func TestMemSysHostCannotTouchNMP(t *testing.T) {
	m := New(testConfig())
	a := m.NMPAlloc[0].Alloc(64, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("host access to NMP memory did not panic")
		}
	}()
	m.HostAccess(0, a, false, 0)
}

func TestMemSysNMPPartitionIsolation(t *testing.T) {
	m := New(testConfig())
	a := m.NMPAlloc[1].Alloc(64, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("NMP cross-partition access did not panic")
		}
	}()
	m.NMPAccess(0, a, false, 0)
}

func TestMemSysNMPBufferActsAsSingleBlockCache(t *testing.T) {
	m := New(testConfig())
	a := m.NMPAlloc[0].Alloc(256, 128)
	lat1 := m.NMPAccess(0, a, false, 0)
	if m.Stats().NMPDRAMReads != 1 {
		t.Fatalf("cold NMP read: dram=%d", m.Stats().NMPDRAMReads)
	}
	lat2 := m.NMPAccess(0, a+64, false, lat1) // same block
	if lat2 != m.Cfg.NMPBufLatency || m.Stats().NMPBufHits != 1 {
		t.Fatalf("buffered read lat=%d hits=%d", lat2, m.Stats().NMPBufHits)
	}
	m.NMPAccess(0, a+128, false, lat1+lat2) // next block evicts buffer
	base := m.Stats()
	m.NMPAccess(0, a, false, 1000)
	if m.Stats().Sub(base).NMPDRAMReads != 1 {
		t.Fatal("buffer retained stale block")
	}
}

func TestMemSysScratchpadMMIO(t *testing.T) {
	m := New(testConfig())
	sp := m.ScratchAddr(3)
	if lat := m.HostAccess(0, sp, true, 0); lat != m.Cfg.MMIOWriteLatency {
		t.Fatalf("MMIO write latency = %d", lat)
	}
	if lat := m.HostAccess(0, sp, false, 0); lat != m.Cfg.MMIOReadLatency {
		t.Fatalf("MMIO read latency = %d", lat)
	}
	if lat := m.NMPAccess(3, sp, false, 0); lat != m.Cfg.NMPScratchLatency {
		t.Fatalf("NMP scratch latency = %d", lat)
	}
	if m.Stats().MMIOWrites != 1 || m.Stats().MMIOReads != 1 || m.Stats().ScratchOps != 1 {
		t.Fatalf("MMIO stats %+v", m.Stats())
	}
}

func TestMemSysRegionClassification(t *testing.T) {
	m := New(testConfig())
	if !m.IsHostMem(0) || m.IsHostMem(m.Cfg.HostMemSize) {
		t.Fatal("host region boundary wrong")
	}
	p, ok := m.IsNMPMem(m.Cfg.HostMemSize)
	if !ok || p != 0 {
		t.Fatalf("NMP region start: p=%d ok=%v", p, ok)
	}
	last := m.Cfg.HostMemSize + m.Cfg.NMPMemSize - 1
	p, ok = m.IsNMPMem(last)
	if !ok || p != m.Cfg.NMPVaults-1 {
		t.Fatalf("NMP region end: p=%d ok=%v", p, ok)
	}
	if _, ok := m.IsNMPMem(m.ScratchAddr(0)); ok {
		t.Fatal("scratch classified as NMP mem")
	}
	sp, ok := m.IsScratch(m.ScratchAddr(2) + 100)
	if !ok || sp != 2 {
		t.Fatalf("scratch owner = %d ok=%v", sp, ok)
	}
}

func TestMemSysFlushCaches(t *testing.T) {
	m := New(testConfig())
	a := m.HostAlloc.Alloc(64, 64)
	m.HostAccess(0, a, false, 0)
	m.FlushCaches()
	base := m.Stats()
	m.HostAccess(0, a, false, 0)
	if m.Stats().Sub(base).HostDRAMReads != 1 {
		t.Fatal("flush did not clear caches")
	}
}

func TestMemSysLLCCapacityPressure(t *testing.T) {
	// Touch far more blocks than L2 capacity; re-touching the first ones
	// must miss again (the pollution effect the paper's design targets).
	cfg := testConfig()
	m := New(cfg)
	blocks := int(cfg.L2.Size/cfg.L2.BlockSize) * 4
	addrs := make([]Addr, blocks)
	for i := range addrs {
		addrs[i] = m.HostAlloc.Alloc(cfg.L2.BlockSize, cfg.L2.BlockSize)
	}
	now := uint64(0)
	for _, a := range addrs {
		now += m.HostAccess(0, a, false, now)
	}
	base := m.Stats()
	for _, a := range addrs[:16] {
		now += m.HostAccess(0, a, false, now)
	}
	if got := m.Stats().Sub(base).HostDRAMReads; got != 16 {
		t.Fatalf("re-touch after pollution: dram=%d, want 16", got)
	}
}

func TestNilBlockNeverAllocated(t *testing.T) {
	m := New(testConfig())
	if a := m.HostAlloc.Alloc(8, 8); a == 0 {
		t.Fatal("allocator returned simulated nil address 0")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{L1Hits: 10, HostDRAMReads: 5, NMPDRAMReads: 2}
	b := Stats{L1Hits: 4, HostDRAMReads: 1, NMPDRAMReads: 2}
	d := a.Sub(b)
	if d.L1Hits != 6 || d.HostDRAMReads != 4 || d.NMPDRAMReads != 0 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.DRAMReads() != 7 {
		t.Fatalf("DRAMReads = %d", a.DRAMReads())
	}
}

func TestTLBMissTriggersPageWalk(t *testing.T) {
	cfg := testConfig()
	cfg.TLB = TLBConfig{Entries: 16, Ways: 4, PageBits: 12, WalkExtra: 8}
	m := New(cfg)
	m.HostAlloc.Alloc(4096, 4096) // spacer: keep the test block away from the page tables
	a := m.HostAlloc.Alloc(64, 64)
	base := m.Stats()
	latCold := m.HostAccess(0, a, false, 0)
	d := m.Stats().Sub(base)
	if d.TLBMisses != 1 {
		t.Fatalf("TLB misses = %d, want 1", d.TLBMisses)
	}
	// Cold walk: 2 PTE reads from DRAM plus the data read.
	if d.HostDRAMReads != 3 {
		t.Fatalf("cold translated read DRAM = %d, want 3 (2 PTE + data)", d.HostDRAMReads)
	}
	base = m.Stats()
	latWarm := m.HostAccess(0, a, false, latCold)
	if m.Stats().Sub(base).TLBMisses != 0 {
		t.Fatal("second access to same page missed TLB")
	}
	if latWarm >= latCold {
		t.Fatalf("warm (%d) not faster than cold translated (%d)", latWarm, latCold)
	}
	// Touch many distinct pages to evict, then the first page misses again.
	now := latCold + latWarm
	for i := 0; i < 64; i++ {
		p := m.HostAlloc.Alloc(4096, 4096)
		now += m.HostAccess(0, p, false, now)
	}
	base = m.Stats()
	m.HostAccess(0, a, false, now)
	if m.Stats().Sub(base).TLBMisses != 1 {
		t.Fatal("TLB capacity eviction not modelled")
	}
}

func TestTLBDisabledHasNoWalks(t *testing.T) {
	m := New(testConfig()) // Entries = 0
	a := m.HostAlloc.Alloc(64, 64)
	m.HostAccess(0, a, false, 0)
	if m.Stats().TLBMisses != 0 || m.Stats().HostDRAMReads != 1 {
		t.Fatalf("disabled TLB produced walks: %+v", m.Stats())
	}
}

func TestVaultPropertyBankCompletionMonotonic(t *testing.T) {
	// Per bank, completions must be non-decreasing when requests are
	// issued in non-decreasing time order.
	f := func(addrs []uint16, gaps []uint8) bool {
		v := NewVault(VaultConfig{Banks: 8, RowShift: 13, Timing: Table1Timing()})
		lastDone := map[uint32]uint64{}
		now := uint64(0)
		for i, a16 := range addrs {
			if i < len(gaps) {
				now += uint64(gaps[i])
			}
			a := Addr(a16) << 7 // block-aligned
			bank := (uint32(a) >> 7) & 7
			done := v.Access(a, 7, now)
			if done < now {
				return false
			}
			if done < lastDone[bank] {
				return false
			}
			lastDone[bank] = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryMultipleSharers(t *testing.T) {
	m := New(testConfig())
	a := m.HostAlloc.Alloc(64, 64)
	for core := 0; core < 4; core++ {
		m.HostAccess(core, a, false, uint64(core)*1000)
	}
	base := m.Stats()
	m.HostAccess(0, a, true, 5000) // writer invalidates the other three
	if got := m.Stats().Sub(base).Invalidations; got != 3 {
		t.Fatalf("invalidations = %d, want 3", got)
	}
}

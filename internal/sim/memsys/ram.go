// Package memsys models the memory system of the baseline NMP architecture
// from the HybriDS paper (Table 1): simulated physical memory contents, a
// two-level host cache hierarchy with an invalidation directory, and an
// HMC-style vaulted DRAM with per-bank open-row timing.
//
// The package splits the functional plane from the timing plane. Data
// always lives in RAM and every store is applied immediately, so the
// simulated machine is trivially coherent; caches and vaults are tag/timing
// models that decide how many cycles each access costs and how many DRAM
// reads it performs. This functional/timing split is standard practice in
// architecture simulators and is what lets lock-free algorithms run
// unchanged on the simulated machine.
package memsys

import (
	"encoding/binary"
	"fmt"
)

// Addr is a simulated physical byte address.
type Addr uint32

// pageBits selects the sparse-RAM page size (64 KiB): large enough to keep
// page-table overhead trivial, small enough that tiny test configurations
// stay tiny in host memory.
const pageBits = 16

const pageSize = 1 << pageBits

// RAM holds simulated physical memory contents, allocated sparsely by page
// so that a 2 GiB simulated address space costs only what is touched.
type RAM struct {
	pages []*[pageSize]byte
	size  Addr
}

// NewRAM creates simulated memory covering addresses [0, size).
func NewRAM(size Addr) *RAM {
	n := (uint64(size) + pageSize - 1) / pageSize
	return &RAM{pages: make([]*[pageSize]byte, n), size: size}
}

// Size returns the simulated physical memory size in bytes.
func (r *RAM) Size() Addr { return r.size }

func (r *RAM) page(a Addr) *[pageSize]byte {
	idx := a >> pageBits
	if uint64(a) >= uint64(r.size) {
		panic(fmt.Sprintf("memsys: address %#x out of simulated memory (size %#x)", a, r.size))
	}
	p := r.pages[idx]
	if p == nil {
		p = new([pageSize]byte)
		r.pages[idx] = p
	}
	return p
}

// span returns the n-byte slice at a, which must not cross a page boundary.
func (r *RAM) span(a Addr, n int) []byte {
	off := int(a & (pageSize - 1))
	if off+n > pageSize {
		panic(fmt.Sprintf("memsys: %d-byte access at %#x crosses page boundary", n, a))
	}
	return r.page(a)[off : off+n]
}

// Load32 reads the 32-bit word at a (a must be 4-byte aligned).
func (r *RAM) Load32(a Addr) uint32 {
	checkAlign(a, 4)
	return binary.LittleEndian.Uint32(r.span(a, 4))
}

// Store32 writes the 32-bit word at a.
func (r *RAM) Store32(a Addr, v uint32) {
	checkAlign(a, 4)
	binary.LittleEndian.PutUint32(r.span(a, 4), v)
}

// Load64 reads the 64-bit word at a (8-byte aligned).
func (r *RAM) Load64(a Addr) uint64 {
	checkAlign(a, 8)
	return binary.LittleEndian.Uint64(r.span(a, 8))
}

// Store64 writes the 64-bit word at a.
func (r *RAM) Store64(a Addr, v uint64) {
	checkAlign(a, 8)
	binary.LittleEndian.PutUint64(r.span(a, 8), v)
}

func checkAlign(a Addr, n Addr) {
	if a%n != 0 {
		panic(fmt.Sprintf("memsys: unaligned %d-byte access at %#x", n, a))
	}
}

// Allocator is a bump allocator over a contiguous region of simulated
// memory. Simulated data structures never free individual nodes during an
// experiment (matching the paper's setup, where structures are provisioned
// up front); freed skiplist/B+ tree nodes are recycled by the structures'
// own free lists instead.
type Allocator struct {
	name string
	base Addr
	end  Addr
	next Addr
}

// NewAllocator returns a bump allocator over [base, base+size).
func NewAllocator(name string, base, size Addr) *Allocator {
	return &Allocator{name: name, base: base, end: base + size, next: base}
}

// Alloc returns the address of a fresh n-byte block aligned to align bytes.
// It panics when the region is exhausted: experiments size regions up
// front, so exhaustion is a configuration bug, not a runtime condition.
func (al *Allocator) Alloc(n, align Addr) Addr {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("memsys: allocator %q: alignment %d not a power of two", al.name, align))
	}
	a := (al.next + align - 1) &^ (align - 1)
	if a+n > al.end || a+n < a {
		panic(fmt.Sprintf("memsys: allocator %q exhausted: need %d bytes at %#x, region ends %#x", al.name, n, a, al.end))
	}
	al.next = a + n
	return a
}

// Used reports how many bytes have been consumed, including alignment
// padding.
func (al *Allocator) Used() Addr { return al.next - al.base }

// Base returns the first address of the region.
func (al *Allocator) Base() Addr { return al.base }

// Remaining reports how many bytes are still available.
func (al *Allocator) Remaining() Addr { return al.end - al.next }

package memsys

// DRAMTiming holds core DRAM timing parameters in cycles. Table 1 gives
// tRP = tRCD = tCL = 13.75 ns and tBURST = 3.2 ns; at the 2 GHz core clock
// those round to 28, 28, 28 and 7 cycles.
type DRAMTiming struct {
	TRP    uint64 // row precharge
	TRCD   uint64 // row activate (RAS-to-CAS)
	TCL    uint64 // column access
	TBURST uint64 // data burst for one 128 B block
}

// Table1Timing returns the paper's DRAM timing at 2 GHz.
func Table1Timing() DRAMTiming {
	return DRAMTiming{TRP: 28, TRCD: 28, TCL: 28, TBURST: 7}
}

// VaultConfig describes one HMC memory vault.
type VaultConfig struct {
	// Banks is the number of DRAM banks in the vault (Table 1: 8).
	Banks int
	// RowShift sets the open-row granule: accesses whose addresses agree
	// above this shift hit the same row buffer. 13 models an 8 KiB row
	// footprint, typical for HMC-class vaults.
	RowShift uint
	Timing   DRAMTiming
}

type bank struct {
	openRow   uint32
	hasOpen   bool
	busyUntil uint64
}

// Vault models one memory vault: a set of banks with open-row policy and
// per-bank service serialization. It is purely a timing model.
type Vault struct {
	cfg      VaultConfig
	banks    []bank
	bankMask uint32
}

// NewVault builds a vault from cfg; cfg.Banks must be a power of two.
func NewVault(cfg VaultConfig) *Vault {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("memsys: vault bank count must be a positive power of two")
	}
	return &Vault{cfg: cfg, banks: make([]bank, cfg.Banks), bankMask: uint32(cfg.Banks - 1)}
}

// Access services a block access beginning no earlier than now and returns
// its completion time. Bank selection uses the block-number low bits so
// consecutive blocks in a vault spread across banks.
func (v *Vault) Access(a Addr, blockShift uint, now uint64) (done uint64) {
	b := &v.banks[(uint32(a)>>blockShift)&v.bankMask]
	row := uint32(a) >> v.cfg.RowShift
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	t := v.cfg.Timing
	var lat uint64
	switch {
	case b.hasOpen && b.openRow == row:
		lat = t.TCL + t.TBURST // row buffer hit
	case !b.hasOpen:
		lat = t.TRCD + t.TCL + t.TBURST // closed bank
	default:
		lat = t.TRP + t.TRCD + t.TCL + t.TBURST // row conflict
	}
	b.openRow, b.hasOpen = row, true
	b.busyUntil = start + lat
	return start + lat
}

// Drain resets all bank state (used between experiment phases so timing
// does not leak across measurements).
func (v *Vault) Drain() {
	for i := range v.banks {
		v.banks[i] = bank{}
	}
}

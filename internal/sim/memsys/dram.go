package memsys

// DRAMTiming holds core DRAM timing parameters in cycles. Table 1 gives
// tRP = tRCD = tCL = 13.75 ns and tBURST = 3.2 ns; at the 2 GHz core clock
// those round to 28, 28, 28 and 7 cycles.
type DRAMTiming struct {
	TRP    uint64 // row precharge
	TRCD   uint64 // row activate (RAS-to-CAS)
	TCL    uint64 // column access
	TBURST uint64 // data burst for one 128 B block
}

// Table1Timing returns the paper's DRAM timing at 2 GHz.
func Table1Timing() DRAMTiming {
	return DRAMTiming{TRP: 28, TRCD: 28, TCL: 28, TBURST: 7}
}

// VaultConfig describes one HMC memory vault.
type VaultConfig struct {
	// Banks is the number of DRAM banks in the vault (Table 1: 8).
	Banks int
	// RowShift sets the open-row granule: accesses whose addresses agree
	// above this shift hit the same row buffer. 13 models an 8 KiB row
	// footprint, typical for HMC-class vaults.
	RowShift uint
	Timing   DRAMTiming
}

// RowOutcome classifies one bank access by its row-buffer interaction; it
// rides along as the Arg of DRAM trace events so a Perfetto capture shows
// locality, not just latency.
type RowOutcome uint32

// Row-buffer outcomes, cheapest first.
const (
	// RowHit: the bank's open row already held the block (tCL + tBURST).
	RowHit RowOutcome = iota
	// RowClosed: the bank had no open row and paid an activate (tRCD).
	RowClosed
	// RowConflict: a different row was open and paid precharge + activate
	// (tRP + tRCD).
	RowConflict
)

// String returns the outcome's short name.
func (o RowOutcome) String() string {
	switch o {
	case RowHit:
		return "row-hit"
	case RowClosed:
		return "row-closed"
	default:
		return "row-conflict"
	}
}

type bank struct {
	openRow   uint32
	hasOpen   bool
	busyUntil uint64
}

// Vault models one memory vault: a set of banks with open-row policy and
// per-bank service serialization. It is purely a timing model.
type Vault struct {
	cfg      VaultConfig
	banks    []bank
	bankMask uint32
}

// NewVault builds a vault from cfg; cfg.Banks must be a power of two.
func NewVault(cfg VaultConfig) *Vault {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("memsys: vault bank count must be a positive power of two")
	}
	return &Vault{cfg: cfg, banks: make([]bank, cfg.Banks), bankMask: uint32(cfg.Banks - 1)}
}

// Access services a block access beginning no earlier than now and returns
// its completion time. Bank selection uses the block-number low bits so
// consecutive blocks in a vault spread across banks.
func (v *Vault) Access(a Addr, blockShift uint, now uint64) (done uint64) {
	done, _ = v.AccessEx(a, blockShift, now)
	return done
}

// AccessEx is Access plus the row-buffer outcome of the bank access, for
// trace emission. Timing is identical to Access.
func (v *Vault) AccessEx(a Addr, blockShift uint, now uint64) (done uint64, outcome RowOutcome) {
	b := &v.banks[(uint32(a)>>blockShift)&v.bankMask]
	row := uint32(a) >> v.cfg.RowShift
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	t := v.cfg.Timing
	var lat uint64
	switch {
	case b.hasOpen && b.openRow == row:
		lat, outcome = t.TCL+t.TBURST, RowHit // row buffer hit
	case !b.hasOpen:
		lat, outcome = t.TRCD+t.TCL+t.TBURST, RowClosed // closed bank
	default:
		lat, outcome = t.TRP+t.TRCD+t.TCL+t.TBURST, RowConflict // row conflict
	}
	b.openRow, b.hasOpen = row, true
	b.busyUntil = start + lat
	return start + lat, outcome
}

// Drain resets all bank state (used between experiment phases so timing
// does not leak across measurements).
func (v *Vault) Drain() {
	for i := range v.banks {
		v.banks[i] = bank{}
	}
}

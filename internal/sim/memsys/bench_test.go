package memsys

import "testing"

// BenchmarkMemsysAccess drives the host access path (TLB, L1, directory,
// LLC, vault timing) with a reproducible pseudo-random mix of reads and
// writes from all host cores, the same shape the simulated data-structure
// traversals generate. Reports sustained model throughput (accesses/s).
func BenchmarkMemsysAccess(b *testing.B) {
	cfg := DefaultConfig()
	m := New(cfg)
	const span = 32 << 20 // 32 MiB working set: misses in L1/LLC, hits pages
	cores := cfg.HostCores
	var x uint32 = 12345
	var now uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*1664525 + 1013904223 // LCG: fixed address sequence
		a := Addr(x%span) &^ 3     // 4-byte aligned, within host memory
		write := x&7 == 0          // ~1/8 stores, like a read-mostly workload
		now += m.HostAccess(i%cores, a, write, now)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "accesses/s")
	}
}

// BenchmarkMemsysSameBlock isolates the one-entry way-predictor fast path:
// consecutive accesses to one block, the pattern of field-by-field node
// reads.
func BenchmarkMemsysSameBlock(b *testing.B) {
	m := New(DefaultConfig())
	var now uint64
	now += m.HostAccess(0, 0x1000, false, now) // warm the block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += m.HostAccess(0, 0x1000+Addr(i%16)*8, false, now)
	}
}

package memsys

import (
	"fmt"

	"hybrids/internal/metrics"
	"hybrids/internal/sim/trace"
)

// Config describes the whole memory system. DefaultConfig mirrors Table 1.
type Config struct {
	HostCores int

	L1 CacheConfig // private per host core
	L2 CacheConfig // shared LLC

	// HostMemSize and NMPMemSize split DRAM into host-accessible main
	// memory and NMP-capable memory (Table 1: 1 GiB + 1 GiB).
	HostMemSize Addr
	NMPMemSize  Addr

	HostVaults int // main-memory vaults (8)
	NMPVaults  int // NMP partitions, one NMP core each (8)

	Vault VaultConfig

	// HostDRAMExtra is the off-chip round trip a host LLC miss pays on
	// top of vault service time (serial link + memory-controller
	// queuing). NMP cores sit beside their vault and pay none of it —
	// this asymmetry is the architectural premise of the paper.
	HostDRAMExtra uint64

	// MMIOWriteLatency / MMIOReadLatency cost one uncached host access to
	// an NMP scratchpad publication slot (posted write / round-trip
	// read). The paper's Table 2 measures the delays these induce.
	MMIOWriteLatency uint64
	MMIOReadLatency  uint64
	// MMIOWordExtra is the per-additional-word serialization cost of a
	// write-combined burst to consecutive scratchpad words.
	MMIOWordExtra uint64

	// ScratchSize is per-NMP-core scratchpad capacity (Table 1: 40 KiB,
	// of which 8 KiB is host-mapped for publication lists).
	ScratchSize Addr

	// AtomicExtra is the additional cost of a read-modify-write (CAS,
	// atomic add) beyond a store hit.
	AtomicExtra uint64
	// InvalidateLatency is the stall a store pays to invalidate remote L1
	// copies of its block.
	InvalidateLatency uint64

	// NMPBufLatency is an NMP-core access that hits the node-size buffer
	// register; NMPScratchLatency is an NMP-core access to its own
	// scratchpad. Both model small local SRAM.
	NMPBufLatency     uint64
	NMPScratchLatency uint64

	// TLB models host-side address translation (the evaluation platform
	// is a full-system simulation: host cores translate every access,
	// while NMP cores access their partitions physically, §2). Misses
	// pay WalkExtra cycles plus two page-table reads that traverse the
	// cache hierarchy like ordinary data. Entries = 0 disables the TLB
	// (perfect translation).
	TLB TLBConfig
}

// TLBConfig describes a per-core host TLB.
type TLBConfig struct {
	Entries   int
	Ways      int
	PageBits  uint
	WalkExtra uint64
}

// DefaultConfig returns the Table 1 machine.
func DefaultConfig() Config {
	return Config{
		HostCores:         8,
		L1:                CacheConfig{Size: 64 << 10, Ways: 2, BlockSize: 128, Latency: 2},
		L2:                CacheConfig{Size: 1 << 20, Ways: 8, BlockSize: 128, Latency: 20},
		HostMemSize:       1 << 30,
		NMPMemSize:        1 << 30,
		HostVaults:        8,
		NMPVaults:         8,
		Vault:             VaultConfig{Banks: 8, RowShift: 13, Timing: Table1Timing()},
		HostDRAMExtra:     80,
		MMIOWriteLatency:  60,
		MMIOReadLatency:   120,
		MMIOWordExtra:     4,
		ScratchSize:       40 << 10,
		AtomicExtra:       8,
		InvalidateLatency: 12,
		NMPBufLatency:     1,
		NMPScratchLatency: 2,
		// Cortex-A15-class translation: 512-entry unified L2 TLB,
		// 4 KiB pages, two-level page-table walk.
		TLB: TLBConfig{Entries: 512, Ways: 4, PageBits: 12, WalkExtra: 8},
	}
}

// Registered metric names for every memory-system event counter. The
// backing counts live in the machine's unified metrics.Registry; Stats is
// the struct view assembled from them.
const (
	MetricL1Hits        = "mem/l1_hits"
	MetricL2Hits        = "mem/l2_hits"
	MetricHostDRAMReads = "mem/host_dram_reads"
	MetricDRAMWrites    = "mem/dram_writes"
	MetricNMPBufHits    = "mem/nmp_buf_hits"
	MetricNMPDRAMReads  = "mem/nmp_dram_reads"
	MetricMMIOReads     = "mem/mmio_reads"
	MetricMMIOWrites    = "mem/mmio_writes"
	MetricInvalidations = "mem/invalidations"
	MetricAtomics       = "mem/atomics"
	MetricScratchOps    = "mem/scratch_ops"
	MetricTLBMisses     = "mem/tlb_misses"
)

// Stats counts memory-system events. DRAM read counts are the quantity the
// paper reports in Figures 5b, 6b and 9.
type Stats struct {
	L1Hits        uint64
	L2Hits        uint64
	HostDRAMReads uint64
	DRAMWrites    uint64
	NMPBufHits    uint64
	NMPDRAMReads  uint64
	MMIOReads     uint64
	MMIOWrites    uint64
	Invalidations uint64
	Atomics       uint64
	ScratchOps    uint64
	TLBMisses     uint64
}

// DRAMReads returns total DRAM block reads across host and NMP paths.
func (s Stats) DRAMReads() uint64 { return s.HostDRAMReads + s.NMPDRAMReads }

// Sub returns s - t field-wise, for measuring a phase between snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		L1Hits:        s.L1Hits - t.L1Hits,
		L2Hits:        s.L2Hits - t.L2Hits,
		HostDRAMReads: s.HostDRAMReads - t.HostDRAMReads,
		DRAMWrites:    s.DRAMWrites - t.DRAMWrites,
		NMPBufHits:    s.NMPBufHits - t.NMPBufHits,
		NMPDRAMReads:  s.NMPDRAMReads - t.NMPDRAMReads,
		MMIOReads:     s.MMIOReads - t.MMIOReads,
		MMIOWrites:    s.MMIOWrites - t.MMIOWrites,
		Invalidations: s.Invalidations - t.Invalidations,
		Atomics:       s.Atomics - t.Atomics,
		ScratchOps:    s.ScratchOps - t.ScratchOps,
		TLBMisses:     s.TLBMisses - t.TLBMisses,
	}
}

// StatsFrom assembles the Stats view from a registry snapshot (or a
// snapshot delta).
func StatsFrom(s metrics.Snapshot) Stats {
	return Stats{
		L1Hits:        s.Get(MetricL1Hits),
		L2Hits:        s.Get(MetricL2Hits),
		HostDRAMReads: s.Get(MetricHostDRAMReads),
		DRAMWrites:    s.Get(MetricDRAMWrites),
		NMPBufHits:    s.Get(MetricNMPBufHits),
		NMPDRAMReads:  s.Get(MetricNMPDRAMReads),
		MMIOReads:     s.Get(MetricMMIOReads),
		MMIOWrites:    s.Get(MetricMMIOWrites),
		Invalidations: s.Get(MetricInvalidations),
		Atomics:       s.Get(MetricAtomics),
		ScratchOps:    s.Get(MetricScratchOps),
		TLBMisses:     s.Get(MetricTLBMisses),
	}
}

// statCounters holds the registry counter handles on the access hot path.
type statCounters struct {
	l1Hits        *metrics.Counter
	l2Hits        *metrics.Counter
	hostDRAMReads *metrics.Counter
	dramWrites    *metrics.Counter
	nmpBufHits    *metrics.Counter
	nmpDRAMReads  *metrics.Counter
	mmioReads     *metrics.Counter
	mmioWrites    *metrics.Counter
	invalidations *metrics.Counter
	atomics       *metrics.Counter
	scratchOps    *metrics.Counter
	tlbMisses     *metrics.Counter
}

func newStatCounters(reg *metrics.Registry) statCounters {
	return statCounters{
		l1Hits:        reg.Counter(MetricL1Hits),
		l2Hits:        reg.Counter(MetricL2Hits),
		hostDRAMReads: reg.Counter(MetricHostDRAMReads),
		dramWrites:    reg.Counter(MetricDRAMWrites),
		nmpBufHits:    reg.Counter(MetricNMPBufHits),
		nmpDRAMReads:  reg.Counter(MetricNMPDRAMReads),
		mmioReads:     reg.Counter(MetricMMIOReads),
		mmioWrites:    reg.Counter(MetricMMIOWrites),
		invalidations: reg.Counter(MetricInvalidations),
		atomics:       reg.Counter(MetricAtomics),
		scratchOps:    reg.Counter(MetricScratchOps),
		tlbMisses:     reg.Counter(MetricTLBMisses),
	}
}

// nmpBuf is the node-size (one cache block) buffer register each NMP core
// holds, per the baseline architecture of §2 and prior work [16].
type nmpBuf struct {
	block uint32
	valid bool
}

// MemSys is the assembled memory system: functional RAM plus the timing
// models, address map, and region allocators.
type MemSys struct {
	Cfg Config
	RAM *RAM

	l1         []*Cache
	l2         *Cache
	dir        directory
	hostVaults []*Vault
	nmpVaults  []*Vault
	nmpBufs    []nmpBuf

	tlbs     []*Cache // per host core, tags are virtual page numbers
	ptL1Base Addr     // first-level page table (one 4 B entry per 4 MiB)
	ptL2Base Addr     // second-level page table (one 4 B entry per page)

	blockShift uint

	// HostAlloc allocates host main-memory; NMPAlloc[p] allocates within
	// NMP partition p.
	HostAlloc *Allocator
	NMPAlloc  []*Allocator

	scratchBase Addr

	// Metrics is the registry holding every memory-system event counter
	// (and, machine-wide, every other subsystem's instruments).
	Metrics *metrics.Registry
	st      statCounters

	// Optional observability state: tr records memory events onto one
	// trace track per host core and per NMP core (SetTracer); attrs holds
	// one latency-attribution accumulator per host core (EnableAttr). obs
	// caches "either is enabled" so the access hot path pays a single
	// predictable branch when both are off.
	tr        *trace.Tracer
	hostTrack []int
	nmpTrack  []int
	attrs     []*trace.CoreAttr
	obs       bool
}

// New assembles a memory system from cfg with a private metrics registry.
func New(cfg Config) *MemSys {
	return NewWithMetrics(cfg, metrics.NewRegistry())
}

// NewWithMetrics assembles a memory system from cfg, registering its event
// counters in reg.
func NewWithMetrics(cfg Config, reg *metrics.Registry) *MemSys {
	if cfg.HostCores <= 0 || cfg.HostVaults <= 0 || cfg.NMPVaults <= 0 {
		panic("memsys: config must have positive core and vault counts")
	}
	if cfg.L1.BlockSize != cfg.L2.BlockSize {
		panic("memsys: L1 and L2 block sizes must match")
	}
	bs := cfg.L1.BlockSize
	shift := uint(0)
	for Addr(1)<<shift != bs {
		shift++
	}
	total := cfg.HostMemSize + cfg.NMPMemSize + Addr(cfg.NMPVaults)*cfg.ScratchSize
	m := &MemSys{
		Cfg:         cfg,
		RAM:         NewRAM(total),
		l2:          NewCache("L2", cfg.L2),
		dir:         newDirectory(uint32(cfg.HostMemSize >> shift)),
		blockShift:  shift,
		scratchBase: cfg.HostMemSize + cfg.NMPMemSize,
		Metrics:     reg,
		st:          newStatCounters(reg),
	}
	for i := 0; i < cfg.HostCores; i++ {
		m.l1 = append(m.l1, NewCache(fmt.Sprintf("L1.%d", i), cfg.L1))
	}
	for i := 0; i < cfg.HostVaults; i++ {
		m.hostVaults = append(m.hostVaults, NewVault(cfg.Vault))
	}
	partSize := cfg.NMPMemSize / Addr(cfg.NMPVaults)
	for i := 0; i < cfg.NMPVaults; i++ {
		m.nmpVaults = append(m.nmpVaults, NewVault(cfg.Vault))
		base := cfg.HostMemSize + Addr(i)*partSize
		m.NMPAlloc = append(m.NMPAlloc, NewAllocator(fmt.Sprintf("nmp%d", i), base, partSize))
	}
	m.nmpBufs = make([]nmpBuf, cfg.NMPVaults)
	m.HostAlloc = NewAllocator("host", 0, cfg.HostMemSize)
	// Address 0 doubles as the nil simulated pointer; burn the first
	// block so no allocation ever returns it.
	m.HostAlloc.Alloc(bs, bs)
	if cfg.TLB.Entries > 0 {
		pageSize := Addr(1) << cfg.TLB.PageBits
		for i := 0; i < cfg.HostCores; i++ {
			m.tlbs = append(m.tlbs, NewCache(fmt.Sprintf("TLB.%d", i), CacheConfig{
				Size: Addr(cfg.TLB.Entries) * pageSize, Ways: cfg.TLB.Ways, BlockSize: pageSize,
			}))
		}
		// Reserve the page tables in host memory so walks occupy the
		// caches like real PTE traffic.
		pages := cfg.HostMemSize >> cfg.TLB.PageBits
		m.ptL2Base = m.HostAlloc.Alloc(pages*4, bs)
		m.ptL1Base = m.HostAlloc.Alloc((pages>>10+1)*4, bs)
	}
	return m
}

// Stats returns the current memory-system event counts as a struct view
// over the registry counters.
func (m *MemSys) Stats() Stats {
	return Stats{
		L1Hits:        m.st.l1Hits.Value(),
		L2Hits:        m.st.l2Hits.Value(),
		HostDRAMReads: m.st.hostDRAMReads.Value(),
		DRAMWrites:    m.st.dramWrites.Value(),
		NMPBufHits:    m.st.nmpBufHits.Value(),
		NMPDRAMReads:  m.st.nmpDRAMReads.Value(),
		MMIOReads:     m.st.mmioReads.Value(),
		MMIOWrites:    m.st.mmioWrites.Value(),
		Invalidations: m.st.invalidations.Value(),
		Atomics:       m.st.atomics.Value(),
		ScratchOps:    m.st.scratchOps.Value(),
		TLBMisses:     m.st.tlbMisses.Value(),
	}
}

// SetTracer attaches t as the memory system's event tracer, registering one
// "host/<core>" track per host core and one "nmp/<p>" track per partition.
// Memory events (cache hits, DRAM reads, invalidations, TLB misses, MMIO)
// record onto these tracks; the machine and offload layers reuse them via
// HostTrack/NMPTrack so each core's timeline is a single thread in the
// Chrome export. Passing nil detaches the tracer.
func (m *MemSys) SetTracer(t *trace.Tracer) {
	m.tr = t
	m.hostTrack, m.nmpTrack = nil, nil
	if t != nil {
		for i := 0; i < m.Cfg.HostCores; i++ {
			m.hostTrack = append(m.hostTrack, t.NewTrack(fmt.Sprintf("host/%d", i)))
		}
		for p := 0; p < m.Cfg.NMPVaults; p++ {
			m.nmpTrack = append(m.nmpTrack, t.NewTrack(fmt.Sprintf("nmp/%d", p)))
		}
	}
	m.obs = m.tr != nil || m.attrs != nil
}

// Tracer returns the attached event tracer (nil when tracing is off).
func (m *MemSys) Tracer() *trace.Tracer { return m.tr }

// HostTrack returns host core i's trace track, or -1 when tracing is off.
func (m *MemSys) HostTrack(core int) int {
	if m.tr == nil {
		return -1
	}
	return m.hostTrack[core]
}

// NMPTrack returns NMP core p's trace track, or -1 when tracing is off.
func (m *MemSys) NMPTrack(p int) int {
	if m.tr == nil {
		return -1
	}
	return m.nmpTrack[p]
}

// EnableAttr switches on per-host-core latency attribution: every host
// access thereafter charges its cycles to the issuing core's
// trace.CoreAttr, split into attribution buckets. Attribution is pure
// bookkeeping — it never changes access latencies.
func (m *MemSys) EnableAttr() {
	m.attrs = make([]*trace.CoreAttr, m.Cfg.HostCores)
	for i := range m.attrs {
		m.attrs[i] = new(trace.CoreAttr)
	}
	m.obs = true
}

// Attr returns host core i's attribution accumulator, or nil when
// attribution is disabled (the nil accumulator absorbs charges safely).
func (m *MemSys) Attr(core int) *trace.CoreAttr {
	if m.attrs == nil {
		return nil
	}
	return m.attrs[core]
}

// BlockSize returns the cache block size in bytes.
func (m *MemSys) BlockSize() Addr { return m.Cfg.L1.BlockSize }

func (m *MemSys) block(a Addr) uint32 { return uint32(a) >> m.blockShift }

// Region classification.

// IsHostMem reports whether a lies in host-accessible main memory.
func (m *MemSys) IsHostMem(a Addr) bool { return a < m.Cfg.HostMemSize }

// IsNMPMem reports whether a lies in NMP-capable memory, returning the
// owning partition.
func (m *MemSys) IsNMPMem(a Addr) (part int, ok bool) {
	if a < m.Cfg.HostMemSize || a >= m.scratchBase {
		return 0, false
	}
	partSize := m.Cfg.NMPMemSize / Addr(m.Cfg.NMPVaults)
	return int((a - m.Cfg.HostMemSize) / partSize), true
}

// ScratchAddr returns the base address of NMP core p's scratchpad.
func (m *MemSys) ScratchAddr(p int) Addr {
	return m.scratchBase + Addr(p)*m.Cfg.ScratchSize
}

// IsScratch reports whether a lies in a scratchpad, returning the owner.
func (m *MemSys) IsScratch(a Addr) (part int, ok bool) {
	if a < m.scratchBase {
		return 0, false
	}
	p := int((a - m.scratchBase) / m.Cfg.ScratchSize)
	if p >= m.Cfg.NMPVaults {
		return 0, false
	}
	return p, true
}

// HostAccess charges a host-core load or store at address a issued at
// virtual time now, returning its latency in cycles. Scratchpad addresses
// take the uncached MMIO path; NMP-memory addresses panic — the
// architecture gives host cores no path to NMP partitions (§2), so an
// attempt is an algorithm bug worth failing loudly on.
func (m *MemSys) HostAccess(core int, a Addr, write bool, now uint64) uint64 {
	if _, ok := m.IsScratch(a); ok {
		var lat uint64
		var k trace.Kind
		if write {
			m.st.mmioWrites.Inc()
			lat, k = m.Cfg.MMIOWriteLatency, trace.KindMMIOWrite
		} else {
			m.st.mmioReads.Inc()
			lat, k = m.Cfg.MMIOReadLatency, trace.KindMMIORead
		}
		if m.obs {
			if m.tr != nil {
				m.tr.Span(m.hostTrack[core], k, now, lat, 0)
			}
			m.Attr(core).Add(trace.BucketOffloadWait, lat)
		}
		return lat
	}
	if part, ok := m.IsNMPMem(a); ok {
		panic(fmt.Sprintf("memsys: host core %d touched NMP partition %d address %#x", core, part, a))
	}
	return m.hostCached(core, a, write, false, now)
}

// MMIOBurst charges a write-combined host access to nwords consecutive
// scratchpad words, returning its latency. The first word pays the full
// MMIO latency; subsequent words pay only serialization.
func (m *MemSys) MMIOBurst(a Addr, nwords int, write bool) uint64 {
	if _, ok := m.IsScratch(a); !ok {
		panic(fmt.Sprintf("memsys: MMIO burst outside scratchpad at %#x", a))
	}
	if nwords <= 0 {
		panic("memsys: empty MMIO burst")
	}
	var lat uint64
	if write {
		m.st.mmioWrites.Inc()
		lat = m.Cfg.MMIOWriteLatency
	} else {
		m.st.mmioReads.Inc()
		lat = m.Cfg.MMIOReadLatency
	}
	return lat + uint64(nwords-1)*m.Cfg.MMIOWordExtra
}

// HostAtomic charges a host-core read-modify-write (CAS, fetch-add).
func (m *MemSys) HostAtomic(core int, a Addr, now uint64) uint64 {
	if !m.IsHostMem(a) {
		panic(fmt.Sprintf("memsys: host atomic outside host memory at %#x", a))
	}
	m.st.atomics.Inc()
	return m.hostCached(core, a, true, true, now)
}

// hostCached performs a translated host access: a TLB lookup, a page-table
// walk on a miss (two PTE reads through the cache hierarchy), then the data
// access itself.
func (m *MemSys) hostCached(core int, a Addr, write, atomic bool, now uint64) uint64 {
	var lat uint64
	if m.tlbs != nil {
		vpage := uint32(a) >> m.Cfg.TLB.PageBits
		tlb := m.tlbs[core]
		if !tlb.Lookup(vpage, false) {
			m.st.tlbMisses.Inc()
			lat += m.Cfg.TLB.WalkExtra
			if m.obs {
				if m.tr != nil {
					m.tr.Instant(m.hostTrack[core], trace.KindTLBMiss, now, uint32(vpage))
				}
				m.Attr(core).Add(trace.BucketHostCache, m.Cfg.TLB.WalkExtra)
			}
			l1e := m.ptL1Base + Addr(vpage>>10)*4
			l2e := m.ptL2Base + Addr(vpage)*4
			lat += m.cachedAccess(core, l1e, false, false, now+lat)
			lat += m.cachedAccess(core, l2e, false, false, now+lat)
			tlb.Fill(vpage, false)
		}
	}
	return lat + m.cachedAccess(core, a, write, atomic, now+lat)
}

func (m *MemSys) cachedAccess(core int, a Addr, write, atomic bool, now uint64) uint64 {
	blk := m.block(a)
	l1 := m.l1[core]
	lat := m.Cfg.L1.Latency
	if atomic {
		lat += m.Cfg.AtomicExtra
	}
	// Stores and atomics must own the block exclusively: invalidate any
	// remote L1 copies (directory protocol).
	var invLat uint64
	if write {
		if others := m.dir.others(blk, core); others != 0 {
			var nInv uint32
			for c := 0; c < m.Cfg.HostCores; c++ {
				if others&(1<<uint(c)) != 0 {
					m.l1[c].Invalidate(blk)
					m.dir.drop(blk, c)
					m.st.invalidations.Inc()
					nInv++
				}
			}
			lat += m.Cfg.InvalidateLatency
			invLat = m.Cfg.InvalidateLatency
			if m.tr != nil {
				m.tr.Instant(m.hostTrack[core], trace.KindInvalidate, now, nInv)
			}
		}
	}
	if l1.Lookup(blk, write) {
		m.st.l1Hits.Inc()
		if m.obs {
			m.finishHost(core, trace.KindL1Hit, 0, now, lat, invLat, 0)
		}
		return lat
	}
	// L1 miss: probe L2.
	lat += m.Cfg.L2.Latency
	kind, arg := trace.KindL2Hit, uint32(0)
	var dramLat uint64
	if !m.l2.Lookup(blk, false) {
		// L2 miss: fetch the block from its home vault over the
		// off-chip link.
		pre := lat
		done, outcome := m.hostVault(a).AccessEx(a, m.blockShift, now+lat+m.Cfg.HostDRAMExtra/2)
		lat = done - now + m.Cfg.HostDRAMExtra/2
		dramLat = lat - pre
		kind, arg = trace.KindDRAMRead, uint32(outcome)
		m.st.hostDRAMReads.Inc()
		if ev, dirty, ok := m.l2.Fill(blk, false); ok && dirty {
			// Dirty LLC victim writes back off the critical path;
			// it only occupies its bank.
			m.writebackToDRAM(ev, now+lat)
		}
	} else {
		m.st.l2Hits.Inc()
	}
	// Fill L1 (write-allocate).
	if ev, dirty, ok := l1.Fill(blk, write); ok {
		m.dir.drop(ev, core)
		if dirty {
			// Victim writes back into L2 without stalling the core.
			if !m.l2.Lookup(ev, true) {
				if ev2, d2, ok2 := m.l2.Fill(ev, true); ok2 && d2 {
					m.writebackToDRAM(ev2, now+lat)
				}
			}
		}
	}
	m.dir.add(blk, core)
	if m.obs {
		m.finishHost(core, kind, arg, now, lat, invLat, dramLat)
	}
	return lat
}

// finishHost records a completed host cached access as one span on core's
// trace track and charges its latency split to the core's attribution
// accumulator: the invalidation stall to coherence, the off-chip fetch to
// DRAM, and the on-chip remainder to host-cache. Callers gate on m.obs so
// the disabled case costs one branch.
func (m *MemSys) finishHost(core int, k trace.Kind, arg uint32, start, lat, invLat, dramLat uint64) {
	if m.tr != nil {
		m.tr.Span(m.hostTrack[core], k, start, lat, arg)
	}
	if at := m.Attr(core); at != nil {
		at.Add(trace.BucketCoherence, invLat)
		at.Add(trace.BucketDRAM, dramLat)
		at.Add(trace.BucketHostCache, lat-invLat-dramLat)
	}
}

func (m *MemSys) writebackToDRAM(block uint32, now uint64) {
	a := Addr(block) << m.blockShift
	if m.IsHostMem(a) {
		m.hostVault(a).Access(a, m.blockShift, now)
		m.st.dramWrites.Inc()
	}
}

func (m *MemSys) hostVault(a Addr) *Vault {
	return m.hostVaults[int(m.block(a))%m.Cfg.HostVaults]
}

// NMPAccess charges NMP core p's load or store at address a. NMP cores may
// touch only their own partition and their own scratchpad; anything else
// panics, enforcing the architecture's partition isolation.
func (m *MemSys) NMPAccess(p int, a Addr, write bool, now uint64) uint64 {
	if sp, ok := m.IsScratch(a); ok {
		if sp != p {
			panic(fmt.Sprintf("memsys: NMP core %d touched scratchpad %d", p, sp))
		}
		m.st.scratchOps.Inc()
		if m.tr != nil {
			m.tr.Span(m.nmpTrack[p], trace.KindScratchOp, now, m.Cfg.NMPScratchLatency, 0)
		}
		return m.Cfg.NMPScratchLatency
	}
	part, ok := m.IsNMPMem(a)
	if !ok || part != p {
		panic(fmt.Sprintf("memsys: NMP core %d touched address %#x outside its partition", p, a))
	}
	blk := m.block(a)
	buf := &m.nmpBufs[p]
	if write {
		// Write-through to the vault; refresh the buffer if it holds
		// this block so subsequent reads stay local.
		done, outcome := m.nmpVaults[p].AccessEx(a, m.blockShift, now)
		m.st.dramWrites.Inc()
		lat := done - now
		if buf.valid && buf.block == blk {
			lat = m.Cfg.NMPBufLatency
		}
		if m.tr != nil {
			m.tr.Span(m.nmpTrack[p], trace.KindDRAMWrite, now, lat, uint32(outcome))
		}
		return lat
	}
	if buf.valid && buf.block == blk {
		m.st.nmpBufHits.Inc()
		if m.tr != nil {
			m.tr.Span(m.nmpTrack[p], trace.KindNMPBufHit, now, m.Cfg.NMPBufLatency, 0)
		}
		return m.Cfg.NMPBufLatency
	}
	done, outcome := m.nmpVaults[p].AccessEx(a, m.blockShift, now)
	m.st.nmpDRAMReads.Inc()
	buf.block, buf.valid = blk, true
	if m.tr != nil {
		m.tr.Span(m.nmpTrack[p], trace.KindNMPDRAMRead, now, done-now, uint32(outcome))
	}
	return done - now
}

// FlushCaches empties all host caches, the directory, NMP buffers and DRAM
// bank state. Experiments call it between the load phase and the measured
// phase so construction traffic cannot leak into measurements.
func (m *MemSys) FlushCaches() {
	for _, c := range m.l1 {
		c.Flush()
	}
	m.l2.Flush()
	m.dir.reset()
	for i := range m.nmpBufs {
		m.nmpBufs[i] = nmpBuf{}
	}
	for _, v := range m.hostVaults {
		v.Drain()
	}
	for _, v := range m.nmpVaults {
		v.Drain()
	}
	for _, t := range m.tlbs {
		t.Flush()
	}
}

package cds

import (
	"math/rand"
	"sort"
	"testing"

	"hybrids/internal/metrics"
)

// TestBSkipListOracle drives a randomized op mix against a map-based model
// and validates the structure after every phase.
func TestBSkipListOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bs := NewBSkipList(0)
	model := map[uint64]uint64{}
	const keySpace = 4096
	for i := 0; i < 60000; i++ {
		key := uint64(rng.Intn(keySpace)) + 1
		value := rng.Uint64()
		switch rng.Intn(5) {
		case 0, 1:
			_, wantOK := model[key]
			if ok := bs.Put(key, value); ok == wantOK {
				t.Fatalf("Put(%d) ok=%v with model presence %v", key, ok, wantOK)
			}
			if !wantOK {
				model[key] = value
			}
		case 2:
			_, wantOK := model[key]
			if ok := bs.Update(key, value); ok != wantOK {
				t.Fatalf("Update(%d) ok=%v want %v", key, ok, wantOK)
			}
			if wantOK {
				model[key] = value
			}
		case 3:
			_, wantOK := model[key]
			if ok := bs.Delete(key); ok != wantOK {
				t.Fatalf("Delete(%d) ok=%v want %v", key, ok, wantOK)
			}
			delete(model, key)
		default:
			want, wantOK := model[key]
			got, ok := bs.Get(key)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", key, got, ok, want, wantOK)
			}
		}
	}
	if bs.Len() != len(model) {
		t.Fatalf("Len = %d want %d", bs.Len(), len(model))
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var got []uint64
	bs.Ascend(0, func(k, v uint64) bool {
		if v != model[k] {
			t.Fatalf("Ascend key %d value %d want %d", k, v, model[k])
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Ascend yielded %d keys want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("Ascend[%d] = %d want %d", i, got[i], keys[i])
		}
	}
}

// TestBSkipListGrowth checks that dense sequential loading grows multiple
// levels, keeps fat nodes and reports structural events when instrumented.
func TestBSkipListGrowth(t *testing.T) {
	reg := metrics.NewRegistry()
	bs := NewBSkipList(0)
	bs.Instrument(reg, "store")
	const n = 100000
	for i := 1; i <= n; i++ {
		if !bs.Put(uint64(i), uint64(i)*3) {
			t.Fatalf("Put(%d) rejected", i)
		}
	}
	if bs.Len() != n {
		t.Fatalf("Len = %d want %d", bs.Len(), n)
	}
	if bs.Height() < 4 {
		t.Fatalf("height %d after %d inserts, want >= 4", bs.Height(), n)
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Get("store/leaf_splits") == 0 || snap.Get("store/inner_splits") == 0 ||
		snap.Get("store/level_growths") == 0 {
		t.Fatalf("expected structural events, got %v", snap)
	}
	for i := 1; i <= n; i++ {
		if v, ok := bs.Get(uint64(i)); !ok || v != uint64(i)*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	// Partial range scan from the middle.
	want := uint64(n/2 + 1)
	bs.Ascend(want, func(k, v uint64) bool {
		if k != want {
			t.Fatalf("Ascend key %d want %d", k, want)
		}
		want++
		return want <= uint64(n/2+100)
	})
}

// TestBSkipListHeightCap verifies that a capped list stays correct when
// promotions above the cap are dropped.
func TestBSkipListHeightCap(t *testing.T) {
	bs := NewBSkipList(2)
	for i := 1; i <= 2000; i++ {
		bs.Put(uint64(i), uint64(i))
	}
	if bs.Height() > 2 {
		t.Fatalf("height %d exceeds cap 2", bs.Height())
	}
	if err := bs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2000; i++ {
		if v, ok := bs.Get(uint64(i)); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

// TestBSkipListGetAllocs pins the allocation-free Get path the hybrid
// runtime's pooled-Future discipline depends on.
func TestBSkipListGetAllocs(t *testing.T) {
	bs := NewBSkipList(0)
	for i := 1; i <= 10000; i++ {
		bs.Put(uint64(i)*7, uint64(i))
	}
	key := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		key += 7919
		bs.Get(key % 70000)
	})
	if allocs != 0 {
		t.Fatalf("Get allocates %v per op, want 0", allocs)
	}
}

package cds

import (
	"sync/atomic"
	"testing"

	"hybrids/internal/prng"
)

// Native micro-benchmarks for the non-simulated structures: these measure
// real hardware, complementing the simulated-machine experiments at the
// repository root.

func BenchmarkSkipListGet(b *testing.B) {
	s := NewSkipList(20)
	const n = 1 << 16
	for i := uint64(1); i <= n; i++ {
		s.Insert(i, i)
	}
	rng := prng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint64(rng.Intn(n)) + 1)
	}
}

func BenchmarkSkipListInsertDelete(b *testing.B) {
	s := NewSkipList(20)
	rng := prng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(1<<16)) + 1
		if !s.Insert(k, k) {
			s.Delete(k)
		}
	}
}

func BenchmarkSkipListGetParallel(b *testing.B) {
	s := NewSkipList(20)
	const n = 1 << 16
	for i := uint64(1); i <= n; i++ {
		s.Insert(i, i)
	}
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := prng.New(seed.Add(1))
		for pb.Next() {
			s.Get(uint64(rng.Intn(n)) + 1)
		}
	})
}

func BenchmarkSkipListMixedParallel(b *testing.B) {
	s := NewSkipList(20)
	const n = 1 << 16
	for i := uint64(1); i <= n; i++ {
		s.Insert(i, i)
	}
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := prng.New(seed.Add(1))
		for pb.Next() {
			k := uint64(rng.Intn(n)) + 1
			switch rng.Intn(10) {
			case 0:
				s.Insert(k, k)
			case 1:
				s.Delete(k)
			default:
				s.Get(k)
			}
		}
	})
}

func BenchmarkBTreeGet(b *testing.B) {
	t := NewBTree()
	const n = 1 << 16
	for i := uint64(1); i <= n; i++ {
		t.Put(i, i)
	}
	rng := prng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Get(uint64(rng.Intn(n)) + 1)
	}
}

func BenchmarkBTreePut(b *testing.B) {
	t := NewBTree()
	rng := prng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Put(rng.Next()>>1+1, 1)
	}
}

package cds

import (
	"sync"
	"testing"
	"testing/quick"

	"hybrids/internal/prng"
)

func TestSkipListBasicOps(t *testing.T) {
	s := NewSkipList(16)
	if _, ok := s.Get(42); ok {
		t.Fatal("empty list returned a value")
	}
	if !s.Insert(42, 100) {
		t.Fatal("insert failed")
	}
	if s.Insert(42, 200) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := s.Get(42); !ok || v != 100 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if !s.Update(42, 300) {
		t.Fatal("update failed")
	}
	if v, _ := s.Get(42); v != 300 {
		t.Fatalf("after update = %d", v)
	}
	if s.Update(43, 1) {
		t.Fatal("update of absent key succeeded")
	}
	if !s.Delete(42) {
		t.Fatal("delete failed")
	}
	if s.Delete(42) {
		t.Fatal("second delete succeeded")
	}
	if _, ok := s.Get(42); ok {
		t.Fatal("deleted key readable")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSkipListSequentialOracle(t *testing.T) {
	s := NewSkipList(16)
	oracle := map[uint64]uint64{}
	rng := prng.New(7)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(2000)) + 1
		switch rng.Intn(4) {
		case 0:
			v, ok := s.Get(k)
			wv, wok := oracle[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,%v)", k, v, ok, wv, wok)
			}
		case 1:
			v := rng.Next()
			_, exists := oracle[k]
			if s.Insert(k, v) != !exists {
				t.Fatalf("Insert(%d) disagreed with oracle", k)
			}
			if !exists {
				oracle[k] = v
			}
		case 2:
			v := rng.Next()
			_, exists := oracle[k]
			if s.Update(k, v) != exists {
				t.Fatalf("Update(%d) disagreed with oracle", k)
			}
			if exists {
				oracle[k] = v
			}
		default:
			_, exists := oracle[k]
			if s.Delete(k) != exists {
				t.Fatalf("Delete(%d) disagreed with oracle", k)
			}
			delete(oracle, k)
		}
	}
	if s.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", s.Len(), len(oracle))
	}
}

func TestSkipListAscendSorted(t *testing.T) {
	s := NewSkipList(12)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		s.Insert(k, k*10)
	}
	var got []uint64
	s.Ascend(1, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Ascend = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v", got)
		}
	}
	// From a midpoint, and early stop.
	got = got[:0]
	s.Ascend(4, func(k, v uint64) bool {
		got = append(got, k)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("Ascend(4) = %v", got)
	}
}

func TestSkipListConcurrentDisjoint(t *testing.T) {
	s := NewSkipList(18)
	const threads = 8
	const perThread = 3000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(th*perThread) + 1
			for i := uint64(0); i < perThread; i++ {
				if !s.Insert(base+i, base+i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
			for i := uint64(0); i < perThread; i += 2 {
				if !s.Delete(base + i) {
					t.Errorf("delete %d failed", base+i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != threads*perThread/2 {
		t.Fatalf("Len = %d, want %d", s.Len(), threads*perThread/2)
	}
	for th := 0; th < threads; th++ {
		base := uint64(th*perThread) + 1
		for i := uint64(0); i < perThread; i++ {
			v, ok := s.Get(base + i)
			wantOK := i%2 == 1
			if ok != wantOK || (ok && v != base+i) {
				t.Fatalf("Get(%d) = (%d,%v)", base+i, v, ok)
			}
		}
	}
}

func TestSkipListConcurrentContention(t *testing.T) {
	// All goroutines fight over the same small key range; exactly one
	// Insert/Delete per key transition must win.
	s := NewSkipList(12)
	const threads = 8
	const keys = 32
	wins := make([]int64, threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := prng.New(uint64(th) + 1)
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(keys)) + 1
				if rng.Intn(2) == 0 {
					if s.Insert(k, uint64(th)) {
						wins[th]++
					}
				} else {
					if s.Delete(k) {
						wins[th]--
					}
				}
			}
		}()
	}
	wg.Wait()
	// Net successful inserts minus deletes must equal the live count.
	net := int64(0)
	for _, w := range wins {
		net += w
	}
	if net != int64(s.Len()) {
		t.Fatalf("net wins %d != Len %d", net, s.Len())
	}
	// And the live keys must be consistent under iteration.
	count := 0
	prev := uint64(0)
	s.Ascend(1, func(k, v uint64) bool {
		if k <= prev {
			t.Fatalf("iteration out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != s.Len() {
		t.Fatalf("iterated %d, Len %d", count, s.Len())
	}
}

func TestSkipListReservedKeysPanic(t *testing.T) {
	s := NewSkipList(8)
	for _, k := range []uint64{0, ^uint64(0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %d did not panic", k)
				}
			}()
			s.Insert(k, 1)
		}()
	}
}

func TestSkipListPropertyInsertDeleteRoundTrip(t *testing.T) {
	f := func(keys []uint64) bool {
		s := NewSkipList(14)
		inserted := map[uint64]bool{}
		for _, k := range keys {
			k = k%1000000 + 1
			s.Insert(k, k)
			inserted[k] = true
		}
		for k := range inserted {
			if v, ok := s.Get(k); !ok || v != k {
				return false
			}
		}
		for k := range inserted {
			if !s.Delete(k) {
				return false
			}
		}
		return s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

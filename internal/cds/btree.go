package cds

import (
	"fmt"

	"hybrids/internal/metrics"
)

// BTree is a single-threaded in-memory B+ tree with the paper's node
// geometry (up to 14 key-value pairs per leaf, 15 children per inner node,
// ~one cache block per node) and relaxed deletion (leaves may underflow;
// nodes are never merged). It is the partition-owned store used by the
// native hybrid runtime, where one combiner goroutine owns each partition,
// and is also usable standalone as an ordered map.
type BTree struct {
	root   *bNode
	height int
	length int

	// Structural-event counters, nil until Instrument.
	cLeafSplits  *metrics.Counter
	cInnerSplits *metrics.Counter
	cRootGrowths *metrics.Counter
}

// Instrument registers the tree's structural-event counters — leaf
// splits, inner-node splits and root growths — in reg under prefix (as
// "<prefix>/leaf_splits" etc.). Like the tree itself, the instruments are
// single-owner: only the goroutine mutating the tree may trigger them,
// and reading the registry is consistent at quiescence.
func (t *BTree) Instrument(reg *metrics.Registry, prefix string) {
	t.cLeafSplits = reg.Counter(prefix + "/leaf_splits")
	t.cInnerSplits = reg.Counter(prefix + "/inner_splits")
	t.cRootGrowths = reg.Counter(prefix + "/root_growths")
}

// inc bumps an instrumentation counter when Instrument has been called.
func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Node geometry mirroring the simulated trees.
const (
	btLeafMax  = 14
	btInnerMax = 15
)

type bNode struct {
	leaf bool
	n    int // leaf: key-value pairs; inner: children
	keys [btInnerMax - 1]uint64
	vals [btLeafMax]uint64
	kids [btInnerMax]*bNode
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &bNode{leaf: true}, height: 1}
}

// Len returns the number of stored pairs.
func (t *BTree) Len() int { return t.length }

// Height returns the number of levels.
func (t *BTree) Height() int { return t.height }

// childIdx returns the child covering key: child i covers keys <= keys[i].
func (n *bNode) childIdx(key uint64) int {
	i := 0
	for i < n.n-1 && key > n.keys[i] {
		i++
	}
	return i
}

// leafSlot returns key's slot in a leaf, or -1.
func (n *bNode) leafSlot(key uint64) int {
	for i := 0; i < n.n; i++ {
		if n.keys[i] == key {
			return i
		}
		if n.keys[i] > key {
			return -1
		}
	}
	return -1
}

func (t *BTree) descend(key uint64) (leaf *bNode, path []*bNode, idxs []int) {
	curr := t.root
	for !curr.leaf {
		i := curr.childIdx(key)
		path = append(path, curr)
		idxs = append(idxs, i)
		curr = curr.kids[i]
	}
	return curr, path, idxs
}

// find descends to the leaf covering key without recording the path, so
// read-only operations allocate nothing.
func (t *BTree) find(key uint64) *bNode {
	curr := t.root
	for !curr.leaf {
		curr = curr.kids[curr.childIdx(key)]
	}
	return curr
}

// Get returns the value stored under key.
func (t *BTree) Get(key uint64) (uint64, bool) {
	leaf := t.find(key)
	if i := leaf.leafSlot(key); i >= 0 {
		return leaf.vals[i], true
	}
	return 0, false
}

// Update overwrites the value of an existing key, returning false if
// absent.
func (t *BTree) Update(key, value uint64) bool {
	leaf := t.find(key)
	if i := leaf.leafSlot(key); i >= 0 {
		leaf.vals[i] = value
		return true
	}
	return false
}

// Put inserts key -> value, returning false (without modifying the tree)
// when the key already exists.
func (t *BTree) Put(key, value uint64) bool {
	leaf, path, idxs := t.descend(key)
	if leaf.leafSlot(key) >= 0 {
		return false
	}
	t.length++
	if leaf.n < btLeafMax {
		leaf.insertKV(key, value)
		return true
	}
	right, divider := leaf.splitLeafInsert(key, value)
	inc(t.cLeafSplits)
	t.insertUp(path, idxs, divider, right)
	return true
}

func (n *bNode) insertKV(key, value uint64) {
	pos := 0
	for pos < n.n && n.keys[pos] < key {
		pos++
	}
	copy(n.keys[pos+1:n.n+1], n.keys[pos:n.n])
	copy(n.vals[pos+1:n.n+1], n.vals[pos:n.n])
	n.keys[pos] = key
	n.vals[pos] = value
	n.n++
}

func (n *bNode) splitLeafInsert(key, value uint64) (right *bNode, divider uint64) {
	var keys [btLeafMax + 1]uint64
	var vals [btLeafMax + 1]uint64
	pos := 0
	for pos < n.n && n.keys[pos] < key {
		pos++
	}
	copy(keys[:pos], n.keys[:pos])
	copy(vals[:pos], n.vals[:pos])
	keys[pos], vals[pos] = key, value
	copy(keys[pos+1:], n.keys[pos:n.n])
	copy(vals[pos+1:], n.vals[pos:n.n])
	total := n.n + 1
	leftN := (total + 1) / 2
	right = &bNode{leaf: true, n: total - leftN}
	copy(right.keys[:right.n], keys[leftN:total])
	copy(right.vals[:right.n], vals[leftN:total])
	n.n = leftN
	copy(n.keys[:leftN], keys[:leftN])
	copy(n.vals[:leftN], vals[:leftN])
	return right, keys[leftN-1]
}

// insertUp inserts (divider, right) into the parents recorded on path,
// splitting upward and growing the root as needed.
func (t *BTree) insertUp(path []*bNode, idxs []int, divider uint64, right *bNode) {
	for level := len(path) - 1; level >= 0; level-- {
		node, idx := path[level], idxs[level]
		if node.n < btInnerMax {
			copy(node.keys[idx+1:node.n], node.keys[idx:node.n-1])
			copy(node.kids[idx+2:node.n+1], node.kids[idx+1:node.n])
			node.keys[idx] = divider
			node.kids[idx+1] = right
			node.n++
			return
		}
		divider, right = node.splitInnerInsert(idx, divider, right)
		inc(t.cInnerSplits)
	}
	newRoot := &bNode{n: 2}
	newRoot.kids[0] = t.root
	newRoot.kids[1] = right
	newRoot.keys[0] = divider
	t.root = newRoot
	t.height++
	inc(t.cRootGrowths)
}

func (n *bNode) splitInnerInsert(idx int, d uint64, child *bNode) (uint64, *bNode) {
	var keys [btInnerMax]uint64
	var kids [btInnerMax + 1]*bNode
	copy(keys[:idx], n.keys[:idx])
	keys[idx] = d
	copy(keys[idx+1:], n.keys[idx:n.n-1])
	copy(kids[:idx+1], n.kids[:idx+1])
	kids[idx+1] = child
	copy(kids[idx+2:], n.kids[idx+1:n.n])
	totalKids := n.n + 1
	leftN := (totalKids + 1) / 2
	divider := keys[leftN-1]
	right := &bNode{n: totalKids - leftN}
	copy(right.kids[:right.n], kids[leftN:totalKids])
	copy(right.keys[:right.n-1], keys[leftN:totalKids-1])
	n.n = leftN
	copy(n.kids[:leftN], kids[:leftN])
	copy(n.keys[:leftN-1], keys[:leftN-1])
	// Clear stale tails so dangling references do not pin memory.
	for i := leftN; i < btInnerMax; i++ {
		n.kids[i] = nil
	}
	return divider, right
}

// Delete removes key, returning false if absent. Leaves may underflow
// (relaxed invariant) and are never merged.
func (t *BTree) Delete(key uint64) bool {
	leaf, _, _ := t.descend(key)
	i := leaf.leafSlot(key)
	if i < 0 {
		return false
	}
	copy(leaf.keys[i:leaf.n-1], leaf.keys[i+1:leaf.n])
	copy(leaf.vals[i:leaf.n-1], leaf.vals[i+1:leaf.n])
	leaf.n--
	t.length--
	return true
}

// Ascend calls fn for each pair with key >= from in ascending order until
// fn returns false.
func (t *BTree) Ascend(from uint64, fn func(key, value uint64) bool) {
	t.ascend(t.root, from, fn)
}

func (t *BTree) ascend(n *bNode, from uint64, fn func(uint64, uint64) bool) bool {
	if n.leaf {
		for i := 0; i < n.n; i++ {
			if n.keys[i] >= from {
				if !fn(n.keys[i], n.vals[i]) {
					return false
				}
			}
		}
		return true
	}
	start := n.childIdx(from)
	for i := start; i < n.n; i++ {
		if !t.ascend(n.kids[i], from, fn) {
			return false
		}
	}
	return true
}

// CheckInvariants validates structural invariants (for tests): sorted keys,
// bounded occupancy, consistent depth, and divider bounds.
func (t *BTree) CheckInvariants() error {
	count := 0
	err := t.check(t.root, t.height-1, 0, ^uint64(0), &count)
	if err != nil {
		return err
	}
	if count != t.length {
		return errf("length %d but %d pairs found", t.length, count)
	}
	return nil
}

func (t *BTree) check(n *bNode, depth int, lo, hi uint64, count *int) error {
	if n.leaf {
		if depth != 0 {
			return errf("leaf at depth %d", depth)
		}
		if n.n > btLeafMax {
			return errf("leaf overfull")
		}
		prev := lo
		for i := 0; i < n.n; i++ {
			k := n.keys[i]
			if k <= prev {
				return errf("leaf keys not increasing: %d after %d", k, prev)
			}
			if k <= lo || k > hi {
				return errf("leaf key %d outside (%d,%d]", k, lo, hi)
			}
			prev = k
			*count++
		}
		return nil
	}
	if n.n < 1 || n.n > btInnerMax {
		return errf("inner node with %d children", n.n)
	}
	childLo := lo
	for i := 0; i < n.n; i++ {
		childHi := hi
		if i < n.n-1 {
			childHi = n.keys[i]
		}
		if err := t.check(n.kids[i], depth-1, childLo, childHi, count); err != nil {
			return err
		}
		childLo = childHi
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("cds: "+format, args...)
}

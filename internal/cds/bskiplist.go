package cds

import "hybrids/internal/metrics"

// B-skiplist geometry: fat nodes holding up to 14 entries, so a node's key
// block (14 x 8B) fills one 112B span of a cache line pair — searching
// within a node is a sequential scan over contiguous keys instead of the
// classic skiplist's per-key pointer chase.
const (
	bsMax       = 14
	bsMaxLevels = 16
)

// bsNode is one fat node. lo is the node's immutable lower bound: every
// key stored in (or below) the node is >= lo, and < next.lo when next is
// non-nil. Leaves carry key-value pairs; inner nodes carry (key, down)
// routing entries where keys[i] == down[i].lo.
type bsNode struct {
	lo   uint64
	n    int
	next *bsNode
	keys [bsMax]uint64
	vals [bsMax]uint64
	down [bsMax]*bsNode
}

// BSkipList is a single-threaded cache-conscious B-skiplist: a skiplist
// whose every level is a linked list of fat multi-key nodes (the
// locality-optimized layout of the B-skiplist paper), with deterministic
// promote-on-split instead of coin flips — splitting a level-l node always
// inserts a routing entry for the new node at level l+1, growing a new top
// level when the current top first splits. Deletion is relaxed in the same
// way as BTree: nodes may underflow (even to empty) and are never merged
// or unlinked, so lower-bound dividers stay immutable. It implements the
// same ordered-map surface as BTree and is the third partition-owned store
// of the native hybrid runtime.
type BSkipList struct {
	heads  [bsMaxLevels]*bsNode
	top    int // index of the highest active level
	cap    int // maximum level count; promotions above it are dropped
	length int

	// Structural-event counters, nil until Instrument.
	cLeafSplits   *metrics.Counter
	cInnerSplits  *metrics.Counter
	cLevelGrowths *metrics.Counter
}

// NewBSkipList returns an empty list. levels caps the height (values
// outside [1, 16] select the maximum); with ~7-14 entries per node the cap
// is only reached at astronomical sizes, where promotions are dropped and
// top-level searches degrade to longer forward walks, never to incorrect
// results.
func NewBSkipList(levels int) *BSkipList {
	if levels < 1 || levels > bsMaxLevels {
		levels = bsMaxLevels
	}
	t := &BSkipList{cap: levels}
	t.heads[0] = &bsNode{}
	return t
}

// Instrument registers the list's structural-event counters — leaf splits,
// inner-node splits and level growths — in reg under prefix (as
// "<prefix>/leaf_splits" etc.). Like the list itself, the instruments are
// single-owner: only the goroutine mutating the list may trigger them.
func (t *BSkipList) Instrument(reg *metrics.Registry, prefix string) {
	t.cLeafSplits = reg.Counter(prefix + "/leaf_splits")
	t.cInnerSplits = reg.Counter(prefix + "/inner_splits")
	t.cLevelGrowths = reg.Counter(prefix + "/level_growths")
}

// Len returns the number of stored pairs.
func (t *BSkipList) Len() int { return t.length }

// Height returns the number of active levels.
func (t *BSkipList) Height() int { return t.top + 1 }

// entryIdx returns the greatest i with keys[i] <= key. Valid on inner
// nodes reached by a descent: the head's sentinel entry (key 0) or the
// node's own lower bound guarantees i >= 0.
func (n *bsNode) entryIdx(key uint64) int {
	i := 0
	for i < n.n-1 && n.keys[i+1] <= key {
		i++
	}
	return i
}

// leafSlot returns key's slot in a leaf, or -1.
func (n *bsNode) leafSlot(key uint64) int {
	for i := 0; i < n.n; i++ {
		if n.keys[i] == key {
			return i
		}
		if n.keys[i] > key {
			return -1
		}
	}
	return -1
}

// search descends to the leaf whose range covers key. It allocates
// nothing, which is what keeps the hybrid runtime's Get path at the
// pooled-Future allocation budget.
func (t *BSkipList) search(key uint64) *bsNode {
	curr := t.heads[t.top]
	for l := t.top; l > 0; l-- {
		for curr.next != nil && curr.next.lo <= key {
			curr = curr.next
		}
		curr = curr.down[curr.entryIdx(key)]
	}
	for curr.next != nil && curr.next.lo <= key {
		curr = curr.next
	}
	return curr
}

// descend is search with the per-level position recorded for promotions:
// path[l] is the level-l node whose range covers key.
func (t *BSkipList) descend(key uint64, path *[bsMaxLevels]*bsNode) *bsNode {
	curr := t.heads[t.top]
	for l := t.top; l > 0; l-- {
		for curr.next != nil && curr.next.lo <= key {
			curr = curr.next
		}
		path[l] = curr
		curr = curr.down[curr.entryIdx(key)]
	}
	for curr.next != nil && curr.next.lo <= key {
		curr = curr.next
	}
	path[0] = curr
	return curr
}

// Get returns the value stored under key.
func (t *BSkipList) Get(key uint64) (uint64, bool) {
	leaf := t.search(key)
	if i := leaf.leafSlot(key); i >= 0 {
		return leaf.vals[i], true
	}
	return 0, false
}

// Update overwrites the value of an existing key, returning false if
// absent.
func (t *BSkipList) Update(key, value uint64) bool {
	leaf := t.search(key)
	if i := leaf.leafSlot(key); i >= 0 {
		leaf.vals[i] = value
		return true
	}
	return false
}

// Put inserts key -> value, returning false (without modifying the list)
// when the key already exists.
func (t *BSkipList) Put(key, value uint64) bool {
	var path [bsMaxLevels]*bsNode
	leaf := t.descend(key, &path)
	if leaf.leafSlot(key) >= 0 {
		return false
	}
	t.length++
	if leaf.n < bsMax {
		leaf.insertKV(key, value)
		return true
	}
	right := leaf.splitLeafInsert(key, value)
	inc(t.cLeafSplits)
	t.promote(&path, right)
	return true
}

func (n *bsNode) insertKV(key, value uint64) {
	pos := 0
	for pos < n.n && n.keys[pos] < key {
		pos++
	}
	copy(n.keys[pos+1:n.n+1], n.keys[pos:n.n])
	copy(n.vals[pos+1:n.n+1], n.vals[pos:n.n])
	n.keys[pos] = key
	n.vals[pos] = value
	n.n++
}

// splitLeafInsert splits a full leaf around the insertion of (key, value),
// links the new right sibling into the level-0 chain and returns it. The
// right node's lo is its first key, the divider promoted upward.
func (n *bsNode) splitLeafInsert(key, value uint64) *bsNode {
	var keys [bsMax + 1]uint64
	var vals [bsMax + 1]uint64
	pos := 0
	for pos < n.n && n.keys[pos] < key {
		pos++
	}
	copy(keys[:pos], n.keys[:pos])
	copy(vals[:pos], n.vals[:pos])
	keys[pos], vals[pos] = key, value
	copy(keys[pos+1:], n.keys[pos:n.n])
	copy(vals[pos+1:], n.vals[pos:n.n])
	total := n.n + 1
	leftN := (total + 1) / 2
	right := &bsNode{lo: keys[leftN], n: total - leftN, next: n.next}
	copy(right.keys[:right.n], keys[leftN:total])
	copy(right.vals[:right.n], vals[leftN:total])
	n.n = leftN
	copy(n.keys[:leftN], keys[:leftN])
	copy(n.vals[:leftN], vals[:leftN])
	n.next = right
	return right
}

// insertEntry adds the routing entry (child.lo, child) to an inner node
// with room. The child is already linked into its own level's chain.
func (n *bsNode) insertEntry(child *bsNode) {
	key := child.lo
	pos := 0
	for pos < n.n && n.keys[pos] < key {
		pos++
	}
	copy(n.keys[pos+1:n.n+1], n.keys[pos:n.n])
	copy(n.down[pos+1:n.n+1], n.down[pos:n.n])
	n.keys[pos] = key
	n.down[pos] = child
	n.n++
}

// splitInnerInsert splits a full inner node around the insertion of
// child's routing entry, links the right sibling into the level chain and
// returns it for promotion one level up.
func (n *bsNode) splitInnerInsert(child *bsNode) *bsNode {
	var keys [bsMax + 1]uint64
	var down [bsMax + 1]*bsNode
	key := child.lo
	pos := 0
	for pos < n.n && n.keys[pos] < key {
		pos++
	}
	copy(keys[:pos], n.keys[:pos])
	copy(down[:pos], n.down[:pos])
	keys[pos], down[pos] = key, child
	copy(keys[pos+1:], n.keys[pos:n.n])
	copy(down[pos+1:], n.down[pos:n.n])
	total := n.n + 1
	leftN := (total + 1) / 2
	right := &bsNode{lo: keys[leftN], n: total - leftN, next: n.next}
	copy(right.keys[:right.n], keys[leftN:total])
	copy(right.down[:right.n], down[leftN:total])
	n.n = leftN
	copy(n.keys[:leftN], keys[:leftN])
	copy(n.down[:leftN], down[:leftN])
	// Clear stale tails so dangling references do not pin memory.
	for i := leftN; i < bsMax; i++ {
		n.down[i] = nil
	}
	n.next = right
	return right
}

// promote inserts right's routing entry at level 1 and walks upward
// through the recorded descent path as inner nodes split, growing a new
// top level when the current top itself splits (unless the height cap is
// reached, in which case the shortcut is dropped — forward walks along the
// top chain still find every node).
func (t *BSkipList) promote(path *[bsMaxLevels]*bsNode, right *bsNode) {
	for l := 1; l <= t.top; l++ {
		node := path[l]
		if node.n < bsMax {
			node.insertEntry(right)
			return
		}
		right = node.splitInnerInsert(right)
		inc(t.cInnerSplits)
	}
	if t.top+1 >= t.cap {
		return
	}
	head := &bsNode{n: 2}
	head.keys[0], head.down[0] = 0, t.heads[t.top]
	head.keys[1], head.down[1] = right.lo, right
	t.top++
	t.heads[t.top] = head
	inc(t.cLevelGrowths)
}

// Delete removes key, returning false if absent. Leaves may underflow
// (relaxed invariant) and are never merged or unlinked, so routing entries
// and lower bounds stay valid without restructuring.
func (t *BSkipList) Delete(key uint64) bool {
	leaf := t.search(key)
	i := leaf.leafSlot(key)
	if i < 0 {
		return false
	}
	copy(leaf.keys[i:leaf.n-1], leaf.keys[i+1:leaf.n])
	copy(leaf.vals[i:leaf.n-1], leaf.vals[i+1:leaf.n])
	leaf.n--
	t.length--
	return true
}

// Ascend calls fn for each pair with key >= from in ascending order until
// fn returns false.
func (t *BSkipList) Ascend(from uint64, fn func(key, value uint64) bool) {
	for n := t.search(from); n != nil; n = n.next {
		for i := 0; i < n.n; i++ {
			if n.keys[i] >= from {
				if !fn(n.keys[i], n.vals[i]) {
					return
				}
			}
		}
	}
}

// CheckInvariants validates structural invariants (for tests): per-level
// sorted fat nodes respecting their lower bounds, routing entries that
// point one level down at nodes whose lo matches the entry key, head
// sentinels chained by their first entry, and a level-0 pair count
// matching Len.
func (t *BSkipList) CheckInvariants() error {
	if t.top >= t.cap || t.heads[0] == nil {
		return errf("bskiplist: %d levels exceed cap %d", t.top+1, t.cap)
	}
	// Collect per-level membership so entry targets can be checked.
	members := make([]map[*bsNode]bool, t.top+1)
	for l := 0; l <= t.top; l++ {
		members[l] = make(map[*bsNode]bool)
		if t.heads[l] == nil {
			return errf("bskiplist: nil head at level %d", l)
		}
		if t.heads[l].lo != 0 {
			return errf("bskiplist: head at level %d has lo %d", l, t.heads[l].lo)
		}
		prevLo := uint64(0)
		for n := t.heads[l]; n != nil; n = n.next {
			if n != t.heads[l] && n.lo <= prevLo {
				return errf("bskiplist: level %d lo %d after %d", l, n.lo, prevLo)
			}
			if n.n < 0 || n.n > bsMax {
				return errf("bskiplist: level %d node with %d entries", l, n.n)
			}
			if l > 0 && n.n < 1 {
				return errf("bskiplist: empty inner node at level %d", l)
			}
			members[l][n] = true
			prevLo = n.lo
		}
	}
	count := 0
	for l := 0; l <= t.top; l++ {
		var prev uint64
		first := true
		for n := t.heads[l]; n != nil; n = n.next {
			hi := ^uint64(0)
			if n.next != nil {
				hi = n.next.lo
			}
			for i := 0; i < n.n; i++ {
				k := n.keys[i]
				if !first && k <= prev {
					return errf("bskiplist: level %d key %d after %d", l, k, prev)
				}
				if k < n.lo || k >= hi {
					return errf("bskiplist: level %d key %d outside [%d,%d)", l, k, n.lo, hi)
				}
				if l > 0 {
					child := n.down[i]
					if child == nil || !members[l-1][child] {
						return errf("bskiplist: level %d entry %d points outside level %d", l, k, l-1)
					}
					if child.lo != k {
						return errf("bskiplist: level %d entry %d at child with lo %d", l, k, child.lo)
					}
				} else {
					count++
				}
				prev, first = k, false
			}
		}
		if l > 0 && (t.heads[l].keys[0] != 0 || t.heads[l].down[0] != t.heads[l-1]) {
			return errf("bskiplist: head at level %d does not anchor level %d", l, l-1)
		}
	}
	if count != t.length {
		return errf("bskiplist: length %d but %d pairs found", t.length, count)
	}
	return nil
}

package cds

import (
	"testing"
	"testing/quick"

	"hybrids/internal/prng"
)

func TestBTreeBasicOps(t *testing.T) {
	bt := NewBTree()
	if _, ok := bt.Get(5); ok {
		t.Fatal("empty tree returned a value")
	}
	if !bt.Put(5, 50) || bt.Put(5, 60) {
		t.Fatal("Put semantics wrong")
	}
	if v, ok := bt.Get(5); !ok || v != 50 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if !bt.Update(5, 70) || bt.Update(6, 1) {
		t.Fatal("Update semantics wrong")
	}
	if v, _ := bt.Get(5); v != 70 {
		t.Fatal("update not applied")
	}
	if !bt.Delete(5) || bt.Delete(5) {
		t.Fatal("Delete semantics wrong")
	}
	if bt.Len() != 0 {
		t.Fatalf("Len = %d", bt.Len())
	}
}

func TestBTreeSequentialOracle(t *testing.T) {
	bt := NewBTree()
	oracle := map[uint64]uint64{}
	rng := prng.New(11)
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(5000)) + 1
		switch rng.Intn(4) {
		case 0:
			v, ok := bt.Get(k)
			wv, wok := oracle[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, v, ok, wv, wok)
			}
		case 1:
			v := rng.Next()
			_, exists := oracle[k]
			if bt.Put(k, v) != !exists {
				t.Fatalf("step %d: Put(%d) disagreed", i, k)
			}
			if !exists {
				oracle[k] = v
			}
		case 2:
			v := rng.Next()
			_, exists := oracle[k]
			if bt.Update(k, v) != exists {
				t.Fatalf("step %d: Update(%d) disagreed", i, k)
			}
			if exists {
				oracle[k] = v
			}
		default:
			_, exists := oracle[k]
			if bt.Delete(k) != exists {
				t.Fatalf("step %d: Delete(%d) disagreed", i, k)
			}
			delete(oracle, k)
		}
		if i%5000 == 0 {
			if err := bt.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if bt.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", bt.Len(), len(oracle))
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeSequentialInsertGrowsHeight(t *testing.T) {
	bt := NewBTree()
	h0 := bt.Height()
	for i := uint64(1); i <= 5000; i++ {
		if !bt.Put(i, i) {
			t.Fatalf("Put(%d) failed", i)
		}
	}
	if bt.Height() <= h0 {
		t.Fatalf("height did not grow: %d", bt.Height())
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything readable in order.
	prev := uint64(0)
	count := 0
	bt.Ascend(1, func(k, v uint64) bool {
		if k != prev+1 || v != k {
			t.Fatalf("iteration wrong at %d", k)
		}
		prev = k
		count++
		return true
	})
	if count != 5000 {
		t.Fatalf("iterated %d", count)
	}
}

func TestBTreeDescendingAndRandomInserts(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"descending": func(i int) uint64 { return uint64(10000 - i) },
		"random":     func(i int) uint64 { return prng.Mix64(uint64(i))%1000000 + 1 },
	} {
		bt := NewBTree()
		seen := map[uint64]bool{}
		for i := 0; i < 8000; i++ {
			k := gen(i)
			if seen[k] {
				continue
			}
			seen[k] = true
			if !bt.Put(k, k^7) {
				t.Fatalf("%s: Put(%d) failed", name, k)
			}
		}
		if bt.Len() != len(seen) {
			t.Fatalf("%s: Len = %d want %d", name, bt.Len(), len(seen))
		}
		if err := bt.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for k := range seen {
			if v, ok := bt.Get(k); !ok || v != k^7 {
				t.Fatalf("%s: Get(%d) = (%d,%v)", name, k, v, ok)
			}
		}
	}
}

func TestBTreeAscendFromMidpoint(t *testing.T) {
	bt := NewBTree()
	for i := uint64(10); i <= 100; i += 10 {
		bt.Put(i, i)
	}
	var got []uint64
	bt.Ascend(35, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{40, 50, 60, 70, 80, 90, 100}
	if len(got) != len(want) {
		t.Fatalf("Ascend(35) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend(35) = %v", got)
		}
	}
}

func TestBTreeEmptyLeafTolerated(t *testing.T) {
	bt := NewBTree()
	for i := uint64(1); i <= 200; i++ {
		bt.Put(i, i)
	}
	// Empty out a whole leaf range, then keep operating.
	for i := uint64(1); i <= 50; i++ {
		bt.Delete(i)
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if _, ok := bt.Get(i); ok {
			t.Fatalf("deleted key %d readable", i)
		}
		if !bt.Put(i, i*2) {
			t.Fatalf("re-insert %d failed", i)
		}
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreePropertyMatchesMap(t *testing.T) {
	f := func(ops []struct {
		K uint16
		V uint32
		D bool
	}) bool {
		bt := NewBTree()
		oracle := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op.K) + 1
			if op.D {
				_, exists := oracle[k]
				if bt.Delete(k) != exists {
					return false
				}
				delete(oracle, k)
			} else {
				_, exists := oracle[k]
				if bt.Put(k, uint64(op.V)) != !exists {
					return false
				}
				if !exists {
					oracle[k] = uint64(op.V)
				}
			}
		}
		if bt.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if got, ok := bt.Get(k); !ok || got != v {
				return false
			}
		}
		return bt.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

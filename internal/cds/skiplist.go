// Package cds provides native (non-simulated) concurrent data structures
// used by the hybrid runtime in internal/core and usable standalone: a
// lock-free skiplist in the Herlihy-Lev-Shavit style and a single-threaded
// B+ tree suitable as a partition-owned store.
package cds

import (
	"sync/atomic"

	"hybrids/internal/metrics"
)

// MaxHeight bounds skiplist towers; 2^32 elements need no more.
const MaxHeight = 32

// succ pairs a successor pointer with the logical-deletion mark, so mark
// and pointer change together under a single CAS (the Go equivalent of a
// mark bit stolen from the pointer).
type succ struct {
	next   *slNode
	marked bool
}

type slNode struct {
	key    uint64
	value  atomic.Uint64
	height int
	next   []atomic.Pointer[succ]
}

func newSLNode(key, value uint64, height int) *slNode {
	n := &slNode{key: key, height: height, next: make([]atomic.Pointer[succ], height)}
	n.value.Store(value)
	return n
}

// SkipList is a lock-free concurrent ordered map from uint64 keys to
// uint64 values. All methods are safe for concurrent use. Deleted nodes
// are unlinked cooperatively and reclaimed by the garbage collector.
type SkipList struct {
	head   *slNode
	tail   *slNode
	levels int
	length atomic.Int64
	seed   atomic.Uint64

	// Structural-event counters, nil until Instrument.
	cRestarts *metrics.Counter
	cSnips    *metrics.Counter
}

// Instrument registers the list's structural-event counters — traversal
// restarts forced by contention and physical unlinks of deleted nodes —
// in reg under prefix (as "<prefix>/restarts" and "<prefix>/snips").
// Unlike the list itself the instruments are NOT synchronized: call
// Instrument only when a single goroutine owns the list, which is exactly
// the per-partition combiner discipline of the native hybrid runtime.
func (s *SkipList) Instrument(reg *metrics.Registry, prefix string) {
	s.cRestarts = reg.Counter(prefix + "/restarts")
	s.cSnips = reg.Counter(prefix + "/snips")
}

// NewSkipList creates an empty skiplist with the given level count
// (typically log2 of the expected size; values outside [1, MaxHeight] are
// clamped).
func NewSkipList(levels int) *SkipList {
	if levels < 1 {
		levels = 1
	}
	if levels > MaxHeight {
		levels = MaxHeight
	}
	s := &SkipList{levels: levels}
	s.tail = newSLNode(^uint64(0), 0, levels)
	s.head = newSLNode(0, 0, levels)
	for i := 0; i < levels; i++ {
		s.tail.next[i].Store(&succ{}) // terminal, never followed
		s.head.next[i].Store(&succ{next: s.tail})
	}
	s.seed.Store(0x9e3779b97f4a7c15)
	return s
}

// Len returns the number of live keys.
func (s *SkipList) Len() int { return int(s.length.Load()) }

func (s *SkipList) randomHeight() int {
	// A tiny lock-free xorshift; contention on the seed is harmless
	// (lost updates only skew the stream, not the distribution).
	x := s.seed.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.seed.Store(x)
	h := 1
	for h < s.levels && x&1 == 1 {
		h++
		x >>= 1
	}
	return h
}

// find locates key, filling preds/succs and snipping marked nodes.
func (s *SkipList) find(key uint64, preds, succs []*slNode) bool {
retry:
	for {
		pred := s.head
		for level := s.levels - 1; level >= 0; level-- {
			curr := pred.next[level].Load().next
			for {
				sc := curr.next[level].Load()
				for sc.marked {
					// curr is logically deleted: snip it out;
					// restart from the head on interference.
					if !s.snip(pred, curr, sc.next, level) {
						inc(s.cRestarts)
						continue retry
					}
					inc(s.cSnips)
					curr = pred.next[level].Load().next
					sc = curr.next[level].Load()
				}
				if curr.key < key {
					pred = curr
					curr = sc.next
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		return succs[0].key == key
	}
}

// snip CASes pred.next[level] from curr to next, provided pred's link is
// unmarked and still points at curr.
func (s *SkipList) snip(pred, curr, next *slNode, level int) bool {
	old := pred.next[level].Load()
	if old.marked || old.next != curr {
		return false
	}
	return pred.next[level].CompareAndSwap(old, &succ{next: next})
}

// Get returns the value stored under key.
func (s *SkipList) Get(key uint64) (uint64, bool) {
	pred := s.head
	var curr *slNode
	for level := s.levels - 1; level >= 0; level-- {
		curr = pred.next[level].Load().next
		for {
			sc := curr.next[level].Load()
			for sc.marked {
				curr = sc.next
				sc = curr.next[level].Load()
			}
			if curr.key < key {
				pred = curr
				curr = sc.next
			} else {
				break
			}
		}
	}
	if curr.key == key {
		return curr.value.Load(), true
	}
	return 0, false
}

// Insert adds key -> value; it returns false (without modifying the map)
// when the key is already present.
func (s *SkipList) Insert(key, value uint64) bool {
	if key == 0 || key == ^uint64(0) {
		panic("cds: keys 0 and MaxUint64 are reserved sentinels")
	}
	preds := make([]*slNode, s.levels)
	succs := make([]*slNode, s.levels)
	for {
		if s.find(key, preds, succs) {
			return false
		}
		h := s.randomHeight()
		node := newSLNode(key, value, h)
		for l := 0; l < h; l++ {
			node.next[l].Store(&succ{next: succs[l]})
		}
		// Bottom-level link is the linearization point.
		if !preds[0].next[0].CompareAndSwap(unmarkedTo(preds[0], 0, succs[0]), &succ{next: node}) {
			continue
		}
		s.length.Add(1)
		s.linkUpper(node, key, h, preds, succs)
		return true
	}
}

// unmarkedTo returns pred's current succ at level if it is the unmarked
// link to want, else a sentinel that can never match.
func unmarkedTo(pred *slNode, level int, want *slNode) *succ {
	sc := pred.next[level].Load()
	if !sc.marked && sc.next == want {
		return sc
	}
	return &succ{} // fresh pointer: CAS will fail
}

func (s *SkipList) linkUpper(node *slNode, key uint64, h int, preds, succs []*slNode) {
	for l := 1; l < h; l++ {
		for {
			raw := node.next[l].Load()
			if raw.marked {
				return // concurrently removed
			}
			if raw.next != succs[l] {
				if !node.next[l].CompareAndSwap(raw, &succ{next: succs[l]}) {
					continue
				}
			}
			if preds[l].next[l].CompareAndSwap(unmarkedTo(preds[l], l, succs[l]), &succ{next: node}) {
				break
			}
			if !s.find(key, preds, succs) {
				return
			}
			if succs[0] != node {
				return
			}
		}
	}
}

// Update stores value under an existing key, returning false if absent.
func (s *SkipList) Update(key, value uint64) bool {
	preds := make([]*slNode, s.levels)
	succs := make([]*slNode, s.levels)
	if !s.find(key, preds, succs) {
		return false
	}
	succs[0].value.Store(value)
	return true
}

// Delete removes key, returning false if absent or if a concurrent Delete
// won the removal.
func (s *SkipList) Delete(key uint64) bool {
	preds := make([]*slNode, s.levels)
	succs := make([]*slNode, s.levels)
	if !s.find(key, preds, succs) {
		return false
	}
	node := succs[0]
	// Mark upper levels top-down.
	for l := node.height - 1; l >= 1; l-- {
		sc := node.next[l].Load()
		for !sc.marked {
			node.next[l].CompareAndSwap(sc, &succ{next: sc.next, marked: true})
			sc = node.next[l].Load()
		}
	}
	// Bottom-level mark is the linearization point.
	for {
		sc := node.next[0].Load()
		if sc.marked {
			return false
		}
		if node.next[0].CompareAndSwap(sc, &succ{next: sc.next, marked: true}) {
			s.length.Add(-1)
			s.find(key, preds, succs) // physical cleanup
			return true
		}
	}
}

// Ascend calls fn for each live key >= from in ascending order until fn
// returns false. It is a weakly consistent snapshot-free iteration.
func (s *SkipList) Ascend(from uint64, fn func(key, value uint64) bool) {
	preds := make([]*slNode, s.levels)
	succs := make([]*slNode, s.levels)
	s.find(from, preds, succs)
	curr := succs[0]
	for curr != s.tail {
		sc := curr.next[0].Load()
		if !sc.marked {
			if !fn(curr.key, curr.value.Load()) {
				return
			}
		}
		curr = sc.next
	}
}

// CheckInvariants validates structural invariants (for tests) on a
// quiescent list: strictly increasing keys per level, upper-level
// membership restricted to nodes reachable at the bottom level, tower
// heights within each node's allocation, and an unmarked-node count
// matching Len. It must not race with mutators.
func (s *SkipList) CheckInvariants() error {
	live := 0
	bottom := make(map[*slNode]bool)
	prev := s.head.key
	for curr := s.head.next[0].Load().next; curr != s.tail; {
		sc := curr.next[0].Load()
		if curr.key <= prev {
			return errf("skiplist: level 0 key %d after %d", curr.key, prev)
		}
		if curr.height < 1 || curr.height > s.levels || len(curr.next) != curr.height {
			return errf("skiplist: node %d with height %d of %d levels", curr.key, curr.height, s.levels)
		}
		if !sc.marked {
			live++
		}
		bottom[curr] = true
		prev = curr.key
		curr = sc.next
	}
	if live != s.Len() {
		return errf("skiplist: length %d but %d unmarked nodes found", s.Len(), live)
	}
	for level := 1; level < s.levels; level++ {
		prev := s.head.key
		for curr := s.head.next[level].Load().next; curr != s.tail; {
			if !bottom[curr] {
				return errf("skiplist: level %d node %d not linked at level 0", level, curr.key)
			}
			if curr.height <= level {
				return errf("skiplist: node %d of height %d linked at level %d", curr.key, curr.height, level)
			}
			if curr.key <= prev {
				return errf("skiplist: level %d key %d after %d", level, curr.key, prev)
			}
			prev = curr.key
			curr = curr.next[level].Load().next
		}
	}
	return nil
}

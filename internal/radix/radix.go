// Package radix provides a least-significant-digit radix sort keyed by
// uint32, used by bulk loaders where sorting tens of millions of records
// with sort.Slice would dominate experiment setup time.
package radix

// SortFunc sorts s ascending by key in three 11-bit counting passes.
// It is stable and allocates one scratch slice of len(s).
func SortFunc[T any](s []T, key func(T) uint32) {
	if len(s) < 2 {
		return
	}
	buf := make([]T, len(s))
	const bits = 11
	const mask = 1<<bits - 1
	var counts [1 << bits]int
	src, dst := s, buf
	for pass := 0; pass < 3; pass++ {
		shift := uint(pass * bits)
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range src {
			counts[(key(v)>>shift)&mask]++
		}
		sum := 0
		for i := range counts {
			counts[i], sum = sum, sum+counts[i]
		}
		for _, v := range src {
			d := (key(v) >> shift) & mask
			dst[counts[d]] = v
			counts[d]++
		}
		src, dst = dst, src
	}
	// Three passes: result is back in the original slice (s -> buf ->
	// s -> buf ends in buf after pass 3... passes alternate, 3 passes
	// end in buf when starting from s).
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

package radix

import (
	"sort"
	"testing"
	"testing/quick"

	"hybrids/internal/prng"
)

type kv struct{ k, v uint32 }

func TestSortFuncMatchesSortSlice(t *testing.T) {
	rng := prng.New(1)
	s := make([]kv, 10000)
	for i := range s {
		s[i] = kv{k: rng.Uint32(), v: uint32(i)}
	}
	want := append([]kv(nil), s...)
	sort.Slice(want, func(i, j int) bool { return want[i].k < want[j].k })
	SortFunc(s, func(x kv) uint32 { return x.k })
	for i := range s {
		if s[i].k != want[i].k {
			t.Fatalf("order differs at %d: %d vs %d", i, s[i].k, want[i].k)
		}
	}
}

func TestSortFuncStable(t *testing.T) {
	s := []kv{{5, 0}, {3, 1}, {5, 2}, {3, 3}, {5, 4}}
	SortFunc(s, func(x kv) uint32 { return x.k })
	want := []kv{{3, 1}, {3, 3}, {5, 0}, {5, 2}, {5, 4}}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("not stable: %v", s)
		}
	}
}

func TestSortFuncProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		s := make([]kv, len(vals))
		for i, v := range vals {
			s[i] = kv{k: v}
		}
		SortFunc(s, func(x kv) uint32 { return x.k })
		for i := 1; i < len(s); i++ {
			if s[i-1].k > s[i].k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortFuncEmptyAndSingle(t *testing.T) {
	SortFunc([]kv{}, func(x kv) uint32 { return x.k })
	one := []kv{{7, 7}}
	SortFunc(one, func(x kv) uint32 { return x.k })
	if one[0].k != 7 {
		t.Fatal("single element corrupted")
	}
}

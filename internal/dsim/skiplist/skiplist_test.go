package skiplist

import (
	"fmt"
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/prng"
	"hybrids/internal/sim/machine"
)

const (
	testLevels    = 11
	testNMPLevels = 5
	testKeyMax    = 1 << 20
	testN         = 2000
)

func testMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 32 << 20
	cfg.Mem.NMPMemSize = 32 << 20
	cfg.Mem.L2.Size = 128 << 10
	cfg.Mem.L1.Size = 8 << 10
	return machine.New(cfg)
}

// initialPairs produces deterministic distinct keys spread over the key
// space.
func initialPairs(n int) []KV {
	rng := prng.New(12345)
	seen := map[uint32]bool{}
	var out []KV
	for len(out) < n {
		// Initial keys stay in the lower half so tests can mint fresh
		// insert keys from the upper half without collisions.
		k := rng.Uint32()%(testKeyMax/2-1) + 1
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, KV{Key: k, Value: k ^ 0x5a5a5a5a})
	}
	return out
}

// oracle mirrors Store semantics on a plain map.
type oracle map[uint32]uint32

func (o oracle) apply(op kv.Op) (uint32, bool) {
	switch op.Kind {
	case kv.Read:
		v, ok := o[op.Key]
		return v, ok
	case kv.Update:
		if _, ok := o[op.Key]; !ok {
			return 0, false
		}
		o[op.Key] = op.Value
		return 0, true
	case kv.Insert:
		if _, ok := o[op.Key]; ok {
			return 0, false
		}
		o[op.Key] = op.Value
		return 0, true
	case kv.Remove:
		if _, ok := o[op.Key]; !ok {
			return 0, false
		}
		delete(o, op.Key)
		return 0, true
	}
	panic("bad op")
}

func (o oracle) dump() []KV {
	var out []KV
	for k, v := range o {
		out = append(out, KV{k, v})
	}
	sortKVs(out)
	return out
}

func sortKVs(s []KV) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Key < s[j-1].Key; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func kvsEqual(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mixedOps generates a deterministic op stream over existing keys plus
// fresh inserts minted from the disjoint block [freshBase, freshBase+2^16)
// in the upper half of the key space, so streams built with distinct
// freshBase blocks never collide on fresh keys.
func mixedOps(seed uint64, n int, existing []KV, freshBase uint32) []kv.Op {
	rng := prng.New(seed)
	ops := make([]kv.Op, n)
	fresh := freshBase
	for i := range ops {
		r := rng.Intn(100)
		switch {
		case r < 50:
			ops[i] = kv.Op{Kind: kv.Read, Key: existing[rng.Intn(len(existing))].Key}
		case r < 60:
			ops[i] = kv.Op{Kind: kv.Update, Key: existing[rng.Intn(len(existing))].Key, Value: rng.Uint32()}
		case r < 80:
			// Mix of fresh inserts and re-inserts of existing keys.
			if rng.Intn(4) == 0 {
				ops[i] = kv.Op{Kind: kv.Insert, Key: existing[rng.Intn(len(existing))].Key, Value: rng.Uint32()}
			} else {
				fresh += uint32(rng.Intn(64) + 1)
				ops[i] = kv.Op{Kind: kv.Insert, Key: fresh, Value: rng.Uint32()}
			}
		default:
			ops[i] = kv.Op{Kind: kv.Remove, Key: existing[rng.Intn(len(existing))].Key}
		}
	}
	return ops
}

// freshBlock returns the fresh-key block base for stream index i.
func freshBlock(i int) uint32 { return testKeyMax/2 + uint32(i)<<16 }

type testStore interface {
	kv.Store
	Dump() []KV
	CheckInvariants() error
}

// buildStore constructs each named variant on a fresh machine.
func buildStore(t *testing.T, name string, m *machine.Machine, pairs []KV) testStore {
	t.Helper()
	switch name {
	case "lockfree":
		s := NewLockFree(m, testLevels, 7)
		s.Build(pairs, 99)
		return s
	case "nmpfc":
		s := NewNMPFC(m, NMPFCConfig{Levels: testLevels, KeyMax: testKeyMax, SlotsPerPartition: m.Cfg.Mem.HostCores, Seed: 7})
		s.Build(pairs, 99)
		s.Start()
		return s
	case "hybrid":
		s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 1, Seed: 7})
		s.Build(pairs, 99)
		s.Start()
		return s
	default:
		t.Fatalf("unknown store %q", name)
		return nil
	}
}

var variants = []string{"lockfree", "nmpfc", "hybrid"}

func TestBuildMatchesDump(t *testing.T) {
	pairs := initialPairs(testN)
	want := append([]KV(nil), pairs...)
	sortKVs(want)
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			m := testMachine()
			s := buildStore(t, name, m, pairs)
			if !kvsEqual(s.Dump(), want) {
				t.Fatalf("%s: dump does not match built pairs", name)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

func TestSingleThreadOracle(t *testing.T) {
	pairs := initialPairs(testN)
	ops := mixedOps(42, 1500, pairs, freshBlock(0))
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			m := testMachine()
			s := buildStore(t, name, m, pairs)
			o := oracle{}
			for _, p := range pairs {
				o[p.Key] = p.Value
			}
			var failures []string
			m.SpawnHost(0, "driver", func(c *machine.Ctx) {
				for i, op := range ops {
					gotV, gotOK := s.Apply(c, 0, op)
					wantV, wantOK := o.apply(op)
					if gotOK != wantOK || (op.Kind == kv.Read && gotOK && gotV != wantV) {
						failures = append(failures, fmt.Sprintf("op %d %s key=%d: got (%d,%v) want (%d,%v)",
							i, op.Kind, op.Key, gotV, gotOK, wantV, wantOK))
					}
				}
			})
			m.Run()
			if len(failures) > 0 {
				t.Fatalf("%s: %d mismatches, first: %s", name, len(failures), failures[0])
			}
			if !kvsEqual(s.Dump(), o.dump()) {
				t.Fatalf("%s: final contents diverge from oracle", name)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentDisjointRangesOracle(t *testing.T) {
	pairs := initialPairs(testN)
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			m := testMachine()
			s := buildStore(t, name, m, pairs)
			o := oracle{}
			for _, p := range pairs {
				o[p.Key] = p.Value
			}
			// Each thread works on keys congruent to its id mod 4 by
			// filtering the shared key list: op sets are disjoint, so
			// the final state equals the oracle's regardless of
			// interleaving.
			const threads = 4
			for th := 0; th < threads; th++ {
				th := th
				var mine []KV
				for i, p := range pairs {
					if i%threads == th {
						mine = append(mine, p)
					}
				}
				ops := mixedOps(uint64(100+th), 400, mine, freshBlock(th))
				m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
					for _, op := range ops {
						s.Apply(c, th, op)
					}
				})
				for _, op := range ops {
					o.apply(op)
				}
			}
			m.Run()
			if !kvsEqual(s.Dump(), o.dump()) {
				t.Fatalf("%s: disjoint-range concurrent run diverges from oracle", name)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentOverlappingKeysInvariants(t *testing.T) {
	// All threads hammer the same small key set with inserts and
	// removes: maximal contention on host CASes, NMP retries, and
	// begin-traversal invalidation. We check structural invariants,
	// determinism, and that results are sane (every read value was
	// written at some point for that key).
	pairs := initialPairs(64)
	written := map[uint32]map[uint32]bool{}
	for _, p := range pairs {
		written[p.Key] = map[uint32]bool{p.Value: true}
	}
	run := func(name string) ([]KV, []string) {
		m := testMachine()
		s := buildStore(t, name, m, pairs)
		var bad []string
		const threads = 8
		for th := 0; th < threads; th++ {
			th := th
			rng := prng.New(uint64(th) + 5)
			m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
				for i := 0; i < 300; i++ {
					key := pairs[rng.Intn(len(pairs))].Key
					val := uint32(th)<<16 | uint32(i)
					switch rng.Intn(4) {
					case 0:
						v, ok := s.Apply(c, th, kv.Op{Kind: kv.Read, Key: key})
						if ok && !written[key][v] {
							bad = append(bad, fmt.Sprintf("read key=%d returned never-written value %d", key, v))
						}
					case 1:
						s.Apply(c, th, kv.Op{Kind: kv.Insert, Key: key, Value: val})
					case 2:
						s.Apply(c, th, kv.Op{Kind: kv.Remove, Key: key})
					default:
						s.Apply(c, th, kv.Op{Kind: kv.Update, Key: key, Value: val})
					}
				}
			})
			// Pre-register every value this thread may write.
			rng2 := prng.New(uint64(th) + 5)
			for i := 0; i < 300; i++ {
				_ = pairs[rng2.Intn(len(pairs))].Key
				r := rng2.Intn(4)
				_ = r
			}
			for i := 0; i < 300; i++ {
				for _, p := range pairs {
					written[p.Key][uint32(th)<<16|uint32(i)] = true
				}
			}
		}
		m.Run()
		if err := s.CheckInvariants(); err != nil {
			bad = append(bad, err.Error())
		}
		return s.Dump(), bad
	}
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			d1, bad := run(name)
			if len(bad) > 0 {
				t.Fatalf("%s: %s (and %d more)", name, bad[0], len(bad)-1)
			}
			d2, _ := run(name)
			if !kvsEqual(d1, d2) {
				t.Fatalf("%s: runs not deterministic", name)
			}
			// Every surviving key must be one of the initial keys.
			valid := map[uint32]bool{}
			for _, p := range pairs {
				valid[p.Key] = true
			}
			for _, p := range d1 {
				if !valid[p.Key] {
					t.Fatalf("%s: phantom key %d in final state", name, p.Key)
				}
			}
		})
	}
}

func TestHybridAsyncBatchMatchesOracleOnDistinctKeys(t *testing.T) {
	pairs := initialPairs(testN)
	// Ops touch distinct keys so in-window reordering cannot change
	// outcomes: final state and success counts are exactly predictable.
	var ops []kv.Op
	o := oracle{}
	for _, p := range pairs {
		o[p.Key] = p.Value
	}
	rng := prng.New(9)
	taken := map[uint32]bool{}
	for _, p := range pairs {
		taken[p.Key] = true
	}
	freshKey := func() uint32 {
		for {
			k := rng.Uint32()%(testKeyMax-1) + 1
			if !taken[k] {
				taken[k] = true
				return k
			}
		}
	}
	for i, p := range pairs[:1200] {
		switch i % 4 {
		case 0:
			ops = append(ops, kv.Op{Kind: kv.Read, Key: p.Key})
		case 1:
			ops = append(ops, kv.Op{Kind: kv.Remove, Key: p.Key})
		case 2:
			ops = append(ops, kv.Op{Kind: kv.Update, Key: p.Key, Value: rng.Uint32()})
		default:
			ops = append(ops, kv.Op{Kind: kv.Insert, Key: freshKey(), Value: rng.Uint32()})
		}
	}
	wantSucceeded := 0
	for _, op := range ops {
		if _, ok := o.apply(op); ok {
			wantSucceeded++
		}
	}
	m := testMachine()
	s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 4, Seed: 7})
	s.Build(pairs, 99)
	s.Start()
	got := 0
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		got = s.ApplyBatch(c, 0, ops)
	})
	m.Run()
	if got != wantSucceeded {
		t.Fatalf("ApplyBatch succeeded=%d, want %d", got, wantSucceeded)
	}
	if !kvsEqual(s.Dump(), o.dump()) {
		t.Fatal("async batch final contents diverge from oracle")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridAsyncConcurrentThreads(t *testing.T) {
	pairs := initialPairs(testN)
	m := testMachine()
	s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 4, Seed: 7})
	s.Build(pairs, 99)
	s.Start()
	const threads = 8
	for th := 0; th < threads; th++ {
		th := th
		var mine []KV
		for i, p := range pairs {
			if i%threads == th {
				mine = append(mine, p)
			}
		}
		ops := mixedOps(uint64(300+th), 300, mine, freshBlock(th))
		m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
			s.ApplyBatch(c, th, ops)
		})
	}
	m.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.StaleShortcuts() > len(pairs)/10 {
		t.Fatalf("excessive stale shortcuts: %d", s.StaleShortcuts())
	}
}

func TestCrossVariantSingleThreadAgreement(t *testing.T) {
	pairs := initialPairs(500)
	ops := mixedOps(77, 800, pairs, freshBlock(0))
	var dumps [][]KV
	for _, name := range variants {
		m := testMachine()
		s := buildStore(t, name, m, pairs)
		m.SpawnHost(0, "driver", func(c *machine.Ctx) {
			for _, op := range ops {
				s.Apply(c, 0, op)
			}
		})
		m.Run()
		dumps = append(dumps, s.Dump())
	}
	for i := 1; i < len(dumps); i++ {
		if !kvsEqual(dumps[0], dumps[i]) {
			t.Fatalf("%s and %s disagree after identical op stream", variants[0], variants[i])
		}
	}
}

func TestHybridSplitPlacesTallNodesHostSide(t *testing.T) {
	pairs := initialPairs(testN)
	m := testMachine()
	s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 1, Seed: 7})
	s.Build(pairs, 99)
	ram := m.Mem.RAM
	// Count host nodes; expect roughly N / 2^NMPLevels.
	count := 0
	n := ref(ram.Load32(nextAddr(s.host.head, 0)))
	for n != s.host.tail {
		count++
		// Every host node's NMP counterpart must cap at NMPLevels.
		nmp := ram.Load32(auxAddr(n))
		if h := ram.Load32(heightAddr(nmp)); int(h) != testNMPLevels {
			t.Fatalf("host-linked NMP node has height %d, want %d", h, testNMPLevels)
		}
		n = ref(ram.Load32(nextAddr(n, 0)))
	}
	expected := testN >> testNMPLevels
	if count < expected/2 || count > expected*2 {
		t.Fatalf("host node count = %d, expected around %d", count, expected)
	}
}

func TestHybridDelaysPopulated(t *testing.T) {
	pairs := initialPairs(256)
	m := testMachine()
	s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 1, Seed: 7})
	s.Build(pairs, 99)
	s.Start()
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		for _, p := range pairs[:64] {
			s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: p.Key})
		}
	})
	m.Run()
	d := s.Delays()
	if d.Count != 64 {
		t.Fatalf("offload count = %d, want 64", d.Count)
	}
	if d.Service == 0 || d.PostToScan == 0 || d.CompleteToObserve == 0 {
		t.Fatalf("delay decomposition empty: %+v", d)
	}
}

func TestPartitionerRanges(t *testing.T) {
	p := kv.RangePartitioner{KeyMax: 1000, Parts: 8}
	for key := uint32(1); key < 1000; key += 13 {
		part := p.Part(key)
		lo, hi := p.Range(part)
		if key < lo || key >= hi {
			t.Fatalf("key %d mapped to partition %d range [%d,%d)", key, part, lo, hi)
		}
	}
	seen := map[int]bool{}
	for key := uint32(1); key < 1000; key++ {
		seen[p.Part(key)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d partitions used", len(seen))
	}
}

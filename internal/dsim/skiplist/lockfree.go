package skiplist

import (
	"fmt"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/metrics"
	"hybrids/internal/prng"
	"hybrids/internal/radix"
	"hybrids/internal/sim/machine"
)

func errf(format string, args ...any) error { return fmt.Errorf("skiplist: "+format, args...) }

// LockFree is the paper's non-NMP reference skiplist: the lock-free
// skiplist of Fraser / Herlihy-Lev-Shavit, living entirely in host main
// memory and operated by host threads.
type LockFree struct {
	m      *machine.Machine
	core   *lfCore
	levels int
	rngs   []*prng.Source // per host core, for node heights
}

// NewLockFree creates an empty lock-free skiplist with the given total
// level count (the paper configures log2 N levels).
func NewLockFree(m *machine.Machine, levels int, seed uint64) *LockFree {
	s := &LockFree{
		m:      m,
		core:   newLFCore(m.Mem.RAM, m.Mem.HostAlloc, levels),
		levels: levels,
	}
	for i := 0; i < m.Cfg.Mem.HostCores; i++ {
		s.rngs = append(s.rngs, prng.New(seed^prng.Mix64(uint64(i)+1)))
	}
	return s
}

// Build populates the skiplist untimed (the load phase). Keys are
// deduplicated; heights are drawn deterministically from the build seed.
func (s *LockFree) Build(pairs []KV, seed uint64) {
	sorted := append([]KV(nil), pairs...)
	radix.SortFunc(sorted, func(p KV) uint32 { return p.Key })
	rng := prng.New(seed)
	ram := s.m.Mem.RAM
	uniq := sorted[:0]
	var heights []int
	for i, p := range sorted {
		if i > 0 && len(uniq) > 0 && p.Key == uniq[len(uniq)-1].Key {
			continue
		}
		uniq = append(uniq, p)
		heights = append(heights, rng.GeometricHeight(s.levels))
	}
	addrs := shuffledNodeAlloc(s.m.Mem.HostAlloc, heights, seed^0x55)
	// Sorted bulk link: keep the most recent node at each level and
	// splice each new node after those tails.
	tails := make([]uint32, s.levels)
	for l := range tails {
		tails[l] = s.core.head
	}
	for i, p := range uniq {
		h := heights[i]
		n := addrs[i]
		initNode(ram, n, p.Key, p.Value, h, 0)
		for l := 0; l < h; l++ {
			ram.Store32(nextAddr(n, l), ram.Load32(nextAddr(tails[l], l)))
			ram.Store32(nextAddr(tails[l], l), n)
			tails[l] = n
		}
	}
}

// Apply implements kv.Store.
func (s *LockFree) Apply(c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	switch op.Kind {
	case kv.Read:
		node, _ := s.core.search(c, op.Key)
		if node == 0 {
			return 0, false
		}
		return c.Read32(valueAddr(node)), true
	case kv.Update:
		node, _ := s.core.search(c, op.Key)
		if node == 0 {
			return 0, false
		}
		c.Write32(valueAddr(node), op.Value)
		return 0, true
	case kv.Insert:
		h := s.rngs[c.Core()].GeometricHeight(s.levels)
		_, ok := s.core.insert(c, op.Key, op.Value, h, 0)
		return 0, ok
	case kv.Remove:
		_, ok := s.core.remove(c, op.Key)
		return 0, ok
	default:
		panic("skiplist: unknown op kind")
	}
}

// Dump returns the live key-value pairs in key order (untimed; for
// verification after the simulation).
func (s *LockFree) Dump() []KV { return s.core.dump(s.m.Mem.RAM) }

// CheckInvariants verifies the skiplist property (untimed).
func (s *LockFree) CheckInvariants() error { return s.core.checkInvariants(s.m.Mem.RAM) }

var _ kv.Store = (*LockFree)(nil)

// Metrics returns the owning machine's unified instrumentation registry.
func (s *LockFree) Metrics() *metrics.Registry { return s.m.Metrics }

package skiplist

import (
	"sort"

	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/offload"
	"hybrids/internal/hds"
	"hybrids/internal/metrics"
	"hybrids/internal/prng"
	"hybrids/internal/radix"
	"hybrids/internal/sim/machine"
)

// NMPFC is the NMP-based flat-combining skiplist of prior work [16, 44]:
// the entire structure lives in NMP-capable memory, range-partitioned, and
// host threads offload whole operations to the per-partition NMP cores.
// Every traversal starts at the partition's sentinel head.
type NMPFC struct {
	m      *machine.Machine
	part   kv.RangePartitioner
	lists  []*seqList
	rt     *offload.Runtime
	levels int
	rngs   []*prng.Source
}

// NMPFCConfig parameterizes the NMP-based skiplist.
type NMPFCConfig struct {
	// Levels is the total skiplist level count (log2 N).
	Levels int
	// KeyMax bounds the key space for range partitioning.
	KeyMax uint32
	// SlotsPerPartition sizes each publication list; it must cover
	// hostThreads (blocking calls use slot = thread index).
	SlotsPerPartition int
	Seed              uint64
}

// NewNMPFC creates the structure and spawns one combiner per partition.
func NewNMPFC(m *machine.Machine, cfg NMPFCConfig) *NMPFC {
	parts := m.Cfg.Mem.NMPVaults
	s := &NMPFC{
		m:      m,
		part:   kv.RangePartitioner{KeyMax: cfg.KeyMax, Parts: parts},
		rt:     offload.New(m, offload.Config{Window: 1, SlotsPerPartition: cfg.SlotsPerPartition}),
		levels: cfg.Levels,
	}
	for p := 0; p < parts; p++ {
		s.lists = append(s.lists, newSeqList(m.Mem.RAM, m.Mem.NMPAlloc[p], cfg.Levels))
	}
	for i := 0; i < m.Cfg.Mem.HostCores; i++ {
		s.rngs = append(s.rngs, prng.New(cfg.Seed^prng.Mix64(uint64(i)+101)))
	}
	return s
}

// Start spawns the NMP combiner daemons. Call once before Machine.Run.
func (s *NMPFC) Start() {
	for p := range s.lists {
		s.rt.Start(p, s.lists[p].handler())
	}
}

// Build populates the structure untimed.
func (s *NMPFC) Build(pairs []KV, seed uint64) {
	buildPartitioned(s.m, s.part, s.lists, s.levels, pairs, seed, nil)
}

// nmpfcAdapter plugs whole-operation offload into the shared runtime:
// no host-side pre- or post-work, and combiner responses are final (every
// traversal starts at the partition sentinel, so RETRY never occurs).
type nmpfcAdapter struct{ s *NMPFC }

func (ad nmpfcAdapter) Begin(c *machine.Ctx, op kv.Op) struct{} { return struct{}{} }

func (ad nmpfcAdapter) Prepare(c *machine.Ctx, op kv.Op, st *struct{}, attempt int, batch bool) (fc.Request, int, hds.PrepareCtl, bool) {
	s := ad.s
	req := fc.Request{Key: op.Key, Value: op.Value}
	switch op.Kind {
	case kv.Read:
		req.Op = fc.OpRead
	case kv.Update:
		req.Op = fc.OpUpdate
	case kv.Insert:
		req.Op = fc.OpInsert
		req.Aux = uint32(s.rngs[c.Core()].GeometricHeight(s.levels))
	case kv.Remove:
		req.Op = fc.OpRemove
	}
	return req, s.part.Part(op.Key), hds.PrepareOffload, false
}

func (ad nmpfcAdapter) Finish(c *machine.Ctx, op kv.Op, st *struct{}, resp fc.Response) hds.Verdict[fc.Request] {
	return hds.Verdict[fc.Request]{Kind: hds.OpDone, OK: resp.Success, Value: uint64(resp.Value)}
}

// Apply implements kv.Store: the whole operation is offloaded.
func (s *NMPFC) Apply(c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	return offload.Apply(s.rt, nmpfcAdapter{s}, c, thread, op)
}

// Dump returns live pairs across all partitions in key order (untimed).
func (s *NMPFC) Dump() []KV {
	var out []KV
	for _, l := range s.lists {
		out = append(out, l.dump(s.m.Mem.RAM)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CheckInvariants validates every partition's skiplist property and that
// partition contents respect the key ranges (untimed).
func (s *NMPFC) CheckInvariants() error {
	for p, l := range s.lists {
		if err := l.checkInvariants(s.m.Mem.RAM); err != nil {
			return err
		}
		lo, hi := s.part.Range(p)
		for _, pair := range l.dump(s.m.Mem.RAM) {
			if pair.Key < lo || pair.Key >= hi {
				return errf("partition %d holds out-of-range key %d", p, pair.Key)
			}
		}
	}
	return nil
}

// Delays aggregates offload delay instrumentation across partitions.
func (s *NMPFC) Delays() fc.Delays { return s.rt.Delays() }

// Metrics returns the owning machine's unified instrumentation registry.
func (s *NMPFC) Metrics() *metrics.Registry { return s.m.Metrics }

// buildPartitioned splits pairs by partition, bulk-loads each partition's
// list, and optionally reports each created node through onNode (used by
// the hybrid build to wire host shortcuts). Heights are drawn from seed
// deterministically per key.
func buildPartitioned(m *machine.Machine, part kv.RangePartitioner, lists []*seqList, levels int,
	pairs []KV, seed uint64, onNode func(p int, pair KV, height int, node uint32)) {
	sorted := append([]KV(nil), pairs...)
	radix.SortFunc(sorted, func(p KV) uint32 { return p.Key })
	rng := prng.New(seed)
	byPart := make([][]KV, len(lists))
	heights := make([][]int, len(lists))
	var prevKey uint32
	for i, pr := range sorted {
		if i > 0 && pr.Key == prevKey {
			continue
		}
		prevKey = pr.Key
		h := rng.GeometricHeight(levels)
		p := part.Part(pr.Key)
		byPart[p] = append(byPart[p], pr)
		heights[p] = append(heights[p], h)
	}
	for p, list := range lists {
		nodes := list.buildSorted(m.Mem.RAM, byPart[p], heights[p])
		if onNode != nil {
			for i, n := range nodes {
				onNode(p, byPart[p][i], heights[p][i], n)
			}
		}
	}
}

var _ kv.Store = (*NMPFC)(nil)

// Package skiplist implements the three skiplist variants evaluated in the
// HybriDS paper, all running on the simulated NMP machine:
//
//   - LockFree: the state-of-the-art lock-free skiplist [Fraser 04;
//     Herlihy-Lev-Shavit 07] executed entirely by host cores (the paper's
//     non-NMP reference).
//   - NMPFC: the NMP-based flat-combining skiplist of prior work [16, 44]:
//     the whole structure lives in NMP partitions and host threads offload
//     entire operations.
//   - Hybrid: the paper's contribution (§3.3): lock-free host-managed
//     upper levels acting as traversal shortcuts over per-partition
//     NMP-managed lower levels, with blocking and non-blocking NMP calls.
package skiplist

import (
	"hybrids/internal/prng"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// Simulated node layout (byte offsets). A node of height h occupies
// nodeHeader + 4h bytes. Host-side next pointers carry a mark bit in bit 0
// (node addresses are 8-byte aligned); NMP-side nodes use the flags word
// for logical deletion instead, since the partition is single-threaded.
const (
	offKey    = 0  // uint32 key
	offValue  = 4  // uint32 value
	offHeight = 8  // uint32 height (levels linked in this structure)
	offAux    = 12 // uint32 cross-portion pointer (nmpPtr / hostPtr)
	offFlags  = 16 // uint32 flags (bit 0: logically deleted, NMP side)
	offNext   = 20 // uint32 next[level]...
)

const nodeHeader = offNext

// nodeAlign keeps nodes from straddling cache blocks needlessly; 64 B is
// the paper's estimated skiplist node footprint, so a node of height <= 11
// occupies exactly one half-block.
const nodeAlign = 64

const flagDeleted = 1

// marked reports the mark bit of a raw host-side pointer word.
func marked(p uint32) bool { return p&1 != 0 }

// ref strips the mark bit, yielding the node address.
func ref(p uint32) uint32 { return p &^ 1 }

func nodeBytes(h int) memsys.Addr { return memsys.Addr(nodeHeader + 4*h) }

func keyAddr(n uint32) memsys.Addr         { return memsys.Addr(n) + offKey }
func valueAddr(n uint32) memsys.Addr       { return memsys.Addr(n) + offValue }
func heightAddr(n uint32) memsys.Addr      { return memsys.Addr(n) + offHeight }
func auxAddr(n uint32) memsys.Addr         { return memsys.Addr(n) + offAux }
func flagsAddr(n uint32) memsys.Addr       { return memsys.Addr(n) + offFlags }
func nextAddr(n uint32, l int) memsys.Addr { return memsys.Addr(n) + offNext + memsys.Addr(4*l) }

// newNode allocates and initializes a node with timed stores (used on the
// operation path; the allocation bookkeeping itself is free, matching a
// per-thread free list).
func newNode(c *machine.Ctx, al *memsys.Allocator, key, value uint32, h int, aux uint32) uint32 {
	n := uint32(al.Alloc(nodeBytes(h), nodeAlign))
	c.Write32(keyAddr(n), key)
	c.Write32(valueAddr(n), value)
	c.Write32(heightAddr(n), uint32(h))
	c.Write32(auxAddr(n), aux)
	c.Write32(flagsAddr(n), 0)
	return n
}

// buildNode allocates and initializes a node with untimed stores (load
// phase: construction is not part of any measurement).
func buildNode(ram *memsys.RAM, al *memsys.Allocator, key, value uint32, h int, aux uint32) uint32 {
	n := uint32(al.Alloc(nodeBytes(h), nodeAlign))
	ram.Store32(keyAddr(n), key)
	ram.Store32(valueAddr(n), value)
	ram.Store32(heightAddr(n), uint32(h))
	ram.Store32(auxAddr(n), aux)
	ram.Store32(flagsAddr(n), 0)
	for l := 0; l < h; l++ {
		ram.Store32(nextAddr(n, l), 0)
	}
	return n
}

// shuffledNodeAlloc allocates one node per height in a pseudo-random order
// and returns the addresses in input order. Bulk loads use it so that
// key-adjacent nodes do not end up block-adjacent in memory — live systems
// allocate nodes over time, and allocation-order locality would otherwise
// gift the baselines artificial spatial cache hits.
func shuffledNodeAlloc(al *memsys.Allocator, heights []int, seed uint64) []uint32 {
	perm := make([]int, len(heights))
	for i := range perm {
		perm[i] = i
	}
	rng := prng.New(seed)
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	addrs := make([]uint32, len(heights))
	for _, idx := range perm {
		addrs[idx] = uint32(al.Alloc(nodeBytes(heights[idx]), nodeAlign))
	}
	return addrs
}

// initNode fills a pre-allocated node untimed.
func initNode(ram *memsys.RAM, n uint32, key, value uint32, h int, aux uint32) {
	ram.Store32(keyAddr(n), key)
	ram.Store32(valueAddr(n), value)
	ram.Store32(heightAddr(n), uint32(h))
	ram.Store32(auxAddr(n), aux)
	ram.Store32(flagsAddr(n), 0)
	for l := 0; l < h; l++ {
		ram.Store32(nextAddr(n, l), 0)
	}
}

// KV is a key-value pair produced by verification walks.
type KV struct {
	Key, Value uint32
}

// keyInfinity is the tail sentinel key: ordinary keys must be below it.
const keyInfinity = ^uint32(0)

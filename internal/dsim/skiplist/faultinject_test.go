package skiplist

import (
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/sim/machine"
)

// These white-box tests force the cross-boundary race windows of §3.3 that
// are hard to hit on demand with real interleavings: a begin-NMP-traversal
// node that is logically deleted between the host traversal and the
// combiner's service.

// markNMPCounterpart replicates what a concurrently-served NMP remove does
// to the NMP counterpart of a host node: flag it logically deleted, then
// physically unlink it from its partition list — while the host node (the
// now-stale shortcut) stays linked.
func markNMPCounterpart(m *machine.Machine, s *Hybrid, key uint32) (host, nmp uint32) {
	ram := m.Mem.RAM
	n := ref(ram.Load32(nextAddr(s.host.head, 0)))
	for n != s.host.tail {
		if ram.Load32(keyAddr(n)) == key {
			host, nmp = n, ram.Load32(auxAddr(n))
			break
		}
		n = ref(ram.Load32(nextAddr(n, 0)))
	}
	if nmp == 0 {
		return 0, 0
	}
	ram.Store32(flagsAddr(nmp), flagDeleted)
	list := s.lists[s.part.Part(key)]
	h := int(ram.Load32(heightAddr(nmp)))
	for l := 0; l < h; l++ {
		prev := list.head
		for {
			next := ram.Load32(nextAddr(prev, l))
			if next == 0 {
				break
			}
			if next == nmp {
				ram.Store32(nextAddr(prev, l), ram.Load32(nextAddr(nmp, l)))
				break
			}
			prev = next
		}
	}
	return host, nmp
}

// tallKeys returns keys that have host-side nodes, in key order.
func tallKeys(m *machine.Machine, s *Hybrid) []uint32 {
	ram := m.Mem.RAM
	var out []uint32
	n := ref(ram.Load32(nextAddr(s.host.head, 0)))
	for n != s.host.tail {
		out = append(out, ram.Load32(keyAddr(n)))
		n = ref(ram.Load32(nextAddr(n, 0)))
	}
	return out
}

func TestHybridRetryOnDeletedBeginNode(t *testing.T) {
	pairs := initialPairs(testN)
	m := testMachine()
	s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 1, Seed: 7})
	s.Build(pairs, 99)
	s.Start()

	talls := tallKeys(m, s)
	if len(talls) < 2 {
		t.Skip("not enough tall nodes")
	}
	// Poison a host node's shortcut, then read a key just above it: the
	// host traversal will use the poisoned node as its begin pointer,
	// the combiner must answer Retry, and the operation must still
	// complete correctly via cleanup + retry.
	victim := talls[len(talls)/2]
	markNMPCounterpart(m, s, victim)

	// Find a real key directly after the victim (same partition bias is
	// fine; if the next key routes elsewhere the test still passes but
	// exercises less).
	var probe uint32
	for _, p := range pairs {
		if p.Key > victim && (probe == 0 || p.Key < probe) {
			probe = p.Key
		}
	}
	var wantVal uint32
	for _, p := range pairs {
		if p.Key == probe {
			wantVal = p.Value
		}
	}

	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		v, ok := s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: probe})
		if !ok || v != wantVal {
			t.Errorf("read through poisoned shortcut: (%d,%v), want (%d,true)", v, ok, wantVal)
		}
		// The poisoned key itself must now read as absent (its NMP node
		// is logically deleted) without hanging.
		if _, ok := s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: victim}); ok {
			t.Error("logically deleted key still readable")
		}
		// And re-inserting it must succeed.
		if _, ok := s.Apply(c, 0, kv.Op{Kind: kv.Insert, Key: victim, Value: 777}); !ok {
			t.Error("re-insert over deleted NMP node failed")
		}
		if v, ok := s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: victim}); !ok || v != 777 {
			t.Errorf("read after re-insert = (%d,%v)", v, ok)
		}
	})
	m.Run()
}

func TestHybridStaleShortcutCleanupUnlinksHostNode(t *testing.T) {
	pairs := initialPairs(testN)
	m := testMachine()
	s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 1, Seed: 7})
	s.Build(pairs, 99)
	s.Start()

	talls := tallKeys(m, s)
	victim := talls[len(talls)/3]
	host, _ := markNMPCounterpart(m, s, victim)
	if host == 0 {
		t.Fatal("victim host node not found")
	}
	before := s.StaleShortcuts()
	if before == 0 {
		t.Fatal("poisoning did not create a stale shortcut")
	}

	var probe uint32
	for _, p := range pairs {
		if p.Key > victim && (probe == 0 || p.Key < probe) {
			probe = p.Key
		}
	}
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		// Operations that route through the stale shortcut trigger
		// Retry + cleanup; afterwards the stale host node must be gone
		// (marked) so later traversals no longer use it.
		for i := 0; i < 3; i++ {
			s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: probe})
		}
	})
	m.Run()
	if after := s.StaleShortcuts(); after >= before {
		t.Fatalf("stale shortcuts not cleaned: %d -> %d", before, after)
	}
}

// TestHybridStaleShortcutCleanupNonBlocking drives the same poisoned-
// shortcut race through ApplyBatch: the offload runtime's reissue path
// must run the adapter's cleanup before retrying, and every windowed
// operation must still complete correctly.
func TestHybridStaleShortcutCleanupNonBlocking(t *testing.T) {
	pairs := initialPairs(testN)
	m := testMachine()
	s := NewHybrid(m, HybridConfig{Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, KeyMax: testKeyMax, Window: 4, Seed: 7})
	s.Build(pairs, 99)
	s.Start()

	talls := tallKeys(m, s)
	if len(talls) < 2 {
		t.Skip("not enough tall nodes")
	}
	victim := talls[len(talls)/3]
	if host, _ := markNMPCounterpart(m, s, victim); host == 0 {
		t.Fatal("victim host node not found")
	}
	before := s.StaleShortcuts()
	if before == 0 {
		t.Fatal("poisoning did not create a stale shortcut")
	}

	var probe uint32
	var wantVal uint32
	for _, p := range pairs {
		if p.Key > victim && (probe == 0 || p.Key < probe) {
			probe, wantVal = p.Key, p.Value
		}
	}
	ops := []kv.Op{
		{Kind: kv.Read, Key: probe},
		{Kind: kv.Read, Key: victim}, // logically deleted: must miss, not hang
		{Kind: kv.Read, Key: probe},
		{Kind: kv.Read, Key: probe},
	}
	var succeeded int
	var checkVal uint32
	var checkOK bool
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		succeeded = s.ApplyBatch(c, 0, ops)
		// Post-cleanup blocking read verifies the probe key is intact.
		checkVal, checkOK = s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: probe})
	})
	m.Run()
	if succeeded != len(ops)-1 {
		t.Fatalf("succeeded = %d, want %d (deleted key must miss)", succeeded, len(ops)-1)
	}
	if after := s.StaleShortcuts(); after >= before {
		t.Fatalf("stale shortcuts not cleaned via batch path: %d -> %d", before, after)
	}
	if !checkOK || checkVal != wantVal {
		t.Fatalf("probe key after cleanup = (%d,%v), want (%d,true)", checkVal, checkOK, wantVal)
	}
}

package skiplist

import (
	"fmt"
	"sort"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/offload"
	"hybrids/internal/hds"
	"hybrids/internal/metrics"
	"hybrids/internal/prng"
	"hybrids/internal/sim/machine"
)

// Hybrid is the paper's hybrid skiplist (§3.3): nodes taller than the
// host-NMP split keep their top levels in a host-managed lock-free
// skiplist whose bottom-level nodes hold shortcuts (begin-NMP-traversal
// pointers) into per-partition NMP-managed skiplists holding the bottom
// levels of every key.
//
// Insertions are applied NMP-side first and host-side second; removals
// host-side first and NMP-side second, preserving the skiplist property
// across the boundary. The NMP combiner detects begin-traversal nodes that
// were logically deleted by operations it served earlier and asks the host
// to retry (§3.2).
//
// One deliberate deviation from Listings 1-2: host-managed nodes carry no
// authoritative value, so reads and updates always complete NMP-side. The
// paper lets reads complete host-side and patches host copies on update
// via the returned host_ptr; that protocol admits a stale-host-copy window
// around racing insert/remove pairs, and offloading reads is the
// conservative choice with identical memory-traffic shape.
type Hybrid struct {
	m     *machine.Machine
	host  *lfCore
	part  kv.RangePartitioner
	lists []*seqList
	rt    *offload.Runtime

	split boundary.Split
	seed  uint64
	epoch uint64
	rngs  []*prng.Source
}

// HybridConfig parameterizes the hybrid skiplist.
type HybridConfig struct {
	// Split is the host/NMP boundary: Split.Total is the full skiplist
	// height (log2 N), Split.NMP how many bottom levels live NMP-side;
	// the remaining Split.Host() top levels form the host-managed
	// portion, sized so that it fits the LLC (§3.3).
	Split boundary.Split
	// KeyMax bounds the key space for range partitioning.
	KeyMax uint32
	// Window is the number of in-flight NMP calls per host thread used
	// by ApplyBatch (1 = blocking behaviour). Publication lists are
	// sized as hostCores*Window slots.
	Window int
	Seed   uint64
}

// NewHybrid creates the structure; call Start to spawn the NMP combiners.
func NewHybrid(m *machine.Machine, cfg HybridConfig) *Hybrid {
	if cfg.Split.Total <= 0 || cfg.Split.Validate() != nil {
		panic("skiplist: split must partition the structure")
	}
	s := &Hybrid{
		m:    m,
		part: kv.RangePartitioner{KeyMax: cfg.KeyMax, Parts: m.Cfg.Mem.NMPVaults},
		rt:   offload.New(m, offload.Config{Window: cfg.Window}),
		seed: cfg.Seed,
	}
	s.layout(cfg.Split)
	for i := 0; i < m.Cfg.Mem.HostCores; i++ {
		s.rngs = append(s.rngs, prng.New(cfg.Seed^prng.Mix64(uint64(i)+211)))
	}
	return s
}

// layout (re)creates the empty host portion and per-partition NMP
// portions at split, from fresh allocations.
func (s *Hybrid) layout(split boundary.Split) {
	s.host = newLFCore(s.m.Mem.RAM, s.m.Mem.HostAlloc, split.Host())
	s.lists = s.lists[:0]
	for p := 0; p < s.m.Cfg.Mem.NMPVaults; p++ {
		s.lists = append(s.lists, newSeqList(s.m.Mem.RAM, s.m.Mem.NMPAlloc[p], split.NMP))
	}
	s.split = split
}

// Split returns the current host/NMP boundary.
func (s *Hybrid) Split() boundary.Split { return s.split }

// Rebalance moves the host/NMP boundary to next: a drained-epoch
// transition executed at quiescence (no requests posted or in flight).
// The live pairs are dumped from the authoritative NMP bottom level, the
// host portion and per-partition NMP portions are rebuilt at the new
// split from fresh allocations (the old portions' bump-allocated memory
// is abandoned), and the running combiner daemons are retargeted through
// the offload runtime's handler indirection. Total levels cannot change,
// so the per-core height RNGs draw from the same distribution across the
// transition.
func (s *Hybrid) Rebalance(next boundary.Split) error {
	if next.Total != s.split.Total {
		return fmt.Errorf("skiplist: rebalance cannot change total levels (%d -> %d)", s.split.Total, next.Total)
	}
	if err := next.Validate(); err != nil {
		return err
	}
	if next == s.split {
		return nil
	}
	pairs := s.Dump()
	s.epoch++
	s.layout(next)
	s.Build(pairs, s.seed^prng.Mix64(s.epoch+0x517c))
	for p := range s.lists {
		s.rt.Republish(p, s.lists[p].handler())
	}
	return nil
}

// Start spawns the NMP combiner daemons. Call once before Machine.Run.
func (s *Hybrid) Start() {
	for p := range s.lists {
		s.rt.Start(p, s.lists[p].handler())
	}
}

// Build populates the structure untimed: NMP portions are bulk-loaded per
// partition; keys whose height crosses the split get a host node holding
// the excess levels and a shortcut to the NMP counterpart.
func (s *Hybrid) Build(pairs []KV, seed uint64) {
	ram := s.m.Mem.RAM
	// Collect the tall keys in key order first (partitions are visited in
	// ascending key-range order), then allocate their host nodes in
	// shuffled order and link them.
	type tall struct {
		pair    KV
		hh      int
		nmpNode uint32
	}
	var talls []tall
	buildPartitioned(s.m, s.part, s.lists, s.split.Total, pairs, seed,
		func(p int, pair KV, height int, nmpNode uint32) {
			if height <= s.split.NMP {
				return
			}
			talls = append(talls, tall{pair: pair, hh: height - s.split.NMP, nmpNode: nmpNode})
		})
	heights := make([]int, len(talls))
	for i, t := range talls {
		heights[i] = t.hh
	}
	addrs := shuffledNodeAlloc(s.m.Mem.HostAlloc, heights, seed^0x405)
	tails := make([]uint32, s.split.Host())
	for l := range tails {
		tails[l] = s.host.head
	}
	for i, t := range talls {
		hostNode := addrs[i]
		initNode(ram, hostNode, t.pair.Key, t.pair.Value, t.hh, t.nmpNode)
		ram.Store32(auxAddr(t.nmpNode), hostNode)
		for l := 0; l < t.hh; l++ {
			ram.Store32(nextAddr(hostNode, l), ram.Load32(nextAddr(tails[l], l)))
			ram.Store32(nextAddr(tails[l], l), hostNode)
			tails[l] = hostNode
		}
	}
}

// shortcut performs the host-side traversal and derives the operation's
// begin-NMP-traversal pointer (Listing 1 lines 7, 14-15): the host-level
// bottom predecessor's NMP counterpart, provided the predecessor falls in
// the target partition.
func (s *Hybrid) shortcut(c *machine.Ctx, key uint32, p int) (hostNode, pred, begin uint32) {
	hostNode, pred = s.host.search(c, key)
	if pred != s.host.head && s.part.Part(c.Read32(keyAddr(pred))) == p {
		begin = c.Read32(auxAddr(pred))
	}
	return hostNode, pred, begin
}

// request builds the NMP request for op, performing the host-side
// pre-work: traversal, shortcut derivation, host-side removal ordering,
// and host-node pre-allocation for inserts. It may complete the operation
// host-side (done=true) when a remove loses its host-side race.
func (s *Hybrid) request(c *machine.Ctx, op kv.Op, hostNode uint32, height int) (req fc.Request, pred uint32, done, ok bool) {
	p := s.part.Part(op.Key)
	found, pred, begin := s.shortcut(c, op.Key, p)
	req = fc.Request{Key: op.Key, Value: op.Value, NMPPtr: begin}
	switch op.Kind {
	case kv.Read:
		req.Op = fc.OpRead
	case kv.Update:
		req.Op = fc.OpUpdate
	case kv.Insert:
		req.Op = fc.OpInsert
		req.Aux = uint32(height)
		req.HostPtr = hostNode
	case kv.Remove:
		req.Op = fc.OpRemove
		if found != 0 {
			// §3.3: removals apply host-side first, NMP-side second.
			if !s.host.removeNode(c, found, op.Key) {
				// A concurrent remover won the host-side race and
				// owns the NMP-side removal.
				return req, pred, true, false
			}
		}
	}
	return req, pred, false, false
}

// finish performs the host-side post-work for a completed NMP response
// (the caller has already routed RETRY responses back through Prepare).
func (s *Hybrid) finish(c *machine.Ctx, op kv.Op, hostNode uint32, resp fc.Response) (value uint32, ok bool) {
	switch op.Kind {
	case kv.Read:
		return resp.Value, resp.Success
	case kv.Update, kv.Remove:
		return 0, resp.Success
	case kv.Insert:
		if !resp.Success {
			return 0, false // key already present
		}
		if hostNode != 0 {
			// §3.3: link the host levels after the NMP link (the
			// linearization point) succeeded.
			c.Write32(auxAddr(hostNode), resp.Ptr)
			hh := int(c.Read32(heightAddr(hostNode)))
			s.host.linkNode(c, hostNode, op.Key, hh)
		}
		return 0, true
	default:
		panic("skiplist: unknown op kind")
	}
}

// cleanupStaleShortcut unlinks a host node whose NMP counterpart the
// combiner reported as logically deleted, so retries cannot loop on the
// same dead begin-traversal pointer.
func (s *Hybrid) cleanupStaleShortcut(c *machine.Ctx, pred uint32) {
	if pred == 0 || pred == s.host.head {
		return
	}
	s.host.removeNode(c, pred, c.Read32(keyAddr(pred)))
}

// prepareInsert draws the height and pre-allocates the host-side node when
// the height crosses the split (Listing 1 lines 10-13).
func (s *Hybrid) prepareInsert(c *machine.Ctx, op kv.Op) (hostNode uint32, height int) {
	height = s.rngs[c.Core()].GeometricHeight(s.split.Total)
	if height > s.split.NMP {
		hostNode = newNode(c, s.m.Mem.HostAlloc, op.Key, op.Value, height-s.split.NMP, 0)
	}
	return hostNode, height
}

// slState carries one operation's host-side state across the offload
// runtime's retry loop: the pre-allocated host node for tall inserts and
// the predecessor whose shortcut a RETRY response proves stale.
type slState struct {
	hostNode uint32
	height   int
	pred     uint32
}

// slAdapter plugs the hybrid skiplist protocol (§3.3) into the shared
// offload runtime.
type slAdapter struct{ s *Hybrid }

func (ad slAdapter) Begin(c *machine.Ctx, op kv.Op) slState {
	var st slState
	if op.Kind == kv.Insert {
		st.hostNode, st.height = ad.s.prepareInsert(c, op)
	}
	return st
}

func (ad slAdapter) Prepare(c *machine.Ctx, op kv.Op, st *slState, attempt int, batch bool) (fc.Request, int, hds.PrepareCtl, bool) {
	req, pred, done, ok := ad.s.request(c, op, st.hostNode, st.height)
	st.pred = pred
	if done {
		return fc.Request{}, 0, hds.PrepareLocal, ok
	}
	return req, ad.s.part.Part(op.Key), hds.PrepareOffload, false
}

func (ad slAdapter) Finish(c *machine.Ctx, op kv.Op, st *slState, resp fc.Response) hds.Verdict[fc.Request] {
	if resp.Retry {
		ad.s.cleanupStaleShortcut(c, st.pred)
		return hds.Verdict[fc.Request]{Kind: hds.OpRetry}
	}
	value, ok := ad.s.finish(c, op, st.hostNode, resp)
	return hds.Verdict[fc.Request]{Kind: hds.OpDone, OK: ok, Value: uint64(value)}
}

// Apply implements kv.Store with blocking NMP calls.
func (s *Hybrid) Apply(c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	return offload.Apply(s.rt, slAdapter{s}, c, thread, op)
}

// ApplyBatch implements kv.AsyncStore: non-blocking NMP calls (§3.5) with
// up to the configured window of operations in flight per thread.
func (s *Hybrid) ApplyBatch(c *machine.Ctx, thread int, ops []kv.Op) int {
	return offload.ApplyBatch(s.rt, slAdapter{s}, c, thread, ops)
}

// Dump returns live pairs across all NMP partitions — the authoritative
// bottom level — in key order (untimed).
func (s *Hybrid) Dump() []KV {
	var out []KV
	for _, l := range s.lists {
		out = append(out, l.dump(s.m.Mem.RAM)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CheckInvariants validates the host portion's skiplist property, each
// partition's skiplist property and key ranges, and the cross-boundary
// consistency: every live (unmarked) host node's shortcut must reference
// an NMP node with the same key. A host node whose NMP counterpart is
// logically deleted is a stale shortcut; those are permitted only when
// marked host-side or not yet cleaned — they are counted, not failed,
// as long as the authoritative NMP level does not contain the key.
func (s *Hybrid) CheckInvariants() error {
	ram := s.m.Mem.RAM
	if err := s.host.checkInvariants(ram); err != nil {
		return err
	}
	for p, l := range s.lists {
		if err := l.checkInvariants(ram); err != nil {
			return err
		}
		lo, hi := s.part.Range(p)
		for _, pair := range l.dump(ram) {
			if pair.Key < lo || pair.Key >= hi {
				return errf("partition %d holds out-of-range key %d", p, pair.Key)
			}
		}
	}
	// Cross-boundary: walk live host nodes.
	n := ref(ram.Load32(nextAddr(s.host.head, 0)))
	for n != s.host.tail {
		if !marked(ram.Load32(nextAddr(n, 0))) {
			key := ram.Load32(keyAddr(n))
			nmp := ram.Load32(auxAddr(n))
			if nmp == 0 {
				return errf("live host node key=%d has no NMP shortcut", key)
			}
			if got := ram.Load32(keyAddr(nmp)); got != key {
				return errf("host node key=%d shortcut points at NMP key=%d", key, got)
			}
		}
		n = ref(ram.Load32(nextAddr(n, 0)))
	}
	return nil
}

// StaleShortcuts counts live host nodes whose NMP counterpart is logically
// deleted (transient states left by racing insert/remove pairs).
func (s *Hybrid) StaleShortcuts() int {
	ram := s.m.Mem.RAM
	count := 0
	n := ref(ram.Load32(nextAddr(s.host.head, 0)))
	for n != s.host.tail {
		if !marked(ram.Load32(nextAddr(n, 0))) {
			nmp := ram.Load32(auxAddr(n))
			if nmp != 0 && ram.Load32(flagsAddr(nmp))&flagDeleted != 0 {
				count++
			}
		}
		n = ref(ram.Load32(nextAddr(n, 0)))
	}
	return count
}

// Delays aggregates offload delay instrumentation across partitions.
func (s *Hybrid) Delays() fc.Delays { return s.rt.Delays() }

// Metrics returns the owning machine's unified instrumentation registry.
func (s *Hybrid) Metrics() *metrics.Registry { return s.m.Metrics }

var (
	_ kv.Store      = (*Hybrid)(nil)
	_ kv.AsyncStore = (*Hybrid)(nil)
)

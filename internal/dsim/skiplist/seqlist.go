package skiplist

import (
	"hybrids/internal/dsim/fc"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// seqList is the single-threaded skiplist stored inside one NMP partition.
// The partition's NMP core is the only agent that ever touches it, so no
// marks or CASes are needed for mutation; a logical-deletion flag is still
// written before unlinking so that stale begin-NMP-traversal shortcuts held
// by in-flight operations are detectable (§3.3).
//
// It serves both the fully-NMP skiplist of prior work (full height, begin
// pointer always the partition head) and the NMP-managed portion of the
// hybrid skiplist (bottom levels only, begin pointer from host shortcuts).
type seqList struct {
	levels int
	head   uint32
	alloc  *memsys.Allocator
}

func newSeqList(ram *memsys.RAM, alloc *memsys.Allocator, levels int) *seqList {
	s := &seqList{levels: levels, alloc: alloc}
	s.head = buildNode(ram, alloc, 0, 0, levels, 0)
	return s
}

// findFrom walks down from the begin node (which must have full partition
// height), filling preds and returning the node holding key, or 0.
// A next pointer of 0 is the end of a level.
func (s *seqList) findFrom(c *machine.Ctx, begin, key uint32, preds []uint32) uint32 {
	curr := begin
	for level := s.levels - 1; level >= 0; level-- {
		steps := uint64(1)
		for {
			next := c.Read32(nextAddr(curr, level))
			if next != 0 && c.Read32(keyAddr(next)) < key {
				curr = next
				steps++
			} else {
				break
			}
		}
		// Per-node compare/branch work on the in-order NMP core,
		// charged once per level to keep event counts low.
		c.Step(steps)
		preds[level] = curr
	}
	next := c.Read32(nextAddr(curr, 0))
	if next != 0 && c.Read32(keyAddr(next)) == key {
		return next
	}
	return 0
}

// insert links (key,value,height,hostPtr) after a findFrom miss whose
// preds are supplied. Returns the new node.
func (s *seqList) insert(c *machine.Ctx, preds []uint32, key, value uint32, h int, hostPtr uint32) uint32 {
	n := newNode(c, s.alloc, key, value, h, hostPtr)
	for l := 0; l < h; l++ {
		c.Write32(nextAddr(n, l), c.Read32(nextAddr(preds[l], l)))
		c.Write32(nextAddr(preds[l], l), n)
	}
	return n
}

// remove marks node deleted, then unlinks it at every level it occupies.
func (s *seqList) remove(c *machine.Ctx, preds []uint32, node uint32) {
	// Logical deletion first: concurrent offloaded operations holding
	// this node as their begin-NMP-traversal shortcut must observe it.
	c.Write32(flagsAddr(node), flagDeleted)
	h := int(c.Read32(heightAddr(node)))
	for l := 0; l < h; l++ {
		if c.Read32(nextAddr(preds[l], l)) == node {
			c.Write32(nextAddr(preds[l], l), c.Read32(nextAddr(node, l)))
		}
	}
}

// handler builds the fc.Handler serving this partition's operations. When
// capHeight is true (hybrid), insert heights above the partition's level
// count are capped (§3.3 Listing 2 lines 18-21); the full-NMP variant
// passes heights already bounded by its total levels.
func (s *seqList) handler() fc.Handler {
	preds := make([]uint32, s.levels)
	return func(c *machine.Ctx, slot int, req fc.Request) fc.Response {
		begin := req.NMPPtr
		if begin != 0 {
			// §3.3: a begin-NMP-traversal node removed by an
			// earlier concurrent operation forces a host retry.
			if c.Read32(flagsAddr(begin))&flagDeleted != 0 {
				return fc.Response{Retry: true}
			}
		} else {
			begin = s.head
		}
		node := s.findFrom(c, begin, req.Key, preds)
		switch req.Op {
		case fc.OpRead:
			if node == 0 {
				return fc.Response{}
			}
			return fc.Response{Success: true, Value: c.Read32(valueAddr(node)), Ptr: c.Read32(auxAddr(node))}
		case fc.OpUpdate:
			if node == 0 {
				return fc.Response{}
			}
			c.Write32(valueAddr(node), req.Value)
			return fc.Response{Success: true, Ptr: c.Read32(auxAddr(node))}
		case fc.OpInsert:
			if node != 0 {
				return fc.Response{}
			}
			h := int(req.Aux)
			if h > s.levels {
				h = s.levels
			}
			n := s.insert(c, preds, req.Key, req.Value, h, req.HostPtr)
			return fc.Response{Success: true, Ptr: n}
		case fc.OpRemove:
			if node == 0 {
				return fc.Response{}
			}
			hostPtr := c.Read32(auxAddr(node))
			s.remove(c, preds, node)
			return fc.Response{Success: true, Ptr: hostPtr}
		default:
			panic("skiplist: unexpected NMP op " + req.Op.String())
		}
	}
}

// Untimed verification walks.

func (s *seqList) dump(ram *memsys.RAM) []KV {
	var out []KV
	n := ram.Load32(nextAddr(s.head, 0))
	for n != 0 {
		out = append(out, KV{ram.Load32(keyAddr(n)), ram.Load32(valueAddr(n))})
		n = ram.Load32(nextAddr(n, 0))
	}
	return out
}

func (s *seqList) checkInvariants(ram *memsys.RAM) error {
	bottom := map[uint32]bool{}
	prev := uint32(0)
	n := ram.Load32(nextAddr(s.head, 0))
	for n != 0 {
		k := ram.Load32(keyAddr(n))
		if k <= prev && prev != 0 {
			return errf("NMP level 0 keys not strictly increasing: %d after %d", k, prev)
		}
		if ram.Load32(flagsAddr(n))&flagDeleted != 0 {
			return errf("deleted node key=%d still linked at level 0", k)
		}
		prev = k
		bottom[n] = true
		n = ram.Load32(nextAddr(n, 0))
	}
	for l := 1; l < s.levels; l++ {
		prev = 0
		n = ram.Load32(nextAddr(s.head, l))
		for n != 0 {
			k := ram.Load32(keyAddr(n))
			if k <= prev && prev != 0 {
				return errf("NMP level %d keys not strictly increasing", l)
			}
			prev = k
			if !bottom[n] {
				return errf("NMP level %d node key=%d missing from level 0", l, k)
			}
			n = ram.Load32(nextAddr(n, l))
		}
	}
	return nil
}

// buildSorted bulk-loads sorted unique pairs with deterministic heights,
// returning for each pair the created node (untimed load phase).
func (s *seqList) buildSorted(ram *memsys.RAM, pairs []KV, heights []int) []uint32 {
	capped := make([]int, len(heights))
	for i, h := range heights {
		if h > s.levels {
			h = s.levels
		}
		capped[i] = h
	}
	nodes := shuffledNodeAlloc(s.alloc, capped, uint64(s.head)^0xa11c)
	tails := make([]uint32, s.levels)
	for l := range tails {
		tails[l] = s.head
	}
	for i, p := range pairs {
		h := capped[i]
		n := nodes[i]
		initNode(ram, n, p.Key, p.Value, h, 0)
		for l := 0; l < h; l++ {
			ram.Store32(nextAddr(n, l), ram.Load32(nextAddr(tails[l], l)))
			ram.Store32(nextAddr(tails[l], l), n)
			tails[l] = n
		}
	}
	return nodes
}

package skiplist

import (
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// lfCore holds the lock-free skiplist machinery shared by the host-only
// LockFree structure and the host-managed portion of the Hybrid structure.
// It follows the Herlihy-Lev-Shavit algorithm: next pointers carry a mark
// bit; find() physically snips marked nodes while traversing; insertion
// links bottom-up with CAS; removal marks top-down and lets find() reclaim.
type lfCore struct {
	levels int
	head   uint32
	tail   uint32
	alloc  *memsys.Allocator
}

func newLFCore(ram *memsys.RAM, alloc *memsys.Allocator, levels int) *lfCore {
	s := &lfCore{levels: levels, alloc: alloc}
	s.tail = buildNode(ram, alloc, keyInfinity, 0, levels, 0)
	s.head = buildNode(ram, alloc, 0, 0, levels, 0)
	for l := 0; l < levels; l++ {
		ram.Store32(nextAddr(s.head, l), s.tail)
	}
	return s
}

// find locates key's position, filling preds/succs (each of length levels)
// and snipping marked nodes along the way. It reports whether an unmarked
// node with the key is present (as succs[0]).
func (s *lfCore) find(c *machine.Ctx, key uint32, preds, succs []uint32) bool {
retry:
	for {
		pred := s.head
		for level := s.levels - 1; level >= 0; level-- {
			curr := ref(c.Read32(nextAddr(pred, level)))
			for {
				succ := c.Read32(nextAddr(curr, level))
				for marked(succ) {
					// curr is logically deleted at this level:
					// snip it out; restart on interference.
					if !c.CAS32(nextAddr(pred, level), curr, ref(succ)) {
						continue retry
					}
					curr = ref(c.Read32(nextAddr(pred, level)))
					succ = c.Read32(nextAddr(curr, level))
				}
				if c.Read32(keyAddr(curr)) < key {
					pred = curr
					curr = ref(succ)
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		return c.Read32(keyAddr(succs[0])) == key
	}
}

// search is the wait-free lookup: it skips marked nodes without helping
// and returns the unmarked node holding key (0 if absent) along with the
// last predecessor seen at the bottom level (the hybrid structure's
// shortcut source).
func (s *lfCore) search(c *machine.Ctx, key uint32) (node, bottomPred uint32) {
	pred := s.head
	var curr uint32
	for level := s.levels - 1; level >= 0; level-- {
		curr = ref(c.Read32(nextAddr(pred, level)))
		for {
			succ := c.Read32(nextAddr(curr, level))
			for marked(succ) {
				curr = ref(succ)
				succ = c.Read32(nextAddr(curr, level))
			}
			c.Step(1)
			if c.Read32(keyAddr(curr)) < key {
				pred = curr
				curr = ref(succ)
			} else {
				break
			}
		}
	}
	if c.Read32(keyAddr(curr)) == key {
		return curr, pred
	}
	return 0, pred
}

// insert adds (key, value) with the given height, storing aux in the new
// node. It returns the new node and true, or 0 and false when the key is
// already present.
func (s *lfCore) insert(c *machine.Ctx, key, value uint32, h int, aux uint32) (uint32, bool) {
	preds := make([]uint32, s.levels)
	succs := make([]uint32, s.levels)
	for {
		if s.find(c, key, preds, succs) {
			return 0, false
		}
		node := newNode(c, s.alloc, key, value, h, aux)
		for l := 0; l < h; l++ {
			c.Write32(nextAddr(node, l), succs[l])
		}
		// Linking at the bottom level is the linearization point.
		if !c.CAS32(nextAddr(preds[0], 0), succs[0], node) {
			continue
		}
		s.linkUpper(c, node, key, h, preds, succs)
		return node, true
	}
}

// linkNode links a pre-built node (already initialized, bottom next not
// yet set) into the list; used by the hybrid insert after the NMP portion
// confirmed the insert. Returns false if the key turned out to be present
// host-side (a lost race; the caller treats the hybrid insert as done).
func (s *lfCore) linkNode(c *machine.Ctx, node uint32, key uint32, h int) bool {
	preds := make([]uint32, s.levels)
	succs := make([]uint32, s.levels)
	for {
		if s.find(c, key, preds, succs) {
			return false
		}
		for l := 0; l < h; l++ {
			c.Write32(nextAddr(node, l), succs[l])
		}
		if !c.CAS32(nextAddr(preds[0], 0), succs[0], node) {
			continue
		}
		s.linkUpper(c, node, key, h, preds, succs)
		return true
	}
}

func (s *lfCore) linkUpper(c *machine.Ctx, node, key uint32, h int, preds, succs []uint32) {
	for l := 1; l < h; l++ {
		for {
			raw := c.Read32(nextAddr(node, l))
			if marked(raw) {
				// A concurrent remove got to this node; it owns
				// the remaining unlinking.
				return
			}
			if ref(raw) != succs[l] {
				if !c.CAS32(nextAddr(node, l), raw, succs[l]) {
					continue
				}
			}
			if c.CAS32(nextAddr(preds[l], l), succs[l], node) {
				break
			}
			if !s.find(c, key, preds, succs) {
				return // removed concurrently
			}
			if succs[0] != node {
				return // a different node now holds the key slot
			}
		}
	}
}

// remove logically deletes key's node (marking top-down) and physically
// unlinks it via find. It returns the removed node and true, or 0 and
// false if the key is absent or another thread won the removal.
func (s *lfCore) remove(c *machine.Ctx, key uint32) (uint32, bool) {
	preds := make([]uint32, s.levels)
	succs := make([]uint32, s.levels)
	if !s.find(c, key, preds, succs) {
		return 0, false
	}
	node := succs[0]
	return node, s.removeNode(c, node, key)
}

// removeNode marks a specific node for deletion (used both by remove and
// by the hybrid structure's stale-shortcut cleanup). It returns true if
// this caller won the logical deletion at the bottom level.
func (s *lfCore) removeNode(c *machine.Ctx, node, key uint32) bool {
	h := int(c.Read32(heightAddr(node)))
	for l := h - 1; l >= 1; l-- {
		raw := c.Read32(nextAddr(node, l))
		for !marked(raw) {
			c.CAS32(nextAddr(node, l), raw, raw|1)
			raw = c.Read32(nextAddr(node, l))
		}
	}
	for {
		raw := c.Read32(nextAddr(node, 0))
		if marked(raw) {
			return false // another remover won
		}
		if c.CAS32(nextAddr(node, 0), raw, raw|1) {
			// Physically unlink through a helping find.
			preds := make([]uint32, s.levels)
			succs := make([]uint32, s.levels)
			s.find(c, key, preds, succs)
			return true
		}
	}
}

// Untimed verification walks (run after the simulation on raw RAM).

// dump returns the live (unmarked) key-value pairs at the bottom level.
func (s *lfCore) dump(ram *memsys.RAM) []KV {
	var out []KV
	n := ref(ram.Load32(nextAddr(s.head, 0)))
	for n != s.tail {
		if !marked(ram.Load32(nextAddr(n, 0))) {
			out = append(out, KV{ram.Load32(keyAddr(n)), ram.Load32(valueAddr(n))})
		}
		n = ref(ram.Load32(nextAddr(n, 0)))
	}
	return out
}

// checkInvariants verifies the skiplist property on unmarked nodes: keys
// strictly increase along every level, and every node present at level l>0
// is present at level 0.
func (s *lfCore) checkInvariants(ram *memsys.RAM) error {
	bottom := map[uint32]bool{}
	n := ref(ram.Load32(nextAddr(s.head, 0)))
	prev := uint32(0)
	for n != s.tail {
		k := ram.Load32(keyAddr(n))
		if !marked(ram.Load32(nextAddr(n, 0))) {
			if k <= prev && prev != 0 {
				return errf("level 0 keys not strictly increasing: %d after %d", k, prev)
			}
			prev = k
			bottom[n] = true
		}
		n = ref(ram.Load32(nextAddr(n, 0)))
	}
	for l := 1; l < s.levels; l++ {
		n = ref(ram.Load32(nextAddr(s.head, l)))
		prev = 0
		for n != s.tail {
			k := ram.Load32(keyAddr(n))
			if !marked(ram.Load32(nextAddr(n, l))) && !marked(ram.Load32(nextAddr(n, 0))) {
				if k <= prev && prev != 0 {
					return errf("level %d keys not strictly increasing: %d after %d", l, k, prev)
				}
				prev = k
				if !bottom[n] {
					return errf("level %d node key=%d missing from level 0 (skiplist property)", l, k)
				}
			}
			n = ref(ram.Load32(nextAddr(n, l)))
		}
	}
	return nil
}

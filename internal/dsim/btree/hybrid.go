package btree

import (
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/sim/machine"
)

// Hybrid is the paper's hybrid B+ tree (§3.4): the top levels form a
// sequence-lock tree in host memory; the bottom NMPLevels levels live in
// NMP partitions served by flat-combining NMP cores. Host-NMP boundary
// synchronization uses the parent-sequence-number protocol; inserts whose
// splits cross the boundary run the LOCK_PATH / RESUME_INSERT exchange.
type Hybrid struct {
	m     *machine.Machine
	host  *hostCore
	trees []*nmpTree
	pubs  []*fc.PubList

	nmpLevels int
	window    int
}

// HybridBTreeConfig parameterizes the hybrid B+ tree.
type HybridBTreeConfig struct {
	// NMPLevels is the number of bottom tree levels pushed to NMP
	// partitions; the host-managed remainder is sized to fit the LLC.
	NMPLevels int
	// Window is the in-flight NMP call budget per host thread for
	// ApplyBatch (1 = blocking behaviour).
	Window int
}

// NewHybrid creates the structure; Build must run before Start.
func NewHybrid(m *machine.Machine, cfg HybridBTreeConfig) *Hybrid {
	if cfg.NMPLevels <= 0 {
		panic("btree: NMPLevels must be positive")
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	parts := m.Cfg.Mem.NMPVaults
	t := &Hybrid{
		m:         m,
		host:      newHostCore(m, cfg.NMPLevels),
		nmpLevels: cfg.NMPLevels,
		window:    cfg.Window,
	}
	slots := m.Cfg.Mem.HostCores * cfg.Window
	for p := 0; p < parts; p++ {
		t.trees = append(t.trees, newNMPTree(cfg.NMPLevels, m.Mem.NMPAlloc[p]))
		t.pubs = append(t.pubs, fc.NewPubList(m, p, slots))
	}
	return t
}

// Build bulk-loads pairs (§3.4: "the initial B+ tree is constructed over
// an existing database table"), pushing the bottom NMPLevels levels down
// into partition memory and tagging boundary pointers with partition IDs.
func (t *Hybrid) Build(pairs []KV, fill int) {
	hooks := hybridHooks(t.m.Mem.HostAlloc, t.m.Mem.NMPAlloc, t.nmpLevels, fill, len(dedupCount(pairs)))
	root, height := bulkBuild(t.m.Mem.RAM, pairs, fill, hooks)
	t.host.setRoot(root, height)
}

// dedupCount returns pairs deduplicated by key (build sizing must match
// bulkBuild's dedup).
func dedupCount(pairs []KV) []KV {
	seen := make(map[uint32]bool, len(pairs))
	out := pairs[:0:0]
	for _, p := range pairs {
		if !seen[p.Key] {
			seen[p.Key] = true
			out = append(out, p)
		}
	}
	return out
}

// Start spawns the NMP combiner daemons. Call once before Machine.Run.
func (t *Hybrid) Start() {
	for p := range t.trees {
		tree := t.trees[p]
		pub := t.pubs[p]
		t.m.SpawnNMP(p, func(c *machine.Ctx) { fc.Serve(c, pub, tree.handler()) })
	}
}

// route performs the host-side traversal and derives the offload target:
// partition, begin-NMP-traversal node and the offloaded parent sequence
// number (Listing 4 lines 4-23).
func (t *Hybrid) route(c *machine.Ctx, key uint32) (p pathInfo, part int, begin uint32, ok bool) {
	p, ok = t.host.descend(c, key)
	if !ok {
		return p, 0, 0, false
	}
	child, _, ok := t.host.childOf(c, &p, key)
	if !ok {
		return p, 0, 0, false
	}
	begin, part = untag(child)
	return p, part, begin, true
}

// Apply implements kv.Store with blocking NMP calls.
func (t *Hybrid) Apply(c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	slot := thread * t.window
	for attempt := uint64(0); ; attempt++ {
		c.Step(attempt * 8)
		p, part, begin, ok := t.route(c, op.Key)
		if !ok {
			continue
		}
		req := fc.Request{Key: op.Key, Value: op.Value, NMPPtr: begin, Aux: p.seqs[t.nmpLevels]}
		switch op.Kind {
		case kv.Read:
			req.Op = fc.OpRead
		case kv.Update:
			req.Op = fc.OpUpdate
		case kv.Insert:
			req.Op = fc.OpInsert
		case kv.Remove:
			req.Op = fc.OpRemove
		default:
			panic("btree: unknown op kind")
		}
		resp := t.pubs[part].Call(c, slot, req)
		if resp.Retry {
			continue
		}
		if op.Kind != kv.Insert || !resp.LockPath {
			return resp.Value, resp.Success
		}
		// LOCK_PATH: lock the host-side path and resume the insert
		// (Listing 4 lines 26-43).
		ls, _, ok := t.host.lockPath(c, &p)
		if !ok {
			t.pubs[part].Call(c, slot, fc.Request{Op: fc.OpUnlockPath})
			continue
		}
		resume := t.pubs[part].Call(c, slot, fc.Request{Op: fc.OpResumeInsert})
		if !resume.Success {
			panic("btree: RESUME_INSERT failed")
		}
		t.host.insertChain(c, &p, t.nmpLevels, resume.Value, taggedPtr(resume.Ptr, part), &ls)
		t.host.unlock(c, ls)
		return 0, true
	}
}

// batchOp tracks one in-flight non-blocking operation's phase.
type batchOp struct {
	op   kv.Op
	p    pathInfo
	part int
	// phase: 0 = initial request in flight, 1 = RESUME_INSERT in flight
	// (host locks held), 2 = UNLOCK_PATH in flight (restart after ack).
	phase int
	ls    lockSet
}

// ApplyBatch implements kv.AsyncStore: non-blocking NMP calls (§3.5).
// While any insert of this thread holds host-side locks, new traversals
// are deferred: a descend could otherwise spin on the thread's own locks,
// which would deadlock a single actor.
func (t *Hybrid) ApplyBatch(c *machine.Ctx, thread int, ops []kv.Op) int {
	w := fc.NewWindow(thread, t.window, t.pubs)
	succeeded := 0
	locksHeld := 0
	var deferred []*batchOp

	issue := func(a *batchOp) {
		for {
			p, part, begin, ok := t.route(c, a.op.Key)
			if !ok {
				c.Step(16)
				continue
			}
			a.p, a.part, a.phase = p, part, 0
			req := fc.Request{Key: a.op.Key, Value: a.op.Value, NMPPtr: begin, Aux: p.seqs[t.nmpLevels]}
			switch a.op.Kind {
			case kv.Read:
				req.Op = fc.OpRead
			case kv.Update:
				req.Op = fc.OpUpdate
			case kv.Insert:
				req.Op = fc.OpInsert
			case kv.Remove:
				req.Op = fc.OpRemove
			}
			w.Post(c, part, req, a)
			return
		}
	}
	reissue := func(a *batchOp) {
		if locksHeld > 0 {
			deferred = append(deferred, a)
		} else {
			issue(a)
		}
	}
	harvest := func() {
		tag, resp, pos := w.Harvest(c)
		a := tag.(*batchOp)
		switch a.phase {
		case 1: // RESUME_INSERT completed
			if !resp.Success {
				panic("btree: RESUME_INSERT failed")
			}
			t.host.insertChain(c, &a.p, t.nmpLevels, resp.Value, taggedPtr(resp.Ptr, a.part), &a.ls)
			t.host.unlock(c, a.ls)
			locksHeld--
			succeeded++
			return
		case 2: // UNLOCK_PATH acknowledged: restart the whole insert
			reissue(a)
			return
		}
		if resp.Retry {
			reissue(a)
			return
		}
		if a.op.Kind == kv.Insert && resp.LockPath {
			ls, _, ok := t.host.lockPath(c, &a.p)
			if !ok {
				a.phase = 2
				w.PostAt(c, pos, a.part, fc.Request{Op: fc.OpUnlockPath}, a)
				return
			}
			a.ls = ls
			a.phase = 1
			locksHeld++
			w.PostAt(c, pos, a.part, fc.Request{Op: fc.OpResumeInsert}, a)
			return
		}
		if resp.Success {
			succeeded++
		}
	}

	next := 0
	for next < len(ops) || !w.Empty() || len(deferred) > 0 {
		if locksHeld == 0 && len(deferred) > 0 && !w.Full() {
			a := deferred[0]
			deferred = deferred[1:]
			issue(a)
			continue
		}
		if locksHeld == 0 && next < len(ops) && !w.Full() {
			a := &batchOp{op: ops[next]}
			next++
			issue(a)
			continue
		}
		harvest()
	}
	return succeeded
}

// Dump returns live pairs in key order (untimed).
func (t *Hybrid) Dump() []KV { return dumpTree(t.m, t.host, t.trees, t.nmpLevels) }

// CheckInvariants validates host and NMP structural invariants, partition
// placement, and boundary-pointer tags (untimed).
func (t *Hybrid) CheckInvariants() error { return checkTree(t.m, t.host, t.trees, t.nmpLevels) }

// Delays aggregates offload delay instrumentation across partitions.
func (t *Hybrid) Delays() fc.Delays {
	var d fc.Delays
	for _, p := range t.pubs {
		d.Add(p.Delays)
	}
	return d
}

var (
	_ kv.Store      = (*Hybrid)(nil)
	_ kv.AsyncStore = (*Hybrid)(nil)
)

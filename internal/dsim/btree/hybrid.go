package btree

import (
	"fmt"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/offload"
	"hybrids/internal/hds"
	"hybrids/internal/metrics"
	"hybrids/internal/sim/machine"
)

// Hybrid is the paper's hybrid B+ tree (§3.4): the top levels form a
// sequence-lock tree in host memory; the bottom NMPLevels levels live in
// NMP partitions served by flat-combining NMP cores. Host-NMP boundary
// synchronization uses the parent-sequence-number protocol; inserts whose
// splits cross the boundary run the LOCK_PATH / RESUME_INSERT exchange.
type Hybrid struct {
	m     *machine.Machine
	host  *hostCore
	trees []*nmpTree
	rt    *offload.Runtime

	split boundary.Split
	fill  int
}

// HybridBTreeConfig parameterizes the hybrid B+ tree.
type HybridBTreeConfig struct {
	// Split is the host/NMP boundary: Split.NMP bottom tree levels are
	// pushed to NMP partitions, the host-managed remainder is sized to
	// fit the LLC. The tree's total height follows from fan-out, so
	// Split.Total is 0 (derived).
	Split boundary.Split
	// Window is the in-flight NMP call budget per host thread for
	// ApplyBatch (1 = blocking behaviour).
	Window int
}

// NewHybrid creates the structure; Build must run before Start.
func NewHybrid(m *machine.Machine, cfg HybridBTreeConfig) *Hybrid {
	if cfg.Split.NMP <= 0 || cfg.Split.Total != 0 {
		panic("btree: split must place >= 1 NMP level and derive the total from fan-out")
	}
	t := &Hybrid{
		m:  m,
		rt: offload.New(m, offload.Config{Window: cfg.Window}),
	}
	t.layout(cfg.Split)
	return t
}

// layout (re)creates the host core and empty per-partition NMP trees at
// split, from fresh allocations.
func (t *Hybrid) layout(split boundary.Split) {
	t.host = newHostCore(t.m, split.NMP)
	t.trees = t.trees[:0]
	for p := 0; p < t.m.Cfg.Mem.NMPVaults; p++ {
		t.trees = append(t.trees, newNMPTree(split.NMP, t.m.Mem.NMPAlloc[p]))
	}
	t.split = split
}

// Split returns the current host/NMP boundary.
func (t *Hybrid) Split() boundary.Split { return t.split }

// Rebalance moves the host/NMP boundary to next: a drained-epoch
// transition executed at quiescence (no requests posted or in flight).
// Live pairs are dumped, the tree is rebuilt at the new split with the
// original bulk-load fill (the old tree's bump-allocated memory is
// abandoned), and the running combiner daemons are retargeted through
// the offload runtime's handler indirection.
func (t *Hybrid) Rebalance(next boundary.Split) error {
	if next.Total != 0 {
		return fmt.Errorf("btree: total height is derived from fan-out (got total %d)", next.Total)
	}
	if next.NMP < 1 {
		return fmt.Errorf("btree: NMP levels must be >= 1 (got %d)", next.NMP)
	}
	if t.fill == 0 {
		return fmt.Errorf("btree: rebalance requires a prior Build")
	}
	if next == t.split {
		return nil
	}
	pairs := t.Dump()
	fill := t.fill
	t.layout(next)
	t.Build(pairs, fill)
	for p := range t.trees {
		t.rt.Republish(p, t.trees[p].handler())
	}
	return nil
}

// Build bulk-loads pairs (§3.4: "the initial B+ tree is constructed over
// an existing database table"), pushing the bottom Split.NMP levels down
// into partition memory and tagging boundary pointers with partition IDs.
func (t *Hybrid) Build(pairs []KV, fill int) {
	hooks := hybridHooks(t.m.Mem.HostAlloc, t.m.Mem.NMPAlloc, t.split.NMP, fill, len(dedupCount(pairs)))
	root, height := bulkBuild(t.m.Mem.RAM, pairs, fill, hooks)
	t.host.setRoot(root, height)
	t.fill = fill
}

// dedupCount returns pairs deduplicated by key (build sizing must match
// bulkBuild's dedup).
func dedupCount(pairs []KV) []KV {
	seen := make(map[uint32]bool, len(pairs))
	out := pairs[:0:0]
	for _, p := range pairs {
		if !seen[p.Key] {
			seen[p.Key] = true
			out = append(out, p)
		}
	}
	return out
}

// Start spawns the NMP combiner daemons. Call once before Machine.Run.
func (t *Hybrid) Start() {
	for p := range t.trees {
		t.rt.Start(p, t.trees[p].handler())
	}
}

// route performs the host-side traversal and derives the offload target:
// partition, begin-NMP-traversal node and the offloaded parent sequence
// number (Listing 4 lines 4-23).
func (t *Hybrid) route(c *machine.Ctx, key uint32) (p pathInfo, part int, begin uint32, ok bool) {
	p, ok = t.host.descend(c, key)
	if !ok {
		return p, 0, 0, false
	}
	child, _, ok := t.host.childOf(c, &p, key)
	if !ok {
		return p, 0, 0, false
	}
	begin, part = untag(child)
	return p, part, begin, true
}

// btState tracks one operation's host-side path, locked-path state and
// protocol phase across the offload runtime's retry loop.
type btState struct {
	p    pathInfo
	part int
	// phase: 0 = initial request in flight, 1 = RESUME_INSERT in flight
	// (host locks held), 2 = UNLOCK_PATH in flight (restart after ack).
	phase int
	ls    lockSet
}

// btAdapter plugs the hybrid B+ tree protocol (§3.4) — parent sequence
// numbers plus the LOCK_PATH / RESUME_INSERT exchange — into the shared
// offload runtime.
type btAdapter struct{ t *Hybrid }

func (ad btAdapter) Begin(c *machine.Ctx, op kv.Op) btState { return btState{} }

func (ad btAdapter) Prepare(c *machine.Ctx, op kv.Op, st *btState, attempt int, batch bool) (fc.Request, int, hds.PrepareCtl, bool) {
	t := ad.t
	if batch {
		// Non-blocking issue: brief fixed backoff after a failed
		// optimistic descend.
		if attempt > 0 {
			c.Step(16)
		}
	} else {
		// Blocking call: linear backoff (a Step(0) yield on the first
		// attempt keeps same-cycle actors in FIFO order).
		c.Step(uint64(attempt) * 8)
	}
	p, part, begin, ok := t.route(c, op.Key)
	if !ok {
		return fc.Request{}, 0, hds.PrepareRestart, false
	}
	st.p, st.part, st.phase = p, part, 0
	req := fc.Request{Key: op.Key, Value: op.Value, NMPPtr: begin, Aux: p.seqs[t.split.NMP]}
	switch op.Kind {
	case kv.Read:
		req.Op = fc.OpRead
	case kv.Update:
		req.Op = fc.OpUpdate
	case kv.Insert:
		req.Op = fc.OpInsert
	case kv.Remove:
		req.Op = fc.OpRemove
	default:
		panic("btree: unknown op kind")
	}
	return req, part, hds.PrepareOffload, false
}

func (ad btAdapter) Finish(c *machine.Ctx, op kv.Op, st *btState, resp fc.Response) hds.Verdict[fc.Request] {
	t := ad.t
	switch st.phase {
	case 1: // RESUME_INSERT completed
		if !resp.Success {
			panic("btree: RESUME_INSERT failed")
		}
		t.host.insertChain(c, &st.p, t.split.NMP, resp.Value, taggedPtr(resp.Ptr, st.part), &st.ls)
		t.host.unlock(c, st.ls)
		return hds.Verdict[fc.Request]{Kind: hds.OpDone, OK: true, Gate: hds.GateRelease}
	case 2: // UNLOCK_PATH acknowledged: restart the whole insert
		return hds.Verdict[fc.Request]{Kind: hds.OpRetry}
	}
	if resp.Retry {
		return hds.Verdict[fc.Request]{Kind: hds.OpRetry}
	}
	if op.Kind == kv.Insert && resp.LockPath {
		// LOCK_PATH: lock the host-side path and resume the insert
		// (Listing 4 lines 26-43).
		ls, _, ok := t.host.lockPath(c, &st.p)
		if !ok {
			st.phase = 2
			return hds.Verdict[fc.Request]{Kind: hds.OpFollowUp, Next: fc.Request{Op: fc.OpUnlockPath}}
		}
		st.ls = ls
		st.phase = 1
		return hds.Verdict[fc.Request]{
			Kind: hds.OpFollowUp,
			Next: fc.Request{Op: fc.OpResumeInsert},
			Gate: hds.GateAcquire,
		}
	}
	return hds.Verdict[fc.Request]{Kind: hds.OpDone, OK: resp.Success, Value: uint64(resp.Value)}
}

// Apply implements kv.Store with blocking NMP calls.
func (t *Hybrid) Apply(c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	return offload.Apply(t.rt, btAdapter{t}, c, thread, op)
}

// ApplyBatch implements kv.AsyncStore: non-blocking NMP calls (§3.5).
// While any insert of this thread holds host-side locks, the runtime's
// deferral gate pauses new traversals: a descend could otherwise spin on
// the thread's own locks, which would deadlock a single actor.
func (t *Hybrid) ApplyBatch(c *machine.Ctx, thread int, ops []kv.Op) int {
	return offload.ApplyBatch(t.rt, btAdapter{t}, c, thread, ops)
}

// Dump returns live pairs in key order (untimed).
func (t *Hybrid) Dump() []KV { return dumpTree(t.m, t.host, t.trees, t.split.NMP) }

// CheckInvariants validates host and NMP structural invariants, partition
// placement, and boundary-pointer tags (untimed).
func (t *Hybrid) CheckInvariants() error { return checkTree(t.m, t.host, t.trees, t.split.NMP) }

// Delays aggregates offload delay instrumentation across partitions.
func (t *Hybrid) Delays() fc.Delays { return t.rt.Delays() }

// Metrics returns the owning machine's unified instrumentation registry.
func (t *Hybrid) Metrics() *metrics.Registry { return t.m.Metrics }

var (
	_ kv.Store      = (*Hybrid)(nil)
	_ kv.AsyncStore = (*Hybrid)(nil)
)

package btree

import (
	"fmt"

	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

func errf(format string, args ...any) error { return fmt.Errorf("btree: "+format, args...) }

// hostCore implements the sequence-lock B+ tree machinery shared by the
// host-only baseline and the host-managed portion of the hybrid tree
// (Listing 4). Nodes are protected by per-node sequence numbers: writers
// lock by CAS-ing the recorded (even) number to odd and unlock by a second
// increment; traversals record numbers and restart when validation fails.
// The root pointer and height live in a header block with its own
// sequence lock so root splits are safe.
type hostCore struct {
	m      *machine.Machine
	alloc  *memsys.Allocator
	header uint32
	// bottom is the lowest host-managed level: 0 for the host-only tree,
	// the NMP level count for the hybrid tree.
	bottom int
}

func newHostCore(m *machine.Machine, bottom int) *hostCore {
	t := &hostCore{m: m, alloc: m.Mem.HostAlloc, bottom: bottom}
	t.header = uint32(t.alloc.Alloc(NodeBytes, NodeBytes))
	return t
}

// setRoot installs the built tree (untimed, load phase).
func (t *hostCore) setRoot(root uint32, height int) {
	ram := t.m.Mem.RAM
	ram.Store32(memsys.Addr(t.header)+hdrSeq, 0)
	ram.Store32(memsys.Addr(t.header)+hdrHeight, uint32(height))
	ram.Store32(memsys.Addr(t.header)+hdrRoot, root)
}

func (t *hostCore) rootInfo(ram *memsys.RAM) (root uint32, height int) {
	return ram.Load32(memsys.Addr(t.header) + hdrRoot), int(ram.Load32(memsys.Addr(t.header) + hdrHeight))
}

// waitEven spins (in virtual time) until node's sequence number is even,
// returning it. Writers hold locks only for bounded non-blocking work, so
// the spin always terminates.
func (t *hostCore) waitEven(c *machine.Ctx, node uint32) uint32 {
	for {
		s := c.Read32(syncAddr(node))
		if s%2 == 0 {
			return s
		}
		c.Step(4)
	}
}

// pathInfo is one traversal's record: nodes, their sequence numbers at
// visit time, and each node's child slot toward the key (Listing 4's
// path[] and local_seqnum[]). Entries are indexed by level; only levels
// bottom..height-1 are populated.
type pathInfo struct {
	nodes []uint32
	seqs  []uint32
	idxs  []int // child slot chosen at each level (toward level-1)
	hseq  uint32
}

// descend traverses from the root down to t.bottom following key,
// validating with sequence numbers (a failed validation restarts from the
// root; the paper climbs to the lowest unchanged ancestor, an optimization
// with identical semantics). ok=false means the caller must retry.
func (t *hostCore) descend(c *machine.Ctx, key uint32) (p pathInfo, ok bool) {
	hseq := c.Read32(memsys.Addr(t.header) + hdrSeq)
	if hseq%2 != 0 {
		c.Step(8)
		return p, false
	}
	root := c.Read32(memsys.Addr(t.header) + hdrRoot)
	height := int(c.Read32(memsys.Addr(t.header) + hdrHeight))
	if c.Read32(memsys.Addr(t.header)+hdrSeq) != hseq {
		return p, false
	}
	p = pathInfo{
		nodes: make([]uint32, height),
		seqs:  make([]uint32, height),
		idxs:  make([]int, height),
		hseq:  hseq,
	}
	level := height - 1
	curr := root
	currSeq := t.waitEven(c, curr)
	p.nodes[level], p.seqs[level] = curr, currSeq
	for level > t.bottom {
		slots := metaSlots(c.Read32(metaAddr(curr)))
		idx := findChildIdx(c, curr, slots, key)
		child := c.Read32(ptrAddr(curr, idx))
		childSeq := t.waitEven(c, child)
		if c.Read32(syncAddr(curr)) != currSeq {
			return p, false
		}
		p.idxs[level] = idx
		level--
		curr, currSeq = child, childSeq
		p.nodes[level], p.seqs[level] = curr, currSeq
	}
	return p, true
}

// childOf re-derives the child pointer below the bottom node (the hybrid
// tree's begin-NMP-traversal pointer) and validates the node was unchanged.
func (t *hostCore) childOf(c *machine.Ctx, p *pathInfo, key uint32) (ptr uint32, idx int, ok bool) {
	node := p.nodes[t.bottom]
	slots := metaSlots(c.Read32(metaAddr(node)))
	idx = findChildIdx(c, node, slots, key)
	ptr = c.Read32(ptrAddr(node, idx))
	if c.Read32(syncAddr(node)) != p.seqs[t.bottom] {
		return 0, 0, false
	}
	p.idxs[t.bottom] = idx
	return ptr, idx, true
}

// lockSet tracks every node locked (odd seqnum) by an operation, plus
// whether the header is locked, so unlock() can release them all.
type lockSet struct {
	nodes     []uint32
	hdrLocked bool
}

// lockPath locks path nodes bottom-up from t.bottom until the first
// non-full node (Listing 4 lines 26-35). Each lock is a CAS from the
// recorded sequence number, so it doubles as validation. When every path
// node is full it also locks the header (root split). On failure
// everything already locked is released and ok=false.
func (t *hostCore) lockPath(c *machine.Ctx, p *pathInfo) (ls lockSet, top int, ok bool) {
	height := len(p.nodes)
	for l := t.bottom; l < height; l++ {
		if !c.CAS32(syncAddr(p.nodes[l]), p.seqs[l], p.seqs[l]+1) {
			t.unlock(c, ls)
			return lockSet{}, 0, false
		}
		ls.nodes = append(ls.nodes, p.nodes[l])
		maxSlots := InnerMax
		if l == 0 {
			maxSlots = LeafMax
		}
		if metaSlots(c.Read32(metaAddr(p.nodes[l]))) < maxSlots {
			return ls, l, true
		}
	}
	if !c.CAS32(memsys.Addr(t.header)+hdrSeq, p.hseq, p.hseq+1) {
		t.unlock(c, ls)
		return lockSet{}, 0, false
	}
	ls.hdrLocked = true
	return ls, height, true
}

// unlock releases every lock by a second increment (never by rollback:
// rolled-back numbers could ABA against concurrent validations).
func (t *hostCore) unlock(c *machine.Ctx, ls lockSet) {
	for _, n := range ls.nodes {
		c.AtomicAdd32(syncAddr(n), 1)
	}
	if ls.hdrLocked {
		c.AtomicAdd32(memsys.Addr(t.header)+hdrSeq, 1)
	}
}

// insertChain inserts the entry (key, child-pointer) into the locked inner
// node at startLevel, splitting upward as needed; every node it touches is
// already in ls (lockPath locked through the first non-full node, or the
// header for a root split). Newly split-off siblings are added to ls.
func (t *hostCore) insertChain(c *machine.Ctx, p *pathInfo, startLevel int, key, ptr uint32, ls *lockSet) {
	entKey, entPtr := key, ptr
	level := startLevel
	for {
		if level == len(p.nodes) {
			// Root split: grow the tree under the header lock.
			oldRoot := p.nodes[level-1]
			newRoot := allocNode(c, t.alloc, level, 2, 0)
			c.Write32(ptrAddr(newRoot, 0), oldRoot)
			c.Write32(ptrAddr(newRoot, 1), entPtr)
			c.Write32(keyAddr(newRoot, 0), entKey)
			c.Write32(memsys.Addr(t.header)+hdrRoot, newRoot)
			c.Write32(memsys.Addr(t.header)+hdrHeight, uint32(level+1))
			return
		}
		node := p.nodes[level]
		idx := p.idxs[level]
		if metaSlots(c.Read32(metaAddr(node))) < InnerMax {
			innerInsertAt(c, node, idx, entKey, entPtr)
			return
		}
		right, div := splitInnerInsert(c, t.alloc, node, idx, entKey, entPtr)
		ls.nodes = append(ls.nodes, right)
		entKey, entPtr = div, right
		level++
	}
}

// innerInsertAt inserts divider d and right-child ptr after child slot idx
// of a non-full inner node: d lands at key slot idx, ptr at child slot
// idx+1 (timed).
func innerInsertAt(c *machine.Ctx, node uint32, idx int, d, ptr uint32) {
	meta := c.Read32(metaAddr(node))
	slots := metaSlots(meta)
	for j := slots - 1; j > idx; j-- {
		c.Write32(ptrAddr(node, j+1), c.Read32(ptrAddr(node, j)))
	}
	for j := slots - 2; j >= idx; j-- {
		c.Write32(keyAddr(node, j+1), c.Read32(keyAddr(node, j)))
	}
	c.Write32(keyAddr(node, idx), d)
	c.Write32(ptrAddr(node, idx+1), ptr)
	c.Write32(metaAddr(node), packMeta(metaLevel(meta), slots+1))
}

// splitInnerInsert splits a full inner node while inserting (d, ptr) after
// child idx. The new right sibling inherits the original's (locked)
// sequence word — footnote 3's replication rule — and the divider that
// must move up is returned.
func splitInnerInsert(c *machine.Ctx, alloc *memsys.Allocator, node uint32, idx int, d, ptr uint32) (right, divider uint32) {
	meta := c.Read32(metaAddr(node))
	level := metaLevel(meta)
	slots := metaSlots(meta) // == InnerMax
	// Combined entry arrays with the new entry spliced in.
	keys := make([]uint32, 0, InnerMax)
	ptrs := make([]uint32, 0, InnerMax+1)
	for j := 0; j < slots; j++ {
		ptrs = append(ptrs, c.Read32(ptrAddr(node, j)))
	}
	for j := 0; j < slots-1; j++ {
		keys = append(keys, c.Read32(keyAddr(node, j)))
	}
	keys = insertAt(keys, idx, d)
	ptrs = insertAt(ptrs, idx+1, ptr)
	// Left keeps half the children; the key between halves moves up.
	leftN := (len(ptrs) + 1) / 2
	divider = keys[leftN-1]
	right = allocNode(c, alloc, level, len(ptrs)-leftN, c.Read32(syncAddr(node)))
	for j, p := range ptrs[leftN:] {
		c.Write32(ptrAddr(right, j), p)
	}
	for j, k := range keys[leftN:] {
		c.Write32(keyAddr(right, j), k)
	}
	// Shrink the left node in place.
	for j := 0; j < leftN; j++ {
		c.Write32(ptrAddr(node, j), ptrs[j])
	}
	for j := 0; j < leftN-1; j++ {
		c.Write32(keyAddr(node, j), keys[j])
	}
	c.Write32(metaAddr(node), packMeta(level, leftN))
	return right, divider
}

// leafInsertAt inserts (key, value) into a non-full leaf in sorted
// position (timed). Returns false if the key is already present.
func leafInsertAt(c *machine.Ctx, leaf uint32, key, value uint32) bool {
	meta := c.Read32(metaAddr(leaf))
	slots := metaSlots(meta)
	pos := 0
	for pos < slots {
		k := c.Read32(keyAddr(leaf, pos))
		if k == key {
			return false
		}
		if k > key {
			break
		}
		pos++
	}
	for j := slots - 1; j >= pos; j-- {
		c.Write32(keyAddr(leaf, j+1), c.Read32(keyAddr(leaf, j)))
		c.Write32(ptrAddr(leaf, j+1), c.Read32(ptrAddr(leaf, j)))
	}
	c.Write32(keyAddr(leaf, pos), key)
	c.Write32(ptrAddr(leaf, pos), value)
	c.Write32(metaAddr(leaf), packMeta(0, slots+1))
	return true
}

// splitLeafInsert splits a full leaf while inserting (key, value),
// returning the new right leaf and the divider (greatest key remaining in
// the left leaf). The right leaf inherits the original's sequence word.
func splitLeafInsert(c *machine.Ctx, alloc *memsys.Allocator, leaf uint32, key, value uint32) (right, divider uint32) {
	slots := metaSlots(c.Read32(metaAddr(leaf))) // == LeafMax
	keys := make([]uint32, 0, LeafMax+1)
	vals := make([]uint32, 0, LeafMax+1)
	pos := 0
	for j := 0; j < slots; j++ {
		k := c.Read32(keyAddr(leaf, j))
		if k < key {
			pos = j + 1
		}
		keys = append(keys, k)
		vals = append(vals, c.Read32(ptrAddr(leaf, j)))
	}
	keys = insertAt(keys, pos, key)
	vals = insertAt(vals, pos, value)
	leftN := (len(keys) + 1) / 2
	divider = keys[leftN-1]
	right = allocNode(c, alloc, 0, len(keys)-leftN, c.Read32(syncAddr(leaf)))
	for j := leftN; j < len(keys); j++ {
		c.Write32(keyAddr(right, j-leftN), keys[j])
		c.Write32(ptrAddr(right, j-leftN), vals[j])
	}
	for j := 0; j < leftN; j++ {
		c.Write32(keyAddr(leaf, j), keys[j])
		c.Write32(ptrAddr(leaf, j), vals[j])
	}
	c.Write32(metaAddr(leaf), packMeta(0, leftN))
	return right, divider
}

func insertAt(s []uint32, i int, v uint32) []uint32 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

package btree

import (
	"hybrids/internal/dsim/kv"
	"hybrids/internal/metrics"
	"hybrids/internal/sim/machine"
)

// HostOnly is the paper's non-NMP baseline B+ tree: the whole tree lives
// in host main memory and host threads synchronize with sequence locks,
// exactly like the host-managed portion of the hybrid tree (§5.1: "the
// host-only B+ tree uses sequence locks for concurrency").
type HostOnly struct {
	m    *machine.Machine
	core *hostCore
}

// NewHostOnly creates an empty tree holder; call Build before use.
func NewHostOnly(m *machine.Machine) *HostOnly {
	return &HostOnly{m: m, core: newHostCore(m, 0)}
}

// Build bulk-loads pairs with the given per-node fill (the paper inserts
// in sorted order, yielding ~half-full nodes; fill 8 of 14/15 mirrors
// that).
func (t *HostOnly) Build(pairs []KV, fill int) {
	root, height := bulkBuild(t.m.Mem.RAM, pairs, fill, hostOnlyHooks(t.m.Mem.HostAlloc))
	t.core.setRoot(root, height)
}

// Apply implements kv.Store.
func (t *HostOnly) Apply(c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	for attempt := uint64(0); ; attempt++ {
		c.Step(attempt * 8) // deterministic backoff between retries
		p, ok := t.core.descend(c, op.Key)
		if !ok {
			continue
		}
		leaf := p.nodes[0]
		switch op.Kind {
		case kv.Read:
			slots := metaSlots(c.Read32(metaAddr(leaf)))
			i := findLeafSlot(c, leaf, slots, op.Key)
			var v uint32
			if i >= 0 {
				v = c.Read32(ptrAddr(leaf, i))
			}
			// Seqlock read validation: retry if the leaf changed.
			if c.Read32(syncAddr(leaf)) != p.seqs[0] {
				continue
			}
			return v, i >= 0
		case kv.Update:
			if !c.CAS32(syncAddr(leaf), p.seqs[0], p.seqs[0]+1) {
				continue
			}
			slots := metaSlots(c.Read32(metaAddr(leaf)))
			i := findLeafSlot(c, leaf, slots, op.Key)
			if i >= 0 {
				c.Write32(ptrAddr(leaf, i), op.Value)
			}
			c.AtomicAdd32(syncAddr(leaf), 1)
			return 0, i >= 0
		case kv.Remove:
			if !c.CAS32(syncAddr(leaf), p.seqs[0], p.seqs[0]+1) {
				continue
			}
			slots := metaSlots(c.Read32(metaAddr(leaf)))
			i := findLeafSlot(c, leaf, slots, op.Key)
			if i >= 0 {
				for j := i; j < slots-1; j++ {
					c.Write32(keyAddr(leaf, j), c.Read32(keyAddr(leaf, j+1)))
					c.Write32(ptrAddr(leaf, j), c.Read32(ptrAddr(leaf, j+1)))
				}
				c.Write32(metaAddr(leaf), packMeta(0, slots-1))
			}
			c.AtomicAdd32(syncAddr(leaf), 1)
			return 0, i >= 0
		case kv.Insert:
			// Presence check under seqlock validation, then lock the
			// path and perform the (possibly splitting) insert.
			slots := metaSlots(c.Read32(metaAddr(leaf)))
			present := findLeafSlot(c, leaf, slots, op.Key) >= 0
			if c.Read32(syncAddr(leaf)) != p.seqs[0] {
				continue
			}
			if present {
				return 0, false
			}
			ls, top, ok := t.core.lockPath(c, &p)
			if !ok {
				continue
			}
			if top == 0 {
				leafInsertAt(c, leaf, op.Key, op.Value)
			} else {
				right, div := splitLeafInsert(c, t.m.Mem.HostAlloc, leaf, op.Key, op.Value)
				ls.nodes = append(ls.nodes, right)
				t.core.insertChain(c, &p, 1, div, right, &ls)
			}
			t.core.unlock(c, ls)
			return 0, true
		default:
			panic("btree: unknown op kind")
		}
	}
}

// Dump returns the live key-value pairs in key order (untimed).
func (t *HostOnly) Dump() []KV { return dumpTree(t.m, t.core, nil, 0) }

// CheckInvariants validates structural invariants (untimed).
func (t *HostOnly) CheckInvariants() error { return checkTree(t.m, t.core, nil, 0) }

var _ kv.Store = (*HostOnly)(nil)

// Metrics returns the owning machine's unified instrumentation registry.
func (t *HostOnly) Metrics() *metrics.Registry { return t.m.Metrics }

// Package btree implements the B+ tree variants evaluated in the HybriDS
// paper on the simulated NMP machine:
//
//   - HostOnly: a sequence-lock (optimistic) concurrent B+ tree operated
//     entirely by host cores — the paper's non-NMP baseline, using the
//     same synchronization as the hybrid tree's host-managed portion.
//   - Hybrid: the paper's contribution (§3.4): seqlock host-managed upper
//     levels over per-partition NMP-managed lower levels, coordinated
//     through the parent-sequence-number protocol and the
//     LOCK_PATH / RESUME_INSERT / UNLOCK_PATH message exchange, with
//     blocking and non-blocking NMP calls.
//
// Node geometry matches the paper: 128-byte nodes (one cache block), up to
// 14 key-value pairs per leaf and up to 15 children per inner node.
// Deletions use the relaxed-occupancy discipline of [36, 49, 57, 69]:
// leaves may underflow (down to empty) and nodes are never merged.
package btree

import (
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// Geometry (Table: 128 B nodes as in in-memory OLTP systems [54, 67]).
const (
	// NodeBytes is the node footprint: exactly one 128 B cache block.
	NodeBytes = 128
	// LeafMax is the key-value capacity of a leaf.
	LeafMax = 14
	// InnerMax is the child capacity of an inner node (InnerMax-1
	// dividing keys).
	InnerMax = 15
)

// Node layout (byte offsets). The same layout serves both portions:
// offSync is the seqlock sequence number host-side and the parent sequence
// number NMP-side (Listing 3); offLock is used only NMP-side.
const (
	offSync = 0  // uint32: seqnum (host) / parent_seqnum (NMP)
	offMeta = 4  // uint32: level<<16 | slotuse
	offLock = 8  // uint32: NMP-side node lock (0/1)
	offKeys = 12 // uint32 keys[14]
	offPtrs = 68 // uint32 ptrs[15] (leaf: values[14])
)

// Child pointers stored in the bottom host-managed level reference NMP
// nodes; since nodes are 128-byte aligned, the low bits carry the owning
// NMP partition ID (§3.4: "we exploit unused least significant bits of the
// NMP-side node pointer to store the corresponding NMP partition's ID").
const partMask = NodeBytes - 1

func taggedPtr(node uint32, part int) uint32 { return node | uint32(part) }
func untag(p uint32) (node uint32, part int) { return p &^ partMask, int(p & partMask) }

func syncAddr(n uint32) memsys.Addr       { return memsys.Addr(n) + offSync }
func metaAddr(n uint32) memsys.Addr       { return memsys.Addr(n) + offMeta }
func lockAddr(n uint32) memsys.Addr       { return memsys.Addr(n) + offLock }
func keyAddr(n uint32, i int) memsys.Addr { return memsys.Addr(n) + offKeys + memsys.Addr(4*i) }
func ptrAddr(n uint32, i int) memsys.Addr { return memsys.Addr(n) + offPtrs + memsys.Addr(4*i) }

func packMeta(level, slotuse int) uint32 { return uint32(level)<<16 | uint32(slotuse) }
func metaLevel(m uint32) int             { return int(m >> 16) }
func metaSlots(m uint32) int             { return int(m & 0xffff) }

// Tree header layout: a block holding the root pointer and height,
// protected by its own sequence lock so root splits are safe.
const (
	hdrSeq    = 0
	hdrHeight = 4
	hdrRoot   = 8
)

// allocNode carves a fresh zeroed node with timed initialization of its
// sync/meta words (operation path).
func allocNode(c *machine.Ctx, al *memsys.Allocator, level, slotuse int, syncVal uint32) uint32 {
	n := uint32(al.Alloc(NodeBytes, NodeBytes))
	c.Write32(syncAddr(n), syncVal)
	c.Write32(metaAddr(n), packMeta(level, slotuse))
	c.Write32(lockAddr(n), 0)
	return n
}

// buildNode is allocNode's untimed load-phase counterpart.
func buildNode(ram *memsys.RAM, al *memsys.Allocator, level, slotuse int) uint32 {
	n := uint32(al.Alloc(NodeBytes, NodeBytes))
	ram.Store32(syncAddr(n), 0)
	ram.Store32(metaAddr(n), packMeta(level, slotuse))
	ram.Store32(lockAddr(n), 0)
	return n
}

// KV is a key-value pair produced by verification walks.
type KV struct {
	Key, Value uint32
}

// findChildIdx scans an inner node's dividing keys (timed) and returns the
// child slot for key: child i covers keys <= keys[i], the last child
// covers the remainder.
func findChildIdx(c *machine.Ctx, n uint32, slotuse int, key uint32) int {
	i := 0
	for i < slotuse-1 {
		if key <= c.Read32(keyAddr(n, i)) {
			break
		}
		i++
	}
	c.Step(uint64(i + 1)) // compare/branch work, charged once per node
	return i
}

// findLeafSlot scans a leaf (timed) for key, returning its slot or -1.
func findLeafSlot(c *machine.Ctx, n uint32, slotuse int, key uint32) int {
	for i := 0; i < slotuse; i++ {
		k := c.Read32(keyAddr(n, i))
		if k == key {
			c.Step(uint64(i + 1))
			return i
		}
		if k > key {
			c.Step(uint64(i + 1))
			return -1
		}
	}
	c.Step(uint64(slotuse))
	return -1
}

package btree

import (
	"hybrids/internal/radix"
	"hybrids/internal/sim/memsys"
)

// buildHooks let the hybrid tree steer node placement during bulk build.
type buildHooks struct {
	// allocFor picks the allocator for node idx (0-based, in key order)
	// of the given level.
	allocFor func(level, idx int) *memsys.Allocator
	// childTag returns the partition tag to OR into the pointer from a
	// level-(childLevel+1) node to child idx of childLevel (0 when the
	// child is host-side).
	childTag func(childLevel, childIdx int) uint32
}

// levelCounts returns the node count of every level for n records with the
// given fill, bottom-up, ending with a single root. A tree always has at
// least one (possibly empty) leaf.
func levelCounts(n, fill int) []int {
	counts := []int{(n + fill - 1) / fill}
	if counts[0] == 0 {
		counts[0] = 1
	}
	for counts[len(counts)-1] > 1 {
		c := counts[len(counts)-1]
		counts = append(counts, (c+fill-1)/fill)
	}
	return counts
}

// bulkBuild constructs a B+ tree from pairs (sorted and deduplicated
// internally) with `fill` entries per node, writing nodes untimed through
// hooks. It returns the root node and tree height (number of levels).
func bulkBuild(ram *memsys.RAM, pairs []KV, fill int, hooks buildHooks) (root uint32, height int) {
	if fill < 2 || fill > LeafMax {
		panic("btree: build fill must be in [2, LeafMax]")
	}
	sorted := append([]KV(nil), pairs...)
	radix.SortFunc(sorted, func(p KV) uint32 { return p.Key })
	uniq := sorted[:0]
	for i, p := range sorted {
		if i == 0 || p.Key != sorted[i-1].Key {
			uniq = append(uniq, p)
		}
	}

	// Leaves.
	type nodeInfo struct {
		addr    uint32
		lastKey uint32
	}
	var level []nodeInfo
	counts := levelCounts(len(uniq), fill)
	for i := 0; i < counts[0]; i++ {
		lo := i * fill
		hi := lo + fill
		if hi > len(uniq) {
			hi = len(uniq)
		}
		n := buildNode(ram, hooks.allocFor(0, i), 0, hi-lo)
		last := uint32(0)
		for j := lo; j < hi; j++ {
			ram.Store32(keyAddr(n, j-lo), uniq[j].Key)
			ram.Store32(ptrAddr(n, j-lo), uniq[j].Value)
			last = uniq[j].Key
		}
		level = append(level, nodeInfo{addr: n, lastKey: last})
	}

	// Inner levels.
	for lv := 1; lv < len(counts); lv++ {
		var next []nodeInfo
		for i := 0; i < counts[lv]; i++ {
			lo := i * fill
			hi := lo + fill
			if hi > len(level) {
				hi = len(level)
			}
			n := buildNode(ram, hooks.allocFor(lv, i), lv, hi-lo)
			for j := lo; j < hi; j++ {
				ptr := level[j].addr | hooks.childTag(lv-1, j)
				ram.Store32(ptrAddr(n, j-lo), ptr)
				if j > lo {
					// Divider between child j-1 and child j:
					// greatest key in child j-1's subtree.
					ram.Store32(keyAddr(n, j-lo-1), level[j-1].lastKey)
				}
			}
			next = append(next, nodeInfo{addr: n, lastKey: level[hi-1].lastKey})
		}
		level = next
	}
	return level[0].addr, len(counts)
}

// hostOnlyHooks places every node in host memory with no partition tags.
func hostOnlyHooks(alloc *memsys.Allocator) buildHooks {
	return buildHooks{
		allocFor: func(level, idx int) *memsys.Allocator { return alloc },
		childTag: func(childLevel, childIdx int) uint32 { return 0 },
	}
}

// hybridHooks places levels below nmpLevels in partition allocators and
// tags pointers that cross the host-NMP boundary. Partition assignment is
// by contiguous chunks of level-(nmpLevels-1) subtree roots (§3.4:
// boundaries "chosen based on the root's grandchildren", generalized to
// the NMP subtree roots).
func hybridHooks(hostAlloc *memsys.Allocator, partAllocs []*memsys.Allocator,
	nmpLevels, fill, nRecords int) buildHooks {
	counts := levelCounts(nRecords, fill)
	if len(counts) <= nmpLevels {
		panic("btree: tree not taller than NMP portion; lower NMPLevels or add records")
	}
	nSubtrees := counts[nmpLevels-1]
	parts := len(partAllocs)
	// partOf maps a level-(nmpLevels-1) subtree root index to a partition.
	partOf := func(subtree int) int {
		p := subtree * parts / nSubtrees
		if p >= parts {
			p = parts - 1
		}
		return p
	}
	// subtreeOf lifts a node index at any NMP level to its subtree root
	// index: each level groups children in consecutive chunks of fill.
	subtreeOf := func(level, idx int) int {
		for l := level; l < nmpLevels-1; l++ {
			idx /= fill
		}
		return idx
	}
	return buildHooks{
		allocFor: func(level, idx int) *memsys.Allocator {
			if level >= nmpLevels {
				return hostAlloc
			}
			return partAllocs[partOf(subtreeOf(level, idx))]
		},
		childTag: func(childLevel, childIdx int) uint32 {
			if childLevel != nmpLevels-1 {
				return 0
			}
			return uint32(partOf(childIdx))
		},
	}
}

package btree

import (
	"testing"

	"hybrids/internal/sim/machine"
)

// White-box tests for the split/insert helpers shared by the host-side
// seqlock tree and the NMP-side single-threaded tree.

// onHost runs body on a host actor and completes the machine.
func onHost(t *testing.T, body func(c *machine.Ctx, m *machine.Machine)) {
	t.Helper()
	m := testMachine()
	m.SpawnHost(0, "t", func(c *machine.Ctx) { body(c, m) })
	m.Run()
}

func leafWith(c *machine.Ctx, m *machine.Machine, keys ...uint32) uint32 {
	n := allocNode(c, m.Mem.HostAlloc, 0, len(keys), 0)
	for i, k := range keys {
		c.Write32(keyAddr(n, i), k)
		c.Write32(ptrAddr(n, i), k*10)
	}
	return n
}

func leafKeys(c *machine.Ctx, n uint32) []uint32 {
	slots := metaSlots(c.Read32(metaAddr(n)))
	out := make([]uint32, slots)
	for i := range out {
		out[i] = c.Read32(keyAddr(n, i))
	}
	return out
}

func TestLeafInsertAtKeepsSortedOrder(t *testing.T) {
	onHost(t, func(c *machine.Ctx, m *machine.Machine) {
		leaf := leafWith(c, m, 10, 20, 40)
		if !leafInsertAt(c, leaf, 30, 300) {
			t.Error("insert failed")
		}
		got := leafKeys(c, leaf)
		want := []uint32{10, 20, 30, 40}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("keys = %v", got)
			}
		}
		if leafInsertAt(c, leaf, 20, 1) {
			t.Error("duplicate insert succeeded")
		}
		// Values follow their keys.
		if c.Read32(ptrAddr(leaf, 2)) != 300 {
			t.Error("value not at inserted slot")
		}
	})
}

func TestSplitLeafInsertBalancesAndDivides(t *testing.T) {
	onHost(t, func(c *machine.Ctx, m *machine.Machine) {
		keys := make([]uint32, LeafMax)
		for i := range keys {
			keys[i] = uint32(i+1) * 10
		}
		leaf := leafWith(c, m, keys...)
		right, div := splitLeafInsert(c, m.Mem.HostAlloc, leaf, 55, 550)
		ln := metaSlots(c.Read32(metaAddr(leaf)))
		rn := metaSlots(c.Read32(metaAddr(right)))
		if ln+rn != LeafMax+1 {
			t.Fatalf("split lost entries: %d + %d", ln, rn)
		}
		if ln < rn || ln-rn > 1 {
			t.Fatalf("unbalanced split: %d / %d", ln, rn)
		}
		// Divider = greatest left key; all right keys exceed it.
		if got := c.Read32(keyAddr(leaf, ln-1)); got != div {
			t.Fatalf("divider %d != last left key %d", div, got)
		}
		if first := c.Read32(keyAddr(right, 0)); first <= div {
			t.Fatalf("right starts at %d <= divider %d", first, div)
		}
		// The new pair is present on exactly one side with its value.
		found := 0
		for _, n := range []uint32{leaf, right} {
			slots := metaSlots(c.Read32(metaAddr(n)))
			if i := findLeafSlot(c, n, slots, 55); i >= 0 {
				found++
				if c.Read32(ptrAddr(n, i)) != 550 {
					t.Fatal("inserted value lost in split")
				}
			}
		}
		if found != 1 {
			t.Fatalf("inserted key found %d times", found)
		}
	})
}

func TestSplitInnerInsertDistributesChildren(t *testing.T) {
	onHost(t, func(c *machine.Ctx, m *machine.Machine) {
		node := allocNode(c, m.Mem.HostAlloc, 1, InnerMax, 0)
		// Children 1000..1014 with dividers 10,20,...,130.
		for i := 0; i < InnerMax; i++ {
			c.Write32(ptrAddr(node, i), uint32(1000+i)<<7)
		}
		for i := 0; i < InnerMax-1; i++ {
			c.Write32(keyAddr(node, i), uint32(i+1)*10)
		}
		// Child 3 split: new divider 35, new right child.
		newChild := uint32(2000 << 7)
		right, div := splitInnerInsert(c, m.Mem.HostAlloc, node, 3, 35, newChild)
		ln := metaSlots(c.Read32(metaAddr(node)))
		rn := metaSlots(c.Read32(metaAddr(right)))
		if ln+rn != InnerMax+1 {
			t.Fatalf("children lost: %d + %d", ln, rn)
		}
		// All 16 original+new children present exactly once, order kept.
		var all []uint32
		for i := 0; i < ln; i++ {
			all = append(all, c.Read32(ptrAddr(node, i)))
		}
		for i := 0; i < rn; i++ {
			all = append(all, c.Read32(ptrAddr(right, i)))
		}
		if len(all) != 16 {
			t.Fatalf("children = %d", len(all))
		}
		if all[4] != newChild {
			t.Fatalf("new child at wrong position: %v", all)
		}
		// Divider must be between the halves' key ranges.
		lastLeftKey := c.Read32(keyAddr(node, ln-2))
		firstRightKey := c.Read32(keyAddr(right, 0))
		if !(lastLeftKey < div && div < firstRightKey) {
			t.Fatalf("divider %d not between %d and %d", div, lastLeftKey, firstRightKey)
		}
	})
}

func TestInnerInsertAtShiftsKeysAndChildren(t *testing.T) {
	onHost(t, func(c *machine.Ctx, m *machine.Machine) {
		node := allocNode(c, m.Mem.HostAlloc, 1, 3, 0)
		for i := 0; i < 3; i++ {
			c.Write32(ptrAddr(node, i), uint32(100+i))
		}
		c.Write32(keyAddr(node, 0), 10)
		c.Write32(keyAddr(node, 1), 20)
		innerInsertAt(c, node, 1, 15, 999)
		if metaSlots(c.Read32(metaAddr(node))) != 4 {
			t.Fatal("slot count not bumped")
		}
		wantKeys := []uint32{10, 15, 20}
		wantPtrs := []uint32{100, 101, 999, 102}
		for i, w := range wantKeys {
			if got := c.Read32(keyAddr(node, i)); got != w {
				t.Fatalf("key[%d] = %d, want %d", i, got, w)
			}
		}
		for i, w := range wantPtrs {
			if got := c.Read32(ptrAddr(node, i)); got != w {
				t.Fatalf("ptr[%d] = %d, want %d", i, got, w)
			}
		}
	})
}

func TestSplitReplicatesSequenceWord(t *testing.T) {
	// Footnote 3: a split-off node replicates the original's sequence
	// number so host-NMP seqnum consistency survives splits.
	onHost(t, func(c *machine.Ctx, m *machine.Machine) {
		keys := make([]uint32, LeafMax)
		for i := range keys {
			keys[i] = uint32(i+1) * 10
		}
		leaf := leafWith(c, m, keys...)
		c.Write32(syncAddr(leaf), 7) // locked (odd) seqnum
		right, _ := splitLeafInsert(c, m.Mem.HostAlloc, leaf, 5, 50)
		if got := c.Read32(syncAddr(right)); got != 7 {
			t.Fatalf("right sync = %d, want replicated 7", got)
		}
	})
}

package btree

import (
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// White-box tests for the §3.4 boundary-synchronization machinery,
// injecting the exact states the protocol must detect.

// boundaryTarget descends the built tree untimed and returns a leaf key,
// its begin-NMP-traversal node, and the host parent for that key.
func boundaryTarget(m *machine.Machine, h *Hybrid, key uint32) (begin, parent uint32) {
	ram := m.Mem.RAM
	root, height := h.host.rootInfo(ram)
	curr := root
	for level := height - 1; level > h.split.NMP; level-- {
		slots := metaSlots(ram.Load32(metaAddr(curr)))
		i := 0
		for i < slots-1 && key > ram.Load32(keyAddr(curr, i)) {
			i++
		}
		curr = ram.Load32(ptrAddr(curr, i))
	}
	slots := metaSlots(ram.Load32(metaAddr(curr)))
	i := 0
	for i < slots-1 && key > ram.Load32(keyAddr(curr, i)) {
		i++
	}
	child, _ := untag(ram.Load32(ptrAddr(curr, i)))
	return child, curr
}

func TestHybridParentSeqnumAheadForcesRetryThenSucceeds(t *testing.T) {
	pairs := initialPairs(2000)
	m := testMachine()
	h := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 1})
	h.Build(pairs, testFill)
	h.Start()

	key := pairs[500].Key
	begin, parent := boundaryTarget(m, h, key)
	ram := m.Mem.RAM
	// Simulate "begin node was split by an operation the combiner served
	// earlier": its recorded parent# and the host parent's seqnum are
	// both two ahead of what an old traversal would have recorded. A
	// fresh descend reads the new (even) seqnum, so after one retry the
	// operation proceeds.
	ram.Store32(syncAddr(begin), ram.Load32(syncAddr(begin))+2)
	ram.Store32(syncAddr(parent), ram.Load32(syncAddr(parent))+2)

	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		v, ok := h.Apply(c, 0, kv.Op{Kind: kv.Read, Key: key})
		if !ok || v != pairs[500].Value {
			t.Errorf("read after parent split = (%d,%v), want (%d,true)", v, ok, pairs[500].Value)
		}
	})
	m.Run()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridSiblingSplitRefreshesRecordedParentSeqnum(t *testing.T) {
	pairs := initialPairs(2000)
	m := testMachine()
	h := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 1})
	h.Build(pairs, testFill)
	h.Start()

	key := pairs[700].Key
	begin, parent := boundaryTarget(m, h, key)
	ram := m.Mem.RAM
	// Simulate "the parent was modified because a SIBLING child split":
	// the host parent's seqnum moved ahead while begin's recorded
	// parent# is stale (Listing 5 lines 5-8). The combiner must refresh
	// the recorded number and serve the operation without a retry.
	ram.Store32(syncAddr(parent), ram.Load32(syncAddr(parent))+2)
	wantSeq := ram.Load32(syncAddr(parent))

	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		if _, ok := h.Apply(c, 0, kv.Op{Kind: kv.Read, Key: key}); !ok {
			t.Error("read failed after sibling split")
		}
	})
	m.Run()
	if got := ram.Load32(syncAddr(begin)); got != wantSeq {
		t.Fatalf("recorded parent# = %d, want refreshed %d", got, wantSeq)
	}
}

func TestHybridRemoveRetriesWhileLeafLocked(t *testing.T) {
	pairs := initialPairs(2000)
	m := testMachine()
	h := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 1})
	h.Build(pairs, testFill)
	h.Start()

	key := pairs[300].Key
	// Find the leaf holding key and lock it, as a pending LOCK_PATH
	// insert would (§3.4: removes must not change slot counts under a
	// prepared split).
	ram := m.Mem.RAM
	begin, _ := boundaryTarget(m, h, key)
	leaf := begin
	for metaLevel(ram.Load32(metaAddr(leaf))) > 0 {
		slots := metaSlots(ram.Load32(metaAddr(leaf)))
		i := 0
		for i < slots-1 && key > ram.Load32(keyAddr(leaf, i)) {
			i++
		}
		leaf = ram.Load32(ptrAddr(leaf, i))
	}
	ram.Store32(lockAddr(leaf), 1)

	var removed bool
	m.SpawnHost(0, "remover", func(c *machine.Ctx) {
		_, removed = h.Apply(c, 0, kv.Op{Kind: kv.Remove, Key: key})
	})
	// A second actor releases the lock after a while, as the insert
	// holding it would on RESUME/UNLOCK.
	m.SpawnHost(1, "unlocker", func(c *machine.Ctx) {
		c.Step(20000)
		ram.Store32(lockAddr(leaf), 0)
	})
	m.Run()
	if !removed {
		t.Fatal("remove did not succeed after the lock was released")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridBoundaryPointerTagsMatchPartitions(t *testing.T) {
	pairs := initialPairs(3000)
	m := testMachine()
	h := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 1})
	h.Build(pairs, testFill)
	ram := m.Mem.RAM
	root, height := h.host.rootInfo(ram)
	var walk func(node uint32, level int)
	checked := 0
	walk = func(node uint32, level int) {
		if level < h.split.NMP {
			return
		}
		slots := metaSlots(ram.Load32(metaAddr(node)))
		for i := 0; i < slots; i++ {
			ptr := ram.Load32(ptrAddr(node, i))
			if level == h.split.NMP {
				n, tag := untag(ptr)
				owner, ok := m.Mem.IsNMPMem(memsys.Addr(n))
				if !ok || owner != tag {
					t.Fatalf("boundary pointer tag %d, owner %d (ok=%v)", tag, owner, ok)
				}
				checked++
				continue
			}
			walk(ptr, level-1)
		}
	}
	walk(root, height-1)
	if checked == 0 {
		t.Fatal("no boundary pointers checked")
	}
}

package btree

import (
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// dumpTree walks the tree untimed (raw RAM) and returns all key-value
// pairs in key order. For hybrid trees (trees != nil), pointers at the
// host-NMP boundary carry partition tags that are stripped while walking.
func dumpTree(m *machine.Machine, core *hostCore, trees []*nmpTree, nmpLevels int) []KV {
	ram := m.Mem.RAM
	root, height := core.rootInfo(ram)
	var out []KV
	var walk func(node uint32, level int)
	walk = func(node uint32, level int) {
		slots := metaSlots(ram.Load32(metaAddr(node)))
		if level == 0 {
			for i := 0; i < slots; i++ {
				out = append(out, KV{ram.Load32(keyAddr(node, i)), ram.Load32(ptrAddr(node, i))})
			}
			return
		}
		for i := 0; i < slots; i++ {
			ptr := ram.Load32(ptrAddr(node, i))
			if trees != nil && level == nmpLevels {
				ptr, _ = untag(ptr)
			}
			walk(ptr, level-1)
		}
	}
	walk(root, height-1)
	return out
}

// checkTree validates B+ tree invariants at quiescence:
//   - every node's recorded level matches its depth, and all root-to-leaf
//     paths have equal length (implied by the level check);
//   - keys are strictly increasing within nodes and across the whole tree,
//     and each subtree's keys respect its dividing-key bounds
//     (lo < key <= hi);
//   - inner nodes hold 1..InnerMax children, leaves 0..LeafMax entries
//     (the relaxed-deletion discipline permits underflow);
//   - host-side sequence numbers are even (unlocked) and NMP-side lock
//     words are clear;
//   - hybrid only: boundary pointers' partition tags match the partition
//     that owns the target node, and whole NMP subtrees stay inside one
//     partition.
func checkTree(m *machine.Machine, core *hostCore, trees []*nmpTree, nmpLevels int) error {
	ram := m.Mem.RAM
	root, height := core.rootInfo(ram)
	if hseq := ram.Load32(memsys.Addr(core.header) + hdrSeq); hseq%2 != 0 {
		return errf("header locked at quiescence (seq=%d)", hseq)
	}
	for _, tr := range trees {
		if len(tr.pending) != 0 {
			return errf("NMP tree has %d pending inserts at quiescence", len(tr.pending))
		}
	}
	var prevKey uint32
	hasPrev := false
	var walk func(node uint32, level, part int, lo, hi uint64) error
	walk = func(node uint32, level, part int, lo, hi uint64) error {
		meta := ram.Load32(metaAddr(node))
		slots := metaSlots(meta)
		if metaLevel(meta) != level {
			return errf("node %#x records level %d at depth-level %d", node, metaLevel(meta), level)
		}
		hostSide := trees == nil || level >= nmpLevels
		if hostSide {
			if s := ram.Load32(syncAddr(node)); s%2 != 0 {
				return errf("host node %#x locked at quiescence (seq=%d)", node, s)
			}
		} else {
			if l := ram.Load32(lockAddr(node)); l != 0 {
				return errf("NMP node %#x locked at quiescence", node)
			}
			if p, ok := m.Mem.IsNMPMem(memsys.Addr(node)); !ok || p != part {
				return errf("NMP node %#x outside partition %d", node, part)
			}
		}
		if level == 0 {
			if slots > LeafMax {
				return errf("leaf %#x overfull (%d)", node, slots)
			}
			for i := 0; i < slots; i++ {
				k := ram.Load32(keyAddr(node, i))
				if uint64(k) <= lo || uint64(k) > hi {
					return errf("leaf key %d outside bounds (%d,%d]", k, lo, hi)
				}
				if hasPrev && k <= prevKey {
					return errf("keys not globally increasing: %d after %d", k, prevKey)
				}
				prevKey, hasPrev = k, true
			}
			return nil
		}
		if slots < 1 || slots > InnerMax {
			return errf("inner node %#x has %d children", node, slots)
		}
		childLo := lo
		for i := 0; i < slots; i++ {
			childHi := hi
			if i < slots-1 {
				childHi = uint64(ram.Load32(keyAddr(node, i)))
			}
			if childHi < childLo {
				return errf("node %#x dividers not increasing", node)
			}
			ptr := ram.Load32(ptrAddr(node, i))
			childPart := part
			if trees != nil && level == nmpLevels {
				var tag int
				ptr, tag = untag(ptr)
				owner, ok := m.Mem.IsNMPMem(memsys.Addr(ptr))
				if !ok {
					return errf("boundary pointer %#x not in NMP memory", ptr)
				}
				if tag != owner {
					return errf("boundary pointer tag %d but node owned by partition %d", tag, owner)
				}
				childPart = owner
			}
			if err := walk(ptr, level-1, childPart, childLo, childHi); err != nil {
				return err
			}
			childLo = childHi
		}
		return nil
	}
	return walk(root, height-1, -1, 0, uint64(^uint32(0)))
}

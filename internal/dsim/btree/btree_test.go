package btree

import (
	"fmt"
	"sort"
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/prng"
	"hybrids/internal/sim/machine"
)

const (
	testKeyMax    = 1 << 24
	testN         = 3000
	testNMPLevels = 2
	testFill      = 8
)

func testMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 32 << 20
	cfg.Mem.NMPMemSize = 32 << 20
	cfg.Mem.L2.Size = 128 << 10
	cfg.Mem.L1.Size = 8 << 10
	return machine.New(cfg)
}

func initialPairs(n int) []KV {
	rng := prng.New(54321)
	seen := map[uint32]bool{}
	var out []KV
	for len(out) < n {
		k := rng.Uint32()%(testKeyMax/2-1) + 1
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, KV{Key: k, Value: k ^ 0xa5a5a5a5})
	}
	return out
}

type oracle map[uint32]uint32

func (o oracle) apply(op kv.Op) (uint32, bool) {
	switch op.Kind {
	case kv.Read:
		v, ok := o[op.Key]
		return v, ok
	case kv.Update:
		if _, ok := o[op.Key]; !ok {
			return 0, false
		}
		o[op.Key] = op.Value
		return 0, true
	case kv.Insert:
		if _, ok := o[op.Key]; ok {
			return 0, false
		}
		o[op.Key] = op.Value
		return 0, true
	case kv.Remove:
		if _, ok := o[op.Key]; !ok {
			return 0, false
		}
		delete(o, op.Key)
		return 0, true
	}
	panic("bad op")
}

func (o oracle) dump() []KV {
	var out []KV
	for k, v := range o {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func kvsEqual(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mixedOps(seed uint64, n int, existing []KV, freshBase uint32) []kv.Op {
	rng := prng.New(seed)
	ops := make([]kv.Op, n)
	fresh := freshBase
	for i := range ops {
		r := rng.Intn(100)
		switch {
		case r < 50:
			ops[i] = kv.Op{Kind: kv.Read, Key: existing[rng.Intn(len(existing))].Key}
		case r < 60:
			ops[i] = kv.Op{Kind: kv.Update, Key: existing[rng.Intn(len(existing))].Key, Value: rng.Uint32()}
		case r < 80:
			if rng.Intn(4) == 0 {
				ops[i] = kv.Op{Kind: kv.Insert, Key: existing[rng.Intn(len(existing))].Key, Value: rng.Uint32()}
			} else {
				fresh += uint32(rng.Intn(64) + 1)
				ops[i] = kv.Op{Kind: kv.Insert, Key: fresh, Value: rng.Uint32()}
			}
		default:
			ops[i] = kv.Op{Kind: kv.Remove, Key: existing[rng.Intn(len(existing))].Key}
		}
	}
	return ops
}

func freshBlock(i int) uint32 { return testKeyMax/2 + uint32(i)<<19 }

type testStore interface {
	kv.Store
	Dump() []KV
	CheckInvariants() error
}

func buildStore(t *testing.T, name string, m *machine.Machine, pairs []KV) testStore {
	t.Helper()
	switch name {
	case "hostonly":
		s := NewHostOnly(m)
		s.Build(pairs, testFill)
		return s
	case "hybrid":
		s := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 1})
		s.Build(pairs, testFill)
		s.Start()
		return s
	default:
		t.Fatalf("unknown store %q", name)
		return nil
	}
}

var variants = []string{"hostonly", "hybrid"}

func TestLevelCounts(t *testing.T) {
	counts := levelCounts(100, 8)
	// 100 keys -> 13 leaves -> 2 inner -> 1 root.
	want := []int{13, 2, 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if got := levelCounts(0, 8); len(got) != 1 || got[0] != 1 {
		t.Fatalf("empty tree counts = %v", got)
	}
}

func TestBuildMatchesDump(t *testing.T) {
	pairs := initialPairs(testN)
	want := append([]KV(nil), pairs...)
	sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			m := testMachine()
			s := buildStore(t, name, m, pairs)
			if !kvsEqual(s.Dump(), want) {
				t.Fatal("dump does not match built pairs")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSingleThreadOracle(t *testing.T) {
	pairs := initialPairs(testN)
	ops := mixedOps(42, 2000, pairs, freshBlock(0))
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			m := testMachine()
			s := buildStore(t, name, m, pairs)
			o := oracle{}
			for _, p := range pairs {
				o[p.Key] = p.Value
			}
			var failures []string
			m.SpawnHost(0, "driver", func(c *machine.Ctx) {
				for i, op := range ops {
					gotV, gotOK := s.Apply(c, 0, op)
					wantV, wantOK := o.apply(op)
					if gotOK != wantOK || (op.Kind == kv.Read && gotOK && gotV != wantV) {
						failures = append(failures, fmt.Sprintf("op %d %s key=%d: got (%d,%v) want (%d,%v)",
							i, op.Kind, op.Key, gotV, gotOK, wantV, wantOK))
					}
				}
			})
			m.Run()
			if len(failures) > 0 {
				t.Fatalf("%d mismatches, first: %s", len(failures), failures[0])
			}
			if !kvsEqual(s.Dump(), o.dump()) {
				t.Fatal("final contents diverge from oracle")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequentialInsertsForceDeepSplits(t *testing.T) {
	// Monotonic keys concentrated at the tree's right edge force splits
	// at every level, including root splits (host-only) and
	// LOCK_PATH/RESUME boundary splits (hybrid).
	pairs := initialPairs(600)
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			m := testMachine()
			s := buildStore(t, name, m, pairs)
			o := oracle{}
			for _, p := range pairs {
				o[p.Key] = p.Value
			}
			m.SpawnHost(0, "driver", func(c *machine.Ctx) {
				for i := 0; i < 2000; i++ {
					op := kv.Op{Kind: kv.Insert, Key: testKeyMax/2 + uint32(i), Value: uint32(i)}
					if _, ok := s.Apply(c, 0, op); !ok {
						t.Errorf("sequential insert %d failed", i)
						return
					}
					o.apply(op)
				}
			})
			m.Run()
			if !kvsEqual(s.Dump(), o.dump()) {
				t.Fatal("contents diverge after deep splits")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRootSplitGrowsTree(t *testing.T) {
	// Build a minimal tree and insert until the root must split.
	m := testMachine()
	s := NewHostOnly(m)
	var pairs []KV
	for i := uint32(1); i <= 16; i++ {
		pairs = append(pairs, KV{Key: i * 100, Value: i})
	}
	s.Build(pairs, 8)
	_, h0 := s.core.rootInfo(m.Mem.RAM)
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		for i := uint32(0); i < 3000; i++ {
			s.Apply(c, 0, kv.Op{Kind: kv.Insert, Key: 10000 + i, Value: i})
		}
	})
	m.Run()
	_, h1 := s.core.rootInfo(m.Mem.RAM)
	if h1 <= h0 {
		t.Fatalf("tree height did not grow: %d -> %d", h0, h1)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointRangesOracle(t *testing.T) {
	pairs := initialPairs(testN)
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			m := testMachine()
			s := buildStore(t, name, m, pairs)
			o := oracle{}
			for _, p := range pairs {
				o[p.Key] = p.Value
			}
			const threads = 4
			for th := 0; th < threads; th++ {
				th := th
				var mine []KV
				for i, p := range pairs {
					if i%threads == th {
						mine = append(mine, p)
					}
				}
				ops := mixedOps(uint64(100+th), 500, mine, freshBlock(th))
				m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
					for _, op := range ops {
						s.Apply(c, th, op)
					}
				})
				for _, op := range ops {
					o.apply(op)
				}
			}
			m.Run()
			if !kvsEqual(s.Dump(), o.dump()) {
				t.Fatal("disjoint-range concurrent run diverges from oracle")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentOverlappingKeysInvariants(t *testing.T) {
	pairs := initialPairs(96)
	run := func(name string) []KV {
		m := testMachine()
		s := buildStore(t, name, m, pairs)
		const threads = 8
		for th := 0; th < threads; th++ {
			th := th
			rng := prng.New(uint64(th) + 9)
			m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
				for i := 0; i < 250; i++ {
					key := pairs[rng.Intn(len(pairs))].Key
					switch rng.Intn(4) {
					case 0:
						s.Apply(c, th, kv.Op{Kind: kv.Read, Key: key})
					case 1:
						s.Apply(c, th, kv.Op{Kind: kv.Insert, Key: key, Value: uint32(th)<<16 | uint32(i)})
					case 2:
						s.Apply(c, th, kv.Op{Kind: kv.Remove, Key: key})
					default:
						s.Apply(c, th, kv.Op{Kind: kv.Update, Key: key, Value: uint32(th)<<16 | uint32(i)})
					}
				}
			})
		}
		m.Run()
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return s.Dump()
	}
	for _, name := range variants {
		t.Run(name, func(t *testing.T) {
			d1 := run(name)
			d2 := run(name)
			if !kvsEqual(d1, d2) {
				t.Fatal("runs not deterministic")
			}
			valid := map[uint32]bool{}
			for _, p := range pairs {
				valid[p.Key] = true
			}
			for _, p := range d1 {
				if !valid[p.Key] {
					t.Fatalf("phantom key %d in final state", p.Key)
				}
			}
		})
	}
}

func TestConcurrentTailInsertsExerciseBoundarySplits(t *testing.T) {
	// All threads insert monotonically increasing keys into overlapping
	// tails: maximal split contention on the same nodes, including
	// LOCK_PATH conversations racing with each other.
	pairs := initialPairs(500)
	m := testMachine()
	s := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 1})
	s.Build(pairs, testFill)
	s.Start()
	o := oracle{}
	for _, p := range pairs {
		o[p.Key] = p.Value
	}
	const threads = 8
	const perThread = 300
	for th := 0; th < threads; th++ {
		th := th
		m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
			for i := 0; i < perThread; i++ {
				// Distinct keys across threads but adjacent, so all
				// threads fight over the same leaves.
				key := testKeyMax/2 + uint32(i*threads+th)
				s.Apply(c, th, kv.Op{Kind: kv.Insert, Key: key, Value: key})
			}
		})
	}
	for i := 0; i < perThread*threads; i++ {
		key := testKeyMax/2 + uint32(i)
		o.apply(kv.Op{Kind: kv.Insert, Key: key, Value: key})
	}
	m.Run()
	if !kvsEqual(s.Dump(), o.dump()) {
		t.Fatal("tail-insert contention run diverges from oracle")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridAsyncBatchMatchesOracleOnDistinctKeys(t *testing.T) {
	pairs := initialPairs(testN)
	var ops []kv.Op
	o := oracle{}
	for _, p := range pairs {
		o[p.Key] = p.Value
	}
	rng := prng.New(3)
	taken := map[uint32]bool{}
	for _, p := range pairs {
		taken[p.Key] = true
	}
	for i, p := range pairs[:1600] {
		switch i % 4 {
		case 0:
			ops = append(ops, kv.Op{Kind: kv.Read, Key: p.Key})
		case 1:
			ops = append(ops, kv.Op{Kind: kv.Remove, Key: p.Key})
		case 2:
			ops = append(ops, kv.Op{Kind: kv.Update, Key: p.Key, Value: rng.Uint32()})
		default:
			for {
				k := rng.Uint32()%(testKeyMax-1) + 1
				if !taken[k] {
					taken[k] = true
					ops = append(ops, kv.Op{Kind: kv.Insert, Key: k, Value: rng.Uint32()})
					break
				}
			}
		}
	}
	want := 0
	for _, op := range ops {
		if _, ok := o.apply(op); ok {
			want++
		}
	}
	m := testMachine()
	s := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 4})
	s.Build(pairs, testFill)
	s.Start()
	got := 0
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		got = s.ApplyBatch(c, 0, ops)
	})
	m.Run()
	if got != want {
		t.Fatalf("ApplyBatch succeeded = %d, want %d", got, want)
	}
	if !kvsEqual(s.Dump(), o.dump()) {
		t.Fatal("async batch contents diverge from oracle")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridAsyncConcurrentWithSplits(t *testing.T) {
	pairs := initialPairs(800)
	m := testMachine()
	s := NewHybrid(m, HybridBTreeConfig{Split: boundary.Split{NMP: testNMPLevels}, Window: 4})
	s.Build(pairs, testFill)
	s.Start()
	const threads = 8
	for th := 0; th < threads; th++ {
		th := th
		var ops []kv.Op
		for i := 0; i < 250; i++ {
			key := testKeyMax/2 + uint32(i*threads+th)
			ops = append(ops, kv.Op{Kind: kv.Insert, Key: key, Value: key})
		}
		m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
			s.ApplyBatch(c, th, ops)
		})
	}
	m.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every inserted key must be present.
	have := map[uint32]bool{}
	for _, p := range s.Dump() {
		have[p.Key] = true
	}
	for i := 0; i < 250*threads; i++ {
		if !have[testKeyMax/2+uint32(i)] {
			t.Fatalf("inserted key %d missing", testKeyMax/2+uint32(i))
		}
	}
}

func TestCrossVariantSingleThreadAgreement(t *testing.T) {
	pairs := initialPairs(800)
	ops := mixedOps(77, 1200, pairs, freshBlock(0))
	var dumps [][]KV
	for _, name := range variants {
		m := testMachine()
		s := buildStore(t, name, m, pairs)
		m.SpawnHost(0, "driver", func(c *machine.Ctx) {
			for _, op := range ops {
				s.Apply(c, 0, op)
			}
		})
		m.Run()
		dumps = append(dumps, s.Dump())
	}
	if !kvsEqual(dumps[0], dumps[1]) {
		t.Fatal("host-only and hybrid disagree after identical op stream")
	}
}

func TestEmptyLeafToleratedByReads(t *testing.T) {
	m := testMachine()
	s := NewHostOnly(m)
	var pairs []KV
	for i := uint32(1); i <= 40; i++ {
		pairs = append(pairs, KV{Key: i, Value: i})
	}
	s.Build(pairs, 8)
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		// Empty one leaf entirely, then read through the hole.
		for i := uint32(1); i <= 8; i++ {
			s.Apply(c, 0, kv.Op{Kind: kv.Remove, Key: i})
		}
		for i := uint32(1); i <= 8; i++ {
			if _, ok := s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: i}); ok {
				t.Errorf("removed key %d still readable", i)
			}
		}
		if v, ok := s.Apply(c, 0, kv.Op{Kind: kv.Read, Key: 20}); !ok || v != 20 {
			t.Errorf("key 20 = (%d,%v)", v, ok)
		}
	})
	m.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMetaPacking(t *testing.T) {
	m := packMeta(5, 13)
	if metaLevel(m) != 5 || metaSlots(m) != 13 {
		t.Fatalf("meta roundtrip failed: level=%d slots=%d", metaLevel(m), metaSlots(m))
	}
}

func TestTaggedPointers(t *testing.T) {
	n := uint32(0x1000_0000)
	for part := 0; part < 8; part++ {
		node, p := untag(taggedPtr(n, part))
		if node != n || p != part {
			t.Fatalf("tag roundtrip failed for partition %d", part)
		}
	}
}

package btree

import (
	"hybrids/internal/dsim/fc"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// nmpTree is the NMP-managed portion of the hybrid B+ tree inside one
// partition: the bottom `levels` tree levels, operated single-threadedly
// by the partition's NMP core (Listing 5). Nodes carry plain lock words
// (no atomics needed) and the topmost NMP level's nodes carry the
// parent-sequence-number used for host-NMP boundary synchronization.
type nmpTree struct {
	levels int
	alloc  *memsys.Allocator
	// pending holds the locked state of inserts that answered LOCK_PATH
	// and await RESUME_INSERT or UNLOCK_PATH, keyed by publication slot.
	pending map[int]*pendingInsert
}

type pendingInsert struct {
	path   []uint32
	idxs   []int
	key    uint32
	value  uint32
	offSeq uint32
	begin  uint32
}

func newNMPTree(levels int, alloc *memsys.Allocator) *nmpTree {
	return &nmpTree{levels: levels, alloc: alloc, pending: make(map[int]*pendingInsert)}
}

func (t *nmpTree) handler() fc.Handler {
	return func(c *machine.Ctx, slot int, req fc.Request) fc.Response {
		switch req.Op {
		case fc.OpResumeInsert:
			return t.resume(c, slot)
		case fc.OpUnlockPath:
			return t.unlockPending(c, slot)
		}
		begin := req.NMPPtr
		// Listing 5 lines 2-8: compare the recorded parent sequence
		// number against the offloaded one.
		recorded := c.Read32(syncAddr(begin))
		if recorded > req.Aux {
			// The begin node was split by a concurrent operation
			// processed earlier: its leaves may be unreachable now.
			return fc.Response{Retry: true}
		}
		if recorded < req.Aux {
			// The parent was modified by a sibling's split; refresh.
			c.Write32(syncAddr(begin), req.Aux)
		}
		path, idxs := t.descend(c, begin, req.Key)
		leaf := path[0]
		switch req.Op {
		case fc.OpRead:
			slots := metaSlots(c.Read32(metaAddr(leaf)))
			i := findLeafSlot(c, leaf, slots, req.Key)
			if i < 0 {
				return fc.Response{}
			}
			return fc.Response{Success: true, Value: c.Read32(ptrAddr(leaf, i))}
		case fc.OpUpdate:
			slots := metaSlots(c.Read32(metaAddr(leaf)))
			i := findLeafSlot(c, leaf, slots, req.Key)
			if i < 0 {
				return fc.Response{}
			}
			c.Write32(ptrAddr(leaf, i), req.Value)
			return fc.Response{Success: true}
		case fc.OpRemove:
			// §3.4: a locked leaf is part of a prepared split; the
			// slot count must not change under it.
			if c.Read32(lockAddr(leaf)) != 0 {
				return fc.Response{Retry: true}
			}
			meta := c.Read32(metaAddr(leaf))
			slots := metaSlots(meta)
			i := findLeafSlot(c, leaf, slots, req.Key)
			if i < 0 {
				return fc.Response{}
			}
			for j := i; j < slots-1; j++ {
				c.Write32(keyAddr(leaf, j), c.Read32(keyAddr(leaf, j+1)))
				c.Write32(ptrAddr(leaf, j), c.Read32(ptrAddr(leaf, j+1)))
			}
			c.Write32(metaAddr(leaf), packMeta(0, slots-1))
			return fc.Response{Success: true}
		case fc.OpInsert:
			return t.insert(c, slot, req, begin, path, idxs)
		default:
			panic("btree: unexpected NMP op " + req.Op.String())
		}
	}
}

func (t *nmpTree) descend(c *machine.Ctx, begin, key uint32) (path []uint32, idxs []int) {
	path = make([]uint32, t.levels)
	idxs = make([]int, t.levels)
	curr := begin
	for lv := t.levels - 1; lv > 0; lv-- {
		path[lv] = curr
		slots := metaSlots(c.Read32(metaAddr(curr)))
		idx := findChildIdx(c, curr, slots, key)
		idxs[lv] = idx
		curr = c.Read32(ptrAddr(curr, idx))
	}
	path[0] = curr
	return path, idxs
}

// insert implements Listing 5 lines 13-32: lock the path bottom-up through
// the first non-full node; complete internally when possible, otherwise
// keep the locks and ask the host to lock its side.
func (t *nmpTree) insert(c *machine.Ctx, slot int, req fc.Request, begin uint32, path []uint32, idxs []int) fc.Response {
	leaf := path[0]
	slots := metaSlots(c.Read32(metaAddr(leaf)))
	if findLeafSlot(c, leaf, slots, req.Key) >= 0 {
		return fc.Response{} // key already present
	}
	var locked []uint32
	lockedAll := false
	top := 0
	for i := 0; i < t.levels; i++ {
		if c.Read32(lockAddr(path[i])) != 0 {
			// A concurrent insert holds this node (Listing 5
			// lines 20-23): back off and let the host retry.
			for _, n := range locked {
				c.Write32(lockAddr(n), 0)
			}
			return fc.Response{Retry: true}
		}
		c.Write32(lockAddr(path[i]), 1)
		locked = append(locked, path[i])
		maxSlots := InnerMax
		if i == 0 {
			maxSlots = LeafMax
		}
		if metaSlots(c.Read32(metaAddr(path[i]))) < maxSlots {
			lockedAll = true
			top = i
			break
		}
	}
	if !lockedAll {
		// Even the topmost NMP node will split: the host must lock
		// its side of the path (Listing 5 lines 30-32). Locks stay
		// held until RESUME_INSERT or UNLOCK_PATH.
		t.pending[slot] = &pendingInsert{
			path: path, idxs: idxs,
			key: req.Key, value: req.Value,
			offSeq: req.Aux, begin: begin,
		}
		return fc.Response{LockPath: true}
	}
	// Complete internally: split levels 0..top-1 (all full), insert into
	// the non-full path[top].
	if top == 0 {
		leafInsertAt(c, leaf, req.Key, req.Value)
	} else {
		right, div := splitLeafInsert(c, t.alloc, leaf, req.Key, req.Value)
		t.chainUp(c, path, idxs, 1, top, div, right)
	}
	for _, n := range locked {
		c.Write32(lockAddr(n), 0)
	}
	return fc.Response{Success: true}
}

// chainUp splits full inner nodes from level `from` up to (excluding)
// `top`, then inserts into the non-full path[top].
func (t *nmpTree) chainUp(c *machine.Ctx, path []uint32, idxs []int, from, top int, div, right uint32) {
	for lv := from; lv < top; lv++ {
		right, div = splitInnerInsert(c, t.alloc, path[lv], idxs[lv], div, right)
	}
	innerInsertAt(c, path[top], idxs[top], div, right)
}

// resume completes a pending insert whose host-side path is now locked
// (§3.4): every node on the NMP path is full, so the split chain reaches
// and splits the begin node, whose new sibling and dividing key are
// returned for the host to link. The parent sequence numbers of the begin
// node and its sibling are advanced to the value the host parent will hold
// after unlocking (offloaded# + 2; footnote 3).
func (t *nmpTree) resume(c *machine.Ctx, slot int) fc.Response {
	p, ok := t.pending[slot]
	if !ok {
		panic("btree: RESUME_INSERT with no pending state")
	}
	delete(t.pending, slot)
	var right, div uint32
	if t.levels == 1 {
		right, div = splitLeafInsert(c, t.alloc, p.path[0], p.key, p.value)
	} else {
		right, div = splitLeafInsert(c, t.alloc, p.path[0], p.key, p.value)
		for lv := 1; lv < t.levels; lv++ {
			right, div = splitInnerInsert(c, t.alloc, p.path[lv], p.idxs[lv], div, right)
		}
	}
	c.Write32(syncAddr(p.begin), p.offSeq+2)
	c.Write32(syncAddr(right), p.offSeq+2)
	for _, n := range p.path {
		c.Write32(lockAddr(n), 0)
	}
	return fc.Response{Success: true, Value: div, Ptr: right}
}

// unlockPending releases a pending insert's locks after the host failed to
// lock its side of the path; the host will retry from the root.
func (t *nmpTree) unlockPending(c *machine.Ctx, slot int) fc.Response {
	p, ok := t.pending[slot]
	if !ok {
		panic("btree: UNLOCK_PATH with no pending state")
	}
	delete(t.pending, slot)
	for _, n := range p.path {
		c.Write32(lockAddr(n), 0)
	}
	return fc.Response{Success: true}
}

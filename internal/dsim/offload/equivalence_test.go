package offload_test

import (
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/btree"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/skiplist"
	"hybrids/internal/sim/machine"
)

// Cross-structure equivalence: for the same operation streams, the
// blocking path (Apply) and the non-blocking path (ApplyBatch, any window
// depth) must converge to identical final contents on both hybrid
// structures. Streams use distinct keys per operation so the final state
// is completion-order-independent. The cross-stack (native vs simulated)
// half of this property is covered per registered engine by the
// conformance suite in internal/store.

func eqMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 16 << 20
	cfg.Mem.NMPMemSize = 16 << 20
	cfg.Mem.L2.Size = 64 << 10
	cfg.Mem.L1.Size = 8 << 10
	return machine.New(cfg)
}

const (
	eqThreads   = 2
	eqPerThread = 120
	eqKeyMax    = 1 << 12
)

type eqPair struct{ k, v uint32 }

// eqData returns the initial contents (even keys) and per-thread op
// streams. Each stream position derives a unique index, and each index
// touches its own key: inserts use fresh odd keys, removes/updates/reads
// target distinct initial even keys.
func eqData() (pairs []eqPair, streams [][]kv.Op) {
	total := eqThreads * eqPerThread
	for i := 1; i <= total; i++ {
		pairs = append(pairs, eqPair{uint32(2 * i), uint32(2*i + 7)})
	}
	streams = make([][]kv.Op, eqThreads)
	for th := 0; th < eqThreads; th++ {
		for i := 0; i < eqPerThread; i++ {
			idx := th*eqPerThread + i
			even := uint32(2 * (idx + 1))
			odd := uint32(2*idx + 1)
			var op kv.Op
			switch i % 4 {
			case 0:
				op = kv.Op{Kind: kv.Insert, Key: odd, Value: odd * 3}
			case 1:
				op = kv.Op{Kind: kv.Remove, Key: even}
			case 2:
				op = kv.Op{Kind: kv.Update, Key: even, Value: even * 5}
			default:
				op = kv.Op{Kind: kv.Read, Key: even}
			}
			streams[th] = append(streams[th], op)
		}
	}
	return pairs, streams
}

func driveStreams(m *machine.Machine, streams [][]kv.Op, apply func(c *machine.Ctx, th int, ops []kv.Op)) {
	for th := range streams {
		th := th
		m.SpawnHost(th, "drv", func(c *machine.Ctx) { apply(c, th, streams[th]) })
	}
	m.Run()
}

func skiplistDump(t *testing.T, window int, async bool) []skiplist.KV {
	t.Helper()
	pairs, streams := eqData()
	m := eqMachine()
	s := skiplist.NewHybrid(m, skiplist.HybridConfig{
		Split: boundary.Split{Total: 9, NMP: 4}, KeyMax: eqKeyMax, Window: window, Seed: 7,
	})
	skp := make([]skiplist.KV, len(pairs))
	for i, p := range pairs {
		skp[i] = skiplist.KV{Key: p.k, Value: p.v}
	}
	s.Build(skp, 99)
	s.Start()
	driveStreams(m, streams, func(c *machine.Ctx, th int, ops []kv.Op) {
		if async {
			s.ApplyBatch(c, th, ops)
		} else {
			for _, op := range ops {
				s.Apply(c, th, op)
			}
		}
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("skiplist invariants (window=%d async=%v): %v", window, async, err)
	}
	return s.Dump()
}

func btreeDump(t *testing.T, window int, async bool) []btree.KV {
	t.Helper()
	pairs, streams := eqData()
	m := eqMachine()
	s := btree.NewHybrid(m, btree.HybridBTreeConfig{Split: boundary.Split{NMP: 2}, Window: window})
	btp := make([]btree.KV, len(pairs))
	for i, p := range pairs {
		btp[i] = btree.KV{Key: p.k, Value: p.v}
	}
	s.Build(btp, 8)
	s.Start()
	driveStreams(m, streams, func(c *machine.Ctx, th int, ops []kv.Op) {
		if async {
			s.ApplyBatch(c, th, ops)
		} else {
			for _, op := range ops {
				s.Apply(c, th, op)
			}
		}
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("btree invariants (window=%d async=%v): %v", window, async, err)
	}
	return s.Dump()
}

func TestSkiplistBlockingNonblockingEquivalent(t *testing.T) {
	want := skiplistDump(t, 1, false)
	if len(want) == 0 {
		t.Fatal("empty blocking dump")
	}
	for _, w := range []int{2, 4} {
		got := skiplistDump(t, w, true)
		if len(got) != len(want) {
			t.Fatalf("window %d: %d pairs, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %d: pair %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

func TestBTreeBlockingNonblockingEquivalent(t *testing.T) {
	want := btreeDump(t, 1, false)
	if len(want) == 0 {
		t.Fatal("empty blocking dump")
	}
	for _, w := range []int{2, 4} {
		got := btreeDump(t, w, true)
		if len(got) != len(want) {
			t.Fatalf("window %d: %d pairs, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %d: pair %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

package offload_test

import (
	"fmt"
	"sync"
	"testing"

	"hybrids/internal/cds"
	"hybrids/internal/core"
	"hybrids/internal/dsim/btree"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/skiplist"
	"hybrids/internal/hds"
	"hybrids/internal/sim/machine"
	"hybrids/internal/ycsb"
)

// Cross-structure equivalence: for the same operation streams, the
// blocking path (Apply) and the non-blocking path (ApplyBatch, any window
// depth) must converge to identical final contents on both hybrid
// structures. Streams use distinct keys per operation so the final state
// is completion-order-independent.

func eqMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 16 << 20
	cfg.Mem.NMPMemSize = 16 << 20
	cfg.Mem.L2.Size = 64 << 10
	cfg.Mem.L1.Size = 8 << 10
	return machine.New(cfg)
}

const (
	eqThreads   = 2
	eqPerThread = 120
	eqKeyMax    = 1 << 12
)

type eqPair struct{ k, v uint32 }

// eqData returns the initial contents (even keys) and per-thread op
// streams. Each stream position derives a unique index, and each index
// touches its own key: inserts use fresh odd keys, removes/updates/reads
// target distinct initial even keys.
func eqData() (pairs []eqPair, streams [][]kv.Op) {
	total := eqThreads * eqPerThread
	for i := 1; i <= total; i++ {
		pairs = append(pairs, eqPair{uint32(2 * i), uint32(2*i + 7)})
	}
	streams = make([][]kv.Op, eqThreads)
	for th := 0; th < eqThreads; th++ {
		for i := 0; i < eqPerThread; i++ {
			idx := th*eqPerThread + i
			even := uint32(2 * (idx + 1))
			odd := uint32(2*idx + 1)
			var op kv.Op
			switch i % 4 {
			case 0:
				op = kv.Op{Kind: kv.Insert, Key: odd, Value: odd * 3}
			case 1:
				op = kv.Op{Kind: kv.Remove, Key: even}
			case 2:
				op = kv.Op{Kind: kv.Update, Key: even, Value: even * 5}
			default:
				op = kv.Op{Kind: kv.Read, Key: even}
			}
			streams[th] = append(streams[th], op)
		}
	}
	return pairs, streams
}

func driveStreams(m *machine.Machine, streams [][]kv.Op, apply func(c *machine.Ctx, th int, ops []kv.Op)) {
	for th := range streams {
		th := th
		m.SpawnHost(th, "drv", func(c *machine.Ctx) { apply(c, th, streams[th]) })
	}
	m.Run()
}

func skiplistDump(t *testing.T, window int, async bool) []skiplist.KV {
	t.Helper()
	pairs, streams := eqData()
	m := eqMachine()
	s := skiplist.NewHybrid(m, skiplist.HybridConfig{
		TotalLevels: 9, NMPLevels: 4, KeyMax: eqKeyMax, Window: window, Seed: 7,
	})
	skp := make([]skiplist.KV, len(pairs))
	for i, p := range pairs {
		skp[i] = skiplist.KV{Key: p.k, Value: p.v}
	}
	s.Build(skp, 99)
	s.Start()
	driveStreams(m, streams, func(c *machine.Ctx, th int, ops []kv.Op) {
		if async {
			s.ApplyBatch(c, th, ops)
		} else {
			for _, op := range ops {
				s.Apply(c, th, op)
			}
		}
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("skiplist invariants (window=%d async=%v): %v", window, async, err)
	}
	return s.Dump()
}

func btreeDump(t *testing.T, window int, async bool) []btree.KV {
	t.Helper()
	pairs, streams := eqData()
	m := eqMachine()
	s := btree.NewHybrid(m, btree.HybridBTreeConfig{NMPLevels: 2, Window: window})
	btp := make([]btree.KV, len(pairs))
	for i, p := range pairs {
		btp[i] = btree.KV{Key: p.k, Value: p.v}
	}
	s.Build(btp, 8)
	s.Start()
	driveStreams(m, streams, func(c *machine.Ctx, th int, ops []kv.Op) {
		if async {
			s.ApplyBatch(c, th, ops)
		} else {
			for _, op := range ops {
				s.Apply(c, th, op)
			}
		}
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("btree invariants (window=%d async=%v): %v", window, async, err)
	}
	return s.Dump()
}

func TestSkiplistBlockingNonblockingEquivalent(t *testing.T) {
	want := skiplistDump(t, 1, false)
	if len(want) == 0 {
		t.Fatal("empty blocking dump")
	}
	for _, w := range []int{2, 4} {
		got := skiplistDump(t, w, true)
		if len(got) != len(want) {
			t.Fatalf("window %d: %d pairs, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %d: pair %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

func TestBTreeBlockingNonblockingEquivalent(t *testing.T) {
	want := btreeDump(t, 1, false)
	if len(want) == 0 {
		t.Fatal("empty blocking dump")
	}
	for _, w := range []int{2, 4} {
		got := btreeDump(t, w, true)
		if len(got) != len(want) {
			t.Fatalf("window %d: %d pairs, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %d: pair %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

// --- Cross-stack equivalence: native runtime vs simulator ----------------
//
// The native internal/core runtime and the simulated hybrids consume the
// same hds request vocabulary, so the same operation streams must converge
// to the same final contents on both stacks — the refactor's semantic
// contract. Native dumps are uint64; the sim's are uint32, and eqData keys
// fit either width.

func nativeRequestStreams(streams [][]kv.Op) [][]hds.Request {
	out := make([][]hds.Request, len(streams))
	for th, ops := range streams {
		out[th] = make([]hds.Request, len(ops))
		for i, op := range ops {
			out[th][i] = hds.Request{Kind: op.Kind, Key: uint64(op.Key), Value: uint64(op.Value)}
		}
	}
	return out
}

// eqSkipStore adapts cds.SkipList to core.Store.
type eqSkipStore struct{ s *cds.SkipList }

func (s eqSkipStore) Get(k uint64) (uint64, bool) { return s.s.Get(k) }
func (s eqSkipStore) Put(k, v uint64) bool        { return s.s.Insert(k, v) }
func (s eqSkipStore) Update(k, v uint64) bool     { return s.s.Update(k, v) }
func (s eqSkipStore) Delete(k uint64) bool        { return s.s.Delete(k) }
func (s eqSkipStore) Len() int                    { return s.s.Len() }
func (s eqSkipStore) Ascend(from uint64, fn func(k, v uint64) bool) {
	s.s.Ascend(from, fn)
}

// nativeDump runs eqData's streams against the real runtime — one
// goroutine per stream, blocking (window<=1) or windowed non-blocking —
// and returns the drained final contents.
func nativeDump(t *testing.T, newStore func(int) core.Store, window int) []core.KV {
	t.Helper()
	pairs, streams := eqData()
	h := core.New(core.Config{Partitions: 4, KeyMax: eqKeyMax, NewStore: newStore})
	load := make([]core.KV, len(pairs))
	for i, p := range pairs {
		load[i] = core.KV{Key: uint64(p.k), Value: uint64(p.v)}
	}
	h.Build(load)
	reqs := nativeRequestStreams(streams)
	var wg sync.WaitGroup
	for th := range reqs {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			if window > 1 {
				h.ApplyBatch(reqs[th], window)
				return
			}
			for _, req := range reqs[th] {
				h.Apply(req)
			}
		}()
	}
	wg.Wait()
	h.Close()
	return h.Dump()
}

// requireSameContents compares a native dump to a simulated one.
func requireSameContents(t *testing.T, label string, native []core.KV, sim []eqPair) {
	t.Helper()
	if len(native) != len(sim) {
		t.Fatalf("%s: native %d pairs, sim %d", label, len(native), len(sim))
	}
	for i := range sim {
		if native[i].Key != uint64(sim[i].k) || native[i].Value != uint64(sim[i].v) {
			t.Fatalf("%s: pair %d native=%+v sim=%+v", label, i, native[i], sim[i])
		}
	}
}

func TestNativeMatchesSimulatedBTree(t *testing.T) {
	simDump := btreeDump(t, 1, false)
	sim := make([]eqPair, len(simDump))
	for i, p := range simDump {
		sim[i] = eqPair{p.Key, p.Value}
	}
	for _, window := range []int{1, 4} {
		got := nativeDump(t, nil, window) // nil store -> cds.BTree
		requireSameContents(t, fmt.Sprintf("btree window=%d", window), got, sim)
	}
}

func TestNativeMatchesSimulatedSkiplist(t *testing.T) {
	simDump := skiplistDump(t, 1, false)
	sim := make([]eqPair, len(simDump))
	for i, p := range simDump {
		sim[i] = eqPair{p.Key, p.Value}
	}
	newStore := func(int) core.Store { return eqSkipStore{cds.NewSkipList(12)} }
	for _, window := range []int{1, 4} {
		got := nativeDump(t, newStore, window)
		requireSameContents(t, fmt.Sprintf("skiplist window=%d", window), got, sim)
	}
}

// TestNativeMatchesSimulatedYCSB runs a single-threaded mixed YCSB stream
// (reads, updates, inserts, removes; uniform popularity) through the
// simulated hybrid B+ tree and the native runtime. Single-threaded
// execution makes both stacks apply the identical operation sequence, so
// the final contents must match pair for pair.
func TestNativeMatchesSimulatedYCSB(t *testing.T) {
	const records = 1 << 10
	const keyMax = 1 << 14
	const ops = 600
	gen := ycsb.New(ycsb.Mix(records, keyMax, 50, 25, 25, 11))
	load := gen.Load()
	streams := gen.Streams(1, ops)

	// Simulated stack.
	m := eqMachine()
	s := btree.NewHybrid(m, btree.HybridBTreeConfig{NMPLevels: 2, Window: 1})
	btp := make([]btree.KV, len(load))
	for i, p := range load {
		btp[i] = btree.KV{Key: p.Key, Value: p.Value}
	}
	s.Build(btp, 8)
	s.Start()
	driveStreams(m, streams, func(c *machine.Ctx, th int, opsS []kv.Op) {
		for _, op := range opsS {
			s.Apply(c, th, op)
		}
	})
	simDump := s.Dump()

	// Native stack, same stream.
	h := core.New(core.Config{Partitions: 4, KeyMax: keyMax})
	nl := make([]core.KV, len(load))
	for i, p := range load {
		nl[i] = core.KV{Key: uint64(p.Key), Value: uint64(p.Value)}
	}
	h.Build(nl)
	for _, req := range nativeRequestStreams(streams)[0] {
		h.Apply(req)
	}
	h.Close()
	natDump := h.Dump()

	if len(natDump) != len(simDump) {
		t.Fatalf("native %d pairs, sim %d", len(natDump), len(simDump))
	}
	for i, p := range simDump {
		if natDump[i].Key != uint64(p.Key) || natDump[i].Value != uint64(p.Value) {
			t.Fatalf("pair %d: native=%+v sim=%+v", i, natDump[i], p)
		}
	}
}

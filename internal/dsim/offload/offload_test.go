package offload

import (
	"testing"

	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/hds"
	"hybrids/internal/sim/machine"
)

// newTestWindow builds the shared window directly over publication lists,
// exercising the same instantiation ApplyBatch uses.
func newTestWindow(thread, k int, lists []*fc.PubList) *hds.Window[*machine.Ctx, fc.Request, fc.Response] {
	ports := make([]hds.Port[*machine.Ctx, fc.Request, fc.Response], len(lists))
	for i, p := range lists {
		ports[i] = p
	}
	return hds.NewWindow(thread, k, ports, simPark)
}

func testMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 16 << 20
	cfg.Mem.NMPMemSize = 16 << 20
	cfg.Mem.L2.Size = 64 << 10
	cfg.Mem.L1.Size = 8 << 10
	cfg.Mem.TLB.Entries = 0 // exact-latency tests assume perfect translation
	return machine.New(cfg)
}

// echoHandler returns key+value as the response value.
func echoHandler(c *machine.Ctx, slot int, req fc.Request) fc.Response {
	c.Step(20) // pretend to do some work
	return fc.Response{Success: true, Value: req.Key + req.Value, Ptr: req.NMPPtr}
}

// --- Window ---------------------------------------------------------------

func TestWindowNonBlockingCompletesAll(t *testing.T) {
	m := testMachine()
	const parts = 4
	lists := make([]*fc.PubList, parts)
	for i := range lists {
		lists[i] = fc.NewPubList(m, i, 8)
		pl := lists[i]
		m.SpawnNMP(i, func(c *machine.Ctx) { fc.Serve(c, pl, echoHandler) })
	}
	const total = 40
	var done int
	sum := uint32(0)
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		w := newTestWindow(0, 4, lists)
		issued := 0
		for done < total {
			if issued < total && !w.Full() {
				w.Post(c, issued%parts, fc.Request{Op: fc.OpRead, Key: uint32(issued)}, issued)
				issued++
				continue
			}
			_, resp, _ := w.Harvest(c)
			sum += resp.Value
			done++
		}
	})
	m.Run()
	if done != total {
		t.Fatalf("completed %d/%d", done, total)
	}
	want := uint32(total * (total - 1) / 2)
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestWindowTagsMatchResponses(t *testing.T) {
	m := testMachine()
	p := fc.NewPubList(m, 0, 8)
	m.SpawnNMP(0, func(c *machine.Ctx) { fc.Serve(c, p, echoHandler) })
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		w := newTestWindow(0, 2, []*fc.PubList{p})
		w.Post(c, 0, fc.Request{Op: fc.OpRead, Key: 100}, "a")
		w.Post(c, 0, fc.Request{Op: fc.OpRead, Key: 200}, "b")
		for !w.Empty() {
			tag, resp, _ := w.Harvest(c)
			switch tag {
			case "a":
				if resp.Value != 100 {
					t.Errorf("tag a value %d", resp.Value)
				}
			case "b":
				if resp.Value != 200 {
					t.Errorf("tag b value %d", resp.Value)
				}
			default:
				t.Errorf("unknown tag %v", tag)
			}
		}
	})
	m.Run()
}

func TestWindowPostFullPanics(t *testing.T) {
	m := testMachine()
	p := fc.NewPubList(m, 0, 8)
	m.SpawnNMP(0, func(c *machine.Ctx) {
		for !c.Stopping() {
			c.Step(16)
		}
	})
	var recovered bool
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		defer func() { recovered = recover() != nil }()
		w := newTestWindow(0, 1, []*fc.PubList{p})
		w.Post(c, 0, fc.Request{Op: fc.OpRead}, nil)
		w.Post(c, 0, fc.Request{Op: fc.OpRead}, nil)
	})
	m.Run()
	if !recovered {
		t.Fatal("posting to full window did not panic")
	}
}

// TestWindowHarvestOrderingRoundRobin fills the window against one
// combiner: the combiner serves slots in scan order, and the harvest
// cursor advances round-robin, so completions must come back in posting
// order.
func TestWindowHarvestOrderingRoundRobin(t *testing.T) {
	m := testMachine()
	p := fc.NewPubList(m, 0, 8)
	m.SpawnNMP(0, func(c *machine.Ctx) { fc.Serve(c, p, echoHandler) })
	var order []int
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		w := newTestWindow(0, 4, []*fc.PubList{p})
		for i := 0; i < 4; i++ {
			w.Post(c, 0, fc.Request{Op: fc.OpRead, Key: uint32(i)}, i)
		}
		if !w.Full() {
			t.Error("window not full after 4 posts")
		}
		for !w.Empty() {
			tag, _, _ := w.Harvest(c)
			order = append(order, tag.(int))
		}
	})
	m.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("harvest order = %v, want 0..3 in order", order)
		}
	}
}

// --- Runtime --------------------------------------------------------------

// testAdapter offloads every operation unchanged and treats responses as
// final unless the combiner asked for a retry.
type testAdapter struct{ parts int }

func (testAdapter) Begin(c *machine.Ctx, op kv.Op) int { return 0 }

func (a testAdapter) Prepare(c *machine.Ctx, op kv.Op, st *int, attempt int, batch bool) (fc.Request, int, hds.PrepareCtl, bool) {
	return fc.Request{Op: fc.OpRead, Key: op.Key, Value: op.Value}, int(op.Key) % a.parts, hds.PrepareOffload, false
}

func (a testAdapter) Finish(c *machine.Ctx, op kv.Op, st *int, resp fc.Response) hds.Verdict[fc.Request] {
	if resp.Retry {
		return hds.Verdict[fc.Request]{Kind: hds.OpRetry}
	}
	return hds.Verdict[fc.Request]{Kind: hds.OpDone, OK: resp.Success, Value: uint64(resp.Value)}
}

// retryOnceRuntime starts combiners that answer RETRY to the first request
// for each key and succeed afterwards with value key+1.
func retryOnceRuntime(m *machine.Machine, window int) *Runtime {
	rt := New(m, Config{Window: window})
	for p := 0; p < rt.Partitions(); p++ {
		seen := map[uint32]bool{}
		rt.Start(p, func(c *machine.Ctx, slot int, req fc.Request) fc.Response {
			c.Step(10)
			if !seen[req.Key] {
				seen[req.Key] = true
				return fc.Response{Retry: true}
			}
			return fc.Response{Success: true, Value: req.Key + 1}
		})
	}
	return rt
}

func TestRuntimeApplyRetriesUntilSuccess(t *testing.T) {
	m := testMachine()
	rt := retryOnceRuntime(m, 1)
	ad := testAdapter{parts: rt.Partitions()}
	const n = 12
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		for i := 0; i < n; i++ {
			key := uint32(i * 37)
			v, ok := Apply(rt, ad, c, 0, kv.Op{Kind: kv.Read, Key: key})
			if !ok || v != key+1 {
				t.Errorf("key %d: got (%d,%v), want (%d,true)", key, v, ok, key+1)
			}
		}
	})
	m.Run()
	if got := rt.cRetries.Value(); got != n {
		t.Errorf("retries = %d, want %d", got, n)
	}
	if got := rt.cPosted.Value(); got != 2*n {
		t.Errorf("posted = %d, want %d", got, 2*n)
	}
}

func TestRuntimeApplyBatchRetriesCompleteAll(t *testing.T) {
	m := testMachine()
	rt := retryOnceRuntime(m, 4)
	ad := testAdapter{parts: rt.Partitions()}
	const n = 40
	ops := make([]kv.Op, n)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.Read, Key: uint32(i * 13)}
	}
	var succeeded int
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		succeeded = ApplyBatch(rt, ad, c, 0, ops)
	})
	m.Run()
	if succeeded != n {
		t.Fatalf("succeeded = %d, want %d", succeeded, n)
	}
	if got := rt.cRetries.Value(); got != n {
		t.Errorf("retries = %d, want %d", got, n)
	}
	if got := rt.cPosted.Value(); got != 2*n {
		t.Errorf("posted = %d, want %d", got, 2*n)
	}
}

// depthAdapter records the deepest in-flight count ApplyBatch reaches.
type depthAdapter struct {
	testAdapter
	inflight *int
	max      *int
}

func (a depthAdapter) Prepare(c *machine.Ctx, op kv.Op, st *int, attempt int, batch bool) (fc.Request, int, hds.PrepareCtl, bool) {
	*a.inflight++
	if *a.inflight > *a.max {
		*a.max = *a.inflight
	}
	return a.testAdapter.Prepare(c, op, st, attempt, batch)
}

func (a depthAdapter) Finish(c *machine.Ctx, op kv.Op, st *int, resp fc.Response) hds.Verdict[fc.Request] {
	*a.inflight--
	return a.testAdapter.Finish(c, op, st, resp)
}

// TestRuntimeApplyBatchExhaustsWindow checks that with a slow combiner the
// non-blocking path actually fills its window (issue until Full, then
// harvest) and never exceeds it.
func TestRuntimeApplyBatchExhaustsWindow(t *testing.T) {
	m := testMachine()
	const window = 3
	rt := New(m, Config{Window: window})
	for p := 0; p < rt.Partitions(); p++ {
		rt.Start(p, func(c *machine.Ctx, slot int, req fc.Request) fc.Response {
			c.Step(200) // slow service so the issue side runs ahead
			return fc.Response{Success: true, Value: req.Key}
		})
	}
	inflight, maxDepth := 0, 0
	ad := depthAdapter{testAdapter: testAdapter{parts: rt.Partitions()}, inflight: &inflight, max: &maxDepth}
	ops := make([]kv.Op, 30)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.Read, Key: uint32(i)}
	}
	var succeeded int
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		succeeded = ApplyBatch(rt, ad, c, 0, ops)
	})
	m.Run()
	if succeeded != len(ops) {
		t.Fatalf("succeeded = %d, want %d", succeeded, len(ops))
	}
	if maxDepth != window {
		t.Errorf("max in-flight depth = %d, want %d (window exhaustion)", maxDepth, window)
	}
}

// followUpAdapter asks for one follow-up exchange per operation before
// accepting the response.
type followUpAdapter struct {
	testAdapter
	followed map[uint32]bool
}

func (a followUpAdapter) Finish(c *machine.Ctx, op kv.Op, st *int, resp fc.Response) hds.Verdict[fc.Request] {
	if !a.followed[op.Key] {
		a.followed[op.Key] = true
		return hds.Verdict[fc.Request]{Kind: hds.OpFollowUp, Next: fc.Request{Op: fc.OpUpdate, Key: op.Key, Value: 1}}
	}
	return hds.Verdict[fc.Request]{Kind: hds.OpDone, OK: resp.Success, Value: uint64(resp.Value)}
}

func TestRuntimeFollowUpStaysOnSlot(t *testing.T) {
	m := testMachine()
	rt := New(m, Config{Window: 2})
	slotsByKey := map[uint32][]int{}
	for p := 0; p < rt.Partitions(); p++ {
		rt.Start(p, func(c *machine.Ctx, slot int, req fc.Request) fc.Response {
			c.Step(10)
			slotsByKey[req.Key] = append(slotsByKey[req.Key], slot)
			return fc.Response{Success: true, Value: req.Key + req.Value}
		})
	}
	ad := followUpAdapter{testAdapter: testAdapter{parts: rt.Partitions()}, followed: map[uint32]bool{}}
	const n = 10
	ops := make([]kv.Op, n)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.Read, Key: uint32(i * 11)}
	}
	var succeeded int
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		succeeded = ApplyBatch(rt, ad, c, 0, ops)
	})
	m.Run()
	if succeeded != n {
		t.Fatalf("succeeded = %d, want %d", succeeded, n)
	}
	if got := rt.cFollowUps.Value(); got != n {
		t.Errorf("followups = %d, want %d", got, n)
	}
	// A multi-phase exchange must stay on one publication slot: the
	// combiner keys pending state by slot.
	for key, slots := range slotsByKey {
		if len(slots) != 2 {
			t.Fatalf("key %d served %d times, want 2", key, len(slots))
		}
		if slots[0] != slots[1] {
			t.Errorf("key %d follow-up moved slot %d -> %d", key, slots[0], slots[1])
		}
	}
}

// localAdapter completes odd keys host-side without an NMP call.
type localAdapter struct{ testAdapter }

func (a localAdapter) Prepare(c *machine.Ctx, op kv.Op, st *int, attempt int, batch bool) (fc.Request, int, hds.PrepareCtl, bool) {
	if op.Key%2 == 1 {
		return fc.Request{}, 0, hds.PrepareLocal, true
	}
	return a.testAdapter.Prepare(c, op, st, attempt, batch)
}

func TestRuntimeLocalCompletionSkipsOffload(t *testing.T) {
	m := testMachine()
	rt := New(m, Config{Window: 2})
	for p := 0; p < rt.Partitions(); p++ {
		rt.Start(p, echoHandler)
	}
	ad := localAdapter{testAdapter{parts: rt.Partitions()}}
	const n = 20
	ops := make([]kv.Op, n)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.Read, Key: uint32(i)}
	}
	var succeeded int
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		succeeded = ApplyBatch(rt, ad, c, 0, ops)
	})
	m.Run()
	if succeeded != n {
		t.Fatalf("succeeded = %d, want %d", succeeded, n)
	}
	if got := rt.cLocal.Value(); got != n/2 {
		t.Errorf("local completions = %d, want %d", got, n/2)
	}
	if got := rt.cPosted.Value(); got != n/2 {
		t.Errorf("posted = %d, want %d", got, n/2)
	}
}

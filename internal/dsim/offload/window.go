package offload

import (
	"fmt"

	"hybrids/internal/dsim/fc"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/trace"
)

// Window manages a host thread's in-flight non-blocking NMP calls (§3.5).
//
// Each host thread owns k publication slots in every partition's list:
// window position i maps to slot thread*k+i of whichever partition that
// operation targets. Because an in-flight operation occupies one window
// position, two in-flight operations can never collide on a (partition,
// slot) pair.
type Window struct {
	thread int
	k      int
	lists  []*fc.PubList

	inflight []inflightOp
	used     []bool
	count    int
	next     int // round-robin poll cursor
}

type inflightOp struct {
	part int
	tag  any
}

// NewWindow creates a window of k in-flight operations for thread over the
// per-partition publication lists.
func NewWindow(thread, k int, lists []*fc.PubList) *Window {
	if k <= 0 {
		panic("offload: window size must be positive")
	}
	for _, p := range lists {
		if (thread+1)*k > p.Slots() {
			panic(fmt.Sprintf("offload: thread %d window %d exceeds %d slots", thread, k, p.Slots()))
		}
	}
	return &Window{
		thread:   thread,
		k:        k,
		lists:    lists,
		inflight: make([]inflightOp, k),
		used:     make([]bool, k),
	}
}

// Full reports whether every window position is occupied.
func (w *Window) Full() bool { return w.count == w.k }

// Empty reports whether no operations are in flight.
func (w *Window) Empty() bool { return w.count == 0 }

// Len returns the number of in-flight operations.
func (w *Window) Len() int { return w.count }

// Post publishes req to partition part without blocking, associating tag
// with the operation for completion handling. The window must not be full.
// It returns the window position used (for PostAt follow-ups).
func (w *Window) Post(c *machine.Ctx, part int, req fc.Request, tag any) int {
	if w.Full() {
		panic("offload: Post on full window")
	}
	pos := -1
	for i, u := range w.used {
		if !u {
			pos = i
			break
		}
	}
	w.PostAt(c, pos, part, req, tag)
	return pos
}

// PostAt publishes req through a specific free window position. Multi-phase
// protocols (the hybrid B+ tree's LOCK_PATH / RESUME_INSERT exchange) use
// it to keep a conversation on one publication slot, since the combiner
// keys its pending state by slot.
func (w *Window) PostAt(c *machine.Ctx, pos, part int, req fc.Request, tag any) {
	if w.used[pos] {
		panic("offload: PostAt on occupied position")
	}
	w.used[pos] = true
	w.inflight[pos] = inflightOp{part: part, tag: tag}
	w.count++
	w.lists[part].Post(c, w.thread*w.k+pos, req)
}

// SlotFor returns the publication-list slot index behind a window position.
func (w *Window) SlotFor(pos int) int { return w.thread*w.k + pos }

// TryHarvest polls the next in-flight operation in round-robin order and,
// if complete, removes it from the window and returns its tag, response
// and window position. A single call makes at most one MMIO poll, keeping
// the polling cost of deep windows proportional to progress.
func (w *Window) TryHarvest(c *machine.Ctx) (tag any, resp fc.Response, pos int, ok bool) {
	if w.count == 0 {
		return nil, fc.Response{}, -1, false
	}
	for probe := 0; probe < w.k; probe++ {
		pos := (w.next + probe) % w.k
		if !w.used[pos] {
			continue
		}
		w.next = (pos + 1) % w.k
		p := w.lists[w.inflight[pos].part]
		slot := w.thread*w.k + pos
		if !p.Done(c, slot) {
			// Cursor already advanced: the next call probes the
			// next in-flight operation.
			return nil, fc.Response{}, -1, false
		}
		resp = p.ReadResponse(c, slot)
		tag = w.inflight[pos].tag
		w.used[pos] = false
		w.inflight[pos] = inflightOp{}
		w.count--
		return tag, resp, pos, true
	}
	return nil, fc.Response{}, -1, false
}

// Harvest blocks (in virtual time) until some in-flight operation
// completes, then returns its tag, response and window position. The
// window must not be empty. The wait registers completion watchers on
// every in-flight slot and parks between poll rounds, so a completion
// always wakes the thread.
func (w *Window) Harvest(c *machine.Ctx) (tag any, resp fc.Response, pos int) {
	if w.count == 0 {
		panic("offload: Harvest on empty window")
	}
	for {
		// Register watchers first so a completion landing during the
		// poll round leaves a wake permit.
		for i := 0; i < w.k; i++ {
			if w.used[i] {
				w.lists[w.inflight[i].part].Watch(c, w.thread*w.k+i)
			}
		}
		for probes := w.count; probes > 0; probes-- {
			if tag, resp, pos, ok := w.TryHarvest(c); ok {
				return tag, resp, pos
			}
		}
		// Cycles parked waiting for any in-flight completion are offload
		// wait; fc.Done carves out each request's serialization share when
		// it observes the completion.
		parked := c.Now()
		c.Block()
		c.AttrAdd(trace.BucketOffloadWait, c.Now()-parked)
	}
}

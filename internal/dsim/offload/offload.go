// Package offload is the structure-agnostic NMP offload runtime shared by
// every hybrid data structure. It owns the machinery of §3.2–§3.5 that is
// identical across structures — publication-list setup and combiner
// spawning, blocking calls, the non-blocking in-flight window, the
// retry/restart loop and offload instrumentation — while each structure
// contributes only an internal/hds Adapter: the host-side pre-work that
// routes an operation and encodes its request, and the host-side
// post-work that interprets the response. Apply and ApplyBatch therefore
// exist in exactly one place; the hybrid skiplist (§3.3) and hybrid B+
// tree (§3.4) are small adapters over this runtime.
//
// The protocol vocabulary (PrepareCtl, Verdict, Adapter) and the
// in-flight Window live in internal/hds, shared with the native runtime
// (internal/core); this package instantiates them with the simulator's
// virtual-time context and MMIO publication lists.
package offload

import (
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/hds"
	"hybrids/internal/metrics"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/trace"
)

// Config parameterizes a Runtime.
type Config struct {
	// Window is the number of in-flight NMP calls per host thread used by
	// ApplyBatch (1 = blocking behaviour). Each thread owns Window
	// publication slots per partition: blocking calls use the first,
	// window position i maps to slot thread*Window+i.
	Window int
	// SlotsPerPartition overrides the publication-list size (default
	// HostCores*Window). It must cover (thread+1)*Window for every
	// calling thread.
	SlotsPerPartition int
}

// Adapter is the simulator's instantiation of the shared hds.Adapter
// contract: virtual-time context, 32-bit kv operations and the fc wire
// pair. S carries one operation's host-side state across the runtime's
// retry loop.
type Adapter[S any] interface {
	hds.Adapter[*machine.Ctx, kv.Op, fc.Request, fc.Response, S]
}

// Runtime owns the per-partition publication lists and the offload
// protocol loops for one data structure instance.
type Runtime struct {
	m      *machine.Machine
	pubs   []*fc.PubList
	ports  []hds.Port[*machine.Ctx, fc.Request, fc.Response]
	window int
	// handlers holds each partition's live handler behind one level of
	// indirection: the combiner daemon dereferences it per request, so a
	// boundary rebalance can swap a partition's NMP portion (Republish)
	// without respawning the daemon. Handler swaps are pure Go-side state
	// and consume no virtual time.
	handlers []fc.Handler

	cPosted    *metrics.Counter
	cRetries   *metrics.Counter
	cLocal     *metrics.Counter
	cFollowUps *metrics.Counter
}

// New lays out one publication list per NMP partition and returns the
// runtime. Offload counters (offload/posted, offload/retries,
// offload/local, offload/followups) register in the machine's metrics
// registry.
func New(m *machine.Machine, cfg Config) *Runtime {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	slots := cfg.SlotsPerPartition
	if slots <= 0 {
		slots = m.Cfg.Mem.HostCores * cfg.Window
	}
	rt := &Runtime{
		m:        m,
		window:   cfg.Window,
		handlers: make([]fc.Handler, m.Cfg.Mem.NMPVaults),
	}
	for p := 0; p < m.Cfg.Mem.NMPVaults; p++ {
		pub := fc.NewPubList(m, p, slots)
		rt.pubs = append(rt.pubs, pub)
		rt.ports = append(rt.ports, pub)
	}
	reg := m.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rt.cPosted = reg.Counter("offload/posted")
	rt.cRetries = reg.Counter("offload/retries")
	rt.cLocal = reg.Counter("offload/local")
	rt.cFollowUps = reg.Counter("offload/followups")
	return rt
}

// Window returns the per-thread in-flight call budget.
func (rt *Runtime) Window() int { return rt.window }

// Partitions returns the number of NMP partitions served.
func (rt *Runtime) Partitions() int { return len(rt.pubs) }

// Pub returns partition p's publication list (for white-box tests and
// structure-specific instrumentation).
func (rt *Runtime) Pub(p int) *fc.PubList { return rt.pubs[p] }

// Start spawns partition p's flat-combining combiner daemon serving
// handle. Call once per partition before Machine.Run. The daemon resolves
// the handler through the runtime on every request, so Republish can
// retarget it later.
func (rt *Runtime) Start(p int, handle fc.Handler) {
	rt.handlers[p] = handle
	pub := rt.pubs[p]
	rt.m.SpawnNMP(p, func(c *machine.Ctx) {
		fc.Serve(c, pub, func(c *machine.Ctx, slot int, req fc.Request) fc.Response {
			return rt.handlers[p](c, slot, req)
		})
	})
}

// Republish swaps partition p's live handler — the final step of a
// boundary rebalance, after the new NMP portion is built. The caller must
// guarantee quiescence for the partition (no requests posted or in
// flight); the engine runs exactly one actor at a time, so any point with
// an empty window satisfies that.
func (rt *Runtime) Republish(p int, handle fc.Handler) {
	rt.handlers[p] = handle
}

// Delays aggregates Table 2 offload delay instrumentation across
// partitions.
func (rt *Runtime) Delays() fc.Delays {
	var d fc.Delays
	for _, p := range rt.pubs {
		d.Add(p.Delays())
	}
	return d
}

// simPark is the simulator's Window park hook: cycles parked waiting for
// any in-flight completion are offload wait; fc.Done carves out each
// request's serialization share when it observes the completion.
func simPark(c *machine.Ctx) {
	parked := c.Now()
	c.Block()
	c.AttrAdd(trace.BucketOffloadWait, c.Now()-parked)
}

// newWindow builds the shared in-flight window over the runtime's
// publication lists with the simulator's park hook.
func newWindow(thread, k int, ports []hds.Port[*machine.Ctx, fc.Request, fc.Response]) *hds.Window[*machine.Ctx, fc.Request, fc.Response] {
	return hds.NewWindow(thread, k, ports, simPark)
}

// Apply runs one operation with blocking NMP calls (§3.2): host pre-work,
// post, monitored wait, host post-work, restarting on RETRY. It is the
// kv.Store implementation shared by every hybrid structure.
func Apply[S any](rt *Runtime, ad Adapter[S], c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	st := ad.Begin(c, op)
	slot := thread * rt.window
	for attempt := 0; ; attempt++ {
		req, part, ctl, ok := ad.Prepare(c, op, &st, attempt, false)
		switch ctl {
		case hds.PrepareLocal:
			rt.cLocal.Inc()
			return 0, ok
		case hds.PrepareRestart:
			continue
		}
		rt.cPosted.Inc()
		resp := rt.pubs[part].Call(c, slot, req)
	finish:
		v := ad.Finish(c, op, &st, resp)
		switch v.Kind {
		case hds.OpDone:
			return uint32(v.Value), v.OK
		case hds.OpFollowUp:
			rt.cFollowUps.Inc()
			resp = rt.pubs[part].Call(c, slot, v.Next)
			goto finish
		}
		rt.cRetries.Inc()
	}
}

// inflight carries one non-blocking operation through the window.
type inflight[S any] struct {
	op   kv.Op
	part int
	st   S
}

// ApplyBatch runs ops with non-blocking NMP calls (§3.5), keeping up to
// the runtime's window of operations in flight and harvesting completions
// out of order. It returns the number of operations that succeeded. It is
// the kv.AsyncStore implementation shared by every hybrid structure.
//
// Because the caller cannot see individual completions inside the batch,
// ApplyBatch records Ctx.OpDone itself at every per-operation completion
// point (local fallback or harvested OpDone verdict) — so with attribution
// enabled, each sample covers the interval between two successive
// completions on the thread, and a thread's samples still sum exactly to
// its measured cycles. Blocking drivers (one Apply per op) record OpDone
// themselves.
func ApplyBatch[S any](rt *Runtime, ad Adapter[S], c *machine.Ctx, thread int, ops []kv.Op) int {
	w := newWindow(thread, rt.window, rt.ports)
	succeeded := 0
	gate := 0
	var deferred []*inflight[S]

	issue := func(a *inflight[S]) {
		for attempt := 0; ; attempt++ {
			req, part, ctl, ok := ad.Prepare(c, a.op, &a.st, attempt, true)
			switch ctl {
			case hds.PrepareLocal:
				rt.cLocal.Inc()
				if ok {
					succeeded++
				}
				c.OpDone()
				return
			case hds.PrepareRestart:
				continue
			}
			a.part = part
			rt.cPosted.Inc()
			w.Post(c, part, req, a)
			return
		}
	}
	reissue := func(a *inflight[S]) {
		rt.cRetries.Inc()
		if gate > 0 {
			deferred = append(deferred, a)
		} else {
			issue(a)
		}
	}
	harvest := func() {
		tag, resp, pos := w.Harvest(c)
		a := tag.(*inflight[S])
		v := ad.Finish(c, a.op, &a.st, resp)
		switch v.Gate {
		case hds.GateAcquire:
			gate++
		case hds.GateRelease:
			gate--
		}
		switch v.Kind {
		case hds.OpDone:
			if v.OK {
				succeeded++
			}
			c.OpDone()
		case hds.OpRetry:
			reissue(a)
		case hds.OpFollowUp:
			rt.cFollowUps.Inc()
			w.PostAt(c, pos, a.part, v.Next, a)
		}
	}

	next := 0
	for next < len(ops) || !w.Empty() || len(deferred) > 0 {
		if gate == 0 && len(deferred) > 0 && !w.Full() {
			a := deferred[0]
			deferred = deferred[1:]
			issue(a)
			continue
		}
		if gate == 0 && next < len(ops) && !w.Full() {
			a := &inflight[S]{op: ops[next]}
			next++
			a.st = ad.Begin(c, a.op)
			issue(a)
			continue
		}
		harvest()
	}
	return succeeded
}

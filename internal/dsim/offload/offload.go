// Package offload is the structure-agnostic NMP offload runtime shared by
// every hybrid data structure. It owns the machinery of §3.2–§3.5 that is
// identical across structures — publication-list setup and combiner
// spawning, blocking calls, the non-blocking in-flight window, the
// retry/restart loop and offload instrumentation — while each structure
// contributes only an Adapter: the host-side pre-work that routes an
// operation and encodes its request, and the host-side post-work that
// interprets the response. Apply and ApplyBatch therefore exist in exactly
// one place; the hybrid skiplist (§3.3) and hybrid B+ tree (§3.4) are
// small adapters over this runtime.
package offload

import (
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/metrics"
	"hybrids/internal/sim/machine"
)

// Config parameterizes a Runtime.
type Config struct {
	// Window is the number of in-flight NMP calls per host thread used by
	// ApplyBatch (1 = blocking behaviour). Each thread owns Window
	// publication slots per partition: blocking calls use the first,
	// window position i maps to slot thread*Window+i.
	Window int
	// SlotsPerPartition overrides the publication-list size (default
	// HostCores*Window). It must cover (thread+1)*Window for every
	// calling thread.
	SlotsPerPartition int
}

// Runtime owns the per-partition publication lists and the offload
// protocol loops for one data structure instance.
type Runtime struct {
	m      *machine.Machine
	pubs   []*fc.PubList
	window int

	cPosted    *metrics.Counter
	cRetries   *metrics.Counter
	cLocal     *metrics.Counter
	cFollowUps *metrics.Counter
}

// New lays out one publication list per NMP partition and returns the
// runtime. Offload counters (offload/posted, offload/retries,
// offload/local, offload/followups) register in the machine's metrics
// registry.
func New(m *machine.Machine, cfg Config) *Runtime {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	slots := cfg.SlotsPerPartition
	if slots <= 0 {
		slots = m.Cfg.Mem.HostCores * cfg.Window
	}
	rt := &Runtime{m: m, window: cfg.Window}
	for p := 0; p < m.Cfg.Mem.NMPVaults; p++ {
		rt.pubs = append(rt.pubs, fc.NewPubList(m, p, slots))
	}
	reg := m.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rt.cPosted = reg.Counter("offload/posted")
	rt.cRetries = reg.Counter("offload/retries")
	rt.cLocal = reg.Counter("offload/local")
	rt.cFollowUps = reg.Counter("offload/followups")
	return rt
}

// Window returns the per-thread in-flight call budget.
func (rt *Runtime) Window() int { return rt.window }

// Partitions returns the number of NMP partitions served.
func (rt *Runtime) Partitions() int { return len(rt.pubs) }

// Pub returns partition p's publication list (for white-box tests and
// structure-specific instrumentation).
func (rt *Runtime) Pub(p int) *fc.PubList { return rt.pubs[p] }

// Start spawns partition p's flat-combining combiner daemon serving
// handle. Call once per partition before Machine.Run.
func (rt *Runtime) Start(p int, handle fc.Handler) {
	pub := rt.pubs[p]
	rt.m.SpawnNMP(p, func(c *machine.Ctx) { fc.Serve(c, pub, handle) })
}

// Delays aggregates Table 2 offload delay instrumentation across
// partitions.
func (rt *Runtime) Delays() fc.Delays {
	var d fc.Delays
	for _, p := range rt.pubs {
		d.Add(p.Delays())
	}
	return d
}

// PrepareCtl is an Adapter.Prepare directive.
type PrepareCtl uint8

const (
	// PrepareOffload posts the returned request to the returned partition.
	PrepareOffload PrepareCtl = iota
	// PrepareLocal reports the operation completed host-side without an
	// NMP call (e.g. a remove that lost its host-side race); the ok result
	// is the operation's outcome.
	PrepareLocal
	// PrepareRestart asks the runtime to call Prepare again with the next
	// attempt number (a failed optimistic host traversal).
	PrepareRestart
)

// VerdictKind classifies an Adapter.Finish outcome.
type VerdictKind uint8

const (
	// OpDone: the operation completed with Verdict.Value/OK.
	OpDone VerdictKind = iota
	// OpRetry: restart the whole operation from Prepare (the adapter has
	// already done any cleanup, e.g. unlinking a stale shortcut).
	OpRetry
	// OpFollowUp: post Verdict.Next on the same publication slot — a
	// multi-phase exchange like the B+ tree's LOCK_PATH / RESUME_INSERT
	// conversation, which the combiner keys by slot.
	OpFollowUp
)

// Gate adjusts the runtime's deferral gate. While the gate is held
// (acquires exceed releases), ApplyBatch stops issuing new traversals:
// a host descend could otherwise spin on the calling thread's own
// host-side locks, deadlocking the single actor.
type Gate uint8

// Gate adjustments a Verdict can request.
const (
	GateNone    Gate = iota // leave the gate unchanged
	GateAcquire             // hold the gate: defer new traversals
	GateRelease             // release one hold
)

// Verdict is Adapter.Finish's decision for one response.
type Verdict struct {
	Kind  VerdictKind
	OK    bool
	Value uint32
	// Next is the follow-up request when Kind is OpFollowUp.
	Next fc.Request
	// Gate adjusts the deferral gate (B+ tree path locks).
	Gate Gate
}

// Adapter supplies the structure-specific hooks of the offload protocol.
// S carries one operation's host-side state (pre-allocated nodes, the
// locked path, protocol phase) across the runtime's retry loop.
type Adapter[S any] interface {
	// Begin performs once-per-operation host pre-work (e.g. drawing an
	// insert height and pre-allocating the host node) and returns the
	// operation's initial state.
	Begin(c *machine.Ctx, op kv.Op) S
	// Prepare performs the host-side traversal for one attempt: it routes
	// op to a partition and encodes the request, charging any host-side
	// work (including per-attempt backoff) on c. attempt counts Prepare
	// calls for this operation since the last successful Finish; batch
	// reports whether the caller is the non-blocking path.
	Prepare(c *machine.Ctx, op kv.Op, st *S, attempt int, batch bool) (req fc.Request, part int, ctl PrepareCtl, ok bool)
	// Finish interprets a response, performing host-side post-work (e.g.
	// linking host levels, locking the path), and decides what happens
	// next.
	Finish(c *machine.Ctx, op kv.Op, st *S, resp fc.Response) Verdict
}

// Apply runs one operation with blocking NMP calls (§3.2): host pre-work,
// post, monitored wait, host post-work, restarting on RETRY. It is the
// kv.Store implementation shared by every hybrid structure.
func Apply[S any](rt *Runtime, ad Adapter[S], c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	st := ad.Begin(c, op)
	slot := thread * rt.window
	for attempt := 0; ; attempt++ {
		req, part, ctl, ok := ad.Prepare(c, op, &st, attempt, false)
		switch ctl {
		case PrepareLocal:
			rt.cLocal.Inc()
			return 0, ok
		case PrepareRestart:
			continue
		}
		rt.cPosted.Inc()
		resp := rt.pubs[part].Call(c, slot, req)
	finish:
		v := ad.Finish(c, op, &st, resp)
		switch v.Kind {
		case OpDone:
			return v.Value, v.OK
		case OpFollowUp:
			rt.cFollowUps.Inc()
			resp = rt.pubs[part].Call(c, slot, v.Next)
			goto finish
		}
		rt.cRetries.Inc()
	}
}

// inflight carries one non-blocking operation through the window.
type inflight[S any] struct {
	op   kv.Op
	part int
	st   S
}

// ApplyBatch runs ops with non-blocking NMP calls (§3.5), keeping up to
// the runtime's window of operations in flight and harvesting completions
// out of order. It returns the number of operations that succeeded. It is
// the kv.AsyncStore implementation shared by every hybrid structure.
//
// Because the caller cannot see individual completions inside the batch,
// ApplyBatch records Ctx.OpDone itself at every per-operation completion
// point (local fallback or harvested OpDone verdict) — so with attribution
// enabled, each sample covers the interval between two successive
// completions on the thread, and a thread's samples still sum exactly to
// its measured cycles. Blocking drivers (one Apply per op) record OpDone
// themselves.
func ApplyBatch[S any](rt *Runtime, ad Adapter[S], c *machine.Ctx, thread int, ops []kv.Op) int {
	w := NewWindow(thread, rt.window, rt.pubs)
	succeeded := 0
	gate := 0
	var deferred []*inflight[S]

	issue := func(a *inflight[S]) {
		for attempt := 0; ; attempt++ {
			req, part, ctl, ok := ad.Prepare(c, a.op, &a.st, attempt, true)
			switch ctl {
			case PrepareLocal:
				rt.cLocal.Inc()
				if ok {
					succeeded++
				}
				c.OpDone()
				return
			case PrepareRestart:
				continue
			}
			a.part = part
			rt.cPosted.Inc()
			w.Post(c, part, req, a)
			return
		}
	}
	reissue := func(a *inflight[S]) {
		rt.cRetries.Inc()
		if gate > 0 {
			deferred = append(deferred, a)
		} else {
			issue(a)
		}
	}
	harvest := func() {
		tag, resp, pos := w.Harvest(c)
		a := tag.(*inflight[S])
		v := ad.Finish(c, a.op, &a.st, resp)
		switch v.Gate {
		case GateAcquire:
			gate++
		case GateRelease:
			gate--
		}
		switch v.Kind {
		case OpDone:
			if v.OK {
				succeeded++
			}
			c.OpDone()
		case OpRetry:
			reissue(a)
		case OpFollowUp:
			rt.cFollowUps.Inc()
			w.PostAt(c, pos, a.part, v.Next, a)
		}
	}

	next := 0
	for next < len(ops) || !w.Empty() || len(deferred) > 0 {
		if gate == 0 && len(deferred) > 0 && !w.Full() {
			a := deferred[0]
			deferred = deferred[1:]
			issue(a)
			continue
		}
		if gate == 0 && next < len(ops) && !w.Full() {
			a := &inflight[S]{op: ops[next]}
			next++
			a.st = ad.Begin(c, a.op)
			issue(a)
			continue
		}
		harvest()
	}
	return succeeded
}

package bskiplist

import (
	"fmt"
	"sort"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/offload"
	"hybrids/internal/hds"
	"hybrids/internal/metrics"
	"hybrids/internal/radix"
	"hybrids/internal/sim/machine"
)

// Hybrid is the hybrid B-skiplist: per-partition NMP-managed bottom
// levels (seqBList) under a per-partition static host router holding the
// top levels, all in fat cache-block nodes. The host side of an operation
// is a read-only descent through the router — small enough to stay
// LLC-resident, the HybriDS host-portion benefit — ending in a
// begin-NMP-traversal pointer at the boundary; everything else runs
// NMP-side through the shared offload runtime. Because NMP nodes are
// never unlinked and the router is immutable after Build, operations
// never retry and inserts never cross the boundary back to the host.
type Hybrid struct {
	m         *machine.Machine
	part      kv.RangePartitioner
	lists     []*seqBList
	rt        *offload.Runtime
	hostHeads [][]uint32 // hostHeads[p][j]: router head of host level j

	split boundary.Split
	fill  int
}

// Config parameterizes the hybrid B-skiplist.
type Config struct {
	// Split is the host/NMP boundary: Split.Total is the per-partition
	// level count (leaves plus routing levels), Split.NMP how many
	// bottom levels live NMP-side; the remaining Split.Host() top
	// levels form the host router, sized to fit the LLC.
	Split boundary.Split
	// Fill is the bulk-load entry count per fat node (of EntryMax
	// slots); the slack absorbs post-build inserts.
	Fill int
	// KeyMax bounds the key space for range partitioning.
	KeyMax uint32
	// Window is the number of in-flight NMP calls per host thread used
	// by ApplyBatch (1 = blocking behaviour).
	Window int
}

// NewHybrid creates the structure; Build must run before Start.
func NewHybrid(m *machine.Machine, cfg Config) *Hybrid {
	if cfg.Split.Total <= 0 || cfg.Split.Validate() != nil {
		panic("bskiplist: split must partition the structure")
	}
	if cfg.Fill < 2 || cfg.Fill > EntryMax {
		panic("bskiplist: build fill must be in [2, EntryMax]")
	}
	t := &Hybrid{
		m:    m,
		part: kv.RangePartitioner{KeyMax: cfg.KeyMax, Parts: m.Cfg.Mem.NMPVaults},
		rt:   offload.New(m, offload.Config{Window: cfg.Window}),
		fill: cfg.Fill,
	}
	t.layout(cfg.Split)
	return t
}

// layout (re)creates the empty per-partition NMP levels and the host
// router heads at split, from fresh allocations.
func (t *Hybrid) layout(split boundary.Split) {
	ram := t.m.Mem.RAM
	host := split.Host()
	t.lists = t.lists[:0]
	t.hostHeads = t.hostHeads[:0]
	for p := 0; p < t.m.Cfg.Mem.NMPVaults; p++ {
		l := newSeqBList(ram, t.m.Mem.NMPAlloc[p], split.NMP)
		t.lists = append(t.lists, l)
		heads := make([]uint32, host)
		below := l.heads[split.NMP-1]
		for j := 0; j < host; j++ {
			h := buildFat(ram, t.m.Mem.HostAlloc, 0, 1)
			ram.Store32(keyAddr(h, 0), 0)
			ram.Store32(payAddr(h, 0), below)
			heads[j] = h
			below = h
		}
		t.hostHeads = append(t.hostHeads, heads)
	}
	t.split = split
}

// Split returns the current host/NMP boundary.
func (t *Hybrid) Split() boundary.Split { return t.split }

// Rebalance moves the host/NMP boundary to next: a drained-epoch
// transition executed at quiescence (no requests posted or in flight).
// Live pairs are dumped from the authoritative leaves, the NMP levels
// and host router are rebuilt at the new split from fresh allocations
// (the old portions' bump-allocated memory is abandoned), and the
// running combiner daemons are retargeted through the offload runtime's
// handler indirection. Total levels cannot change, only the boundary
// moves.
func (t *Hybrid) Rebalance(next boundary.Split) error {
	if next.Total != t.split.Total {
		return fmt.Errorf("bskiplist: rebalance cannot change total levels (%d -> %d)", t.split.Total, next.Total)
	}
	if err := next.Validate(); err != nil {
		return err
	}
	if next == t.split {
		return nil
	}
	pairs := t.Dump()
	t.layout(next)
	t.Build(pairs)
	for p := range t.lists {
		t.rt.Republish(p, t.lists[p].handler())
	}
	return nil
}

// Build bulk-loads pairs (untimed): each partition's NMP levels are
// packed Fill entries per node, then the host router levels are packed
// over the NMP portion's top-level nodes.
func (t *Hybrid) Build(pairs []KV) {
	sorted := append([]KV(nil), pairs...)
	radix.SortFunc(sorted, func(p KV) uint32 { return p.Key })
	uniq := sorted[:0]
	for i, p := range sorted {
		if i == 0 || p.Key != sorted[i-1].Key {
			uniq = append(uniq, p)
		}
	}
	ram := t.m.Mem.RAM
	start := 0
	for p := range t.lists {
		end := start
		for end < len(uniq) && t.part.Part(uniq[end].Key) == p {
			end++
		}
		level := t.lists[p].buildSorted(ram, uniq[start:end], t.fill)
		for _, head := range t.hostHeads[p] {
			level = packLevel(ram, t.m.Mem.HostAlloc, head, level, t.fill)
		}
		start = end
	}
}

// Start spawns the NMP combiner daemons. Call once before Machine.Run.
func (t *Hybrid) Start() {
	for p := range t.lists {
		t.rt.Start(p, t.lists[p].handler())
	}
}

// route performs the host-side traversal (timed): a read-only descent
// through the key's partition router yielding the begin-NMP-traversal
// node on the NMP portion's top level.
func (t *Hybrid) route(c *machine.Ctx, key uint32) (part int, begin uint32) {
	p := t.part.Part(key)
	heads := t.hostHeads[p]
	curr := heads[len(heads)-1]
	for j := len(heads) - 1; j >= 0; j-- {
		curr = walkLevel(c, curr, key)
		curr = c.Read32(payAddr(curr, entryIdx(c, curr, key)))
	}
	return p, curr
}

// bsAdapter plugs the hybrid B-skiplist into the shared offload runtime.
// Operations carry no cross-attempt state: the router descent is
// read-only and the NMP side never asks for a retry or follow-up.
type bsAdapter struct{ t *Hybrid }

func (ad bsAdapter) Begin(c *machine.Ctx, op kv.Op) struct{} { return struct{}{} }

func (ad bsAdapter) Prepare(c *machine.Ctx, op kv.Op, st *struct{}, attempt int, batch bool) (fc.Request, int, hds.PrepareCtl, bool) {
	part, begin := ad.t.route(c, op.Key)
	req := fc.Request{Key: op.Key, Value: op.Value, NMPPtr: begin}
	switch op.Kind {
	case kv.Read:
		req.Op = fc.OpRead
	case kv.Update:
		req.Op = fc.OpUpdate
	case kv.Insert:
		req.Op = fc.OpInsert
	case kv.Remove:
		req.Op = fc.OpRemove
	default:
		panic("bskiplist: unknown op kind")
	}
	return req, part, hds.PrepareOffload, false
}

func (ad bsAdapter) Finish(c *machine.Ctx, op kv.Op, st *struct{}, resp fc.Response) hds.Verdict[fc.Request] {
	return hds.Verdict[fc.Request]{Kind: hds.OpDone, OK: resp.Success, Value: uint64(resp.Value)}
}

// Apply implements kv.Store with blocking NMP calls.
func (t *Hybrid) Apply(c *machine.Ctx, thread int, op kv.Op) (uint32, bool) {
	return offload.Apply(t.rt, bsAdapter{t}, c, thread, op)
}

// ApplyBatch implements kv.AsyncStore: non-blocking NMP calls (§3.5).
func (t *Hybrid) ApplyBatch(c *machine.Ctx, thread int, ops []kv.Op) int {
	return offload.ApplyBatch(t.rt, bsAdapter{t}, c, thread, ops)
}

// Dump returns live pairs across all partitions — the authoritative
// leaves — in key order (untimed).
func (t *Hybrid) Dump() []KV {
	var out []KV
	for _, l := range t.lists {
		out = append(out, l.dump(t.m.Mem.RAM)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CheckInvariants validates every partition's NMP levels, the partition
// key ranges, and the host router: sorted fat-node chains whose boundary
// entries reference live NMP top-level nodes (untimed).
func (t *Hybrid) CheckInvariants() error {
	ram := t.m.Mem.RAM
	for p, l := range t.lists {
		if err := l.checkInvariants(ram); err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
		lo, hi := t.part.Range(p)
		for _, pair := range l.dump(ram) {
			if pair.Key < lo || pair.Key >= hi {
				return errf("partition %d holds out-of-range key %d", p, pair.Key)
			}
		}
		below, err := checkLevel(ram, l.heads[t.split.NMP-1], t.split.NMP-1, false)
		if err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
		for j, head := range t.hostHeads[p] {
			members := make(map[uint32]bool, len(below))
			for _, n := range below {
				members[n.addr] = true
			}
			nodes, err := checkLevel(ram, head, t.split.NMP+j, true)
			if err != nil {
				return fmt.Errorf("partition %d router: %w", p, err)
			}
			if err := checkRouting(ram, nodes, t.split.NMP+j, members); err != nil {
				return fmt.Errorf("partition %d router: %w", p, err)
			}
			below = nodes
		}
	}
	return nil
}

// Delays aggregates offload delay instrumentation across partitions.
func (t *Hybrid) Delays() fc.Delays { return t.rt.Delays() }

// Metrics returns the owning machine's unified instrumentation registry.
func (t *Hybrid) Metrics() *metrics.Registry { return t.m.Metrics }

func errf(format string, args ...any) error {
	return fmt.Errorf("bskiplist: "+format, args...)
}

var (
	_ kv.Store      = (*Hybrid)(nil)
	_ kv.AsyncStore = (*Hybrid)(nil)
)

// Package bskiplist implements a cache-conscious B-skiplist on the
// simulated NMP machine, the third store engine behind the shared offload
// runtime: every level is a linked list of fat multi-key nodes sized to
// exactly one 128 B cache block (the locality-optimized layout of the
// B-skiplist literature), so traversal scans contiguous keys instead of
// chasing one pointer per key.
//
// The HybriDS split (§3.3 generalized): the bottom NMPLevels levels of
// each partition live in NMP memory and are operated single-threadedly by
// the partition's flat-combining NMP core; the remaining top levels form a
// per-partition *static router* in host memory, built once at load time
// and thereafter read-only, so host traversals of it stay LLC-resident.
// Runtime promotions cap at the NMP portion's top level (the same height
// capping as §3.3 Listing 2): nodes split after the build are reachable
// through forward walks from their routed predecessor, never removed and
// never re-routed, which is what keeps the router valid without any
// host-NMP synchronization protocol — there is no retry path at all.
package bskiplist

import (
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// Geometry: one fat node per 128 B cache block.
const (
	// NodeBytes is the node footprint: exactly one cache block.
	NodeBytes = 128
	// EntryMax is the entry capacity of a node: 14 keys plus 14 payload
	// words (leaf values or down pointers) beside a 12 B header.
	EntryMax = 14
)

// Node layout (byte offsets). lo is the node's immutable lower bound:
// every key in or below the node is >= lo and < next.lo when next != 0.
// Leaves put values in the payload words; routing nodes put pointers one
// level down, with keys[i] == lo of payload[i]'s node.
const (
	offLo   = 0  // uint32 lower bound
	offN    = 4  // uint32 entry count
	offNext = 8  // uint32 next node on this level (0: end)
	offKeys = 12 // uint32 keys[14]
	offPay  = 68 // uint32 payload[14]
)

func loAddr(n uint32) memsys.Addr          { return memsys.Addr(n) + offLo }
func nAddr(n uint32) memsys.Addr           { return memsys.Addr(n) + offN }
func nextAddr(n uint32) memsys.Addr        { return memsys.Addr(n) + offNext }
func keyAddr(n uint32, i int) memsys.Addr  { return memsys.Addr(n) + offKeys + memsys.Addr(4*i) }
func payAddr(n uint32, i int) memsys.Addr  { return memsys.Addr(n) + offPay + memsys.Addr(4*i) }

// allocFat carves a fresh node with timed header stores (operation path;
// allocation bookkeeping itself is free, matching a per-core free list).
func allocFat(c *machine.Ctx, al *memsys.Allocator, lo uint32, n int) uint32 {
	node := uint32(al.Alloc(NodeBytes, NodeBytes))
	c.Write32(loAddr(node), lo)
	c.Write32(nAddr(node), uint32(n))
	c.Write32(nextAddr(node), 0)
	return node
}

// buildFat is allocFat's untimed load-phase counterpart.
func buildFat(ram *memsys.RAM, al *memsys.Allocator, lo uint32, n int) uint32 {
	node := uint32(al.Alloc(NodeBytes, NodeBytes))
	ram.Store32(loAddr(node), lo)
	ram.Store32(nAddr(node), uint32(n))
	ram.Store32(nextAddr(node), 0)
	return node
}

// walkLevel advances along one level's chain (timed) to the last node
// whose lower bound covers key.
func walkLevel(c *machine.Ctx, curr, key uint32) uint32 {
	steps := uint64(1)
	for {
		next := c.Read32(nextAddr(curr))
		if next != 0 && c.Read32(loAddr(next)) <= key {
			curr = next
			steps++
		} else {
			break
		}
	}
	// Per-node compare/branch work, charged once per level walk.
	c.Step(steps)
	return curr
}

// entryIdx scans a routing node's keys (timed) for the greatest entry
// with keys[i] <= key; the head sentinel entry (key 0) or the node's own
// lower bound guarantees i >= 0 on any node a descent reaches.
func entryIdx(c *machine.Ctx, node, key uint32) int {
	nn := int(c.Read32(nAddr(node)))
	i := 0
	for i < nn-1 && c.Read32(keyAddr(node, i+1)) <= key {
		i++
	}
	c.Step(uint64(i + 1))
	return i
}

// leafSlot scans a leaf (timed) for key, returning its slot or -1.
func leafSlot(c *machine.Ctx, leaf, key uint32) int {
	nn := int(c.Read32(nAddr(leaf)))
	for i := 0; i < nn; i++ {
		k := c.Read32(keyAddr(leaf, i))
		if k == key {
			c.Step(uint64(i + 1))
			return i
		}
		if k > key {
			c.Step(uint64(i + 1))
			return -1
		}
	}
	c.Step(uint64(nn))
	return -1
}

// KV is a key-value pair produced by verification walks.
type KV struct {
	Key, Value uint32
}

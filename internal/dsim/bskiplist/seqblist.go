package bskiplist

import (
	"hybrids/internal/dsim/fc"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
)

// seqBList is the NMP-managed portion of the hybrid B-skiplist inside one
// partition: the bottom `levels` levels of fat nodes, operated
// single-threadedly by the partition's NMP core. Deletion is relaxed —
// leaves may underflow to empty and nodes are never merged or unlinked —
// so lower bounds are immutable and every pointer ever handed out (host
// router entries, begin-traversal shortcuts) stays valid forever; that is
// why the handler has no retry responses. Splits promote a routing entry
// one level up along the descent path and are dropped at the portion's
// top level (§3.3 Listing 2 height capping): post-build nodes are found
// by forward walks instead of router entries.
type seqBList struct {
	levels int
	heads  []uint32 // heads[l]; level 0 holds the leaves
	alloc  *memsys.Allocator
}

// newSeqBList builds the empty head chain: one head per level with lower
// bound 0; each routing head anchors the level below through its sentinel
// entry (key 0).
func newSeqBList(ram *memsys.RAM, alloc *memsys.Allocator, levels int) *seqBList {
	s := &seqBList{levels: levels, alloc: alloc}
	s.heads = make([]uint32, levels)
	s.heads[0] = buildFat(ram, alloc, 0, 0)
	for l := 1; l < levels; l++ {
		h := buildFat(ram, alloc, 0, 1)
		ram.Store32(keyAddr(h, 0), 0)
		ram.Store32(payAddr(h, 0), s.heads[l-1])
		s.heads[l] = h
	}
	return s
}

// findFrom descends (timed) from the begin node — which sits on the
// portion's top level — to the leaf covering key, recording the visited
// node per level in path.
func (s *seqBList) findFrom(c *machine.Ctx, begin, key uint32, path []uint32) uint32 {
	curr := begin
	for level := s.levels - 1; level > 0; level-- {
		curr = walkLevel(c, curr, key)
		path[level] = curr
		curr = c.Read32(payAddr(curr, entryIdx(c, curr, key)))
	}
	curr = walkLevel(c, curr, key)
	path[0] = curr
	return curr
}

// insertAt shifts a non-full node's entries right of pos (timed) and
// stores the new entry.
func insertAt(c *machine.Ctx, node uint32, nn, pos int, key, pay uint32) {
	for j := nn; j > pos; j-- {
		c.Write32(keyAddr(node, j), c.Read32(keyAddr(node, j-1)))
		c.Write32(payAddr(node, j), c.Read32(payAddr(node, j-1)))
	}
	c.Write32(keyAddr(node, pos), key)
	c.Write32(payAddr(node, pos), pay)
	c.Write32(nAddr(node), uint32(nn+1))
}

// entryPos scans (timed) for the sorted position of key among a node's
// entries.
func entryPos(c *machine.Ctx, node uint32, nn int, key uint32) int {
	pos := 0
	for pos < nn && c.Read32(keyAddr(node, pos)) < key {
		pos++
	}
	c.Step(uint64(pos + 1))
	return pos
}

// splitInsert splits a full node around the insertion of (key, pay),
// links the new right sibling into the level chain and returns it. The
// right node's lower bound is its first key — the entry promoted upward.
func splitInsert(c *machine.Ctx, al *memsys.Allocator, node uint32, key, pay uint32) uint32 {
	var keys [EntryMax + 1]uint32
	var pays [EntryMax + 1]uint32
	pos := entryPos(c, node, EntryMax, key)
	for i := 0; i < pos; i++ {
		keys[i] = c.Read32(keyAddr(node, i))
		pays[i] = c.Read32(payAddr(node, i))
	}
	keys[pos], pays[pos] = key, pay
	for i := pos; i < EntryMax; i++ {
		keys[i+1] = c.Read32(keyAddr(node, i))
		pays[i+1] = c.Read32(payAddr(node, i))
	}
	total := EntryMax + 1
	leftN := (total + 1) / 2
	right := allocFat(c, al, keys[leftN], total-leftN)
	for i := leftN; i < total; i++ {
		c.Write32(keyAddr(right, i-leftN), keys[i])
		c.Write32(payAddr(right, i-leftN), pays[i])
	}
	for i := 0; i < leftN; i++ {
		c.Write32(keyAddr(node, i), keys[i])
		c.Write32(payAddr(node, i), pays[i])
	}
	c.Write32(nAddr(node), uint32(leftN))
	c.Write32(nextAddr(right), c.Read32(nextAddr(node)))
	c.Write32(nextAddr(node), right)
	return right
}

// insert adds (key, value) to the leaf at path[0], splitting and
// promoting along the recorded path; promotions that climb past the
// portion's top level are dropped.
func (s *seqBList) insert(c *machine.Ctx, path []uint32, key, value uint32) {
	leaf := path[0]
	nn := int(c.Read32(nAddr(leaf)))
	if nn < EntryMax {
		insertAt(c, leaf, nn, entryPos(c, leaf, nn, key), key, value)
		return
	}
	right := splitInsert(c, s.alloc, leaf, key, value)
	for lv := 1; lv < s.levels; lv++ {
		node := path[lv]
		ekey := c.Read32(loAddr(right))
		nn := int(c.Read32(nAddr(node)))
		if nn < EntryMax {
			insertAt(c, node, nn, entryPos(c, node, nn, ekey), ekey, right)
			return
		}
		right = splitInsert(c, s.alloc, node, ekey, right)
	}
}

// remove deletes key from the leaf (timed shift); the leaf stays linked
// even when it empties.
func (s *seqBList) remove(c *machine.Ctx, leaf uint32, slot int) {
	nn := int(c.Read32(nAddr(leaf)))
	for j := slot; j < nn-1; j++ {
		c.Write32(keyAddr(leaf, j), c.Read32(keyAddr(leaf, j+1)))
		c.Write32(payAddr(leaf, j), c.Read32(payAddr(leaf, j+1)))
	}
	c.Write32(nAddr(leaf), uint32(nn-1))
}

// handler builds the fc.Handler serving this partition's operations. The
// begin pointer is the host router's boundary entry (0: the portion's own
// top head). Begin nodes are never invalidated, so no request is ever
// answered with Retry.
func (s *seqBList) handler() fc.Handler {
	path := make([]uint32, s.levels)
	return func(c *machine.Ctx, slot int, req fc.Request) fc.Response {
		begin := req.NMPPtr
		if begin == 0 {
			begin = s.heads[s.levels-1]
		}
		leaf := s.findFrom(c, begin, req.Key, path)
		i := leafSlot(c, leaf, req.Key)
		switch req.Op {
		case fc.OpRead:
			if i < 0 {
				return fc.Response{}
			}
			return fc.Response{Success: true, Value: c.Read32(payAddr(leaf, i))}
		case fc.OpUpdate:
			if i < 0 {
				return fc.Response{}
			}
			c.Write32(payAddr(leaf, i), req.Value)
			return fc.Response{Success: true}
		case fc.OpInsert:
			if i >= 0 {
				return fc.Response{}
			}
			s.insert(c, path, req.Key, req.Value)
			return fc.Response{Success: true}
		case fc.OpRemove:
			if i < 0 {
				return fc.Response{}
			}
			s.remove(c, leaf, i)
			return fc.Response{Success: true}
		default:
			panic("bskiplist: unexpected NMP op " + req.Op.String())
		}
	}
}

// nodeInfo describes one built node for the level above.
type nodeInfo struct {
	addr uint32
	lo   uint32
}

// packLevel builds one level's chain (untimed) over children entries,
// `fill` per node, appending the new nodes after head. Children is the
// (lo, addr) list excluding the level-below head, which the head's
// sentinel entry already anchors.
func packLevel(ram *memsys.RAM, al *memsys.Allocator, head uint32, children []nodeInfo, fill int) []nodeInfo {
	var out []nodeInfo
	tail := head
	for lo := 0; lo < len(children); lo += fill {
		hi := lo + fill
		if hi > len(children) {
			hi = len(children)
		}
		n := buildFat(ram, al, children[lo].lo, hi-lo)
		for j := lo; j < hi; j++ {
			ram.Store32(keyAddr(n, j-lo), children[j].lo)
			ram.Store32(payAddr(n, j-lo), children[j].addr)
		}
		ram.Store32(nextAddr(tail), n)
		tail = n
		out = append(out, nodeInfo{addr: n, lo: children[lo].lo})
	}
	return out
}

// buildSorted bulk-loads sorted unique pairs (untimed), `fill` entries
// per fat node, and returns the portion's top-level non-head nodes — the
// children of the host router's boundary level.
func (s *seqBList) buildSorted(ram *memsys.RAM, pairs []KV, fill int) []nodeInfo {
	var level []nodeInfo
	tail := s.heads[0]
	for lo := 0; lo < len(pairs); lo += fill {
		hi := lo + fill
		if hi > len(pairs) {
			hi = len(pairs)
		}
		n := buildFat(ram, s.alloc, pairs[lo].Key, hi-lo)
		for j := lo; j < hi; j++ {
			ram.Store32(keyAddr(n, j-lo), pairs[j].Key)
			ram.Store32(payAddr(n, j-lo), pairs[j].Value)
		}
		ram.Store32(nextAddr(tail), n)
		tail = n
		level = append(level, nodeInfo{addr: n, lo: pairs[lo].Key})
	}
	for l := 1; l < s.levels; l++ {
		level = packLevel(ram, s.alloc, s.heads[l], level, fill)
	}
	return level
}

// Untimed verification walks.

func (s *seqBList) dump(ram *memsys.RAM) []KV {
	var out []KV
	for n := s.heads[0]; n != 0; n = ram.Load32(nextAddr(n)) {
		nn := int(ram.Load32(nAddr(n)))
		for i := 0; i < nn; i++ {
			out = append(out, KV{ram.Load32(keyAddr(n, i)), ram.Load32(payAddr(n, i))})
		}
	}
	return out
}

// checkLevel validates one fat-node chain (untimed): strictly increasing
// lower bounds, entry counts within capacity, sorted keys inside each
// node's [lo, next.lo) range. It returns the chain's (lo, addr) members
// for cross-level checks.
func checkLevel(ram *memsys.RAM, head uint32, level int, innermin bool) ([]nodeInfo, error) {
	var out []nodeInfo
	prevLo := uint32(0)
	prevKey := uint32(0)
	first := true
	for n := head; n != 0; n = ram.Load32(nextAddr(n)) {
		lo := ram.Load32(loAddr(n))
		if n != head && lo <= prevLo {
			return nil, errf("level %d lower bound %d after %d", level, lo, prevLo)
		}
		nn := int(ram.Load32(nAddr(n)))
		if nn < 0 || nn > EntryMax {
			return nil, errf("level %d node with %d entries", level, nn)
		}
		if innermin && nn < 1 {
			return nil, errf("level %d routing node empty", level)
		}
		hi := ^uint32(0)
		if next := ram.Load32(nextAddr(n)); next != 0 {
			hi = ram.Load32(loAddr(next))
		}
		for i := 0; i < nn; i++ {
			k := ram.Load32(keyAddr(n, i))
			if !first && k <= prevKey {
				return nil, errf("level %d key %d after %d", level, k, prevKey)
			}
			if k < lo || k >= hi {
				return nil, errf("level %d key %d outside [%d,%d)", level, k, lo, hi)
			}
			prevKey, first = k, false
		}
		out = append(out, nodeInfo{addr: n, lo: lo})
		prevLo = lo
	}
	return out, nil
}

// checkRouting validates that every entry of a routing level points at a
// member of the level below whose lower bound matches the entry key.
func checkRouting(ram *memsys.RAM, nodes []nodeInfo, level int, below map[uint32]bool) error {
	for _, n := range nodes {
		nn := int(ram.Load32(nAddr(n.addr)))
		for i := 0; i < nn; i++ {
			k := ram.Load32(keyAddr(n.addr, i))
			child := ram.Load32(payAddr(n.addr, i))
			if !below[child] {
				return errf("level %d entry %d points outside the level below", level, k)
			}
			if got := ram.Load32(loAddr(child)); got != k {
				return errf("level %d entry %d at child with lower bound %d", level, k, got)
			}
		}
	}
	return nil
}

func (s *seqBList) checkInvariants(ram *memsys.RAM) error {
	below, err := checkLevel(ram, s.heads[0], 0, false)
	if err != nil {
		return err
	}
	for l := 1; l < s.levels; l++ {
		members := make(map[uint32]bool, len(below))
		for _, n := range below {
			members[n.addr] = true
		}
		nodes, err := checkLevel(ram, s.heads[l], l, true)
		if err != nil {
			return err
		}
		if err := checkRouting(ram, nodes, l, members); err != nil {
			return err
		}
		below = nodes
	}
	return nil
}

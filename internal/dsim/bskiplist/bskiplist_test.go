package bskiplist

import (
	"fmt"
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/prng"
	"hybrids/internal/sim/machine"
)

const (
	testLevels    = 5
	testNMPLevels = 2
	testFill      = 8
	testKeyMax    = 1 << 20
	testN         = 2000
)

func testMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 32 << 20
	cfg.Mem.NMPMemSize = 32 << 20
	cfg.Mem.L2.Size = 128 << 10
	cfg.Mem.L1.Size = 8 << 10
	return machine.New(cfg)
}

func buildHybrid(m *machine.Machine, pairs []KV, window int) *Hybrid {
	s := NewHybrid(m, Config{
		Split: boundary.Split{Total: testLevels, NMP: testNMPLevels}, Fill: testFill,
		KeyMax: testKeyMax, Window: window,
	})
	s.Build(pairs)
	s.Start()
	return s
}

// initialPairs produces deterministic distinct keys in the lower half of
// the key space, so tests mint fresh insert keys from the upper half.
func initialPairs(n int) []KV {
	rng := prng.New(54321)
	seen := map[uint32]bool{}
	var out []KV
	for len(out) < n {
		k := rng.Uint32()%(testKeyMax/2-1) + 1
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, KV{Key: k, Value: k ^ 0x5a5a5a5a})
	}
	return out
}

// oracle mirrors store semantics on a plain map.
type oracle map[uint32]uint32

func (o oracle) apply(op kv.Op) (uint32, bool) {
	switch op.Kind {
	case kv.Read:
		v, ok := o[op.Key]
		return v, ok
	case kv.Update:
		if _, ok := o[op.Key]; !ok {
			return 0, false
		}
		o[op.Key] = op.Value
		return 0, true
	case kv.Insert:
		if _, ok := o[op.Key]; ok {
			return 0, false
		}
		o[op.Key] = op.Value
		return 0, true
	case kv.Remove:
		if _, ok := o[op.Key]; !ok {
			return 0, false
		}
		delete(o, op.Key)
		return 0, true
	}
	panic("bad op")
}

func (o oracle) dump() []KV {
	var out []KV
	for k, v := range o {
		out = append(out, KV{k, v})
	}
	sortKVs(out)
	return out
}

func sortKVs(s []KV) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Key < s[j-1].Key; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func kvsEqual(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mixedOps generates a deterministic op stream over existing keys plus
// fresh inserts minted from a disjoint upper-half block per stream.
func mixedOps(seed uint64, n int, existing []KV, freshBase uint32) []kv.Op {
	rng := prng.New(seed)
	ops := make([]kv.Op, n)
	fresh := freshBase
	for i := range ops {
		r := rng.Intn(100)
		switch {
		case r < 50:
			ops[i] = kv.Op{Kind: kv.Read, Key: existing[rng.Intn(len(existing))].Key}
		case r < 60:
			ops[i] = kv.Op{Kind: kv.Update, Key: existing[rng.Intn(len(existing))].Key, Value: rng.Uint32()}
		case r < 80:
			if rng.Intn(4) == 0 {
				ops[i] = kv.Op{Kind: kv.Insert, Key: existing[rng.Intn(len(existing))].Key, Value: rng.Uint32()}
			} else {
				fresh += uint32(rng.Intn(64) + 1)
				ops[i] = kv.Op{Kind: kv.Insert, Key: fresh, Value: rng.Uint32()}
			}
		default:
			ops[i] = kv.Op{Kind: kv.Remove, Key: existing[rng.Intn(len(existing))].Key}
		}
	}
	return ops
}

func freshBlock(i int) uint32 { return testKeyMax/2 + uint32(i)<<16 }

func TestBuildMatchesDump(t *testing.T) {
	pairs := initialPairs(testN)
	want := append([]KV(nil), pairs...)
	sortKVs(want)
	m := testMachine()
	s := buildHybrid(m, pairs, 1)
	if !kvsEqual(s.Dump(), want) {
		t.Fatal("dump does not match built pairs")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleThreadOracle(t *testing.T) {
	pairs := initialPairs(testN)
	ops := mixedOps(42, 1500, pairs, freshBlock(0))
	m := testMachine()
	s := buildHybrid(m, pairs, 1)
	o := oracle{}
	for _, p := range pairs {
		o[p.Key] = p.Value
	}
	var failures []string
	m.SpawnHost(0, "driver", func(c *machine.Ctx) {
		for i, op := range ops {
			gotV, gotOK := s.Apply(c, 0, op)
			wantV, wantOK := o.apply(op)
			if gotOK != wantOK || (op.Kind == kv.Read && gotOK && gotV != wantV) {
				failures = append(failures, fmt.Sprintf("op %d %s key=%d: got (%d,%v) want (%d,%v)",
					i, op.Kind, op.Key, gotV, gotOK, wantV, wantOK))
			}
		}
	})
	m.Run()
	if len(failures) > 0 {
		t.Fatalf("%d mismatches, first: %s", len(failures), failures[0])
	}
	if !kvsEqual(s.Dump(), o.dump()) {
		t.Fatal("final contents diverge from oracle")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointRangesOracle(t *testing.T) {
	pairs := initialPairs(testN)
	m := testMachine()
	s := buildHybrid(m, pairs, 1)
	o := oracle{}
	for _, p := range pairs {
		o[p.Key] = p.Value
	}
	const threads = 4
	for th := 0; th < threads; th++ {
		th := th
		var mine []KV
		for i, p := range pairs {
			if i%threads == th {
				mine = append(mine, p)
			}
		}
		ops := mixedOps(uint64(100+th), 400, mine, freshBlock(th))
		m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
			for _, op := range ops {
				s.Apply(c, th, op)
			}
		})
		for _, op := range ops {
			o.apply(op)
		}
	}
	m.Run()
	if !kvsEqual(s.Dump(), o.dump()) {
		t.Fatal("disjoint-range concurrent run diverges from oracle")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchMatchesBlocking runs the same streams through blocking Apply
// and windowed ApplyBatch on separate machines; final contents must match.
func TestBatchMatchesBlocking(t *testing.T) {
	pairs := initialPairs(testN)
	const threads = 2
	streams := make([][]kv.Op, threads)
	for th := range streams {
		var mine []KV
		for i, p := range pairs {
			if i%threads == th {
				mine = append(mine, p)
			}
		}
		streams[th] = mixedOps(uint64(7+th), 500, mine, freshBlock(th))
	}
	run := func(window int, batch bool) []KV {
		m := testMachine()
		s := buildHybrid(m, pairs, window)
		for th := 0; th < threads; th++ {
			th := th
			m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
				if batch {
					s.ApplyBatch(c, th, streams[th])
				} else {
					for _, op := range streams[th] {
						s.Apply(c, th, op)
					}
				}
			})
		}
		m.Run()
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return s.Dump()
	}
	blocking := run(1, false)
	for _, w := range []int{2, 4} {
		if got := run(w, true); !kvsEqual(got, blocking) {
			t.Fatalf("window %d batch contents diverge from blocking", w)
		}
	}
}

// Package kv defines the key-value operation vocabulary shared by all
// simulated data structures and the experiment drivers. The operation
// kinds themselves live in internal/hds, shared with the native runtime;
// this package narrows them to the simulator's 32-bit wire format.
package kv

import (
	"hybrids/internal/hds"
	"hybrids/internal/sim/machine"
)

// Kind is a data structure operation type — an alias of the shared
// internal/hds enum, so simulated and native stacks speak one vocabulary.
type Kind = hds.Kind

// Operation kinds, re-exported from internal/hds. They match the paper's
// workload mixes: YCSB-C is all Read; the sensitivity workloads mix Read,
// Insert and Remove; Update exercises the hybrid structures'
// value-propagation path. Scan (YCSB-E's range read; Op.Value carries the
// pair limit) is served by the native runtime only — the simulated
// structures do not implement it, so simulator workloads must not mix it.
const (
	Read   = hds.Read
	Update = hds.Update
	Insert = hds.Insert
	Remove = hds.Remove
	Scan   = hds.Scan
)

// Op is one key-value operation.
type Op struct {
	Kind  Kind
	Key   uint32
	Value uint32
}

// Store is a simulated concurrent key-value index executing operations
// synchronously on a host hardware thread.
type Store interface {
	// Apply executes op on behalf of host thread (which must equal the
	// context's core), returning the read value (for Read) and the
	// operation's success flag.
	Apply(c *machine.Ctx, thread int, op Op) (value uint32, ok bool)
}

// RangePartitioner maps keys to NMP partitions by predefined equal-size
// key ranges (§3.3: "nodes in the NMP-managed portion are distributed
// across NMP partitions based on predefined, equal-size ranges of keys").
type RangePartitioner struct {
	// KeyMax is the exclusive upper bound of the key space; valid keys
	// are 1..KeyMax-1 (0 is reserved as the -inf sentinel key).
	KeyMax uint32
	// Parts is the number of NMP partitions.
	Parts int
}

// Part returns the partition owning key.
func (r RangePartitioner) Part(key uint32) int {
	if key >= r.KeyMax {
		panic("kv: key outside partitioned key space")
	}
	span := (uint64(r.KeyMax) + uint64(r.Parts) - 1) / uint64(r.Parts)
	return int(uint64(key) / span)
}

// Range returns partition p's key range [lo, hi).
func (r RangePartitioner) Range(p int) (lo, hi uint32) {
	span := (uint64(r.KeyMax) + uint64(r.Parts) - 1) / uint64(r.Parts)
	l := uint64(p) * span
	h := l + span
	if h > uint64(r.KeyMax) {
		h = uint64(r.KeyMax)
	}
	return uint32(l), uint32(h)
}

// AsyncStore is implemented by structures supporting non-blocking NMP
// calls (§3.5): a batch of operations is executed with up to the
// configured window of NMP offloads in flight.
type AsyncStore interface {
	// ApplyBatch executes ops in order of issue, overlapping NMP-side
	// work, and returns the number of successful operations.
	ApplyBatch(c *machine.Ctx, thread int, ops []Op) (succeeded int)
}

package kv

import (
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{Read: "read", Update: "update", Insert: "insert", Remove: "remove"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind string wrong")
	}
}

func TestRangePartitionerCoversKeySpace(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 4, 7, 8} {
		r := RangePartitioner{KeyMax: 10000, Parts: parts}
		prev := -1
		for k := uint32(1); k < 10000; k++ {
			p := r.Part(k)
			if p < 0 || p >= parts {
				t.Fatalf("parts=%d key=%d -> %d", parts, k, p)
			}
			if p < prev {
				t.Fatalf("parts=%d: partition decreased along keys", parts)
			}
			prev = p
		}
	}
}

func TestRangePartitionerRangeConsistency(t *testing.T) {
	f := func(key uint32, parts uint8) bool {
		p := RangePartitioner{KeyMax: 1 << 20, Parts: int(parts%8) + 1}
		k := key % (1 << 20)
		part := p.Part(k)
		lo, hi := p.Range(part)
		return k >= lo && k < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangePartitionerRangesTile(t *testing.T) {
	p := RangePartitioner{KeyMax: 1 << 16, Parts: 8}
	prevHi := uint32(0)
	for i := 0; i < 8; i++ {
		lo, hi := p.Range(i)
		if lo != prevHi {
			t.Fatalf("partition %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi <= lo && i < 7 {
			t.Fatalf("partition %d empty", i)
		}
		prevHi = hi
	}
	if prevHi != 1<<16 {
		t.Fatalf("ranges end at %d", prevHi)
	}
}

func TestRangePartitionerOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("key >= KeyMax did not panic")
		}
	}()
	RangePartitioner{KeyMax: 100, Parts: 4}.Part(100)
}

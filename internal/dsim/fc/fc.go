// Package fc implements the NMP-managed portion's coordination fabric from
// §3.2 of the HybriDS paper: per-partition publication lists in NMP
// scratchpad memory, memory-mapped into the host address space.
//
// A host thread offloads an operation by burst-writing a request into its
// assigned slot and setting the slot's valid flag; the partition's NMP
// core — the flat-combining combiner for that partition — scans slots,
// executes requests one at a time against its partition, writes the
// response fields, and clears the valid flag. Host threads poll the flag
// (blocking calls) or harvest completions from a window of in-flight slots
// (non-blocking calls, §3.5).
package fc

import (
	"fmt"
	"strings"

	"hybrids/internal/metrics"
	"hybrids/internal/sim/engine"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
	"hybrids/internal/sim/trace"
)

// OpType encodes the operation field of a publication slot (§3.2 item 4).
type OpType uint32

// Operation codes. OpUnlockPath and OpResumeInsert are the hybrid B+
// tree's path-locking protocol messages (§3.4).
const (
	OpNone OpType = iota
	OpRead
	OpUpdate
	OpInsert
	OpRemove
	OpUnlockPath
	OpResumeInsert
)

// String returns the operation's short name for logs and test failures.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpUnlockPath:
		return "unlock-path"
	case OpResumeInsert:
		return "resume-insert"
	default:
		return fmt.Sprintf("op(%d)", uint32(o))
	}
}

// Request is the host-to-NMP half of a publication slot.
type Request struct {
	Op    OpType
	Key   uint32
	Value uint32
	// NMPPtr is the begin-NMP-traversal node (0: start at the partition
	// sentinel/root).
	NMPPtr uint32
	// HostPtr passes the host-side counterpart node (hybrid skiplist
	// update propagation, §3.3).
	HostPtr uint32
	// Aux carries structure-specific extra state: the new node's height
	// for skiplist inserts, the offloaded parent sequence number for the
	// hybrid B+ tree (§3.4).
	Aux uint32
}

// Response is the NMP-to-host half of a publication slot.
type Response struct {
	// Success reports the operation's return value (§3.2 result item 2).
	Success bool
	// Retry asks the host to restart the whole operation because the
	// begin-NMP-traversal node was invalidated by an earlier concurrent
	// operation (§3.2 result item 1).
	Retry bool
	// LockPath asks the host to lock its portion of the path and send
	// OpResumeInsert (hybrid B+ tree inserts whose splits reach the
	// host-NMP boundary, §3.4).
	LockPath bool
	// Value returns the read value (§3.2 result item 3).
	Value uint32
	// Ptr returns the NMP-side node created by an insert (§3.2 result
	// item 4), or auxiliary pointers for update propagation.
	Ptr uint32
}

// Slot word layout (4-byte words from the slot base).
const (
	wFlags = iota // bit0: valid
	wOp
	wKey
	wValue
	wNMPPtr
	wHostPtr
	wAux
	wRespFlags // bit0 success, bit1 retry, bit2 lockpath
	wRespValue
	wRespPtr
	slotWords
)

// SlotBytes is the scratchpad footprint of one publication slot.
const SlotBytes = 64

const validBit = 1

// Delays accumulates the offload latency decomposition reported in
// Table 2, in summed virtual cycles.
type Delays struct {
	// PostToScan: request became valid -> combiner picked it up.
	PostToScan uint64
	// Service: combiner picked it up -> response written.
	Service uint64
	// Count is the number of served requests (denominator for PostToScan
	// and Service).
	Count uint64
	// CompleteToObserve: response written -> host observed completion,
	// over ObserveCount observed completions.
	CompleteToObserve uint64
	ObserveCount      uint64
}

// Add accumulates other into d (for aggregating across partitions).
func (d *Delays) Add(other Delays) {
	d.PostToScan += other.PostToScan
	d.Service += other.Service
	d.Count += other.Count
	d.CompleteToObserve += other.CompleteToObserve
	d.ObserveCount += other.ObserveCount
}

// Per-partition delay histogram names registered in the machine's metrics
// registry: offload/p<i>/post_to_scan, offload/p<i>/service and
// offload/p<i>/observe.
func delayMetricName(part int, kind string) string {
	return fmt.Sprintf("offload/p%d/%s", part, kind)
}

// DelaysFrom assembles the Table 2 delay view from a registry snapshot (or
// snapshot delta), summing the per-partition offload histograms.
func DelaysFrom(s metrics.Snapshot) Delays {
	var d Delays
	for _, name := range s.Names() {
		if !strings.HasPrefix(name, "offload/p") {
			continue
		}
		v := s.Get(name)
		switch {
		case strings.HasSuffix(name, "/post_to_scan/sum"):
			d.PostToScan += v
		case strings.HasSuffix(name, "/service/sum"):
			d.Service += v
		case strings.HasSuffix(name, "/service/count"):
			d.Count += v
		case strings.HasSuffix(name, "/observe/sum"):
			d.CompleteToObserve += v
		case strings.HasSuffix(name, "/observe/count"):
			d.ObserveCount += v
		}
	}
	return d
}

// PubList is one partition's publication list.
type PubList struct {
	m     *machine.Machine
	part  int
	base  memsys.Addr
	slots int

	postedAt    []uint64
	scannedAt   []uint64
	completedAt []uint64

	// pendingCount and combiner implement the doorbell wake-up: the
	// combiner blocks when no requests are pending and a post unblocks
	// it after the doorbell signal latency.
	pendingCount int
	combiner     *engine.Actor
	// waiters[slot] is the host actor blocked on slot's completion; the
	// combiner wakes it when it writes the response (the host then pays
	// its completion poll as usual).
	waiters []*engine.Actor

	// Table 2 instrumentation: per-partition delay histograms registered
	// in the machine's metrics registry (virtual-cycle samples).
	hPostToScan *metrics.Histogram
	hService    *metrics.Histogram
	hObserve    *metrics.Histogram
}

// NewPubList lays out a publication list with the given slot count in
// partition part's host-mapped scratchpad region. A doorbell word after
// the slots lets the combiner detect pending work with a single read
// instead of sweeping every slot; posts set their slot's doorbell bit as a
// hardware side effect of the publishing burst.
func NewPubList(m *machine.Machine, part, slots int) *PubList {
	if slots > 32 {
		panic("fc: at most 32 slots per publication list (doorbell word width)")
	}
	if need := memsys.Addr(slots*SlotBytes) + 4; need > m.Cfg.Mem.ScratchSize {
		panic(fmt.Sprintf("fc: %d slots (%d B) exceed scratchpad (%d B)", slots, need, m.Cfg.Mem.ScratchSize))
	}
	reg := m.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &PubList{
		m:           m,
		part:        part,
		base:        m.Mem.ScratchAddr(part),
		slots:       slots,
		postedAt:    make([]uint64, slots),
		scannedAt:   make([]uint64, slots),
		completedAt: make([]uint64, slots),
		waiters:     make([]*engine.Actor, slots),
		hPostToScan: reg.Histogram(delayMetricName(part, "post_to_scan")),
		hService:    reg.Histogram(delayMetricName(part, "service")),
		hObserve:    reg.Histogram(delayMetricName(part, "observe")),
	}
}

// Delays returns this list's accumulated Table 2 delay decomposition as a
// struct view over the registry histograms.
func (p *PubList) Delays() Delays {
	return Delays{
		PostToScan:        p.hPostToScan.Sum(),
		Service:           p.hService.Sum(),
		Count:             p.hService.Count(),
		CompleteToObserve: p.hObserve.Sum(),
		ObserveCount:      p.hObserve.Count(),
	}
}

// Slots returns the number of publication slots.
func (p *PubList) Slots() int { return p.slots }

// Partition returns the NMP partition this list belongs to.
func (p *PubList) Partition() int { return p.part }

func (p *PubList) slotAddr(slot int) memsys.Addr {
	if slot < 0 || slot >= p.slots {
		panic(fmt.Sprintf("fc: slot %d out of range [0,%d)", slot, p.slots))
	}
	return p.base + memsys.Addr(slot*SlotBytes)
}

func (p *PubList) doorbellAddr() memsys.Addr {
	return p.base + memsys.Addr(p.slots*SlotBytes)
}

// Post publishes req into slot (host side): one write-combined burst that
// makes the request fields and the valid flag visible atomically.
func (p *PubList) Post(c *machine.Ctx, slot int, req Request) {
	words := [slotWords]uint32{
		wFlags:   validBit,
		wOp:      uint32(req.Op),
		wKey:     req.Key,
		wValue:   req.Value,
		wNMPPtr:  req.NMPPtr,
		wHostPtr: req.HostPtr,
		wAux:     req.Aux,
	}
	c.MMIOWriteBurst(p.slotAddr(slot), words[:wRespFlags])
	// The doorbell bit is raised by the same posted burst (a hardware
	// side effect, so no additional latency and an atomic data effect).
	ram := p.m.Mem.RAM
	ram.Store32(p.doorbellAddr(), ram.Load32(p.doorbellAddr())|1<<uint(slot))
	p.postedAt[slot] = c.Now()
	p.pendingCount++
	c.TraceInstant(trace.KindOffloadPost, c.Now(), uint32(slot))
	if p.combiner != nil {
		c.Unblock(p.combiner, doorbellWake)
	}
}

// doorbellWake is the doorbell signal latency that wakes an idle NMP core.
const doorbellWake = 4

// Done polls slot's valid flag once (host side) and reports whether the
// combiner has completed the request. The first poll that observes a
// completion also closes the observability books for the round trip: it
// records the host-side offload span (post to observe) on the caller's
// trace track and reclassifies the request's publication-queue delay
// (post to combiner pickup) from the offload-wait attribution bucket into
// NMP-serialization.
func (p *PubList) Done(c *machine.Ctx, slot int) bool {
	v := c.MMIOReadBurst(p.slotAddr(slot), 1)
	done := v[0]&validBit == 0
	if done && p.completedAt[slot] != 0 {
		p.hObserve.Observe(c.Now() - p.completedAt[slot])
		p.completedAt[slot] = 0
		c.TraceSpan(trace.KindOffloadCall, p.postedAt[slot], c.Now()-p.postedAt[slot], uint32(slot))
		c.AttrMove(trace.BucketOffloadWait, trace.BucketNMPSerial, p.scannedAt[slot]-p.postedAt[slot])
	}
	return done
}

// ReadResponse fetches the response fields of a completed slot (host side).
func (p *PubList) ReadResponse(c *machine.Ctx, slot int) Response {
	ws := c.MMIOReadBurst(p.slotAddr(slot)+memsys.Addr(wRespFlags*4), 3)
	return Response{
		Success:  ws[0]&1 != 0,
		Retry:    ws[0]&2 != 0,
		LockPath: ws[0]&4 != 0,
		Value:    ws[1],
		Ptr:      ws[2],
	}
}

// Call is the blocking NMP call of the base design (§3.2): post, wait for
// completion, read the response. The wait models a monitored poll: the
// host checks the flag, parks until the combiner's completion signal, and
// pays the observing poll on wake-up.
func (p *PubList) Call(c *machine.Ctx, slot int, req Request) Response {
	p.Post(c, slot, req)
	p.Watch(c, slot)
	for !p.Done(c, slot) {
		// Cycles parked waiting for the combiner's completion signal are
		// offload wait (the serialization share is carved out when Done
		// observes the completion).
		parked := c.Now()
		c.Block()
		c.AttrAdd(trace.BucketOffloadWait, c.Now()-parked)
	}
	return p.ReadResponse(c, slot)
}

// Pending reads slot on the NMP side and returns the request if the slot
// holds an unserved operation.
func (p *PubList) Pending(c *machine.Ctx, slot int) (Request, bool) {
	a := p.slotAddr(slot)
	if c.Read32(a)&validBit == 0 {
		return Request{}, false
	}
	p.scannedAt[slot] = c.Now()
	p.hPostToScan.Observe(c.Now() - p.postedAt[slot])
	req := Request{
		Op:      OpType(c.Read32(a + wOp*4)),
		Key:     c.Read32(a + wKey*4),
		Value:   c.Read32(a + wValue*4),
		NMPPtr:  c.Read32(a + wNMPPtr*4),
		HostPtr: c.Read32(a + wHostPtr*4),
		Aux:     c.Read32(a + wAux*4),
	}
	return req, true
}

// Complete writes resp into slot and clears the valid flag (NMP side).
func (p *PubList) Complete(c *machine.Ctx, slot int, resp Response) {
	a := p.slotAddr(slot)
	var flags uint32
	if resp.Success {
		flags |= 1
	}
	if resp.Retry {
		flags |= 2
	}
	if resp.LockPath {
		flags |= 4
	}
	c.Write32(a+wRespFlags*4, flags)
	c.Write32(a+wRespValue*4, resp.Value)
	c.Write32(a+wRespPtr*4, resp.Ptr)
	c.Write32(a, 0) // clear valid last
	p.completedAt[slot] = c.Now()
	p.hService.Observe(c.Now() - p.scannedAt[slot])
	c.TraceSpan(trace.KindOffloadServe, p.scannedAt[slot], c.Now()-p.scannedAt[slot], uint32(slot))
	if w := p.waiters[slot]; w != nil {
		p.waiters[slot] = nil
		c.Unblock(w, 0)
	}
}

// Watch registers the calling host actor to be woken when slot completes.
// Registration is Go-side bookkeeping (the hardware analogue is the host
// thread's monitor/mwait on the slot's flag word).
//
// Watch is idempotent, as the hds.Port contract requires: waiters holds at
// most one actor per slot, so the re-registration hds.Window.Harvest
// performs on every in-flight slot before each park round overwrites the
// same entry instead of accumulating waiter state. Wake permits cannot
// accumulate either — a completion observed while the watcher is awake
// records a single engine wake permit (a flag, not a count), consumed by
// the watcher's next Block, whose surrounding poll loop tolerates the
// early return.
func (p *PubList) Watch(c *machine.Ctx, slot int) {
	p.waiters[slot] = c.A
}

// Handler executes one offloaded request against the NMP-managed portion
// of a data structure and produces its response. It runs on the partition's
// NMP core context.
type Handler func(c *machine.Ctx, slot int, req Request) Response

// Serve runs the flat-combining combiner loop on an NMP core context:
// poll the doorbell, execute pending requests one at a time in slot order,
// and park briefly when nothing is pending. Returns when the simulation is
// stopping.
func Serve(c *machine.Ctx, p *PubList, handle Handler) {
	ram := p.m.Mem.RAM
	p.combiner = c.A
	for !c.Stopping() {
		if p.pendingCount == 0 {
			// Nothing pending anywhere: wait on the doorbell
			// (monitor/mwait), woken by the next post.
			c.Block()
			continue
		}
		bits := c.Read32(p.doorbellAddr())
		if bits == 0 {
			c.Step(8) // signalled but burst not yet visible; re-poll
			continue
		}
		winStart := c.Now()
		var served uint32
		for slot := 0; slot < p.slots; slot++ {
			if bits&(1<<uint(slot)) == 0 {
				continue
			}
			// Acknowledge the doorbell before serving so a re-post
			// after completion re-raises it.
			c.Step(2)
			ram.Store32(p.doorbellAddr(), ram.Load32(p.doorbellAddr())&^(1<<uint(slot)))
			if req, ok := p.Pending(c, slot); ok {
				resp := handle(c, slot, req)
				p.Complete(c, slot, resp)
				p.pendingCount--
				served++
			}
		}
		if served > 0 {
			c.TraceSpan(trace.KindCombine, winStart, c.Now()-winStart, served)
		}
	}
}

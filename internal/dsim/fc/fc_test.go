package fc

import (
	"testing"

	"hybrids/internal/hds"
	"hybrids/internal/sim/machine"
)

func testMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 16 << 20
	cfg.Mem.NMPMemSize = 16 << 20
	cfg.Mem.L2.Size = 64 << 10
	cfg.Mem.L1.Size = 8 << 10
	cfg.Mem.TLB.Entries = 0 // exact-latency tests assume perfect translation
	return machine.New(cfg)
}

// echoHandler returns key+value as the response value.
func echoHandler(c *machine.Ctx, slot int, req Request) Response {
	c.Step(20) // pretend to do some work
	return Response{Success: true, Value: req.Key + req.Value, Ptr: req.NMPPtr}
}

func TestBlockingCallRoundTrip(t *testing.T) {
	m := testMachine()
	p := NewPubList(m, 0, 8)
	m.SpawnNMP(0, func(c *machine.Ctx) { Serve(c, p, echoHandler) })
	var got Response
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		got = p.Call(c, 0, Request{Op: OpRead, Key: 40, Value: 2, NMPPtr: 99})
	})
	m.Run()
	if !got.Success || got.Value != 42 || got.Ptr != 99 {
		t.Fatalf("response = %+v", got)
	}
}

func TestConcurrentBlockingCallsAllServed(t *testing.T) {
	m := testMachine()
	p := NewPubList(m, 0, 8)
	m.SpawnNMP(0, func(c *machine.Ctx) { Serve(c, p, echoHandler) })
	const perThread = 10
	results := make([][]uint32, 4)
	for th := 0; th < 4; th++ {
		th := th
		m.SpawnHost(th, "h", func(c *machine.Ctx) {
			for i := 0; i < perThread; i++ {
				r := p.Call(c, th, Request{Op: OpRead, Key: uint32(th * 100), Value: uint32(i)})
				results[th] = append(results[th], r.Value)
			}
		})
	}
	m.Run()
	for th := range results {
		if len(results[th]) != perThread {
			t.Fatalf("thread %d got %d results", th, len(results[th]))
		}
		for i, v := range results[th] {
			if v != uint32(th*100+i) {
				t.Fatalf("thread %d result %d = %d", th, i, v)
			}
		}
	}
	if p.Delays().Count != 4*perThread {
		t.Fatalf("served count = %d", p.Delays().Count)
	}
}

func TestResponseFlagBitsRoundTrip(t *testing.T) {
	m := testMachine()
	p := NewPubList(m, 0, 2)
	m.SpawnNMP(0, func(c *machine.Ctx) {
		Serve(c, p, func(c *machine.Ctx, slot int, req Request) Response {
			switch req.Op {
			case OpInsert:
				return Response{Success: true, LockPath: true}
			case OpRemove:
				return Response{Retry: true}
			default:
				return Response{}
			}
		})
	})
	var r1, r2 Response
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		r1 = p.Call(c, 0, Request{Op: OpInsert})
		r2 = p.Call(c, 0, Request{Op: OpRemove})
	})
	m.Run()
	if !r1.Success || !r1.LockPath || r1.Retry {
		t.Fatalf("r1 = %+v", r1)
	}
	if r2.Success || r2.LockPath || !r2.Retry {
		t.Fatalf("r2 = %+v", r2)
	}
}

func TestRequestFieldsReachHandler(t *testing.T) {
	m := testMachine()
	p := NewPubList(m, 0, 2)
	var seen Request
	m.SpawnNMP(0, func(c *machine.Ctx) {
		Serve(c, p, func(c *machine.Ctx, slot int, req Request) Response {
			seen = req
			return Response{Success: true}
		})
	})
	want := Request{Op: OpUpdate, Key: 1, Value: 2, NMPPtr: 3, HostPtr: 4, Aux: 5}
	m.SpawnHost(0, "h", func(c *machine.Ctx) { p.Call(c, 0, want) })
	m.Run()
	if seen != want {
		t.Fatalf("handler saw %+v, want %+v", seen, want)
	}
}

func TestDelaysInstrumentation(t *testing.T) {
	m := testMachine()
	p := NewPubList(m, 0, 2)
	m.SpawnNMP(0, func(c *machine.Ctx) { Serve(c, p, echoHandler) })
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		for i := 0; i < 5; i++ {
			p.Call(c, 0, Request{Op: OpRead, Key: uint32(i)})
		}
	})
	m.Run()
	d := p.Delays()
	if d.Count != 5 || d.ObserveCount != 5 {
		t.Fatalf("counts = %d/%d", d.Count, d.ObserveCount)
	}
	if d.Service/d.Count < 20 {
		t.Fatalf("mean service %d below handler cost", d.Service/d.Count)
	}
	if d.CompleteToObserve == 0 || d.PostToScan == 0 {
		t.Fatalf("delay sums zero: %+v", d)
	}
}

func TestPubListTooLargePanics(t *testing.T) {
	m := testMachine()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized publist did not panic")
		}
	}()
	NewPubList(m, 0, int(m.Cfg.Mem.ScratchSize)/SlotBytes+1)
}

func TestOpTypeStrings(t *testing.T) {
	ops := map[OpType]string{
		OpRead: "read", OpUpdate: "update", OpInsert: "insert",
		OpRemove: "remove", OpUnlockPath: "unlock-path", OpResumeInsert: "resume-insert",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if OpType(99).String() == "" {
		t.Error("unknown op type produced empty string")
	}
}

// TestWatchReRegistrationAcrossParkRounds pins the Watch idempotency
// contract hds.Window.Harvest relies on: every park round re-calls Watch
// on all in-flight slots, so repeated registrations by the same host actor
// must not accumulate waiter entries or wake permits. The slow combiner
// forces each of the two completions into its own park round (two full
// register-poll-park cycles over the same slots), and the trailing
// blocking Call proves that any wake permit left by completions observed
// while the host was awake cannot corrupt a later monitored wait.
func TestWatchReRegistrationAcrossParkRounds(t *testing.T) {
	m := testMachine()
	p := NewPubList(m, 0, 8)
	m.SpawnNMP(0, func(c *machine.Ctx) {
		Serve(c, p, func(c *machine.Ctx, slot int, req Request) Response {
			c.Step(5000) // slow service: one completion per park round
			return Response{Success: true, Value: req.Key + 1}
		})
	})
	var harvested []uint32
	var tail Response
	m.SpawnHost(0, "h", func(c *machine.Ctx) {
		w := hds.NewWindow(0, 2, []hds.Port[*machine.Ctx, Request, Response]{p},
			func(c *machine.Ctx) { c.Block() })
		w.Post(c, 0, Request{Op: OpRead, Key: 10}, nil)
		w.Post(c, 0, Request{Op: OpRead, Key: 20}, nil)
		for !w.Empty() {
			_, resp, _ := w.Harvest(c)
			harvested = append(harvested, resp.Value)
		}
		// Busy-completion scenario: both ops complete while the host is
		// stepping, so their Unblocks land as (collapsed) wake permits
		// rather than real wakes.
		w.Post(c, 0, Request{Op: OpRead, Key: 30}, nil)
		w.Post(c, 0, Request{Op: OpRead, Key: 40}, nil)
		c.Step(40_000)
		for !w.Empty() {
			_, resp, _ := w.Harvest(c)
			harvested = append(harvested, resp.Value)
		}
		// A stale permit at most makes Call's first Block return early;
		// its poll loop must still park and complete exactly once.
		tail = p.Call(c, 0, Request{Op: OpRead, Key: 50})
	})
	m.Run()
	if want := []uint32{11, 21, 31, 41}; len(harvested) != 4 ||
		harvested[0] != want[0] || harvested[1] != want[1] ||
		harvested[2] != want[2] || harvested[3] != want[3] {
		t.Fatalf("harvested = %v, want %v", harvested, want)
	}
	if !tail.Success || tail.Value != 51 {
		t.Fatalf("trailing blocking call = %+v, want Success value 51", tail)
	}
	if got := p.Delays().Count; got != 5 {
		t.Fatalf("served count = %d, want 5 (no request served twice)", got)
	}
}

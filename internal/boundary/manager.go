package boundary

import (
	"sync"
	"sync/atomic"

	"hybrids/internal/metrics"
)

// Manager publishes the live boundary Plan for a running process and
// instruments every decision. The hot-path contract is the same one
// server.Tunables uses: Plan() is a single atomic.Pointer load — no lock
// anywhere near a data path — while movers (the admin plane's POST
// /boundary, the adaptive ticker) serialize through a mutex to decide,
// publish and record.
//
// Metric family (registered eagerly, exported via Export for the admin
// plane's merge):
//
//	boundary/epoch        counter  plan publications
//	boundary/migrations   counter  publications that moved a split
//	boundary/host_levels  hist     host-level count at each publication
//	boundary/input/host_cache  hist  per-mille host-cache share fed to Decide
//	boundary/input/offload_wait hist per-mille offload-dominated share fed to Decide
//	boundary/input/rtt    hist     offload round-trip fed to Decide (cycles/ns)
type Manager struct {
	plan atomic.Pointer[Plan]

	mu  sync.Mutex
	pol Policy
	reg *metrics.Registry

	cEpoch      *metrics.Counter
	cMigrations *metrics.Counter
	hHostLevels *metrics.Histogram
	hInCache    *metrics.Histogram
	hInWait     *metrics.Histogram
	hInRTT      *metrics.Histogram
}

// NewManager publishes initial as epoch 0 under pol. The instruments
// register in reg (nil creates a private registry, reachable only via
// Export).
func NewManager(pol Policy, initial Plan, reg *metrics.Registry) *Manager {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Manager{
		pol:         pol,
		reg:         reg,
		cEpoch:      reg.Counter("boundary/epoch"),
		cMigrations: reg.Counter("boundary/migrations"),
		hHostLevels: reg.Histogram("boundary/host_levels"),
		hInCache:    reg.Histogram("boundary/input/host_cache"),
		hInWait:     reg.Histogram("boundary/input/offload_wait"),
		hInRTT:      reg.Histogram("boundary/input/rtt"),
	}
	initial.Epoch = 0
	m.plan.Store(&initial)
	return m
}

// Plan returns the live plan: one atomic load, safe on any hot path. The
// returned Plan is shared and must not be mutated.
func (m *Manager) Plan() *Plan { return m.plan.Load() }

// Policy returns the manager's policy.
func (m *Manager) Policy() Policy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pol
}

// Migrations returns the number of publications that moved a split.
func (m *Manager) Migrations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cMigrations.Value()
}

// Publish replaces engine's split in the live plan, advancing the epoch
// and recording the migration. The caller has already applied the split
// to the running structure (a rebalance); Publish only makes it the
// plan of record.
func (m *Manager) Publish(engine string, s Split) *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.plan.Load().Next(engine, s)
	m.plan.Store(&next)
	m.cEpoch.Inc()
	m.cMigrations.Inc()
	if h := s.Host(); h > 0 {
		m.hHostLevels.Observe(uint64(h))
	}
	return &next
}

// Observe feeds one observation window to the policy against the live
// plan's split for the sample's engine, recording the decision inputs.
// It returns the split the policy wants next and whether that is a move;
// the caller performs the structural rebalance and then Publish.
func (m *Manager) Observe(s Sample) (Split, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hInCache.Observe(perMille(s.HostCache))
	m.hInWait.Observe(perMille(s.OffloadWait + s.NMPSerial))
	if s.RTT > 0 {
		m.hInRTT.Observe(uint64(s.RTT))
	}
	return m.pol.Decide(m.plan.Load().Split(s.Engine), s)
}

// Export captures the boundary instruments for management-plane merges
// (counters with histogram components excluded, plus histogram
// snapshots) under the decision mutex, so a scrape never races a mover.
func (m *Manager) Export() (metrics.Snapshot, []metrics.HistSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.reg.Export()
	return e.Counters, e.Hists
}

// perMille converts a [0,1] share to integer per-mille for histogram
// observation, clamping wild inputs.
func perMille(share float64) uint64 {
	if share <= 0 {
		return 0
	}
	if share >= 1 {
		return 1000
	}
	return uint64(share * 1000)
}

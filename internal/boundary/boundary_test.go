package boundary

import (
	"testing"
)

func TestSplitValidate(t *testing.T) {
	cases := []struct {
		s  Split
		ok bool
	}{
		{Split{Total: 16, NMP: 4}, true},
		{Split{Total: 2, NMP: 1}, true},
		{Split{Total: 0, NMP: 3}, true}, // derived-height engine
		{Split{Total: 16, NMP: 0}, false},
		{Split{Total: 16, NMP: 16}, false},
		{Split{Total: 16, NMP: 17}, false},
		{Split{Total: 0, NMP: 0}, false},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.s, err, c.ok)
		}
	}
	if got := (Split{Total: 16, NMP: 4}).Host(); got != 12 {
		t.Errorf("Host() = %d, want 12", got)
	}
	if got := (Split{Total: 0, NMP: 3}).Host(); got != 0 {
		t.Errorf("derived-height Host() = %d, want 0", got)
	}
}

func TestPlanNext(t *testing.T) {
	p := Plan{Splits: map[string]Split{"skiplist": {Total: 16, NMP: 4}}}
	next := p.Next("skiplist", Split{Total: 16, NMP: 5})
	if next.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", next.Epoch)
	}
	if got := next.Split("skiplist"); got != (Split{Total: 16, NMP: 5}) {
		t.Fatalf("next split = %+v", got)
	}
	// The original plan is untouched (plans are immutable).
	if got := p.Split("skiplist"); got != (Split{Total: 16, NMP: 4}) {
		t.Fatalf("original plan mutated: %+v", got)
	}
	// Next on a fresh engine adds it without dropping others.
	two := next.Next("btree", Split{NMP: 2})
	if two.Epoch != 2 || len(two.Splits) != 2 {
		t.Fatalf("two-engine plan: %+v", two)
	}
}

func TestStaticNeverMoves(t *testing.T) {
	pol := Static{}
	cur := Split{Total: 16, NMP: 4}
	next, move := pol.Decide(cur, Sample{DRAM: 0.99, Ops: 1 << 20})
	if move || next != cur {
		t.Fatalf("static moved: %+v", next)
	}
}

func TestAdaptiveShrinksHostOnDRAMPressure(t *testing.T) {
	pol := NewAdaptive()
	cur := Split{Total: 16, NMP: 4}
	s := Sample{Engine: "skiplist", DRAM: 0.6, Ops: 1 << 12}
	next, move := pol.Decide(cur, s)
	if !move || next.NMP != 5 {
		t.Fatalf("expected NMP 4->5 under DRAM pressure, got %+v move=%v", next, move)
	}
	// Cooldown: the very next window is skipped even under pressure.
	if _, move := pol.Decide(next, s); move {
		t.Fatal("moved during cooldown")
	}
	// After the cooldown the pressure moves it again.
	if got, move := pol.Decide(next, s); !move || got.NMP != 6 {
		t.Fatalf("post-cooldown move: %+v move=%v", got, move)
	}
	if pol.Moves() != 2 {
		t.Fatalf("Moves() = %d, want 2", pol.Moves())
	}
}

func TestAdaptiveGrowsHostWhenOffloadDominated(t *testing.T) {
	pol := NewAdaptive()
	cur := Split{Total: 16, NMP: 6}
	s := Sample{Engine: "skiplist", OffloadWait: 0.5, NMPSerial: 0.2, DRAM: 0.02, Ops: 1 << 12}
	next, move := pol.Decide(cur, s)
	if !move || next.NMP != 5 {
		t.Fatalf("expected NMP 6->5 when offload-dominated, got %+v move=%v", next, move)
	}
}

func TestAdaptiveHoldsInsideHysteresisBand(t *testing.T) {
	pol := NewAdaptive()
	cur := Split{Total: 16, NMP: 4}
	// Moderate everything: no threshold crossed.
	s := Sample{DRAM: 0.2, OffloadWait: 0.3, Ops: 1 << 12}
	for i := 0; i < 4; i++ {
		if _, move := pol.Decide(cur, s); move {
			t.Fatalf("moved inside hysteresis band (round %d)", i)
		}
	}
}

func TestAdaptiveIgnoresThinWindows(t *testing.T) {
	pol := NewAdaptive()
	cur := Split{Total: 16, NMP: 4}
	if _, move := pol.Decide(cur, Sample{DRAM: 0.9, Ops: 3}); move {
		t.Fatal("moved on a window below MinOps")
	}
	d, w, _ := pol.Smoothed()
	if d != 0 || w != 0 {
		t.Fatal("thin window folded into EWMAs")
	}
}

func TestAdaptiveRespectsFloors(t *testing.T) {
	pol := NewAdaptive()
	// NMP already at MinNMP: an offload-dominated profile cannot push below.
	cur := Split{Total: 16, NMP: 1}
	if _, move := pol.Decide(cur, Sample{OffloadWait: 0.9, DRAM: 0.01, Ops: 1 << 12}); move {
		t.Fatal("moved below MinNMP")
	}
	// One host level left: DRAM pressure cannot consume it.
	pol = NewAdaptive()
	cur = Split{Total: 16, NMP: 15}
	if _, move := pol.Decide(cur, Sample{DRAM: 0.9, Ops: 1 << 12}); move {
		t.Fatal("consumed the last host level")
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("static"); err != nil || p.Name() != "static" {
		t.Fatalf("static: %v %v", p, err)
	}
	if p, err := ParsePolicy("adaptive"); err != nil || p.Name() != "adaptive" {
		t.Fatalf("adaptive: %v %v", p, err)
	}
	if _, err := ParsePolicy("chaotic"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestManagerPublishObserveExport(t *testing.T) {
	mgr := NewManager(NewAdaptive(), Plan{Splits: map[string]Split{
		"skiplist": {Total: 16, NMP: 4},
	}}, nil)
	if got := mgr.Plan(); got.Epoch != 0 || got.Split("skiplist").NMP != 4 {
		t.Fatalf("initial plan: %+v", got)
	}

	// A DRAM-pressured observation proposes a move; Publish records it.
	next, move := mgr.Observe(Sample{Engine: "skiplist", DRAM: 0.6, Ops: 1 << 12})
	if !move || next.NMP != 5 {
		t.Fatalf("Observe: %+v move=%v", next, move)
	}
	plan := mgr.Publish("skiplist", next)
	if plan.Epoch != 1 || mgr.Plan().Split("skiplist").NMP != 5 {
		t.Fatalf("after publish: %+v", mgr.Plan())
	}
	if mgr.Migrations() != 1 {
		t.Fatalf("Migrations() = %d, want 1", mgr.Migrations())
	}

	counters, hists := mgr.Export()
	if counters["boundary/epoch"] != 1 || counters["boundary/migrations"] != 1 {
		t.Fatalf("exported counters: %v", counters)
	}
	byName := map[string]bool{}
	for _, h := range hists {
		byName[h.Name] = true
	}
	for _, want := range []string{"boundary/host_levels", "boundary/input/host_cache",
		"boundary/input/offload_wait", "boundary/input/rtt"} {
		if !byName[want] {
			t.Fatalf("exported hists missing %s (got %v)", want, byName)
		}
	}
}

func TestPerMilleClamps(t *testing.T) {
	if perMille(-0.5) != 0 || perMille(0) != 0 {
		t.Fatal("negative/zero share")
	}
	if perMille(2.0) != 1000 || perMille(1.0) != 1000 {
		t.Fatal("overflow share")
	}
	if got := perMille(0.25); got != 250 {
		t.Fatalf("perMille(0.25) = %d", got)
	}
}

// Package boundary owns the host/NMP boundary decision the paper fixes
// statically at LLC size (§4): how many of a hybrid structure's levels
// stay in the host-managed (LLC-resident) portion and how many are pushed
// NMP-side. Every layer that used to hard-code its own split constant —
// the simulated hybrids of internal/dsim, the native runtime behind
// internal/store, the daemon's -levels flag — resolves it through a Plan
// published here instead, so the split is one tunable, observable value
// rather than a constant copied per structure.
//
// A Policy decides when the boundary should move. Static never moves it
// (the paper's configuration). Adaptive closes the ROADMAP's feedback
// loop: it watches the per-operation attribution shares the simulator
// already collects (attr/* histograms: host-cache vs DRAM vs offload-wait
// cycles) and the offload round-trip EWMA, and migrates levels toward
// whichever side the cycles say is mis-sized — a DRAM-heavy host portion
// has outgrown the LLC (shrink it), an offload-wait-heavy profile with a
// cache-resident host portion can afford more host levels (grow it).
package boundary

import (
	"fmt"
)

// Split is one structure's host/NMP boundary: Total levels overall, the
// bottom NMP of them NMP-side, the remaining top Host() levels in the
// host-managed portion. Engines whose total height follows from fan-out
// (the B+ tree) publish Total 0 and size only the NMP portion.
type Split struct {
	// Total is the structure's full level count (0 = derived by the
	// engine, e.g. from B+ tree fan-out).
	Total int `json:"total"`
	// NMP is the number of bottom levels placed NMP-side.
	NMP int `json:"nmp"`
}

// Host returns the host-managed level count, Total-NMP (meaningful only
// when Total is fixed; 0 when the engine derives its height).
func (s Split) Host() int {
	if s.Total <= 0 {
		return 0
	}
	return s.Total - s.NMP
}

// Validate checks that the split partitions a fixed-height structure:
// at least one NMP level and, when Total is fixed, at least one host
// level.
func (s Split) Validate() error {
	if s.NMP < 1 {
		return fmt.Errorf("boundary: NMP levels must be >= 1 (got %d)", s.NMP)
	}
	if s.Total > 0 && s.NMP >= s.Total {
		return fmt.Errorf("boundary: NMP levels %d must leave a host portion (total %d)", s.NMP, s.Total)
	}
	return nil
}

// Plan is one published boundary decision: the per-engine splits every
// consumer resolves, stamped with the epoch that produced it. Plans are
// immutable once published — movers build a new Plan and republish.
type Plan struct {
	// Epoch counts boundary publications (0 = the startup plan).
	Epoch uint64 `json:"epoch"`
	// Splits maps engine name to its boundary split.
	Splits map[string]Split `json:"splits"`
}

// Split returns engine's split in the plan (zero Split when absent).
func (p *Plan) Split(engine string) Split { return p.Splits[engine] }

// Next returns a copy of the plan with engine's split replaced and the
// epoch advanced.
func (p *Plan) Next(engine string, s Split) Plan {
	out := Plan{Epoch: p.Epoch + 1, Splits: make(map[string]Split, len(p.Splits)+1)}
	for k, v := range p.Splits {
		out.Splits[k] = v
	}
	out.Splits[engine] = s
	return out
}

// Sample is one observation window's boundary-relevant signals, fed to a
// Policy. The attribution shares are fractions of measured cycles in
// [0,1] (the simulator's attr/* vocabulary); natively, layers that cannot
// attribute at cycle level feed the queueing proxies they do have and
// leave the rest zero.
type Sample struct {
	// Engine names the structure the sample describes.
	Engine string
	// HostCache is the share of cycles spent in on-chip host accesses.
	HostCache float64
	// DRAM is the share of cycles spent in host DRAM accesses — the
	// signal that the host portion has outgrown the LLC.
	DRAM float64
	// OffloadWait is the share of cycles spent blocked on NMP round
	// trips — the signal that too much structure is NMP-side.
	OffloadWait float64
	// NMPSerial is the share of cycles serialized behind NMP combiners.
	NMPSerial float64
	// RTT is the mean offload round-trip (virtual cycles in simulation,
	// nanoseconds natively); informational, smoothed for export.
	RTT float64
	// Ops is the number of operations the window observed; windows with
	// too few operations are ignored.
	Ops uint64
}

// Policy decides whether the boundary should move given the current
// split and a fresh observation window.
type Policy interface {
	// Name is the policy's registry name ("static", "adaptive").
	Name() string
	// Decide returns the split the engine should run next and whether it
	// differs from cur. Policies are stateful (EWMAs, cooldowns) and not
	// safe for concurrent use; callers serialize Decide.
	Decide(cur Split, s Sample) (Split, bool)
}

// Static is the paper's fixed boundary: never moves.
type Static struct{}

// Name returns "static".
func (Static) Name() string { return "static" }

// Decide keeps the current split.
func (Static) Decide(cur Split, _ Sample) (Split, bool) { return cur, false }

// Adaptive is the feedback policy: EWMA-smoothed attribution shares with
// a hysteresis band and a post-move cooldown, so the boundary converges
// instead of oscillating around the crossover.
//
// The rule mirrors the paper's LLC-sizing argument (§3.3): when the DRAM
// share exceeds DRAMHigh the host portion is missing the LLC, so a level
// migrates NMP-side (host shrinks); when the offload-dominated share
// (offload-wait + NMP-serial) exceeds WaitHigh while the DRAM share sits
// below DRAMLow, the host portion is comfortably cache-resident and a
// level migrates host-side (host grows).
type Adaptive struct {
	// Alpha is the EWMA weight of a new sample (default 0.5).
	Alpha float64
	// DRAMHigh is the smoothed DRAM share above which the host portion
	// shrinks (default 0.30).
	DRAMHigh float64
	// DRAMLow is the smoothed DRAM share below which the host portion
	// may grow (default 0.10).
	DRAMLow float64
	// WaitHigh is the smoothed offload-dominated share above which the
	// host portion grows (default 0.45).
	WaitHigh float64
	// Cooldown is the number of Decide calls skipped after a move
	// (default 1), letting the structure and caches re-settle.
	Cooldown int
	// MinNMP floors the NMP-side level count (default 1).
	MinNMP int
	// MinOps is the smallest observation window Decide acts on
	// (default 64).
	MinOps uint64

	ewmaDRAM float64
	ewmaWait float64
	ewmaRTT  float64
	primed   bool
	cool     int
	moves    int
}

// NewAdaptive returns an Adaptive policy with default thresholds.
func NewAdaptive() *Adaptive { return &Adaptive{} }

// Name returns "adaptive".
func (*Adaptive) Name() string { return "adaptive" }

// Moves returns the number of boundary moves the policy has decided.
func (a *Adaptive) Moves() int { return a.moves }

// Smoothed returns the current EWMA state (DRAM share, offload-dominated
// share, RTT) for reporting.
func (a *Adaptive) Smoothed() (dram, wait, rtt float64) {
	return a.ewmaDRAM, a.ewmaWait, a.ewmaRTT
}

func (a *Adaptive) defaults() {
	if a.Alpha == 0 {
		a.Alpha = 0.5
	}
	if a.DRAMHigh == 0 {
		a.DRAMHigh = 0.30
	}
	if a.DRAMLow == 0 {
		a.DRAMLow = 0.10
	}
	if a.WaitHigh == 0 {
		a.WaitHigh = 0.45
	}
	if a.Cooldown == 0 {
		a.Cooldown = 1
	}
	if a.MinNMP == 0 {
		a.MinNMP = 1
	}
	if a.MinOps == 0 {
		a.MinOps = 64
	}
}

// Decide folds the sample into the EWMAs and applies the threshold rule.
func (a *Adaptive) Decide(cur Split, s Sample) (Split, bool) {
	a.defaults()
	if s.Ops < a.MinOps {
		return cur, false
	}
	wait := s.OffloadWait + s.NMPSerial
	if !a.primed {
		a.ewmaDRAM, a.ewmaWait, a.ewmaRTT = s.DRAM, wait, s.RTT
		a.primed = true
	} else {
		a.ewmaDRAM += a.Alpha * (s.DRAM - a.ewmaDRAM)
		a.ewmaWait += a.Alpha * (wait - a.ewmaWait)
		a.ewmaRTT += a.Alpha * (s.RTT - a.ewmaRTT)
	}
	if a.cool > 0 {
		a.cool--
		return cur, false
	}
	next := cur
	switch {
	case a.ewmaDRAM > a.DRAMHigh:
		// Host portion misses the LLC: migrate a level NMP-side.
		next.NMP++
	case a.ewmaWait > a.WaitHigh && a.ewmaDRAM < a.DRAMLow:
		// Offload-dominated with a cache-resident host portion: migrate a
		// level host-side.
		next.NMP--
	default:
		return cur, false
	}
	if next.NMP < a.MinNMP || next.Validate() != nil {
		return cur, false
	}
	a.cool = a.Cooldown
	a.moves++
	return next, true
}

// ParsePolicy maps a -boundary flag value onto a Policy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "static":
		return Static{}, nil
	case "adaptive":
		return NewAdaptive(), nil
	}
	return nil, fmt.Errorf("boundary: unknown policy %q (valid: static, adaptive)", name)
}

// Package doccheck enforces godoc coverage for the simulator's documented
// core packages: every exported identifier must carry a doc comment. The
// check is a plain test over the go/ast parse tree, so it runs in CI with
// no external linter dependency.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// checked lists the packages held to full godoc coverage, relative to the
// repository root. Extend it as packages graduate to documented-API status.
var checked = []string{
	"internal/sim/engine",
	"internal/sim/memsys",
	"internal/sim/machine",
	"internal/sim/trace",
	"internal/dsim/offload",
	"internal/dsim/fc",
	"internal/dsim/bskiplist",
	"internal/hds",
	"internal/core",
	"internal/cds",
	"internal/metrics",
	"internal/exp",
	"internal/server",
	"internal/store",
	"internal/admin",
}

// TestExportedIdentifiersDocumented parses every non-test file of the
// checked packages and fails on any exported declaration — package clause,
// func, method on an exported type, type, or const/var group — that has no
// doc comment. Grouped const/var specs are covered by the group's comment
// or a per-spec comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	for _, pkg := range checked {
		dir := filepath.Join("..", "..", pkg)
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", pkg, err)
		}
		for _, p := range pkgs {
			missing = append(missing, checkPackage(fset, pkg, p)...)
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

func checkPackage(fset *token.FileSet, path string, p *ast.Package) []string {
	var missing []string
	report := func(pos token.Pos, what string) {
		missing = append(missing, fmt.Sprintf("%s: %s", fset.Position(pos), what))
	}
	hasPkgDoc := false
	for _, f := range p.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		report(token.NoPos, fmt.Sprintf("package %s has no package doc comment", path))
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "func/method "+funcName(d))
				}
			case *ast.GenDecl:
				checkGenDecl(d, report)
			}
		}
	}
	return missing
}

// exportedReceiver reports whether a method's receiver type is exported
// (free functions count as exported receivers).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			// A const/var group's doc covers every spec; otherwise each
			// exported spec needs its own comment (trailing line comments
			// count, matching idiomatic enum blocks).
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "const/var "+name.Name)
				}
			}
		}
	}
}

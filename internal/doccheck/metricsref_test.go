package doccheck

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/core"
	"hybrids/internal/dsim/offload"
	"hybrids/internal/metrics"
	"hybrids/internal/server"
	"hybrids/internal/sim/machine"
	"hybrids/internal/store"
)

// metricKeyRe matches a backtick-quoted metric key in docs/METRICS.md:
// a slash-separated lowercase path, with `p*` allowed as a partition
// wildcard segment.
var metricKeyRe = regexp.MustCompile("`([a-z][a-z0-9_*]*(?:/[a-z0-9_*]+)+)`")

// partRe normalizes concrete partition segments to the doc's wildcard.
var partRe = regexp.MustCompile(`/p[0-9]+/`)

// documentedKeys parses docs/METRICS.md and returns every metric key
// documented in a table row (a line whose first cell is the
// backtick-quoted key). Backticked paths in prose — package names,
// prefix references — don't count as documentation.
func documentedKeys(t *testing.T) map[string]bool {
	t.Helper()
	src, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatalf("docs/METRICS.md: %v", err)
	}
	keys := make(map[string]bool)
	for _, line := range strings.Split(string(src), "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cell := line[2 : strings.Index(line[2:], "|")+2]
		if m := metricKeyRe.FindStringSubmatch(cell); m != nil {
			keys[m[1]] = true
		}
	}
	if len(keys) == 0 {
		t.Fatalf("docs/METRICS.md documents no metric keys")
	}
	return keys
}

// emittedRegistryKeys instantiates every registry-backed subsystem and
// collects the full set of keys they register: the serving stack once
// per store engine (server/, core/p*/, core/p*/store/), and the
// simulator with attribution and the offload runtime enabled (engine/,
// mem/, attr/, offload/, offload/p*/), and the boundary manager
// (boundary/). The returned histSet marks histogram names, whose /sum
// and /count components are documented implicitly.
func emittedRegistryKeys(t *testing.T) (names, histSet map[string]bool) {
	t.Helper()
	names, histSet = make(map[string]bool), make(map[string]bool)
	collect := func(reg *metrics.Registry) {
		for _, n := range reg.Names() {
			names[n] = true
		}
		for _, n := range reg.HistNames() {
			histSet[n] = true
		}
	}

	for _, name := range store.Names() {
		eng, ok := store.Lookup(name)
		if !ok {
			t.Fatalf("store %q vanished from the registry", name)
		}
		reg := metrics.NewRegistry()
		h := core.New(core.Config{
			Partitions: 2,
			KeyMax:     1 << 10,
			Metrics:    reg,
			NewStore:   eng.NewNative(store.Tuning{}),
		})
		server.New(h, server.Config{Store: eng.Name, Metrics: reg})
		collect(reg)
		h.Close()
	}

	cfg := machine.Default()
	m := machine.New(cfg)
	m.EnableAttribution()
	offload.New(m, offload.Config{Window: 2})
	collect(m.Metrics)

	breg := metrics.NewRegistry()
	boundary.NewManager(boundary.Static{}, boundary.Plan{Splits: map[string]boundary.Split{
		"skiplist": {Total: 16, NMP: 4},
	}}, breg)
	collect(breg)
	return names, histSet
}

// loadReportKeys greps the hybridsload source for the load/* report keys
// (they are report-cell entries, not registry instruments, so the source
// is the authority).
func loadReportKeys(t *testing.T) map[string]bool {
	t.Helper()
	src, err := os.ReadFile("../../cmd/hybridsload/main.go")
	if err != nil {
		t.Fatalf("cmd/hybridsload/main.go: %v", err)
	}
	keys := make(map[string]bool)
	for _, m := range regexp.MustCompile(`"(load/[a-z0-9_]+)"`).FindAllStringSubmatch(string(src), -1) {
		keys[m[1]] = true
	}
	if len(keys) == 0 {
		t.Fatalf("no load/ keys found in hybridsload source")
	}
	return keys
}

// TestMetricsReferenceComplete is the docs/METRICS.md enforcement gate,
// in both directions: every key any subsystem can emit must be
// documented (adding an instrument without a row here fails), and every
// concrete key the document claims must actually be emitted (rows can't
// rot when an instrument is renamed or removed). Histogram /sum and
// /count components are covered by their base histogram's row.
func TestMetricsReferenceComplete(t *testing.T) {
	documented := documentedKeys(t)
	names, histSet := emittedRegistryKeys(t)
	for k := range loadReportKeys(t) {
		names[k] = true
	}

	normalize := func(name string) string { return partRe.ReplaceAllString(name, "/p*/") }
	emitted := make(map[string]bool, len(names))
	var undocumented []string
	for name := range names {
		norm := normalize(name)
		if base, ok := strings.CutSuffix(norm, "/sum"); ok && histSet[strings.TrimSuffix(name, "/sum")] {
			norm = base
		} else if base, ok := strings.CutSuffix(norm, "/count"); ok && histSet[strings.TrimSuffix(name, "/count")] {
			norm = base
		}
		emitted[norm] = true
		if !documented[norm] {
			undocumented = append(undocumented, name)
		}
	}
	sort.Strings(undocumented)
	if len(undocumented) > 0 {
		t.Errorf("%d emitted metric keys are not documented in docs/METRICS.md:\n  %s",
			len(undocumented), strings.Join(undocumented, "\n  "))
	}

	var stale []string
	for key := range documented {
		if !emitted[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	if len(stale) > 0 {
		t.Errorf("%d keys documented in docs/METRICS.md are never emitted:\n  %s",
			len(stale), strings.Join(stale, "\n  "))
	}
}

package exp

import (
	"path/filepath"
	"testing"

	"hybrids/internal/metrics"
)

func TestTraceSpecClaimsExactlyOnce(t *testing.T) {
	var nilSpec *TraceSpec
	if nilSpec.claim() {
		t.Fatal("nil TraceSpec claimed")
	}
	if err := nilSpec.Err(); err != nil {
		t.Fatalf("nil TraceSpec Err = %v", err)
	}
	spec := &TraceSpec{Path: filepath.Join(t.TempDir(), "t.json")}
	if !spec.claim() {
		t.Fatal("first claim refused")
	}
	if spec.claim() {
		t.Fatal("second claim granted: a spec must capture exactly one cell")
	}
}

func TestTraceSpecEventsDefault(t *testing.T) {
	if got := (&TraceSpec{}).events(); got != DefaultTraceEvents {
		t.Fatalf("events() = %d, want DefaultTraceEvents %d", got, DefaultTraceEvents)
	}
	if got := (&TraceSpec{Events: 64}).events(); got != 64 {
		t.Fatalf("events() = %d, want explicit 64", got)
	}
}

func TestTraceSpecWriteReportsError(t *testing.T) {
	spec := &TraceSpec{Path: filepath.Join(t.TempDir(), "missing-dir", "t.json")}
	spec.write(nil)
	if spec.Err() == nil {
		t.Fatal("write to an uncreatable path reported no error")
	}
}

func TestAttrFromEmptySnapshotIsNil(t *testing.T) {
	if got := attrFrom(metrics.Snapshot{}); got != nil {
		t.Fatalf("attrFrom(empty) = %+v, want nil", got)
	}
}

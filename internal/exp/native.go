package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hybrids/internal/cds"
	"hybrids/internal/core"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/hds"
	"hybrids/internal/ycsb"
)

// Native experiments drive the real internal/core runtime — goroutine
// combiners over internal/cds stores on the host CPU — with the same YCSB
// workloads and the same result formatting as the simulated experiments.
// They measure wall-clock throughput, not virtual cycles: Cell.WallNanos
// replaces Cell.Cycles and MOpsPerSec is real operations per real second,
// so the absolute numbers depend on the machine running the benchmark (see
// docs/EXPERIMENTS.md for how to read them against the simulator's).

// NativeRegistry returns the native benchmark experiments in presentation
// order. They share the Experiment shape with the simulated registry, so
// cmd/hybrids renders both through the same table/markdown/JSON emitters.
func NativeRegistry() []Experiment {
	return []Experiment{
		{"native-btree", "Native B+ tree throughput, YCSB-C (wall clock)", runNativeBTree},
		{"native-skiplist", "Native skiplist throughput, YCSB-C (wall clock)", runNativeSkiplist},
	}
}

// FindNative returns the native experiment with the given ID.
func FindNative(id string) (Experiment, bool) {
	for _, e := range NativeRegistry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// nativeVariant names one evaluated call discipline: blocking issues one
// Apply per op (§3.2); batch pipelines through core.ApplyBatch and the
// shared hds window (§3.5) at the variant's window size, whatever it is —
// the discipline is selected by the flag, never inferred from the window
// value.
type nativeVariant struct {
	name   string
	window int
	batch  bool
}

// nativeVariants returns the call disciplines evaluated at this scale.
// With Scale.Window <= 1 the nonblocking variant degenerates to one call
// in flight — the same discipline as blocking — so it is dropped rather
// than re-measuring the blocking path under a misleading nonblocking
// label.
func nativeVariants(sc Scale) []nativeVariant {
	vs := []nativeVariant{{name: "blocking", window: 1}}
	if sc.Window > 1 {
		vs = append(vs, nativeVariant{
			name: fmt.Sprintf("nonblocking%d", sc.Window), window: sc.Window, batch: true,
		})
	}
	return vs
}

// slStore adapts cds.SkipList to the core.Store interface (Insert vs Put
// naming).
type slStore struct{ s *cds.SkipList }

// Get returns the value stored under key.
func (s slStore) Get(k uint64) (uint64, bool) { return s.s.Get(k) }

// Put inserts key -> value, returning false if the key exists.
func (s slStore) Put(k, v uint64) bool { return s.s.Insert(k, v) }

// Update overwrites an existing key's value, returning false if absent.
func (s slStore) Update(k, v uint64) bool { return s.s.Update(k, v) }

// Delete removes key, returning false if absent.
func (s slStore) Delete(k uint64) bool { return s.s.Delete(k) }

// Len returns the number of stored pairs.
func (s slStore) Len() int { return s.s.Len() }

// Ascend visits pairs in ascending key order starting at from.
func (s slStore) Ascend(from uint64, fn func(k, v uint64) bool) { s.s.Ascend(from, fn) }

// nativeStore builds each structure's per-partition store factory.
func nativeStore(sc Scale, structure string) func(int) core.Store {
	switch structure {
	case "btree":
		return nil // core defaults to cds.NewBTree
	case "skiplist":
		return func(int) core.Store { return slStore{cds.NewSkipList(sc.SkiplistLevels)} }
	}
	panic("exp: unknown native structure " + structure)
}

// nativeRequests converts one simulator op stream to the native request
// vocabulary. The kinds are already shared (kv.Kind = hds.Kind); only the
// key width changes.
func nativeRequests(ops []kv.Op) []hds.Request {
	out := make([]hds.Request, len(ops))
	for i, op := range ops {
		out[i] = hds.Request{Kind: op.Kind, Key: uint64(op.Key), Value: uint64(op.Value)}
	}
	return out
}

// runNativeOps executes one thread's slice under the variant's call
// discipline: the batch flag routes through ApplyBatch even at window 1,
// so a nonblocking variant can never silently fall back to the blocking
// path.
func runNativeOps(h *core.Hybrid, v nativeVariant, ops []hds.Request) {
	if v.batch {
		h.ApplyBatch(ops, v.window)
		return
	}
	for _, op := range ops {
		h.Apply(op)
	}
}

// runNativeCell measures one grid point on the real runtime: build a fresh
// hybrid map, load it untimed, run per-thread warmup slices, rendezvous,
// and time the measured slices wall-clock. Registry snapshots are taken at
// the two rendezvous points, where every published future has been
// consumed (the runtime's quiescence requirement), so the counter deltas
// are exact. Cells run serially — unlike simulated cells they share the
// host CPU, so concurrent cells would perturb each other's timing.
func runNativeCell(sc Scale, structure string, v nativeVariant, load []ycsb.Pair, streams [][]hds.Request) Cell {
	threads := len(streams)
	h := core.New(core.Config{
		Partitions: sc.Machine.Mem.NMPVaults,
		KeyMax:     uint64(sc.KeyMax),
		NewStore:   nativeStore(sc, structure),
	})
	defer h.Close()
	pairs := make([]core.KV, len(load))
	for i, p := range load {
		pairs[i] = core.KV{Key: uint64(p.Key), Value: uint64(p.Value)}
	}
	h.Build(pairs)
	reg := h.Metrics()

	var warm, done sync.WaitGroup
	start := make(chan struct{})
	warm.Add(threads)
	done.Add(threads)
	for th := 0; th < threads; th++ {
		th := th
		go func() {
			runNativeOps(h, v, streams[th][:sc.WarmupPerThread])
			warm.Done()
			<-start
			runNativeOps(h, v, streams[th][sc.WarmupPerThread:])
			done.Done()
		}()
	}
	warm.Wait()
	before := reg.Snapshot()
	t0 := time.Now()
	close(start)
	done.Wait()
	wall := time.Since(t0)
	after := reg.Snapshot()

	delta := map[string]uint64{}
	for name, dv := range after.Sub(before) {
		if dv != 0 {
			delta[name] = dv
		}
	}
	ops := threads * sc.OpsPerThread
	return Cell{
		Variant:    v.name,
		Threads:    threads,
		Ops:        ops,
		MOpsPerSec: float64(ops) / wall.Seconds() / 1e6,
		WallNanos:  uint64(wall.Nanoseconds()),
		Metrics:    delta,
	}
}

// nativeGrid measures the full threads x variant grid for one structure.
// Both structures use SkiplistRecords as the record count: the native
// runtime loads real memory (no simulated bulk build), so the B+ tree uses
// the same 2^22-record footprint rather than the simulator's 30M.
func nativeGrid(sc Scale, structure string, progress io.Writer) map[string]map[int]Cell {
	gen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	out := map[string]map[int]Cell{}
	for _, v := range nativeVariants(sc) {
		out[v.name] = map[int]Cell{}
	}
	for _, th := range sc.ThreadCounts {
		raw := gen.Streams(th, sc.WarmupPerThread+sc.OpsPerThread)
		streams := make([][]hds.Request, th)
		for t := range raw {
			streams[t] = nativeRequests(raw[t])
		}
		for _, v := range nativeVariants(sc) {
			progressf(progress, "  %s %s threads=%d\n", structure, v.name, th)
			out[v.name][th] = runNativeCell(sc, structure, v, load, streams)
		}
	}
	return out
}

func runNativeGrid(sc Scale, structure string, progress io.Writer) Result {
	grid := nativeGrid(sc, structure, progress)
	res := Result{
		ID:     "native-" + structure,
		Title:  fmt.Sprintf("Native %s (YCSB-C wall clock, %d partitions, scale %s)", structure, sc.Machine.Mem.NMPVaults, sc.Name),
		Header: []string{"implementation", "threads", "Mops/s", "vs blocking@same"},
	}
	variants := nativeVariants(sc)
	for _, v := range variants {
		for _, th := range sc.ThreadCounts {
			c := grid[v.name][th]
			rel := c.MOpsPerSec / grid["blocking"][th].MOpsPerSec
			res.Rows = append(res.Rows, []string{v.name, fmt.Sprint(th), f2(c.MOpsPerSec), f2(rel) + "x"})
			res.Cells = append(res.Cells, c)
		}
	}
	res.Notes = append(res.Notes,
		"wall-clock on the host CPU (goroutine combiners), not simulated cycles; absolute numbers are machine-dependent")
	if len(variants) > 1 {
		top := sc.ThreadCounts[len(sc.ThreadCounts)-1]
		nb := variants[1].name
		res.Notes = append(res.Notes,
			fmt.Sprintf("measured (%d threads): %s = %.2fx blocking", top, nb,
				grid[nb][top].MOpsPerSec/grid["blocking"][top].MOpsPerSec))
	} else {
		res.Notes = append(res.Notes,
			fmt.Sprintf("scale %s sets window %d: the nonblocking variant degenerates to the blocking discipline and is omitted", sc.Name, sc.Window))
	}
	return res
}

func runNativeBTree(sc Scale, progress io.Writer) Result {
	return runNativeGrid(sc, "btree", progress)
}

func runNativeSkiplist(sc Scale, progress io.Writer) Result {
	return runNativeGrid(sc, "skiplist", progress)
}

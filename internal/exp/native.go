package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/hds"
	"hybrids/internal/store"
	"hybrids/internal/ycsb"
)

// Native experiments drive the real internal/core runtime — goroutine
// combiners over internal/cds stores on the host CPU — with the same YCSB
// workloads and the same result formatting as the simulated experiments.
// They measure wall-clock throughput, not virtual cycles: Cell.WallNanos
// replaces Cell.Cycles and MOpsPerSec is real operations per real second,
// so the absolute numbers depend on the machine running the benchmark (see
// docs/EXPERIMENTS.md for how to read them against the simulator's).

// NativeRegistry returns the native benchmark experiments in presentation
// order: one per registered store engine, resolved entirely through the
// engine registry. They share the Experiment shape with the simulated
// registry, so cmd/hybrids renders both through the same
// table/markdown/JSON emitters.
func NativeRegistry() []Experiment {
	var out []Experiment
	for _, e := range store.Engines() {
		e := e
		out = append(out, Experiment{
			ID:    "native-" + e.Name,
			Title: fmt.Sprintf("Native %s throughput, YCSB-C (wall clock)", e.Desc),
			Run: func(sc Scale, progress io.Writer) Result {
				return runNativeGrid(sc, e, progress)
			},
		})
	}
	for _, e := range store.Engines() {
		e := e
		out = append(out, Experiment{
			ID:    "native-suite-" + e.Name,
			Title: fmt.Sprintf("Native %s, YCSB core suite A-F (wall clock)", e.Desc),
			Run: func(sc Scale, progress io.Writer) Result {
				return runNativeSuite(sc, e, progress)
			},
		})
	}
	return out
}

// suiteWorkloads are the YCSB core workloads the native suite drives, in
// presentation order. The same letters select cmd/hybridsload -workload
// mixes, so the simulated-engine suite and the served suite measure
// identical op streams.
var suiteWorkloads = []string{"a", "b", "c", "d", "e", "f"}

// FindNative returns the native experiment with the given ID.
func FindNative(id string) (Experiment, bool) {
	for _, e := range NativeRegistry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// nativeVariant names one evaluated call discipline: blocking issues one
// Apply per op (§3.2); batch pipelines through core.ApplyBatch and the
// shared hds window (§3.5) at the variant's window size, whatever it is —
// the discipline is selected by the flag, never inferred from the window
// value.
type nativeVariant struct {
	name   string
	window int
	batch  bool
}

// nativeVariants returns the call disciplines evaluated at this scale.
// With Scale.Window <= 1 the nonblocking variant degenerates to one call
// in flight — the same discipline as blocking — so it is dropped rather
// than re-measuring the blocking path under a misleading nonblocking
// label.
func nativeVariants(sc Scale) []nativeVariant {
	vs := []nativeVariant{{name: "blocking", window: 1}}
	if sc.Window > 1 {
		vs = append(vs, nativeVariant{
			name: fmt.Sprintf("nonblocking%d", sc.Window), window: sc.Window, batch: true,
		})
	}
	return vs
}

// nativeRequests converts one simulator op stream to the native request
// vocabulary. The kinds are already shared (kv.Kind = hds.Kind); only the
// key width changes.
func nativeRequests(ops []kv.Op) []hds.Request {
	out := make([]hds.Request, len(ops))
	for i, op := range ops {
		out[i] = hds.Request{Kind: op.Kind, Key: uint64(op.Key), Value: uint64(op.Value)}
	}
	return out
}

// runNativeOps executes one thread's slice under the variant's call
// discipline: the batch flag routes through ApplyBatch even at window 1,
// so a nonblocking variant can never silently fall back to the blocking
// path.
func runNativeOps(h *core.Hybrid, v nativeVariant, ops []hds.Request) {
	if v.batch {
		h.ApplyBatch(ops, v.window)
		return
	}
	for _, op := range ops {
		h.Apply(op)
	}
}

// runNativeOpsTimed is runNativeOps for the blocking discipline's measured
// phase: it appends each operation's wall-clock latency (nanoseconds) to
// lat. Per-op latency is only meaningful when one call is in flight, so
// the batch disciplines never use it.
func runNativeOpsTimed(h *core.Hybrid, ops []hds.Request, lat []uint64) []uint64 {
	for _, op := range ops {
		t0 := time.Now()
		h.Apply(op)
		lat = append(lat, uint64(time.Since(t0).Nanoseconds()))
	}
	return lat
}

// percentile returns the nearest-rank p-th percentile of sorted latencies.
func percentile(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// runNativeCell measures one grid point on the real runtime: build a fresh
// hybrid map, load it untimed, run per-thread warmup slices, rendezvous,
// and time the measured slices wall-clock. Blocking cells additionally
// record per-operation latencies and report p50/p95/p99. Registry
// snapshots are taken at the two rendezvous points, where every published
// future has been consumed (the runtime's quiescence requirement), so the
// counter deltas are exact. Cells run serially — unlike simulated cells
// they share the host CPU, so concurrent cells would perturb each other's
// timing.
func runNativeCell(sc Scale, e store.Engine, v nativeVariant, load []ycsb.Pair, streams [][]hds.Request) Cell {
	threads := len(streams)
	h := core.New(core.Config{
		Partitions: sc.Machine.Mem.NMPVaults,
		KeyMax:     uint64(sc.KeyMax),
		NewStore:   e.NewNative(e.SimTuning(simParams(sc, v.window))),
	})
	defer h.Close()
	pairs := make([]core.KV, len(load))
	for i, p := range load {
		pairs[i] = core.KV{Key: uint64(p.Key), Value: uint64(p.Value)}
	}
	h.Build(pairs)
	reg := h.Metrics()

	var warm, done sync.WaitGroup
	start := make(chan struct{})
	warm.Add(threads)
	done.Add(threads)
	lats := make([][]uint64, threads)
	for th := 0; th < threads; th++ {
		th := th
		go func() {
			runNativeOps(h, v, streams[th][:sc.WarmupPerThread])
			warm.Done()
			<-start
			if v.batch {
				runNativeOps(h, v, streams[th][sc.WarmupPerThread:])
			} else {
				lats[th] = runNativeOpsTimed(h, streams[th][sc.WarmupPerThread:],
					make([]uint64, 0, sc.OpsPerThread))
			}
			done.Done()
		}()
	}
	warm.Wait()
	before := reg.Snapshot()
	t0 := time.Now()
	close(start)
	done.Wait()
	wall := time.Since(t0)
	after := reg.Snapshot()

	delta := map[string]uint64{}
	for name, dv := range after.Sub(before) {
		if dv != 0 {
			delta[name] = dv
		}
	}
	ops := threads * sc.OpsPerThread
	cell := Cell{
		Variant:    v.name,
		Threads:    threads,
		Ops:        ops,
		MOpsPerSec: float64(ops) / wall.Seconds() / 1e6,
		WallNanos:  uint64(wall.Nanoseconds()),
		Metrics:    delta,
	}
	if !v.batch {
		var all []uint64
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		cell.LatP50Nanos = percentile(all, 50)
		cell.LatP95Nanos = percentile(all, 95)
		cell.LatP99Nanos = percentile(all, 99)
	}
	return cell
}

// nativeGrid measures the full threads x variant grid for one engine.
// Every engine uses SkiplistRecords as the record count: the native
// runtime loads real memory (no simulated bulk build), so all engines
// share the same footprint rather than the simulator's per-engine sizes.
func nativeGrid(sc Scale, e store.Engine, progress io.Writer) map[string]map[int]Cell {
	gen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	out := map[string]map[int]Cell{}
	for _, v := range nativeVariants(sc) {
		out[v.name] = map[int]Cell{}
	}
	for _, th := range sc.ThreadCounts {
		raw := gen.Streams(th, sc.WarmupPerThread+sc.OpsPerThread)
		streams := make([][]hds.Request, th)
		for t := range raw {
			streams[t] = nativeRequests(raw[t])
		}
		for _, v := range nativeVariants(sc) {
			progressf(progress, "  %s %s threads=%d\n", e.Name, v.name, th)
			out[v.name][th] = runNativeCell(sc, e, v, load, streams)
		}
	}
	return out
}

// runNativeSuite measures one engine across the full YCSB core suite at
// this scale's top thread count, one cell per workload. All cells use the
// blocking discipline so every row carries per-op latency percentiles —
// the suite's point is mix sensitivity (SCAN cost, insert churn,
// read-latest skew), not call-discipline scaling, which the per-engine
// grid experiment already covers.
func runNativeSuite(sc Scale, e store.Engine, progress io.Writer) Result {
	threads := sc.ThreadCounts[len(sc.ThreadCounts)-1]
	v := nativeVariant{name: "blocking", window: 1}
	res := Result{
		ID:     "native-suite-" + e.Name,
		Title:  fmt.Sprintf("Native %s YCSB suite (wall clock, %d threads, %d partitions, scale %s)", e.Name, threads, sc.Machine.Mem.NMPVaults, sc.Name),
		Header: []string{"workload", "mix", "threads", "Mops/s", "p50/p95/p99 us"},
	}
	for _, w := range suiteWorkloads {
		cfg, err := ycsb.Workload(w, sc.SkiplistRecords, sc.KeyMax, sc.Seed)
		if err != nil {
			panic(err) // unreachable: suiteWorkloads holds only known letters
		}
		gen := ycsb.New(cfg)
		load := gen.Load()
		raw := gen.Streams(threads, sc.WarmupPerThread+sc.OpsPerThread)
		streams := make([][]hds.Request, threads)
		for t := range raw {
			streams[t] = nativeRequests(raw[t])
		}
		progressf(progress, "  %s suite workload=%s threads=%d\n", e.Name, w, threads)
		c := runNativeCell(sc, e, v, load, streams)
		c.Label = "ycsb-" + w
		res.Rows = append(res.Rows, []string{strings.ToUpper(w), ycsb.WorkloadDesc(w),
			fmt.Sprint(threads), f2(c.MOpsPerSec), fmtLatency(c, false)})
		res.Cells = append(res.Cells, c)
	}
	res.Notes = append(res.Notes,
		"one blocking-discipline cell per YCSB core workload at the top thread count; E's SCAN lengths are zipfian up to 100 pairs",
		"wall-clock on the host CPU (goroutine combiners), not simulated cycles; absolute numbers are machine-dependent")
	return res
}

// fmtLatency renders a blocking cell's percentile triple in microseconds,
// or "-" for batch cells (per-op latency is undefined with several calls
// in flight).
func fmtLatency(c Cell, batch bool) string {
	if batch {
		return "-"
	}
	return fmt.Sprintf("%.1f/%.1f/%.1f",
		float64(c.LatP50Nanos)/1e3, float64(c.LatP95Nanos)/1e3, float64(c.LatP99Nanos)/1e3)
}

func runNativeGrid(sc Scale, e store.Engine, progress io.Writer) Result {
	grid := nativeGrid(sc, e, progress)
	res := Result{
		ID:     "native-" + e.Name,
		Title:  fmt.Sprintf("Native %s (YCSB-C wall clock, %d partitions, scale %s)", e.Name, sc.Machine.Mem.NMPVaults, sc.Name),
		Header: []string{"implementation", "threads", "Mops/s", "p50/p95/p99 us", "vs blocking@same"},
	}
	variants := nativeVariants(sc)
	for _, v := range variants {
		for _, th := range sc.ThreadCounts {
			c := grid[v.name][th]
			rel := c.MOpsPerSec / grid["blocking"][th].MOpsPerSec
			res.Rows = append(res.Rows, []string{v.name, fmt.Sprint(th), f2(c.MOpsPerSec), fmtLatency(c, v.batch), f2(rel) + "x"})
			res.Cells = append(res.Cells, c)
		}
	}
	res.Notes = append(res.Notes,
		"wall-clock on the host CPU (goroutine combiners), not simulated cycles; absolute numbers are machine-dependent")
	if len(variants) > 1 {
		top := sc.ThreadCounts[len(sc.ThreadCounts)-1]
		nb := variants[1].name
		res.Notes = append(res.Notes,
			fmt.Sprintf("measured (%d threads): %s = %.2fx blocking", top, nb,
				grid[nb][top].MOpsPerSec/grid["blocking"][top].MOpsPerSec))
	} else {
		res.Notes = append(res.Notes,
			fmt.Sprintf("scale %s sets window %d: the nonblocking variant degenerates to the blocking discipline and is omitted", sc.Name, sc.Window))
	}
	return res
}

package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"hybrids/internal/ycsb"
)

// TestParallelMatchesSerialQuickScale is the determinism contract behind
// Scale.Parallel: every grid cell simulates on a private machine, so a
// parallel run must reproduce the serial run bit for bit — formatted tables
// and the full per-cell metric dump alike. fig5a covers the thread-sweep
// grid shape; ablate-window covers a per-cell-axis grid with labels. (fig8
// and fig9 are deliberately excluded: their shared memo would make the two
// runs trivially identical.)
func TestParallelMatchesSerialQuickScale(t *testing.T) {
	for _, id := range []string{"fig5a", "ablate-window"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		serial := QuickScale()
		serial.Parallel = 1
		parallel := QuickScale()
		parallel.Parallel = 4

		rs := e.Run(serial, nil)
		rp := e.Run(parallel, nil)

		if rs.Format() != rp.Format() {
			t.Errorf("%s: parallel formatted output differs from serial\nserial:\n%s\nparallel:\n%s",
				id, rs.Format(), rp.Format())
		}
		bs, err := json.Marshal(rs.Cells)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := json.Marshal(rp.Cells)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bs, bp) {
			t.Errorf("%s: parallel per-cell metrics differ from serial", id)
		}
	}
}

// TestRunCellsOrderAndLabels checks that runCells returns cells in
// declaration order with the declared labels, independent of worker count.
func TestRunCellsOrderAndLabels(t *testing.T) {
	sc := QuickScale()
	gen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	streams := gen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
	jobs := []cellJob{
		{sc: sc, v: skiplistLockFree(sc), load: load, streams: streams, progress: "a", label: "first"},
		{sc: sc, v: skiplistHybrid(sc, 1, false), load: load, streams: streams, progress: "b", label: "second"},
		{sc: sc, v: skiplistHybrid(sc, sc.Window, true), load: load, streams: streams, progress: "c", label: "third"},
	}

	sc.Parallel = 1
	serial := runCells(sc, nil, jobs)
	sc.Parallel = 3
	conc := runCells(sc, nil, jobs)

	want := []string{"first", "second", "third"}
	for i, c := range serial {
		if c.Label != want[i] {
			t.Errorf("serial cell %d label = %q, want %q", i, c.Label, want[i])
		}
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], conc[i]) {
			t.Errorf("cell %d differs between serial and parallel runs", i)
		}
	}
}

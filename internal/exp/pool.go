package exp

import (
	"io"
	"sync"
	"sync/atomic"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/ycsb"
)

// cellJob declares one grid point before anything runs: the scale and
// variant to build, plus the exact preloaded keys and per-thread operation
// streams the cell's machine will see. Experiments declare their whole
// grid as a job list up front, which is what lets the harness execute
// cells in any order — or concurrently — and still assemble rows in a
// fixed deterministic order afterwards.
type cellJob struct {
	sc      Scale
	v       variant
	load    []ycsb.Pair
	streams [][]kv.Op
	// progress is the cell's progress line (without indentation/ellipsis).
	progress string
	// label is assigned to the measured Cell.Label (experiments with a
	// per-cell axis beyond variant and thread count).
	label string
}

// runCells measures every declared grid cell and returns the cells in
// declaration order. With sc.Parallel > 1, cells run concurrently on a
// worker pool.
//
// Determinism: each cell builds a private machine (its own engine, memory
// system and metrics registry) inside runCell, and jobs share only inputs
// that no cell mutates (the load set and operation streams). A cell's
// measurement therefore cannot depend on which worker runs it or on what
// runs beside it, so parallel output is bit-identical to serial output;
// only the interleaving of progress lines varies.
func runCells(sc Scale, progress io.Writer, jobs []cellJob) []Cell {
	out := make([]Cell, len(jobs))
	// A TraceSpec captures exactly one cell: the first declared job of the
	// first grid to claim it, which is deterministic regardless of worker
	// count or scheduling.
	traced := -1
	if len(jobs) > 0 && sc.Trace.claim() {
		traced = 0
	}
	traceFor := func(i int) *TraceSpec {
		if i == traced {
			return sc.Trace
		}
		return nil
	}
	workers := sc.Parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			progressf(progress, "  %s...\n", jobs[i].progress)
			out[i] = runJob(jobs[i], traceFor(i))
		}
		return out
	}
	var (
		next int64      = -1
		mu   sync.Mutex // serializes progress lines
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				if progress != nil {
					mu.Lock()
					progressf(progress, "  %s...\n", jobs[i].progress)
					mu.Unlock()
				}
				out[i] = runJob(jobs[i], traceFor(i))
			}
		}()
	}
	wg.Wait()
	return out
}

func runJob(j cellJob, ts *TraceSpec) Cell {
	c := runCell(j.sc, j.v, j.load, j.streams, ts)
	c.Label = j.label
	return c
}

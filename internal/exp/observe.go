package exp

import (
	"os"
	"sync"

	"hybrids/internal/metrics"
	"hybrids/internal/sim/trace"
)

// DefaultTraceEvents is the per-track event ring capacity used when a
// TraceSpec does not set Events.
const DefaultTraceEvents = 1 << 16

// TraceSpec asks the harness to capture a cycle-level event trace of one
// measured grid cell and export it as Chrome trace_event JSON to Path
// (viewable in Perfetto, https://ui.perfetto.dev). Exactly one cell is
// traced — the first declared job of the first grid the spec sees — so the
// capture is deterministic and its cost bounded regardless of experiment
// size. Tracing never advances virtual time: the traced run's measurements
// are bit-identical to an untraced run's.
type TraceSpec struct {
	// Path is the output file for the Chrome trace_event JSON.
	Path string
	// Events bounds each track's event ring (0 = DefaultTraceEvents);
	// older events fall off first.
	Events int

	mu   sync.Mutex
	used bool
	err  error
}

// claim reserves the capture for the calling grid; it returns true exactly
// once per spec (nil-safe).
func (t *TraceSpec) claim() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.used {
		return false
	}
	t.used = true
	return true
}

func (t *TraceSpec) events() int {
	if t.Events > 0 {
		return t.Events
	}
	return DefaultTraceEvents
}

// write exports tr to Path, retaining the first error for Err.
func (t *TraceSpec) write(tr *trace.Tracer) {
	f, err := os.Create(t.Path)
	if err == nil {
		err = tr.WriteChromeJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// Err returns the first error encountered writing the capture (nil when it
// succeeded or never ran; nil-safe).
func (t *TraceSpec) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// AttrSummary is one cell's per-operation latency attribution: virtual
// cycles summed per bucket over Samples attributed operations during the
// measured phase. The buckets sum exactly to Total by construction
// (trace.CoreAttr.Flush attributes every elapsed cycle of every interval).
type AttrSummary struct {
	// Samples is the number of attributed operation completions.
	Samples uint64 `json:"samples"`
	// HostCache: on-chip host cycles (L1/L2 hits, atomic extras, TLB walks).
	HostCache uint64 `json:"host_cache"`
	// Coherence: stalls invalidating remote L1 copies on stores.
	Coherence uint64 `json:"coherence"`
	// DRAM: host LLC-miss fetches (off-chip link + vault bank service).
	DRAM uint64 `json:"dram"`
	// OffloadWait: the NMP round trip as seen by the host, minus NMPSerial.
	OffloadWait uint64 `json:"offload_wait"`
	// NMPSerial: time requests spent queued before combiner pickup.
	NMPSerial uint64 `json:"nmp_serial"`
	// HostCompute: simple-instruction compute plus unattributed residual.
	HostCompute uint64 `json:"host_compute"`
	// Total is the summed interval cycles across all samples.
	Total uint64 `json:"total"`
}

// BucketSum returns bucket b's summed cycles.
func (a *AttrSummary) BucketSum(b trace.Bucket) uint64 {
	switch b {
	case trace.BucketHostCache:
		return a.HostCache
	case trace.BucketCoherence:
		return a.Coherence
	case trace.BucketDRAM:
		return a.DRAM
	case trace.BucketOffloadWait:
		return a.OffloadWait
	case trace.BucketNMPSerial:
		return a.NMPSerial
	case trace.BucketHostCompute:
		return a.HostCompute
	}
	return 0
}

// PerOp returns bucket b's mean cycles per attributed operation.
func (a *AttrSummary) PerOp(b trace.Bucket) float64 {
	if a.Samples == 0 {
		return 0
	}
	return float64(a.BucketSum(b)) / float64(a.Samples)
}

// TotalPerOp returns the mean total interval cycles per attributed
// operation.
func (a *AttrSummary) TotalPerOp() float64 {
	if a.Samples == 0 {
		return 0
	}
	return float64(a.Total) / float64(a.Samples)
}

// attrFrom assembles a cell's attribution summary from a measured-phase
// registry snapshot delta, or nil when attribution recorded no samples
// (attribution off, or no completions in the phase).
func attrFrom(delta metrics.Snapshot) *AttrSummary {
	n := delta.Get(trace.AttrTotalMetric + "/count")
	if n == 0 {
		return nil
	}
	sum := func(b trace.Bucket) uint64 { return delta.Get(b.MetricName() + "/sum") }
	return &AttrSummary{
		Samples:     n,
		HostCache:   sum(trace.BucketHostCache),
		Coherence:   sum(trace.BucketCoherence),
		DRAM:        sum(trace.BucketDRAM),
		OffloadWait: sum(trace.BucketOffloadWait),
		NMPSerial:   sum(trace.BucketNMPSerial),
		HostCompute: sum(trace.BucketHostCompute),
		Total:       delta.Get(trace.AttrTotalMetric + "/sum"),
	}
}

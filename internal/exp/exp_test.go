package exp

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryIDsUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if got, ok := Find(e.ID); !ok || got.ID != e.ID {
			t.Fatalf("Find(%q) failed", e.ID)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find accepted unknown id")
	}
	for _, id := range []string{"table1", "table2", "fig5a", "fig5b", "fig6a", "fig6b", "fig7", "fig8", "fig9"} {
		if !seen[id] {
			t.Fatalf("paper artifact %s missing from registry", id)
		}
	}
}

func TestTable1ListsConfiguration(t *testing.T) {
	res := runTable1(TinyScale(), nil)
	if len(res.Rows) < 6 {
		t.Fatalf("table1 rows = %d", len(res.Rows))
	}
	text := res.Format()
	for _, want := range []string{"L1 dcache", "DRAM timing", "NMP cores", "scratchpad"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table1 missing %q:\n%s", want, text)
		}
	}
}

func TestFig5aTinyProducesFullGrid(t *testing.T) {
	sc := TinyScale()
	res := runFig5a(sc, nil)
	wantRows := 4 * len(sc.ThreadCounts) // 4 variants
	if len(res.Rows) != wantRows {
		t.Fatalf("fig5a rows = %d, want %d", len(res.Rows), wantRows)
	}
	for _, row := range res.Rows {
		if metricOf(t, row[2]) <= 0 {
			t.Fatalf("non-positive throughput in row %v", row)
		}
	}
}

func TestFig6bTinyReadsPositive(t *testing.T) {
	res := runFig6b(TinyScale(), nil)
	if len(res.Rows) != 3 {
		t.Fatalf("fig6b rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if metricOf(t, row[1]) <= 0 {
			t.Fatalf("non-positive reads in row %v", row)
		}
	}
}

func TestTable2DelaysPositive(t *testing.T) {
	res := runTable2(TinyScale(), nil)
	if len(res.Rows) != 6 {
		t.Fatalf("table2 rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows[:5] {
		if metricOf(t, row[1]) <= 0 {
			t.Fatalf("non-positive delay in row %v", row)
		}
	}
}

func TestSensitivityMixesCoverPaper(t *testing.T) {
	labels := map[string]bool{}
	for _, m := range btreeSensitivityMixes() {
		labels[m.label] = true
		if m.read+m.insert+m.remove != 100 {
			t.Fatalf("mix %s does not sum to 100", m.label)
		}
	}
	for _, want := range []string{"100-0-0", "90-5-5", "70-15-15", "50-25-25", "50-25-25-uniform"} {
		if !labels[want] {
			t.Fatalf("missing sensitivity mix %s", want)
		}
	}
}

func TestRunCellDeterministic(t *testing.T) {
	sc := TinyScale()
	run := func() Cell {
		grid := skiplistYCSBCGrid(sc, []int{sc.MaxThreads}, nil)
		return grid["hybrid-blocking"][sc.MaxThreads]
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.ReadsPerOp != b.ReadsPerOp {
		t.Fatalf("cells differ across identical runs: %+v vs %+v", a, b)
	}
}

func TestMarkdownAndFormatRender(t *testing.T) {
	res := Result{
		ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows:  [][]string{{"1", "2"}},
		Notes: []string{"n"},
	}
	if !strings.Contains(res.Format(), "== T ==") || !strings.Contains(res.Format(), "note: n") {
		t.Fatalf("Format output wrong:\n%s", res.Format())
	}
	md := res.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "### T") {
		t.Fatalf("Markdown output wrong:\n%s", md)
	}
}

func metricOf(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("cell %q not numeric", s)
	}
	return v
}

// TestNativeVariantsDegenerateWindow pins the variant set: a window that
// degenerates to one in-flight call must not emit a duplicate blocking
// row under a nonblocking label.
func TestNativeVariantsDegenerateWindow(t *testing.T) {
	sc := TinyScale()
	for _, w := range []int{0, 1} {
		sc.Window = w
		vs := nativeVariants(sc)
		if len(vs) != 1 || vs[0].name != "blocking" || vs[0].batch {
			t.Fatalf("window %d: variants = %+v, want blocking only", w, vs)
		}
	}
	sc.Window = 4
	vs := nativeVariants(sc)
	if len(vs) != 2 || vs[1].name != "nonblocking4" || !vs[1].batch || vs[1].window != 4 {
		t.Fatalf("window 4: variants = %+v", vs)
	}
}

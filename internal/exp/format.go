package exp

import (
	"fmt"
	"strings"
)

// Format renders the result as an aligned text table with notes.
func (r Result) Format() string {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the result as a GitHub-flavoured markdown table
// (used to generate EXPERIMENTS.md).
func (r Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

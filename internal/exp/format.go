package exp

import (
	"fmt"
	"strings"

	"hybrids/internal/sim/trace"
)

// renderTable writes header and rows as an aligned text table.
func renderTable(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// attrTable assembles the per-operation latency-attribution table from the
// result's cells measured with attribution enabled: one row per cell, mean
// cycles per operation in each attribution bucket plus the total. Rows is
// empty when no cell carries attribution.
func (r Result) attrTable() (header []string, rows [][]string) {
	hasLabel := false
	for _, c := range r.Cells {
		if c.Attr != nil && c.Label != "" {
			hasLabel = true
		}
	}
	header = []string{"variant"}
	if hasLabel {
		header = append(header, "label")
	}
	header = append(header, "threads")
	for b := trace.Bucket(0); b < trace.NumBuckets; b++ {
		header = append(header, b.String())
	}
	header = append(header, "total/op")
	for _, c := range r.Cells {
		if c.Attr == nil {
			continue
		}
		row := []string{c.Variant}
		if hasLabel {
			row = append(row, c.Label)
		}
		row = append(row, fmt.Sprint(c.Threads))
		for b := trace.Bucket(0); b < trace.NumBuckets; b++ {
			row = append(row, fmt.Sprintf("%.1f", c.Attr.PerOp(b)))
		}
		row = append(row, fmt.Sprintf("%.1f", c.Attr.TotalPerOp()))
		rows = append(rows, row)
	}
	return header, rows
}

// attrCaption explains the attribution table's unit once per result.
const attrCaption = "per-operation latency attribution (mean cycles between completions, per bucket)"

// Format renders the result as an aligned text table with notes; cells
// measured with attribution enabled add an attribution table after the
// main one.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	renderTable(&b, r.Header, r.Rows)
	if header, rows := r.attrTable(); len(rows) > 0 {
		fmt.Fprintf(&b, "-- %s --\n", attrCaption)
		renderTable(&b, header, rows)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the result as a GitHub-flavoured markdown table
// (used to generate EXPERIMENTS.md); attribution-measured cells add a
// second table.
func (r Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", r.Title)
	table := func(header []string, rows [][]string) {
		b.WriteString("| " + strings.Join(header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(header)) + "\n")
		for _, row := range rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
	}
	table(r.Header, r.Rows)
	if header, rows := r.attrTable(); len(rows) > 0 {
		fmt.Fprintf(&b, "\n**%s**\n\n", attrCaption)
		table(header, rows)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

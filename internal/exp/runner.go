package exp

import (
	"fmt"

	"hybrids/internal/dsim/btree"
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/skiplist"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
	"hybrids/internal/ycsb"
)

// runner executes one host thread's operation stream against a structure.
type runner interface {
	RunThread(c *machine.Ctx, thread int, ops []kv.Op)
}

type syncRunner struct{ s kv.Store }

func (r syncRunner) RunThread(c *machine.Ctx, thread int, ops []kv.Op) {
	for _, op := range ops {
		r.s.Apply(c, thread, op)
	}
}

type asyncRunner struct{ s kv.AsyncStore }

func (r asyncRunner) RunThread(c *machine.Ctx, thread int, ops []kv.Op) {
	r.s.ApplyBatch(c, thread, ops)
}

// delayer is implemented by structures exposing Table 2 instrumentation.
type delayer interface{ Delays() fc.Delays }

// variant names one evaluated implementation and how to build it on a
// fresh machine.
type variant struct {
	name  string
	build func(m *machine.Machine, load []ycsb.Pair) runner
}

// Cell is one measured grid point.
type Cell struct {
	Variant    string
	Threads    int
	Cycles     uint64  // measured-phase virtual cycles
	Ops        int     // measured operations
	MOpsPerSec float64 // at the 2 GHz core clock
	ReadsPerOp float64 // DRAM block reads per operation
	Delays     fc.Delays
}

// Throughput returns operations per kilocycle (clock-independent).
func (c Cell) Throughput() float64 { return float64(c.Ops) / float64(c.Cycles) * 1000 }

// runCell builds the variant on a fresh machine and measures steady-state
// throughput and DRAM reads per operation: every thread runs its warmup
// slice, all threads rendezvous, and the measured slices run to
// completion. Reported cycles span rendezvous to last completion. The same
// load set and streams must be passed for every variant of a grid point so
// variants see identical work.
func runCell(sc Scale, v variant, load []ycsb.Pair, streams [][]kv.Op) Cell {
	threads := len(streams)
	m := machine.New(sc.Machine)
	r := v.build(m, load)

	arrived := 0
	finished := 0
	var startCycle uint64
	var startStats, endStats memsys.Stats
	var startDelays, endDelays fc.Delays
	endCycle := uint64(0)
	for th := 0; th < threads; th++ {
		th := th
		m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
			r.RunThread(c, th, streams[th][:sc.WarmupPerThread])
			arrived++
			if arrived == threads {
				startCycle = c.Now()
				startStats = m.Mem.Stats
				if d, ok := rStore(r).(delayer); ok {
					startDelays = d.Delays()
				}
			}
			for arrived < threads {
				c.Step(64)
			}
			r.RunThread(c, th, streams[th][sc.WarmupPerThread:])
			finished++
			if c.Now() > endCycle {
				endCycle = c.Now()
			}
			if finished == threads {
				endStats = m.Mem.Stats
				if d, ok := rStore(r).(delayer); ok {
					endDelays = d.Delays()
				}
			}
		})
	}
	m.Run()

	ops := threads * sc.OpsPerThread
	cycles := endCycle - startCycle
	stats := endStats.Sub(startStats)
	cell := Cell{
		Variant:    v.name,
		Threads:    threads,
		Cycles:     cycles,
		Ops:        ops,
		MOpsPerSec: float64(ops) / float64(cycles) * 2e9 / 1e6, // 2 GHz clock
		ReadsPerOp: float64(stats.DRAMReads()) / float64(ops),
	}
	cell.Delays = endDelays
	cell.Delays.PostToScan -= startDelays.PostToScan
	cell.Delays.Service -= startDelays.Service
	cell.Delays.Count -= startDelays.Count
	cell.Delays.CompleteToObserve -= startDelays.CompleteToObserve
	cell.Delays.ObserveCount -= startDelays.ObserveCount
	return cell
}

// rStore unwraps the underlying store from a runner for instrumentation.
func rStore(r runner) any {
	switch rr := r.(type) {
	case syncRunner:
		return rr.s
	case asyncRunner:
		return rr.s
	default:
		return r
	}
}

// Load conversion helpers.

func skiplistPairs(load []ycsb.Pair) []skiplist.KV {
	out := make([]skiplist.KV, len(load))
	for i, p := range load {
		out[i] = skiplist.KV{Key: p.Key, Value: p.Value}
	}
	return out
}

func btreePairs(load []ycsb.Pair) []btree.KV {
	out := make([]btree.KV, len(load))
	for i, p := range load {
		out[i] = btree.KV{Key: p.Key, Value: p.Value}
	}
	return out
}

// Skiplist variants evaluated in §5 (Figure 5, Figure 7).

func skiplistLockFree(sc Scale) variant {
	return variant{name: "lock-free", build: func(m *machine.Machine, load []ycsb.Pair) runner {
		s := skiplist.NewLockFree(m, sc.SkiplistLevels, sc.Seed)
		s.Build(skiplistPairs(load), sc.Seed+1)
		return syncRunner{s}
	}}
}

func skiplistNMPBased(sc Scale) variant {
	return variant{name: "NMP-based", build: func(m *machine.Machine, load []ycsb.Pair) runner {
		s := skiplist.NewNMPFC(m, skiplist.NMPFCConfig{
			Levels: sc.SkiplistLevels, KeyMax: sc.KeyMax,
			SlotsPerPartition: m.Cfg.Mem.HostCores, Seed: sc.Seed,
		})
		s.Build(skiplistPairs(load), sc.Seed+1)
		s.Start()
		return syncRunner{s}
	}}
}

func skiplistHybrid(sc Scale, window int, async bool) variant {
	name := "hybrid-blocking"
	if async {
		name = fmt.Sprintf("hybrid-nonblocking%d", window)
	}
	return variant{name: name, build: func(m *machine.Machine, load []ycsb.Pair) runner {
		s := skiplist.NewHybrid(m, skiplist.HybridConfig{
			TotalLevels: sc.SkiplistLevels, NMPLevels: sc.SkiplistNMPLevels,
			KeyMax: sc.KeyMax, Window: window, Seed: sc.Seed,
		})
		s.Build(skiplistPairs(load), sc.Seed+1)
		s.Start()
		if async {
			return asyncRunner{s}
		}
		return syncRunner{s}
	}}
}

func skiplistVariants(sc Scale) []variant {
	return []variant{
		skiplistLockFree(sc),
		skiplistNMPBased(sc),
		skiplistHybrid(sc, 1, false),
		skiplistHybrid(sc, sc.Window, true),
	}
}

// B+ tree variants evaluated in §5 (Figure 6, Figure 8).

func btreeHostOnly(sc Scale) variant {
	return variant{name: "host-only", build: func(m *machine.Machine, load []ycsb.Pair) runner {
		t := btree.NewHostOnly(m)
		t.Build(btreePairs(load), sc.BTreeFill)
		return syncRunner{t}
	}}
}

func btreeHybrid(sc Scale, window int, async bool) variant {
	name := "hybrid-blocking"
	if async {
		name = fmt.Sprintf("hybrid-nonblocking%d", window)
	}
	return variant{name: name, build: func(m *machine.Machine, load []ycsb.Pair) runner {
		t := btree.NewHybrid(m, btree.HybridBTreeConfig{NMPLevels: sc.BTreeNMPLevels, Window: window})
		t.Build(btreePairs(load), sc.BTreeFill)
		t.Start()
		if async {
			return asyncRunner{t}
		}
		return syncRunner{t}
	}}
}

func btreeVariants(sc Scale) []variant {
	return []variant{
		btreeHostOnly(sc),
		btreeHybrid(sc, 1, false),
		btreeHybrid(sc, sc.Window, true),
	}
}

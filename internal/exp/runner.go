package exp

import (
	"fmt"

	"hybrids/internal/dsim/btree"
	"hybrids/internal/dsim/fc"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/skiplist"
	"hybrids/internal/metrics"
	"hybrids/internal/sim/machine"
	"hybrids/internal/sim/memsys"
	"hybrids/internal/sim/trace"
	"hybrids/internal/store"
	"hybrids/internal/ycsb"
)

// simParams maps a Scale onto the registry's engine sizing, with the
// variant's window substituted (blocking variants run window 1 whatever
// the scale's non-blocking budget is).
func simParams(sc Scale, window int) store.SimParams {
	return store.SimParams{
		SkiplistRecords:    sc.SkiplistRecords,
		SkiplistLevels:     sc.SkiplistLevels,
		SkiplistNMPLevels:  sc.SkiplistNMPLevels,
		BTreeRecords:       sc.BTreeRecords,
		BTreeFill:          sc.BTreeFill,
		BTreeNMPLevels:     sc.BTreeNMPLevels,
		BSkiplistRecords:   sc.BSkiplistRecords,
		BSkiplistLevels:    sc.BSkiplistLevels,
		BSkiplistNMPLevels: sc.BSkiplistNMPLevels,
		BSkiplistFill:      sc.BSkiplistFill,
		KeyMax:             sc.KeyMax,
		Window:             window,
		Seed:               sc.Seed,
	}
}

// Store is the typed interface every evaluated structure implements: the
// operation entry point plus access to the machine-wide metrics registry
// the harness measures phases against.
type Store interface {
	kv.Store
	Metrics() *metrics.Registry
}

// Runner executes one host thread's operation stream against a structure:
// blocking one-at-a-time calls through Store, or the non-blocking window
// path when Batch is set.
type Runner struct {
	Store Store
	Batch kv.AsyncStore // non-nil selects the non-blocking path
}

// RunThread applies ops on the calling thread's context, recording one
// Ctx.OpDone per completed operation (the non-blocking path records its
// completions inside ApplyBatch, where they actually happen). OpDone is
// what delimits the per-operation intervals of the latency-attribution
// report; it consumes no virtual time.
func (r Runner) RunThread(c *machine.Ctx, thread int, ops []kv.Op) {
	if r.Batch != nil {
		r.Batch.ApplyBatch(c, thread, ops)
		return
	}
	for _, op := range ops {
		r.Store.Apply(c, thread, op)
		c.OpDone()
	}
}

// variant names one evaluated implementation and how to build it on a
// fresh machine.
type variant struct {
	name  string
	build func(m *machine.Machine, load []ycsb.Pair) Runner
}

// Cell is one measured grid point.
type Cell struct {
	Variant    string    `json:"variant"`
	Label      string    `json:"label,omitempty"` // experiment-specific axis (mix, window, ...)
	Threads    int       `json:"threads"`
	Cycles     uint64    `json:"cycles"` // measured-phase virtual cycles
	Ops        int       `json:"ops"`    // measured operations
	MOpsPerSec float64   `json:"throughput_mops"`
	ReadsPerOp float64   `json:"reads_per_op"` // DRAM block reads per operation
	Delays     fc.Delays `json:"-"`
	// Attr is the cell's per-operation latency attribution (nil unless the
	// cell was measured with Scale.Attr enabled).
	Attr *AttrSummary `json:"attr,omitempty"`
	// WallNanos is the measured-phase wall-clock duration. Only native
	// cells set it (simulated cells report virtual Cycles instead), so it
	// is omitted from simulator JSON.
	WallNanos uint64 `json:"wall_ns,omitempty"`
	// Metrics carries the measured phase's non-zero counter deltas from the
	// native runtime's registry (core/p<i>/... instruments). Nil for
	// simulated cells.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
	// LatP50Nanos, LatP95Nanos and LatP99Nanos are the measured phase's
	// per-operation wall-clock latency percentiles. Only native blocking
	// cells set them (per-op latency is undefined with several calls in
	// flight, and simulated cells report virtual time), so they are
	// omitted from other cells' JSON.
	LatP50Nanos uint64 `json:"lat_p50_ns,omitempty"`
	LatP95Nanos uint64 `json:"lat_p95_ns,omitempty"`
	LatP99Nanos uint64 `json:"lat_p99_ns,omitempty"`
}

// Throughput returns operations per kilocycle (clock-independent).
func (c Cell) Throughput() float64 { return float64(c.Ops) / float64(c.Cycles) * 1000 }

// runCell builds the variant on a fresh machine and measures steady-state
// throughput and DRAM reads per operation: every thread runs its warmup
// slice, all threads rendezvous, and the measured slices run to
// completion. Reported cycles span rendezvous to last completion. The same
// load set and streams must be passed for every variant of a grid point so
// variants see identical work. The measured phase is a snapshot/delta over
// the machine-wide metrics registry, so memory-system counts, offload
// delay histograms and attribution histograms all come from one namespace.
//
// With sc.Attr, the cell's machine runs with attribution enabled and the
// returned Cell carries the measured phase's AttrSummary. With ts non-nil
// (the grid cell claimed by a TraceSpec), the machine runs with tracing
// enabled and the capture is written after the run. Both are
// observationally transparent, so enabling them cannot change Cycles, Ops
// or any other measurement.
func runCell(sc Scale, v variant, load []ycsb.Pair, streams [][]kv.Op, ts *TraceSpec) Cell {
	threads := len(streams)
	m := machine.New(sc.Machine)
	var tracer *trace.Tracer
	if ts != nil {
		tracer = m.EnableTracing(ts.events())
	}
	if sc.Attr {
		m.EnableAttribution()
	}
	r := v.build(m, load)
	reg := r.Store.Metrics()

	arrived := 0
	finished := 0
	var startCycle uint64
	var start, end metrics.Snapshot
	endCycle := uint64(0)
	for th := 0; th < threads; th++ {
		th := th
		m.SpawnHost(th, fmt.Sprintf("driver%d", th), func(c *machine.Ctx) {
			r.RunThread(c, th, streams[th][:sc.WarmupPerThread])
			arrived++
			if arrived == threads {
				startCycle = c.Now()
				start = reg.Snapshot()
			}
			for arrived < threads {
				c.Step(64)
			}
			// Restart the attribution interval at the measured-phase
			// boundary so warmup and rendezvous cycles cannot leak into
			// the first measured operation's sample.
			c.AttrReset()
			r.RunThread(c, th, streams[th][sc.WarmupPerThread:])
			finished++
			if c.Now() > endCycle {
				endCycle = c.Now()
			}
			if finished == threads {
				end = reg.Snapshot()
			}
		})
	}
	m.Run()
	if ts != nil {
		ts.write(tracer)
	}

	ops := threads * sc.OpsPerThread
	cycles := endCycle - startCycle
	delta := end.Sub(start)
	stats := memsys.StatsFrom(delta)
	return Cell{
		Variant:    v.name,
		Threads:    threads,
		Cycles:     cycles,
		Ops:        ops,
		MOpsPerSec: float64(ops) / float64(cycles) * 2e9 / 1e6, // 2 GHz clock
		ReadsPerOp: float64(stats.DRAMReads()) / float64(ops),
		Delays:     fc.DelaysFrom(delta),
		Attr:       attrFrom(delta),
	}
}

// Load conversion helpers.

func skiplistPairs(load []ycsb.Pair) []skiplist.KV {
	out := make([]skiplist.KV, len(load))
	for i, p := range load {
		out[i] = skiplist.KV{Key: p.Key, Value: p.Value}
	}
	return out
}

func btreePairs(load []ycsb.Pair) []btree.KV {
	out := make([]btree.KV, len(load))
	for i, p := range load {
		out[i] = btree.KV{Key: p.Key, Value: p.Value}
	}
	return out
}

// Skiplist variants evaluated in §5 (Figure 5, Figure 7).

func skiplistLockFree(sc Scale) variant {
	return variant{name: "lock-free", build: func(m *machine.Machine, load []ycsb.Pair) Runner {
		s := skiplist.NewLockFree(m, sc.SkiplistLevels, sc.Seed)
		s.Build(skiplistPairs(load), sc.Seed+1)
		return Runner{Store: s}
	}}
}

func skiplistNMPBased(sc Scale) variant {
	return variant{name: "NMP-based", build: func(m *machine.Machine, load []ycsb.Pair) Runner {
		s := skiplist.NewNMPFC(m, skiplist.NMPFCConfig{
			Levels: sc.SkiplistLevels, KeyMax: sc.KeyMax,
			SlotsPerPartition: m.Cfg.Mem.HostCores, Seed: sc.Seed,
		})
		s.Build(skiplistPairs(load), sc.Seed+1)
		s.Start()
		return Runner{Store: s}
	}}
}

// engineHybrid builds any registered engine's simulated hybrid as a grid
// variant: the one generic builder every HybriDS hybrid goes through, so
// experiments never construct a hybrid by concrete type.
func engineHybrid(e store.Engine, sc Scale, window int, async bool) variant {
	name := "hybrid-blocking"
	if async {
		name = fmt.Sprintf("hybrid-nonblocking%d", window)
	}
	return variant{name: name, build: func(m *machine.Machine, load []ycsb.Pair) Runner {
		s := e.NewSimHybrid(m, simParams(sc, window))
		s.Build(load)
		s.Start()
		if async {
			return Runner{Store: s, Batch: s}
		}
		return Runner{Store: s}
	}}
}

func skiplistHybrid(sc Scale, window int, async bool) variant {
	return engineHybrid(store.MustEngine("skiplist"), sc, window, async)
}

func skiplistVariants(sc Scale) []variant {
	return []variant{
		skiplistLockFree(sc),
		skiplistNMPBased(sc),
		skiplistHybrid(sc, 1, false),
		skiplistHybrid(sc, sc.Window, true),
	}
}

// B+ tree variants evaluated in §5 (Figure 6, Figure 8).

func btreeHostOnly(sc Scale) variant {
	return variant{name: "host-only", build: func(m *machine.Machine, load []ycsb.Pair) Runner {
		t := btree.NewHostOnly(m)
		t.Build(btreePairs(load), sc.BTreeFill)
		return Runner{Store: t}
	}}
}

func btreeHybrid(sc Scale, window int, async bool) variant {
	return engineHybrid(store.MustEngine("btree"), sc, window, async)
}

func btreeVariants(sc Scale) []variant {
	return []variant{
		btreeHostOnly(sc),
		btreeHybrid(sc, 1, false),
		btreeHybrid(sc, sc.Window, true),
	}
}

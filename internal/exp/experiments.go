package exp

import (
	"fmt"
	"io"
	"sort"

	"hybrids/internal/boundary"
	"hybrids/internal/store"
	"hybrids/internal/ycsb"
)

// Result is one reproduced table or figure. Cells carries the measured
// grid points in deterministic (row) order for machine-readable emission;
// table-style experiments with no measured cells leave it empty.
type Result struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"-"`
	Rows   [][]string `json:"-"`
	Notes  []string   `json:"notes,omitempty"`
	Cells  []Cell     `json:"cells,omitempty"`
	// Meta carries run provenance (vcs revision, Go version, GOMAXPROCS,
	// ...) for archived artifacts like BENCH_server.json. Experiments
	// leave it nil so simulator outputs stay byte-stable.
	Meta map[string]string `json:"meta,omitempty"`
}

// Experiment is a runnable reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale, progress io.Writer) Result
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table 1: evaluation framework configuration", runTable1},
		{"fig5a", "Figure 5a: skiplist throughput, YCSB-C", runFig5a},
		{"fig5b", "Figure 5b: skiplist DRAM reads per operation, YCSB-C", runFig5b},
		{"fig6a", "Figure 6a: B+ tree throughput, YCSB-C", runFig6a},
		{"fig6b", "Figure 6b: B+ tree DRAM reads per operation, YCSB-C", runFig6b},
		{"table2", "Table 2: NMP operation offloading delays", runTable2},
		{"fig7", "Figure 7: skiplist sensitivity to concurrent modifications", runFig7},
		{"fig8", "Figure 8: B+ tree sensitivity to concurrent modifications", runFig8},
		{"fig9", "Figure 9: B+ tree memory reads per op across mixes", runFig9},
		{"ablate-window", "Ablation: non-blocking window depth (§3.5)", runAblateWindow},
		{"ablate-skew", "Ablation: workload skew (the paper's §7 limitation)", runAblateSkew},
		{"ablate-split", "Ablation: skiplist host-NMP split level (§3.3)", runAblateSplit},
		{"boundary-adapt", "Adaptive host/NMP boundary: feedback-policy trajectory vs the static split (internal/boundary)", runBoundaryAdapt},
		{"ablate-mmio", "Ablation: NMP offload (MMIO) latency sensitivity (§3.2)", runAblateMMIO},
		{"ablate-partitions", "Ablation: NMP partition count (§3.2)", runAblatePartitions},
		{"engine-bskiplist", "Third engine: cache-conscious B-skiplist hybrid, YCSB-C (registry grid)", runEngineBSkiplist},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func progressf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// --- Table 1 -------------------------------------------------------------

func runTable1(sc Scale, _ io.Writer) Result {
	mc := sc.Machine.Mem
	rows := [][]string{
		{"host cores", fmt.Sprintf("%d out-of-order-equivalent @ 2GHz, 1 thread/core", mc.HostCores)},
		{"L1 dcache", fmt.Sprintf("%dKB private, %d-way LRU, %d-cycle, %dB blocks", mc.L1.Size>>10, mc.L1.Ways, mc.L1.Latency, mc.L1.BlockSize)},
		{"L2 cache", fmt.Sprintf("%dKB shared, %d-way LRU, %d-cycle, %dB blocks", mc.L2.Size>>10, mc.L2.Ways, mc.L2.Latency, mc.L2.BlockSize)},
		{"memory", fmt.Sprintf("%dMB host + %dMB NMP, %d+%d vaults, %d banks/vault", mc.HostMemSize>>20, mc.NMPMemSize>>20, mc.HostVaults, mc.NMPVaults, mc.Vault.Banks)},
		{"DRAM timing", fmt.Sprintf("tRP=%d tRCD=%d tCL=%d tBURST=%d cycles", mc.Vault.Timing.TRP, mc.Vault.Timing.TRCD, mc.Vault.Timing.TCL, mc.Vault.Timing.TBURST)},
		{"NMP cores", fmt.Sprintf("%d in-order single-cycle @ 2GHz, one %dB node buffer", mc.NMPVaults, mc.L1.BlockSize)},
		{"scratchpad", fmt.Sprintf("%dKB per NMP core (publication lists host-mapped)", mc.ScratchSize>>10)},
		{"offload path", fmt.Sprintf("MMIO write %d / read %d / +%d per extra word / host DRAM extra %d cycles", mc.MMIOWriteLatency, mc.MMIOReadLatency, mc.MMIOWordExtra, mc.HostDRAMExtra)},
	}
	return Result{ID: "table1", Title: "Table 1 (scale: " + sc.Name + ")", Header: []string{"component", "configuration"}, Rows: rows}
}

// --- Figures 5a/5b: skiplist baseline (YCSB-C) ---------------------------

func skiplistYCSBCGrid(sc Scale, threadCounts []int, progress io.Writer) map[string]map[int]Cell {
	gen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	type point struct {
		name string
		th   int
	}
	var jobs []cellJob
	var points []point
	for _, th := range threadCounts {
		streams := gen.Streams(th, sc.WarmupPerThread+sc.OpsPerThread)
		for _, v := range skiplistVariants(sc) {
			jobs = append(jobs, cellJob{
				sc: sc, v: v, load: load, streams: streams,
				progress: fmt.Sprintf("fig5 %s threads=%d", v.name, th),
			})
			points = append(points, point{v.name, th})
		}
	}
	cells := runCells(sc, progress, jobs)
	out := map[string]map[int]Cell{}
	for i, p := range points {
		if out[p.name] == nil {
			out[p.name] = map[int]Cell{}
		}
		out[p.name][p.th] = cells[i]
	}
	return out
}

func runFig5a(sc Scale, progress io.Writer) Result {
	grid := skiplistYCSBCGrid(sc, sc.ThreadCounts, progress)
	res := Result{
		ID: "fig5a", Title: "Figure 5a (skiplist, YCSB-C, scale " + sc.Name + ")",
		Header: []string{"implementation", "threads", "Mops/s", "vs lock-free@same"},
	}
	for _, v := range skiplistVariants(sc) {
		for _, th := range sc.ThreadCounts {
			c := grid[v.name][th]
			rel := c.MOpsPerSec / grid["lock-free"][th].MOpsPerSec
			res.Rows = append(res.Rows, []string{v.name, fmt.Sprint(th), f2(c.MOpsPerSec), f2(rel) + "x"})
			res.Cells = append(res.Cells, c)
		}
	}
	top := sc.ThreadCounts[len(sc.ThreadCounts)-1]
	res.Notes = append(res.Notes,
		fmt.Sprintf("paper (8 threads): hybrid-blocking +46%% over lock-free, +99%% over NMP-based; hybrid-nonblocking4 = 2.46x lock-free"),
		fmt.Sprintf("measured (%d threads): hybrid-blocking %.2fx lock-free, %.2fx NMP-based; hybrid-nonblocking%d %.2fx lock-free",
			top,
			grid["hybrid-blocking"][top].MOpsPerSec/grid["lock-free"][top].MOpsPerSec,
			grid["hybrid-blocking"][top].MOpsPerSec/grid["NMP-based"][top].MOpsPerSec,
			sc.Window,
			grid[fmt.Sprintf("hybrid-nonblocking%d", sc.Window)][top].MOpsPerSec/grid["lock-free"][top].MOpsPerSec))
	return res
}

func runFig5b(sc Scale, progress io.Writer) Result {
	grid := skiplistYCSBCGrid(sc, []int{sc.MaxThreads}, progress)
	res := Result{
		ID: "fig5b", Title: "Figure 5b (skiplist DRAM reads/op, YCSB-C, scale " + sc.Name + ")",
		Header: []string{"implementation", "DRAM reads/op", "vs lock-free"},
	}
	lf := grid["lock-free"][sc.MaxThreads].ReadsPerOp
	for _, v := range skiplistVariants(sc) {
		c := grid[v.name][sc.MaxThreads]
		res.Rows = append(res.Rows, []string{v.name, f2(c.ReadsPerOp), f2(c.ReadsPerOp / lf)})
		res.Cells = append(res.Cells, c)
	}
	res.Notes = append(res.Notes, "paper: lock-free 36, hybrid 24 (2/3 of lock-free), NMP-based ~60 (hybrid = 40% of it)")
	return res
}

// --- Figures 6a/6b: B+ tree baseline (YCSB-C) ----------------------------

func btreeYCSBCGrid(sc Scale, threadCounts []int, progress io.Writer) map[string]map[int]Cell {
	gen := ycsb.New(ycsb.YCSBC(sc.BTreeRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	type point struct {
		name string
		th   int
	}
	var jobs []cellJob
	var points []point
	for _, th := range threadCounts {
		streams := gen.Streams(th, sc.WarmupPerThread+sc.OpsPerThread)
		for _, v := range btreeVariants(sc) {
			jobs = append(jobs, cellJob{
				sc: sc, v: v, load: load, streams: streams,
				progress: fmt.Sprintf("fig6 %s threads=%d", v.name, th),
			})
			points = append(points, point{v.name, th})
		}
	}
	cells := runCells(sc, progress, jobs)
	out := map[string]map[int]Cell{}
	for i, p := range points {
		if out[p.name] == nil {
			out[p.name] = map[int]Cell{}
		}
		out[p.name][p.th] = cells[i]
	}
	return out
}

func runFig6a(sc Scale, progress io.Writer) Result {
	grid := btreeYCSBCGrid(sc, sc.ThreadCounts, progress)
	res := Result{
		ID: "fig6a", Title: "Figure 6a (B+ tree, YCSB-C, scale " + sc.Name + ")",
		Header: []string{"implementation", "threads", "Mops/s", "vs host-only@same"},
	}
	for _, v := range btreeVariants(sc) {
		for _, th := range sc.ThreadCounts {
			c := grid[v.name][th]
			rel := c.MOpsPerSec / grid["host-only"][th].MOpsPerSec
			res.Rows = append(res.Rows, []string{v.name, fmt.Sprint(th), f2(c.MOpsPerSec), f2(rel) + "x"})
			res.Cells = append(res.Cells, c)
		}
	}
	top := sc.ThreadCounts[len(sc.ThreadCounts)-1]
	res.Notes = append(res.Notes,
		"paper (8 threads): hybrid-blocking +18% over host-only; hybrid-nonblocking4 = 2.11x host-only",
		fmt.Sprintf("measured (%d threads): hybrid-blocking %.2fx host-only; hybrid-nonblocking%d %.2fx host-only",
			top,
			grid["hybrid-blocking"][top].MOpsPerSec/grid["host-only"][top].MOpsPerSec,
			sc.Window,
			grid[fmt.Sprintf("hybrid-nonblocking%d", sc.Window)][top].MOpsPerSec/grid["host-only"][top].MOpsPerSec))
	return res
}

func runFig6b(sc Scale, progress io.Writer) Result {
	grid := btreeYCSBCGrid(sc, []int{sc.MaxThreads}, progress)
	res := Result{
		ID: "fig6b", Title: "Figure 6b (B+ tree DRAM reads/op, YCSB-C, scale " + sc.Name + ")",
		Header: []string{"implementation", "DRAM reads/op", "vs host-only"},
	}
	ho := grid["host-only"][sc.MaxThreads].ReadsPerOp
	for _, v := range btreeVariants(sc) {
		c := grid[v.name][sc.MaxThreads]
		res.Rows = append(res.Rows, []string{v.name, f2(c.ReadsPerOp), f2(c.ReadsPerOp / ho)})
		res.Cells = append(res.Cells, c)
	}
	res.Notes = append(res.Notes, "paper: host-only ~9 reads/op, hybrid ~3 (the NMP levels)")
	return res
}

// --- Table 2: offload delay decomposition --------------------------------

func runTable2(sc Scale, progress io.Writer) Result {
	// Single-threaded blocking hybrid B+ tree, read-only: isolates the
	// offload path exactly as the paper measures it (same initial tree,
	// same host levels, one offload at a time).
	gen := ycsb.New(ycsb.YCSBC(sc.BTreeRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	streams := gen.Streams(1, sc.WarmupPerThread+sc.OpsPerThread)
	cell := runCells(sc, progress, []cellJob{{
		sc: sc, v: btreeHybrid(sc, 1, false), load: load, streams: streams,
		progress: "table2 single-offload measurement",
	}})[0]

	mc := sc.Machine.Mem
	reqWrite := mc.MMIOWriteLatency + 6*mc.MMIOWordExtra
	respRead := mc.MMIOReadLatency + 2*mc.MMIOWordExtra
	llcMiss := mc.L1.Latency + mc.L2.Latency + mc.HostDRAMExtra +
		mc.Vault.Timing.TRCD + mc.Vault.Timing.TCL + mc.Vault.Timing.TBURST

	d := cell.Delays
	rows := [][]string{
		{"operation request write (host->scratchpad burst)", fmt.Sprint(reqWrite)},
		{"post -> combiner pickup (doorbell + scan)", fmt.Sprint(d.PostToScan / max64(d.Count, 1))},
		{"NMP-side service (traversal + execution)", fmt.Sprint(d.Service / max64(d.Count, 1))},
		{"completion -> host observes (poll)", fmt.Sprint(d.CompleteToObserve / max64(d.ObserveCount, 1))},
		{"response read (host<-scratchpad burst)", fmt.Sprint(respRead)},
		{"reference: one LLC-miss DRAM access", fmt.Sprint(llcMiss)},
	}
	return Result{
		ID: "table2", Title: "Table 2 (offload delays in cycles, scale " + sc.Name + ")",
		Header: []string{"delay component", "cycles (mean)"},
		Rows:   rows,
		Cells:  []Cell{cell},
		Notes: []string{
			"paper: communication delays to and from the NMP core sum to ~1-2 LLC miss delays",
			fmt.Sprintf("measured: request+observe+response = %d cycles vs LLC miss %d cycles (%.2fx)",
				reqWrite+d.CompleteToObserve/max64(d.ObserveCount, 1)+respRead, llcMiss,
				float64(reqWrite+d.CompleteToObserve/max64(d.ObserveCount, 1)+respRead)/float64(llcMiss)),
		},
	}
}

func max64(v, floor uint64) uint64 {
	if v < floor {
		return floor
	}
	return v
}

// --- Figures 7-9: sensitivity analysis -----------------------------------

type mix struct {
	label                string
	read, insert, remove int
	fullyUniform         bool // B+ tree: uniform fresh inserts (no forced splits)
}

func sensitivityMixes() []mix {
	return []mix{
		{label: "100-0-0", read: 100},
		{label: "90-5-5", read: 90, insert: 5, remove: 5},
		{label: "70-15-15", read: 70, insert: 15, remove: 15},
		{label: "50-25-25", read: 50, insert: 25, remove: 25},
	}
}

func runFig7(sc Scale, progress io.Writer) Result {
	res := Result{
		ID: "fig7", Title: "Figure 7 (skiplist sensitivity, 8 threads, normalized to lock-free 100-0-0, scale " + sc.Name + ")",
		Header: []string{"workload", "implementation", "Mops/s", "normalized"},
	}
	type point struct {
		mix, name string
	}
	var jobs []cellJob
	var points []point
	for _, mx := range sensitivityMixes() {
		gen := ycsb.New(ycsb.Mix(sc.SkiplistRecords, sc.KeyMax, mx.read, mx.insert, mx.remove, sc.Seed))
		load := gen.Load()
		streams := gen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
		for _, v := range skiplistVariants(sc) {
			jobs = append(jobs, cellJob{
				sc: sc, v: v, load: load, streams: streams,
				progress: fmt.Sprintf("fig7 %s %s", mx.label, v.name),
				label:    mx.label,
			})
			points = append(points, point{mx.label, v.name})
		}
	}
	cells := runCells(sc, progress, jobs)
	var base float64
	for i, p := range points {
		c := cells[i]
		if p.mix == "100-0-0" && p.name == "lock-free" {
			base = c.MOpsPerSec
		}
		res.Rows = append(res.Rows, []string{p.mix, p.name, f2(c.MOpsPerSec), f2(c.MOpsPerSec / base)})
		res.Cells = append(res.Cells, c)
	}
	res.Notes = append(res.Notes,
		"paper: at 50-25-25, hybrid-blocking = 1.61x and hybrid-nonblocking4 = 3.12x lock-free;",
		"hybrids retain 90-93% of their read-only throughput vs lock-free's 80%")
	return res
}

func btreeMixConfig(sc Scale, mx mix) ycsb.Config {
	cfg := ycsb.Mix(sc.BTreeRecords, sc.KeyMax, mx.read, mx.insert, mx.remove, sc.Seed)
	if !mx.fullyUniform {
		// §5.2: inserts target the last leaf of each NMP partition to
		// force maximum node splits.
		cfg.Inserts = ycsb.PartitionTail
		cfg.Partitions = sc.Machine.Mem.NMPVaults
	}
	return cfg
}

func btreeSensitivityMixes() []mix {
	return append(sensitivityMixes(),
		mix{label: "50-25-25-uniform", read: 50, insert: 25, remove: 25, fullyUniform: true})
}

// btreeSensitivityMemo caches the shared fig8/fig9 grid per scale so that
// "-exp all" measures it once.
var btreeSensitivityMemo = map[string]map[string]map[string]Cell{}

func runBTreeSensitivity(sc Scale, progress io.Writer) map[string]map[string]Cell {
	memoKey := fmt.Sprintf("%s/%d/%d", sc.Name, sc.OpsPerThread, sc.BTreeRecords)
	if grid, ok := btreeSensitivityMemo[memoKey]; ok {
		return grid
	}
	type point struct {
		mix, name string
	}
	var jobs []cellJob
	var points []point
	for _, mx := range btreeSensitivityMixes() {
		gen := ycsb.New(btreeMixConfig(sc, mx))
		load := gen.Load()
		streams := gen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
		for _, v := range btreeVariants(sc) {
			jobs = append(jobs, cellJob{
				sc: sc, v: v, load: load, streams: streams,
				progress: fmt.Sprintf("fig8/9 %s %s", mx.label, v.name),
			})
			points = append(points, point{mx.label, v.name})
		}
	}
	cells := runCells(sc, progress, jobs)
	out := map[string]map[string]Cell{}
	for i, p := range points {
		if out[p.mix] == nil {
			out[p.mix] = map[string]Cell{}
		}
		out[p.mix][p.name] = cells[i]
	}
	btreeSensitivityMemo[memoKey] = out
	return out
}

func runFig8(sc Scale, progress io.Writer) Result {
	grid := runBTreeSensitivity(sc, progress)
	res := Result{
		ID: "fig8", Title: "Figure 8 (B+ tree sensitivity, 8 threads, normalized to host-only 100-0-0, scale " + sc.Name + ")",
		Header: []string{"workload", "implementation", "Mops/s", "normalized"},
	}
	base := grid["100-0-0"]["host-only"].MOpsPerSec
	for _, mx := range btreeSensitivityMixes() {
		for _, v := range btreeVariants(sc) {
			c := grid[mx.label][v.name]
			res.Rows = append(res.Rows, []string{mx.label, v.name, f2(c.MOpsPerSec), f2(c.MOpsPerSec / base)})
			c.Label = mx.label
			res.Cells = append(res.Cells, c)
		}
	}
	res.Notes = append(res.Notes,
		"paper: hybrid-blocking stays within ~93.5-100% of host-only across mixes;",
		"hybrid-nonblocking4 is ~1.46-1.60x host-only on every mix")
	return res
}

func runFig9(sc Scale, progress io.Writer) Result {
	grid := runBTreeSensitivity(sc, progress)
	res := Result{
		ID: "fig9", Title: "Figure 9 (B+ tree DRAM reads/op across mixes, 8 threads, scale " + sc.Name + ")",
		Header: []string{"workload", "implementation", "DRAM reads/op"},
	}
	for _, mx := range btreeSensitivityMixes() {
		for _, v := range btreeVariants(sc) {
			c := grid[mx.label][v.name]
			res.Rows = append(res.Rows, []string{mx.label, v.name, f2(c.ReadsPerOp)})
			c.Label = mx.label
			res.Cells = append(res.Cells, c)
		}
	}
	res.Notes = append(res.Notes,
		"paper: host-only's reads/op DROP as targeted insert ratio grows (split-path locality)",
		"and rise again under 50-25-25-uniform; hybrid stays ~flat near the NMP level count")
	return res
}

// --- Ablations ------------------------------------------------------------

func runAblateWindow(sc Scale, progress io.Writer) Result {
	res := Result{
		ID: "ablate-window", Title: "Ablation: in-flight window depth (YCSB-C, 8 threads, scale " + sc.Name + ")",
		Header: []string{"structure", "window", "Mops/s"},
	}
	skGen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	skLoad := skGen.Load()
	skStreams := skGen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
	btGen := ycsb.New(ycsb.YCSBC(sc.BTreeRecords, sc.KeyMax, sc.Seed))
	btLoad := btGen.Load()
	btStreams := btGen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
	windows := []int{1, 2, 4}
	var jobs []cellJob
	for _, w := range windows {
		jobs = append(jobs,
			cellJob{
				sc: sc, v: skiplistHybrid(sc, w, true), load: skLoad, streams: skStreams,
				progress: fmt.Sprintf("window=%d skiplist", w), label: "skiplist",
			},
			cellJob{
				sc: sc, v: btreeHybrid(sc, w, true), load: btLoad, streams: btStreams,
				progress: fmt.Sprintf("window=%d btree", w), label: "btree",
			})
	}
	cells := runCells(sc, progress, jobs)
	for i, w := range windows {
		res.Rows = append(res.Rows, []string{"hybrid skiplist", fmt.Sprint(w), f2(cells[2*i].MOpsPerSec)})
		res.Rows = append(res.Rows, []string{"hybrid B+ tree", fmt.Sprint(w), f2(cells[2*i+1].MOpsPerSec)})
	}
	res.Cells = append(res.Cells, cells...)
	res.Notes = append(res.Notes, "deeper windows hide offload latency until NMP cores or the host issue path saturate (§3.5)")
	sortRows(res.Rows)
	return res
}

func runAblateSkew(sc Scale, progress io.Writer) Result {
	res := Result{
		ID: "ablate-skew", Title: "Ablation: read-only skew sweep (skiplist, 8 threads, scale " + sc.Name + ")",
		Header: []string{"distribution", "lock-free Mops/s", "hybrid-blocking Mops/s", "hybrid/lock-free", "LF reads/op", "hybrid reads/op"},
	}
	dists := []struct {
		label string
		dist  ycsb.Dist
		theta float64
	}{
		{"uniform", ycsb.Uniform, 0},
		{"zipf-0.50", ycsb.Zipfian, 0.50},
		{"zipf-0.80", ycsb.Zipfian, 0.80},
		{"zipf-0.99", ycsb.Zipfian, 0.99},
	}
	var jobs []cellJob
	for _, d := range dists {
		cfg := ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed)
		cfg.Dist = d.dist
		if d.theta != 0 {
			cfg.ZipfTheta = d.theta
		}
		gen := ycsb.New(cfg)
		load := gen.Load()
		streams := gen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
		jobs = append(jobs,
			cellJob{
				sc: sc, v: skiplistLockFree(sc), load: load, streams: streams,
				progress: fmt.Sprintf("skew %s lock-free", d.label), label: d.label,
			},
			cellJob{
				sc: sc, v: skiplistHybrid(sc, 1, false), load: load, streams: streams,
				progress: fmt.Sprintf("skew %s hybrid-blocking", d.label), label: d.label,
			})
	}
	cells := runCells(sc, progress, jobs)
	for i, d := range dists {
		lf, hy := cells[2*i], cells[2*i+1]
		res.Rows = append(res.Rows, []string{
			d.label, f2(lf.MOpsPerSec), f2(hy.MOpsPerSec),
			f2(hy.MOpsPerSec / lf.MOpsPerSec), f2(lf.ReadsPerOp), f2(hy.ReadsPerOp),
		})
		res.Cells = append(res.Cells, lf, hy)
	}
	res.Notes = append(res.Notes,
		"§7: under high skew the conventional structure keeps hot low-level nodes cached,",
		"eroding the hybrid's advantage — the proposed fix (self-adjusting placement) is future work")
	return res
}

func runAblateSplit(sc Scale, progress io.Writer) Result {
	res := Result{
		ID: "ablate-split", Title: "Ablation: skiplist NMP level count (YCSB-C, 8 threads, blocking, scale " + sc.Name + ")",
		Header: []string{"NMP levels", "host levels", "Mops/s", "DRAM reads/op"},
	}
	gen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	streams := gen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
	var (
		jobs   []cellJob
		levels []int
	)
	for _, nl := range []int{sc.SkiplistNMPLevels - 2, sc.SkiplistNMPLevels, sc.SkiplistNMPLevels + 2, sc.SkiplistNMPLevels + 4} {
		if nl <= 0 || nl >= sc.SkiplistLevels {
			continue
		}
		scv := sc
		scv.SkiplistNMPLevels = nl
		levels = append(levels, nl)
		jobs = append(jobs, cellJob{
			sc: scv, v: skiplistHybrid(scv, 1, false), load: load, streams: streams,
			progress: fmt.Sprintf("split nmp=%d", nl), label: fmt.Sprintf("nmp-levels=%d", nl),
		})
	}
	cells := runCells(sc, progress, jobs)
	for i, nl := range levels {
		res.Rows = append(res.Rows, []string{fmt.Sprint(nl), fmt.Sprint(sc.SkiplistLevels - nl), f2(cells[i].MOpsPerSec), f2(cells[i].ReadsPerOp)})
	}
	res.Cells = append(res.Cells, cells...)
	res.Notes = append(res.Notes,
		"too few NMP levels -> host portion outgrows the LLC (misses);",
		"too many -> long serialized NMP traversals (the paper's LLC-sizing rule picks the knee)")
	return res
}

// --- Adaptive boundary ----------------------------------------------------

// boundaryRound is one round of the adaptive feedback loop: the measured
// cell at the round's split, the shares fed to the policy and the
// decision it returned.
type boundaryRound struct {
	split     boundary.Split
	cell      Cell
	dramShare float64
	waitShare float64
	decision  string
}

// adaptSkiplistBoundary drives the internal/boundary feedback policy
// over the hybrid skiplist: each round measures one attribution-enabled
// cell at the policy's current split, feeds the attr/* cycle shares and
// the offload round trip to Adaptive.Decide, and rebuilds at whatever
// split the policy asks for next. Rounds are inherently sequential (the
// policy's EWMAs carry across them). The loop stops after two
// consecutive holds (converged) or maxRounds.
func adaptSkiplistBoundary(sc Scale, progress io.Writer, maxRounds int) ([]boundaryRound, boundary.Split, *boundary.Adaptive) {
	gen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	streams := gen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)

	pol := boundary.NewAdaptive()
	cur := store.MustEngine("skiplist").SimSplit(simParams(sc, 1))
	var rounds []boundaryRound
	quiet := 0
	for round := 0; round < maxRounds && quiet < 2; round++ {
		scv := sc
		scv.SkiplistNMPLevels = cur.NMP
		scv.Attr = true
		progressf(progress, "  boundary round %d: nmp=%d host=%d\n", round, cur.NMP, cur.Host())
		cell := runCell(scv, skiplistHybrid(scv, 1, false), load, streams, nil)
		cell.Label = fmt.Sprintf("round=%d,nmp-levels=%d", round, cur.NMP)

		s := boundary.Sample{Engine: "skiplist", Ops: uint64(cell.Ops)}
		var dramShare, waitShare float64
		if a := cell.Attr; a != nil && a.Total > 0 {
			tot := float64(a.Total)
			s.HostCache = float64(a.HostCache) / tot
			s.DRAM = float64(a.DRAM) / tot
			s.OffloadWait = float64(a.OffloadWait) / tot
			s.NMPSerial = float64(a.NMPSerial) / tot
			dramShare = s.DRAM
			waitShare = s.OffloadWait + s.NMPSerial
		}
		if cell.Delays.Count > 0 {
			s.RTT = float64(cell.Delays.PostToScan+cell.Delays.Service) / float64(cell.Delays.Count)
		}
		next, moved := pol.Decide(cur, s)
		decision := "hold"
		if moved {
			decision = fmt.Sprintf("nmp %d -> %d", cur.NMP, next.NMP)
			quiet = 0
		} else {
			quiet++
		}
		rounds = append(rounds, boundaryRound{split: cur, cell: cell, dramShare: dramShare, waitShare: waitShare, decision: decision})
		cur = next
	}
	return rounds, cur, pol
}

// AdaptBoundary runs the adaptive boundary loop at sc's scale and
// returns the skiplist split the policy converges to — the -boundary
// adaptive entry point of cmd/hybrids, which reruns its grids at the
// converged split instead of the paper's static crossover.
func AdaptBoundary(sc Scale, progress io.Writer) boundary.Split {
	_, conv, _ := adaptSkiplistBoundary(sc, progress, 6)
	return conv
}

// runBoundaryAdapt reports the adaptive policy's trajectory round by
// round, against the paper's static crossover (the scale's configured
// skiplist split, where ablate-split finds the knee).
func runBoundaryAdapt(sc Scale, progress io.Writer) Result {
	res := Result{
		ID: "boundary-adapt", Title: "Adaptive host/NMP boundary: skiplist feedback-policy trajectory (YCSB-C, 8 threads, blocking, scale " + sc.Name + ")",
		Header: []string{"round", "NMP levels", "host levels", "Mops/s", "DRAM share", "offload share", "decision"},
	}
	rounds, conv, pol := adaptSkiplistBoundary(sc, progress, 6)
	for i, r := range rounds {
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(i), fmt.Sprint(r.split.NMP), fmt.Sprint(r.split.Host()),
			f2(r.cell.MOpsPerSec), f2(r.dramShare), f2(r.waitShare), r.decision,
		})
		res.Cells = append(res.Cells, r.cell)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("policy: adaptive EWMA over attr/* cycle shares + offload round trip; started at the paper's static split nmp=%d, converged at nmp=%d after %d move(s)",
			sc.SkiplistNMPLevels, conv.NMP, pol.Moves()),
		"each round measures one attribution-enabled cell at the policy's current split; convergence = two consecutive holds (compare the knee ablate-split finds)")
	return res
}

func runAblateMMIO(sc Scale, progress io.Writer) Result {
	res := Result{
		ID: "ablate-mmio", Title: "Ablation: offload latency sensitivity (skiplist YCSB-C, 8 threads, scale " + sc.Name + ")",
		Header: []string{"MMIO scale", "hybrid-blocking Mops/s", "hybrid-nonblocking Mops/s"},
	}
	gen := ycsb.New(ycsb.YCSBC(sc.SkiplistRecords, sc.KeyMax, sc.Seed))
	load := gen.Load()
	streams := gen.Streams(sc.MaxThreads, sc.WarmupPerThread+sc.OpsPerThread)
	factors := []float64{0.5, 1, 2, 4}
	var jobs []cellJob
	for _, f := range factors {
		scv := sc
		scv.Machine.Mem.MMIOWriteLatency = uint64(float64(sc.Machine.Mem.MMIOWriteLatency) * f)
		scv.Machine.Mem.MMIOReadLatency = uint64(float64(sc.Machine.Mem.MMIOReadLatency) * f)
		label := fmt.Sprintf("mmio=%.1fx", f)
		jobs = append(jobs,
			cellJob{
				sc: scv, v: skiplistHybrid(scv, 1, false), load: load, streams: streams,
				progress: fmt.Sprintf("mmio x%.1f blocking", f), label: label,
			},
			cellJob{
				sc: scv, v: skiplistHybrid(scv, scv.Window, true), load: load, streams: streams,
				progress: fmt.Sprintf("mmio x%.1f non-blocking", f), label: label,
			})
	}
	cells := runCells(sc, progress, jobs)
	for i, f := range factors {
		b, nb := cells[2*i], cells[2*i+1]
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%.1fx", f), f2(b.MOpsPerSec), f2(nb.MOpsPerSec)})
		res.Cells = append(res.Cells, b, nb)
	}
	res.Notes = append(res.Notes, "non-blocking calls should damp the offload-cost slope (the paper's §3.5 motivation)")
	return res
}

func runAblatePartitions(sc Scale, progress io.Writer) Result {
	res := Result{
		ID: "ablate-partitions", Title: "Ablation: NMP partition count (skiplist YCSB-C, 8 threads, non-blocking, scale " + sc.Name + ")",
		Header: []string{"partitions", "Mops/s"},
	}
	partCounts := []int{1, 2, 4, 8}
	var jobs []cellJob
	for _, parts := range partCounts {
		scv := sc
		scv.Machine.Mem.NMPVaults = parts
		gen := ycsb.New(ycsb.YCSBC(scv.SkiplistRecords, scv.KeyMax, scv.Seed))
		load := gen.Load()
		streams := gen.Streams(scv.MaxThreads, scv.WarmupPerThread+scv.OpsPerThread)
		jobs = append(jobs, cellJob{
			sc: scv, v: skiplistHybrid(scv, scv.Window, true), load: load, streams: streams,
			progress: fmt.Sprintf("partitions=%d", parts), label: fmt.Sprintf("partitions=%d", parts),
		})
	}
	cells := runCells(sc, progress, jobs)
	for i, parts := range partCounts {
		res.Rows = append(res.Rows, []string{fmt.Sprint(parts), f2(cells[i].MOpsPerSec)})
	}
	res.Cells = append(res.Cells, cells...)
	res.Notes = append(res.Notes, "combiner parallelism scales with partitions until host issue rate dominates")
	return res
}

// --- Registry engine grids ------------------------------------------------

// engineVariants returns the registry-uniform HybriDS variants of one
// engine: the blocking discipline plus the scale's non-blocking window.
// Unlike the figure-specific variant lists above, nothing here names a
// concrete structure — any registered engine grids identically.
func engineVariants(e store.Engine, sc Scale) []variant {
	return []variant{
		engineHybrid(e, sc, 1, false),
		engineHybrid(e, sc, sc.Window, true),
	}
}

// runEngineGrid measures one registered engine's hybrid across the thread
// sweep, entirely through the registry: load size, hybrid construction and
// variants all come from the Engine value.
func runEngineGrid(e store.Engine, sc Scale, progress io.Writer) Result {
	gen := ycsb.New(ycsb.YCSBC(e.SimRecords(simParams(sc, sc.Window)), sc.KeyMax, sc.Seed))
	load := gen.Load()
	type point struct {
		name string
		th   int
	}
	var jobs []cellJob
	var points []point
	for _, th := range sc.ThreadCounts {
		streams := gen.Streams(th, sc.WarmupPerThread+sc.OpsPerThread)
		for _, v := range engineVariants(e, sc) {
			jobs = append(jobs, cellJob{
				sc: sc, v: v, load: load, streams: streams,
				progress: fmt.Sprintf("engine-%s %s threads=%d", e.Name, v.name, th),
			})
			points = append(points, point{v.name, th})
		}
	}
	cells := runCells(sc, progress, jobs)
	grid := map[string]map[int]Cell{}
	for i, p := range points {
		if grid[p.name] == nil {
			grid[p.name] = map[int]Cell{}
		}
		grid[p.name][p.th] = cells[i]
	}
	res := Result{
		ID:     "engine-" + e.Name,
		Title:  fmt.Sprintf("Engine %s (%s, YCSB-C, scale %s)", e.Name, e.Desc, sc.Name),
		Header: []string{"implementation", "threads", "Mops/s", "vs blocking@same"},
	}
	for _, v := range engineVariants(e, sc) {
		for _, th := range sc.ThreadCounts {
			c := grid[v.name][th]
			rel := c.MOpsPerSec / grid["hybrid-blocking"][th].MOpsPerSec
			res.Rows = append(res.Rows, []string{v.name, fmt.Sprint(th), f2(c.MOpsPerSec), f2(rel) + "x"})
			res.Cells = append(res.Cells, c)
		}
	}
	res.Notes = append(res.Notes,
		"registry-driven grid: the harness resolves the engine by name and never touches a concrete structure type")
	return res
}

func runEngineBSkiplist(sc Scale, progress io.Writer) Result {
	return runEngineGrid(store.MustEngine("bskiplist"), sc, progress)
}

func sortRows(rows [][]string) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i][0] != rows[j][0] {
			return rows[i][0] < rows[j][0]
		}
		return rows[i][1] < rows[j][1]
	})
}

// Package exp defines one reproducible experiment per table and figure in
// the HybriDS paper's evaluation (§5), plus ablation sweeps over the design
// parameters. Each experiment builds fresh simulated machines, runs the
// workloads, and reports the same rows/series the paper plots.
package exp

import (
	"hybrids/internal/sim/machine"
)

// Scale fixes every size parameter of an experiment run. Simulation cost
// scales with the number of measured operations, not with structure size,
// so the default SmallScale keeps the paper's Table 1 machine and
// paper-sized structures and shrinks only the measured phases; the
// locality regimes that drive the results are therefore exact:
//
//   - the whole structure stays much larger than the LLC, and
//   - the hybrid host-managed portion is sized to the LLC by the paper's
//     own split formulas (§3.3, §3.4).
type Scale struct {
	Name string

	// Machine is the simulated hardware configuration.
	Machine machine.Config

	// Skiplist parameters: total records (2^22 in the paper), level
	// count (log2 records) and the number of bottom levels placed
	// NMP-side (total - host split).
	SkiplistRecords   int
	SkiplistLevels    int
	SkiplistNMPLevels int

	// BTree parameters: records, bulk-load fill (the paper's sorted
	// insertion yields ~8 of 14 slots) and NMP-side level count.
	BTreeRecords   int
	BTreeFill      int
	BTreeNMPLevels int

	// BSkiplist parameters: records, list level count, NMP-side bottom
	// levels (the top Levels-NMPLevels form the LLC-resident host
	// router) and bulk-load entries per fat node.
	BSkiplistRecords   int
	BSkiplistLevels    int
	BSkiplistNMPLevels int
	BSkiplistFill      int

	// KeyMax bounds the key space.
	KeyMax uint32

	// OpsPerThread is the measured operation count per host thread;
	// WarmupPerThread runs first to reach cache steady state.
	OpsPerThread    int
	WarmupPerThread int

	// ThreadCounts is the scalability sweep (Figures 5a, 6a).
	ThreadCounts []int
	// MaxThreads is the thread count for single-point experiments.
	MaxThreads int

	// Window is the non-blocking in-flight budget ("hybrid-nonblocking4"
	// uses 4 in the paper).
	Window int

	Seed uint64

	// Parallel is the number of grid cells an experiment measures
	// concurrently (0 or 1: serial). Every cell simulates on a private
	// machine/engine/registry and cells share only immutable inputs, so
	// results are bit-identical at any setting; see runCells.
	Parallel int

	// Attr enables per-operation latency attribution: every cell's host
	// cores split their measured cycles into trace.Bucket categories, each
	// Result gains an attribution table next to its throughput table, and
	// Cell.Attr carries the sums for JSON emission. Attribution is pure
	// bookkeeping and does not change measured timing.
	Attr bool

	// Trace, when non-nil, captures a Chrome trace_event JSON of the first
	// measured cell (see TraceSpec). Tracing does not change measured
	// timing either.
	Trace *TraceSpec
}

// SmallScale is the default. Cycle-level simulation cost scales with the
// number of operations, not the structure size, so the default keeps the
// paper's exact Table 1 machine and paper-sized structures (the skiplist
// is the paper's exact 2^22 keys / 22 levels / 9 NMP levels; the B+ tree
// is the paper's 30M keys, 128 B nodes, 9 levels, 3 NMP levels) and
// shrinks only the measured operation counts.
func SmallScale() Scale {
	return Scale{
		Name:              "small",
		Machine:           machine.Default(),
		SkiplistRecords:   1 << 22,
		SkiplistLevels:    22,
		SkiplistNMPLevels: 9, // host top 13 levels ~ 2^13 nodes ~ LLC (paper's split)
		BTreeRecords:      30_000_000,
		BTreeFill:         8,
		BTreeNMPLevels:    3, // host top 6 of 9 levels ~ 1 MB ~ LLC (paper's split)
		BSkiplistRecords:  1 << 22,
		BSkiplistLevels:   8, // 2^22 records / fill 8 -> ~8-level hierarchy
		BSkiplistNMPLevels: 4, // host top 4 levels ~ 1.2k fat nodes ~ 150 KB << LLC
		BSkiplistFill:     8,
		KeyMax:            1 << 30,
		OpsPerThread:      2000,
		WarmupPerThread:   1000,
		ThreadCounts:      []int{1, 2, 4, 8},
		MaxThreads:        8,
		Window:            4,
		Seed:              42,
	}
}

// PaperScale runs longer measured phases on the same paper-sized
// structures.
func PaperScale() Scale {
	sc := SmallScale()
	sc.Name = "paper"
	sc.OpsPerThread = 6000
	sc.WarmupPerThread = 3000
	return sc
}

// QuickScale is a sub-tiny scale for CI smoke runs and determinism
// regression tests: one short sweep, minimal measured phases.
func QuickScale() Scale {
	sc := TinyScale()
	sc.Name = "quick"
	sc.OpsPerThread = 100
	sc.WarmupPerThread = 30
	sc.ThreadCounts = []int{1, 2}
	sc.MaxThreads = 2
	return sc
}

// TinyScale is for harness self-tests only.
func TinyScale() Scale {
	sc := SmallScale()
	sc.Name = "tiny"
	sc.Machine.Mem.HostMemSize = 32 << 20
	sc.Machine.Mem.NMPMemSize = 32 << 20
	sc.SkiplistRecords = 1 << 12
	sc.SkiplistLevels = 12
	sc.SkiplistNMPLevels = 5
	sc.BTreeRecords = 1 << 13
	sc.BTreeNMPLevels = 2
	sc.BSkiplistRecords = 1 << 12
	sc.BSkiplistLevels = 5
	sc.BSkiplistNMPLevels = 2
	sc.KeyMax = 1 << 20
	sc.OpsPerThread = 150
	sc.WarmupPerThread = 50
	sc.ThreadCounts = []int{1, 4}
	sc.MaxThreads = 4
	return sc
}

// Package ycsb is a from-scratch workload generator compatible with the
// Yahoo! Cloud Serving Benchmark core workloads used in the HybriDS paper:
// a load phase of uniformly scattered keys plus operation streams with
// configurable read/update/insert/remove mixes and zipfian or uniform key
// popularity (YCSB-C = 100% reads, zipfian). It also generates the paper's
// custom sensitivity workloads (§5.2), including the B+ tree
// "targeted-split" insert pattern that forces maximum node splits at the
// last leaf of each NMP partition.
//
// Record index -> key mapping uses a keyed Feistel permutation: keys are
// unique by construction (no dedup state even for tens of millions of
// records), uniformly scattered (which doubles as YCSB's zipfian
// scrambling), and fresh insert keys simply continue the index sequence.
// The key space is viewed as 8 equal stripes and generated keys land in
// the lower half of each stripe, so range partitions stay balanced for any
// power-of-two partition count up to 8 while each stripe's upper half
// leaves headroom for the PartitionTail pattern's incrementing keys.
package ycsb

import (
	"fmt"
	"math"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/prng"
)

// Dist selects the popularity distribution for read/update/remove keys.
type Dist int

// Distributions.
const (
	Uniform Dist = iota
	Zipfian
)

func (d Dist) String() string {
	if d == Zipfian {
		return "zipfian"
	}
	return "uniform"
}

// InsertPattern selects how insert keys are chosen.
type InsertPattern int

const (
	// FreshUniform mints previously unused keys scattered uniformly
	// (no systematic B+ tree node splits beyond normal growth).
	FreshUniform InsertPattern = iota
	// PartitionTail mints incrementing keys just past the current
	// maximum of each NMP partition, round-robin across partitions:
	// every insert lands on the partition's last leaf and forces the
	// maximum possible node splits while spreading load evenly (§5.2).
	PartitionTail
)

// Pair is a load-phase record.
type Pair struct {
	Key, Value uint32
}

// Config parameterizes a workload.
type Config struct {
	// Records is the initial record count (the paper loads 2^22 keys
	// into skiplists and ~30M into B+ trees).
	Records int
	// KeyMax is the exclusive key-space bound (a power of two); load and
	// fresh-insert keys fall in [1, KeyMax/2].
	KeyMax uint32
	// ReadPct/UpdatePct/InsertPct/RemovePct must sum to 100 (the paper's
	// X-Y-Z mixes are read-insert-remove).
	ReadPct, UpdatePct, InsertPct, RemovePct int
	// Dist is the popularity distribution for read/update/remove keys.
	Dist Dist
	// ZipfTheta is the zipfian skew (YCSB default 0.99).
	ZipfTheta float64
	// Inserts selects the insert key pattern.
	Inserts InsertPattern
	// Partitions is required by PartitionTail: the NMP partition count
	// (key ranges are KeyMax/Partitions).
	Partitions int
	Seed       uint64
}

// YCSBC returns the paper's baseline workload: read-only, zipfian.
func YCSBC(records int, keyMax uint32, seed uint64) Config {
	return Config{
		Records: records, KeyMax: keyMax,
		ReadPct: 100, Dist: Zipfian, ZipfTheta: 0.99, Seed: seed,
	}
}

// Mix returns a read-insert-remove sensitivity workload with uniform key
// popularity (§5.2: "workloads with varying ratios of insertions and
// removals and uniform distribution of accessed keys").
func Mix(records int, keyMax uint32, read, insert, remove int, seed uint64) Config {
	return Config{
		Records: records, KeyMax: keyMax,
		ReadPct: read, InsertPct: insert, RemovePct: remove,
		Dist: Uniform, Seed: seed,
	}
}

// keyPerm is a 4-round Feistel permutation over [0, 2^bits): a keyed
// bijection, so distinct indices always yield distinct keys.
type keyPerm struct {
	half uint
	mask uint64
	seed uint64
}

func newKeyPerm(bits uint, seed uint64) keyPerm {
	return keyPerm{half: bits / 2, mask: 1<<(bits/2) - 1, seed: seed}
}

func (p keyPerm) apply(i uint64) uint64 {
	l := (i >> p.half) & p.mask
	r := i & p.mask
	for round := uint64(0); round < 4; round++ {
		l, r = r, l^(prng.Mix64(r^p.seed^(round<<48))&p.mask)
	}
	return l<<p.half | r
}

// Generator produces a load set and deterministic per-thread op streams.
type Generator struct {
	cfg      Config
	perm     keyPerm
	permBits uint   // Feistel domain width (even)
	keyBits  uint   // log2(KeyMax)
	fresh    uint64 // next fresh record index for FreshUniform inserts
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.ReadPct+cfg.UpdatePct+cfg.InsertPct+cfg.RemovePct != 100 {
		panic(fmt.Sprintf("ycsb: op mix sums to %d, want 100",
			cfg.ReadPct+cfg.UpdatePct+cfg.InsertPct+cfg.RemovePct))
	}
	if cfg.KeyMax&(cfg.KeyMax-1) != 0 {
		panic("ycsb: KeyMax must be a power of two")
	}
	if cfg.KeyMax < uint32(cfg.Records)*4 {
		panic("ycsb: key space too small for record count")
	}
	if cfg.ZipfTheta == 0 {
		cfg.ZipfTheta = 0.99
	}
	bits := uint(0)
	for uint32(1)<<bits < cfg.KeyMax {
		bits++
	}
	if bits < 8 {
		panic("ycsb: KeyMax too small")
	}
	// The Feistel permutation needs an even width; keys use 3 stripe bits
	// plus the rest as intra-stripe offset, all drawn from the permuted
	// index.
	permBits := bits - 2
	if permBits%2 == 1 {
		permBits--
	}
	if uint64(cfg.Records) > uint64(1)<<(permBits-1) {
		panic("ycsb: key space too small for record count plus insert headroom")
	}
	return &Generator{
		cfg:      cfg,
		perm:     newKeyPerm(permBits, cfg.Seed^0x10ad10ad),
		permBits: permBits,
		keyBits:  bits,
		fresh:    uint64(cfg.Records),
	}
}

// key maps a record index to its key: the permuted index's top 3 bits pick
// one of 8 stripes and the rest lands at the bottom of the stripe,
// leaving tail headroom at every stripe's top.
func (g *Generator) key(idx uint64) uint32 {
	v := g.perm.apply(idx)
	stripe := v >> (g.permBits - 3)
	off := v & (1<<(g.permBits-3) - 1)
	return uint32(stripe<<(g.keyBits-3)|off) + 1
}

// Load returns the load-phase records (values derived from keys).
func (g *Generator) Load() []Pair {
	out := make([]Pair, g.cfg.Records)
	for i := range out {
		k := g.key(uint64(i))
		out[i] = Pair{Key: k, Value: uint32(prng.Mix64(uint64(k)))}
	}
	return out
}

// Streams generates op streams for the given number of threads,
// opsPerThread each, in one deterministic pass. Fresh insert keys are
// globally unique across threads and across successive Streams calls.
func (g *Generator) Streams(threads, opsPerThread int) [][]kv.Op {
	streams := make([][]kv.Op, threads)
	pickers := make([]*picker, threads)
	for t := range streams {
		streams[t] = make([]kv.Op, 0, opsPerThread)
		pickers[t] = g.newPicker(uint64(t))
	}
	tail := g.newTailCursors()
	// Interleave generation round-robin so PartitionTail key assignment
	// is balanced across threads regardless of thread count.
	for i := 0; i < opsPerThread; i++ {
		for t := 0; t < threads; t++ {
			streams[t] = append(streams[t], g.genOp(pickers[t], tail))
		}
	}
	return streams
}

func (g *Generator) genOp(p *picker, tail *tailCursors) kv.Op {
	r := p.rng.Intn(100)
	switch {
	case r < g.cfg.ReadPct:
		return kv.Op{Kind: kv.Read, Key: p.existing()}
	case r < g.cfg.ReadPct+g.cfg.UpdatePct:
		return kv.Op{Kind: kv.Update, Key: p.existing(), Value: p.rng.Uint32()}
	case r < g.cfg.ReadPct+g.cfg.UpdatePct+g.cfg.InsertPct:
		var key uint32
		if g.cfg.Inserts == PartitionTail {
			key = tail.next()
		} else {
			key = g.key(g.fresh)
			g.fresh++
		}
		return kv.Op{Kind: kv.Insert, Key: key, Value: p.rng.Uint32()}
	default:
		return kv.Op{Kind: kv.Remove, Key: p.existing()}
	}
}

// picker draws keys from the configured popularity distribution over the
// initial records.
type picker struct {
	g    *Generator
	rng  *prng.Source
	zipf *zipfian
}

func (g *Generator) newPicker(salt uint64) *picker {
	p := &picker{g: g, rng: prng.New(g.cfg.Seed ^ prng.Mix64(salt+0x9c))}
	if g.cfg.Dist == Zipfian {
		p.zipf = newZipfian(uint64(g.cfg.Records), g.cfg.ZipfTheta, prng.New(g.cfg.Seed^prng.Mix64(salt+0x2f)))
	}
	return p
}

func (p *picker) existing() uint32 {
	var idx uint64
	if p.zipf != nil {
		// The Feistel index->key permutation already scatters hot
		// items over the key space (YCSB's ScrambledZipfian), keeping
		// partitions balanced.
		idx = p.zipf.next()
	} else {
		idx = uint64(p.rng.Intn(p.g.cfg.Records))
	}
	return p.g.key(idx)
}

// tailCursors implements PartitionTail: per-partition incrementing keys
// starting just above the partition's largest load key.
type tailCursors struct {
	cursors []uint32
	his     []uint32
	next_   int
}

func (g *Generator) newTailCursors() *tailCursors {
	if g.cfg.Inserts != PartitionTail {
		return nil
	}
	if g.cfg.Partitions <= 0 {
		panic("ycsb: PartitionTail requires Partitions")
	}
	part := kv.RangePartitioner{KeyMax: g.cfg.KeyMax, Parts: g.cfg.Partitions}
	t := &tailCursors{}
	maxInPart := make([]uint32, g.cfg.Partitions)
	for i := 0; i < g.cfg.Records; i++ {
		k := g.key(uint64(i))
		p := part.Part(k)
		if k > maxInPart[p] {
			maxInPart[p] = k
		}
	}
	for p := 0; p < g.cfg.Partitions; p++ {
		lo, hi := part.Range(p)
		cursor := maxInPart[p]
		if cursor == 0 {
			cursor = lo
		}
		t.cursors = append(t.cursors, cursor)
		t.his = append(t.his, hi)
	}
	return t
}

func (t *tailCursors) next() uint32 {
	for tries := 0; tries < len(t.cursors); tries++ {
		p := t.next_
		t.next_ = (t.next_ + 1) % len(t.cursors)
		if t.cursors[p]+1 < t.his[p] {
			t.cursors[p]++
			return t.cursors[p]
		}
	}
	panic("ycsb: partition tails exhausted; increase KeyMax headroom")
}

// zipfian is YCSB's bounded zipfian generator (Gray et al.'s rejection
// inversion constants): item 0 is the hottest.
type zipfian struct {
	items             uint64
	theta             float64
	alpha, zetan, eta float64
	zeta2theta        float64
	rng               *prng.Source
}

func newZipfian(items uint64, theta float64, rng *prng.Source) *zipfian {
	z := &zipfian{items: items, theta: theta, rng: rng}
	z.zetan = zetaStatic(items, theta)
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(items), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

var zetaCache = map[[2]uint64]float64{}

func zetaStatic(n uint64, theta float64) float64 {
	ck := [2]uint64{n, math.Float64bits(theta)}
	if v, ok := zetaCache[ck]; ok {
		return v
	}
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	zetaCache[ck] = sum
	return sum
}

func (z *zipfian) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

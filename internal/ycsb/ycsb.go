// Package ycsb is a from-scratch workload generator compatible with the
// Yahoo! Cloud Serving Benchmark core workloads used in the HybriDS paper:
// a load phase of uniformly scattered keys plus operation streams with
// configurable read/update/insert/remove mixes and zipfian or uniform key
// popularity (YCSB-C = 100% reads, zipfian). It also generates the paper's
// custom sensitivity workloads (§5.2), including the B+ tree
// "targeted-split" insert pattern that forces maximum node splits at the
// last leaf of each NMP partition.
//
// Record index -> key mapping uses a keyed Feistel permutation: keys are
// unique by construction (no dedup state even for tens of millions of
// records), uniformly scattered (which doubles as YCSB's zipfian
// scrambling), and fresh insert keys simply continue the index sequence.
// The key space is viewed as 8 equal stripes and generated keys land in
// the lower half of each stripe, so range partitions stay balanced for any
// power-of-two partition count up to 8 while each stripe's upper half
// leaves headroom for the PartitionTail pattern's incrementing keys.
package ycsb

import (
	"fmt"
	"math"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/prng"
)

// Dist selects the popularity distribution for read/update/remove keys.
type Dist int

// Distributions.
const (
	Uniform Dist = iota
	Zipfian
	// Latest draws keys zipfian-skewed toward the most recently inserted
	// record (YCSB-D's read-latest popularity): rank 0 is the newest key,
	// so as the workload's inserts mint fresh records the hot set follows
	// them instead of staying pinned to the initial load.
	Latest
)

func (d Dist) String() string {
	switch d {
	case Zipfian:
		return "zipfian"
	case Latest:
		return "latest"
	}
	return "uniform"
}

// InsertPattern selects how insert keys are chosen.
type InsertPattern int

const (
	// FreshUniform mints previously unused keys scattered uniformly
	// (no systematic B+ tree node splits beyond normal growth).
	FreshUniform InsertPattern = iota
	// PartitionTail mints incrementing keys just past the current
	// maximum of each NMP partition, round-robin across partitions:
	// every insert lands on the partition's last leaf and forces the
	// maximum possible node splits while spreading load evenly (§5.2).
	PartitionTail
)

// Pair is a load-phase record.
type Pair struct {
	Key, Value uint32
}

// Config parameterizes a workload.
type Config struct {
	// Records is the initial record count (the paper loads 2^22 keys
	// into skiplists and ~30M into B+ trees).
	Records int
	// KeyMax is the exclusive key-space bound (a power of two); load and
	// fresh-insert keys fall in [1, KeyMax/2].
	KeyMax uint32
	// ReadPct/UpdatePct/InsertPct/RemovePct/ScanPct/RMWPct must sum to
	// 100 (the paper's X-Y-Z mixes are read-insert-remove).
	ReadPct, UpdatePct, InsertPct, RemovePct int
	// ScanPct is the SCAN percentage (YCSB-E): each scan op carries a
	// start key from the popularity distribution and a zipfian-skewed
	// length in Op.Value, at most MaxScanLen pairs.
	ScanPct int
	// RMWPct is the read-modify-write percentage (YCSB-F): each draw
	// emits a Read followed by an Update of the same key, so the stream
	// carries both halves of the RMW as adjacent operations.
	RMWPct int
	// MaxScanLen bounds scan lengths (0 = the YCSB default of 100).
	MaxScanLen int
	// Dist is the popularity distribution for read/update/remove keys.
	Dist Dist
	// ZipfTheta is the zipfian skew (YCSB default 0.99).
	ZipfTheta float64
	// ChurnEvery, when positive, rotates the zipfian hot set every
	// ChurnEvery generated operations: the drawn rank is shifted by a
	// stride that advances per interval, modeling time-varying skew
	// (hot-key churn) instead of a popularity ranking frozen at load
	// time. Ignored for Uniform and Latest.
	ChurnEvery int
	// Inserts selects the insert key pattern.
	Inserts InsertPattern
	// Partitions is required by PartitionTail: the NMP partition count
	// (key ranges are KeyMax/Partitions).
	Partitions int
	Seed       uint64
}

// YCSBC returns the paper's baseline workload: read-only, zipfian.
func YCSBC(records int, keyMax uint32, seed uint64) Config {
	return Config{
		Records: records, KeyMax: keyMax,
		ReadPct: 100, Dist: Zipfian, ZipfTheta: 0.99, Seed: seed,
	}
}

// Mix returns a read-insert-remove sensitivity workload with uniform key
// popularity (§5.2: "workloads with varying ratios of insertions and
// removals and uniform distribution of accessed keys").
func Mix(records int, keyMax uint32, read, insert, remove int, seed uint64) Config {
	return Config{
		Records: records, KeyMax: keyMax,
		ReadPct: read, InsertPct: insert, RemovePct: remove,
		Dist: Uniform, Seed: seed,
	}
}

// Workload returns the named YCSB core workload over records preloaded
// keys: "a" (50/50 read/update, zipfian), "b" (95/5 read/update,
// zipfian), "c" (100% reads, zipfian), "d" (95/5 read/insert with the
// read-latest popularity that follows the freshly inserted keys), "e"
// (95/5 scan/insert, zipfian start keys and scan lengths) or "f" (50/50
// read/read-modify-write, zipfian).
func Workload(name string, records int, keyMax uint32, seed uint64) (Config, error) {
	base := Config{Records: records, KeyMax: keyMax, Dist: Zipfian, Seed: seed}
	switch name {
	case "a":
		base.ReadPct, base.UpdatePct = 50, 50
	case "b":
		base.ReadPct, base.UpdatePct = 95, 5
	case "c":
		base.ReadPct = 100
	case "d":
		base.ReadPct, base.InsertPct = 95, 5
		base.Dist = Latest
	case "e":
		base.ScanPct, base.InsertPct = 95, 5
	case "f":
		base.ReadPct, base.RMWPct = 50, 50
	default:
		return Config{}, fmt.Errorf("ycsb: unknown workload %q (want a-f)", name)
	}
	return base, nil
}

// WorkloadDesc returns the one-line description of a core workload for
// report titles; unknown names return the name itself.
func WorkloadDesc(name string) string {
	switch name {
	case "a":
		return "YCSB-A (50/50 read/update, zipfian)"
	case "b":
		return "YCSB-B (95/5 read/update, zipfian)"
	case "c":
		return "YCSB-C (100% zipfian reads)"
	case "d":
		return "YCSB-D (95/5 read/insert, read-latest)"
	case "e":
		return "YCSB-E (95/5 scan/insert, zipfian scan lengths)"
	case "f":
		return "YCSB-F (50/50 read/read-modify-write, zipfian)"
	}
	return name
}

// keyPerm is a 4-round Feistel permutation over [0, 2^bits): a keyed
// bijection, so distinct indices always yield distinct keys.
type keyPerm struct {
	half uint
	mask uint64
	seed uint64
}

func newKeyPerm(bits uint, seed uint64) keyPerm {
	return keyPerm{half: bits / 2, mask: 1<<(bits/2) - 1, seed: seed}
}

func (p keyPerm) apply(i uint64) uint64 {
	l := (i >> p.half) & p.mask
	r := i & p.mask
	for round := uint64(0); round < 4; round++ {
		l, r = r, l^(prng.Mix64(r^p.seed^(round<<48))&p.mask)
	}
	return l<<p.half | r
}

// Generator produces a load set and deterministic per-thread op streams.
type Generator struct {
	cfg      Config
	perm     keyPerm
	permBits uint   // Feistel domain width (even)
	keyBits  uint   // log2(KeyMax)
	fresh    uint64 // next fresh record index for FreshUniform inserts
	ops      uint64 // generated logical operations (drives ChurnEvery)
}

// New builds a generator.
func New(cfg Config) *Generator {
	sum := cfg.ReadPct + cfg.UpdatePct + cfg.InsertPct + cfg.RemovePct +
		cfg.ScanPct + cfg.RMWPct
	if sum != 100 {
		panic(fmt.Sprintf("ycsb: op mix sums to %d, want 100", sum))
	}
	if cfg.MaxScanLen <= 0 {
		cfg.MaxScanLen = 100
	}
	if cfg.KeyMax&(cfg.KeyMax-1) != 0 {
		panic("ycsb: KeyMax must be a power of two")
	}
	if cfg.KeyMax < uint32(cfg.Records)*4 {
		panic("ycsb: key space too small for record count")
	}
	if cfg.ZipfTheta == 0 {
		cfg.ZipfTheta = 0.99
	}
	bits := uint(0)
	for uint32(1)<<bits < cfg.KeyMax {
		bits++
	}
	if bits < 8 {
		panic("ycsb: KeyMax too small")
	}
	// The Feistel permutation needs an even width; keys use 3 stripe bits
	// plus the rest as intra-stripe offset, all drawn from the permuted
	// index.
	permBits := bits - 2
	if permBits%2 == 1 {
		permBits--
	}
	if uint64(cfg.Records) > uint64(1)<<(permBits-1) {
		panic("ycsb: key space too small for record count plus insert headroom")
	}
	return &Generator{
		cfg:      cfg,
		perm:     newKeyPerm(permBits, cfg.Seed^0x10ad10ad),
		permBits: permBits,
		keyBits:  bits,
		fresh:    uint64(cfg.Records),
	}
}

// key maps a record index to its key: the permuted index's top 3 bits pick
// one of 8 stripes and the rest lands at the bottom of the stripe,
// leaving tail headroom at every stripe's top.
func (g *Generator) key(idx uint64) uint32 {
	v := g.perm.apply(idx)
	stripe := v >> (g.permBits - 3)
	off := v & (1<<(g.permBits-3) - 1)
	return uint32(stripe<<(g.keyBits-3)|off) + 1
}

// Load returns the load-phase records (values derived from keys).
func (g *Generator) Load() []Pair {
	out := make([]Pair, g.cfg.Records)
	for i := range out {
		k := g.key(uint64(i))
		out[i] = Pair{Key: k, Value: uint32(prng.Mix64(uint64(k)))}
	}
	return out
}

// Streams generates op streams for the given number of threads,
// opsPerThread each, in one deterministic pass. Fresh insert keys are
// globally unique across threads and across successive Streams calls.
func (g *Generator) Streams(threads, opsPerThread int) [][]kv.Op {
	streams := make([][]kv.Op, threads)
	pickers := make([]*picker, threads)
	for t := range streams {
		streams[t] = make([]kv.Op, 0, opsPerThread)
		pickers[t] = g.newPicker(uint64(t))
	}
	tail := g.newTailCursors()
	// Interleave generation round-robin so PartitionTail key assignment
	// is balanced across threads regardless of thread count. A logical
	// draw may emit two physical operations (RMW's read + update), so
	// streams fill at slightly different paces; the loop keeps topping
	// up every short stream in thread order until all reach length.
	for short := true; short; {
		short = false
		for t := 0; t < threads; t++ {
			if len(streams[t]) < opsPerThread {
				streams[t] = g.appendOp(streams[t], pickers[t], tail, opsPerThread)
			}
			if len(streams[t]) < opsPerThread {
				short = true
			}
		}
	}
	return streams
}

// appendOp draws one logical operation and appends its physical ops to
// dst, never growing it past limit (an RMW clipped at the stream end
// keeps only its read half).
func (g *Generator) appendOp(dst []kv.Op, p *picker, tail *tailCursors, limit int) []kv.Op {
	g.ops++
	c := &g.cfg
	r := p.rng.Intn(100)
	switch {
	case r < c.ReadPct:
		return append(dst, kv.Op{Kind: kv.Read, Key: p.existing()})
	case r < c.ReadPct+c.UpdatePct:
		return append(dst, kv.Op{Kind: kv.Update, Key: p.existing(), Value: p.rng.Uint32()})
	case r < c.ReadPct+c.UpdatePct+c.InsertPct:
		var key uint32
		if c.Inserts == PartitionTail {
			key = tail.next()
		} else {
			key = g.key(g.fresh)
			g.fresh++
		}
		return append(dst, kv.Op{Kind: kv.Insert, Key: key, Value: p.rng.Uint32()})
	case r < c.ReadPct+c.UpdatePct+c.InsertPct+c.RemovePct:
		return append(dst, kv.Op{Kind: kv.Remove, Key: p.existing()})
	case r < c.ReadPct+c.UpdatePct+c.InsertPct+c.RemovePct+c.ScanPct:
		return append(dst, kv.Op{Kind: kv.Scan, Key: p.existing(), Value: p.scanLen()})
	default: // read-modify-write: read the key, then write it back
		key := p.existing()
		dst = append(dst, kv.Op{Kind: kv.Read, Key: key})
		if len(dst) < limit {
			dst = append(dst, kv.Op{Kind: kv.Update, Key: key, Value: p.rng.Uint32()})
		}
		return dst
	}
}

// picker draws keys from the configured popularity distribution over the
// initial records.
type picker struct {
	g    *Generator
	rng  *prng.Source
	zipf *zipfian
	// scan draws zipfian-skewed scan lengths (rank 0 -> length 1).
	scan *zipfian
}

func (g *Generator) newPicker(salt uint64) *picker {
	p := &picker{g: g, rng: prng.New(g.cfg.Seed ^ prng.Mix64(salt+0x9c))}
	if g.cfg.Dist == Zipfian || g.cfg.Dist == Latest {
		p.zipf = newZipfian(uint64(g.cfg.Records), g.cfg.ZipfTheta, prng.New(g.cfg.Seed^prng.Mix64(salt+0x2f)))
	}
	if g.cfg.ScanPct > 0 {
		p.scan = newZipfian(uint64(g.cfg.MaxScanLen), g.cfg.ZipfTheta, prng.New(g.cfg.Seed^prng.Mix64(salt+0x51)))
	}
	return p
}

func (p *picker) existing() uint32 {
	var idx uint64
	switch {
	case p.g.cfg.Dist == Latest:
		// Read-latest (YCSB-D): the zipfian rank counts back from the
		// most recently minted record, so the hot set tracks the
		// workload's own inserts. fresh >= Records always, and ranks
		// are bounded by the initial Records, so idx never underflows.
		idx = p.g.fresh - 1 - p.zipf.next()
	case p.zipf != nil:
		// The Feistel index->key permutation already scatters hot
		// items over the key space (YCSB's ScrambledZipfian), keeping
		// partitions balanced.
		idx = p.zipf.next()
		if ce := p.g.cfg.ChurnEvery; ce > 0 {
			// Time-varying skew: rotate the popularity ranking by a
			// stride per churn interval, so which records are hot
			// drifts over the run while the skew shape stays zipfian.
			records := uint64(p.g.cfg.Records)
			shift := (p.g.ops / uint64(ce)) * (records/7 + 1)
			idx = (idx + shift) % records
		}
	default:
		idx = uint64(p.rng.Intn(p.g.cfg.Records))
	}
	return p.g.key(idx)
}

// scanLen draws one zipfian scan length in [1, MaxScanLen].
func (p *picker) scanLen() uint32 {
	return uint32(p.scan.next()) + 1
}

// tailCursors implements PartitionTail: per-partition incrementing keys
// starting just above the partition's largest load key. cursors[p] is the
// last key handed out (or the floor below the first valid mint for a
// partition with no load keys), so the next mint is always cursors[p]+1.
type tailCursors struct {
	cursors []uint32
	his     []uint32
	next_   int
}

func (g *Generator) newTailCursors() *tailCursors {
	if g.cfg.Inserts != PartitionTail {
		return nil
	}
	if g.cfg.Partitions <= 0 {
		panic("ycsb: PartitionTail requires Partitions")
	}
	part := kv.RangePartitioner{KeyMax: g.cfg.KeyMax, Parts: g.cfg.Partitions}
	t := &tailCursors{}
	maxInPart := make([]uint32, g.cfg.Partitions)
	for i := 0; i < g.cfg.Records; i++ {
		k := g.key(uint64(i))
		p := part.Part(k)
		if k > maxInPart[p] {
			maxInPart[p] = k
		}
	}
	for p := 0; p < g.cfg.Partitions; p++ {
		lo, hi := part.Range(p)
		cursor := maxInPart[p]
		if cursor == 0 {
			// No load key landed in this partition: start one below the
			// partition's first valid key so lo itself is minted (key 0
			// is the reserved -inf sentinel, so partition 0 starts at 1).
			// The old cursor = lo start silently skipped lo, losing one
			// key of headroom per empty partition.
			if lo == 0 {
				cursor = 0
			} else {
				cursor = lo - 1
			}
		}
		t.cursors = append(t.cursors, cursor)
		t.his = append(t.his, hi)
	}
	return t
}

func (t *tailCursors) next() uint32 {
	for tries := 0; tries < len(t.cursors); tries++ {
		p := t.next_
		t.next_ = (t.next_ + 1) % len(t.cursors)
		// The candidate key is cursors[p]+1; every key up to and
		// including the partition's top key his[p]-1 is mintable.
		if t.cursors[p] < t.his[p]-1 {
			t.cursors[p]++
			return t.cursors[p]
		}
	}
	panic("ycsb: partition tails exhausted; increase KeyMax headroom")
}

// zipfian is YCSB's bounded zipfian generator (Gray et al.'s rejection
// inversion constants): item 0 is the hottest.
type zipfian struct {
	items             uint64
	theta             float64
	alpha, zetan, eta float64
	zeta2theta        float64
	rng               *prng.Source
}

func newZipfian(items uint64, theta float64, rng *prng.Source) *zipfian {
	z := &zipfian{items: items, theta: theta, rng: rng}
	z.zetan = zetaStatic(items, theta)
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(items), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

var zetaCache = map[[2]uint64]float64{}

func zetaStatic(n uint64, theta float64) float64 {
	ck := [2]uint64{n, math.Float64bits(theta)}
	if v, ok := zetaCache[ck]; ok {
		return v
	}
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	zetaCache[ck] = sum
	return sum
}

func (z *zipfian) next() uint64 {
	return z.fromU(z.rng.Float64())
}

// fromU maps one uniform draw u in [0, 1) to a zipfian rank. Split out of
// next so boundary values of u are directly testable: with u close enough
// to 1, float64(items)*pow(...) rounds up to items — one past the valid
// rank range — so the result is clamped to items-1.
func (z *zipfian) fromU(u float64) uint64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.items {
		v = z.items - 1
	}
	return v
}

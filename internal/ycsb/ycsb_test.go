package ycsb

import (
	"math"
	"testing"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/prng"
)

func TestLoadKeysUniqueAndBounded(t *testing.T) {
	g := New(YCSBC(10000, 1<<24, 1))
	load := g.Load()
	if len(load) != 10000 {
		t.Fatalf("load size = %d", len(load))
	}
	seen := map[uint32]bool{}
	for _, p := range load {
		if p.Key == 0 || p.Key >= 1<<24 {
			t.Fatalf("key %d out of bounds", p.Key)
		}
		if seen[p.Key] {
			t.Fatalf("duplicate key %d", p.Key)
		}
		seen[p.Key] = true
	}
}

func TestYCSBCIsReadOnly(t *testing.T) {
	g := New(YCSBC(1000, 1<<20, 2))
	for _, stream := range g.Streams(4, 500) {
		for _, op := range stream {
			if op.Kind != kv.Read {
				t.Fatalf("YCSB-C produced %s", op.Kind)
			}
		}
	}
}

func TestMixProportions(t *testing.T) {
	g := New(Mix(1000, 1<<20, 50, 25, 25, 3))
	counts := map[kv.Kind]int{}
	total := 0
	for _, stream := range g.Streams(8, 2000) {
		for _, op := range stream {
			counts[op.Kind]++
			total++
		}
	}
	check := func(kind kv.Kind, wantPct int) {
		got := 100 * counts[kind] / total
		if got < wantPct-3 || got > wantPct+3 {
			t.Errorf("%s = %d%%, want ~%d%%", kind, got, wantPct)
		}
	}
	check(kv.Read, 50)
	check(kv.Insert, 25)
	check(kv.Remove, 25)
}

func TestStreamsDeterministic(t *testing.T) {
	mk := func() [][]kv.Op {
		return New(Mix(500, 1<<20, 60, 20, 20, 7)).Streams(4, 300)
	}
	a, b := mk(), mk()
	for th := range a {
		for i := range a[th] {
			if a[th][i] != b[th][i] {
				t.Fatalf("stream %d op %d differs", th, i)
			}
		}
	}
}

func TestFreshInsertKeysUniqueAcrossThreads(t *testing.T) {
	g := New(Mix(1000, 1<<22, 0, 100, 0, 11))
	seen := map[uint32]bool{}
	for _, p := range g.Load() {
		seen[p.Key] = true
	}
	for _, stream := range g.Streams(8, 500) {
		for _, op := range stream {
			if op.Kind != kv.Insert {
				continue
			}
			if seen[op.Key] {
				t.Fatalf("insert key %d duplicates an earlier key", op.Key)
			}
			seen[op.Key] = true
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := newZipfian(100000, 0.99, prng.New(5))
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.next()
		if v >= 100000 {
			t.Fatalf("zipfian drew %d >= items", v)
		}
		counts[v]++
	}
	// Item 0 should be far hotter than the uniform expectation.
	if counts[0] < draws/1000 {
		t.Fatalf("hottest item drawn %d times; zipfian not skewed", counts[0])
	}
	// Top 1% of items should dominate the draws.
	top := 0
	for v, c := range counts {
		if v < 1000 {
			top += c
		}
	}
	if float64(top)/draws < 0.4 {
		t.Fatalf("top 1%% items got only %.1f%% of draws", 100*float64(top)/draws)
	}
}

func TestZipfianZetaMatchesDirectSum(t *testing.T) {
	n := uint64(1000)
	want := 0.0
	for i := uint64(1); i <= n; i++ {
		want += 1 / math.Pow(float64(i), 0.99)
	}
	if got := zetaStatic(n, 0.99); math.Abs(got-want) > 1e-9 {
		t.Fatalf("zeta = %v, want %v", got, want)
	}
}

func TestScrambledZipfianBalancesPartitions(t *testing.T) {
	// After scrambling, zipfian-hot keys should spread across partitions
	// (the property that keeps NMP partitions load-balanced).
	g := New(YCSBC(200000, 1<<24, 13))
	part := kv.RangePartitioner{KeyMax: 1 << 24, Parts: 8}
	counts := make([]int, 8)
	total := 0
	for _, stream := range g.Streams(2, 20000) {
		for _, op := range stream {
			counts[part.Part(op.Key)]++
			total++
		}
	}
	// Zipfian inherently concentrates some mass on single hot items (the
	// paper's footnote 4 acknowledges hot partitions); scrambling must
	// still keep every partition in play and none dominant.
	for p, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.03 || frac > 0.45 {
			t.Fatalf("partition %d gets %.1f%% of accesses; scrambling broken", p, 100*frac)
		}
	}
}

func TestPartitionTailInsertsHitPartitionTails(t *testing.T) {
	cfg := Mix(4000, 1<<24, 0, 100, 0, 17)
	cfg.Inserts = PartitionTail
	cfg.Partitions = 8
	g := New(cfg)
	part := kv.RangePartitioner{KeyMax: 1 << 24, Parts: 8}
	// Per-partition max over the load keys.
	maxKey := make([]uint32, 8)
	for _, p := range g.Load() {
		pp := part.Part(p.Key)
		if p.Key > maxKey[pp] {
			maxKey[pp] = p.Key
		}
	}
	perPart := make([]int, 8)
	last := make([]uint32, 8)
	for _, stream := range g.Streams(4, 200) {
		for _, op := range stream {
			p := part.Part(op.Key)
			if op.Key <= maxKey[p] {
				t.Fatalf("tail insert key %d not beyond partition %d max %d", op.Key, p, maxKey[p])
			}
			if last[p] != 0 && op.Key != last[p]+1 {
				t.Fatalf("partition %d tail keys not incrementing: %d after %d", p, op.Key, last[p])
			}
			last[p] = op.Key
			perPart[p]++
		}
	}
	for p, c := range perPart {
		if c != 100 {
			t.Fatalf("partition %d received %d tail inserts, want 100 (even spread)", p, c)
		}
	}
}

func TestBadMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mix not summing to 100 did not panic")
		}
	}()
	New(Config{Records: 10, KeyMax: 1 << 20, ReadPct: 50})
}

func TestSmallKeySpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny key space did not panic")
		}
	}()
	New(YCSBC(1000, 1500, 1))
}

func TestKeyPermIsBijective(t *testing.T) {
	p := newKeyPerm(16, 0xfeed)
	seen := make([]bool, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := p.apply(i)
		if v >= 1<<16 {
			t.Fatalf("perm(%d) = %d outside domain", i, v)
		}
		if seen[v] {
			t.Fatalf("perm collision at %d", i)
		}
		seen[v] = true
	}
}

func TestKeyPermSeedChangesMapping(t *testing.T) {
	a := newKeyPerm(16, 1)
	b := newKeyPerm(16, 2)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.apply(i) == b.apply(i) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds agree on %d/1000 points", same)
	}
}

func TestKeysStayInStripeLowerPortion(t *testing.T) {
	g := New(YCSBC(50000, 1<<24, 9))
	stripe := uint32(1 << 21) // KeyMax/8
	headroom := stripe / 4    // permBits = keyBits-2 -> lower quarter
	for _, p := range g.Load() {
		off := (p.Key - 1) % stripe
		if off >= headroom {
			t.Fatalf("key %d at stripe offset %d beyond headroom %d", p.Key, off, headroom)
		}
	}
}

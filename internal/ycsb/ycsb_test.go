package ycsb

import (
	"math"
	"testing"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/prng"
)

func TestLoadKeysUniqueAndBounded(t *testing.T) {
	g := New(YCSBC(10000, 1<<24, 1))
	load := g.Load()
	if len(load) != 10000 {
		t.Fatalf("load size = %d", len(load))
	}
	seen := map[uint32]bool{}
	for _, p := range load {
		if p.Key == 0 || p.Key >= 1<<24 {
			t.Fatalf("key %d out of bounds", p.Key)
		}
		if seen[p.Key] {
			t.Fatalf("duplicate key %d", p.Key)
		}
		seen[p.Key] = true
	}
}

func TestYCSBCIsReadOnly(t *testing.T) {
	g := New(YCSBC(1000, 1<<20, 2))
	for _, stream := range g.Streams(4, 500) {
		for _, op := range stream {
			if op.Kind != kv.Read {
				t.Fatalf("YCSB-C produced %s", op.Kind)
			}
		}
	}
}

func TestMixProportions(t *testing.T) {
	g := New(Mix(1000, 1<<20, 50, 25, 25, 3))
	counts := map[kv.Kind]int{}
	total := 0
	for _, stream := range g.Streams(8, 2000) {
		for _, op := range stream {
			counts[op.Kind]++
			total++
		}
	}
	check := func(kind kv.Kind, wantPct int) {
		got := 100 * counts[kind] / total
		if got < wantPct-3 || got > wantPct+3 {
			t.Errorf("%s = %d%%, want ~%d%%", kind, got, wantPct)
		}
	}
	check(kv.Read, 50)
	check(kv.Insert, 25)
	check(kv.Remove, 25)
}

func TestStreamsDeterministic(t *testing.T) {
	mk := func() [][]kv.Op {
		return New(Mix(500, 1<<20, 60, 20, 20, 7)).Streams(4, 300)
	}
	a, b := mk(), mk()
	for th := range a {
		for i := range a[th] {
			if a[th][i] != b[th][i] {
				t.Fatalf("stream %d op %d differs", th, i)
			}
		}
	}
}

func TestFreshInsertKeysUniqueAcrossThreads(t *testing.T) {
	g := New(Mix(1000, 1<<22, 0, 100, 0, 11))
	seen := map[uint32]bool{}
	for _, p := range g.Load() {
		seen[p.Key] = true
	}
	for _, stream := range g.Streams(8, 500) {
		for _, op := range stream {
			if op.Kind != kv.Insert {
				continue
			}
			if seen[op.Key] {
				t.Fatalf("insert key %d duplicates an earlier key", op.Key)
			}
			seen[op.Key] = true
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := newZipfian(100000, 0.99, prng.New(5))
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.next()
		if v >= 100000 {
			t.Fatalf("zipfian drew %d >= items", v)
		}
		counts[v]++
	}
	// Item 0 should be far hotter than the uniform expectation.
	if counts[0] < draws/1000 {
		t.Fatalf("hottest item drawn %d times; zipfian not skewed", counts[0])
	}
	// Top 1% of items should dominate the draws.
	top := 0
	for v, c := range counts {
		if v < 1000 {
			top += c
		}
	}
	if float64(top)/draws < 0.4 {
		t.Fatalf("top 1%% items got only %.1f%% of draws", 100*float64(top)/draws)
	}
}

func TestZipfianZetaMatchesDirectSum(t *testing.T) {
	n := uint64(1000)
	want := 0.0
	for i := uint64(1); i <= n; i++ {
		want += 1 / math.Pow(float64(i), 0.99)
	}
	if got := zetaStatic(n, 0.99); math.Abs(got-want) > 1e-9 {
		t.Fatalf("zeta = %v, want %v", got, want)
	}
}

func TestScrambledZipfianBalancesPartitions(t *testing.T) {
	// After scrambling, zipfian-hot keys should spread across partitions
	// (the property that keeps NMP partitions load-balanced).
	g := New(YCSBC(200000, 1<<24, 13))
	part := kv.RangePartitioner{KeyMax: 1 << 24, Parts: 8}
	counts := make([]int, 8)
	total := 0
	for _, stream := range g.Streams(2, 20000) {
		for _, op := range stream {
			counts[part.Part(op.Key)]++
			total++
		}
	}
	// Zipfian inherently concentrates some mass on single hot items (the
	// paper's footnote 4 acknowledges hot partitions); scrambling must
	// still keep every partition in play and none dominant.
	for p, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.03 || frac > 0.45 {
			t.Fatalf("partition %d gets %.1f%% of accesses; scrambling broken", p, 100*frac)
		}
	}
}

func TestPartitionTailInsertsHitPartitionTails(t *testing.T) {
	cfg := Mix(4000, 1<<24, 0, 100, 0, 17)
	cfg.Inserts = PartitionTail
	cfg.Partitions = 8
	g := New(cfg)
	part := kv.RangePartitioner{KeyMax: 1 << 24, Parts: 8}
	// Per-partition max over the load keys.
	maxKey := make([]uint32, 8)
	for _, p := range g.Load() {
		pp := part.Part(p.Key)
		if p.Key > maxKey[pp] {
			maxKey[pp] = p.Key
		}
	}
	perPart := make([]int, 8)
	last := make([]uint32, 8)
	for _, stream := range g.Streams(4, 200) {
		for _, op := range stream {
			p := part.Part(op.Key)
			if op.Key <= maxKey[p] {
				t.Fatalf("tail insert key %d not beyond partition %d max %d", op.Key, p, maxKey[p])
			}
			if last[p] != 0 && op.Key != last[p]+1 {
				t.Fatalf("partition %d tail keys not incrementing: %d after %d", p, op.Key, last[p])
			}
			last[p] = op.Key
			perPart[p]++
		}
	}
	for p, c := range perPart {
		if c != 100 {
			t.Fatalf("partition %d received %d tail inserts, want 100 (even spread)", p, c)
		}
	}
}

func TestBadMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mix not summing to 100 did not panic")
		}
	}()
	New(Config{Records: 10, KeyMax: 1 << 20, ReadPct: 50})
}

func TestSmallKeySpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny key space did not panic")
		}
	}()
	New(YCSBC(1000, 1500, 1))
}

func TestKeyPermIsBijective(t *testing.T) {
	p := newKeyPerm(16, 0xfeed)
	seen := make([]bool, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := p.apply(i)
		if v >= 1<<16 {
			t.Fatalf("perm(%d) = %d outside domain", i, v)
		}
		if seen[v] {
			t.Fatalf("perm collision at %d", i)
		}
		seen[v] = true
	}
}

func TestKeyPermSeedChangesMapping(t *testing.T) {
	a := newKeyPerm(16, 1)
	b := newKeyPerm(16, 2)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.apply(i) == b.apply(i) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds agree on %d/1000 points", same)
	}
}

// TestZipfianBoundaryDrawStaysInRange is the regression test for the
// rank-overflow bug: with u close enough to 1 the inversion
// float64(items)*pow(eta*u-eta+1, alpha) rounds up to items — an
// out-of-range record index that maps to a key that was never loaded,
// silently inflating miss counts. fromU must clamp to items-1.
func TestZipfianBoundaryDrawStaysInRange(t *testing.T) {
	for _, items := range []uint64{10, 1000, 1 << 20} {
		z := newZipfian(items, 0.99, prng.New(1))
		for _, u := range []float64{1.0, math.Nextafter(1, 0), 0.9999999999999} {
			if v := z.fromU(u); v >= items {
				t.Fatalf("items=%d fromU(%v) = %d, out of range", items, u, v)
			}
		}
		// The clamp must not disturb interior draws.
		if v := z.fromU(0.5); v >= items {
			t.Fatalf("items=%d fromU(0.5) = %d, out of range", items, v)
		}
	}
}

// TestTailCursorsExhaustPartitions is the regression test for the
// tail-cursor start bug: a partition with no load keys used to start its
// cursor at lo and mint lo+1 first, silently skipping the valid key lo.
// Exhausting a tiny key space must mint every in-range key above the
// partition's load maximum exactly once — including lo for empty
// partitions — before panicking.
func TestTailCursorsExhaustPartitions(t *testing.T) {
	cfg := Mix(4, 256, 0, 100, 0, 3)
	cfg.Inserts = PartitionTail
	cfg.Partitions = 8
	g := New(cfg)
	part := kv.RangePartitioner{KeyMax: 256, Parts: 8}

	// Expected mintable set: for each partition, every key strictly above
	// max(load max, partition floor) up to hi-1, where the floor is lo-1
	// (or 0 for partition 0, whose key 0 is the reserved sentinel).
	maxInPart := make([]uint32, 8)
	for _, p := range g.Load() {
		pp := part.Part(p.Key)
		if p.Key > maxInPart[pp] {
			maxInPart[pp] = p.Key
		}
	}
	expect := map[uint32]bool{}
	sawEmpty := false
	for p := 0; p < 8; p++ {
		lo, hi := part.Range(p)
		start := maxInPart[p]
		if start == 0 {
			sawEmpty = true
			if lo > 0 {
				start = lo - 1
			}
		}
		for k := start + 1; k < hi; k++ {
			expect[k] = true
		}
	}
	if !sawEmpty {
		t.Fatal("test needs at least one empty partition to exercise the lo start")
	}

	tail := g.newTailCursors()
	minted := map[uint32]bool{}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("exhausted tails did not panic")
			}
		}()
		for {
			k := tail.next()
			if minted[k] {
				t.Fatalf("key %d minted twice", k)
			}
			if !expect[k] {
				t.Fatalf("minted key %d outside the valid headroom", k)
			}
			minted[k] = true
		}
	}()
	if len(minted) != len(expect) {
		t.Fatalf("minted %d keys before exhaustion, want %d (empty partitions must mint their lo key)",
			len(minted), len(expect))
	}
}

func TestWorkloadSuiteMixes(t *testing.T) {
	for _, w := range []string{"a", "b", "c", "d", "e", "f"} {
		cfg, err := Workload(w, 2000, 1<<20, 5)
		if err != nil {
			t.Fatalf("workload %s: %v", w, err)
		}
		g := New(cfg)
		counts := map[kv.Kind]int{}
		total := 0
		for _, stream := range g.Streams(4, 2000) {
			if len(stream) != 2000 {
				t.Fatalf("workload %s stream length %d", w, len(stream))
			}
			for _, op := range stream {
				counts[op.Kind]++
				total++
			}
		}
		frac := func(k kv.Kind) float64 { return float64(counts[k]) / float64(total) }
		switch w {
		case "a":
			if f := frac(kv.Update); f < 0.45 || f > 0.55 {
				t.Fatalf("A updates = %.2f", f)
			}
		case "b":
			if f := frac(kv.Update); f < 0.02 || f > 0.08 {
				t.Fatalf("B updates = %.2f", f)
			}
		case "c":
			if counts[kv.Read] != total {
				t.Fatalf("C not read-only: %v", counts)
			}
		case "d":
			if f := frac(kv.Insert); f < 0.02 || f > 0.08 {
				t.Fatalf("D inserts = %.2f", f)
			}
		case "e":
			if f := frac(kv.Scan); f < 0.90 || f > 0.99 {
				t.Fatalf("E scans = %.2f", f)
			}
		case "f":
			// Every RMW read is followed by an update of the same key, so
			// updates make up ~1/3 of physical ops (50 read + 25 rmw-pairs).
			if f := frac(kv.Update); f < 0.28 || f > 0.38 {
				t.Fatalf("F updates = %.2f", f)
			}
		}
	}
	if _, err := Workload("z", 1000, 1<<20, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadEScanLengthsBoundedAndSkewed(t *testing.T) {
	cfg, _ := Workload("e", 2000, 1<<20, 9)
	g := New(cfg)
	short, scans := 0, 0
	for _, stream := range g.Streams(2, 4000) {
		for _, op := range stream {
			if op.Kind != kv.Scan {
				continue
			}
			scans++
			if op.Value < 1 || op.Value > 100 {
				t.Fatalf("scan length %d outside [1, 100]", op.Value)
			}
			if op.Value <= 10 {
				short++
			}
		}
	}
	if scans == 0 {
		t.Fatal("no scans generated")
	}
	// Zipfian lengths skew short: the shortest tenth of the range should
	// dominate draws.
	if float64(short)/float64(scans) < 0.5 {
		t.Fatalf("short scans only %d/%d; lengths not zipfian-skewed", short, scans)
	}
}

func TestWorkloadFEmitsReadThenUpdatePairs(t *testing.T) {
	cfg, _ := Workload("f", 1000, 1<<20, 21)
	g := New(cfg)
	for _, stream := range g.Streams(3, 1000) {
		for i, op := range stream {
			if op.Kind != kv.Update {
				continue
			}
			if i == 0 || stream[i-1].Kind != kv.Read || stream[i-1].Key != op.Key {
				t.Fatalf("update of %d at %d not preceded by its read half", op.Key, i)
			}
		}
	}
}

func TestWorkloadDReadsFollowInserts(t *testing.T) {
	cfg, _ := Workload("d", 1000, 1<<22, 31)
	g := New(cfg)
	inserted := map[uint32]bool{}
	for _, p := range g.Load() {
		inserted[p.Key] = true
	}
	freshReads := 0
	for _, stream := range g.Streams(1, 20000) {
		for _, op := range stream {
			switch op.Kind {
			case kv.Insert:
				inserted[op.Key] = true
			case kv.Read:
				if !inserted[op.Key] {
					// A read may race ahead of the insert that mints the
					// key only under multi-thread interleaving; single
					// threaded, latest reads must target minted keys.
					t.Fatalf("read of never-inserted key %d", op.Key)
				}
			}
		}
	}
	// The latest distribution must actually reach beyond the initial
	// records: some reads hit keys minted during the run.
	gen2 := New(cfg)
	initial := map[uint32]bool{}
	for _, p := range gen2.Load() {
		initial[p.Key] = true
	}
	for _, stream := range New(cfg).Streams(1, 20000) {
		for _, op := range stream {
			if op.Kind == kv.Read && !initial[op.Key] {
				freshReads++
			}
		}
	}
	if freshReads == 0 {
		t.Fatal("read-latest never read a freshly inserted key")
	}
}

func TestChurnRotatesHotSet(t *testing.T) {
	base, _ := Workload("c", 50000, 1<<24, 7)
	hot := func(cfg Config, lo, hi int) map[uint32]int {
		g := New(cfg)
		counts := map[uint32]int{}
		stream := g.Streams(1, hi)[0]
		for _, op := range stream[lo:] {
			counts[op.Key]++
		}
		return counts
	}
	// Static zipfian: the early hot set stays hot late.
	static := base
	early := hot(static, 0, 5000)
	late := hot(static, 15000, 20000)
	topOverlap := func(a, b map[uint32]int) int {
		top := func(m map[uint32]int) map[uint32]bool {
			out := map[uint32]bool{}
			for k, c := range m {
				if c >= 20 {
					out[k] = true
				}
			}
			return out
		}
		ta, tb := top(a), top(b)
		n := 0
		for k := range ta {
			if tb[k] {
				n++
			}
		}
		return n
	}
	if topOverlap(early, late) == 0 {
		t.Fatal("static zipfian hot set unexpectedly rotated")
	}
	churned := base
	churned.ChurnEvery = 5000
	cEarly := hot(churned, 0, 5000)
	cLate := hot(churned, 15000, 20000)
	if n := topOverlap(cEarly, cLate); n != 0 {
		t.Fatalf("churned hot sets still share %d hot keys", n)
	}
}

func TestKeysStayInStripeLowerPortion(t *testing.T) {
	g := New(YCSBC(50000, 1<<24, 9))
	stripe := uint32(1 << 21) // KeyMax/8
	headroom := stripe / 4    // permBits = keyBits-2 -> lower quarter
	for _, p := range g.Load() {
		off := (p.Key - 1) % stripe
		if off >= headroom {
			t.Fatalf("key %d at stripe offset %d beyond headroom %d", p.Key, off, headroom)
		}
	}
}

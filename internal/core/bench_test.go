package core

import (
	"sync/atomic"
	"testing"

	"hybrids/internal/hds"
	"hybrids/internal/prng"
)

func benchMap(b *testing.B, parts int) *Hybrid {
	b.Helper()
	h := New(Config{Partitions: parts, KeyMax: 1 << 24, MailboxDepth: 256})
	for i := uint64(1); i <= 1<<16; i++ {
		h.Put(i, i)
	}
	b.Cleanup(h.Close)
	return h
}

func BenchmarkHybridGetBlocking(b *testing.B) {
	h := benchMap(b, 8)
	rng := prng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(uint64(rng.Intn(1<<16)) + 1)
	}
}

func BenchmarkHybridGetPipelined4(b *testing.B) {
	h := benchMap(b, 8)
	rng := prng.New(2)
	b.ResetTimer()
	futs := make([]*Future, 0, 4)
	for i := 0; i < b.N; i++ {
		if len(futs) == 4 {
			futs[0].Wait()
			futs = futs[1:]
		}
		futs = append(futs, h.Async(hds.Read, uint64(rng.Intn(1<<16))+1, 0))
	}
	for _, f := range futs {
		f.Wait()
	}
}

func BenchmarkHybridGetParallel(b *testing.B) {
	h := benchMap(b, 8)
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := prng.New(seed.Add(1))
		for pb.Next() {
			h.Get(uint64(rng.Intn(1<<16)) + 1)
		}
	})
}

// BenchmarkFuture measures the blocking-call hot path: with pooled
// futures the steady state performs no per-operation allocation.
func BenchmarkFuture(b *testing.B) {
	h := benchMap(b, 8)
	rng := prng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(uint64(rng.Intn(1<<16)) + 1)
	}
}

// TestFutureAllocs asserts the pooled-future hot path stays allocation
// free (at most one allocation per operation, tolerating pool refills).
func TestFutureAllocs(t *testing.T) {
	h := New(Config{Partitions: 4, KeyMax: 1 << 20, MailboxDepth: 64})
	defer h.Close()
	h.Put(1, 1)
	allocs := testing.AllocsPerRun(2000, func() {
		h.Get(1)
	})
	if allocs > 1 {
		t.Fatalf("blocking call allocates %.2f objects/op, want <= 1", allocs)
	}
}

// BenchmarkHybridApplyBatch4 measures the windowed non-blocking path
// through the shared hds.Window.
func BenchmarkHybridApplyBatch4(b *testing.B) {
	h := benchMap(b, 8)
	rng := prng.New(4)
	const chunk = 256
	ops := make([]hds.Request, chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i += chunk {
		for j := range ops {
			ops[j] = hds.Request{Kind: hds.Read, Key: uint64(rng.Intn(1<<16)) + 1}
		}
		h.ApplyBatch(ops, 4)
	}
}

package core

import (
	"sync/atomic"
	"testing"

	"hybrids/internal/prng"
)

func benchMap(b *testing.B, parts int) *Hybrid {
	b.Helper()
	h := New(Config{Partitions: parts, KeyMax: 1 << 24, MailboxDepth: 256})
	for i := uint64(1); i <= 1<<16; i++ {
		h.Put(i, i)
	}
	b.Cleanup(h.Close)
	return h
}

func BenchmarkHybridGetBlocking(b *testing.B) {
	h := benchMap(b, 8)
	rng := prng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(uint64(rng.Intn(1<<16)) + 1)
	}
}

func BenchmarkHybridGetPipelined4(b *testing.B) {
	h := benchMap(b, 8)
	rng := prng.New(2)
	b.ResetTimer()
	futs := make([]*Future, 0, 4)
	for i := 0; i < b.N; i++ {
		if len(futs) == 4 {
			futs[0].Wait()
			futs = futs[1:]
		}
		futs = append(futs, h.Async(OpGet, uint64(rng.Intn(1<<16))+1, 0))
	}
	for _, f := range futs {
		f.Wait()
	}
}

func BenchmarkHybridGetParallel(b *testing.B) {
	h := benchMap(b, 8)
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := prng.New(seed.Add(1))
		for pb.Next() {
			h.Get(uint64(rng.Intn(1<<16)) + 1)
		}
	})
}

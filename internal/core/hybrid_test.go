package core

import (
	"sync"
	"testing"

	"hybrids/internal/cds"
	"hybrids/internal/hds"
	"hybrids/internal/prng"
)

func newTest(parts int) *Hybrid {
	return New(Config{Partitions: parts, KeyMax: 1 << 20, MailboxDepth: 32})
}

func TestHybridBasicOps(t *testing.T) {
	h := newTest(4)
	defer h.Close()
	if !h.Put(10, 100) || h.Put(10, 200) {
		t.Fatal("Put semantics wrong")
	}
	if v, ok := h.Get(10); !ok || v != 100 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if !h.Update(10, 300) || h.Update(11, 1) {
		t.Fatal("Update semantics wrong")
	}
	if v, _ := h.Get(10); v != 300 {
		t.Fatal("update not applied")
	}
	if !h.Delete(10) || h.Delete(10) {
		t.Fatal("Delete semantics wrong")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHybridPartitionRouting(t *testing.T) {
	h := New(Config{Partitions: 8, KeyMax: 800})
	defer h.Close()
	for k := uint64(1); k < 800; k += 37 {
		p := h.Partition(k)
		if p < 0 || p >= 8 {
			t.Fatalf("Partition(%d) = %d", k, p)
		}
		if int(k/100) != p {
			t.Fatalf("Partition(%d) = %d, want %d", k, p, k/100)
		}
	}
}

func TestHybridConcurrentDisjoint(t *testing.T) {
	h := newTest(8)
	defer h.Close()
	const threads = 8
	const perThread = 2000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(th*perThread) + 1
			for i := uint64(0); i < perThread; i++ {
				if !h.Put(base+i, base+i) {
					t.Errorf("Put(%d) failed", base+i)
					return
				}
			}
			for i := uint64(0); i < perThread; i += 2 {
				if !h.Delete(base + i) {
					t.Errorf("Delete(%d) failed", base+i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if h.Len() != threads*perThread/2 {
		t.Fatalf("Len = %d, want %d", h.Len(), threads*perThread/2)
	}
}

func TestHybridConcurrentContended(t *testing.T) {
	h := newTest(4)
	defer h.Close()
	const threads = 8
	wins := make([]int64, threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := prng.New(uint64(th) + 3)
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(64)) + 1
				if rng.Intn(2) == 0 {
					if h.Put(k, uint64(th)) {
						wins[th]++
					}
				} else if h.Delete(k) {
					wins[th]--
				}
			}
		}()
	}
	wg.Wait()
	net := int64(0)
	for _, w := range wins {
		net += w
	}
	if net != int64(h.Len()) {
		t.Fatalf("net successful puts-deletes %d != Len %d", net, h.Len())
	}
}

func TestHybridNonBlockingPipeline(t *testing.T) {
	// The §3.5 pattern: keep a window of futures in flight.
	h := newTest(8)
	defer h.Close()
	const total = 5000
	const window = 4
	futs := make([]*Future, 0, window)
	issued, completed := 0, 0
	for completed < total {
		if issued < total && len(futs) < window {
			futs = append(futs, h.Async(hds.Insert, uint64(issued)+1, uint64(issued)))
			issued++
			continue
		}
		if _, ok := futs[0].Wait(); !ok {
			t.Fatal("pipelined Put failed")
		}
		futs = futs[1:]
		completed++
	}
	if h.Len() != total {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHybridTryWait(t *testing.T) {
	h := newTest(2)
	defer h.Close()
	fut := h.Async(hds.Insert, 5, 50)
	for {
		if _, ok, done := fut.TryWait(); done {
			if !ok {
				t.Fatal("Put failed")
			}
			break
		}
	}
	if v, ok := h.Get(5); !ok || v != 50 {
		t.Fatal("value missing after TryWait completion")
	}
}

func TestHybridCustomStore(t *testing.T) {
	built := 0
	h := New(Config{
		Partitions: 3, KeyMax: 300,
		NewStore: func(p int) Store {
			built++
			return cds.NewBTree()
		},
	})
	defer h.Close()
	if built != 3 {
		t.Fatalf("NewStore called %d times", built)
	}
	if !h.Put(42, 1) {
		t.Fatal("Put through custom store failed")
	}
}

func TestHybridSkipListAsStore(t *testing.T) {
	h := New(Config{
		Partitions: 2, KeyMax: 1 << 16,
		NewStore: func(p int) Store { return skipStore{cds.NewSkipList(14)} },
	})
	defer h.Close()
	for k := uint64(1); k <= 500; k++ {
		if !h.Put(k, k*3) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	for k := uint64(1); k <= 500; k++ {
		if v, ok := h.Get(k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
}

// skipStore adapts cds.SkipList to the Store interface.
type skipStore struct{ s *cds.SkipList }

func (s skipStore) Get(k uint64) (uint64, bool) { return s.s.Get(k) }
func (s skipStore) Put(k, v uint64) bool        { return s.s.Insert(k, v) }
func (s skipStore) Update(k, v uint64) bool     { return s.s.Update(k, v) }
func (s skipStore) Delete(k uint64) bool        { return s.s.Delete(k) }
func (s skipStore) Len() int                    { return s.s.Len() }
func (s skipStore) Ascend(from uint64, fn func(k, v uint64) bool) {
	s.s.Ascend(from, fn)
}

func TestHybridKeyBoundsPanic(t *testing.T) {
	h := newTest(2)
	defer h.Close()
	for _, k := range []uint64{0, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %d did not panic", k)
				}
			}()
			h.Get(k)
		}()
	}
}

func TestHybridCloseIdempotent(t *testing.T) {
	h := newTest(2)
	h.Put(1, 1)
	h.Close()
	h.Close() // must not panic
}

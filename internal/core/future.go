package core

import (
	"sync"
	"sync/atomic"
)

// Future states. A future starts pending, moves to parked when a waiter
// blocks on it, and to done when the combiner completes it; parked -> done
// carries a wake send.
const (
	futPending uint32 = iota
	futParked
	futDone
)

// Future is a non-blocking call handle (§3.5's operation ID): Wait blocks
// until the combiner has applied the operation and returns its results.
//
// Futures are pooled: the call that observes completion (Wait, or the
// TryWait that returns done=true) consumes the handle and recycles it, so
// the request hot path performs no per-operation allocation. A consumed
// Future must not be touched again.
type Future struct {
	value uint64
	ok    bool
	state atomic.Uint32
	// wake is allocated once per pooled instance and reused across
	// operations; it holds at most one permit (sent only on the
	// parked -> done transition).
	wake chan struct{}
}

// futPool recycles Futures across operations. Instances leave the pool in
// the pending state with an empty wake channel.
var futPool = sync.Pool{New: func() any {
	return &Future{wake: make(chan struct{}, 1)}
}}

// newFuture draws a pending future from the pool.
func newFuture() *Future {
	return futPool.Get().(*Future)
}

// complete publishes the operation's results and wakes a parked waiter.
// Called exactly once, by the owning combiner (or by the publisher itself
// for a rejected late publish).
func (f *Future) complete(value uint64, ok bool) {
	f.value = value
	f.ok = ok
	if f.state.Swap(futDone) == futParked {
		f.wake <- struct{}{}
	}
}

// release returns a consumed future to the pool.
func (f *Future) release() {
	f.state.Store(futPending)
	futPool.Put(f)
}

// Wait blocks until completion, consumes the future, and returns the read
// value (Get) and the operation's success flag. At most one goroutine may
// wait on a future.
func (f *Future) Wait() (uint64, bool) {
	for {
		switch f.state.Load() {
		case futDone:
			value, ok := f.value, f.ok
			f.release()
			return value, ok
		default:
			if f.state.CompareAndSwap(futPending, futParked) {
				<-f.wake
				value, ok := f.value, f.ok
				f.release()
				return value, ok
			}
		}
	}
}

// TryWait reports completion without blocking, matching the paper's
// "separate function that takes the operation ID ... to check on the
// operation's status". When done it consumes the future and returns the
// results; until then the future stays live and TryWait may be called
// again.
func (f *Future) TryWait() (value uint64, ok, done bool) {
	if f.state.Load() != futDone {
		return 0, false, false
	}
	value, ok = f.value, f.ok
	f.release()
	return value, ok, true
}

// peek reports completion without consuming the future (the windowed
// batch path separates the done poll from the response read).
func (f *Future) peek() bool { return f.state.Load() == futDone }

// take reads a completed future's results and consumes it.
func (f *Future) take() (uint64, bool) {
	value, ok := f.value, f.ok
	f.release()
	return value, ok
}

package core

import (
	"fmt"
	"strings"

	"hybrids/internal/metrics"
)

// PartitionStats is one partition's management-plane snapshot, read by
// the partition's own combiner through the barrier path — so every field
// is consistent with each other and with request order, even while
// traffic flows. After Close the quiescent stores are read directly.
type PartitionStats struct {
	// Partition is the partition index.
	Partition int `json:"partition"`
	// Ops counts data operations the combiner has applied.
	Ops uint64 `json:"ops"`
	// Built counts pairs loaded by Build (bypassing the mailbox).
	Built uint64 `json:"built"`
	// Batches counts combine rounds; BatchOps sums their sizes, so mean
	// combine batch = BatchOps/Batches.
	Batches uint64 `json:"batches"`
	// BatchOps sums combine-round batch sizes.
	BatchOps uint64 `json:"batch_ops"`
	// MailboxSum sums observed mailbox depths at combine-round starts
	// (mean depth = MailboxSum/Batches); the saturation signal.
	MailboxSum uint64 `json:"mailbox_sum"`
	// QueueLen is the mailbox's queued request count at the snapshot.
	QueueLen int `json:"queue_len"`
	// StoreLen is the partition store's pair count.
	StoreLen int `json:"store_len"`
	// Store maps the partition store's structural instrument names
	// (core/p<i>/store/...) to their values; empty when the engine
	// exposes none.
	Store map[string]uint64 `json:"store,omitempty"`
}

// PartitionStats snapshots partition p in request order: the read runs
// on p's combiner after every operation published before it (the same
// barrier Len and Dump use), which is also what makes it race-free —
// the combiner is the only writer of its instruments. Safe to call
// concurrently with traffic and after Close.
func (h *Hybrid) PartitionStats(p int) PartitionStats {
	part := h.parts[p]
	storePrefix := fmt.Sprintf("core/p%d/store/", p)
	var out PartitionStats
	h.barrier(p, func(s Store) {
		out = PartitionStats{
			Partition:  p,
			Ops:        part.cOps.Value(),
			Built:      part.cBuilt.Value(),
			Batches:    part.hBatch.Count(),
			BatchOps:   part.hBatch.Sum(),
			MailboxSum: part.hMailbox.Sum(),
			QueueLen:   len(part.reqs),
			StoreLen:   s.Len(),
		}
		for _, name := range h.reg.Names() {
			if strings.HasPrefix(name, storePrefix) {
				if out.Store == nil {
					out.Store = make(map[string]uint64)
				}
				c, _ := h.reg.LookupCounter(name)
				out.Store[strings.TrimPrefix(name, storePrefix)] = c.Value()
			}
		}
	})
	return out
}

// ExportMetrics captures every core/p<i>/ instrument in the runtime's
// registry — counters (histogram sum/count components excluded) and
// histograms with their shape buckets — partition by partition through
// the barrier path, so each partition's values are read by its own
// combiner and the export never races the data path. Partitions are
// visited one after another, not atomically (the same contract as Len
// and Scan). Safe during traffic and after Close.
func (h *Hybrid) ExportMetrics() (metrics.Snapshot, []metrics.HistSnapshot) {
	names := h.reg.Names()
	histNames := h.reg.HistNames()
	counters := make(metrics.Snapshot)
	var hists []metrics.HistSnapshot
	for p := range h.parts {
		prefix := fmt.Sprintf("core/p%d/", p)
		h.barrier(p, func(Store) {
			for _, name := range names {
				if !strings.HasPrefix(name, prefix) || h.reg.IsHistComponent(name) {
					continue
				}
				c, _ := h.reg.LookupCounter(name)
				counters[name] = c.Value()
			}
			for _, name := range histNames {
				if !strings.HasPrefix(name, prefix) {
					continue
				}
				hist, _ := h.reg.LookupHistogram(name)
				hists = append(hists, hist.Snapshot())
			}
		})
	}
	return counters, hists
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"hybrids/internal/hds"
	"hybrids/internal/metrics"
)

// TestHybridCloseDrainsPublished publishes a burst of asynchronous
// operations and closes immediately: every future published before Close
// must complete with its operation applied.
func TestHybridCloseDrainsPublished(t *testing.T) {
	h := New(Config{Partitions: 4, KeyMax: 1 << 20, MailboxDepth: 128})
	const n = 500
	futs := make([]*Future, 0, n)
	for i := uint64(1); i <= n; i++ {
		futs = append(futs, h.Async(hds.Insert, i, i*2))
	}
	h.Close()
	for i, f := range futs {
		if _, ok := f.Wait(); !ok {
			t.Fatalf("pre-Close insert %d rejected", i+1)
		}
	}
	if got := h.Len(); got != n {
		t.Fatalf("Len = %d after drain, want %d", got, n)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := h.Get(i); ok || v != 0 {
			t.Fatal("post-Close Get was not rejected")
		}
		break // one probe is enough
	}
}

// TestHybridLatePublishRejected checks the deterministic rejection path:
// after Close every publish completes immediately with ok=false and no
// store mutation.
func TestHybridLatePublishRejected(t *testing.T) {
	h := New(Config{Partitions: 2, KeyMax: 1 << 16})
	h.Put(7, 70)
	h.Close()
	if _, ok := h.Async(hds.Insert, 9, 90).Wait(); ok {
		t.Fatal("late Insert succeeded")
	}
	if ok := h.Put(10, 100); ok {
		t.Fatal("late Put succeeded")
	}
	if v, ok, done := h.Async(hds.Read, 7, 0).TryWait(); !done || ok || v != 0 {
		t.Fatalf("late Read = (%d,%v,%v), want immediate rejection", v, ok, done)
	}
	if !h.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Quiescent read-only accessors still serve the drained state.
	if got := h.Len(); got != 1 {
		t.Fatalf("post-Close Len = %d, want 1", got)
	}
	if d := h.Dump(); len(d) != 1 || d[0] != (KV{Key: 7, Value: 70}) {
		t.Fatalf("post-Close Dump = %v", d)
	}
}

// TestHybridApplyBatchWindow drives the shared hds.Window through the
// native ports: all operations complete, results are exact.
func TestHybridApplyBatchWindow(t *testing.T) {
	for _, window := range []int{1, 4, 16} {
		h := New(Config{Partitions: 4, KeyMax: 1 << 20, MailboxDepth: 64})
		const n = 2000
		ops := make([]hds.Request, 0, 2*n)
		for i := uint64(1); i <= n; i++ {
			ops = append(ops, hds.Request{Kind: hds.Insert, Key: i, Value: i + 1})
		}
		// Second half: reads of every inserted key plus misses.
		for i := uint64(1); i <= n; i++ {
			ops = append(ops, hds.Request{Kind: hds.Read, Key: i})
		}
		if applied, succeeded := h.ApplyBatch(ops, window); applied != 2*n || succeeded != 2*n {
			t.Fatalf("window %d: applied/succeeded = %d/%d, want %d/%d", window, applied, succeeded, 2*n, 2*n)
		}
		misses := []hds.Request{{Kind: hds.Read, Key: n + 1}, {Kind: hds.Remove, Key: n + 2}}
		if applied, succeeded := h.ApplyBatch(misses, window); applied != 2 || succeeded != 0 {
			t.Fatalf("window %d: misses applied/succeeded = %d/%d, want 2/0", window, applied, succeeded)
		}
		if got := h.Len(); got != n {
			t.Fatalf("window %d: Len = %d, want %d", window, got, n)
		}
		h.Close()
	}
}

// TestHybridApplyBatchConcurrent runs batch callers on several goroutines
// over disjoint key ranges: per-call ports must never interfere.
func TestHybridApplyBatchConcurrent(t *testing.T) {
	h := New(Config{Partitions: 8, KeyMax: 1 << 20, MailboxDepth: 64})
	defer h.Close()
	const threads = 6
	const perThread = 1500
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			base := uint64(th*perThread) + 1
			ops := make([]hds.Request, perThread)
			for i := range ops {
				ops[i] = hds.Request{Kind: hds.Insert, Key: base + uint64(i), Value: base}
			}
			if _, succeeded := h.ApplyBatch(ops, 4); succeeded != perThread {
				t.Errorf("thread %d: succeeded = %d, want %d", th, succeeded, perThread)
			}
		}(th)
	}
	wg.Wait()
	if got := h.Len(); got != threads*perThread {
		t.Fatalf("Len = %d, want %d", got, threads*perThread)
	}
}

// TestHybridBuildDump loads pairs through the untimed Build path and
// checks Dump returns them in global key order.
func TestHybridBuildDump(t *testing.T) {
	h := New(Config{Partitions: 4, KeyMax: 1 << 16})
	defer h.Close()
	var pairs []KV
	for k := uint64(1); k < 1<<16; k += 97 {
		pairs = append(pairs, KV{Key: k, Value: k * 3})
	}
	// Scrambled input order must not matter.
	for i, j := 0, len(pairs)-1; i < j; i, j = i+1, j-1 {
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
	h.Build(pairs)
	if got := h.Len(); got != len(pairs) {
		t.Fatalf("Len = %d, want %d", got, len(pairs))
	}
	d := h.Dump()
	if len(d) != len(pairs) {
		t.Fatalf("Dump len = %d, want %d", len(d), len(pairs))
	}
	for i := 1; i < len(d); i++ {
		if d[i-1].Key >= d[i].Key {
			t.Fatalf("Dump not in key order at %d: %d >= %d", i, d[i-1].Key, d[i].Key)
		}
	}
	for _, kv := range d {
		if kv.Value != kv.Key*3 {
			t.Fatalf("Dump pair %v corrupted", kv)
		}
	}
}

// TestHybridMetrics checks the per-partition instruments: op counts sum
// to the operations applied through combiners, batch rounds and mailbox
// occupancy are observed, and the default B+ tree store reports splits.
func TestHybridMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	h := New(Config{Partitions: 2, KeyMax: 1 << 20, MailboxDepth: 32, Metrics: reg})
	const n = 4000
	for i := uint64(1); i <= n; i++ {
		h.Put(i, i)
	}
	ops := make([]hds.Request, 0, n)
	for i := uint64(1); i <= n; i++ {
		ops = append(ops, hds.Request{Kind: hds.Read, Key: i})
	}
	h.ApplyBatch(ops, 8)
	h.Close()
	snap := reg.Snapshot()
	var opsApplied, rounds, batchSum, leafSplits uint64
	for p := 0; p < 2; p++ {
		opsApplied += snap.Get(fmt.Sprintf("core/p%d/ops", p))
		rounds += snap.Get(fmt.Sprintf("core/p%d/batch/count", p))
		batchSum += snap.Get(fmt.Sprintf("core/p%d/batch/sum", p))
		leafSplits += snap.Get(fmt.Sprintf("core/p%d/store/leaf_splits", p))
	}
	if opsApplied != 2*n {
		t.Errorf("ops applied = %d, want %d", opsApplied, 2*n)
	}
	if rounds == 0 || batchSum != opsApplied {
		t.Errorf("batch rounds = %d sum = %d, want sum == ops %d", rounds, batchSum, opsApplied)
	}
	if leafSplits == 0 {
		t.Errorf("no leaf splits recorded for %d sequential inserts", n)
	}
	if h.Metrics() != reg {
		t.Error("Metrics() did not return the configured registry")
	}
}

// TestHybridApplyBatchAccounting pins the applied/succeeded distinction:
// a read of an absent key is an *applied* operation that legitimately
// failed, while a publish rejected by a concurrent Close never reaches a
// store and must not be counted as applied.
func TestHybridApplyBatchAccounting(t *testing.T) {
	h := New(Config{Partitions: 4, KeyMax: 1 << 20})
	const hits, misses = 40, 17
	ops := make([]hds.Request, 0, 2*hits+misses)
	for i := uint64(1); i <= hits; i++ {
		ops = append(ops, hds.Request{Kind: hds.Insert, Key: i, Value: i})
	}
	for i := uint64(1); i <= hits; i++ {
		ops = append(ops, hds.Request{Kind: hds.Read, Key: i})
	}
	for i := uint64(1); i <= misses; i++ {
		ops = append(ops, hds.Request{Kind: hds.Read, Key: 1<<19 + i})
	}
	out := make([]Outcome, len(ops))
	applied, succeeded := h.ApplyBatchResults(ops, 8, out)
	if applied != len(ops) {
		t.Errorf("applied = %d, want %d (misses are still applied)", applied, len(ops))
	}
	if succeeded != 2*hits {
		t.Errorf("succeeded = %d, want %d (misses are not successes)", succeeded, 2*hits)
	}
	for i, o := range out {
		if o.Rejected {
			t.Fatalf("op %d marked rejected on an open map", i)
		}
		wantOK := i < 2*hits
		if o.Result.OK != wantOK {
			t.Fatalf("op %d OK = %v, want %v", i, o.Result.OK, wantOK)
		}
		if i >= hits && i < 2*hits && o.Result.Value != uint64(i-hits+1) {
			t.Fatalf("read %d value = %d, want %d", i, o.Result.Value, i-hits+1)
		}
	}

	// After Close every publish is rejected: applied must drop to zero
	// and every outcome must carry the Rejected mark.
	h.Close()
	late := []hds.Request{{Kind: hds.Read, Key: 1}, {Kind: hds.Insert, Key: 99, Value: 1}}
	lateOut := make([]Outcome, len(late))
	applied, succeeded = h.ApplyBatchResults(late, 4, lateOut)
	if applied != 0 || succeeded != 0 {
		t.Errorf("post-Close applied/succeeded = %d/%d, want 0/0", applied, succeeded)
	}
	for i, o := range lateOut {
		if !o.Rejected || o.Result.OK {
			t.Errorf("post-Close op %d outcome = %+v, want rejected", i, o)
		}
	}
}

// TestHybridScan covers the cross-partition range read: ordering, limit
// handling, a from key inside the range, and post-Close reads of the
// quiescent stores.
func TestHybridScan(t *testing.T) {
	h := New(Config{Partitions: 4, KeyMax: 1 << 16})
	var pairs []KV
	for k := uint64(1); k < 1<<16; k += 131 {
		pairs = append(pairs, KV{Key: k, Value: k * 7})
	}
	h.Build(pairs)
	got := h.Scan(0, len(pairs)+10)
	if len(got) != len(pairs) {
		t.Fatalf("full scan returned %d pairs, want %d", len(got), len(pairs))
	}
	for i, kv := range got {
		if kv != pairs[i] {
			t.Fatalf("scan[%d] = %+v, want %+v", i, kv, pairs[i])
		}
	}
	mid := pairs[len(pairs)/2].Key
	part := h.Scan(mid, 5)
	if len(part) != 5 || part[0].Key != mid {
		t.Fatalf("scan(from=%d, limit=5) = %+v", mid, part)
	}
	if h.Scan(1, 0) != nil {
		t.Error("limit 0 scan returned pairs")
	}
	// The mailbox Scan kind counts pairs per partition.
	res := h.Apply(hds.Request{Kind: hds.Scan, Key: pairs[0].Key, Value: 3})
	if !res.OK || res.Value != 3 {
		t.Fatalf("mailbox scan = %+v, want OK count 3", res)
	}
	h.Close()
	if got := h.Scan(0, 3); len(got) != 3 || got[0] != pairs[0] {
		t.Fatalf("post-Close scan = %+v", got)
	}
}

package core

import (
	"sync"
	"testing"

	"hybrids/internal/cds"
)

func TestHybridRebalancePreservesContents(t *testing.T) {
	h := newTest(4)
	defer h.Close()
	const n = 5000
	for k := uint64(1); k <= n; k++ {
		if !h.Put(k, k*3) {
			t.Fatalf("Put(%d) failed", k)
		}
	}
	// Migrate every partition from the default B+ tree to B-skiplists of a
	// different height — the native analogue of moving the boundary.
	if err := h.Rebalance(func(int) Store { return cds.NewBSkipList(8) }); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if h.Len() != n {
		t.Fatalf("Len = %d after rebalance, want %d", h.Len(), n)
	}
	for k := uint64(1); k <= n; k += 7 {
		if v, ok := h.Get(k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = (%d,%v) after rebalance", k, v, ok)
		}
	}
	// The map still mutates normally on the new stores.
	if !h.Delete(1) || h.Put(1, 0) == false {
		t.Fatal("mutations after rebalance broken")
	}
}

func TestHybridRebalanceUnderLoad(t *testing.T) {
	h := newTest(4)
	defer h.Close()
	const threads = 4
	const perThread = 3000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(th*perThread) + 1
			for i := uint64(0); i < perThread; i++ {
				if !h.Put(base+i, base+i) {
					t.Errorf("Put(%d) failed", base+i)
					return
				}
			}
		}()
	}
	// Rebalance concurrently with the writers: every partition swap runs
	// on the combiner goroutine in request order, so no write is lost.
	done := make(chan error, 1)
	go func() {
		done <- h.Rebalance(func(int) Store { return cds.NewBSkipList(12) })
	}()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if h.Len() != threads*perThread {
		t.Fatalf("Len = %d, want %d", h.Len(), threads*perThread)
	}
	for th := 0; th < threads; th++ {
		base := uint64(th*perThread) + 1
		for i := uint64(0); i < perThread; i += 101 {
			if v, ok := h.Get(base + i); !ok || v != base+i {
				t.Fatalf("Get(%d) = (%d,%v)", base+i, v, ok)
			}
		}
	}
}

func TestHybridRebalanceAfterClose(t *testing.T) {
	h := newTest(2)
	h.Close()
	if err := h.Rebalance(func(int) Store { return cds.NewBTree() }); err == nil {
		t.Fatal("Rebalance after Close succeeded")
	}
}

package core

import (
	"runtime"

	"hybrids/internal/hds"
)

// natPort adapts one partition's mailbox + pooled futures to the shared
// hds.Port contract, so the native non-blocking path runs through exactly
// the same in-flight Window as the simulator's §3.5 implementation. Each
// ApplyBatch call owns a private set of ports (slot state is per-call),
// so callers on different goroutines can never collide on a slot.
type natPort struct {
	h    *Hybrid
	part int
	futs []*Future
}

// Slots returns the port's slot capacity (the batch window size).
func (p *natPort) Slots() int { return len(p.futs) }

// Post publishes req through slot without waiting for completion.
func (p *natPort) Post(_ struct{}, slot int, req hds.Request) {
	fut := newFuture()
	p.futs[slot] = fut
	p.h.publish(p.part, request{req: req, fut: fut})
}

// Done reports whether the request in slot has completed.
func (p *natPort) Done(_ struct{}, slot int) bool { return p.futs[slot].peek() }

// ReadResponse consumes the completed slot's future and returns its
// result.
func (p *natPort) ReadResponse(_ struct{}, slot int) hds.Result {
	fut := p.futs[slot]
	p.futs[slot] = nil
	value, ok := fut.take()
	return hds.Result{Value: value, OK: ok}
}

// Watch is a no-op: the native window parks by yielding the processor
// and re-polling rather than registering wakeups.
func (p *natPort) Watch(_ struct{}, slot int) {}

// natPark yields the processor between window poll rounds.
func natPark(struct{}) { runtime.Gosched() }

// ApplyBatch executes ops with non-blocking calls (§3.5), keeping up to
// window operations in flight through the shared hds.Window and
// harvesting completions out of order. It returns the number of
// operations that succeeded. window <= 1 degenerates to blocking
// behaviour (one call in flight).
func (h *Hybrid) ApplyBatch(ops []hds.Request, window int) int {
	if window <= 0 {
		window = 1
	}
	ports := make([]hds.Port[struct{}, hds.Request, hds.Result], len(h.parts))
	for p := range h.parts {
		ports[p] = &natPort{h: h, part: p, futs: make([]*Future, window)}
	}
	w := hds.NewWindow(0, window, ports, natPark)
	succeeded := 0
	next := 0
	for next < len(ops) || !w.Empty() {
		if next < len(ops) && !w.Full() {
			op := ops[next]
			next++
			w.Post(struct{}{}, h.Partition(op.Key), op, nil)
			continue
		}
		if _, res, _ := w.Harvest(struct{}{}); res.OK {
			succeeded++
		}
	}
	return succeeded
}

package core

import (
	"runtime"

	"hybrids/internal/hds"
)

// natPort adapts one partition's mailbox + pooled futures to the shared
// hds.Port contract, so the native non-blocking path runs through exactly
// the same in-flight Window as the simulator's §3.5 implementation. Each
// ApplyBatch call owns a private set of ports (slot state is per-call),
// so callers on different goroutines can never collide on a slot.
type natPort struct {
	h    *Hybrid
	part int
	futs []*Future
	// rejected marks slots whose publish was refused by a concurrent
	// Close (the future completes as ok=false without reaching a store),
	// so the batch loop can tell rejections apart from applied
	// operations that legitimately failed (e.g. a read miss).
	rejected []bool
}

// Slots returns the port's slot capacity (the batch window size).
func (p *natPort) Slots() int { return len(p.futs) }

// Post publishes req through slot without waiting for completion.
func (p *natPort) Post(_ struct{}, slot int, req hds.Request) {
	fut := newFuture()
	p.futs[slot] = fut
	p.rejected[slot] = !p.h.publish(p.part, request{req: req, fut: fut})
}

// Done reports whether the request in slot has completed.
func (p *natPort) Done(_ struct{}, slot int) bool { return p.futs[slot].peek() }

// ReadResponse consumes the completed slot's future and returns its
// result.
func (p *natPort) ReadResponse(_ struct{}, slot int) hds.Result {
	fut := p.futs[slot]
	p.futs[slot] = nil
	value, ok := fut.take()
	return hds.Result{Value: value, OK: ok}
}

// Watch is a no-op (trivially idempotent, as the Port contract requires):
// the native window parks by yielding the processor and re-polling rather
// than registering wakeups.
func (p *natPort) Watch(_ struct{}, slot int) {}

// natPark yields the processor between window poll rounds.
func natPark(struct{}) { runtime.Gosched() }

// ApplyBatch executes ops with non-blocking calls (§3.5), keeping up to
// window operations in flight through the shared hds.Window and
// harvesting completions out of order. It returns the number of
// operations a combiner actually applied and, of those, the number whose
// result was ok — so legitimate misses (applied but not succeeded, e.g. a
// read of an absent key) are distinguishable from publishes rejected by a
// concurrent Close (not applied at all). window <= 1 keeps one call in
// flight (blocking behaviour through the same windowed path).
func (h *Hybrid) ApplyBatch(ops []hds.Request, window int) (applied, succeeded int) {
	return h.ApplyBatchResults(ops, window, nil)
}

// Batcher is the reusable state behind windowed batch execution: the
// per-partition ports, the generic in-flight hds.Window, and a table of
// pre-boxed harvest tags. ApplyBatchResults builds one per call; callers
// with a steady stream of batches (the serving layer keeps one per
// connection) construct it once with NewBatcher and call Apply
// repeatedly, which makes the steady-state batch path allocation-free. A
// Batcher belongs to one goroutine; it is not safe for concurrent use.
type Batcher struct {
	h    *Hybrid
	nats []*natPort
	w    *hds.Window[struct{}, hds.Request, hds.Result]
	tags []any
}

// NewBatcher returns a Batcher whose Apply keeps up to window operations
// in flight. window <= 1 keeps one call in flight (blocking behaviour
// through the same windowed path).
func (h *Hybrid) NewBatcher(window int) *Batcher {
	if window <= 0 {
		window = 1
	}
	ports := make([]hds.Port[struct{}, hds.Request, hds.Result], len(h.parts))
	nats := make([]*natPort, len(h.parts))
	for p := range h.parts {
		np := &natPort{h: h, part: p, futs: make([]*Future, window), rejected: make([]bool, window)}
		nats[p] = np
		ports[p] = np
	}
	return &Batcher{h: h, nats: nats, w: hds.NewWindow(0, window, ports, natPark)}
}

// tag returns idx boxed into an interface, memoized so repeated Apply
// calls never re-box window tags (boxing an int above the runtime's
// small-value cache allocates).
func (b *Batcher) tag(idx int) any {
	for len(b.tags) <= idx {
		b.tags = append(b.tags, len(b.tags))
	}
	return b.tags[idx]
}

// Apply executes ops through the batcher's window with ApplyBatchResults
// semantics: when out is non-nil it must hold len(ops) entries and
// out[i] receives ops[i]'s Outcome. It returns the applied/succeeded
// accounting of ApplyBatch. Steady-state calls perform no allocation.
func (b *Batcher) Apply(ops []hds.Request, out []Outcome) (applied, succeeded int) {
	if out != nil && len(out) != len(ops) {
		panic("core: Batcher.Apply out length does not match ops")
	}
	h := b.h
	next := 0
	for next < len(ops) || !b.w.Empty() {
		if next < len(ops) && !b.w.Full() {
			op := ops[next]
			b.w.Post(struct{}{}, h.Partition(op.Key), op, b.tag(next))
			next++
			continue
		}
		tag, res, pos := b.w.Harvest(struct{}{})
		idx := tag.(int)
		// Window position i of thread 0 is slot i of the target
		// partition's port.
		rejected := b.nats[h.Partition(ops[idx].Key)].rejected[pos]
		if out != nil {
			out[idx] = Outcome{Result: res, Rejected: rejected}
		}
		if rejected {
			continue
		}
		applied++
		if res.OK {
			succeeded++
		}
	}
	return applied, succeeded
}

// Outcome is one batched operation's result plus whether it reached a
// combiner at all: Rejected marks publishes refused by a concurrent Close
// (the store was never touched), which would otherwise be
// indistinguishable from an applied operation that returned ok=false.
type Outcome struct {
	// Result is the operation's hds result (zero when Rejected).
	Result hds.Result
	// Rejected reports that the publish was refused by Close.
	Rejected bool
}

// ApplyBatchResults is ApplyBatch with per-operation outcomes: when out is
// non-nil it must hold len(ops) entries, and out[i] receives ops[i]'s
// Outcome regardless of the order completions are harvested in. The
// serving layer uses it to answer pipelined client requests in request
// order while the window overlaps their executions.
func (h *Hybrid) ApplyBatchResults(ops []hds.Request, window int, out []Outcome) (applied, succeeded int) {
	if out != nil && len(out) != len(ops) {
		panic("core: ApplyBatchResults out length does not match ops")
	}
	return h.NewBatcher(window).Apply(ops, out)
}

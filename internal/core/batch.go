package core

import (
	"runtime"

	"hybrids/internal/hds"
)

// natPort adapts one partition's mailbox + pooled futures to the shared
// hds.Port contract, so the native non-blocking path runs through exactly
// the same in-flight Window as the simulator's §3.5 implementation. Each
// ApplyBatch call owns a private set of ports (slot state is per-call),
// so callers on different goroutines can never collide on a slot.
type natPort struct {
	h    *Hybrid
	part int
	futs []*Future
	// rejected marks slots whose publish was refused by a concurrent
	// Close (the future completes as ok=false without reaching a store),
	// so the batch loop can tell rejections apart from applied
	// operations that legitimately failed (e.g. a read miss).
	rejected []bool
}

// Slots returns the port's slot capacity (the batch window size).
func (p *natPort) Slots() int { return len(p.futs) }

// Post publishes req through slot without waiting for completion.
func (p *natPort) Post(_ struct{}, slot int, req hds.Request) {
	fut := newFuture()
	p.futs[slot] = fut
	p.rejected[slot] = !p.h.publish(p.part, request{req: req, fut: fut})
}

// Done reports whether the request in slot has completed.
func (p *natPort) Done(_ struct{}, slot int) bool { return p.futs[slot].peek() }

// ReadResponse consumes the completed slot's future and returns its
// result.
func (p *natPort) ReadResponse(_ struct{}, slot int) hds.Result {
	fut := p.futs[slot]
	p.futs[slot] = nil
	value, ok := fut.take()
	return hds.Result{Value: value, OK: ok}
}

// Watch is a no-op (trivially idempotent, as the Port contract requires):
// the native window parks by yielding the processor and re-polling rather
// than registering wakeups.
func (p *natPort) Watch(_ struct{}, slot int) {}

// natPark yields the processor between window poll rounds.
func natPark(struct{}) { runtime.Gosched() }

// ApplyBatch executes ops with non-blocking calls (§3.5), keeping up to
// window operations in flight through the shared hds.Window and
// harvesting completions out of order. It returns the number of
// operations a combiner actually applied and, of those, the number whose
// result was ok — so legitimate misses (applied but not succeeded, e.g. a
// read of an absent key) are distinguishable from publishes rejected by a
// concurrent Close (not applied at all). window <= 1 keeps one call in
// flight (blocking behaviour through the same windowed path).
func (h *Hybrid) ApplyBatch(ops []hds.Request, window int) (applied, succeeded int) {
	return h.ApplyBatchResults(ops, window, nil)
}

// Outcome is one batched operation's result plus whether it reached a
// combiner at all: Rejected marks publishes refused by a concurrent Close
// (the store was never touched), which would otherwise be
// indistinguishable from an applied operation that returned ok=false.
type Outcome struct {
	// Result is the operation's hds result (zero when Rejected).
	Result hds.Result
	// Rejected reports that the publish was refused by Close.
	Rejected bool
}

// ApplyBatchResults is ApplyBatch with per-operation outcomes: when out is
// non-nil it must hold len(ops) entries, and out[i] receives ops[i]'s
// Outcome regardless of the order completions are harvested in. The
// serving layer uses it to answer pipelined client requests in request
// order while the window overlaps their executions.
func (h *Hybrid) ApplyBatchResults(ops []hds.Request, window int, out []Outcome) (applied, succeeded int) {
	if window <= 0 {
		window = 1
	}
	if out != nil && len(out) != len(ops) {
		panic("core: ApplyBatchResults out length does not match ops")
	}
	ports := make([]hds.Port[struct{}, hds.Request, hds.Result], len(h.parts))
	nats := make([]*natPort, len(h.parts))
	for p := range h.parts {
		np := &natPort{h: h, part: p, futs: make([]*Future, window), rejected: make([]bool, window)}
		nats[p] = np
		ports[p] = np
	}
	w := hds.NewWindow(0, window, ports, natPark)
	next := 0
	for next < len(ops) || !w.Empty() {
		if next < len(ops) && !w.Full() {
			op := ops[next]
			w.Post(struct{}{}, h.Partition(op.Key), op, next)
			next++
			continue
		}
		tag, res, pos := w.Harvest(struct{}{})
		idx := tag.(int)
		// Window position i of thread 0 is slot i of the target
		// partition's port.
		rejected := nats[h.Partition(ops[idx].Key)].rejected[pos]
		if out != nil {
			out[idx] = Outcome{Result: res, Rejected: rejected}
		}
		if rejected {
			continue
		}
		applied++
		if res.OK {
			succeeded++
		}
	}
	return applied, succeeded
}

// Package core realizes the HybriDS programming model on real hardware:
// a concurrent ordered map split into a host-managed routing layer and a
// set of partition-owned stores, each served by a dedicated combiner
// goroutine — the software stand-in for the paper's per-partition NMP
// cores. Requests are published to a partition's mailbox (the publication
// list), the combiner applies them one at a time against its
// single-threaded store (flat combining), and callers either wait
// (blocking NMP calls) or hold multiple calls in flight (non-blocking NMP
// calls, §3.5) through the Future API.
//
// On a machine with actual near-memory hardware, the combiner goroutines
// are replaced by NMP cores and the mailboxes by memory-mapped publication
// lists; the simulated version of exactly that system lives in
// internal/dsim.
package core

import (
	"fmt"
	"sync"

	"hybrids/internal/cds"
)

// Store is a single-threaded ordered map owned by one partition. The
// combiner goroutine is its only user after the hybrid map starts.
// cds.BTree implements it; any ordered map can be plugged in.
type Store interface {
	Get(key uint64) (uint64, bool)
	Put(key, value uint64) bool
	Update(key, value uint64) bool
	Delete(key uint64) bool
	Len() int
}

// Config parameterizes a hybrid map.
type Config struct {
	// Partitions is the number of partition stores and combiner
	// goroutines (the paper uses 8 NMP vaults).
	Partitions int
	// KeyMax bounds the key space; keys are 1..KeyMax-1 and partitions
	// own equal ranges.
	KeyMax uint64
	// MailboxDepth is each partition's request queue capacity — the
	// aggregate in-flight budget across callers.
	MailboxDepth int
	// NewStore builds each partition's store; nil defaults to cds.NewBTree.
	NewStore func(partition int) Store
}

// Op identifies a request type.
type Op uint8

// Request operations.
const (
	OpGet Op = iota
	OpPut
	OpUpdate
	OpDelete

	opLen Op = 255 // internal barrier: read the store size in-order
)

type request struct {
	op    Op
	key   uint64
	value uint64
	fut   *Future
}

// Future is a non-blocking call handle (§3.5's operation ID): Wait blocks
// until the combiner has applied the operation and returns its results.
type Future struct {
	done  chan struct{}
	value uint64
	ok    bool
}

// Wait blocks until completion and returns the read value (Get) and the
// operation's success flag.
func (f *Future) Wait() (uint64, bool) {
	<-f.done
	return f.value, f.ok
}

// TryWait reports completion without blocking; when done it returns the
// results, matching the paper's "separate function that takes the
// operation ID ... to check on the operation's status".
func (f *Future) TryWait() (value uint64, ok, done bool) {
	select {
	case <-f.done:
		return f.value, f.ok, true
	default:
		return 0, false, false
	}
}

// Hybrid is a concurrent ordered map with partition-per-combiner
// parallelism. All exported methods are safe for concurrent use.
type Hybrid struct {
	cfg    Config
	parts  []*partition
	span   uint64
	wg     sync.WaitGroup
	closed chan struct{}
}

type partition struct {
	store Store
	reqs  chan request
}

// New creates and starts a hybrid map.
func New(cfg Config) *Hybrid {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 8
	}
	if cfg.KeyMax == 0 {
		cfg.KeyMax = 1 << 62
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 64
	}
	if cfg.NewStore == nil {
		cfg.NewStore = func(int) Store { return cds.NewBTree() }
	}
	h := &Hybrid{
		cfg:    cfg,
		span:   (cfg.KeyMax + uint64(cfg.Partitions) - 1) / uint64(cfg.Partitions),
		closed: make(chan struct{}),
	}
	for p := 0; p < cfg.Partitions; p++ {
		part := &partition{
			store: cfg.NewStore(p),
			reqs:  make(chan request, cfg.MailboxDepth),
		}
		h.parts = append(h.parts, part)
		h.wg.Add(1)
		go h.combine(part)
	}
	return h
}

// combine is the partition's combiner loop: the software NMP core.
func (h *Hybrid) combine(p *partition) {
	defer h.wg.Done()
	for req := range p.reqs {
		switch req.op {
		case OpGet:
			req.fut.value, req.fut.ok = p.store.Get(req.key)
		case OpPut:
			req.fut.ok = p.store.Put(req.key, req.value)
		case OpUpdate:
			req.fut.ok = p.store.Update(req.key, req.value)
		case OpDelete:
			req.fut.ok = p.store.Delete(req.key)
		case opLen:
			req.fut.value, req.fut.ok = uint64(p.store.Len()), true
		}
		close(req.fut.done)
	}
}

// Close shuts the combiners down after all published requests drain.
// The map must not be used after Close.
func (h *Hybrid) Close() {
	select {
	case <-h.closed:
		return
	default:
		close(h.closed)
	}
	for _, p := range h.parts {
		close(p.reqs)
	}
	h.wg.Wait()
}

// Partition returns the partition owning key.
func (h *Hybrid) Partition(key uint64) int {
	if key == 0 || key >= h.cfg.KeyMax {
		panic(fmt.Sprintf("core: key %d outside key space [1,%d)", key, h.cfg.KeyMax))
	}
	return int(key / h.span)
}

// Async publishes an operation and returns its Future immediately (a
// non-blocking NMP call). Callers pipeline by holding several futures.
func (h *Hybrid) Async(op Op, key, value uint64) *Future {
	fut := &Future{done: make(chan struct{})}
	h.parts[h.Partition(key)].reqs <- request{op: op, key: key, value: value, fut: fut}
	return fut
}

// Get returns the value stored under key (blocking call).
func (h *Hybrid) Get(key uint64) (uint64, bool) {
	return h.Async(OpGet, key, 0).Wait()
}

// Put inserts key -> value, returning false if the key exists.
func (h *Hybrid) Put(key, value uint64) bool {
	_, ok := h.Async(OpPut, key, value).Wait()
	return ok
}

// Update overwrites an existing key's value, returning false if absent.
func (h *Hybrid) Update(key, value uint64) bool {
	_, ok := h.Async(OpUpdate, key, value).Wait()
	return ok
}

// Delete removes key, returning false if absent.
func (h *Hybrid) Delete(key uint64) bool {
	_, ok := h.Async(OpDelete, key, 0).Wait()
	return ok
}

// Len sums the partition store sizes. Each partition's count is read by
// its combiner in request order, so the result is a per-partition
// linearizable size (exact at quiescence).
func (h *Hybrid) Len() int {
	total := 0
	for _, p := range h.parts {
		fut := &Future{done: make(chan struct{})}
		p.reqs <- request{op: opLen, fut: fut}
		n, _ := fut.Wait()
		total += int(n)
	}
	return total
}

// Package core realizes the HybriDS programming model on real hardware:
// a concurrent ordered map split into a host-managed routing layer and a
// set of partition-owned stores, each served by a dedicated combiner
// goroutine — the software stand-in for the paper's per-partition NMP
// cores. Requests are published to a partition's mailbox (the publication
// list), the combiner drains the mailbox in batches and applies requests
// against its single-threaded store (flat combining), and callers either
// wait (blocking NMP calls, §3.2) or hold multiple calls in flight
// (non-blocking NMP calls, §3.5) through pooled Futures and the shared
// internal/hds window.
//
// The request vocabulary is internal/hds — the same Kinds the simulator's
// experiment drivers issue — so a workload runs unchanged against either
// stack. On a machine with actual near-memory hardware, the combiner
// goroutines are replaced by NMP cores and the mailboxes by memory-mapped
// publication lists; the simulated version of exactly that system lives
// in internal/dsim.
package core

import (
	"fmt"
	"sync"

	"hybrids/internal/cds"
	"hybrids/internal/hds"
	"hybrids/internal/metrics"
)

// Store is a single-threaded ordered map owned by one partition. The
// combiner goroutine is its only user after the hybrid map starts.
// cds.BTree implements it; any ordered map can be plugged in.
type Store interface {
	// Get returns the value stored under key.
	Get(key uint64) (uint64, bool)
	// Put inserts key -> value, returning false if the key exists.
	Put(key, value uint64) bool
	// Update overwrites an existing key's value, returning false if
	// absent.
	Update(key, value uint64) bool
	// Delete removes key, returning false if absent.
	Delete(key uint64) bool
	// Len returns the number of stored pairs.
	Len() int
	// Ascend visits pairs in ascending key order starting at from until
	// fn returns false.
	Ascend(from uint64, fn func(key, value uint64) bool)
}

// Instrumented is implemented by stores that expose structural-event
// counters (cds.BTree, cds.SkipList, cds.BSkipList all do). New registers
// each partition store that implements it under "core/p<i>/store", so
// per-partition structural metrics are engine-uniform without the runtime
// knowing any concrete store type.
type Instrumented interface {
	// Instrument registers the store's counters in reg under prefix.
	Instrument(reg *metrics.Registry, prefix string)
}

// Config parameterizes a hybrid map.
type Config struct {
	// Partitions is the number of partition stores and combiner
	// goroutines (the paper uses 8 NMP vaults).
	Partitions int
	// KeyMax bounds the key space; keys are 1..KeyMax-1 and partitions
	// own equal ranges.
	KeyMax uint64
	// MailboxDepth is each partition's request queue capacity — the
	// aggregate in-flight budget across callers — and the cap on one
	// combine round's batch.
	MailboxDepth int
	// NewStore builds each partition's store; nil defaults to cds.NewBTree.
	NewStore func(partition int) Store
	// Metrics receives the runtime's per-partition instruments
	// (core/p<i>/...); nil creates a private registry reachable through
	// Hybrid.Metrics. The registry is unsynchronized: each instrument is
	// touched only by its owning combiner goroutine, so snapshots are
	// consistent only at quiescence (all published futures consumed, or
	// after Close).
	Metrics *metrics.Registry
}

// KV is one key-value pair (Build input, Dump output).
type KV struct {
	// Key is the pair's key.
	Key uint64
	// Value is the pair's value.
	Value uint64
}

// request is one mailbox entry: an hds request plus its completion
// handle, or an in-order barrier closure (Len, Dump).
type request struct {
	req  hds.Request
	fut  *Future
	snap func(s Store)
}

// Hybrid is a concurrent ordered map with partition-per-combiner
// parallelism. All exported methods are safe for concurrent use.
type Hybrid struct {
	cfg   Config
	reg   *metrics.Registry
	parts []*partition
	span  uint64
	wg    sync.WaitGroup
	// mu guards the closed flag: publishers hold it shared around the
	// mailbox send, Close holds it exclusively while closing mailboxes,
	// so no send can race a close.
	mu     sync.RWMutex
	closed bool
}

// partition is one combiner's domain: the store it owns, its mailbox and
// its per-partition instruments (touched only by the combiner after
// start; see Config.Metrics).
type partition struct {
	store Store
	reqs  chan request

	cOps     *metrics.Counter
	cBuilt   *metrics.Counter
	hBatch   *metrics.Histogram
	hMailbox *metrics.Histogram
}

// New creates and starts a hybrid map.
func New(cfg Config) *Hybrid {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 8
	}
	if cfg.KeyMax == 0 {
		cfg.KeyMax = 1 << 62
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 64
	}
	if cfg.NewStore == nil {
		cfg.NewStore = func(int) Store { return cds.NewBTree() }
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	h := &Hybrid{
		cfg:  cfg,
		reg:  reg,
		span: (cfg.KeyMax + uint64(cfg.Partitions) - 1) / uint64(cfg.Partitions),
	}
	for p := 0; p < cfg.Partitions; p++ {
		part := &partition{
			store:    cfg.NewStore(p),
			reqs:     make(chan request, cfg.MailboxDepth),
			cOps:     reg.Counter(fmt.Sprintf("core/p%d/ops", p)),
			cBuilt:   reg.Counter(fmt.Sprintf("core/p%d/built", p)),
			hBatch:   reg.Histogram(fmt.Sprintf("core/p%d/batch", p)),
			hMailbox: reg.Histogram(fmt.Sprintf("core/p%d/mailbox", p)),
		}
		if ins, ok := part.store.(Instrumented); ok {
			ins.Instrument(reg, fmt.Sprintf("core/p%d/store", p))
		}
		h.parts = append(h.parts, part)
		h.wg.Add(1)
		go h.combine(part)
	}
	return h
}

// Metrics returns the registry carrying the runtime's instruments. Read
// it only at quiescence (see Config.Metrics).
func (h *Hybrid) Metrics() *metrics.Registry { return h.reg }

// apply executes one request against the partition's store and completes
// its future.
func (p *partition) apply(r request) {
	if r.snap != nil {
		r.snap(p.store)
		r.fut.complete(0, true)
		return
	}
	var value uint64
	var ok bool
	switch r.req.Kind {
	case hds.Read:
		value, ok = p.store.Get(r.req.Key)
	case hds.Insert:
		ok = p.store.Put(r.req.Key, r.req.Value)
	case hds.Update:
		ok = p.store.Update(r.req.Key, r.req.Value)
	case hds.Remove:
		ok = p.store.Delete(r.req.Key)
	case hds.Scan:
		// Per-partition range read: count pairs with key >= Key, at most
		// Value of them. Cross-partition scans that need the pairs
		// themselves go through Hybrid.Scan instead.
		var n uint64
		p.store.Ascend(r.req.Key, func(uint64, uint64) bool {
			if n >= r.req.Value {
				return false
			}
			n++
			return true
		})
		value, ok = n, true
	}
	r.fut.complete(value, ok)
}

// combine is the partition's combiner loop: the software NMP core. Each
// round blocks for one request, drains whatever else the mailbox holds
// (up to MailboxDepth) into a local batch — the native analogue of a
// flat-combining scan over the publication list — and then applies the
// batch. Instruments are recorded before any future in the round
// completes, so a caller that has consumed every published future can
// snapshot the registry without racing the combiner.
func (h *Hybrid) combine(p *partition) {
	defer h.wg.Done()
	batch := make([]request, 0, h.cfg.MailboxDepth)
	for {
		r, ok := <-p.reqs
		if !ok {
			return
		}
		p.hMailbox.Observe(uint64(len(p.reqs) + 1))
		batch = append(batch[:0], r)
		closed := false
	drain:
		for len(batch) < h.cfg.MailboxDepth {
			select {
			case r, ok := <-p.reqs:
				if !ok {
					closed = true
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		p.hBatch.Observe(uint64(len(batch)))
		ops := uint64(0)
		for _, r := range batch {
			if r.snap == nil {
				ops++
			}
		}
		p.cOps.Add(ops)
		for _, r := range batch {
			p.apply(r)
		}
		if closed {
			return
		}
	}
}

// publish sends r to partition part's mailbox and reports true, or — after
// Close — completes the future as a deterministic rejection (ok=false)
// without touching any store and reports false, so callers can tell a
// rejected publish apart from an applied operation that failed.
func (h *Hybrid) publish(part int, r request) bool {
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		r.fut.complete(0, false)
		return false
	}
	h.parts[part].reqs <- r
	h.mu.RUnlock()
	return true
}

// Close drains every mailbox and shuts the combiners down: requests
// published before Close are fully applied and their futures completed;
// publishes that happen after Close return futures already rejected with
// ok=false. Close is idempotent, and read-only accessors (Len, Dump)
// keep working on the quiescent stores afterwards.
func (h *Hybrid) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for _, p := range h.parts {
		close(p.reqs)
	}
	h.mu.Unlock()
	h.wg.Wait()
}

// Closed reports whether Close has begun.
func (h *Hybrid) Closed() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.closed
}

// Partition returns the partition owning key.
func (h *Hybrid) Partition(key uint64) int {
	if key == 0 || key >= h.cfg.KeyMax {
		panic(fmt.Sprintf("core: key %d outside key space [1,%d)", key, h.cfg.KeyMax))
	}
	return int(key / h.span)
}

// Partitions returns the number of partitions.
func (h *Hybrid) Partitions() int { return len(h.parts) }

// KeyMax returns the exclusive key-space bound; valid keys are
// 1..KeyMax-1 (key 0 is the -inf sentinel).
func (h *Hybrid) KeyMax() uint64 { return h.cfg.KeyMax }

// Async publishes an operation and returns its Future immediately (a
// non-blocking NMP call). Callers pipeline by holding several futures;
// the future must be consumed exactly once via Wait or a successful
// TryWait.
func (h *Hybrid) Async(kind hds.Kind, key, value uint64) *Future {
	return h.AsyncReq(hds.Request{Kind: kind, Key: key, Value: value})
}

// AsyncReq is Async over an assembled hds.Request.
func (h *Hybrid) AsyncReq(req hds.Request) *Future {
	fut := newFuture()
	h.publish(h.Partition(req.Key), request{req: req, fut: fut})
	return fut
}

// Apply executes one request as a blocking NMP call (§3.2) and returns
// its result.
func (h *Hybrid) Apply(req hds.Request) hds.Result {
	value, ok := h.AsyncReq(req).Wait()
	return hds.Result{Value: value, OK: ok}
}

// Get returns the value stored under key (blocking call).
func (h *Hybrid) Get(key uint64) (uint64, bool) {
	return h.Async(hds.Read, key, 0).Wait()
}

// Put inserts key -> value, returning false if the key exists.
func (h *Hybrid) Put(key, value uint64) bool {
	_, ok := h.Async(hds.Insert, key, value).Wait()
	return ok
}

// Update overwrites an existing key's value, returning false if absent.
func (h *Hybrid) Update(key, value uint64) bool {
	_, ok := h.Async(hds.Update, key, value).Wait()
	return ok
}

// Delete removes key, returning false if absent.
func (h *Hybrid) Delete(key uint64) bool {
	_, ok := h.Async(hds.Remove, key, 0).Wait()
	return ok
}

// barrier runs fn on partition p's store in request order (after every
// operation published before it) and waits for it. After Close it runs
// fn directly on the quiescent store.
func (h *Hybrid) barrier(p int, fn func(s Store)) {
	h.mu.RLock()
	if h.closed {
		defer h.mu.RUnlock()
		fn(h.parts[p].store)
		return
	}
	fut := newFuture()
	h.parts[p].reqs <- request{fut: fut, snap: fn}
	h.mu.RUnlock()
	fut.Wait()
}

// Rebalance swaps every partition's store for a fresh one built by
// factory, migrating the live contents — the native mirror of the
// simulated hybrids' boundary rebalance. Each partition's swap runs as a
// combiner barrier: it executes on the combiner goroutine in request
// order, so operations published before the swap apply to the old store
// and operations published after apply to the new one, with no request
// lost or reordered. Partitions migrate one after another, not
// atomically, exactly like Dump's visibility. Structural instruments of
// the new store re-register under the partition's existing metric names
// (registration is idempotent), so counters stay monotone across the
// swap. Rebalance fails after Close.
func (h *Hybrid) Rebalance(factory func(partition int) Store) error {
	if h.Closed() {
		return fmt.Errorf("core: rebalance after Close")
	}
	for p := range h.parts {
		part := h.parts[p]
		next := factory(p)
		h.barrier(p, func(old Store) {
			old.Ascend(0, func(k, v uint64) bool {
				next.Put(k, v)
				return true
			})
			part.store = next
			if ins, ok := next.(Instrumented); ok {
				ins.Instrument(h.reg, fmt.Sprintf("core/p%d/store", p))
			}
		})
	}
	return nil
}

// Len sums the partition store sizes. Each partition's count is read by
// its combiner in request order, so the result is a per-partition
// linearizable size (exact at quiescence).
func (h *Hybrid) Len() int {
	total := 0
	for p := range h.parts {
		h.barrier(p, func(s Store) { total += s.Len() })
	}
	return total
}

// Dump returns every stored pair in ascending key order. Partitions own
// contiguous key ranges, so concatenating per-partition ascents in
// partition order yields the global order. Each partition is read by its
// combiner in request order (exact at quiescence, e.g. after Close).
func (h *Hybrid) Dump() []KV {
	var out []KV
	for p := range h.parts {
		h.barrier(p, func(s Store) {
			s.Ascend(0, func(k, v uint64) bool {
				out = append(out, KV{Key: k, Value: v})
				return true
			})
		})
	}
	return out
}

// Scan returns up to limit pairs with keys >= from, in ascending key
// order. Partitions own contiguous key ranges, so the walk visits them in
// partition order and stops as soon as limit pairs are collected. Each
// partition is read by its combiner in request order (a barrier), so the
// result is per-partition linearizable: it observes every operation
// published to a partition before the scan reached it, but partitions are
// visited one after another, not atomically. from may be 0 (scan from the
// smallest key).
func (h *Hybrid) Scan(from uint64, limit int) []KV {
	return h.ScanAppend(nil, from, limit)
}

// ScanAppend is Scan appending into dst (which may be nil), returning the
// extended slice. Callers with a reusable buffer avoid Scan's per-call
// allocation; the pairs are appended after dst's existing contents.
func (h *Hybrid) ScanAppend(dst []KV, from uint64, limit int) []KV {
	if limit <= 0 {
		return dst
	}
	base := len(dst)
	for p := 0; p < len(h.parts) && len(dst)-base < limit; p++ {
		if hi := uint64(p+1) * h.span; from >= hi {
			continue // partition's whole key range lies below from
		}
		h.barrier(p, func(s Store) {
			s.Ascend(from, func(k, v uint64) bool {
				if len(dst)-base >= limit {
					return false
				}
				dst = append(dst, KV{Key: k, Value: v})
				return true
			})
		})
	}
	return dst
}

// Build populates the partition stores directly — in parallel, one
// goroutine per partition, bypassing the mailboxes — for untimed workload
// loading before concurrent use. It must not run concurrently with any
// operation. Duplicate keys keep the first pair.
func (h *Hybrid) Build(pairs []KV) {
	byPart := make([][]KV, len(h.parts))
	for _, kv := range pairs {
		p := h.Partition(kv.Key)
		byPart[p] = append(byPart[p], kv)
	}
	var wg sync.WaitGroup
	for p := range h.parts {
		if len(byPart[p]) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			part := h.parts[p]
			for _, kv := range byPart[p] {
				if part.store.Put(kv.Key, kv.Value) {
					part.cBuilt.Inc()
				}
			}
		}(p)
	}
	wg.Wait()
}

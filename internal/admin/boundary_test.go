package admin_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hybrids/internal/admin"
	"hybrids/internal/boundary"
	"hybrids/internal/cds"
	"hybrids/internal/core"
	"hybrids/internal/metrics"
	"hybrids/internal/server"
)

// newBoundaryHarness is newHarness plus a wired boundary manager: the
// Rebalance hook swaps every partition store to a B-skiplist of the
// requested height and publishes the split, mirroring hybridsd's funnel.
func newBoundaryHarness(t *testing.T, token string) (*harness, *boundary.Manager) {
	t.Helper()
	cfg := server.Config{Window: 4, Metrics: metrics.NewRegistry()}
	h := core.New(core.Config{Partitions: 2, KeyMax: 1 << 12})
	srv := server.New(h, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	mgr := boundary.NewManager(boundary.Static{}, boundary.Plan{Splits: map[string]boundary.Split{
		"bskiplist": {Total: 8, NMP: 2},
	}}, nil)
	rebalance := func(levels int) error {
		if err := h.Rebalance(func(int) core.Store { return cds.NewBSkipList(levels) }); err != nil {
			return err
		}
		mgr.Publish("bskiplist", boundary.Split{Total: levels, NMP: 2})
		return nil
	}
	adm := admin.New(admin.Config{
		Server:    srv,
		Hybrid:    h,
		Boundary:  mgr,
		Rebalance: rebalance,
		Token:     token,
		Static:    map[string]string{"addr": ln.Addr().String()},
	})
	web := httptest.NewServer(adm.Handler())
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		h.Close()
		web.Close()
	})
	return &harness{h: h, srv: srv, adm: adm, web: web, addr: ln.Addr().String()}, mgr
}

// postJSON POSTs body to path with optional bearer token, returning the
// status code and body.
func postJSON(t *testing.T, ha *harness, path, body, token string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ha.web.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// boundaryDoc mirrors the GET/POST /boundary response schema.
type boundaryDoc struct {
	Policy     string                    `json:"policy"`
	Epoch      uint64                    `json:"epoch"`
	Migrations uint64                    `json:"migrations"`
	Splits     map[string]boundary.Split `json:"splits"`
}

func TestBoundaryRoundTrip(t *testing.T) {
	ha, mgr := newBoundaryHarness(t, "")
	ha.load(t, 256)

	var before boundaryDoc
	ha.getJSON(t, "/boundary", &before)
	if before.Policy != "static" || before.Epoch != 0 {
		t.Fatalf("initial boundary: %+v", before)
	}
	if s := before.Splits["bskiplist"]; s.Total != 8 || s.NMP != 2 {
		t.Fatalf("initial split: %+v", s)
	}

	code, body := postJSON(t, ha, "/boundary", `{"levels": 12}`, "")
	if code != http.StatusOK {
		t.Fatalf("POST /boundary: %d\n%s", code, body)
	}
	var after boundaryDoc
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatalf("POST /boundary response: %v", err)
	}
	if after.Epoch != 1 || after.Migrations != 1 {
		t.Fatalf("after POST: %+v", after)
	}
	if s := after.Splits["bskiplist"]; s.Total != 12 || s.NMP != 2 {
		t.Fatalf("migrated split: %+v", s)
	}
	if mgr.Plan().Split("bskiplist").Total != 12 {
		t.Fatalf("manager plan not updated: %+v", mgr.Plan())
	}
	// The data plane survived the migration: every key is still served.
	if got := ha.h.Len(); got != 256 {
		t.Fatalf("Len = %d after migration, want 256", got)
	}

	// The boundary metrics land in the merged export.
	var md metricsDoc
	ha.getJSON(t, "/metrics.json", &md)
	if md.Counters["boundary/migrations"] != 1 || md.Counters["boundary/epoch"] != 1 {
		t.Fatalf("boundary counters not merged: %v", md.Counters)
	}

	// Malformed bodies are rejected without moving the epoch.
	if code, _ := postJSON(t, ha, "/boundary", `{"bogus": 1}`, ""); code != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", code)
	}
	if code, _ := postJSON(t, ha, "/boundary", `{}`, ""); code != http.StatusBadRequest {
		t.Fatalf("missing levels accepted: %d", code)
	}
	var final boundaryDoc
	ha.getJSON(t, "/boundary", &final)
	if final.Epoch != 1 {
		t.Fatalf("epoch moved on rejected POST: %d", final.Epoch)
	}
}

func TestBoundaryNotEnabled(t *testing.T) {
	ha := newHarness(t, server.Config{Window: 4},
		core.Config{Partitions: 2, KeyMax: 1 << 12})
	resp, err := http.Get(ha.web.URL + "/boundary")
	if err != nil {
		t.Fatalf("GET /boundary: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /boundary without a manager: %d, want 404", resp.StatusCode)
	}
	if code, _ := postJSON(t, ha, "/boundary", `{"levels": 8}`, ""); code != http.StatusNotFound {
		t.Fatalf("POST /boundary without a manager: %d, want 404", code)
	}
}

func TestAdminBearerToken(t *testing.T) {
	ha, _ := newBoundaryHarness(t, "s3cret")

	// Reads stay open.
	var doc boundaryDoc
	ha.getJSON(t, "/boundary", &doc)

	// Mutations without (or with the wrong) token are refused.
	for _, tok := range []string{"", "wrong"} {
		if code, _ := postJSON(t, ha, "/boundary", `{"levels": 12}`, tok); code != http.StatusUnauthorized {
			t.Fatalf("POST /boundary token %q: %d, want 401", tok, code)
		}
		if code, _ := postJSON(t, ha, "/config", `{"window": 2}`, tok); code != http.StatusUnauthorized {
			t.Fatalf("POST /config token %q: %d, want 401", tok, code)
		}
	}
	// A refused mutation changed nothing.
	ha.getJSON(t, "/boundary", &doc)
	if doc.Epoch != 0 {
		t.Fatalf("epoch moved on unauthorized POST: %d", doc.Epoch)
	}

	// The right token unlocks both mutating endpoints.
	if code, body := postJSON(t, ha, "/boundary", `{"levels": 12}`, "s3cret"); code != http.StatusOK {
		t.Fatalf("authorized POST /boundary: %d\n%s", code, body)
	}
	if code, body := postJSON(t, ha, "/config", `{"window": 2}`, "s3cret"); code != http.StatusOK {
		t.Fatalf("authorized POST /config: %d\n%s", code, body)
	}
}

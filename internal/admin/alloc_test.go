package admin_test

import (
	"testing"

	"hybrids/internal/core"
	"hybrids/internal/server"
)

// TestServePathAllocsWithAdmin re-pins the data plane's zero-allocation
// contract with the management plane enabled and scraping: steady-state
// pipelined operations still perform no heap allocation anywhere on the
// serving path while admin handlers have run (and continue to run
// between measured rounds). The scrapes themselves allocate — in the
// admin goroutine's HTTP machinery, off the data path — so they happen
// outside the measured rounds; what this test proves is that wiring the
// admin plane (tunables pointer load at accept, atomic batch-bucket
// cells, export hooks) costs the hot path nothing.
func TestServePathAllocsWithAdmin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	ha := newHarness(t, server.Config{Window: 16},
		core.Config{Partitions: 4, KeyMax: 1 << 16})

	// Exercise every admin endpoint first so their lazy initialization
	// (mux, encoders) is out of the way.
	for _, path := range []string{"/metrics", "/metrics.json", "/config", "/conns", "/partitions"} {
		ha.get(t, path)
	}

	cl, err := server.Dial(ha.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	const resident = 128
	for k := uint64(1); k <= resident; k++ {
		if ok, err := cl.Put(k, k*3); err != nil || !ok {
			t.Fatalf("preload Put(%d) = %v, %v", k, ok, err)
		}
	}

	const depth = 16
	reqs := make([]server.Request, depth)
	for i := range reqs {
		reqs[i] = server.Request{Op: server.OpGet, Key: uint64(i%resident) + 1}
	}
	round := func() {
		if err := cl.Send(reqs...); err != nil {
			t.Fatalf("send: %v", err)
		}
		for i := range reqs {
			resp, err := cl.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if resp.Status != server.StatusOK || resp.Value != reqs[i].Key*3 {
				t.Fatalf("get %d -> %+v", reqs[i].Key, resp)
			}
		}
	}
	for i := 0; i < 64; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Errorf("pipelined scalar round allocated %v times with admin enabled, want 0", avg)
	}

	// The plane is still live and consistent after the measurement.
	ha.get(t, "/metrics")
}

//go:build race

package admin_test

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (instrumentation
// allocates).
const raceEnabled = true

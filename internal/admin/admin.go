// Package admin is the HTTP management plane of the serving stack: a
// separate listener (never the data-plane port) exposing the full
// metrics registry as JSON and Prometheus text exposition format, live
// configuration introspection and reconfiguration, and per-connection /
// per-partition load introspection. It is the observability surface an
// operator (or a Prometheus scraper) reaches without speaking the binary
// protocol; docs/ADMIN.md is the endpoint reference.
//
// Every read goes through the race-free export hooks of the layers it
// fronts — server.Server.ExportMetrics / ConnsInfo (mutex + single-writer
// cells) and core.Hybrid.ExportMetrics / PartitionStats (combiner
// barriers) — so scraping a loaded server perturbs nothing on the data
// path and is safe under the race detector. The plane stays functional
// through and after a drain: the intended shutdown order is data-plane
// Shutdown, then Hybrid.Close, and only then Close on the admin listener,
// so the final folded counters remain scrapeable.
package admin

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hybrids/internal/boundary"
	"hybrids/internal/core"
	"hybrids/internal/metrics"
	"hybrids/internal/server"
)

// Config wires the management plane to the layers it introspects.
type Config struct {
	// Server is the data-plane server (required): metrics, live
	// connections, tunables.
	Server *server.Server
	// Hybrid is the partition runtime under the server (required):
	// per-partition metrics and snapshots.
	Hybrid *core.Hybrid
	// Boundary is the live host/NMP boundary manager (optional): it backs
	// GET/POST /boundary and contributes the boundary/* metric family to
	// the merged export. When nil the boundary endpoints answer 404.
	Boundary *boundary.Manager
	// Rebalance applies a boundary change to the running store (required
	// for POST /boundary): it validates levels against the engine,
	// migrates the partition stores and publishes the new plan.
	Rebalance func(levels int) error
	// Token, when set, is the bearer token every mutating endpoint (POST
	// /config, POST /boundary) requires via "Authorization: Bearer
	// <token>". Empty leaves the plane unauthenticated — acceptable only
	// on localhost binds.
	Token string
	// Static carries immutable startup facts (store engine, partitions,
	// data-plane address, ...) echoed by GET /config so an operator sees
	// the whole effective configuration in one place.
	Static map[string]string
}

// Server is the HTTP management plane. Construct with New, start with
// Serve or ListenAndServe, stop with Close. Handlers are safe for
// concurrent use and remain usable after the data plane has drained.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
}

// New builds the management plane over cfg.
func New(cfg Config) *Server {
	a := &Server{cfg: cfg, mux: http.NewServeMux()}
	a.mux.HandleFunc("GET /", a.handleIndex)
	a.mux.HandleFunc("GET /metrics", a.handleProm)
	a.mux.HandleFunc("GET /metrics.json", a.handleMetricsJSON)
	a.mux.HandleFunc("GET /config", a.handleConfigGet)
	a.mux.HandleFunc("POST /config", a.auth(a.handleConfigPost))
	a.mux.HandleFunc("GET /boundary", a.handleBoundaryGet)
	a.mux.HandleFunc("POST /boundary", a.auth(a.handleBoundaryPost))
	a.mux.HandleFunc("GET /conns", a.handleConns)
	a.mux.HandleFunc("GET /partitions", a.handlePartitions)
	return a
}

// auth wraps a mutating handler with the bearer-token check. With no
// token configured the handler runs as-is; with one, requests must carry
// "Authorization: Bearer <token>" (compared in constant time).
func (a *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if a.cfg.Token != "" {
			const prefix = "Bearer "
			got := r.Header.Get("Authorization")
			if !strings.HasPrefix(got, prefix) ||
				subtle.ConstantTimeCompare([]byte(got[len(prefix):]), []byte(a.cfg.Token)) != 1 {
				http.Error(w, "admin: missing or invalid bearer token", http.StatusUnauthorized)
				return
			}
		}
		next(w, r)
	}
}

// Handler returns the plane's HTTP handler (for tests and embedding).
func (a *Server) Handler() http.Handler { return a.mux }

// ListenAndServe listens on the TCP address addr (bind it to localhost
// unless the network is trusted — the plane is unauthenticated) and
// serves until Close. Returns nil after a Close-initiated shutdown.
func (a *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return a.Serve(ln)
}

// Serve serves the management plane on ln until Close.
func (a *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: a.mux, ReadHeaderTimeout: 5 * time.Second}
	a.mu.Lock()
	a.ln, a.http = ln, srv
	a.mu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the listener's address (nil before Serve), letting tests
// bind port 0 and dial back.
func (a *Server) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Close shuts the management listener down. In a full drain it runs
// last — after the data plane's Shutdown and the hybrid map's Close — so
// the final counters stay scrapeable until the very end.
func (a *Server) Close() error {
	a.mu.Lock()
	srv := a.http
	a.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// export merges the server-plane, core-plane and boundary metric exports
// into one namespace: every counter and histogram a hybridsd registry
// carries.
func (a *Server) export() (metrics.Snapshot, []metrics.HistSnapshot) {
	counters, hists := a.cfg.Server.ExportMetrics()
	coreCounters, coreHists := a.cfg.Hybrid.ExportMetrics()
	for name, v := range coreCounters {
		counters[name] = v
	}
	hists = append(hists, coreHists...)
	if a.cfg.Boundary != nil {
		bCounters, bHists := a.cfg.Boundary.Export()
		for name, v := range bCounters {
			counters[name] = v
		}
		hists = append(hists, bHists...)
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return counters, hists
}

// handleIndex lists the plane's endpoints.
func (a *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "hybridsd management plane (docs/ADMIN.md)\n\n"+
		"GET  /metrics       Prometheus text exposition\n"+
		"GET  /metrics.json  full registry as JSON\n"+
		"GET  /config        live + static configuration\n"+
		"POST /config        live reconfiguration (partial JSON)\n"+
		"GET  /boundary      live host/NMP boundary plan\n"+
		"POST /boundary      migrate the boundary without restart\n"+
		"GET  /conns         per-connection introspection\n"+
		"GET  /partitions    per-partition introspection\n")
}

// handleProm serves the Prometheus text exposition of the merged
// registry export.
func (a *Server) handleProm(w http.ResponseWriter, _ *http.Request) {
	counters, hists := a.export()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, a.cfg.Server.Store(), counters, hists)
}

// jsonHist is one histogram's JSON rendering.
type jsonHist struct {
	// Sum is the total of observed samples.
	Sum uint64 `json:"sum"`
	// Count is the number of observed samples.
	Count uint64 `json:"count"`
	// Mean is Sum/Count (0 when empty).
	Mean float64 `json:"mean"`
	// Buckets counts samples by bit length: Buckets[i] holds samples in
	// [2^(i-1), 2^i), Buckets[0] counts zeros. Trailing zero buckets are
	// trimmed.
	Buckets []uint64 `json:"buckets"`
}

// metricsDoc is the /metrics.json response body.
type metricsDoc struct {
	// Store is the configured engine name (omitted when unset).
	Store string `json:"store,omitempty"`
	// Counters maps registry counter name to value (histogram sum/count
	// components excluded — see Histograms).
	Counters metrics.Snapshot `json:"counters"`
	// Histograms maps registry histogram name to its state.
	Histograms map[string]jsonHist `json:"histograms"`
}

// handleMetricsJSON serves the merged registry export as JSON.
func (a *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	counters, hists := a.export()
	doc := metricsDoc{
		Store:      a.cfg.Server.Store(),
		Counters:   counters,
		Histograms: make(map[string]jsonHist, len(hists)),
	}
	for _, h := range hists {
		hi := len(h.Buckets)
		for hi > 0 && h.Buckets[hi-1] == 0 {
			hi--
		}
		doc.Histograms[h.Name] = jsonHist{
			Sum:     h.Sum,
			Count:   h.Count,
			Mean:    h.Mean(),
			Buckets: append([]uint64(nil), h.Buckets[:hi]...),
		}
	}
	writeJSON(w, doc)
}

// configDoc is the GET /config response body and, with every field
// optional, the POST /config request body (absent fields keep their
// current value). Durations are Go duration strings ("10s", "1.5ms");
// negative write_timeout disables write deadlines, "0s" slow_op disables
// slow-op sampling.
type configDoc struct {
	// Window is the per-connection request coalescing window.
	Window *int `json:"window,omitempty"`
	// Inflight is the per-connection in-flight response budget.
	Inflight *int `json:"inflight,omitempty"`
	// MaxConns caps concurrently served connections (0 = unlimited).
	MaxConns *int `json:"maxconns,omitempty"`
	// WriteTimeout is the slow-client write deadline.
	WriteTimeout *string `json:"write_timeout,omitempty"`
	// SlowOp is the slow-op logging threshold.
	SlowOp *string `json:"slow_op,omitempty"`
	// ConfigEpoch counts successful reconfigurations (response only).
	ConfigEpoch *uint64 `json:"config_epoch,omitempty"`
	// Static echoes the immutable startup facts (response only).
	Static map[string]string `json:"static,omitempty"`
}

// configResponse renders the server's current tunables (plus epoch and
// static facts) as a configDoc.
func (a *Server) configResponse() configDoc {
	t := a.cfg.Server.Tunables()
	wt, so := t.WriteTimeout.String(), t.SlowOp.String()
	counters, _ := a.cfg.Server.ExportMetrics()
	epoch := counters["server/config_epoch"]
	return configDoc{
		Window:       &t.Window,
		Inflight:     &t.Inflight,
		MaxConns:     &t.MaxConns,
		WriteTimeout: &wt,
		SlowOp:       &so,
		ConfigEpoch:  &epoch,
		Static:       a.cfg.Static,
	}
}

// handleConfigGet serves the live + static configuration.
func (a *Server) handleConfigGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, a.configResponse())
}

// handleConfigPost applies a partial reconfiguration: fields present in
// the body overlay the current tunables, the result is validated and
// atomically published (server.SetTunables), and the new effective
// configuration is returned. New data-plane connections pick the values
// up immediately; established connections keep the tunables they were
// accepted under.
func (a *Server) handleConfigPost(w http.ResponseWriter, r *http.Request) {
	var req configDoc
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "config: "+err.Error(), http.StatusBadRequest)
		return
	}
	t := a.cfg.Server.Tunables()
	if req.Window != nil {
		t.Window = *req.Window
	}
	if req.Inflight != nil {
		t.Inflight = *req.Inflight
	} else if req.Window != nil {
		t.Inflight = 0 // re-derive the default budget from the new window
	}
	if req.MaxConns != nil {
		t.MaxConns = *req.MaxConns
	}
	if req.WriteTimeout != nil {
		d, err := time.ParseDuration(*req.WriteTimeout)
		if err != nil {
			http.Error(w, "config: write_timeout: "+err.Error(), http.StatusBadRequest)
			return
		}
		t.WriteTimeout = d
	}
	if req.SlowOp != nil {
		d, err := time.ParseDuration(*req.SlowOp)
		if err != nil {
			http.Error(w, "config: slow_op: "+err.Error(), http.StatusBadRequest)
			return
		}
		t.SlowOp = d
	}
	if _, err := a.cfg.Server.SetTunables(t); err != nil {
		http.Error(w, "config: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, a.configResponse())
}

// boundaryDoc is the GET /boundary and POST /boundary response body.
type boundaryDoc struct {
	// Policy is the boundary policy name ("static", "adaptive").
	Policy string `json:"policy"`
	// Epoch counts boundary publications (0 = the startup plan).
	Epoch uint64 `json:"epoch"`
	// Migrations counts publications that moved a split.
	Migrations uint64 `json:"migrations"`
	// Splits maps engine name to its live host/NMP split.
	Splits map[string]boundary.Split `json:"splits"`
}

// boundaryResponse renders the live boundary plan.
func (a *Server) boundaryResponse() boundaryDoc {
	plan := a.cfg.Boundary.Plan()
	return boundaryDoc{
		Policy:     a.cfg.Boundary.Policy().Name(),
		Epoch:      plan.Epoch,
		Migrations: a.cfg.Boundary.Migrations(),
		Splits:     plan.Splits,
	}
}

// handleBoundaryGet serves the live boundary plan.
func (a *Server) handleBoundaryGet(w http.ResponseWriter, _ *http.Request) {
	if a.cfg.Boundary == nil {
		http.Error(w, "boundary: not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, a.boundaryResponse())
}

// boundaryPostDoc is the POST /boundary request body.
type boundaryPostDoc struct {
	// Levels is the requested total level count for the serving engine;
	// the engine's NMP floor stays pinned, so raising levels grows the
	// host portion.
	Levels *int `json:"levels"`
}

// handleBoundaryPost migrates the host/NMP boundary of the running store
// without restart: the configured Rebalance hook validates the level
// count against the engine, migrates every partition through its
// combiner barrier and publishes the new plan. The response is the plan
// of record after the move.
func (a *Server) handleBoundaryPost(w http.ResponseWriter, r *http.Request) {
	if a.cfg.Boundary == nil || a.cfg.Rebalance == nil {
		http.Error(w, "boundary: not enabled", http.StatusNotFound)
		return
	}
	var req boundaryPostDoc
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "boundary: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Levels == nil {
		http.Error(w, "boundary: levels is required", http.StatusBadRequest)
		return
	}
	if err := a.cfg.Rebalance(*req.Levels); err != nil {
		http.Error(w, "boundary: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, a.boundaryResponse())
}

// handleConns serves the live connection table.
func (a *Server) handleConns(w http.ResponseWriter, _ *http.Request) {
	infos := a.cfg.Server.ConnsInfo()
	if infos == nil {
		infos = []server.ConnInfo{}
	}
	writeJSON(w, infos)
}

// handlePartitions serves every partition's snapshot, in partition
// order (each read through its combiner barrier — see
// core.Hybrid.PartitionStats).
func (a *Server) handlePartitions(w http.ResponseWriter, _ *http.Request) {
	h := a.cfg.Hybrid
	out := make([]core.PartitionStats, h.Partitions())
	for p := range out {
		out[p] = h.PartitionStats(p)
	}
	writeJSON(w, out)
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

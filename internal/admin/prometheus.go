package admin

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hybrids/internal/metrics"
)

// Prometheus text exposition (version 0.0.4) for the hybrids metrics
// registry, hand-rolled on the std lib: one metric family per registry
// counter, one histogram family per registry histogram. Registry names
// are slash-separated paths; Prometheus names must match
// [a-zA-Z_:][a-zA-Z0-9_:]* — promName maps "server/ops/get" to
// "hybrids_server_ops_get". The registry's power-of-two shape buckets
// (bucket i counts samples of bit length i, i.e. values in
// [2^(i-1), 2^i), bucket 0 counts zeros) become cumulative le bounds:
// bucket i's inclusive upper edge is 2^i - 1.

// promName mangles a registry path into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("hybrids_") + len(name))
	b.WriteString("hybrids_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeProm writes the full exposition: a build-info style gauge naming
// the store engine, every counter as a counter family, every histogram
// as a histogram family.
func writeProm(w io.Writer, store string, counters metrics.Snapshot, hists []metrics.HistSnapshot) {
	fmt.Fprintf(w, "# HELP hybrids_server_info Static server facts as labels.\n")
	fmt.Fprintf(w, "# TYPE hybrids_server_info gauge\n")
	fmt.Fprintf(w, "hybrids_server_info{store=%q} 1\n", store)

	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# HELP %s Registry counter %s (docs/METRICS.md).\n", pn, name)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, counters[name])
	}
	for _, h := range hists {
		writePromHist(w, h)
	}
}

// writePromHist writes one registry histogram as a Prometheus histogram
// family: cumulative le buckets at the power-of-two edges (trimmed to
// the highest populated bucket), +Inf, then _sum and _count.
func writePromHist(w io.Writer, h metrics.HistSnapshot) {
	pn := promName(h.Name)
	fmt.Fprintf(w, "# HELP %s Registry histogram %s (docs/METRICS.md).\n", pn, h.Name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	hi := len(h.Buckets)
	for hi > 0 && h.Buckets[hi-1] == 0 {
		hi--
	}
	var cum uint64
	for i := 0; i < hi; i++ {
		cum += h.Buckets[i]
		// Bucket i counts values of bit length i, so its inclusive upper
		// bound is 2^i - 1 (le="0" for the zero bucket).
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, (uint64(1)<<i)-1, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
	fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
}

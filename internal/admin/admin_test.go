package admin_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hybrids/internal/admin"
	"hybrids/internal/core"
	"hybrids/internal/metrics"
	"hybrids/internal/server"
)

// harness is a full serving stack — hybrid map, data-plane server on a
// loopback port, admin plane over httptest — for management-plane tests.
type harness struct {
	h    *core.Hybrid
	srv  *server.Server
	adm  *admin.Server
	web  *httptest.Server
	addr string // data-plane address
}

// newHarness starts the stack; Cleanup drains it in production order
// (data plane, map, admin last).
func newHarness(t *testing.T, cfg server.Config, hcfg core.Config) *harness {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	h := core.New(hcfg)
	srv := server.New(h, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	adm := admin.New(admin.Config{
		Server: srv,
		Hybrid: h,
		Static: map[string]string{"addr": ln.Addr().String()},
	})
	web := httptest.NewServer(adm.Handler())
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		h.Close()
		web.Close()
	})
	return &harness{h: h, srv: srv, adm: adm, web: web, addr: ln.Addr().String()}
}

// get fetches path from the admin plane and returns the body.
func (ha *harness) get(t *testing.T, path string) []byte {
	t.Helper()
	resp, err := http.Get(ha.web.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
	}
	return body
}

// getJSON fetches path and decodes it into out.
func (ha *harness) getJSON(t *testing.T, path string, out any) {
	t.Helper()
	if err := json.Unmarshal(ha.get(t, path), out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// postConfig POSTs body to /config and returns status code and body.
func (ha *harness) postConfig(t *testing.T, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ha.web.URL+"/config", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /config: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// metricsDoc mirrors the /metrics.json schema.
type metricsDoc struct {
	Store      string            `json:"store"`
	Counters   map[string]uint64 `json:"counters"`
	Histograms map[string]struct {
		Sum     uint64   `json:"sum"`
		Count   uint64   `json:"count"`
		Mean    float64  `json:"mean"`
		Buckets []uint64 `json:"buckets"`
	} `json:"histograms"`
}

// promFamily is one parsed metric family from the text exposition.
type promFamily struct {
	typ     string
	samples map[string]float64 // sample suffix+labels -> value
}

// parseProm is a hand-rolled validator for the Prometheus text
// exposition format (version 0.0.4): it checks line grammar, metric-name
// syntax, that every sample's family has a preceding TYPE line, and for
// histograms that buckets are cumulative, end at +Inf, and agree with
// _count. It returns the families keyed by base name.
func parseProm(t *testing.T, text []byte) map[string]*promFamily {
	t.Helper()
	nameOK := func(s string) bool {
		for i := 0; i < len(s); i++ {
			c := s[i]
			alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
			if !alpha && (i == 0 || c < '0' || c > '9') {
				return false
			}
		}
		return len(s) > 0
	}
	families := make(map[string]*promFamily)
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			b := strings.TrimSuffix(name, suf)
			if b != name {
				if f, ok := families[b]; ok && f.typ == "histogram" {
					return b
				}
			}
		}
		return name
	}
	for ln, line := range strings.Split(string(text), "\n") {
		lno := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", lno, line)
			}
			if !nameOK(f[2]) {
				t.Fatalf("line %d: bad metric name %q", lno, f[2])
			}
			if f[1] == "TYPE" {
				if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
					t.Fatalf("line %d: bad TYPE line %q", lno, line)
				}
				if _, dup := families[f[2]]; dup {
					t.Fatalf("line %d: duplicate TYPE for %q", lno, f[2])
				}
				families[f[2]] = &promFamily{typ: f[3], samples: map[string]float64{}}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", lno, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", lno, valStr, err)
		}
		name := key
		if br := strings.IndexByte(key, '{'); br >= 0 {
			name = key[:br]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated labels %q", lno, key)
			}
		}
		if !nameOK(name) {
			t.Fatalf("line %d: bad metric name %q", lno, name)
		}
		fam, ok := families[base(name)]
		if !ok {
			t.Fatalf("line %d: sample %q has no TYPE line", lno, name)
		}
		if _, dup := fam.samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", lno, key)
		}
		fam.samples[key] = val
	}
	for name, fam := range families {
		if fam.typ != "histogram" {
			if len(fam.samples) == 0 {
				t.Fatalf("family %q has no samples", name)
			}
			continue
		}
		count, ok := fam.samples[name+"_count"]
		if !ok {
			t.Fatalf("histogram %q missing _count", name)
		}
		if _, ok := fam.samples[name+"_sum"]; !ok {
			t.Fatalf("histogram %q missing _sum", name)
		}
		inf, ok := fam.samples[name+`_bucket{le="+Inf"}`]
		if !ok {
			t.Fatalf("histogram %q missing +Inf bucket", name)
		}
		if inf != count {
			t.Fatalf("histogram %q: +Inf bucket %v != count %v", name, inf, count)
		}
		// Cumulative buckets must be non-decreasing in le order.
		type edge struct {
			le  float64
			cum float64
		}
		var edges []edge
		for key, v := range fam.samples {
			pre := name + `_bucket{le="`
			if strings.HasPrefix(key, pre) && !strings.Contains(key, "+Inf") {
				le, err := strconv.ParseFloat(strings.TrimSuffix(key[len(pre):], `"}`), 64)
				if err != nil {
					t.Fatalf("histogram %q: bad le in %q: %v", name, key, err)
				}
				edges = append(edges, edge{le, v})
			}
		}
		for i := range edges {
			for j := range edges {
				if edges[i].le < edges[j].le && edges[i].cum > edges[j].cum {
					t.Fatalf("histogram %q: bucket le=%v (%v) > le=%v (%v): not cumulative",
						name, edges[i].le, edges[i].cum, edges[j].le, edges[j].cum)
				}
			}
		}
	}
	return families
}

// load runs n pipelined PUT+GET pairs through a fresh data-plane
// connection so counters and histograms are non-trivial.
func (ha *harness) load(t *testing.T, n int) {
	t.Helper()
	c, err := server.Dial(ha.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	for i := 1; i <= n; i++ {
		if _, err := c.Put(uint64(i), uint64(i*10)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
		if _, _, err := c.Get(uint64(i)); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
}

// TestPromExposition validates /metrics as Prometheus text exposition
// and cross-checks it against /metrics.json: every counter and histogram
// in the JSON export must appear in the text exposition with a matching
// value.
func TestPromExposition(t *testing.T) {
	ha := newHarness(t, server.Config{Store: "btree", Window: 4},
		core.Config{Partitions: 2, KeyMax: 1 << 12})
	ha.load(t, 64)

	var doc metricsDoc
	ha.getJSON(t, "/metrics.json", &doc)
	if doc.Store != "btree" {
		t.Fatalf("store = %q, want btree", doc.Store)
	}
	if doc.Counters["server/requests"] == 0 || doc.Counters["core/p0/ops"] == 0 {
		t.Fatalf("expected non-zero server and core counters, got %v", doc.Counters)
	}

	fams := parseProm(t, ha.get(t, "/metrics"))
	if _, ok := fams["hybrids_server_info"]; !ok {
		t.Fatalf("missing hybrids_server_info gauge")
	}
	mangle := func(name string) string {
		return "hybrids_" + strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
				return r
			}
			return '_'
		}, name)
	}
	// Scraping itself runs combiner barriers, which count as combine
	// rounds — so core/* instruments may advance between the two
	// endpoint reads. Exact match for the quiesced server/* metrics,
	// monotonic (text scraped second, so >=) for core/*.
	for name, v := range doc.Counters {
		fam, ok := fams[mangle(name)]
		if !ok {
			t.Fatalf("counter %q (%s) absent from /metrics", name, mangle(name))
		}
		if fam.typ != "counter" {
			t.Fatalf("counter %q exposed as %s", name, fam.typ)
		}
		got := fam.samples[mangle(name)]
		if strings.HasPrefix(name, "core/") && got >= float64(v) {
			continue
		}
		if got != float64(v) {
			t.Fatalf("counter %q: /metrics %v != /metrics.json %d", name, got, v)
		}
	}
	for name, h := range doc.Histograms {
		fam, ok := fams[mangle(name)]
		if !ok {
			t.Fatalf("histogram %q absent from /metrics", name)
		}
		if fam.typ != "histogram" {
			t.Fatalf("histogram %q exposed as %s", name, fam.typ)
		}
		got := fam.samples[mangle(name)+"_count"]
		if strings.HasPrefix(name, "core/") && got >= float64(h.Count) {
			continue
		}
		if got != float64(h.Count) {
			t.Fatalf("histogram %q: /metrics count %v != /metrics.json %d", name, got, h.Count)
		}
	}
	if _, ok := fams[mangle("server/batch")]; !ok {
		t.Fatalf("server/batch histogram missing from exposition")
	}
}

// TestConfigRoundTrip proves live reconfiguration: a window change
// POSTed to /config is visible in GET /config, bumps the config epoch,
// and takes effect on the next data-plane connection — observed both in
// /conns (the connection reports the new window) and in behavior (with
// window 1 every coalesced batch has size 1).
func TestConfigRoundTrip(t *testing.T) {
	ha := newHarness(t, server.Config{Window: 8},
		core.Config{Partitions: 2, KeyMax: 1 << 12})

	var before struct {
		Window      int    `json:"window"`
		ConfigEpoch uint64 `json:"config_epoch"`
	}
	ha.getJSON(t, "/config", &before)
	if before.Window != 8 {
		t.Fatalf("initial window = %d, want 8", before.Window)
	}

	code, body := ha.postConfig(t, `{"window": 1}`)
	if code != http.StatusOK {
		t.Fatalf("POST /config: %d\n%s", code, body)
	}
	var after struct {
		Window      int    `json:"window"`
		Inflight    int    `json:"inflight"`
		ConfigEpoch uint64 `json:"config_epoch"`
	}
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatalf("POST /config response: %v", err)
	}
	if after.Window != 1 || after.ConfigEpoch != before.ConfigEpoch+1 {
		t.Fatalf("after POST: window %d epoch %d, want 1 and %d",
			after.Window, after.ConfigEpoch, before.ConfigEpoch+1)
	}
	if after.Inflight != 4 {
		t.Fatalf("inflight = %d, want 4 (re-derived from new window)", after.Inflight)
	}

	// A connection dialed after the POST runs with the new window: eight
	// pipelined requests arrive as eight size-1 batches, never coalesced.
	c, err := server.Dial(ha.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	reqs := make([]server.Request, 8)
	for i := range reqs {
		reqs[i] = server.Request{Op: server.OpPut, Key: uint64(i + 1), Value: 1}
	}
	if _, err := c.Pipeline(reqs); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var conns []server.ConnInfo
	ha.getJSON(t, "/conns", &conns)
	if len(conns) != 1 {
		t.Fatalf("got %d conns, want 1", len(conns))
	}
	ci := conns[0]
	if ci.Window != 1 {
		t.Fatalf("conn window = %d, want 1", ci.Window)
	}
	if ci.Batches != 8 || ci.BatchOps != 8 {
		t.Fatalf("conn batches/batch_ops = %d/%d, want 8/8 (window 1 forbids coalescing)",
			ci.Batches, ci.BatchOps)
	}

	// Invalid configurations are rejected without touching the epoch.
	if code, _ := ha.postConfig(t, `{"window": 1000000}`); code != http.StatusBadRequest {
		t.Fatalf("oversized window accepted: %d", code)
	}
	if code, _ := ha.postConfig(t, `{"bogus": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", code)
	}
	var final struct {
		ConfigEpoch uint64 `json:"config_epoch"`
	}
	ha.getJSON(t, "/config", &final)
	if final.ConfigEpoch != after.ConfigEpoch {
		t.Fatalf("epoch moved on rejected POST: %d -> %d", after.ConfigEpoch, final.ConfigEpoch)
	}
}

// TestPartitionsEndpoint checks /partitions: one snapshot per partition,
// in order, with op counts and store sizes reflecting the traffic.
func TestPartitionsEndpoint(t *testing.T) {
	ha := newHarness(t, server.Config{Window: 4},
		core.Config{Partitions: 4, KeyMax: 1 << 12})
	ha.load(t, 128)

	var parts []core.PartitionStats
	ha.getJSON(t, "/partitions", &parts)
	if len(parts) != 4 {
		t.Fatalf("got %d partitions, want 4", len(parts))
	}
	var ops, stored uint64
	for i, p := range parts {
		if p.Partition != i {
			t.Fatalf("partition %d reports index %d", i, p.Partition)
		}
		ops += p.Ops
		stored += uint64(p.StoreLen)
	}
	if ops == 0 || stored != 128 {
		t.Fatalf("ops=%d stored=%d, want non-zero ops and 128 stored", ops, stored)
	}
}

// TestScrapeUnderLoad races every admin endpoint against live data-plane
// traffic; run under -race it proves the management plane never touches
// combiner-owned or connection-owned state without synchronization.
func TestScrapeUnderLoad(t *testing.T) {
	ha := newHarness(t, server.Config{Window: 4},
		core.Config{Partitions: 2, KeyMax: 1 << 12})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := server.Dial(ha.addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (seed*1_000_003+i)%((1<<12)-1) + 1
				if _, err := c.Put(k, i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, err := c.Get(k); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(uint64(w + 1))
	}
	for i := 0; i < 30; i++ {
		for _, path := range []string{"/metrics", "/metrics.json", "/conns", "/partitions", "/config"} {
			ha.get(t, path)
		}
		if i%10 == 0 {
			if code, body := ha.postConfig(t, fmt.Sprintf(`{"window": %d}`, 2+i%7)); code != http.StatusOK {
				t.Fatalf("POST /config under load: %d\n%s", code, body)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestAdminSurvivesDrain proves the documented shutdown order: after the
// data plane has drained and the hybrid map has closed, the admin plane
// still serves the final folded totals on every endpoint.
func TestAdminSurvivesDrain(t *testing.T) {
	h := core.New(core.Config{Partitions: 2, KeyMax: 1 << 12})
	srv := server.New(h, server.Config{Window: 4, Metrics: metrics.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	adm := admin.New(admin.Config{Server: srv, Hybrid: h})
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("admin listen: %v", err)
	}
	admDone := make(chan error, 1)
	go func() { admDone <- adm.Serve(aln) }()

	c, err := server.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for i := uint64(1); i <= 32; i++ {
		if _, err := c.Put(i, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	c.Close()

	// Production shutdown order: data plane, map, admin last.
	srv.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	h.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + aln.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s after drain: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s after drain: %s", path, resp.Status)
		}
		return body
	}
	var doc metricsDoc
	if err := json.Unmarshal(get("/metrics.json"), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Counters["server/requests"] != 32 {
		t.Fatalf("drained server/requests = %d, want 32", doc.Counters["server/requests"])
	}
	if !bytes.Contains(get("/metrics"), []byte("hybrids_server_requests 32")) {
		t.Fatalf("drained exposition missing folded request total")
	}
	var parts []core.PartitionStats
	if err := json.Unmarshal(get("/partitions"), &parts); err != nil {
		t.Fatalf("decode partitions: %v", err)
	}
	total := 0
	for _, p := range parts {
		total += p.StoreLen
	}
	if total != 32 {
		t.Fatalf("drained store total = %d, want 32", total)
	}

	if err := adm.Close(); err != nil {
		t.Fatalf("admin close: %v", err)
	}
	if err := <-admDone; err != nil {
		t.Fatalf("admin serve: %v", err)
	}
}

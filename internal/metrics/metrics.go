// Package metrics implements the unified instrumentation registry shared
// by every layer of the simulator: the discrete-event engine, the memory
// system, the NMP offload runtime and the data structures all register
// named counters and histograms in one per-machine Registry, and the
// experiment harness measures phases by snapshot/delta over that single
// namespace instead of ad-hoc per-subsystem stat structs.
//
// Instrumentation is pure Go-side bookkeeping: it never advances virtual
// time, so adding or reading metrics cannot perturb simulated behaviour.
// A Registry is intended for single-goroutine use (the engine runs exactly
// one actor at a time); it is not synchronized.
//
// Concurrent layers (the serving data plane) do not touch registry
// instruments on their hot paths at all: each connection accumulates into
// Local cells — single-writer atomics it owns — and folds the totals into
// the shared registry only when it retires (Counter.Add plus
// Histogram.Fold). A snapshotter that wants a live view sums the registry
// base with Local.Load over the live owners; the fold API keeps the two
// layers consistent without a lock anywhere near the data path.
package metrics

import (
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing named event count.
type Counter struct {
	name string
	v    uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// NumBuckets is the number of shape buckets a Histogram keeps: one per
// possible uint64 bit length (bucket 0 counts zero samples). Local
// accumulators that are folded with Histogram.Fold size their bucket
// arrays with it.
const NumBuckets = 65

// Histogram accumulates a distribution of uint64 samples: total sum and
// count (registered in the owning Registry as "<name>/sum" and
// "<name>/count", so snapshots carry them) plus power-of-two buckets for
// shape. Sum/count is exactly the representation the paper's Table 2
// delay decomposition needs (mean = sum/count over a measured phase).
type Histogram struct {
	name    string
	sum     *Counter
	count   *Counter
	buckets [NumBuckets]uint64 // buckets[i] counts samples of bit-length i
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.sum.Add(v)
	h.count.Inc()
	h.buckets[bitLen(v)]++
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Value() }

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Value() }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.Count() == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(h.Count())
}

// Bucket returns the count of samples with bit-length i (i.e. in
// [2^(i-1), 2^i) for i>0; bucket 0 counts zero samples).
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Fold adds a locally accumulated distribution into the histogram: sum
// and count go to the backing counters, buckets element-wise into the
// shape buckets. Owners of Local accumulators call it once when they
// retire, so a distribution observed off-registry (e.g. per-connection)
// lands in the registry exactly as if every sample had been Observed.
// A nil buckets folds sum/count only.
func (h *Histogram) Fold(sum, count uint64, buckets *[NumBuckets]uint64) {
	h.sum.Add(sum)
	h.count.Add(count)
	if buckets != nil {
		for i, b := range buckets {
			h.buckets[i] += b
		}
	}
}

// BucketIndex returns the bucket a sample falls in (its bit length), so
// local accumulators can bucket samples exactly as Observe would.
func BucketIndex(v uint64) int { return bitLen(v) }

func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// Local is a single-writer counter cell for hot-path accumulation
// outside the registry: exactly one goroutine increments it, while any
// goroutine may Load a consistent snapshot concurrently. It is the
// building block for per-connection (or per-core) metric accumulators
// that fold into shared registry Counters only when the owner retires —
// the data path then performs no shared-memory read-modify-write beyond
// its own cacheline. Group Locals with Pad so independent writers never
// share a line.
type Local struct{ v atomic.Uint64 }

// Inc adds one to the cell.
func (l *Local) Inc() { l.v.Add(1) }

// Add adds n to the cell.
func (l *Local) Add(n uint64) { l.v.Add(n) }

// Load returns the cell's current value. Safe from any goroutine.
func (l *Local) Load() uint64 { return l.v.Load() }

// Pad is one cache line of padding. Interleave it between groups of
// Locals owned by different goroutines to prevent false sharing.
type Pad [64]byte

// Registry is a flat namespace of counters and histograms. Registration is
// idempotent: asking for an existing name returns the same instrument, so
// independent subsystems can share partition- or core-scoped metrics
// without coordination.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Histogram returns the histogram registered under name, creating it (and
// its backing <name>/sum and <name>/count counters) on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name:  name,
		sum:   r.Counter(name + "/sum"),
		count: r.Counter(name + "/count"),
	}
	r.hists[name] = h
	return h
}

// Names returns every registered counter name in sorted order
// (deterministic across runs).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HistNames returns every registered histogram name in sorted order.
func (r *Registry) HistNames() []string {
	out := make([]string, 0, len(r.hists))
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LookupCounter returns the counter registered under name without
// creating it. Unlike Counter it never mutates the registry, so it is
// safe to call concurrently with other lookups once registration has
// quiesced (all instruments are created at construction time).
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	c, ok := r.counters[name]
	return c, ok
}

// LookupHistogram returns the histogram registered under name without
// creating it (see LookupCounter for the concurrency contract).
func (r *Registry) LookupHistogram(name string) (*Histogram, bool) {
	h, ok := r.hists[name]
	return h, ok
}

// IsHistComponent reports whether counter name is the backing /sum or
// /count counter of a registered histogram. Exporters use it to avoid
// double-reporting a histogram's sum and count as free-standing
// counters.
func (r *Registry) IsHistComponent(name string) bool {
	for _, suffix := range [...]string{"/sum", "/count"} {
		if base, ok := cutSuffix(name, suffix); ok {
			if _, isHist := r.hists[base]; isHist {
				return true
			}
		}
	}
	return false
}

// cutSuffix returns s without the suffix and whether it was present.
func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// HistSnapshot is a point-in-time copy of one histogram: its sum, count
// and power-of-two shape buckets. It is the unit management-plane
// exporters carry histogram state in (Prometheus mapping, JSON
// introspection), keeping the type distinction between counters and
// histograms that a flat Snapshot loses.
type HistSnapshot struct {
	// Name is the histogram's registered name.
	Name string
	// Sum is the total of all observed samples.
	Sum uint64
	// Count is the number of observed samples.
	Count uint64
	// Buckets counts samples by bit length (Buckets[i] holds samples in
	// [2^(i-1), 2^i); Buckets[0] counts zeros).
	Buckets [NumBuckets]uint64
}

// Mean returns the snapshot's average sample, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{Name: h.name, Sum: h.Sum(), Count: h.Count(), Buckets: h.buckets}
}

// Export is a typed point-in-time copy of a whole registry: plain
// counters (histogram /sum and /count components excluded) plus every
// histogram with its shape. Unlike Snapshot, an Export carries enough
// type information to map instruments onto exposition formats that
// distinguish counters from histograms.
type Export struct {
	// Counters holds every free-standing counter's value.
	Counters Snapshot
	// Hists holds every histogram's snapshot, sorted by name.
	Hists []HistSnapshot
}

// Export captures the registry's typed state. Like Snapshot it must not
// race instrument writers: call it from the owning goroutine, or from a
// context that has synchronized with every writer (the serving layers
// export through their own synchronized wrappers instead).
func (r *Registry) Export() Export {
	out := Export{Counters: make(Snapshot, len(r.counters))}
	for name, c := range r.counters {
		if r.IsHistComponent(name) {
			continue
		}
		out.Counters[name] = c.v
	}
	out.Hists = make([]HistSnapshot, 0, len(r.hists))
	for _, name := range r.HistNames() {
		out.Hists = append(out.Hists, r.hists[name].Snapshot())
	}
	return out
}

// Snapshot captures every counter's current value.
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.v
	}
	return out
}

// Snapshot is a point-in-time copy of a registry's counters, used for
// phase measurement via Sub deltas.
type Snapshot map[string]uint64

// Get returns the snapshot value of name (0 when absent).
func (s Snapshot) Get(name string) uint64 { return s[name] }

// Sub returns s - prev element-wise. Counters absent from prev are taken
// as 0 (registered mid-phase); counters absent from s are dropped.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for name, v := range s {
		out[name] = v - prev[name]
	}
	return out
}

// Names returns the snapshot's counter names in sorted order.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s))
	for name := range s {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

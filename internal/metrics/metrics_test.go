package metrics

import (
	"reflect"
	"testing"
)

func TestCounterRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x/y")
	b := r.Counter("x/y")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("value = %d, want 3", a.Value())
	}
	if a.Name() != "x/y" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestSnapshotSubDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(10)
	start := r.Snapshot()
	c.Add(5)
	d := r.Counter("late") // registered mid-phase
	d.Inc()
	delta := r.Snapshot().Sub(start)
	if delta.Get("a") != 5 {
		t.Fatalf("delta a = %d, want 5", delta.Get("a"))
	}
	if delta.Get("late") != 1 {
		t.Fatalf("delta late = %d, want 1", delta.Get("late"))
	}
	if delta.Get("missing") != 0 {
		t.Fatal("absent counter should read 0")
	}
}

func TestNamesSortedDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m/1", "m/0"} {
		r.Counter(n)
	}
	want := []string{"a", "m/0", "m/1", "z"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	if got := snap.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot().Names() = %v, want %v", got, want)
	}
}

func TestHistogramSumCountBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if h != r.Histogram("lat") {
		t.Fatal("histogram registration not idempotent")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if got := h.Mean(); got != 106.0/5 {
		t.Fatalf("mean = %v", got)
	}
	// buckets: 0 -> bitlen 0; 1 -> 1; 2,3 -> 2; 100 -> 7
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 7: 1} {
		if h.Bucket(i) != want {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), want)
		}
	}
	// The backing counters appear in snapshots.
	snap := r.Snapshot()
	if snap.Get("lat/sum") != 106 || snap.Get("lat/count") != 5 {
		t.Fatalf("snapshot sum/count = %d/%d", snap.Get("lat/sum"), snap.Get("lat/count"))
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	if m := NewRegistry().Histogram("x").Mean(); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}

// TestHistogramFoldMatchesObserve checks the fold API's contract: a
// distribution accumulated off-registry and folded once must be
// indistinguishable from the same samples Observed directly.
func TestHistogramFoldMatchesObserve(t *testing.T) {
	samples := []uint64{0, 1, 2, 3, 100, 1 << 40}
	direct := NewRegistry().Histogram("h")
	for _, v := range samples {
		direct.Observe(v)
	}

	var sum, count uint64
	var buckets [NumBuckets]uint64
	for _, v := range samples {
		sum += v
		count++
		buckets[BucketIndex(v)]++
	}
	folded := NewRegistry().Histogram("h")
	folded.Fold(sum, count, &buckets)

	if folded.Sum() != direct.Sum() || folded.Count() != direct.Count() {
		t.Fatalf("fold sum/count = %d/%d, observe = %d/%d",
			folded.Sum(), folded.Count(), direct.Sum(), direct.Count())
	}
	for i := 0; i < NumBuckets; i++ {
		if folded.Bucket(i) != direct.Bucket(i) {
			t.Fatalf("bucket %d: fold %d, observe %d", i, folded.Bucket(i), direct.Bucket(i))
		}
	}

	// A nil bucket fold adds sum/count only.
	folded.Fold(10, 2, nil)
	if folded.Sum() != direct.Sum()+10 || folded.Count() != direct.Count()+2 {
		t.Fatalf("nil-bucket fold sum/count = %d/%d", folded.Sum(), folded.Count())
	}
}

// TestLocalConcurrentLoad checks the Local cell's single-writer
// contract: one goroutine increments while another loads, and the final
// value is exact.
func TestLocalConcurrentLoad(t *testing.T) {
	var l Local
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			l.Inc()
			l.Add(2)
		}
	}()
	for l.Load() < 100 { // concurrent reads observe monotonic progress
	}
	<-done
	if got := l.Load(); got != 3000 {
		t.Fatalf("Local total = %d, want 3000", got)
	}
}

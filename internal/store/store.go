// Package store is the engine registry: the single place a concurrent
// ordered-map implementation is wired into the repository's two stacks.
// Each Engine names one structure and declares how to build it natively
// (a core.Store factory for the goroutine-combiner runtime) and how to
// build its simulated HybriDS hybrid (host portion + NMP portion behind
// the shared offload runtime). Every consumer — cmd/hybridsd's -store
// flag, the native benchmark grids, the simulated experiment grids and
// the cross-stack conformance suite — resolves engines only through
// Engines/Lookup, so adding a structure is a one-package change: implement
// the structure, append an Engine here, and it appears in the daemon, both
// benchmark stacks and the conformance tests with no per-consumer code.
package store

import (
	"sort"

	"hybrids/internal/boundary"
	"hybrids/internal/core"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/metrics"
	"hybrids/internal/sim/machine"
	"hybrids/internal/ycsb"
)

// Tuning carries the per-engine knobs a daemon flag maps onto uniformly.
type Tuning struct {
	// Levels caps the native structure height (skiplist tower levels,
	// B-skiplist list levels); 0 picks the engine's default. Engines
	// whose height follows from fan-out (the B+ tree) ignore it.
	Levels int
}

// SimParams fixes every engine's simulated sizing in one value, mirroring
// the exp.Scale fields experiment grids sweep. Engines read only their
// own fields, so one SimParams parameterizes any engine's hybrid.
type SimParams struct {
	// SkiplistRecords, SkiplistLevels and SkiplistNMPLevels size the
	// hybrid skiplist (records, tower levels, NMP-side bottom levels).
	SkiplistRecords   int
	SkiplistLevels    int
	SkiplistNMPLevels int

	// BTreeRecords, BTreeFill and BTreeNMPLevels size the hybrid B+ tree
	// (records, bulk-load fill per node, NMP-side level count).
	BTreeRecords   int
	BTreeFill      int
	BTreeNMPLevels int

	// BSkiplistRecords, BSkiplistLevels, BSkiplistNMPLevels and
	// BSkiplistFill size the hybrid B-skiplist (records, list levels,
	// NMP-side bottom levels, bulk-load entries per fat node).
	BSkiplistRecords   int
	BSkiplistLevels    int
	BSkiplistNMPLevels int
	BSkiplistFill      int

	// KeyMax bounds the key space for range partitioning.
	KeyMax uint32
	// Window is the non-blocking in-flight budget per host thread
	// (1 = blocking behaviour).
	Window int
	// Seed feeds deterministic structure randomness (tower heights) and,
	// offset per phase, bulk-load randomness.
	Seed uint64
}

// KV is one key-value pair of a simulated hybrid's contents.
type KV struct {
	// Key is the pair's key.
	Key uint32
	// Value is the pair's value.
	Value uint32
}

// SimHybrid is the simulated face of an engine: a HybriDS hybrid on the
// cycle-level machine, driveable by the experiment harness and the
// conformance suite without knowing the concrete structure.
type SimHybrid interface {
	kv.Store
	kv.AsyncStore
	// Build bulk-loads the initial pairs (untimed). Call before Start.
	Build(load []ycsb.Pair)
	// Start spawns the NMP combiner daemons. Call once before Machine.Run.
	Start()
	// Dump returns the final contents in ascending key order (untimed).
	Dump() []KV
	// CheckInvariants validates structural invariants at quiescence.
	CheckInvariants() error
	// Metrics returns the owning machine's metrics registry.
	Metrics() *metrics.Registry
	// Split returns the hybrid's current host/NMP boundary.
	Split() boundary.Split
	// Rebalance moves the host/NMP boundary to next at quiescence: a
	// drained-epoch rebuild that relinks the structure at the new split
	// and retargets the running combiner daemons. Callers must guarantee
	// no requests are posted or in flight.
	Rebalance(next boundary.Split) error
}

// Engine is one registered structure: everything a consumer needs to
// build it on either stack.
type Engine struct {
	// Name is the engine's registry key (-store flag value, experiment
	// ID suffix, STATS label).
	Name string
	// Desc is a short human label ("B+ tree") for titles and help text.
	Desc string
	// NewNative returns the per-partition store factory the native
	// runtime (internal/core) consumes.
	NewNative func(t Tuning) func(partition int) core.Store
	// SimTuning maps simulated sizing onto the native Tuning knobs, so
	// native grids derive per-engine tuning from an experiment Scale.
	SimTuning func(p SimParams) Tuning
	// NewSimHybrid builds the engine's simulated hybrid on m, sized by p.
	// The result is not yet loaded or started.
	NewSimHybrid func(m *machine.Machine, p SimParams) SimHybrid
	// SimRecords returns the engine's simulated load-set size under p.
	SimRecords func(p SimParams) int
	// SimSplit returns the engine's host/NMP boundary under p — the same
	// split NewSimHybrid starts from, for consumers that plan boundary
	// moves.
	SimSplit func(p SimParams) boundary.Split
	// MinLevels is the smallest -levels value the engine accepts (0 = the
	// engine derives its height from fan-out and ignores -levels). It is
	// NMPFloor plus at least one host level.
	MinLevels int
	// DefaultLevels is the level cap used when Tuning.Levels is unset
	// (0 = height derived from fan-out).
	DefaultLevels int
	// NMPFloor is the number of bottom levels that must stay NMP-side,
	// the floor a daemon boundary plan's NMP component is pinned to.
	NMPFloor int
}

// NativeSplit maps a native Tuning onto the engine's boundary split:
// Total from the level cap (engine default when unset), NMP pinned at the
// engine's floor.
func (e Engine) NativeSplit(t Tuning) boundary.Split {
	levels := t.Levels
	if levels <= 0 {
		levels = e.DefaultLevels
	}
	return boundary.Split{Total: levels, NMP: e.NMPFloor}
}

// Engines returns every registered engine in registration order (the
// presentation order of grids and help text).
func Engines() []Engine {
	return []Engine{btreeEngine(), skiplistEngine(), bskiplistEngine()}
}

// Names returns the registered engine names in sorted order, for flag
// help and error messages.
func Names() []string {
	var out []string
	for _, e := range Engines() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the engine registered under name.
func Lookup(name string) (Engine, bool) {
	for _, e := range Engines() {
		if e.Name == name {
			return e, true
		}
	}
	return Engine{}, false
}

// MustEngine returns the engine registered under name, panicking on an
// unknown name — for callers whose names are compiled in.
func MustEngine(name string) Engine {
	e, ok := Lookup(name)
	if !ok {
		panic("store: unknown engine " + name)
	}
	return e
}

package store

import (
	"fmt"
	"sync"
	"testing"

	"hybrids/internal/boundary"
	"hybrids/internal/core"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/hds"
	"hybrids/internal/prng"
	"hybrids/internal/sim/machine"
	"hybrids/internal/ycsb"
)

// Conformance suite: every registered engine must (a) agree with a
// sequential map oracle natively, with structural invariants intact,
// (b) converge to identical final contents on the native runtime and the
// cycle-level simulator for the same operation streams under every call
// discipline — the registry's semantic contract — and (c) keep its native
// Get path within the core.Future allocation discipline. A new engine
// passes this suite by being registered; nothing here names a structure.

const (
	confThreads   = 2
	confPerThread = 120
	confKeyMax    = 1 << 12
)

// confParams sizes every engine small enough for simulated test machines
// while keeping a real host/NMP split.
func confParams(window int) SimParams {
	return SimParams{
		SkiplistRecords: 1 << 10, SkiplistLevels: 9, SkiplistNMPLevels: 4,
		BTreeRecords: 1 << 10, BTreeFill: 8, BTreeNMPLevels: 2,
		BSkiplistRecords: 1 << 10, BSkiplistLevels: 5, BSkiplistNMPLevels: 2, BSkiplistFill: 8,
		KeyMax: confKeyMax, Window: window, Seed: 7,
	}
}

func confMachine() *machine.Machine {
	cfg := machine.Default()
	cfg.Mem.HostMemSize = 16 << 20
	cfg.Mem.NMPMemSize = 16 << 20
	cfg.Mem.L2.Size = 64 << 10
	cfg.Mem.L1.Size = 8 << 10
	return machine.New(cfg)
}

// confData returns the initial contents (even keys) and per-thread op
// streams. Each stream position touches its own key — inserts use fresh
// odd keys, removes/updates/reads target distinct initial even keys — so
// the final state is completion-order-independent and any interleaving of
// the streams must converge to the same contents.
func confData() (pairs []ycsb.Pair, streams [][]kv.Op) {
	total := confThreads * confPerThread
	for i := 1; i <= total; i++ {
		pairs = append(pairs, ycsb.Pair{Key: uint32(2 * i), Value: uint32(2*i + 7)})
	}
	streams = make([][]kv.Op, confThreads)
	for th := 0; th < confThreads; th++ {
		for i := 0; i < confPerThread; i++ {
			idx := th*confPerThread + i
			even := uint32(2 * (idx + 1))
			odd := uint32(2*idx + 1)
			var op kv.Op
			switch i % 4 {
			case 0:
				op = kv.Op{Kind: kv.Insert, Key: odd, Value: odd * 3}
			case 1:
				op = kv.Op{Kind: kv.Remove, Key: even}
			case 2:
				op = kv.Op{Kind: kv.Update, Key: even, Value: even * 5}
			default:
				op = kv.Op{Kind: kv.Read, Key: even}
			}
			streams[th] = append(streams[th], op)
		}
	}
	return pairs, streams
}

// simDump drives confData's streams against an engine's simulated hybrid
// (blocking or windowed) and returns the drained final contents.
func simDump(t *testing.T, e Engine, window int, async bool) []KV {
	t.Helper()
	pairs, streams := confData()
	m := confMachine()
	s := e.NewSimHybrid(m, confParams(window))
	s.Build(pairs)
	s.Start()
	for th := range streams {
		th := th
		m.SpawnHost(th, "drv", func(c *machine.Ctx) {
			if async {
				s.ApplyBatch(c, th, streams[th])
			} else {
				for _, op := range streams[th] {
					s.Apply(c, th, op)
				}
			}
		})
	}
	m.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("%s sim invariants (window=%d async=%v): %v", e.Name, window, async, err)
	}
	return s.Dump()
}

// nativeDump runs the same streams against the real runtime — one
// goroutine per stream, blocking (window<=1) or windowed non-blocking —
// and returns the drained final contents.
func nativeDump(t *testing.T, e Engine, window int) []core.KV {
	t.Helper()
	pairs, streams := confData()
	h := core.New(core.Config{
		Partitions: 4, KeyMax: confKeyMax,
		NewStore: e.NewNative(Tuning{}),
	})
	load := make([]core.KV, len(pairs))
	for i, p := range pairs {
		load[i] = core.KV{Key: uint64(p.Key), Value: uint64(p.Value)}
	}
	h.Build(load)
	var wg sync.WaitGroup
	for th := range streams {
		ops := make([]hds.Request, len(streams[th]))
		for i, op := range streams[th] {
			ops[i] = hds.Request{Kind: op.Kind, Key: uint64(op.Key), Value: uint64(op.Value)}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if window > 1 {
				h.ApplyBatch(ops, window)
				return
			}
			for _, req := range ops {
				h.Apply(req)
			}
		}()
	}
	wg.Wait()
	h.Close()
	return h.Dump()
}

// TestEngineNativeSequentialOracle drives a deterministic mixed stream
// against each engine's bare native store and a map oracle, then checks
// structural invariants where the store exposes them.
func TestEngineNativeSequentialOracle(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			s := e.NewNative(Tuning{})(0)
			oracle := map[uint64]uint64{}
			rng := prng.New(4242)
			for i := 0; i < 30_000; i++ {
				key := uint64(rng.Uint32()%4096 + 1)
				val := uint64(rng.Uint32())
				switch rng.Intn(4) {
				case 0:
					wantV, want := oracle[key]
					gotV, got := s.Get(key)
					if got != want || (got && gotV != wantV) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, key, gotV, got, wantV, want)
					}
				case 1:
					_, exists := oracle[key]
					if got := s.Put(key, val); got != !exists {
						t.Fatalf("op %d: Put(%d) = %v, oracle exists=%v", i, key, got, exists)
					}
					if !exists {
						oracle[key] = val
					}
				case 2:
					_, exists := oracle[key]
					if got := s.Update(key, val); got != exists {
						t.Fatalf("op %d: Update(%d) = %v, oracle exists=%v", i, key, got, exists)
					}
					if exists {
						oracle[key] = val
					}
				default:
					_, exists := oracle[key]
					if got := s.Delete(key); got != exists {
						t.Fatalf("op %d: Delete(%d) = %v, oracle exists=%v", i, key, got, exists)
					}
					delete(oracle, key)
				}
			}
			if s.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", s.Len(), len(oracle))
			}
			if inv, ok := s.(interface{ CheckInvariants() error }); ok {
				if err := inv.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			} else {
				t.Errorf("%s native store exposes no CheckInvariants", e.Name)
			}
		})
	}
}

// TestEngineCrossStackEquivalence runs the same operation streams through
// each engine's simulated hybrid (blocking) and its native runtime at
// blocking and windowed disciplines; all final contents must match pair
// for pair.
func TestEngineCrossStackEquivalence(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			sim := simDump(t, e, 1, false)
			if len(sim) == 0 {
				t.Fatal("empty simulated dump")
			}
			for _, window := range []int{1, 4} {
				got := nativeDump(t, e, window)
				if len(got) != len(sim) {
					t.Fatalf("window %d: native %d pairs, sim %d", window, len(got), len(sim))
				}
				for i := range sim {
					if got[i].Key != uint64(sim[i].Key) || got[i].Value != uint64(sim[i].Value) {
						t.Fatalf("window %d: pair %d native=%+v sim=%+v", window, i, got[i], sim[i])
					}
				}
			}
		})
	}
}

// TestEngineSimWindowEquivalence checks that each engine's simulated
// hybrid converges to the blocking contents at every window depth.
func TestEngineSimWindowEquivalence(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			want := simDump(t, e, 1, false)
			for _, w := range []int{2, 4} {
				got := simDump(t, e, w, true)
				if len(got) != len(want) {
					t.Fatalf("window %d: %d pairs, want %d", w, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("window %d: pair %d = %+v, want %+v", w, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// migrationSplits returns an engine's forced boundary trajectory: push a
// level NMP-side, pull back below the base split, then return to base —
// two to three live migrations bracketing the configured boundary.
func migrationSplits(base boundary.Split) []boundary.Split {
	lower := base.NMP - 1
	if lower < 1 {
		lower = 1
	}
	if base.Total <= 0 {
		// Derived-height engines: the conformance-scale tree is only one
		// level taller than its NMP portion, so exercise the
		// down-and-back arc instead of growing the NMP side.
		return []boundary.Split{{NMP: lower}, base}
	}
	return []boundary.Split{
		{Total: base.Total, NMP: base.NMP + 1},
		{Total: base.Total, NMP: lower},
		base,
	}
}

// migrationDump drives confData's streams against an engine's simulated
// hybrid with a forced Rebalance between each stream segment, and
// returns the drained final contents. Each boundary move runs as a
// drained epoch inside the single Machine.Run: every driver finishes its
// segment's calls and parks at a rendezvous, so no request is posted or
// in flight when thread 0 — the last to pass the arrival barrier —
// relinks the structure and releases the others.
func migrationDump(t *testing.T, e Engine, window int, async bool) []KV {
	t.Helper()
	pairs, streams := confData()
	m := confMachine()
	p := confParams(window)
	s := e.NewSimHybrid(m, p)
	s.Build(pairs)
	s.Start()

	splits := migrationSplits(e.SimSplit(p))
	for _, sp := range splits {
		if sp.Total > 0 {
			if err := sp.Validate(); err != nil {
				t.Fatalf("%s migration split %+v: %v", e.Name, sp, err)
			}
		}
	}
	phases := len(splits)
	seg := confPerThread / (phases + 1)
	arrived := make([]int, phases)
	released := make([]bool, phases)
	var rebErr error
	for th := range streams {
		th := th
		m.SpawnHost(th, "drv", func(c *machine.Ctx) {
			for b := 0; b <= phases; b++ {
				lo := b * seg
				hi := lo + seg
				if b == phases {
					hi = len(streams[th])
				}
				if async {
					s.ApplyBatch(c, th, streams[th][lo:hi])
				} else {
					for _, op := range streams[th][lo:hi] {
						s.Apply(c, th, op)
					}
				}
				if b == phases {
					return
				}
				arrived[b]++
				if th == 0 {
					for arrived[b] < len(streams) {
						c.Step(64)
					}
					// Quiescent: every driver has completed its segment's
					// calls and is spinning below; move the boundary.
					if err := s.Rebalance(splits[b]); err != nil && rebErr == nil {
						rebErr = fmt.Errorf("rebalance %d to %+v: %w", b, splits[b], err)
					}
					released[b] = true
				} else {
					for !released[b] {
						c.Step(64)
					}
				}
			}
		})
	}
	m.Run()
	if rebErr != nil {
		t.Fatalf("%s: %v", e.Name, rebErr)
	}
	if got := s.Split(); got != splits[phases-1] {
		t.Fatalf("%s final split %+v, want %+v", e.Name, got, splits[phases-1])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("%s invariants after migration (window=%d async=%v): %v", e.Name, window, async, err)
	}
	return s.Dump()
}

// TestEngineMigrationUnderLoad forces several live boundary migrations
// into the middle of each engine's mixed operation streams, at both call
// disciplines, and requires the final contents to be byte-identical to
// the single-split run of the same streams — a boundary move must never
// lose, duplicate or corrupt a pair — with structural invariants intact
// at the final split.
func TestEngineMigrationUnderLoad(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			for _, d := range []struct {
				window int
				async  bool
			}{{1, false}, {4, true}} {
				want := simDump(t, e, d.window, d.async)
				got := migrationDump(t, e, d.window, d.async)
				if len(got) != len(want) {
					t.Fatalf("window=%d async=%v: %d pairs after migration, want %d", d.window, d.async, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("window=%d async=%v: pair %d = %+v, want %+v", d.window, d.async, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestEngineGetAllocs bounds every engine's native Get-path allocations at
// one per operation, matching the core runtime's one-Future-per-call
// discipline (the B-skiplist's fat-node descent allocates nothing).
func TestEngineGetAllocs(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			s := e.NewNative(Tuning{})(0)
			for k := uint64(1); k <= 4096; k++ {
				s.Put(k, k*3)
			}
			key := uint64(1)
			allocs := testing.AllocsPerRun(1000, func() {
				s.Get(key)
				key = key%4096 + 1
			})
			if allocs > 1 {
				t.Fatalf("Get allocates %.1f objects/op, want <= 1", allocs)
			}
		})
	}
}

package store

import (
	"hybrids/internal/boundary"
	"hybrids/internal/cds"
	"hybrids/internal/core"
	"hybrids/internal/dsim/bskiplist"
	"hybrids/internal/dsim/btree"
	"hybrids/internal/dsim/skiplist"
	"hybrids/internal/metrics"
	"hybrids/internal/sim/machine"
	"hybrids/internal/ycsb"
)

// defaultSkipLevels is the native skiplist height cap when Tuning.Levels
// is unset — tall enough for any daemon-scale key population.
const defaultSkipLevels = 16

// skipStore adapts cds.SkipList to the core.Store interface (Insert vs
// Put naming).
type skipStore struct{ s *cds.SkipList }

func (s skipStore) Get(k uint64) (uint64, bool)                   { return s.s.Get(k) }
func (s skipStore) Put(k, v uint64) bool                          { return s.s.Insert(k, v) }
func (s skipStore) Update(k, v uint64) bool                       { return s.s.Update(k, v) }
func (s skipStore) Delete(k uint64) bool                          { return s.s.Delete(k) }
func (s skipStore) Len() int                                      { return s.s.Len() }
func (s skipStore) Ascend(from uint64, fn func(k, v uint64) bool) { s.s.Ascend(from, fn) }

// Instrument forwards to the underlying skiplist's structural counters,
// so skiplist partitions register under core/p<i>/store like any other
// engine (core.Instrumented).
func (s skipStore) Instrument(reg *metrics.Registry, prefix string) { s.s.Instrument(reg, prefix) }

// CheckInvariants forwards the skiplist's quiescent structural check, so
// the conformance suite sees it through the core.Store value.
func (s skipStore) CheckInvariants() error { return s.s.CheckInvariants() }

// --- B+ tree --------------------------------------------------------------

// simBTree wraps the simulated hybrid B+ tree as a SimHybrid: Build
// captures the engine's bulk-load fill, Dump converts to registry pairs.
type simBTree struct {
	*btree.Hybrid
	fill int
}

// Build bulk-loads the initial pairs at the configured fill (untimed).
func (s simBTree) Build(load []ycsb.Pair) {
	pairs := make([]btree.KV, len(load))
	for i, p := range load {
		pairs[i] = btree.KV{Key: p.Key, Value: p.Value}
	}
	s.Hybrid.Build(pairs, s.fill)
}

// Dump returns the final contents in ascending key order (untimed).
func (s simBTree) Dump() []KV {
	var out []KV
	for _, p := range s.Hybrid.Dump() {
		out = append(out, KV{Key: p.Key, Value: p.Value})
	}
	return out
}

func btreeEngine() Engine {
	return Engine{
		Name: "btree",
		Desc: "B+ tree",
		NewNative: func(Tuning) func(int) core.Store {
			return func(int) core.Store { return cds.NewBTree() }
		},
		SimTuning: func(SimParams) Tuning { return Tuning{} },
		NewSimHybrid: func(m *machine.Machine, p SimParams) SimHybrid {
			h := btree.NewHybrid(m, btree.HybridBTreeConfig{
				Split: btreeEngine().SimSplit(p), Window: p.Window,
			})
			return simBTree{Hybrid: h, fill: p.BTreeFill}
		},
		SimRecords: func(p SimParams) int { return p.BTreeRecords },
		SimSplit:   func(p SimParams) boundary.Split { return boundary.Split{NMP: p.BTreeNMPLevels} },
		NMPFloor:   1,
	}
}

// --- Skiplist -------------------------------------------------------------

// simSkiplist wraps the simulated hybrid skiplist as a SimHybrid: Build
// captures the load-phase seed convention (structure seed + 1).
type simSkiplist struct {
	*skiplist.Hybrid
	seed uint64
}

// Build bulk-loads the initial pairs (untimed), deriving tower heights
// from the load-phase seed.
func (s simSkiplist) Build(load []ycsb.Pair) {
	pairs := make([]skiplist.KV, len(load))
	for i, p := range load {
		pairs[i] = skiplist.KV{Key: p.Key, Value: p.Value}
	}
	s.Hybrid.Build(pairs, s.seed+1)
}

// Dump returns the final contents in ascending key order (untimed).
func (s simSkiplist) Dump() []KV {
	var out []KV
	for _, p := range s.Hybrid.Dump() {
		out = append(out, KV{Key: p.Key, Value: p.Value})
	}
	return out
}

func skiplistEngine() Engine {
	return Engine{
		Name: "skiplist",
		Desc: "skiplist",
		NewNative: func(t Tuning) func(int) core.Store {
			levels := t.Levels
			if levels <= 0 {
				levels = defaultSkipLevels
			}
			return func(int) core.Store { return skipStore{cds.NewSkipList(levels)} }
		},
		SimTuning: func(p SimParams) Tuning { return Tuning{Levels: p.SkiplistLevels} },
		NewSimHybrid: func(m *machine.Machine, p SimParams) SimHybrid {
			h := skiplist.NewHybrid(m, skiplist.HybridConfig{
				Split:  skiplistEngine().SimSplit(p),
				KeyMax: p.KeyMax, Window: p.Window, Seed: p.Seed,
			})
			return simSkiplist{Hybrid: h, seed: p.Seed}
		},
		SimRecords: func(p SimParams) int { return p.SkiplistRecords },
		SimSplit: func(p SimParams) boundary.Split {
			return boundary.Split{Total: p.SkiplistLevels, NMP: p.SkiplistNMPLevels}
		},
		MinLevels:     5,
		DefaultLevels: defaultSkipLevels,
		NMPFloor:      4,
	}
}

// --- B-skiplist -----------------------------------------------------------

// simBSkiplist wraps the simulated hybrid B-skiplist as a SimHybrid; its
// Dump already returns registry-shaped pairs, so only Build adapts.
type simBSkiplist struct {
	*bskiplist.Hybrid
}

// Build bulk-loads the initial pairs (untimed).
func (s simBSkiplist) Build(load []ycsb.Pair) {
	pairs := make([]bskiplist.KV, len(load))
	for i, p := range load {
		pairs[i] = bskiplist.KV{Key: p.Key, Value: p.Value}
	}
	s.Hybrid.Build(pairs)
}

// Dump returns the final contents in ascending key order (untimed).
func (s simBSkiplist) Dump() []KV {
	var out []KV
	for _, p := range s.Hybrid.Dump() {
		out = append(out, KV{Key: p.Key, Value: p.Value})
	}
	return out
}

func bskiplistEngine() Engine {
	return Engine{
		Name: "bskiplist",
		Desc: "cache-conscious B-skiplist",
		NewNative: func(t Tuning) func(int) core.Store {
			return func(int) core.Store { return cds.NewBSkipList(t.Levels) }
		},
		SimTuning: func(p SimParams) Tuning { return Tuning{Levels: p.BSkiplistLevels} },
		NewSimHybrid: func(m *machine.Machine, p SimParams) SimHybrid {
			h := bskiplist.NewHybrid(m, bskiplist.Config{
				Split: bskiplistEngine().SimSplit(p),
				Fill:  p.BSkiplistFill, KeyMax: p.KeyMax, Window: p.Window,
			})
			return simBSkiplist{Hybrid: h}
		},
		SimRecords: func(p SimParams) int { return p.BSkiplistRecords },
		SimSplit: func(p SimParams) boundary.Split {
			return boundary.Split{Total: p.BSkiplistLevels, NMP: p.BSkiplistNMPLevels}
		},
		MinLevels:     3,
		DefaultLevels: 16,
		NMPFloor:      2,
	}
}

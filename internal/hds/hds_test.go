package hds

import (
	"strings"
	"testing"
)

// fakePort is a pure-Go Port: Post records the request per slot, the test
// marks completions explicitly, ReadResponse echoes the request key back.
type fakePort struct {
	slots   int
	req     []uint64
	posted  []bool
	done    []bool
	watches int
}

func newFakePort(slots int) *fakePort {
	return &fakePort{
		slots:  slots,
		req:    make([]uint64, slots),
		posted: make([]bool, slots),
		done:   make([]bool, slots),
	}
}

func (p *fakePort) Slots() int { return p.slots }

func (p *fakePort) Post(_ struct{}, slot int, req uint64) {
	if p.posted[slot] {
		panic("fakePort: double post")
	}
	p.posted[slot] = true
	p.req[slot] = req
}

func (p *fakePort) Done(_ struct{}, slot int) bool { return p.done[slot] }

func (p *fakePort) ReadResponse(_ struct{}, slot int) uint64 {
	p.posted[slot] = false
	p.done[slot] = false
	return p.req[slot] + 1000
}

func (p *fakePort) Watch(_ struct{}, slot int) { p.watches++ }

func (p *fakePort) complete(slot int) {
	if !p.posted[slot] {
		panic("fakePort: complete on empty slot")
	}
	p.done[slot] = true
}

func ports(ps ...*fakePort) []Port[struct{}, uint64, uint64] {
	out := make([]Port[struct{}, uint64, uint64], len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Read:    "read",
		Update:  "update",
		Insert:  "insert",
		Remove:  "remove",
		Scan:    "scan",
		Kind(9): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestWindowPostHarvestRoundTrip(t *testing.T) {
	p := newFakePort(8)
	w := NewWindow(0, 4, ports(p), nil)
	if !w.Empty() || w.Full() || w.Len() != 0 {
		t.Fatalf("fresh window: Empty=%v Full=%v Len=%d", w.Empty(), w.Full(), w.Len())
	}
	pos := w.Post(struct{}{}, 0, 7, "a")
	if pos != 0 {
		t.Fatalf("first Post used position %d, want 0", pos)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d after one Post, want 1", w.Len())
	}
	if _, _, _, ok := w.TryHarvest(struct{}{}); ok {
		t.Fatal("TryHarvest succeeded before completion")
	}
	p.complete(w.SlotFor(pos))
	tag, resp, hpos, ok := w.TryHarvest(struct{}{})
	if !ok || tag != "a" || resp != 1007 || hpos != pos {
		t.Fatalf("TryHarvest = (%v, %d, %d, %v), want (a, 1007, %d, true)", tag, resp, hpos, ok, pos)
	}
	if !w.Empty() {
		t.Fatal("window not empty after harvest")
	}
}

func TestWindowRoundRobinCursor(t *testing.T) {
	p := newFakePort(8)
	w := NewWindow(0, 4, ports(p), nil)
	for i := uint64(0); i < 4; i++ {
		w.Post(struct{}{}, 0, i, i)
	}
	if !w.Full() {
		t.Fatal("window not full after k posts")
	}
	// Complete all; harvest order must follow the round-robin cursor.
	for i := 0; i < 4; i++ {
		p.complete(w.SlotFor(i))
	}
	for i := uint64(0); i < 4; i++ {
		tag, _, _, ok := w.TryHarvest(struct{}{})
		if !ok || tag != i {
			t.Fatalf("harvest %d = (%v, %v), want in round-robin order", i, tag, ok)
		}
	}
}

func TestWindowHarvestParksUntilCompletion(t *testing.T) {
	p := newFakePort(8)
	w := NewWindow(0, 2, ports(p), func(struct{}) {
		// The park hook stands in for blocking: complete slot 1 so the
		// next poll round finds it.
		p.complete(1)
	})
	w.Post(struct{}{}, 0, 10, "x")
	w.Post(struct{}{}, 0, 11, "y")
	tag, _, _ := w.Harvest(struct{}{})
	if tag != "y" {
		t.Fatalf("Harvest tag = %v, want y (slot 1 completed)", tag)
	}
	if p.watches == 0 {
		t.Fatal("Harvest registered no watchers before parking")
	}
}

func TestWindowPostAtKeepsSlot(t *testing.T) {
	p0, p1 := newFakePort(8), newFakePort(8)
	w := NewWindow(1, 2, ports(p0, p1), nil)
	pos := w.Post(struct{}{}, 0, 5, "op")
	p0.complete(w.SlotFor(pos))
	_, _, hpos, ok := w.TryHarvest(struct{}{})
	if !ok || hpos != pos {
		t.Fatalf("harvest pos = %d ok=%v, want %d", hpos, ok, pos)
	}
	// Follow-up reuses the same window position on another partition.
	w.PostAt(struct{}{}, pos, 1, 6, "op2")
	if got := w.SlotFor(pos); !p1.posted[got] {
		t.Fatalf("follow-up not posted at slot %d of partition 1", got)
	}
}

func TestWindowPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	p := newFakePort(4)
	expectPanic("zero window", func() { NewWindow(0, 0, ports(p), nil) })
	expectPanic("slots exceeded", func() { NewWindow(1, 4, ports(p), nil) })
	w := NewWindow(0, 2, ports(p), nil)
	w.Post(struct{}{}, 0, 1, nil)
	w.Post(struct{}{}, 0, 2, nil)
	expectPanic("post on full", func() { w.Post(struct{}{}, 0, 3, nil) })
	expectPanic("harvest on empty", func() {
		NewWindow(0, 2, ports(newFakePort(4)), nil).Harvest(struct{}{})
	})
	expectPanic("postat occupied", func() { w.PostAt(struct{}{}, 0, 0, 4, nil) })
}

// TestWindowPostDesyncDiagnostic corrupts the count/used invariant the way
// a hypothetical bookkeeping bug would and checks that Post fails with the
// explicit desync diagnostic instead of an opaque index-out-of-range from
// PostAt.
func TestWindowPostDesyncDiagnostic(t *testing.T) {
	p := newFakePort(4)
	w := NewWindow(0, 2, ports(p), nil)
	w.Post(struct{}{}, 0, 1, nil)
	w.Post(struct{}{}, 0, 2, nil)
	// Desync: every slot is occupied but count claims one is free.
	w.count--
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Post on desynced window did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "window accounting desync") {
			t.Fatalf("panic = %v, want the desync diagnostic", r)
		}
	}()
	w.Post(struct{}{}, 0, 3, nil)
}

package hds

import "fmt"

// Port is the slice of a partition's publication list a window posts
// through: slot-addressed request publication and completion polling.
// The simulator's fc.PubList implements Port over MMIO with virtual-time
// costs; the native runtime implements it over goroutine mailboxes and
// pooled futures.
type Port[Ctx, Req, Resp any] interface {
	// Slots returns the publication-list capacity in slots.
	Slots() int
	// Post publishes req through slot without waiting for completion.
	Post(c Ctx, slot int, req Req)
	// Done reports whether the request in slot has completed. One call
	// makes at most one completion poll.
	Done(c Ctx, slot int) bool
	// ReadResponse returns the response for a completed slot and releases
	// the slot for reuse.
	ReadResponse(c Ctx, slot int) Resp
	// Watch registers interest in slot's completion so a park between
	// poll rounds is woken by it. Implementations without parking may
	// make it a no-op. Watch must be idempotent: Window.Harvest re-calls
	// it on every in-flight slot before each park round, so repeated
	// registrations by the same caller must not accumulate waiter
	// entries or wake permits.
	Watch(c Ctx, slot int)
}

// Window manages a host thread's in-flight non-blocking NMP calls (§3.5).
//
// Each host thread owns k publication slots in every partition's list:
// window position i maps to slot thread*k+i of whichever partition that
// operation targets. Because an in-flight operation occupies one window
// position, two in-flight operations can never collide on a (partition,
// slot) pair.
type Window[Ctx, Req, Resp any] struct {
	thread int
	k      int
	ports  []Port[Ctx, Req, Resp]
	park   func(Ctx)

	inflight []inflightOp
	used     []bool
	count    int
	next     int // round-robin poll cursor
}

type inflightOp struct {
	part int
	tag  any
}

// NewWindow creates a window of k in-flight operations for thread over
// the per-partition ports. park is called between Harvest poll rounds
// once watchers are registered on every in-flight slot; it blocks the
// calling thread until a watched completion wakes it (the simulator
// parks in virtual time and attributes the wait; the native runtime may
// simply yield). A nil park spins.
func NewWindow[Ctx, Req, Resp any](thread, k int, ports []Port[Ctx, Req, Resp], park func(Ctx)) *Window[Ctx, Req, Resp] {
	if k <= 0 {
		panic("hds: window size must be positive")
	}
	for _, p := range ports {
		if (thread+1)*k > p.Slots() {
			panic(fmt.Sprintf("hds: thread %d window %d exceeds %d slots", thread, k, p.Slots()))
		}
	}
	return &Window[Ctx, Req, Resp]{
		thread:   thread,
		k:        k,
		ports:    ports,
		park:     park,
		inflight: make([]inflightOp, k),
		used:     make([]bool, k),
	}
}

// Full reports whether every window position is occupied.
func (w *Window[Ctx, Req, Resp]) Full() bool { return w.count == w.k }

// Empty reports whether no operations are in flight.
func (w *Window[Ctx, Req, Resp]) Empty() bool { return w.count == 0 }

// Len returns the number of in-flight operations.
func (w *Window[Ctx, Req, Resp]) Len() int { return w.count }

// Post publishes req to partition part without blocking, associating tag
// with the operation for completion handling. The window must not be full.
// It returns the window position used (for PostAt follow-ups).
func (w *Window[Ctx, Req, Resp]) Post(c Ctx, part int, req Req, tag any) int {
	if w.Full() {
		panic("hds: Post on full window")
	}
	pos := -1
	for i, u := range w.used {
		if !u {
			pos = i
			break
		}
	}
	if pos == -1 {
		// Full() said a slot was free but the scan found none: count and
		// used have desynced. Fail loudly here rather than letting PostAt
		// die with an opaque index-out-of-range.
		panic(fmt.Sprintf("hds: window accounting desync: count=%d k=%d but no free slot in used=%v",
			w.count, w.k, w.used))
	}
	w.PostAt(c, pos, part, req, tag)
	return pos
}

// PostAt publishes req through a specific free window position. Multi-phase
// protocols (the hybrid B+ tree's LOCK_PATH / RESUME_INSERT exchange) use
// it to keep a conversation on one publication slot, since the combiner
// keys its pending state by slot.
func (w *Window[Ctx, Req, Resp]) PostAt(c Ctx, pos, part int, req Req, tag any) {
	if w.used[pos] {
		panic("hds: PostAt on occupied position")
	}
	w.used[pos] = true
	w.inflight[pos] = inflightOp{part: part, tag: tag}
	w.count++
	w.ports[part].Post(c, w.thread*w.k+pos, req)
}

// SlotFor returns the publication-list slot index behind a window position.
func (w *Window[Ctx, Req, Resp]) SlotFor(pos int) int { return w.thread*w.k + pos }

// TryHarvest polls the next in-flight operation in round-robin order and,
// if complete, removes it from the window and returns its tag, response
// and window position. A single call makes at most one completion poll,
// keeping the polling cost of deep windows proportional to progress.
func (w *Window[Ctx, Req, Resp]) TryHarvest(c Ctx) (tag any, resp Resp, pos int, ok bool) {
	if w.count == 0 {
		return nil, resp, -1, false
	}
	for probe := 0; probe < w.k; probe++ {
		pos := (w.next + probe) % w.k
		if !w.used[pos] {
			continue
		}
		w.next = (pos + 1) % w.k
		p := w.ports[w.inflight[pos].part]
		slot := w.thread*w.k + pos
		if !p.Done(c, slot) {
			// Cursor already advanced: the next call probes the
			// next in-flight operation.
			return nil, resp, -1, false
		}
		resp = p.ReadResponse(c, slot)
		tag = w.inflight[pos].tag
		w.used[pos] = false
		w.inflight[pos] = inflightOp{}
		w.count--
		return tag, resp, pos, true
	}
	return nil, resp, -1, false
}

// Harvest blocks until some in-flight operation completes, then returns
// its tag, response and window position. The window must not be empty.
// The wait registers completion watchers on every in-flight slot and
// parks between poll rounds, so a completion always wakes the thread.
func (w *Window[Ctx, Req, Resp]) Harvest(c Ctx) (tag any, resp Resp, pos int) {
	if w.count == 0 {
		panic("hds: Harvest on empty window")
	}
	for {
		// Register watchers first so a completion landing during the
		// poll round leaves a wake permit.
		for i := 0; i < w.k; i++ {
			if w.used[i] {
				w.ports[w.inflight[i].part].Watch(c, w.thread*w.k+i)
			}
		}
		for probes := w.count; probes > 0; probes-- {
			if tag, resp, pos, ok := w.TryHarvest(c); ok {
				return tag, resp, pos
			}
		}
		if w.park != nil {
			w.park(c)
		}
	}
}

// Package hds is the request/plan vocabulary shared by both HybriDS
// stacks: the cycle-level simulator (internal/dsim) and the native Go
// runtime (internal/core). It defines the operation kinds, the 64-bit
// Request/Result wire pair the native runtime speaks, the Adapter
// contract a hybrid structure implements against an offload runtime, and
// the in-flight Window that realizes non-blocking NMP calls (§3.5 of the
// paper). Everything here is deliberately free of simulator and runtime
// dependencies — the simulator instantiates the generics with its
// virtual-time context and MMIO publication lists, the native runtime
// with real goroutine mailboxes — so the two stacks cannot drift apart
// on protocol semantics.
package hds

// Kind is a data structure operation type.
type Kind uint8

// Operation kinds. They match the paper's workload mixes: YCSB-C is all
// Read; the sensitivity workloads mix Read, Insert and Remove; Update
// exercises the hybrid structures' value-propagation path. Scan is the
// serving layer's range read (YCSB-E's building block): Request.Key is
// the inclusive start and Request.Value bounds the number of pairs
// visited. The simulated structures do not implement Scan; the native
// runtime serves it per partition.
const (
	Read Kind = iota
	Update
	Insert
	Remove
	Scan
)

// String returns the lowercase workload-mix name of the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Remove:
		return "remove"
	case Scan:
		return "scan"
	default:
		return "unknown"
	}
}

// Request is one key-value operation in the shared vocabulary. The native
// runtime executes Requests directly; the simulator narrows them to its
// 32-bit wire format (kv.Op) at the experiment boundary.
type Request struct {
	// Kind selects the operation.
	Kind Kind
	// Key is the operation's key. Key 0 is reserved as the -inf sentinel
	// by every HybriDS structure and must not be used.
	Key uint64
	// Value is the payload for Update and Insert.
	Value uint64
}

// Result is the outcome of one Request: the value read (for Read) and
// the operation's success flag.
type Result struct {
	// Value is the value read (Read), or the number of pairs visited
	// (Scan); zero for other kinds.
	Value uint64
	// OK reports whether the operation succeeded (key found for
	// Read/Update/Remove, key absent for Insert, always true for Scan).
	OK bool
}

// PrepareCtl is an Adapter.Prepare directive.
type PrepareCtl uint8

const (
	// PrepareOffload posts the returned request to the returned partition.
	PrepareOffload PrepareCtl = iota
	// PrepareLocal reports the operation completed host-side without an
	// NMP call (e.g. a remove that lost its host-side race); the ok result
	// is the operation's outcome.
	PrepareLocal
	// PrepareRestart asks the runtime to call Prepare again with the next
	// attempt number (a failed optimistic host traversal).
	PrepareRestart
)

// VerdictKind classifies an Adapter.Finish outcome.
type VerdictKind uint8

const (
	// OpDone: the operation completed with Verdict.Value/OK.
	OpDone VerdictKind = iota
	// OpRetry: restart the whole operation from Prepare (the adapter has
	// already done any cleanup, e.g. unlinking a stale shortcut).
	OpRetry
	// OpFollowUp: post Verdict.Next on the same publication slot — a
	// multi-phase exchange like the B+ tree's LOCK_PATH / RESUME_INSERT
	// conversation, which the combiner keys by slot.
	OpFollowUp
)

// Gate adjusts an offload runtime's deferral gate. While the gate is held
// (acquires exceed releases), the non-blocking loop stops issuing new
// traversals: a host descend could otherwise spin on the calling thread's
// own host-side locks, deadlocking the single actor.
type Gate uint8

// Gate adjustments a Verdict can request.
const (
	GateNone    Gate = iota // leave the gate unchanged
	GateAcquire             // hold the gate: defer new traversals
	GateRelease             // release one hold
)

// Verdict is Adapter.Finish's decision for one response. Req is the
// stack's request wire type (fc.Request in the simulator).
type Verdict[Req any] struct {
	// Kind classifies the outcome.
	Kind VerdictKind
	// OK is the operation's success flag when Kind is OpDone.
	OK bool
	// Value is the operation's result value when Kind is OpDone.
	Value uint64
	// Next is the follow-up request when Kind is OpFollowUp.
	Next Req
	// Gate adjusts the deferral gate (B+ tree path locks).
	Gate Gate
}

// Adapter supplies the structure-specific hooks of the offload protocol.
// Ctx is the stack's execution context (the simulator's virtual-time
// *machine.Ctx), Op the operation type the driver issues, Req/Resp the
// wire pair carried through publication slots, and S one operation's
// host-side state (pre-allocated nodes, the locked path, protocol phase)
// carried across the runtime's retry loop.
type Adapter[Ctx, Op, Req, Resp, S any] interface {
	// Begin performs once-per-operation host pre-work (e.g. drawing an
	// insert height and pre-allocating the host node) and returns the
	// operation's initial state.
	Begin(c Ctx, op Op) S
	// Prepare performs the host-side traversal for one attempt: it routes
	// op to a partition and encodes the request, charging any host-side
	// work (including per-attempt backoff) on c. attempt counts Prepare
	// calls for this operation since the last successful Finish; batch
	// reports whether the caller is the non-blocking path.
	Prepare(c Ctx, op Op, st *S, attempt int, batch bool) (req Req, part int, ctl PrepareCtl, ok bool)
	// Finish interprets a response, performing host-side post-work (e.g.
	// linking host levels, locking the path), and decides what happens
	// next.
	Finish(c Ctx, op Op, st *S, resp Resp) Verdict[Req]
}

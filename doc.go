// Package hybrids reproduces "HybriDS: Cache-Conscious Concurrent Data
// Structures for Near-Memory Processing Architectures" (SPAA 2022).
//
// The repository contains:
//
//   - internal/sim/...: a deterministic virtual-time NMP architecture
//     simulator (engine, cache hierarchy with coherence directory and TLB,
//     HMC-style vaulted DRAM, NMP cores with node buffers);
//   - internal/dsim/...: the paper's data structures running on the
//     simulated machine — lock-free / NMP-based / hybrid skiplists and
//     seqlock / hybrid B+ trees, plus the flat-combining publication-list
//     fabric with blocking and non-blocking NMP calls;
//   - internal/core and internal/cds: a native (non-simulated) Go library
//     realizing the paper's hybrid programming model with combiner
//     goroutines standing in for NMP cores;
//   - internal/ycsb: YCSB-compatible workload generation;
//   - internal/exp: one reproducible experiment per paper table/figure,
//     driven by cmd/hybrids and the root bench_test.go.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package hybrids

module hybrids

go 1.22

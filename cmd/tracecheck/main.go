// Command tracecheck validates a Chrome trace_event JSON capture produced
// by `hybrids -trace` against the minimal schema Perfetto requires: a
// traceEvents array whose records each carry a known phase, complete
// events ("X") carry a name and duration, instants ("i") are
// thread-scoped, and at least one thread_name metadata record names a
// track. CI runs it on a quick-scale capture; it exits non-zero with a
// diagnostic on the first violation.
//
// Usage: tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// event is the subset of a trace_event record the schema check inspects.
type event struct {
	Ph   string         `json:"ph"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	TS   *uint64        `json:"ts"`
	Dur  uint64         `json:"dur"`
	Name string         `json:"name"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("read: %v", err)
	}
	var capture struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &capture); err != nil {
		fail("not valid JSON: %v", err)
	}
	if len(capture.TraceEvents) == 0 {
		fail("traceEvents is empty")
	}

	tracks := map[int]string{}
	var spans, instants int
	for i, ev := range capture.TraceEvents {
		if ev.Pid == nil || ev.Tid == nil {
			fail("event %d (%s %q): missing pid/tid", i, ev.Ph, ev.Name)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				if name == "" {
					fail("event %d: thread_name metadata without a name", i)
				}
				tracks[*ev.Tid] = name
			}
		case "X":
			spans++
			if ev.Name == "" {
				fail("event %d: complete event without a name", i)
			}
			if ev.TS == nil {
				fail("event %d (%q): complete event without ts", i, ev.Name)
			}
		case "i":
			instants++
			if ev.Name == "" || ev.TS == nil {
				fail("event %d: instant without name/ts", i)
			}
			if ev.S != "t" {
				fail("event %d (%q): instant scope %q, want thread scope \"t\"", i, ev.Name, ev.S)
			}
		default:
			fail("event %d: unknown phase %q", i, ev.Ph)
		}
	}
	if len(tracks) == 0 {
		fail("no thread_name metadata: tracks would be anonymous in Perfetto")
	}
	fmt.Printf("ok: %d events (%d spans, %d instants) on %d named tracks\n",
		len(capture.TraceEvents), spans, instants, len(tracks))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

// Command hybridsd serves a native HybriDS map over TCP: it builds a
// core.Hybrid (goroutine combiners over per-partition stores, the
// software stand-in for the paper's NMP hardware) and exposes it through
// the internal/server binary protocol (GET/PUT/UPDATE/DELETE/SCAN/STATS;
// see docs/SERVING.md).
//
// Usage:
//
//	hybridsd [-addr :7070] [-partitions 8] [-keymax 4194304]
//	         [-store btree|skiplist] [-window 16] [-inflight 64]
//	         [-maxconns 0] [-scan-limit 1024] [-write-timeout 10s]
//	         [-mailbox 64] [-levels 16]
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// answers every request already read from every connection, then closes
// the map and prints the final server metrics to stderr.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybrids/internal/cds"
	"hybrids/internal/core"
	"hybrids/internal/metrics"
	"hybrids/internal/server"
)

// slStore adapts cds.SkipList to the core.Store interface (Insert vs Put
// naming), mirroring the adapter the native benchmarks use.
type slStore struct{ s *cds.SkipList }

func (s slStore) Get(k uint64) (uint64, bool)                   { return s.s.Get(k) }
func (s slStore) Put(k, v uint64) bool                          { return s.s.Insert(k, v) }
func (s slStore) Update(k, v uint64) bool                       { return s.s.Update(k, v) }
func (s slStore) Delete(k uint64) bool                          { return s.s.Delete(k) }
func (s slStore) Len() int                                      { return s.s.Len() }
func (s slStore) Ascend(from uint64, fn func(k, v uint64) bool) { s.s.Ascend(from, fn) }

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		partitions   = flag.Int("partitions", 8, "partition/combiner count (the paper's NMP vaults)")
		keyMax       = flag.Uint64("keymax", 1<<22, "exclusive key-space bound; valid keys are 1..keymax-1")
		store        = flag.String("store", "btree", "per-partition store: btree or skiplist")
		levels       = flag.Int("levels", 16, "skiplist level count (skiplist store only)")
		mailbox      = flag.Int("mailbox", 64, "per-partition mailbox depth")
		window       = flag.Int("window", 16, "per-connection request coalescing window (ApplyBatch size)")
		inflight     = flag.Int("inflight", 0, "per-connection in-flight response budget (default 4x window)")
		maxConns     = flag.Int("maxconns", 0, "max concurrent connections (0 = unlimited)")
		scanLimit    = flag.Int("scan-limit", 1024, "max pairs returned by one SCAN")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client write deadline")
	)
	flag.Parse()

	var newStore func(int) core.Store
	switch *store {
	case "btree":
		newStore = nil // core defaults to cds.NewBTree
	case "skiplist":
		newStore = func(int) core.Store { return slStore{cds.NewSkipList(*levels)} }
	default:
		fmt.Fprintf(os.Stderr, "unknown store %q (btree or skiplist)\n", *store)
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	h := core.New(core.Config{
		Partitions:   *partitions,
		KeyMax:       *keyMax,
		MailboxDepth: *mailbox,
		NewStore:     newStore,
	})
	srv := server.New(h, server.Config{
		Window:       *window,
		Inflight:     *inflight,
		MaxConns:     *maxConns,
		ScanLimit:    *scanLimit,
		WriteTimeout: *writeTimeout,
		Metrics:      reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hybridsd: serving %s/%d partitions on %s (window %d)\n",
		*store, *partitions, ln.Addr(), *window)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "hybridsd: %v, draining...\n", sig)
		srv.Shutdown()
		<-errCh
	case err := <-errCh:
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	}
	h.Close()
	fmt.Fprintf(os.Stderr, "hybridsd: drained, %d keys stored\n%s", h.Len(), srv.StatsText())
}

// Command hybridsd serves a native HybriDS map over TCP: it builds a
// core.Hybrid (goroutine combiners over per-partition stores, the
// software stand-in for the paper's NMP hardware) and exposes it through
// the internal/server binary protocol (GET/PUT/UPDATE/DELETE/SCAN/STATS;
// see docs/SERVING.md).
//
// The -store flag selects any engine registered in internal/store
// (btree, skiplist, bskiplist, ...); -levels tunes engine height
// uniformly where the engine supports it.
//
// The -admin-addr flag (off by default) starts the HTTP management
// plane of internal/admin on a second listener: Prometheus /metrics,
// /metrics.json, live GET/POST /config, GET/POST /boundary, /conns,
// /partitions (see docs/ADMIN.md). Non-localhost admin binds require
// -admin-token, which mutating endpoints then demand as a bearer token.
// -slow-op enables structured slow-op logging to stderr for batches
// slower than the threshold.
//
// The -boundary flag picks the host/NMP boundary policy: "static" (the
// paper's fixed split) or "adaptive" (a feedback loop over the
// partition queueing proxies that migrates levels at runtime). Either
// way POST /boundary migrates levels live, without restart.
//
// Usage:
//
//	hybridsd [-addr :7070] [-partitions 8] [-keymax 4194304]
//	         [-store btree] [-window 16] [-inflight 64]
//	         [-maxconns 0] [-scan-limit 1024] [-write-timeout 10s]
//	         [-mailbox 64] [-levels 0] [-boundary static]
//	         [-admin-addr 127.0.0.1:7071] [-admin-token ""] [-slow-op 0]
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// answers every request already read from every connection, then closes
// the map and prints the final server metrics to stderr. The admin
// listener closes last, so the drained totals stay scrapeable through
// the shutdown sequence.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"hybrids/internal/admin"
	"hybrids/internal/boundary"
	"hybrids/internal/core"
	"hybrids/internal/metrics"
	"hybrids/internal/server"
	"hybrids/internal/store"
)

// loopbackAddr reports whether addr binds only a loopback interface, the
// condition under which an unauthenticated admin plane is acceptable.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		partitions   = flag.Int("partitions", 8, "partition/combiner count (the paper's NMP vaults)")
		keyMax       = flag.Uint64("keymax", 1<<22, "exclusive key-space bound; valid keys are 1..keymax-1")
		engineName   = flag.String("store", "btree", "per-partition store engine: "+strings.Join(store.Names(), ", "))
		levels       = flag.Int("levels", 0, "structure height cap (0 = engine default; the B+ tree derives height from fan-out and ignores it)")
		mailbox      = flag.Int("mailbox", 64, "per-partition mailbox depth")
		window       = flag.Int("window", 16, "per-connection request coalescing window (ApplyBatch size)")
		inflight     = flag.Int("inflight", 0, "per-connection in-flight response budget (default 4x window)")
		maxConns     = flag.Int("maxconns", 0, "max concurrent connections (0 = unlimited)")
		scanLimit    = flag.Int("scan-limit", 1024, "max pairs returned by one SCAN")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client write deadline (negative disables write deadlines)")
		adminAddr    = flag.String("admin-addr", "", "HTTP management-plane listen address (empty = disabled; non-localhost binds require -admin-token)")
		adminToken   = flag.String("admin-token", "", "bearer token required by mutating admin endpoints (required for non-localhost -admin-addr)")
		boundaryMode = flag.String("boundary", "static", "host/NMP boundary policy: static, adaptive")
		slowOp       = flag.Duration("slow-op", 0, "log batches slower than this threshold as JSON lines on stderr (0 = disabled)")
	)
	flag.Parse()

	eng, ok := store.Lookup(*engineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown store %q (valid engines: %s)\n",
			*engineName, strings.Join(store.Names(), ", "))
		os.Exit(2)
	}
	if *levels != 0 && eng.MinLevels > 0 && *levels < eng.MinLevels {
		fmt.Fprintf(os.Stderr, "store %q requires -levels >= %d (got %d: the NMP floor is %d levels and at least one host level must remain)\n",
			eng.Name, eng.MinLevels, *levels, eng.NMPFloor)
		os.Exit(2)
	}
	pol, err := boundary.ParsePolicy(*boundaryMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	if *adminAddr != "" && *adminToken == "" && !loopbackAddr(*adminAddr) {
		fmt.Fprintf(os.Stderr, "refusing non-localhost -admin-addr %q without -admin-token (the mutating admin endpoints would be open; set a token or bind to localhost)\n",
			*adminAddr)
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	h := core.New(core.Config{
		Partitions:   *partitions,
		KeyMax:       *keyMax,
		MailboxDepth: *mailbox,
		NewStore:     eng.NewNative(store.Tuning{Levels: *levels}),
	})
	mgr := boundary.NewManager(pol, boundary.Plan{Splits: map[string]boundary.Split{
		eng.Name: eng.NativeSplit(store.Tuning{Levels: *levels}),
	}}, nil)

	// rebalance is the live boundary migration every mover funnels through
	// (POST /boundary, the adaptive ticker): validate the level count
	// against the engine, swap every partition store through its combiner
	// barrier, then make the new split the plan of record. The mutex
	// serializes movers so partition migrations never interleave.
	var rebalanceMu sync.Mutex
	rebalance := func(newLevels int) error {
		rebalanceMu.Lock()
		defer rebalanceMu.Unlock()
		if eng.MinLevels > 0 && newLevels < eng.MinLevels {
			return fmt.Errorf("store %q requires levels >= %d (got %d: the NMP floor is %d levels and at least one host level must remain)",
				eng.Name, eng.MinLevels, newLevels, eng.NMPFloor)
		}
		if eng.MinLevels == 0 && newLevels != 0 {
			return fmt.Errorf("store %q derives its height from fan-out; post levels 0 to rebuild", eng.Name)
		}
		t := store.Tuning{Levels: newLevels}
		if err := h.Rebalance(eng.NewNative(t)); err != nil {
			return err
		}
		mgr.Publish(eng.Name, eng.NativeSplit(t))
		return nil
	}
	srv := server.New(h, server.Config{
		Store:        eng.Name,
		Window:       *window,
		Inflight:     *inflight,
		MaxConns:     *maxConns,
		ScanLimit:    *scanLimit,
		WriteTimeout: *writeTimeout,
		SlowOp:       *slowOp,
		SlowOpLog:    os.Stderr,
		Metrics:      reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hybridsd: serving %s/%d partitions on %s (window %d)\n",
		eng.Name, *partitions, ln.Addr(), *window)

	var adm *admin.Server
	admErrCh := make(chan error, 1)
	if *adminAddr != "" {
		adm = admin.New(admin.Config{
			Server:    srv,
			Hybrid:    h,
			Boundary:  mgr,
			Rebalance: rebalance,
			Token:     *adminToken,
			Static: map[string]string{
				"addr":       ln.Addr().String(),
				"store":      eng.Name,
				"partitions": fmt.Sprint(*partitions),
				"keymax":     fmt.Sprint(*keyMax),
				"mailbox":    fmt.Sprint(*mailbox),
				"scan_limit": fmt.Sprint(*scanLimit),
				"boundary":   pol.Name(),
			},
		})
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "admin listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hybridsd: admin plane on http://%s (docs/ADMIN.md)\n", aln.Addr())
		go func() { admErrCh <- adm.Serve(aln) }()
	}

	// With -boundary adaptive on a fixed-height engine, a background
	// ticker feeds the policy the queueing proxy the native stack does
	// have — mean mailbox depth per combine round, the saturation signal
	// cycle-level attribution stands in for on the simulator — and
	// migrates one level per decision through the same rebalance funnel
	// as POST /boundary.
	if pol.Name() == "adaptive" && eng.MinLevels > 0 {
		go func() {
			var lastOps, lastBatches, lastMailbox uint64
			tick := time.NewTicker(5 * time.Second)
			defer tick.Stop()
			for range tick.C {
				if h.Closed() {
					return
				}
				var ops, batches, mailboxSum uint64
				for p := 0; p < h.Partitions(); p++ {
					st := h.PartitionStats(p)
					ops += st.Ops
					batches += st.Batches
					mailboxSum += st.MailboxSum
				}
				dOps := ops - lastOps
				dBatches := batches - lastBatches
				dMailbox := mailboxSum - lastMailbox
				lastOps, lastBatches, lastMailbox = ops, batches, mailboxSum
				if dBatches == 0 {
					continue
				}
				fill := float64(dMailbox) / float64(dBatches) / float64(*mailbox)
				if fill > 1 {
					fill = 1
				}
				cur := mgr.Plan().Split(eng.Name)
				next, move := mgr.Observe(boundary.Sample{
					Engine:      eng.Name,
					OffloadWait: fill,
					Ops:         dOps,
				})
				if !move {
					continue
				}
				// The native mirror keeps the NMP floor pinned, so a
				// policy move of the boundary translates to a height
				// change: migrating a level NMP-side shrinks the host
				// portion (one level fewer), host-side grows it.
				newLevels := cur.Total - (next.NMP - cur.NMP)
				if err := rebalance(newLevels); err != nil {
					fmt.Fprintf(os.Stderr, "hybridsd: adaptive boundary move rejected: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "hybridsd: adaptive boundary moved to %d levels\n", newLevels)
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "hybridsd: %v, draining...\n", sig)
		srv.Shutdown()
		<-errCh
	case err := <-errCh:
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	}
	h.Close()
	fmt.Fprintf(os.Stderr, "hybridsd: drained, %d keys stored\n%s", h.Len(), srv.StatsText())
	// The admin plane closes last so the drained totals stay scrapeable
	// until the very end of the shutdown sequence.
	if adm != nil {
		adm.Close()
		<-admErrCh
	}
}

// Command hybridsd serves a native HybriDS map over TCP: it builds a
// core.Hybrid (goroutine combiners over per-partition stores, the
// software stand-in for the paper's NMP hardware) and exposes it through
// the internal/server binary protocol (GET/PUT/UPDATE/DELETE/SCAN/STATS;
// see docs/SERVING.md).
//
// The -store flag selects any engine registered in internal/store
// (btree, skiplist, bskiplist, ...); -levels tunes engine height
// uniformly where the engine supports it.
//
// The -admin-addr flag (off by default) starts the HTTP management
// plane of internal/admin on a second listener: Prometheus /metrics,
// /metrics.json, live GET/POST /config, /conns, /partitions (see
// docs/ADMIN.md). -slow-op enables structured slow-op logging to stderr
// for batches slower than the threshold.
//
// Usage:
//
//	hybridsd [-addr :7070] [-partitions 8] [-keymax 4194304]
//	         [-store btree] [-window 16] [-inflight 64]
//	         [-maxconns 0] [-scan-limit 1024] [-write-timeout 10s]
//	         [-mailbox 64] [-levels 0]
//	         [-admin-addr 127.0.0.1:7071] [-slow-op 0]
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// answers every request already read from every connection, then closes
// the map and prints the final server metrics to stderr. The admin
// listener closes last, so the drained totals stay scrapeable through
// the shutdown sequence.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybrids/internal/admin"
	"hybrids/internal/core"
	"hybrids/internal/metrics"
	"hybrids/internal/server"
	"hybrids/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		partitions   = flag.Int("partitions", 8, "partition/combiner count (the paper's NMP vaults)")
		keyMax       = flag.Uint64("keymax", 1<<22, "exclusive key-space bound; valid keys are 1..keymax-1")
		engineName   = flag.String("store", "btree", "per-partition store engine: "+strings.Join(store.Names(), ", "))
		levels       = flag.Int("levels", 0, "structure height cap (0 = engine default; the B+ tree derives height from fan-out and ignores it)")
		mailbox      = flag.Int("mailbox", 64, "per-partition mailbox depth")
		window       = flag.Int("window", 16, "per-connection request coalescing window (ApplyBatch size)")
		inflight     = flag.Int("inflight", 0, "per-connection in-flight response budget (default 4x window)")
		maxConns     = flag.Int("maxconns", 0, "max concurrent connections (0 = unlimited)")
		scanLimit    = flag.Int("scan-limit", 1024, "max pairs returned by one SCAN")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client write deadline (negative disables write deadlines)")
		adminAddr    = flag.String("admin-addr", "", "HTTP management-plane listen address (empty = disabled; bind to localhost)")
		slowOp       = flag.Duration("slow-op", 0, "log batches slower than this threshold as JSON lines on stderr (0 = disabled)")
	)
	flag.Parse()

	eng, ok := store.Lookup(*engineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown store %q (valid engines: %s)\n",
			*engineName, strings.Join(store.Names(), ", "))
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	h := core.New(core.Config{
		Partitions:   *partitions,
		KeyMax:       *keyMax,
		MailboxDepth: *mailbox,
		NewStore:     eng.NewNative(store.Tuning{Levels: *levels}),
	})
	srv := server.New(h, server.Config{
		Store:        eng.Name,
		Window:       *window,
		Inflight:     *inflight,
		MaxConns:     *maxConns,
		ScanLimit:    *scanLimit,
		WriteTimeout: *writeTimeout,
		SlowOp:       *slowOp,
		SlowOpLog:    os.Stderr,
		Metrics:      reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hybridsd: serving %s/%d partitions on %s (window %d)\n",
		eng.Name, *partitions, ln.Addr(), *window)

	var adm *admin.Server
	admErrCh := make(chan error, 1)
	if *adminAddr != "" {
		adm = admin.New(admin.Config{
			Server: srv,
			Hybrid: h,
			Static: map[string]string{
				"addr":       ln.Addr().String(),
				"store":      eng.Name,
				"partitions": fmt.Sprint(*partitions),
				"keymax":     fmt.Sprint(*keyMax),
				"mailbox":    fmt.Sprint(*mailbox),
				"scan_limit": fmt.Sprint(*scanLimit),
			},
		})
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "admin listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hybridsd: admin plane on http://%s (docs/ADMIN.md)\n", aln.Addr())
		go func() { admErrCh <- adm.Serve(aln) }()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "hybridsd: %v, draining...\n", sig)
		srv.Shutdown()
		<-errCh
	case err := <-errCh:
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	}
	h.Close()
	fmt.Fprintf(os.Stderr, "hybridsd: drained, %d keys stored\n%s", h.Len(), srv.StatsText())
	// The admin plane closes last so the drained totals stay scrapeable
	// until the very end of the shutdown sequence.
	if adm != nil {
		adm.Close()
		<-admErrCh
	}
}

// Command hybrids runs the HybriDS reproduction experiments: one per table
// and figure in the paper's evaluation section, plus ablations.
//
// Usage:
//
//	hybrids -list
//	hybrids -exp fig5a [-scale quick|small|paper|tiny] [-parallel N] [-ops N] [-markdown|-json]
//	hybrids -exp fig5a -attr -trace trace.json
//	hybrids -exp all
//	hybrids -native [-exp native-btree] [-scale quick] [-markdown|-json]
//
// -native switches from the cycle-level simulator to the real internal/core
// runtime (goroutine combiners over internal/cds stores) and measures
// wall-clock throughput with the same YCSB workloads and output formats.
// Without -exp it runs every native experiment; -list with -native lists
// them. Native cells always run serially (-parallel is ignored), and -attr
// and -trace are simulator-only.
//
// -parallel N measures up to N grid cells of an experiment concurrently
// (default GOMAXPROCS). Every cell simulates on a private machine, so the
// results are bit-identical at any setting; only wall-clock time changes.
//
// -attr prints a per-operation latency-attribution table next to each
// throughput table (cycles split into host-cache / coherence / DRAM /
// offload-wait / NMP-serialization / host-compute buckets; the sums also
// appear in -json cells). -trace FILE captures a cycle-level event trace
// of the first measured cell as Chrome trace_event JSON, viewable in
// Perfetto (https://ui.perfetto.dev). Both are observationally
// transparent: they never change measured results. See
// docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"hybrids/internal/boundary"
	"hybrids/internal/exp"
)

func main() {
	var (
		expID        = flag.String("exp", "", "experiment id (or 'all')")
		scale        = flag.String("scale", "small", "scale: quick, tiny, small, or paper")
		list         = flag.Bool("list", false, "list experiments")
		markdown     = flag.Bool("markdown", false, "emit markdown tables")
		jsonOut      = flag.Bool("json", false, "emit machine-readable JSON (per-cell metrics)")
		ops          = flag.Int("ops", 0, "override measured ops per thread")
		warmup       = flag.Int("warmup", -1, "override warmup ops per thread")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "grid cells to measure concurrently (results are identical at any setting)")
		quiet        = flag.Bool("q", false, "suppress progress output")
		native       = flag.Bool("native", false, "run the native (wall-clock) benchmarks instead of the simulator")
		attr         = flag.Bool("attr", false, "print per-operation latency attribution tables (buckets also land in -json cells)")
		boundaryMode = flag.String("boundary", "static", "host/NMP boundary policy: static (the paper's fixed splits) or adaptive (grids run at the split the feedback policy converges to)")
		traceOut     = flag.String("trace", "", "write a Chrome trace_event JSON capture of the first measured cell to this file (open in Perfetto)")
		traceCap     = flag.Int("trace-events", 0, "per-track trace ring capacity (default 65536; older events fall off first)")
	)
	flag.Parse()

	registry := exp.Registry()
	if *native {
		registry = exp.NativeRegistry()
	}
	if *list {
		for _, e := range registry {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		if !*native {
			flag.Usage()
			os.Exit(2)
		}
		*expID = "all"
	}

	var sc exp.Scale
	switch *scale {
	case "quick":
		sc = exp.QuickScale()
	case "tiny":
		sc = exp.TinyScale()
	case "small":
		sc = exp.SmallScale()
	case "paper":
		sc = exp.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		sc.OpsPerThread = *ops
	}
	if *warmup >= 0 {
		sc.WarmupPerThread = *warmup
	}
	if *parallel > 0 {
		sc.Parallel = *parallel
	}
	sc.Attr = *attr
	if *traceOut != "" {
		sc.Trace = &exp.TraceSpec{Path: *traceOut, Events: *traceCap}
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	if _, err := boundary.ParsePolicy(*boundaryMode); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	if *boundaryMode == "adaptive" && !*native {
		// Converge the feedback policy first, then run the requested
		// grids at the split it lands on instead of the paper's static
		// crossover. With -boundary static (the default) nothing here
		// runs and outputs stay byte-identical.
		fmt.Fprintf(os.Stderr, "converging adaptive boundary (static crossover: nmp=%d)...\n", sc.SkiplistNMPLevels)
		conv := exp.AdaptBoundary(sc, progress)
		fmt.Fprintf(os.Stderr, "adaptive boundary converged at nmp=%d\n", conv.NMP)
		sc.SkiplistNMPLevels = conv.NMP
	}

	var results []exp.Result
	run := func(e exp.Experiment) {
		fmt.Fprintf(os.Stderr, "running %s...\n", e.ID)
		res := e.Run(sc, progress)
		switch {
		case *jsonOut:
			results = append(results, res)
		case *markdown:
			fmt.Print(res.Markdown())
		default:
			fmt.Println(res.Format())
		}
	}

	if *expID == "all" {
		for _, e := range registry {
			run(e)
		}
	} else {
		find := exp.Find
		if *native {
			find = exp.FindNative
		}
		e, ok := find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		run(e)
	}

	if err := sc.Trace.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	} else if sc.Trace != nil {
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Scale   string       `json:"scale"`
			Results []exp.Result `json:"results"`
		}{sc.Name, results}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
}

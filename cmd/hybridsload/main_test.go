package main

import (
	"bufio"
	"math"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/server"
)

func TestValidateKeyMax(t *testing.T) {
	cases := []struct {
		name    string
		v       uint64
		records int
		wantErr bool
	}{
		// Regression: 1<<32 used to truncate to uint32(0) silently and 3<<32
		// to 1<<32... any value >= 2^32 must be rejected at flag level.
		{"truncates-to-zero", 1 << 32, 16384, true},
		{"above-32-bits", 3 << 32, 16384, true},
		{"zero", 0, 16384, true},
		{"not-power-of-two", 3 << 20, 16384, true},
		{"no-insert-headroom", 32768, 16384, true},
		{"minimum-headroom", 65536, 16384, false},
		{"default", 1 << 20, 16384, false},
		{"max-power-of-two", 1 << 31, 16384, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateKeyMax(c.v, c.records)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateKeyMax(%d, %d) = %v, wantErr %v", c.v, c.records, err, c.wantErr)
			}
		})
	}
}

func TestMergeServerDeltasMergesMonotoneCounters(t *testing.T) {
	metrics := map[string]uint64{"load/ok": 7}
	pre := map[string]uint64{"server/requests": 100, "server/ops/scan": 10, "other/x": 5}
	post := map[string]uint64{"server/requests": 250, "server/ops/scan": 40, "other/x": 9}
	if !mergeServerDeltas(metrics, pre, post) {
		t.Fatal("mergeServerDeltas = false, want true")
	}
	if got := metrics["server/requests"]; got != 150 {
		t.Errorf("server/requests delta = %d, want 150", got)
	}
	if got := metrics["server/ops/scan"]; got != 30 {
		t.Errorf("server/ops/scan delta = %d, want 30", got)
	}
	if _, ok := metrics["other/x"]; ok {
		t.Error("non-server/ counter merged")
	}
	if got := metrics["load/ok"]; got != 7 {
		t.Errorf("pre-existing metric clobbered: load/ok = %d, want 7", got)
	}
}

// A counter regression (post < pre) means the server restarted between
// the scrapes; the unsigned subtraction used to wrap to a huge value and
// land in the report. The merge must refuse wholesale — not even the
// still-monotone counters may land, since their deltas straddle the
// restart too.
func TestMergeServerDeltasDropsOnCounterRegression(t *testing.T) {
	metrics := map[string]uint64{}
	pre := map[string]uint64{"server/requests": 100, "server/batches": 20}
	post := map[string]uint64{"server/requests": 40, "server/batches": 120}
	if mergeServerDeltas(metrics, pre, post) {
		t.Fatal("mergeServerDeltas = true on regressed counter, want false")
	}
	if len(metrics) != 0 {
		t.Fatalf("metrics polluted despite regression: %v", metrics)
	}
}

func TestCubicScheduleFlatAndRamped(t *testing.T) {
	const n, rate = 1000, 10000.0
	flat := cubicSchedule(n, rate, 0)
	if flat[0] != 0 {
		t.Fatalf("flat sched[0] = %v, want 0", flat[0])
	}
	for i := 1; i < n; i++ {
		if flat[i] <= flat[i-1] {
			t.Fatalf("flat schedule not increasing at %d: %v <= %v", i, flat[i], flat[i-1])
		}
	}
	// Flat: op i goes out at i/rate.
	wantLast := time.Duration(float64(n-1) / rate * float64(time.Second))
	if diff := (flat[n-1] - wantLast).Abs(); diff > time.Millisecond {
		t.Fatalf("flat sched[%d] = %v, want ~%v", n-1, flat[n-1], wantLast)
	}

	ramped := cubicSchedule(n, rate, 50*time.Millisecond)
	for i := 1; i < n; i++ {
		if ramped[i] <= ramped[i-1] {
			t.Fatalf("ramped schedule not increasing at %d", i)
		}
	}
	// The ramp only slows ops down, and the very first interval runs at
	// (1-beta)*rate while the tail (past the ramp) runs at the full rate.
	if ramped[n-1] <= flat[n-1] {
		t.Fatalf("ramped schedule finished no later than flat: %v <= %v", ramped[n-1], flat[n-1])
	}
	first := ramped[1] - ramped[0]
	rampStart := rate * 0.7
	wantFirst := time.Duration(float64(time.Second) / rampStart)
	if diff := (first - wantFirst).Abs(); diff > wantFirst/10 {
		t.Fatalf("first ramped interval = %v, want ~%v", first, wantFirst)
	}
	last := ramped[n-1] - ramped[n-2]
	wantLastIv := time.Duration(1 / rate * float64(time.Second))
	if diff := (last - wantLastIv).Abs(); diff > wantLastIv/10 {
		t.Fatalf("steady ramped interval = %v, want ~%v", last, wantLastIv)
	}
}

func TestParseWorkloadsSuiteAndLegacy(t *testing.T) {
	specs, err := parseWorkloads("a, E,f", 1024, 1<<20, 100, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].key != "a" || specs[1].key != "e" || specs[2].key != "f" {
		t.Fatalf("parseWorkloads suite = %+v", specs)
	}
	if specs[1].cfg.ScanPct != 95 {
		t.Fatalf("workload e ScanPct = %d, want 95", specs[1].cfg.ScanPct)
	}
	if _, err := parseWorkloads("a,z", 1024, 1<<20, 100, 0, 0, 1); err == nil {
		t.Fatal("unknown workload letter accepted")
	}
	legacy, err := parseWorkloads("", 1024, 1<<20, 90, 5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != 1 || legacy[0].key != "mix" {
		t.Fatalf("legacy mix = %+v", legacy)
	}
	plainC, err := parseWorkloads("", 1024, 1<<20, 100, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plainC) != 1 || plainC[0].key != "c" {
		t.Fatalf("legacy default = %+v", plainC)
	}
}

// stallServer is a minimal protocol server that answers every request
// with a scalar StatusOK, sleeping once for stall after answering the
// `after`-th request on a connection. It is the controlled "server hiccup"
// the coordinated-omission test measures against.
func stallServer(t *testing.T, stall time.Duration, after int) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				br := bufio.NewReaderSize(nc, 32<<10)
				bw := bufio.NewWriterSize(nc, 32<<10)
				var buf []byte
				served := 0
				for {
					if _, err := server.ReadRequest(br); err != nil {
						return
					}
					served++
					if served == after {
						bw.Flush()
						time.Sleep(stall)
					}
					buf = server.AppendScalarResponse(buf[:0], server.StatusOK, 1)
					if _, err := bw.Write(buf); err != nil {
						return
					}
					if br.Buffered() == 0 {
						if err := bw.Flush(); err != nil {
							return
						}
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// p99 of one connection's measured latencies.
func connP99(st *connStats) time.Duration {
	sort.Slice(st.lats, func(i, j int) bool { return st.lats[i] < st.lats[j] })
	return pctl(st.lats, 0.99)
}

// The reason the open-loop mode exists: a closed-loop driver coordinates
// with the server under test. When the server stalls, the closed loop
// stops sending — only the handful of requests already in flight observe
// the stall, and the operations that *would* have arrived during it are
// silently never issued, so tail percentiles look healthy (coordinated
// omission). The open loop keeps the arrival schedule fixed and measures
// from scheduled send time, so every operation queued behind the stall is
// charged its full delay. Against a server that stalls once for 250ms
// mid-run, the closed-loop p99 stays far below the stall while the
// open-loop p99 reflects it.
func TestCoordinatedOmissionClosedVsOpenLoop(t *testing.T) {
	const (
		stall = 250 * time.Millisecond
		after = 100 // responses before the stall
		nOps  = 2000
		depth = 4
		rate  = 4000.0 // ops/s: ~1000 arrivals scheduled during the stall
	)
	ops := make([]kv.Op, nOps)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.Read, Key: uint32(i%1024 + 1)}
	}

	run := func(open bool) *connStats {
		addr, stop := stallServer(t, stall, after)
		defer stop()
		w, err := dialWire(addr)
		if err != nil {
			t.Fatal(err)
		}
		st := &connStats{}
		var warmed sync.WaitGroup
		warmed.Add(1)
		start := make(chan struct{})
		close(start) // no rendezvous needed with one connection
		if open {
			runOpenConn(w, nil, ops, depth, cubicSchedule(nOps, rate, 0), 0, &warmed, start, st)
		} else {
			runConn(w, nil, ops, depth, &warmed, start, st)
		}
		if st.err != nil {
			t.Fatal(st.err)
		}
		if len(st.lats) != nOps {
			t.Fatalf("measured %d latencies, want %d", len(st.lats), nOps)
		}
		return st
	}

	closedP99 := connP99(run(false))
	openP99 := connP99(run(true))

	// Closed loop: only `depth` ops (0.2% of the run) ever see the stall,
	// so p99 hides it completely.
	if closedP99 >= stall/4 {
		t.Errorf("closed-loop p99 = %v; expected coordinated omission to hide the %v stall", closedP99, stall)
	}
	// Open loop: ~1000 of 2000 ops are scheduled during the stall and
	// accumulate queueing delay, so p99 shows most of it.
	if openP99 <= stall/2 {
		t.Errorf("open-loop p99 = %v; expected scheduled-time accounting to surface the %v stall", openP99, stall)
	}
}

// The open-loop SLO accounting and the achieved-rate math run against the
// same stall harness: with a 5ms SLO, the stalled window's operations all
// violate it.
func TestOpenLoopSLOViolationsCounted(t *testing.T) {
	const (
		stall = 100 * time.Millisecond
		after = 50
		nOps  = 1000
		rate  = 4000.0
		slo   = 5 * time.Millisecond
	)
	ops := make([]kv.Op, nOps)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.Read, Key: uint32(i%1024 + 1)}
	}
	addr, stop := stallServer(t, stall, after)
	defer stop()
	w, err := dialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	st := &connStats{}
	var warmed sync.WaitGroup
	warmed.Add(1)
	start := make(chan struct{})
	close(start)
	runOpenConn(w, nil, ops, 4, cubicSchedule(nOps, rate, 0), slo, &warmed, start, st)
	if st.err != nil {
		t.Fatal(st.err)
	}
	// ~400 arrivals are scheduled during the 100ms stall; allow wide slack
	// but require a substantial violation count and not all ops.
	if st.sloViolations < 100 || st.sloViolations >= nOps {
		t.Fatalf("sloViolations = %d, want in [100, %d)", st.sloViolations, nOps)
	}
	if st.ok != nOps {
		t.Fatalf("ok = %d, want %d", st.ok, nOps)
	}
}

// cubicSchedule must never divide by zero or emit NaN offsets, whatever
// the ramp geometry.
func TestCubicScheduleNoNaN(t *testing.T) {
	for _, ramp := range []time.Duration{0, time.Nanosecond, time.Second, time.Hour} {
		sched := cubicSchedule(100, 1e6, ramp)
		for i, d := range sched {
			if d < 0 || math.IsNaN(float64(d)) {
				t.Fatalf("ramp %v sched[%d] = %v", ramp, i, d)
			}
		}
	}
}

// Command hybridsload is a load generator for hybridsd: it replays
// deterministic YCSB operation streams (the same internal/ycsb generator
// the benchmarks use) over pipelined protocol connections and reports
// throughput and client-observed latency percentiles through the
// internal/exp table formatters.
//
// Usage:
//
//	hybridsload [-addr 127.0.0.1:7070] [-conns 4] [-depth 16]
//	            [-workload a,b,c,d,e,f] [-ops 20000] [-records 16384]
//	            [-keymax 1048576] [-read 100 -insert 0 -remove 0]
//	            [-seed 1] [-warmup 2048] [-max-allocs-per-op -1]
//	            [-rate 0 -ramp 2s -slo 0]
//	            [-noload] [-markdown|-json] [-stats]
//	            [-scrape http://127.0.0.1:7071]
//
// -workload selects YCSB core workloads by letter (comma-separated; each
// runs as its own measured phase and report row). Without it the legacy
// flags apply: YCSB-C, or the uniform read-insert-remove mix when
// -insert/-remove are set. Workload E drives SCAN requests end-to-end;
// the pair payloads are decoded into a per-connection reusable buffer so
// the hot path stays allocation-free.
//
// Two load modes:
//
//   - Closed loop (default): each connection keeps -depth requests in
//     flight — every response received triggers the next send, so
//     concurrency is conns x depth. Latency is measured send-to-receive.
//     A closed loop coordinates with the server: when the server stalls,
//     the client stops sending, so the operations that would have queued
//     behind the stall are never measured (coordinated omission).
//
//   - Open loop (-rate R): operations are paced by a precomputed arrival
//     schedule targeting R ops/s across all connections, ramping up along
//     a TCP-CUBIC-shaped curve over -ramp. Latency is measured from each
//     operation's *scheduled* send time, so queueing delay — including
//     delay caused by the client falling behind schedule — is visible.
//     -slo D counts responses slower than D (load/slo_violations), and
//     the report carries load/target_rate and load/achieved_rate.
//
// The measured phase is steady-state: every connection is dialed and
// runs -warmup untimed operations first (filling pools and scratch
// buffers on both sides), then all connections start the timed replay
// together behind a gate. Client-process heap allocations across the
// timed phase are counted (load/allocs) and averaged per operation;
// -max-allocs-per-op N exits nonzero when the integer average exceeds N,
// making the zero-allocation serving path a CI-checkable regression
// gate.
//
// -scrape URL points at a hybridsd admin plane (-admin-addr): each
// workload's measured phase is bracketed by two /metrics.json scrapes
// and the server/* counter deltas are merged into its report row,
// pairing client-observed numbers with server-side truth. Reports always
// carry a meta block with run provenance (Go version, platform,
// GOMAXPROCS, VCS revision when built from a checkout).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/exp"
	"hybrids/internal/server"
	"hybrids/internal/ycsb"
)

// connStats is one connection's tally: per-status response counts, SCAN
// pair and SLO-violation totals, and the latency of every measured
// operation.
type connStats struct {
	ok, miss, rejected, bad uint64
	scanPairs               uint64
	sloViolations           uint64
	lats                    []time.Duration
	err                     error
}

// tally records one measured response.
func (st *connStats) tally(op kv.Op, resp server.Response) {
	switch resp.Status {
	case server.StatusOK:
		st.ok++
	case server.StatusMiss:
		st.miss++
	case server.StatusRejected:
		st.rejected++
	default:
		st.bad++
	}
	if op.Kind == kv.Scan {
		st.scanPairs += uint64(len(resp.Pairs))
	}
}

// opCode maps a YCSB op kind to its protocol operation code.
func opCode(k kv.Kind) uint8 {
	switch k {
	case kv.Read:
		return server.OpGet
	case kv.Update:
		return server.OpUpdate
	case kv.Insert:
		return server.OpPut
	case kv.Scan:
		return server.OpScan
	default:
		return server.OpDelete
	}
}

// toRequest maps one YCSB op to its protocol request (for SCAN, Op.Value
// carries the pair limit).
func toRequest(op kv.Op) server.Request {
	return server.Request{Op: opCode(op.Kind), Key: uint64(op.Key), Value: uint64(op.Value)}
}

// wire is one raw protocol connection with caller-owned decode buffers.
// Unlike server.Client it has no sent-op FIFO — the replay knows its op
// stream, so responses are decoded against the stream directly — and its
// SCAN pair buffer is reused across responses (server.ReadResponseReuse),
// which keeps the measured hot path allocation-free even on scan-heavy
// workloads. The buffer fields split cleanly between a sender (bw,
// reqBuf) and a receiver (br, scratch, pairs), so the open-loop mode can
// run both on one wire concurrently.
type wire struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	reqBuf  []byte
	scratch []byte
	pairs   []server.Pair
}

// dialWire connects to the server and pre-sizes the decode buffers (the
// pair buffer covers the YCSB-E scan-length cap, so steady state never
// grows it).
func dialWire(addr string) (*wire, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &wire{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 32<<10),
		bw:      bufio.NewWriterSize(nc, 32<<10),
		scratch: make([]byte, 0, 4<<10),
		pairs:   make([]server.Pair, 0, 256),
	}, nil
}

func (w *wire) close() error { return w.nc.Close() }

// send encodes op into the write buffer (the caller flushes).
func (w *wire) send(op kv.Op) error {
	w.reqBuf = server.AppendRequest(w.reqBuf[:0], toRequest(op))
	_, err := w.bw.Write(w.reqBuf)
	return err
}

// recv reads op's response, reusing the wire's scratch and pair buffers.
// The returned Response's Pairs alias the wire's buffer and are only
// valid until the next recv.
func (w *wire) recv(op kv.Op) (server.Response, error) {
	resp, scratch, pairs, err := server.ReadResponseReuse(w.br, opCode(op.Kind), w.scratch, w.pairs)
	w.scratch, w.pairs = scratch, pairs
	return resp, err
}

// replay runs ops through w as a closed loop with depth requests in
// flight. When st is nil the phase is untimed warmup (statuses and
// latencies are discarded); otherwise send times come from sendTimes
// (pre-sized by the caller so the measured phase does not grow it).
func replay(w *wire, ops []kv.Op, depth int, sendTimes []time.Time, st *connStats) error {
	if depth > len(ops) {
		depth = len(ops)
	}
	next := 0
	for ; next < depth; next++ {
		if st != nil {
			sendTimes = append(sendTimes, time.Now())
		}
		if err := w.send(ops[next]); err != nil {
			return err
		}
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	for done := 0; done < len(ops); done++ {
		resp, err := w.recv(ops[done])
		if err != nil {
			return err
		}
		if st != nil {
			st.lats = append(st.lats, time.Since(sendTimes[done]))
			st.tally(ops[done], resp)
		}
		if next < len(ops) {
			if st != nil {
				sendTimes = append(sendTimes, time.Now())
			}
			if err := w.send(ops[next]); err != nil {
				return err
			}
			if err := w.bw.Flush(); err != nil {
				return err
			}
			next++
		}
	}
	return nil
}

// runConn owns one closed-loop connection's lifecycle: untimed warmup,
// buffer pre-sizing, then — once the start gate opens — the timed replay.
func runConn(w *wire, warm, main []kv.Op, depth int, warmed *sync.WaitGroup, start <-chan struct{}, st *connStats) {
	defer w.close()
	err := replay(w, warm, depth, nil, nil)
	// Pre-size the measured phase's buffers before the gate so they are
	// not counted as steady-state allocations.
	sendTimes := make([]time.Time, 0, len(main))
	st.lats = make([]time.Duration, 0, len(main))
	warmed.Done()
	if err != nil {
		st.err = err
		return
	}
	<-start
	if err := replay(w, main, depth, sendTimes, st); err != nil {
		st.err = err
	}
}

// runOpenConn owns one open-loop connection's lifecycle. After a
// closed-loop warmup, a sender goroutine paces ops by the precomputed
// schedule (offsets from the gate's open) while this goroutine receives;
// each response's latency is measured from the op's *scheduled* send
// time, so time spent queued — on the server, in the kernel, or because
// the sender itself fell behind schedule — is charged to the operation
// rather than silently omitted.
func runOpenConn(w *wire, warm, main []kv.Op, depth int, sched []time.Duration, slo time.Duration, warmed *sync.WaitGroup, start <-chan struct{}, st *connStats) {
	defer w.close()
	err := replay(w, warm, depth, nil, nil)
	st.lats = make([]time.Duration, 0, len(main))
	sendErr := make(chan error, 1)
	warmed.Done()
	if err != nil {
		st.err = err
		return
	}
	<-start
	t0 := time.Now()
	go func() {
		for i := range main {
			if d := time.Until(t0.Add(sched[i])); d > 0 {
				time.Sleep(d)
			}
			if err := w.send(main[i]); err != nil {
				sendErr <- err
				w.nc.Close()
				return
			}
			if err := w.bw.Flush(); err != nil {
				sendErr <- err
				w.nc.Close()
				return
			}
		}
	}()
	for i := range main {
		resp, err := w.recv(main[i])
		if err != nil {
			// A send failure surfaces here as a read error on the closed
			// connection; report the root cause.
			select {
			case serr := <-sendErr:
				err = serr
			default:
			}
			st.err = err
			return
		}
		lat := time.Since(t0) - sched[i]
		if lat < 0 {
			lat = 0
		}
		st.lats = append(st.lats, lat)
		if slo > 0 && lat > slo {
			st.sloViolations++
		}
		st.tally(main[i], resp)
	}
}

// cubicSchedule returns the scheduled send offset of each of n operations
// under a target arrival rate (ops/s) with a TCP-CUBIC-shaped ramp: over
// the ramp window the instantaneous rate follows R·(1 − β·((K−t)/K)³)
// (β = 0.3, K = ramp) — CUBIC's concave approach to its plateau — so a
// cold server sees ~70% of the target immediately and the full rate only
// at the end of the ramp. With ramp 0 the schedule is flat at R.
func cubicSchedule(n int, rate float64, ramp time.Duration) []time.Duration {
	const beta = 0.3
	k := ramp.Seconds()
	sched := make([]time.Duration, n)
	t := 0.0
	for i := 0; i < n; i++ {
		sched[i] = time.Duration(t * float64(time.Second))
		r := rate
		if k > 0 && t < k {
			f := (k - t) / k
			r *= 1 - beta*f*f*f
		}
		t += 1 / r
	}
	return sched
}

// validateKeyMax rejects -keymax values the 32-bit workload generator
// cannot represent or ycsb.New would panic on, so a misconfigured run
// exits with a clear message instead of silently truncating (values of
// 2³² and above used to wrap modulo 2³² — 1<<32 became 0) or panicking
// deep inside the generator.
func validateKeyMax(v uint64, records int) error {
	if v == 0 || v > math.MaxUint32 {
		return fmt.Errorf("-keymax %d does not fit the 32-bit key space (want a power of two in [4*records, 2^32))", v)
	}
	if v&(v-1) != 0 {
		return fmt.Errorf("-keymax %d is not a power of two", v)
	}
	if v < 4*uint64(records) {
		return fmt.Errorf("-keymax %d leaves no insert headroom for %d records (want >= %d)", v, records, 4*records)
	}
	return nil
}

// mergeServerDeltas merges the measured phase's server/* counter deltas
// (post − pre) into metrics. If any counter regressed (post < pre: the
// server restarted between the two scrapes, resetting its registry) the
// deltas are meaningless, nothing is merged at all, and false is
// returned so the caller can warn instead of emitting wrapped-around
// garbage into the report.
func mergeServerDeltas(metrics, pre, post map[string]uint64) bool {
	deltas := map[string]uint64{}
	for name, v := range post {
		if !strings.HasPrefix(name, "server/") {
			continue
		}
		p := pre[name]
		if v < p {
			return false
		}
		deltas[name] = v - p
	}
	for name, d := range deltas {
		metrics[name] = d
	}
	return true
}

// workloadSpec is one measured workload: a report row and exp.Cell.
type workloadSpec struct {
	key   string // the -workload letter, or "c"/"mix" under the legacy flags
	title string
	cfg   ycsb.Config
}

// parseWorkloads resolves the -workload flag (comma-separated YCSB core
// letters) or, when empty, the legacy single-workload flags.
func parseWorkloads(list string, records int, keyMax uint32, read, insert, remove int, seed uint64) ([]workloadSpec, error) {
	if list == "" {
		if insert > 0 || remove > 0 {
			return []workloadSpec{{
				key:   "mix",
				title: fmt.Sprintf("uniform mix %d-%d-%d (read-insert-remove)", read, insert, remove),
				cfg:   ycsb.Mix(records, keyMax, read, insert, remove, seed),
			}}, nil
		}
		return []workloadSpec{{key: "c", title: ycsb.WorkloadDesc("c"), cfg: ycsb.YCSBC(records, keyMax, seed)}}, nil
	}
	var out []workloadSpec
	for _, w := range strings.Split(list, ",") {
		w = strings.TrimSpace(strings.ToLower(w))
		cfg, err := ycsb.Workload(w, records, keyMax, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, workloadSpec{key: w, title: ycsb.WorkloadDesc(w), cfg: cfg})
	}
	return out, nil
}

// preload PUTs the workload's load-phase pairs through one pipelined
// connection, in chunks that respect the server's in-flight budget.
func preload(addr string, pairs []ycsb.Pair) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	const chunk = 64
	for lo := 0; lo < len(pairs); lo += chunk {
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		reqs := make([]server.Request, 0, hi-lo)
		for _, p := range pairs[lo:hi] {
			reqs = append(reqs, server.Request{Op: server.OpPut, Key: uint64(p.Key), Value: uint64(p.Value)})
		}
		if _, err := c.Pipeline(reqs); err != nil {
			return err
		}
	}
	return nil
}

// cleanupInserts deletes the keys a workload's streams minted (Insert
// ops), restoring the server to its preloaded state. The generator mints
// fresh keys deterministically, so without the cleanup a later workload —
// in this process or a later -noload invocation against the same server —
// would re-insert the same keys and count spurious misses.
func cleanupInserts(addr string, streams [][]kv.Op) error {
	var keys []uint64
	for _, ops := range streams {
		for _, op := range ops {
			if op.Kind == kv.Insert {
				keys = append(keys, uint64(op.Key))
			}
		}
	}
	if len(keys) == 0 {
		return nil
	}
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	const chunk = 64
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		reqs := make([]server.Request, 0, hi-lo)
		for _, k := range keys[lo:hi] {
			reqs = append(reqs, server.Request{Op: server.OpDelete, Key: k})
		}
		if _, err := c.Pipeline(reqs); err != nil {
			return err
		}
	}
	return nil
}

// scrapeCounters pulls the server's counter snapshot from a hybridsd
// admin plane (GET <base>/metrics.json) so a load report can carry
// server-side truth next to the client-observed numbers.
func scrapeCounters(base string) (map[string]uint64, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics.json: %s", resp.Status)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Counters, nil
}

// provenance collects the run's build and runtime facts for the report's
// meta block: Go version, platform, GOMAXPROCS, and — when the binary
// carries build info — the VCS revision, commit time, and dirty flag.
func provenance() map[string]string {
	meta := map[string]string{
		"go":         runtime.Version(),
		"os_arch":    runtime.GOOS + "/" + runtime.GOARCH,
		"gomaxprocs": fmt.Sprint(runtime.GOMAXPROCS(0)),
		"commit":     "unknown",
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				meta["commit"] = s.Value
			case "vcs.time":
				meta["commit_time"] = s.Value
			case "vcs.modified":
				meta["dirty"] = s.Value
			}
		}
	}
	return meta
}

// pctl returns the p'th percentile of sorted latencies.
func pctl(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// loadFlags is the parsed flag set one workload run needs.
type loadFlags struct {
	addr   string
	conns  int
	depth  int
	ops    int
	warmup int
	rate   float64
	ramp   time.Duration
	slo    time.Duration
	scrape string
}

// workloadResult is one workload's measured outcome.
type workloadResult struct {
	cell                    exp.Cell
	ok, miss, rejected, bad uint64
	allocs, allocsPerOp     uint64
	wall                    time.Duration
	mops, achieved          float64
	p50, p95, p99, max      time.Duration
	scrapeDropped           bool
}

// runWorkload measures one workload: dial, warm up, gate, replay, and
// aggregate. streams is the per-connection op sequence (warmup prefix
// included).
func runWorkload(lf loadFlags, spec workloadSpec, streams [][]kv.Op) (workloadResult, error) {
	wires := make([]*wire, lf.conns)
	for i := range wires {
		w, err := dialWire(lf.addr)
		if err != nil {
			return workloadResult{}, fmt.Errorf("dial conn %d: %w", i, err)
		}
		wires[i] = w
	}
	var sched []time.Duration
	if lf.rate > 0 {
		// Per-connection schedule at an equal share of the target rate;
		// the schedule is identical across connections, so compute it once.
		sched = cubicSchedule(lf.ops, lf.rate/float64(lf.conns), lf.ramp)
	}

	sts := make([]connStats, lf.conns)
	var warmed, wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < lf.conns; i++ {
		warmed.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			warm, main := streams[i][:lf.warmup], streams[i][lf.warmup:]
			if lf.rate > 0 {
				runOpenConn(wires[i], warm, main, lf.depth, sched, lf.slo, &warmed, start, &sts[i])
			} else {
				runConn(wires[i], warm, main, lf.depth, &warmed, start, &sts[i])
			}
		}(i)
	}
	warmed.Wait()

	// Scrapes stay outside the ReadMemStats bracket: the HTTP client's
	// allocations must not pollute the allocs/op gate.
	var pre map[string]uint64
	if lf.scrape != "" {
		var err error
		if pre, err = scrapeCounters(lf.scrape); err != nil {
			return workloadResult{}, fmt.Errorf("scrape: %w", err)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs
	var post map[string]uint64
	if lf.scrape != "" {
		var err error
		if post, err = scrapeCounters(lf.scrape); err != nil {
			return workloadResult{}, fmt.Errorf("scrape: %w", err)
		}
	}

	var all []time.Duration
	var r workloadResult
	var sloViol, scanPairs uint64
	for i := range sts {
		if sts[i].err != nil {
			return workloadResult{}, fmt.Errorf("conn %d: %w", i, sts[i].err)
		}
		all = append(all, sts[i].lats...)
		r.ok += sts[i].ok
		r.miss += sts[i].miss
		r.rejected += sts[i].rejected
		r.bad += sts[i].bad
		sloViol += sts[i].sloViolations
		scanPairs += sts[i].scanPairs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := lf.conns * lf.ops
	r.wall = wall
	r.allocs = allocs
	r.mops = float64(total) / wall.Seconds() / 1e6
	r.achieved = float64(total) / wall.Seconds()
	r.p50, r.p95, r.p99 = pctl(all, 0.50), pctl(all, 0.95), pctl(all, 0.99)
	r.max = pctl(all, 1)
	// Integer average, the same accounting testing.AllocsPerRun uses: a
	// handful of fixed-cost allocations over a long run round to zero, a
	// per-op allocation does not.
	r.allocsPerOp = allocs / uint64(total)

	variant := "closed-loop"
	if lf.rate > 0 {
		variant = "open-loop"
	}
	r.cell = exp.Cell{
		Variant:    variant,
		Label:      "ycsb-" + spec.key,
		Threads:    lf.conns,
		Ops:        total,
		MOpsPerSec: r.mops,
		WallNanos:  uint64(wall.Nanoseconds()),
		Metrics: map[string]uint64{
			"load/ok":            r.ok,
			"load/miss":          r.miss,
			"load/rejected":      r.rejected,
			"load/bad":           r.bad,
			"load/scan_pairs":    scanPairs,
			"load/lat_p50ns":     uint64(r.p50.Nanoseconds()),
			"load/lat_p95ns":     uint64(r.p95.Nanoseconds()),
			"load/lat_p99ns":     uint64(r.p99.Nanoseconds()),
			"load/lat_maxns":     uint64(r.max.Nanoseconds()),
			"load/allocs":        allocs,
			"load/allocs_per_op": r.allocsPerOp,
		},
	}
	if lf.rate > 0 {
		r.cell.Metrics["load/target_rate"] = uint64(lf.rate + 0.5)
		r.cell.Metrics["load/achieved_rate"] = uint64(r.achieved + 0.5)
		r.cell.Metrics["load/slo_violations"] = sloViol
	}
	if post != nil {
		// Measured-phase deltas of the server's own counters, so the
		// report pairs client-observed latency with server-side truth
		// (requests actually served, batches coalesced, scans answered).
		r.scrapeDropped = !mergeServerDeltas(r.cell.Metrics, pre, post)
	}
	return r, nil
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "hybridsd address")
		conns     = flag.Int("conns", 4, "concurrent client connections")
		depth     = flag.Int("depth", 16, "pipelined requests in flight per connection (closed loop)")
		workloads = flag.String("workload", "", "comma-separated YCSB core workloads (a|b|c|d|e|f), one measured phase each; empty keeps the legacy -read/-insert/-remove flags")
		ops       = flag.Int("ops", 20000, "measured operations per connection (per workload)")
		records   = flag.Int("records", 16384, "preloaded records")
		keyMax    = flag.Uint("keymax", 1<<20, "workload key-space bound (power of two, <= server -keymax)")
		read      = flag.Int("read", 100, "read percentage")
		insert    = flag.Int("insert", 0, "insert percentage (with -remove switches to the uniform mix)")
		remove    = flag.Int("remove", 0, "remove percentage")
		seed      = flag.Uint64("seed", 1, "workload seed")
		warmup    = flag.Int("warmup", 2048, "untimed warmup operations per connection before the measured phase")
		rate      = flag.Float64("rate", 0, "open-loop target arrival rate, ops/s across all connections (0 = closed loop)")
		ramp      = flag.Duration("ramp", 2*time.Second, "open-loop ramp: arrival rate climbs a TCP-CUBIC curve to -rate over this window")
		slo       = flag.Duration("slo", 0, "open-loop latency SLO; slower responses (from scheduled send time) count as load/slo_violations")
		maxAllocs = flag.Int("max-allocs-per-op", -1, "fail when measured client allocations per op exceed this (integer average, like testing.AllocsPerRun); -1 disables")
		noload    = flag.Bool("noload", false, "skip the preload phase (server already populated)")
		markdown  = flag.Bool("markdown", false, "emit a markdown table")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON")
		stats     = flag.Bool("stats", false, "dump the server STATS snapshot to stderr after the run")
		scrape    = flag.String("scrape", "", "hybridsd admin-plane base URL; merges measured-phase server/* counter deltas into the report")
	)
	flag.Parse()
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hybridsload: "+format+"\n", args...)
		os.Exit(2)
	}
	if *warmup < 0 {
		*warmup = 0
	}
	if err := validateKeyMax(uint64(*keyMax), *records); err != nil {
		usage("%v", err)
	}
	if *rate < 0 {
		usage("-rate %v must be >= 0 (0 selects the closed loop)", *rate)
	}
	if *ramp < 0 {
		usage("-ramp %v must be >= 0", *ramp)
	}
	if *slo != 0 && *rate == 0 {
		usage("-slo is only meaningful in the open-loop mode; set -rate")
	}
	specs, err := parseWorkloads(*workloads, *records, uint32(*keyMax), *read, *insert, *remove, *seed)
	if err != nil {
		usage("%v", err)
	}
	openLoop := *rate > 0

	if !*noload {
		t0 := time.Now()
		// The load phase is mix-independent: every workload of a run
		// shares the same preloaded records.
		if err := preload(*addr, ycsb.New(specs[0].cfg).Load()); err != nil {
			fmt.Fprintf(os.Stderr, "preload: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hybridsload: preloaded %d records in %v\n", *records, time.Since(t0).Round(time.Millisecond))
	}

	lf := loadFlags{
		addr: *addr, conns: *conns, depth: *depth, ops: *ops, warmup: *warmup,
		rate: *rate, ramp: *ramp, slo: *slo, scrape: *scrape,
	}
	mode, header := "closed-loop", []string{"workload", "conns", "depth", "ops", "Mops/s", "p50 µs", "p95 µs", "p99 µs", "max µs", "allocs/op"}
	if openLoop {
		mode, header = "open-loop", []string{"workload", "conns", "target/s", "achieved/s", "ops", "p50 µs", "p95 µs", "p99 µs", "SLO viol", "allocs/op"}
	}
	title := fmt.Sprintf("hybridsd %s load, %s", mode, specs[0].title)
	if len(specs) > 1 {
		var keys []string
		for _, s := range specs {
			keys = append(keys, s.key)
		}
		title = fmt.Sprintf("hybridsd %s load, YCSB suite %s", mode, strings.Join(keys, ","))
	}
	res := exp.Result{
		ID:     "hybridsload",
		Title:  title,
		Header: header,
		Meta:   provenance(),
	}

	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3) }
	var worstAllocs, totalBad uint64
	var totalAllocs uint64
	for _, spec := range specs {
		// Each connection's stream is warmup + measured ops replayed in
		// order: the warmup is simply the stream's untimed prefix, so the
		// whole sequence stays deterministic for a given seed.
		streams := ycsb.New(spec.cfg).Streams(*conns, *warmup+*ops)
		r, err := runWorkload(lf, spec, streams)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridsload: workload %s: %v\n", spec.key, err)
			os.Exit(1)
		}
		if *workloads != "" {
			// Suite workloads restore the preloaded state so rows (and
			// later -noload invocations) are independent.
			if err := cleanupInserts(*addr, streams); err != nil {
				fmt.Fprintf(os.Stderr, "hybridsload: cleanup after workload %s: %v\n", spec.key, err)
			}
		}
		if r.scrapeDropped {
			fmt.Fprintf(os.Stderr, "hybridsload: server counters regressed between scrapes (hybridsd restarted?); dropping server/* deltas for workload %s\n", spec.key)
		}
		if openLoop {
			res.Rows = append(res.Rows, []string{
				spec.key, fmt.Sprint(*conns), fmt.Sprintf("%.0f", *rate), fmt.Sprintf("%.0f", r.achieved),
				fmt.Sprint(r.cell.Ops), us(r.p50), us(r.p95), us(r.p99),
				fmt.Sprint(r.cell.Metrics["load/slo_violations"]), fmt.Sprint(r.allocsPerOp),
			})
		} else {
			res.Rows = append(res.Rows, []string{
				spec.key, fmt.Sprint(*conns), fmt.Sprint(*depth), fmt.Sprint(r.cell.Ops),
				fmt.Sprintf("%.2f", r.mops), us(r.p50), us(r.p95), us(r.p99), us(r.max),
				fmt.Sprint(r.allocsPerOp),
			})
		}
		res.Cells = append(res.Cells, r.cell)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: %s — %d ok, %d miss, %d rejected, %d bad; %d allocs",
			spec.key, spec.title, r.ok, r.miss, r.rejected, r.bad, r.allocs))
		if r.allocsPerOp > worstAllocs {
			worstAllocs = r.allocsPerOp
		}
		totalBad += r.bad
		totalAllocs += r.allocs
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("steady state: %d warmup ops/conn untimed per workload", *warmup),
		"client-observed latency over TCP loopback; wall-clock throughput is machine-dependent")
	if openLoop {
		res.Notes = append(res.Notes,
			fmt.Sprintf("open loop: latency measured from scheduled send time (coordinated-omission-free); CUBIC ramp %v to %.0f ops/s", *ramp, *rate))
		if *slo > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("SLO: responses slower than %v count as violations", *slo))
		}
	}
	if *scrape != "" {
		res.Notes = append(res.Notes,
			fmt.Sprintf("server/* metrics are measured-phase deltas scraped from %s", *scrape))
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	case *markdown:
		fmt.Print(res.Markdown())
	default:
		fmt.Println(res.Format())
	}

	if *stats {
		c, err := server.Dial(*addr)
		if err == nil {
			if text, err := c.Stats(); err == nil {
				fmt.Fprintf(os.Stderr, "%s", text)
			}
			c.Close()
		}
	}

	if *maxAllocs >= 0 && worstAllocs > uint64(*maxAllocs) {
		fmt.Fprintf(os.Stderr, "hybridsload: %d allocs/op exceeds -max-allocs-per-op %d\n", worstAllocs, *maxAllocs)
		os.Exit(1)
	}
	if totalBad > 0 {
		os.Exit(1)
	}
}

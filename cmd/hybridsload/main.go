// Command hybridsload is a closed-loop load generator for hybridsd: it
// replays deterministic YCSB operation streams (the same internal/ycsb
// generator the benchmarks use) over pipelined protocol connections and
// reports throughput and client-observed latency percentiles through the
// internal/exp table formatters.
//
// Usage:
//
//	hybridsload [-addr 127.0.0.1:7070] [-conns 4] [-depth 16]
//	            [-ops 20000] [-records 16384] [-keymax 1048576]
//	            [-read 100 -insert 0 -remove 0] [-seed 1]
//	            [-warmup 2048] [-max-allocs-per-op -1]
//	            [-noload] [-markdown|-json] [-stats]
//	            [-scrape http://127.0.0.1:7071]
//
// Each connection keeps -depth requests in flight (a closed loop: every
// response received triggers the next send), so concurrency is
// conns x depth. The default workload is YCSB-C (100% zipfian reads)
// over -records preloaded pairs; -insert/-remove switch to the uniform
// read-insert-remove mix. -stats dumps the server's STATS snapshot to
// stderr after the run.
//
// The measured phase is steady-state: every connection is dialed and
// runs -warmup untimed operations first (filling pools and scratch
// buffers on both sides), then all connections start the timed replay
// together behind a gate. Client-process heap allocations across the
// timed phase are counted (load/allocs) and averaged per operation;
// -max-allocs-per-op N exits nonzero when the integer average exceeds N,
// making the zero-allocation serving path a CI-checkable regression
// gate.
//
// -scrape URL points at a hybridsd admin plane (-admin-addr): the
// measured phase is bracketed by two /metrics.json scrapes and the
// server/* counter deltas are merged into the report's metrics, pairing
// client-observed numbers with server-side truth. Reports always carry a
// meta block with run provenance (Go version, platform, GOMAXPROCS, VCS
// revision when built from a checkout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"hybrids/internal/dsim/kv"
	"hybrids/internal/exp"
	"hybrids/internal/server"
	"hybrids/internal/ycsb"
)

// connStats is one connection's tally: per-status response counts and
// the client-observed latency of every measured operation.
type connStats struct {
	ok, miss, rejected, bad uint64
	lats                    []time.Duration
	err                     error
}

// toRequest maps one YCSB op to its protocol request.
func toRequest(op kv.Op) server.Request {
	r := server.Request{Key: uint64(op.Key), Value: uint64(op.Value)}
	switch op.Kind {
	case kv.Read:
		r.Op = server.OpGet
	case kv.Update:
		r.Op = server.OpUpdate
	case kv.Insert:
		r.Op = server.OpPut
	default:
		r.Op = server.OpDelete
	}
	return r
}

// replay runs ops through c as a closed loop with depth requests in
// flight. When st is nil the phase is untimed warmup (statuses and
// latencies are discarded); otherwise send times come from sendTimes
// (pre-sized by the caller so the measured phase does not grow it).
func replay(c *server.Client, ops []kv.Op, depth int, sendTimes []time.Time, st *connStats) error {
	if depth > len(ops) {
		depth = len(ops)
	}
	next := 0
	for ; next < depth; next++ {
		if st != nil {
			sendTimes = append(sendTimes, time.Now())
		}
		if err := c.Send(toRequest(ops[next])); err != nil {
			return err
		}
	}
	for done := 0; done < len(ops); done++ {
		resp, err := c.Recv()
		if err != nil {
			return err
		}
		if st != nil {
			st.lats = append(st.lats, time.Since(sendTimes[done]))
			switch resp.Status {
			case server.StatusOK:
				st.ok++
			case server.StatusMiss:
				st.miss++
			case server.StatusRejected:
				st.rejected++
			default:
				st.bad++
			}
		}
		if next < len(ops) {
			if st != nil {
				sendTimes = append(sendTimes, time.Now())
			}
			if err := c.Send(toRequest(ops[next])); err != nil {
				return err
			}
			next++
		}
	}
	return nil
}

// runConn owns one connection's lifecycle: untimed warmup, buffer
// pre-sizing, then — once the start gate opens — the timed replay.
func runConn(c *server.Client, warm, main []kv.Op, depth int, warmed *sync.WaitGroup, start <-chan struct{}, st *connStats) {
	defer c.Close()
	err := replay(c, warm, depth, nil, nil)
	// Pre-size the measured phase's buffers before the gate so they are
	// not counted as steady-state allocations.
	sendTimes := make([]time.Time, 0, len(main))
	st.lats = make([]time.Duration, 0, len(main))
	warmed.Done()
	if err != nil {
		st.err = err
		return
	}
	<-start
	if err := replay(c, main, depth, sendTimes, st); err != nil {
		st.err = err
	}
}

// preload PUTs the workload's load-phase pairs through one pipelined
// connection, in chunks that respect the server's in-flight budget.
func preload(addr string, pairs []ycsb.Pair) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	const chunk = 64
	for lo := 0; lo < len(pairs); lo += chunk {
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		reqs := make([]server.Request, 0, hi-lo)
		for _, p := range pairs[lo:hi] {
			reqs = append(reqs, server.Request{Op: server.OpPut, Key: uint64(p.Key), Value: uint64(p.Value)})
		}
		if _, err := c.Pipeline(reqs); err != nil {
			return err
		}
	}
	return nil
}

// scrapeCounters pulls the server's counter snapshot from a hybridsd
// admin plane (GET <base>/metrics.json) so a load report can carry
// server-side truth next to the client-observed numbers.
func scrapeCounters(base string) (map[string]uint64, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics.json: %s", resp.Status)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Counters, nil
}

// provenance collects the run's build and runtime facts for the report's
// meta block: Go version, platform, GOMAXPROCS, and — when the binary
// carries build info — the VCS revision, commit time, and dirty flag.
func provenance() map[string]string {
	meta := map[string]string{
		"go":         runtime.Version(),
		"os_arch":    runtime.GOOS + "/" + runtime.GOARCH,
		"gomaxprocs": fmt.Sprint(runtime.GOMAXPROCS(0)),
		"commit":     "unknown",
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				meta["commit"] = s.Value
			case "vcs.time":
				meta["commit_time"] = s.Value
			case "vcs.modified":
				meta["dirty"] = s.Value
			}
		}
	}
	return meta
}

// pctl returns the p'th percentile of sorted latencies.
func pctl(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "hybridsd address")
		conns     = flag.Int("conns", 4, "concurrent client connections")
		depth     = flag.Int("depth", 16, "pipelined requests in flight per connection")
		ops       = flag.Int("ops", 20000, "measured operations per connection")
		records   = flag.Int("records", 16384, "preloaded records")
		keyMax    = flag.Uint("keymax", 1<<20, "workload key-space bound (power of two, <= server -keymax)")
		read      = flag.Int("read", 100, "read percentage")
		insert    = flag.Int("insert", 0, "insert percentage (with -remove switches to the uniform mix)")
		remove    = flag.Int("remove", 0, "remove percentage")
		seed      = flag.Uint64("seed", 1, "workload seed")
		warmup    = flag.Int("warmup", 2048, "untimed warmup operations per connection before the measured phase")
		maxAllocs = flag.Int("max-allocs-per-op", -1, "fail when measured client allocations per op exceed this (integer average, like testing.AllocsPerRun); -1 disables")
		noload    = flag.Bool("noload", false, "skip the preload phase (server already populated)")
		markdown  = flag.Bool("markdown", false, "emit a markdown table")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON")
		stats     = flag.Bool("stats", false, "dump the server STATS snapshot to stderr after the run")
		scrape    = flag.String("scrape", "", "hybridsd admin-plane base URL; merges measured-phase server/* counter deltas into the report")
	)
	flag.Parse()
	if *warmup < 0 {
		*warmup = 0
	}

	var cfg ycsb.Config
	workload := "YCSB-C (100% zipfian reads)"
	if *insert > 0 || *remove > 0 {
		cfg = ycsb.Mix(*records, uint32(*keyMax), *read, *insert, *remove, *seed)
		workload = fmt.Sprintf("uniform mix %d-%d-%d (read-insert-remove)", *read, *insert, *remove)
	} else {
		cfg = ycsb.YCSBC(*records, uint32(*keyMax), *seed)
	}
	gen := ycsb.New(cfg)

	if !*noload {
		t0 := time.Now()
		if err := preload(*addr, gen.Load()); err != nil {
			fmt.Fprintf(os.Stderr, "preload: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hybridsload: preloaded %d records in %v\n", *records, time.Since(t0).Round(time.Millisecond))
	}

	// Each connection's stream is warmup + measured ops replayed in
	// order: the warmup is simply the stream's untimed prefix, so the
	// whole sequence stays deterministic for a given seed.
	streams := gen.Streams(*conns, *warmup+*ops)
	clients := make([]*server.Client, *conns)
	for i := range clients {
		c, err := server.Dial(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dial conn %d: %v\n", i, err)
			os.Exit(1)
		}
		clients[i] = c
	}

	sts := make([]connStats, *conns)
	var warmed, wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < *conns; i++ {
		warmed.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(clients[i], streams[i][:*warmup], streams[i][*warmup:], *depth, &warmed, start, &sts[i])
		}(i)
	}
	warmed.Wait()

	// Scrapes stay outside the ReadMemStats bracket: the HTTP client's
	// allocations must not pollute the allocs/op gate.
	var pre map[string]uint64
	if *scrape != "" {
		var err error
		if pre, err = scrapeCounters(*scrape); err != nil {
			fmt.Fprintf(os.Stderr, "scrape: %v\n", err)
			os.Exit(1)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs
	var post map[string]uint64
	if *scrape != "" {
		var err error
		if post, err = scrapeCounters(*scrape); err != nil {
			fmt.Fprintf(os.Stderr, "scrape: %v\n", err)
			os.Exit(1)
		}
	}

	var all []time.Duration
	var ok, miss, rejected, bad uint64
	for i := range sts {
		if sts[i].err != nil {
			fmt.Fprintf(os.Stderr, "conn %d: %v\n", i, sts[i].err)
			os.Exit(1)
		}
		all = append(all, sts[i].lats...)
		ok += sts[i].ok
		miss += sts[i].miss
		rejected += sts[i].rejected
		bad += sts[i].bad
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := *conns * *ops
	mops := float64(total) / wall.Seconds() / 1e6
	p50, p95, p99 := pctl(all, 0.50), pctl(all, 0.95), pctl(all, 0.99)
	max := pctl(all, 1)
	// Integer average, the same accounting testing.AllocsPerRun uses: a
	// handful of fixed-cost allocations over a long run round to zero,
	// a per-op allocation does not.
	allocsPerOp := allocs / uint64(total)

	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3) }
	res := exp.Result{
		ID:     "hybridsload",
		Title:  fmt.Sprintf("hybridsd closed-loop load, %s", workload),
		Header: []string{"conns", "depth", "ops", "Mops/s", "p50 µs", "p95 µs", "p99 µs", "max µs", "allocs/op"},
		Rows: [][]string{{
			fmt.Sprint(*conns), fmt.Sprint(*depth), fmt.Sprint(total),
			fmt.Sprintf("%.2f", mops), us(p50), us(p95), us(p99), us(max),
			fmt.Sprint(allocsPerOp),
		}},
		Notes: []string{
			fmt.Sprintf("statuses: %d ok, %d miss, %d rejected, %d bad", ok, miss, rejected, bad),
			fmt.Sprintf("steady state: %d warmup ops/conn untimed; %d client heap allocations over the measured phase", *warmup, allocs),
			"client-observed latency over TCP loopback; wall-clock throughput is machine-dependent",
		},
		Cells: []exp.Cell{{
			Variant:    "closed-loop",
			Threads:    *conns,
			Ops:        total,
			MOpsPerSec: mops,
			WallNanos:  uint64(wall.Nanoseconds()),
			Metrics: map[string]uint64{
				"load/ok":            ok,
				"load/miss":          miss,
				"load/rejected":      rejected,
				"load/bad":           bad,
				"load/lat_p50ns":     uint64(p50.Nanoseconds()),
				"load/lat_p95ns":     uint64(p95.Nanoseconds()),
				"load/lat_p99ns":     uint64(p99.Nanoseconds()),
				"load/lat_maxns":     uint64(max.Nanoseconds()),
				"load/allocs":        allocs,
				"load/allocs_per_op": allocsPerOp,
			},
		}},
		Meta: provenance(),
	}
	if post != nil {
		// Measured-phase deltas of the server's own counters, so the
		// report pairs client-observed latency with server-side truth
		// (requests actually served, batches coalesced, write timeouts).
		for name, v := range post {
			if !strings.HasPrefix(name, "server/") {
				continue
			}
			res.Cells[0].Metrics[name] = v - pre[name]
		}
		res.Notes = append(res.Notes,
			fmt.Sprintf("server/* metrics are measured-phase deltas scraped from %s", *scrape))
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	case *markdown:
		fmt.Print(res.Markdown())
	default:
		fmt.Println(res.Format())
	}

	if *stats {
		c, err := server.Dial(*addr)
		if err == nil {
			if text, err := c.Stats(); err == nil {
				fmt.Fprintf(os.Stderr, "%s", text)
			}
			c.Close()
		}
	}

	if *maxAllocs >= 0 && allocsPerOp > uint64(*maxAllocs) {
		fmt.Fprintf(os.Stderr, "hybridsload: %d allocs/op exceeds -max-allocs-per-op %d\n", allocsPerOp, *maxAllocs)
		os.Exit(1)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

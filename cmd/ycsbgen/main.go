// Command ycsbgen inspects the workload generator: it prints load-phase
// records and per-thread operation streams for any of the paper's
// workloads, for debugging or for feeding external tools.
//
//	go run ./cmd/ycsbgen -workload ycsbc -records 1000 -ops 20 -threads 2
//	go run ./cmd/ycsbgen -workload e -records 1000 -ops 20    # YCSB core letter
//	go run ./cmd/ycsbgen -workload 50-25-25 -tail -partitions 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybrids/internal/ycsb"
)

func main() {
	var (
		workload   = flag.String("workload", "ycsbc", "ycsbc, a YCSB core letter (a-f), or R-I-D mix like 50-25-25")
		records    = flag.Int("records", 1000, "load-phase record count")
		keyMax     = flag.Uint64("keymax", 1<<24, "key space bound (power of two)")
		threads    = flag.Int("threads", 2, "operation streams")
		ops        = flag.Int("ops", 20, "operations per stream")
		seed       = flag.Uint64("seed", 42, "generator seed")
		tail       = flag.Bool("tail", false, "partition-tail insert pattern")
		partitions = flag.Int("partitions", 8, "partitions for -tail")
		showLoad   = flag.Bool("load", false, "print load records instead of streams")
	)
	flag.Parse()

	var cfg ycsb.Config
	switch {
	case *workload == "ycsbc":
		cfg = ycsb.YCSBC(*records, uint32(*keyMax), *seed)
	case len(*workload) == 1:
		var err error
		if cfg, err = ycsb.Workload(*workload, *records, uint32(*keyMax), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	case strings.Count(*workload, "-") == 2:
		parts := strings.SplitN(*workload, "-", 3)
		r, err1 := strconv.Atoi(parts[0])
		i, err2 := strconv.Atoi(parts[1])
		d, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			fmt.Fprintf(os.Stderr, "bad mix %q\n", *workload)
			os.Exit(2)
		}
		cfg = ycsb.Mix(*records, uint32(*keyMax), r, i, d, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if *tail {
		cfg.Inserts = ycsb.PartitionTail
		cfg.Partitions = *partitions
	}

	g := ycsb.New(cfg)
	if *showLoad {
		for _, p := range g.Load() {
			fmt.Printf("%d %d\n", p.Key, p.Value)
		}
		return
	}
	for th, stream := range g.Streams(*threads, *ops) {
		for _, op := range stream {
			fmt.Printf("thread=%d %s key=%d value=%d\n", th, op.Kind, op.Key, op.Value)
		}
	}
}

package hybrids_test

import (
	"reflect"
	"testing"

	"hybrids/internal/exp"
)

// TestExperimentDeterminism is the top-level determinism regression: the
// simulator is a deterministic virtual-time machine, so running the same
// experiment twice at the same scale and seed must reproduce every emitted
// row byte-for-byte and every measured cell exactly.
func TestExperimentDeterminism(t *testing.T) {
	e, ok := exp.Find("fig5a")
	if !ok {
		t.Fatal("fig5a not registered")
	}
	first := e.Run(exp.QuickScale(), nil)
	second := e.Run(exp.QuickScale(), nil)

	if len(first.Rows) == 0 {
		t.Fatal("fig5a emitted no rows")
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		for i := range first.Rows {
			if i < len(second.Rows) && !reflect.DeepEqual(first.Rows[i], second.Rows[i]) {
				t.Errorf("row %d differs: %v vs %v", i, first.Rows[i], second.Rows[i])
			}
		}
		t.Fatal("fig5a rows are not deterministic")
	}
	if !reflect.DeepEqual(first.Cells, second.Cells) {
		t.Fatal("fig5a measured cells are not deterministic")
	}
	if first.Format() != second.Format() {
		t.Fatal("fig5a formatted output is not byte-identical")
	}
}

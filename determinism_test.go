package hybrids_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hybrids/internal/exp"
	"hybrids/internal/sim/trace"
)

// TestExperimentDeterminism is the top-level determinism regression: the
// simulator is a deterministic virtual-time machine, so running the same
// experiment twice at the same scale and seed must reproduce every emitted
// row byte-for-byte and every measured cell exactly.
func TestExperimentDeterminism(t *testing.T) {
	e, ok := exp.Find("fig5a")
	if !ok {
		t.Fatal("fig5a not registered")
	}
	first := e.Run(exp.QuickScale(), nil)
	second := e.Run(exp.QuickScale(), nil)

	if len(first.Rows) == 0 {
		t.Fatal("fig5a emitted no rows")
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		for i := range first.Rows {
			if i < len(second.Rows) && !reflect.DeepEqual(first.Rows[i], second.Rows[i]) {
				t.Errorf("row %d differs: %v vs %v", i, first.Rows[i], second.Rows[i])
			}
		}
		t.Fatal("fig5a rows are not deterministic")
	}
	if !reflect.DeepEqual(first.Cells, second.Cells) {
		t.Fatal("fig5a measured cells are not deterministic")
	}
	if first.Format() != second.Format() {
		t.Fatal("fig5a formatted output is not byte-identical")
	}
}

// TestObservabilityTransparency is the observability regression referenced
// by package trace: enabling tracing and attribution must not change a
// single measured value — the instrumented run's rows and per-cell
// measurements are identical to the baseline's, the capture is valid Chrome
// trace_event JSON, and every cell's attribution buckets sum exactly to its
// attributed total.
func TestObservabilityTransparency(t *testing.T) {
	e, ok := exp.Find("fig5a")
	if !ok {
		t.Fatal("fig5a not registered")
	}
	base := e.Run(exp.QuickScale(), nil)

	sc := exp.QuickScale()
	sc.Attr = true
	path := filepath.Join(t.TempDir(), "trace.json")
	sc.Trace = &exp.TraceSpec{Path: path}
	obs := e.Run(sc, nil)

	if err := sc.Trace.Err(); err != nil {
		t.Fatalf("trace capture failed: %v", err)
	}
	if !reflect.DeepEqual(base.Rows, obs.Rows) {
		t.Fatal("tracing+attribution changed emitted rows")
	}
	if len(base.Cells) != len(obs.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(base.Cells), len(obs.Cells))
	}
	for i := range base.Cells {
		b, o := base.Cells[i], obs.Cells[i]
		if b.Cycles != o.Cycles || b.Ops != o.Ops ||
			b.MOpsPerSec != o.MOpsPerSec || b.ReadsPerOp != o.ReadsPerOp {
			t.Errorf("cell %d (%s/%d threads) measurements changed under observation:\nbase %+v\nobs  %+v",
				i, b.Variant, b.Threads, b, o)
		}
		if o.Attr == nil {
			t.Errorf("cell %d has no attribution summary", i)
			continue
		}
		var sum uint64
		for bk := trace.Bucket(0); bk < trace.NumBuckets; bk++ {
			sum += o.Attr.BucketSum(bk)
		}
		if sum != o.Attr.Total {
			t.Errorf("cell %d attribution buckets sum to %d, want total %d", i, sum, o.Attr.Total)
		}
		if o.Attr.Samples == 0 {
			t.Errorf("cell %d recorded no attribution samples", i)
		}
	}

	// The capture must be Perfetto-loadable Chrome trace_event JSON: a
	// traceEvents array of records that each carry a phase, and at least one
	// thread_name metadata record naming a track.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read capture: %v", err)
	}
	var capture struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &capture); err != nil {
		t.Fatalf("capture is not valid JSON: %v", err)
	}
	if len(capture.TraceEvents) == 0 {
		t.Fatal("capture holds no events")
	}
	named := false
	for _, ev := range capture.TraceEvents {
		switch ev.Ph {
		case "X", "i", "M":
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.Ph == "M" && ev.Name == "thread_name" {
			named = true
		}
	}
	if !named {
		t.Fatal("capture has no thread_name metadata")
	}
}

// OLTP index on the simulated NMP machine: the paper's headline experiment
// in miniature. Builds a lock-free skiplist and a hybrid skiplist over the
// same YCSB-C load on the Table 1 machine and compares throughput and DRAM
// reads per lookup.
//
//	go run ./examples/oltpindex [-records 1048576] [-ops 1500] [-threads 8]
package main

import (
	"flag"
	"fmt"
	"math"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/kv"
	"hybrids/internal/dsim/skiplist"
	"hybrids/internal/sim/machine"
	"hybrids/internal/ycsb"
)

func main() {
	records := flag.Int("records", 1<<20, "initial key-value pairs")
	ops := flag.Int("ops", 1500, "lookups per thread")
	threads := flag.Int("threads", 8, "host threads")
	flag.Parse()

	levels := int(math.Ceil(math.Log2(float64(*records))))
	const keyMax = 1 << 28
	gen := ycsb.New(ycsb.YCSBC(*records, keyMax, 1))
	load := gen.Load()
	pairs := make([]skiplist.KV, len(load))
	for i, p := range load {
		pairs[i] = skiplist.KV{Key: p.Key, Value: p.Value}
	}

	fmt.Printf("YCSB-C over %d records, %d threads x %d lookups, %d-level skiplist\n\n",
		*records, *threads, *ops, levels)

	for _, variant := range []string{"lock-free", "hybrid-blocking", "hybrid-nonblocking4"} {
		m := machine.New(machine.Default())
		var store kv.Store
		var async kv.AsyncStore
		switch variant {
		case "lock-free":
			s := skiplist.NewLockFree(m, levels, 7)
			s.Build(pairs, 99)
			store = s
		default:
			window := 1
			if variant == "hybrid-nonblocking4" {
				window = 4
			}
			s := skiplist.NewHybrid(m, skiplist.HybridConfig{
				Split:  boundary.Split{Total: levels, NMP: levels / 2},
				KeyMax: keyMax, Window: window, Seed: 7,
			})
			s.Build(pairs, 99)
			s.Start()
			if window > 1 {
				async = s
			} else {
				store = s
			}
		}
		streams := gen.Streams(*threads, *ops)
		for th := 0; th < *threads; th++ {
			th := th
			m.SpawnHost(th, fmt.Sprintf("t%d", th), func(c *machine.Ctx) {
				if async != nil {
					async.ApplyBatch(c, th, streams[th])
					return
				}
				for _, op := range streams[th] {
					store.Apply(c, th, op)
				}
			})
		}
		cycles := m.Run()
		totalOps := *threads * *ops
		mops := float64(totalOps) / float64(cycles) * 2e9 / 1e6
		fmt.Printf("%-20s %8.2f Mops/s   %6.1f DRAM reads/op\n",
			variant, mops, float64(m.Mem.Stats().DRAMReads())/float64(totalOps))
	}
}

// Quickstart: the native hybrid map from internal/core.
//
// The paper's programming model on plain hardware: a partitioned ordered
// map where each partition is owned by a combiner goroutine (the software
// stand-in for an NMP core), with blocking and non-blocking (future-based)
// calls.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hybrids/internal/core"
	"hybrids/internal/hds"
)

func main() {
	h := core.New(core.Config{
		Partitions: 8,
		KeyMax:     1 << 20,
	})
	defer h.Close()

	// Blocking calls: ordinary map operations.
	for k := uint64(1); k <= 10; k++ {
		h.Put(k*100, k)
	}
	if v, ok := h.Get(500); ok {
		fmt.Printf("key 500 -> %d\n", v)
	}
	h.Update(500, 42)
	h.Delete(300)

	// Non-blocking calls (§3.5): pipeline a window of operations and
	// harvest the futures later.
	futs := make([]*core.Future, 0, 4)
	for k := uint64(11); k <= 14; k++ {
		futs = append(futs, h.Async(hds.Insert, k*100, k))
	}
	for i, f := range futs {
		if _, ok := f.Wait(); !ok {
			fmt.Printf("pipelined put %d failed\n", i)
		}
	}

	fmt.Printf("map holds %d keys\n", h.Len())
	if v, ok := h.Get(500); ok {
		fmt.Printf("key 500 -> %d after update\n", v)
	}
	if _, ok := h.Get(300); !ok {
		fmt.Println("key 300 deleted")
	}
}

// Non-blocking NMP calls on real hardware: measures how pipelining calls
// through the native hybrid map's futures (§3.5) compares to blocking
// calls, on your actual machine rather than the simulator.
//
//	go run ./examples/nonblocking [-ops 200000] [-window 4]
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"hybrids/internal/core"
	"hybrids/internal/hds"
	"hybrids/internal/prng"
)

func main() {
	ops := flag.Int("ops", 200000, "operations per goroutine")
	window := flag.Int("window", 4, "in-flight futures per goroutine")
	flag.Parse()

	const threads = 4
	const keyMax = 1 << 24

	setup := func() *core.Hybrid {
		h := core.New(core.Config{Partitions: 8, KeyMax: keyMax, MailboxDepth: 256})
		for k := uint64(1); k <= 100000; k++ {
			h.Put(k, k)
		}
		return h
	}

	bench := func(name string, worker func(h *core.Hybrid, th int)) {
		h := setup()
		defer h.Close()
		start := time.Now()
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			th := th
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker(h, th)
			}()
		}
		wg.Wait()
		el := time.Since(start)
		total := float64(threads * *ops)
		fmt.Printf("%-14s %10.0f ops/s\n", name, total/el.Seconds())
	}

	bench("blocking", func(h *core.Hybrid, th int) {
		rng := prng.New(uint64(th) + 1)
		for i := 0; i < *ops; i++ {
			h.Get(uint64(rng.Intn(100000)) + 1)
		}
	})

	bench("non-blocking", func(h *core.Hybrid, th int) {
		rng := prng.New(uint64(th) + 1)
		futs := make([]*core.Future, 0, *window)
		issued, completed := 0, 0
		for completed < *ops {
			if issued < *ops && len(futs) < *window {
				futs = append(futs, h.Async(hds.Read, uint64(rng.Intn(100000))+1, 0))
				issued++
				continue
			}
			futs[0].Wait()
			futs = futs[1:]
			completed++
		}
	})
}

// Sensitivity: the hybrid B+ tree under a modification-heavy workload on
// the simulated machine — the paper's §5.2 setting. Inserts target the
// last leaf of every NMP partition (maximum node splits, exercising the
// LOCK_PATH / RESUME_INSERT boundary protocol) and the offload delay
// decomposition of Table 2 is printed afterwards.
//
//	go run ./examples/sensitivity [-records 2097152] [-ops 1000]
package main

import (
	"flag"
	"fmt"

	"hybrids/internal/boundary"
	"hybrids/internal/dsim/btree"
	"hybrids/internal/sim/machine"
	"hybrids/internal/ycsb"
)

func main() {
	records := flag.Int("records", 1<<21, "initial key-value pairs")
	ops := flag.Int("ops", 1000, "operations per thread")
	flag.Parse()

	const keyMax = 1 << 28
	const threads = 8

	cfg := ycsb.Mix(*records, keyMax, 50, 25, 25, 3)
	cfg.Inserts = ycsb.PartitionTail
	cfg.Partitions = 8
	gen := ycsb.New(cfg)
	load := gen.Load()
	pairs := make([]btree.KV, len(load))
	for i, p := range load {
		pairs[i] = btree.KV{Key: p.Key, Value: p.Value}
	}

	m := machine.New(machine.Default())
	t := btree.NewHybrid(m, btree.HybridBTreeConfig{Split: boundary.Split{NMP: 3}, Window: 1})
	t.Build(pairs, 8)
	t.Start()

	streams := gen.Streams(threads, *ops)
	for th := 0; th < threads; th++ {
		th := th
		m.SpawnHost(th, fmt.Sprintf("t%d", th), func(c *machine.Ctx) {
			for _, op := range streams[th] {
				t.Apply(c, th, op)
			}
		})
	}
	cycles := m.Run()

	totalOps := threads * *ops
	fmt.Printf("50-25-25 read-insert-remove, targeted splits, %d records\n\n", *records)
	fmt.Printf("throughput:      %.2f Mops/s\n", float64(totalOps)/float64(cycles)*2e9/1e6)
	fmt.Printf("DRAM reads/op:   %.2f\n", float64(m.Mem.Stats().DRAMReads())/float64(totalOps))
	fmt.Printf("TLB misses/op:   %.2f\n", float64(m.Mem.Stats().TLBMisses)/float64(totalOps))

	d := t.Delays()
	if d.Count > 0 {
		fmt.Printf("\noffload delays (Table 2 decomposition, mean cycles over %d offloads):\n", d.Count)
		fmt.Printf("  post -> combiner pickup:  %d\n", d.PostToScan/d.Count)
		fmt.Printf("  NMP-side service:         %d\n", d.Service/d.Count)
		if d.ObserveCount > 0 {
			fmt.Printf("  completion -> observed:   %d\n", d.CompleteToObserve/d.ObserveCount)
		}
	}

	if err := t.CheckInvariants(); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
		return
	}
	fmt.Println("\ntree invariants verified after the run")
}
